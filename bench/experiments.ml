(* E1..E14: executable reproductions of every worked example in the paper,
   printed as paper-expectation vs measured-result (see DESIGN.md's
   per-experiment index and EXPERIMENTS.md for the record). *)

module Value = Relational.Value
module Instance = Relational.Instance
module Fact = Relational.Fact
module Tid = Relational.Tid
module P = Workload.Paper

type outcome = { id : string; title : string; expected : string; measured : string; ok : bool }

let rows_str rows =
  String.concat "; "
    (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows)

let deltas_str repairs =
  String.concat " | "
    (List.map
       (fun r ->
         Repairs.Repair.delta r |> Fact.Set.elements
         |> List.map Fact.to_string |> String.concat ",")
       repairs)

(* E1: Examples 2.1-2.2 — residue rewriting under the IND. *)
let e1 () =
  let rows =
    Rewriting.Residue_rewrite.consistent_answers P.Supply.items_query
      P.Supply.schema [ P.Supply.ind ] P.Supply.instance
  in
  {
    id = "E1";
    title = "residue rewriting under the inclusion dependency (Ex 2.1-2.2)";
    expected = "consistent items I1, I2 (I3 dropped)";
    measured = rows_str rows;
    ok = rows = [ [ Value.str "I1" ]; [ Value.str "I2" ] ];
  }

(* E2: Example 3.1-3.2 — S-repairs and consistent answers. *)
let e2 () =
  let repairs =
    Repairs.S_repair.enumerate P.Supply.instance P.Supply.schema [ P.Supply.ind ]
  in
  let answers =
    let eng =
      Cqa.Engine.create ~schema:P.Supply.schema ~ics:[ P.Supply.ind ]
        P.Supply.instance
    in
    Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng
      P.Supply.items_query
  in
  let d3 =
    Instance.of_rows P.Supply.schema
      [
        ("Supply", [ [ Value.str "C1"; Value.str "R1"; Value.str "I1" ] ]);
        ("Articles", [ [ Value.str "I1" ]; [ Value.str "I2" ] ]);
      ]
  in
  let d3_rejected =
    not
      (Repairs.Check.is_s_repair ~original:P.Supply.instance P.Supply.schema
         [ P.Supply.ind ] d3)
  in
  {
    id = "E2";
    title = "S-repairs D1, D2; D3 rejected; Cons(Q) = {I1, I2} (Ex 3.1-3.2)";
    expected = "2 repairs (delete dangling tuple / insert Articles(I3)); D3 non-minimal";
    measured =
      Printf.sprintf "%d repairs: %s; Cons(Q)=%s; D3 rejected: %b"
        (List.length repairs) (deltas_str repairs) (rows_str answers)
        d3_rejected;
    ok =
      List.length repairs = 2
      && answers = [ [ Value.str "I1" ]; [ Value.str "I2" ] ]
      && d3_rejected;
  }

(* E3: Examples 3.3-3.4 — key repairs and the SQL-style rewriting. *)
let e3 () =
  let eng =
    Cqa.Engine.create ~schema:P.Employee.schema ~ics:[ P.Employee.key ]
      P.Employee.instance
  in
  let full = Cqa.Engine.consistent_answers eng P.Employee.full_query in
  let names = Cqa.Engine.consistent_answers eng P.Employee.names_query in
  let rewritten =
    Rewriting.Residue_rewrite.consistent_answers P.Employee.full_query
      P.Employee.schema [ P.Employee.key ] P.Employee.instance
  in
  {
    id = "E3";
    title = "Employee key repairs; Cons(Q1), Cons(Q2); rewriting (Ex 3.3-3.4)";
    expected = "Cons(Q1)={(smith,3),(stowe,7)}; Cons(Q2)={page,smith,stowe}; rewriting = Cons(Q1)";
    measured =
      Printf.sprintf "Q1: %s | Q2: %s | rewriting: %s" (rows_str full)
        (rows_str names) (rows_str rewritten);
    ok =
      full = [ [ Value.str "smith"; Value.int 3 ]; [ Value.str "stowe"; Value.int 7 ] ]
      && names = [ [ Value.str "page" ]; [ Value.str "smith" ]; [ Value.str "stowe" ] ]
      && rewritten = full;
  }

(* E4: Example 3.5 — repair program stable models. *)
let e4 () =
  let models =
    Asp.Stable.models
      (Repair_programs.Compile.repair_program P.Denial.schema [ P.Denial.kappa ])
      (Repair_programs.Compile.edb_of_instance P.Denial.instance)
  in
  let via_asp =
    Repair_programs.Asp_cqa.repairs P.Denial.instance P.Denial.schema
      [ P.Denial.kappa ]
  in
  let via_hg =
    Repairs.S_repair.enumerate P.Denial.instance P.Denial.schema [ P.Denial.kappa ]
  in
  let same =
    List.sort compare (List.map Instance.facts via_asp)
    = List.sort compare
        (List.map (fun (r : Repairs.Repair.t) -> Instance.facts r.repaired) via_hg)
  in
  {
    id = "E4";
    title = "repair program: 3 stable models = 3 S-repairs (Ex 3.5)";
    expected = "3 stable models, matching D1, D2, D3";
    measured =
      Printf.sprintf "%d stable models; repairs match hypergraph engine: %b"
        (List.length models) same;
    ok = List.length models = 3 && same;
  }

(* E5: Figure 1 / Example 4.1 — conflict hypergraph, S- and C-repairs. *)
let e5 () =
  let g =
    Constraints.Conflict_graph.build P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  let srs =
    Repairs.S_repair.enumerate P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  let crs =
    Repairs.C_repair.enumerate P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  {
    id = "E5";
    title = "conflict hypergraph: 4 S-repairs, 3 C-repairs (Fig 1 / Ex 4.1)";
    expected = "3 hyperedges; S-repairs D1..D4; C-repairs D2, D3, D4";
    measured =
      Printf.sprintf "%d edges; %d S-repairs; %d C-repairs"
        (List.length g.Constraints.Conflict_graph.edges)
        (List.length srs) (List.length crs);
    ok =
      List.length g.Constraints.Conflict_graph.edges = 3
      && List.length srs = 4
      && List.length crs = 3;
  }

(* E6: Example 4.2 — weak constraints select C-repair models. *)
let e6 () =
  let crs_asp =
    Repair_programs.Asp_cqa.c_repairs P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  let crs_hs =
    Repairs.C_repair.enumerate P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  let same =
    List.sort compare (List.map Instance.facts crs_asp)
    = List.sort compare
        (List.map (fun (r : Repairs.Repair.t) -> Instance.facts r.repaired) crs_hs)
  in
  {
    id = "E6";
    title = "weak constraints = C-repairs (Ex 4.2)";
    expected = "optimal stable models are exactly the 3 C-repairs";
    measured = Printf.sprintf "%d optimal models; agree: %b" (List.length crs_asp) same;
    ok = List.length crs_asp = 3 && same;
  }

(* E7: Example 4.3 — null-based tuple repair for the tgd. *)
let e7 () =
  let repairs =
    Repairs.S_repair.enumerate P.Supply.instance_with_cost
      P.Supply.schema_with_cost [ P.Supply.tgd ]
  in
  let has_null_insert =
    List.exists
      (fun r ->
        Fact.Set.mem
          (Fact.make "Articles" [ Value.str "I3"; Value.Null ])
          r.Repairs.Repair.inserted)
      repairs
  in
  {
    id = "E7";
    title = "null-padded insertion repair for the tgd (Ex 4.3)";
    expected = "2 repairs: delete Supply(C2,R1,I3) or insert Articles(I3, NULL)";
    measured =
      Printf.sprintf "%d repairs: %s" (List.length repairs) (deltas_str repairs);
    ok = List.length repairs = 2 && has_null_insert;
  }

(* E8: Example 4.4 — attribute-level null repairs. *)
let e8 () =
  let repairs =
    Repairs.Attr_repair.enumerate P.Denial.instance P.Denial.schema
      [ P.Denial.kappa ]
  in
  let sets =
    List.map
      (fun (r : Repairs.Attr_repair.t) ->
        Tid.Cell.Set.elements r.changes
        |> List.map (Format.asprintf "%a" Tid.Cell.pp))
      repairs
  in
  let has s = List.mem s sets in
  {
    id = "E8";
    title = "attribute-level NULL repairs (Ex 4.4)";
    expected =
      "paper displays change sets {ι6[1]} and {ι1[2],ι3[2]}; minimal-change \
       semantics yields 7 minimal sets including both";
    measured =
      Printf.sprintf "%d minimal change sets: %s" (List.length sets)
        (String.concat " | " (List.map (String.concat ",") sets));
    ok = List.length sets = 7 && has [ "t6[1]" ] && has [ "t1[2]"; "t3[2]" ];
  }

(* E9: Examples 5.1-5.2 — GAV mediation and global CQA. *)
let e9 () =
  let gav =
    Integration.Gav.make P.Universities.global_schema P.Universities.gav_views
  in
  let retrieved =
    Integration.Gav.retrieved_instance gav P.Universities.sources_52
  in
  let violated =
    not
      (Constraints.Ic.holds retrieved P.Universities.global_schema
         P.Universities.global_fd)
  in
  let rows =
    Integration.Global_cqa.consistent_answers gav
      ~sources:P.Universities.sources_52 ~ics:[ P.Universities.global_fd ]
      P.Universities.students_query
  in
  {
    id = "E9";
    title = "GAV mediation; global FD violated; consistent global answers (Ex 5.1-5.2)";
    expected = "number 101 inconsistent (john vs sue); consistent: (102,mary), (103,claire)";
    measured =
      Printf.sprintf "global FD violated: %b; consistent answers: %s" violated
        (rows_str rows);
    ok =
      violated
      && rows
         = [
             [ Value.str "102"; Value.str "mary" ];
             [ Value.str "103"; Value.str "claire" ];
           ];
  }

(* E10: Section 6 — CFDs and quality answers. *)
let e10 () =
  let fd_holds =
    Constraints.Ic.holds P.Customers.instance P.Customers.schema P.Customers.fd1
    && Constraints.Ic.holds P.Customers.instance P.Customers.schema P.Customers.fd2
  in
  let cfd_violated =
    not
      (Constraints.Ic.holds P.Customers.instance P.Customers.schema
         P.Customers.cfd)
  in
  let quality =
    Cleaning.Quality.quality_answers P.Customers.instance P.Customers.schema
      [ P.Customers.cfd ] P.Customers.names_query
  in
  {
    id = "E10";
    title = "CFD [CC=44,Zip]->[Street] violated while plain FDs hold (Sec 6)";
    expected = "FDs hold, CFD violated; quality-certain name: joe";
    measured =
      Printf.sprintf "FDs hold: %b; CFD violated: %b; quality names: %s" fd_holds
        cfd_violated (rows_str quality);
    ok = fd_holds && cfd_violated && quality = [ [ Value.str "joe" ] ];
  }

(* E11: Example 7.1 — causes and responsibilities. *)
let e11 () =
  let rho tid =
    Causality.Cause.responsibility P.Denial.instance P.Denial.schema P.Denial.q
      (Tid.of_int tid)
  in
  let measured =
    Printf.sprintf "ρ(ι6)=%.2f ρ(ι1)=%.2f ρ(ι3)=%.2f ρ(ι4)=%.2f ρ(ι2)=%.2f"
      (rho 6) (rho 1) (rho 3) (rho 4) (rho 2)
  in
  {
    id = "E11";
    title = "causes for Q: counterfactual and actual (Ex 7.1)";
    expected = "S(a3): ρ=1; R(a4,a3), R(a3,a3), S(a4): ρ=1/2; others 0";
    measured;
    ok =
      rho 6 = 1.0 && rho 1 = 0.5 && rho 3 = 0.5 && rho 4 = 0.5 && rho 2 = 0.0
      && rho 5 = 0.0;
  }

(* E12: Example 7.2 — cause computation via repair programs. *)
let e12 () =
  let asp =
    Repair_programs.Cause_rules.responsibilities P.Denial.instance
      P.Denial.schema P.Denial.q
  in
  let direct =
    Causality.Cause.actual_causes P.Denial.instance P.Denial.schema P.Denial.q
    |> List.map (fun (c : Causality.Cause.t) -> (c.tid, c.responsibility))
  in
  let pairs =
    Repair_programs.Cause_rules.cau_con_pairs P.Denial.instance P.Denial.schema
      P.Denial.q
  in
  {
    id = "E12";
    title = "causes via extended repair program (Ex 7.2)";
    expected = "ASP responsibilities = repair-connection ones; CauCon pairs from models";
    measured =
      Printf.sprintf "agree: %b; %d CauCon pairs" (asp = direct)
        (List.length pairs);
    ok = asp = direct && List.length pairs = 4;
  }

(* E13: Example 7.3 — attribute-level causes. *)
let e13 () =
  let rho tid pos =
    Causality.Attr_cause.responsibility P.Denial.instance P.Denial.schema
      P.Denial.q
      (Tid.Cell.make (Tid.of_int tid) pos)
  in
  {
    id = "E13";
    title = "attribute-level causes (Ex 7.3)";
    expected = "ι6[1] counterfactual (ρ=1); ι1[2] actual with Γ={ι3[2]} (ρ=1/2)";
    measured = Printf.sprintf "ρ(ι6[1])=%.2f ρ(ι1[2])=%.2f" (rho 6 1) (rho 1 2);
    ok = rho 6 1 = 1.0 && rho 1 2 = 0.5;
  }

(* E14: Example 7.4 — causality under the inclusion dependency. *)
let e14 () =
  let rho q ics tid =
    Causality.Under_ics.responsibility P.Courses.instance P.Courses.schema ~ics q
      ~answer:P.Courses.john (Tid.of_int tid)
  in
  let qa = P.Courses.q and qc = P.Courses.q2 in
  let psi = [ P.Courses.psi ] in
  let third = 1.0 /. 3.0 in
  {
    id = "E14";
    title = "causality under the IND ψ (Ex 7.4)";
    expected =
      "Q: ι1 stays ρ=1, ι4/ι8 drop to 0 under ψ; Q2: ι4/ι8 drop from 1/2 to 1/3";
    measured =
      Printf.sprintf
        "Q: ρψ(ι1)=%.2f ρψ(ι4)=%.2f ρψ(ι8)=%.2f; Q2: ρ(ι4)=%.2f→%.3f ρ(ι8)=%.2f→%.3f"
        (rho qa psi 1) (rho qa psi 4) (rho qa psi 8) (rho qc [] 4)
        (rho qc psi 4) (rho qc [] 8) (rho qc psi 8);
    ok =
      rho qa psi 1 = 1.0
      && rho qa psi 4 = 0.0
      && rho qa psi 8 = 0.0
      && rho qc [] 4 = 0.5
      && rho qc psi 4 = third
      && rho qc [] 8 = 0.5
      && rho qc psi 8 = third;
  }

let all : (string * (unit -> outcome)) list =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14);
  ]

let run_one (id, f) =
  let o = f () in
  Printf.printf "== %s: %s ==\n" o.id o.title;
  Printf.printf "  paper:    %s\n" o.expected;
  Printf.printf "  measured: %s\n" o.measured;
  Printf.printf "  [%s]\n\n" (if o.ok then "OK" else "MISMATCH");
  ignore id;
  o.ok

let run ids =
  let selected =
    match ids with
    | [] -> all
    | _ -> List.filter (fun (id, _) -> List.mem id ids) all
  in
  let results = List.map run_one selected in
  let passed = List.length (List.filter Fun.id results) in
  Printf.printf "experiments: %d/%d reproduced\n\n" passed (List.length results);
  passed = List.length results
