(* A minimal recursive-descent JSON reader — just enough to load the
   BENCH_*.json documents the benchmarks emit, without adding a JSON
   dependency to the repo.  Numbers are kept as floats; parse failures
   raise [Failure] with a byte offset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail !pos "short unicode escape";
                   let code =
                     int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                   in
                   (* Enough for the ASCII-plus names benchmarks emit;
                      encode the code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail start "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail !pos "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail !pos "expected , or ] in array"
          in
          elements []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing bytes after JSON value";
  v

let of_file path = parse (In_channel.with_open_text path In_channel.input_all)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function
  | Num f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Str s -> float_of_string_opt s
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
