(* Serving benchmark: replay a generated query/update mix against an
   in-process cqa server and report throughput and cache hit rate.

     dune exec bench/serve.exe                 # 1200 requests
     dune exec bench/serve.exe -- 5000         # choose the request count

   The server runs in this very process: the benchmark interleaves
   Server.Loop.step with non-blocking client reads/writes on a connected
   Unix-domain socket, so the numbers include the full protocol path
   (parse, dispatch, render, socket I/O) without scheduler noise. *)

module Value = Relational.Value
module Instance = Relational.Instance

(* ---- client plumbing ------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable lines : string list; (* complete lines, oldest first *)
}

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  Unix.set_nonblock fd;
  { fd; inbuf = Buffer.create 4096; lines = [] }

let send loop c text =
  let pos = ref 0 in
  while !pos < String.length text do
    match Unix.write_substring c.fd text !pos (String.length text - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        ignore (Server.Loop.step ~timeout:0.01 loop)
  done

let pump_lines c =
  let s = Buffer.contents c.inbuf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | None ->
        Buffer.clear c.inbuf;
        Buffer.add_substring c.inbuf s start (String.length s - start);
        c.lines <- c.lines @ List.rev acc
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
  in
  go 0 []

(* Read one full response (status line .. "."), stepping the server. *)
let recv loop c =
  let bytes = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec take acc = function
    | "." :: rest ->
        c.lines <- rest;
        List.rev acc
    | line :: rest -> take (line :: acc) rest
    | [] ->
        if Unix.gettimeofday () > deadline then
          failwith "bench: no response within 30s";
        ignore (Server.Loop.step ~timeout:0.01 loop);
        (match Unix.read c.fd bytes 0 (Bytes.length bytes) with
        | 0 -> failwith "bench: server closed the connection"
        | n ->
            Buffer.add_subbytes c.inbuf bytes 0 n;
            pump_lines c
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ());
        take acc c.lines
  in
  let lines = take [] c.lines in
  (match lines with
  | status :: _ when String.length status >= 3 && String.sub status 0 3 = "ERR"
    ->
      failwith ("bench: unexpected " ^ status)
  | [] -> failwith "bench: empty response"
  | _ -> ());
  lines

let request loop c line =
  send loop c (line ^ "\n");
  recv loop c

(* ---- the workload ---------------------------------------------------- *)

let doc_text db =
  let b = Buffer.create 4096 in
  Buffer.add_string b "relation T(k, v)\n";
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "row T(%s, %s)\n"
           (Value.to_string row.(0))
           (Value.to_string row.(1))))
    (Instance.rows db ~rel:"T");
  Buffer.add_string b "key T(k)\n";
  Buffer.add_string b "query q(X) :- T(X, Y)\n";
  Buffer.add_string b "query full(X, Y) :- T(X, Y)\n";
  Buffer.contents b

(* One full replay: fresh socket, loop, sessions and request mix (the
   RNG is re-seeded per pass, so every pass sees the same stream).
   Returns the loop (for registry/workload readback), the wall time of
   the request phase, the STATS body, and the still-open client. *)
let run_pass ~tag ~requests ?metrics_fd ?stats ?sampler ?(progress = true) () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqa-serve-bench-%d-%s.sock" (Unix.getpid ()) tag)
  in
  let loop =
    Server.Loop.create ~cache_capacity:256 ?metrics_fd ?stats ?sampler
      ~progress
      (Server.Loop.listen_unix sock)
  in
  Server.Handler.sample_gauges (Server.Loop.handler loop);
  let c = connect sock in
  ignore (Server.Loop.step ~timeout:0.01 loop) (* accept *);

  (* Four resident sessions over two instance shapes. *)
  let sessions = [ "s1"; "s2"; "s3"; "s4" ] in
  List.iteri
    (fun i sid ->
      let db, _ =
        Workload.Gen.key_conflict_instance ~seed:(42 + i) ~n:40
          ~conflict_fraction:0.2 ()
      in
      let _ = request loop c (Printf.sprintf "LOAD %s\n%s." sid (doc_text db)) in
      ())
    sessions;

  let rng = Random.State.make [| 7 |] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let fresh = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to requests do
    let sid = pick sessions in
    let r = Random.State.int rng 100 in
    let line =
      if r < 55 then Printf.sprintf "QUERY %s q" sid
      else if r < 70 then Printf.sprintf "QUERY %s full" sid
      else if r < 80 then Printf.sprintf "CHECK %s" sid
      else if r < 88 then Printf.sprintf "MEASURE %s" sid
      else if r < 95 then Printf.sprintf "REPAIRS %s s" sid
      else begin
        incr fresh;
        Printf.sprintf "UPDATE %s add T(%d, %d)" sid (5000 + !fresh) !fresh
      end
    in
    ignore (request loop c line)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats_body = request loop c "STATS" in
  (loop, c, elapsed, stats_body, sock)

let finish_pass (loop, c, _, _, sock) =
  ignore (request loop c "QUIT");
  Unix.close c.fd;
  Unix.unlink sock

let () =
  let requests, metrics_port =
    match Sys.argv with
    | [| _ |] -> (1200, None)
    | [| _; n |] -> (int_of_string n, None)
    | [| _; n; p |] -> (int_of_string n, Some (int_of_string p))
    | _ ->
        prerr_endline "usage: serve.exe [REQUESTS [METRICS_PORT]]";
        exit 2
  in
  (* With a metrics port the replay doubles as a live scrape target:
     curl 127.0.0.1:PORT/metrics while the benchmark steps the loop. *)
  let metrics_fd =
    Option.map
      (fun p ->
        let fd, actual = Server.Loop.listen_tcp ~port:p () in
        Printf.printf "metrics at http://127.0.0.1:%d/metrics\n%!" actual;
        fd)
      metrics_port
  in

  (* Warm the code paths and level the heap before timing: without
     this the second measured pass starts on the first one's grown
     heap, which is pure noise in the recorded ratio. *)
  finish_pass (run_pass ~tag:"warmup" ~requests:(min 300 requests) ());
  Gc.compact ();

  (* Pass 1 — workload introspection off: the baseline the committed
     BENCH_serve.json row and counters come from. *)
  let ((loop, _, elapsed, stats, _) as pass1) =
    run_pass ~tag:"plain" ~requests ?metrics_fd ()
  in
  let metric name =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ n; v ] when n = name -> Some v
        | _ -> None)
      stats
    |> Option.value ~default:"?"
  in
  Printf.printf "requests        %d (+5 LOAD/STATS)\n" requests;
  Printf.printf "elapsed         %.3f s\n" elapsed;
  Printf.printf "throughput      %.0f req/s\n" (float_of_int requests /. elapsed);
  Printf.printf "cache hits      %s\n" (metric "cache_hits");
  Printf.printf "cache misses    %s\n" (metric "cache_misses");
  Printf.printf "cache hit rate  %s\n" (metric "cache_hit_rate");
  Printf.printf "cache entries   %s\n" (metric "cache_entries");
  Printf.printf "bytes in/out    %s / %s\n" (metric "bytes_in")
    (metric "bytes_out");
  List.iter
    (fun l ->
      if String.length l >= 8 && String.sub l 0 8 = "latency_" then
        print_endline l)
    stats;
  (* Machine-readable results: request mix outcome plus every counter of
     the server's obs registry (request scalars and solver effort). *)
  let jnum s =
    (* STATS values are numeric; keep the JSON valid if one is missing. *)
    match float_of_string_opt s with Some _ -> s | None -> Bench_json.str s
  in
  Bench_json.record ~bench:"serve"
    [
      ("requests", Bench_json.int requests);
      ("elapsed_s", Bench_json.num elapsed);
      ("throughput_rps", Bench_json.num (float_of_int requests /. elapsed));
      ("cache_hits", jnum (metric "cache_hits"));
      ("cache_misses", jnum (metric "cache_misses"));
      ("cache_hit_rate", jnum (metric "cache_hit_rate"));
      ("bytes_in", jnum (metric "bytes_in"));
      ("bytes_out", jnum (metric "bytes_out"));
    ];

  (* Pass 2 — the same replay with workload stats + tail sampling armed,
     to price the introspection layer and exercise WORKLOAD end to end.
     Its throughput is recorded as its own row (and as a ratio against
     pass 1), never as the baseline. *)
  let wstats = Obs.Stats.create ~capacity:256 () in
  let wsampler =
    Obs.Sampler.create ~capacity:64 ~threshold_s:0.050 ~sample_every:101 ()
  in
  Gc.compact ();
  let ((loop2, c2, elapsed2, _, _) as pass2) =
    run_pass ~tag:"workload" ~requests ~stats:wstats ~sampler:wsampler ()
  in
  (* The recorded ratio compares back-to-back pairs, not global minima:
     single ~0.1 s passes jitter by 10%+ on a shared box, and slow
     drift (heap warmth, neighbours) moves both members of an adjacent
     pair together, so per-pair ratios are far more stable than any
     min-of-N across the whole run.  Eight throwaway pairs run in
     alternating order (armed/plain, plain/armed, ...) to cancel
     position bias, and the median of their per-pair ratios is what
     lands in BENCH_serve.json; pass 1 and pass 2 stay out of the
     ratio — pass 1 sits right after warmup and both carry readback
     duties, which biases them.  The repeat armed passes use throwaway
     stores — the dump reflects exactly one replay.  CQA_SERVE_AA=1
     turns the armed passes plain, an A/A self-check of the harness:
     the printed ratio should then hover around 1.0. *)
  let aa_check = Sys.getenv_opt "CQA_SERVE_AA" <> None in
  let armed_pass tag =
    Gc.compact ();
    let ((_, _, e, _, _) as p) =
      (if aa_check then run_pass ~tag ~requests ()
       else
         run_pass ~tag ~requests
           ~stats:(Obs.Stats.create ~capacity:256 ())
           ~sampler:
             (Obs.Sampler.create ~capacity:64 ~threshold_s:0.050
                ~sample_every:101 ())
           ())
    in
    finish_pass p;
    e
  in
  let plain_pass tag =
    Gc.compact ();
    let ((_, _, e, _, _) as p) = run_pass ~tag ~requests () in
    finish_pass p;
    e
  in
  let ratios = ref [] in
  let best2 = ref elapsed2 in
  for i = 1 to 8 do
    let tag suffix = Printf.sprintf "%s-%d" suffix i in
    let p, a =
      if i mod 2 = 1 then begin
        let a = armed_pass (tag "workload") in
        (plain_pass (tag "plain"), a)
      end
      else begin
        let p = plain_pass (tag "plain") in
        (p, armed_pass (tag "workload"))
      end
    in
    best2 := Float.min !best2 a;
    ratios := (p /. a) :: !ratios
  done;
  let elapsed2 = !best2 in
  let ratio =
    (* Median of the eight pair ratios (mean of the middle two). *)
    let l = List.sort Float.compare !ratios in
    let n = List.length l in
    (List.nth l ((n - 1) / 2) +. List.nth l (n / 2)) /. 2.0
  in
  Printf.printf "workload pass   %.3f s (%.0f req/s, ratio %.3f)\n" elapsed2
    (float_of_int requests /. elapsed2)
    ratio;
  let top = request loop2 c2 "WORKLOAD TOP 5" in
  List.iter print_endline top;
  List.iter print_endline (request loop2 c2 "WORKLOAD BY branch");
  (* The workload dump, same shape as `cqa_server --workload-dump`, for
     `cqa report` and the CI JSON check. *)
  let oc = open_out "BENCH_workload.json" in
  Printf.fprintf oc "{\"workload\":%s,\"sampler\":%s}\n"
    (Obs.Stats.to_json wstats)
    (Obs.Sampler.summary_json wsampler);
  close_out oc;
  Printf.printf "workload stats  %d fingerprints, %d recorded, %.1f%% attributed\n"
    (Obs.Stats.length wstats) (Obs.Stats.recorded wstats)
    (if Obs.Stats.total_wall_s wstats > 0.0 then
       100.0 *. Obs.Stats.attributed_s wstats /. Obs.Stats.total_wall_s wstats
     else 100.0);
  Bench_json.record ~bench:"serve_workload"
    [
      ("requests", Bench_json.int requests);
      ("elapsed_s", Bench_json.num elapsed2);
      ("throughput_rps", Bench_json.num (float_of_int requests /. elapsed2));
      ("workload_ratio", Bench_json.num ratio);
      ("fingerprints", Bench_json.int (Obs.Stats.length wstats));
      ("tail_kept", Bench_json.int (Obs.Sampler.kept wsampler));
    ];

  (* The progress-armed vs plain dual pass: same pairing methodology as
     the workload ratio above, but the armed side is exactly the
     production default (an Obs.Progress context per session-touching
     request — heartbeats, INFLIGHT registration, flight recorder) and
     the plain side turns it off.  The overhead budget is a hard gate:
     the in-flight machinery must stay under 5% or the bench fails. *)
  let progress_ratios = ref [] in
  let timed_pass ~progress tag =
    Gc.compact ();
    let ((_, _, e, _, _) as p) =
      run_pass ~tag ~requests ~progress:(progress && not aa_check) ()
    in
    finish_pass p;
    e
  in
  for i = 1 to 8 do
    let tag suffix = Printf.sprintf "progress-%s-%d" suffix i in
    let p, a =
      if i mod 2 = 1 then begin
        let a = timed_pass ~progress:true (tag "armed") in
        (timed_pass ~progress:false (tag "plain"), a)
      end
      else begin
        let p = timed_pass ~progress:false (tag "plain") in
        (p, timed_pass ~progress:true (tag "armed"))
      end
    in
    progress_ratios := (a /. p) :: !progress_ratios
  done;
  let progress_ratio =
    let l = List.sort Float.compare !progress_ratios in
    let n = List.length l in
    (List.nth l ((n - 1) / 2) +. List.nth l (n / 2)) /. 2.0
  in
  Printf.printf "progress ratio  %.3f (armed/plain, median of 8 pairs)\n"
    progress_ratio;
  Bench_json.record ~bench:"serve_progress"
    [
      ("requests", Bench_json.int requests);
      ("progress_ratio", Bench_json.num progress_ratio);
    ];

  Bench_json.write
    ~counters:
      (Obs.Registry.counters_list
         (Server.Metrics.registry
            (Server.Handler.metrics (Server.Loop.handler loop))))
    "BENCH_serve.json";
  finish_pass pass2;
  finish_pass pass1;
  if progress_ratio > 1.05 then begin
    Printf.eprintf
      "FAIL: progress-armed serving is %.1f%% over the plain pass (budget \
       5%%)\n"
      ((progress_ratio -. 1.0) *. 100.0);
    exit 1
  end;
  if float_of_string (metric "cache_hit_rate") <= 0.0 then begin
    prerr_endline "FAIL: expected a non-zero cache hit rate";
    exit 1
  end;
  if Obs.Stats.length wstats = 0 then begin
    prerr_endline "FAIL: workload pass recorded no fingerprints";
    exit 1
  end
