(* The benchmark harness: reproduces every worked example of the paper
   (E1..E14) and measures its qualitative scaling claims (B1..B6).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- quick        # smaller sweeps
     dune exec bench/main.exe -- e5 b1 b4     # selected experiments
*)

let () =
  let args = List.tl (Array.to_list Sys.argv) |> List.map String.lowercase_ascii in
  let quick = List.mem "quick" args in
  let ids = List.filter (fun a -> a <> "quick") args in
  let e_ids = List.filter (fun a -> String.length a > 0 && a.[0] = 'e') ids in
  let b_ids = List.filter (fun a -> String.length a > 0 && a.[0] = 'b') ids in
  let run_e = ids = [] || e_ids <> [] in
  let run_b = ids = [] || b_ids <> [] in
  let ok = ref true in
  if run_e then begin
    print_endline "=== Paper example reproductions ===";
    if not (Experiments.run e_ids) then ok := false
  end;
  if run_b then begin
    print_endline "=== Scaling benchmarks ===";
    Scaling.run ~quick b_ids;
    (* Machine-readable results, with the solver-effort counters the run
       accumulated in the obs registry (sat.dpll.decisions, repairs.candidates,
       asp.candidates, ...). *)
    Bench_json.write
      ~counters:(Obs.Registry.counters_list (Obs.Registry.current ()))
      "BENCH_scaling.json"
  end;
  if not !ok then exit 1
