(* B1..B6: scaling benchmarks for the survey's qualitative claims.  Each
   prints one table; Bechamel measures the repeatable cases and one-shot
   wall clocks cover the exponential blowups. *)

module Instance = Relational.Instance
module Value = Relational.Value
module Gen = Workload.Gen

let header id title claim =
  Printf.printf "== %s: %s ==\n" id title;
  Printf.printf "  claim: %s\n" claim

(* B1: Section 3.1 — instances with exponentially many repairs; repair
   enumeration blows up while a rewriting evaluation stays flat. *)
let b1 ~quick () =
  header "B1" "exponentially many repairs"
    "#S-repairs doubles per conflict pair; enumeration time follows, \
     FO-rewriting evaluation does not";
  let sizes = if quick then [ 2; 4; 6; 8 ] else [ 2; 4; 6; 8; 10; 12 ] in
  Printf.printf "  %6s %12s %14s %14s %14s %s\n" "pairs" "#S-repairs"
    "enum-time" "enum-j4" "rewrite-time" "par=seq";
  List.iter
    (fun pairs ->
      let db, key = Gen.key_conflict_chain ~seed:11 ~pairs () in
      let schema = Instance.schema db in
      let repairs, enum_ns =
        Bech_harness.best_of 3 (fun () ->
            Repairs.S_repair.enumerate db schema [ key ])
      in
      (* Same enumeration with four domains: must be byte-identical.
         Best-of-3 because domain spawn-time jitter at tiny sizes would
         otherwise dominate the measurement (and flap the bench gate). *)
      let repairs4, enum4_ns =
        Bech_harness.best_of 3 (fun () ->
            Par.set_default_jobs 4;
            Fun.protect
              ~finally:(fun () -> Par.set_default_jobs 1)
              (fun () -> Repairs.S_repair.enumerate db schema [ key ]))
      in
      let par_equal =
        List.length repairs = List.length repairs4
        && List.for_all2 Repairs.Repair.equal repairs repairs4
      in
      let q = Gen.employees_query () in
      let keys = [ ("T", [ 0 ]) ] in
      let _, rw_ns =
        Bech_harness.once (fun () ->
            Rewriting.Key_rewrite.consistent_answers q ~keys db)
      in
      Printf.printf "  %6d %12d %14s %14s %14s %b\n" pairs
        (List.length repairs) (Bech_harness.pp_ns enum_ns)
        (Bech_harness.pp_ns enum4_ns) (Bech_harness.pp_ns rw_ns) par_equal;
      Bench_json.record ~bench:"b1"
        [
          ("pairs", Bench_json.int pairs);
          ("s_repairs", Bench_json.int (List.length repairs));
          ("enum_ns", Bench_json.num enum_ns);
          ("enum_jobs4_ns", Bench_json.num enum4_ns);
          ("par_equal", Bench_json.str (string_of_bool par_equal));
          ("rewrite_ns", Bench_json.num rw_ns);
        ])
    sizes;
  print_newline ()

(* B2: Section 3.2 — CQA latency by method as the database grows. *)
let b2 ~quick () =
  header "B2" "CQA latency: rewriting vs repair enumeration vs ASP"
    "FO rewriting scales polynomially; repair enumeration and ASP pay for \
     materializing the repair space";
  let q = Gen.employees_query () in
  let keys = [ ("T", [ 0 ]) ] in
  let sizes = if quick then [ 40; 80 ] else [ 40; 80; 160 ] in
  List.iter
    (fun n ->
      let db, key =
        Gen.key_conflict_instance ~seed:5 ~n ~conflict_fraction:0.1 ()
      in
      let schema = Instance.schema db in
      let enum () =
        let eng = Cqa.Engine.create ~schema ~ics:[ key ] db in
        ignore (Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
      in
      let fm () = ignore (Rewriting.Key_rewrite.consistent_answers q ~keys db) in
      let asp () =
        let eng = Cqa.Engine.create ~schema ~ics:[ key ] db in
        ignore (Cqa.Engine.consistent_answers ~method_:`Asp eng q)
      in
      let cases =
        [ ("fm-rewriting", fm); ("repair-enum", enum) ]
        @ if n <= 40 then [ ("asp", asp) ] else []
      in
      let results = Bech_harness.group (Printf.sprintf "b2/n=%d" n) cases in
      List.iter
        (fun (name, ns) ->
          Printf.printf "  n=%-5d %-14s %s\n" n name (Bech_harness.pp_ns ns);
          Bench_json.record ~bench:"b2"
            [
              ("n", Bench_json.int n);
              ("method", Bench_json.str name);
              ("ns", Bench_json.num ns);
            ])
        results;
      (* No silent caps: above n=40 the ASP repair space makes grounding
         explode, so instead of a skipped row the case runs under a real
         deadline and is cancelled cooperatively — the recorded row
         carries the final progress snapshot (phase reached, candidates
         processed), not a bare "timeout" string. *)
      if n > 40 then begin
        let budget_s = 0.25 in
        let ctx =
          Obs.Progress.create ~deadline_s:budget_s ~label:"b2/asp" ~id:n ()
        in
        match Obs.Progress.run ctx (fun () -> Bech_harness.once asp) with
        | (), ns ->
            Printf.printf "  n=%-5d %-14s %s\n" n "asp" (Bech_harness.pp_ns ns);
            Bench_json.record ~bench:"b2"
              [
                ("n", Bench_json.int n);
                ("method", Bench_json.str "asp");
                ("ns", Bench_json.num ns);
              ]
        | exception Obs.Progress.Deadline_exceeded ->
            Printf.printf
              "  n=%-5d %-14s timed out (budget %.0f ms, phase %s, %d \
               candidates)\n"
              n "asp" (budget_s *. 1e3)
              (Obs.Progress.phase_of ctx)
              (Obs.Progress.work ctx);
            Bench_json.record ~bench:"b2"
              [
                ("n", Bench_json.int n);
                ("method", Bench_json.str "asp");
                ("timed_out", Bench_json.str "true");
                ("budget_ms", Bench_json.num (budget_s *. 1e3));
                ("phase", Bench_json.str (Obs.Progress.phase_of ctx));
                ("candidates", Bench_json.int (Obs.Progress.work ctx));
              ]
      end)
    sizes;
  (* Forced-timeout enumeration with the worker pool armed.  The instance
     is shaped so the deadline must blow inside Par.map chunks: only 10
     conflict pairs (the sequential hitting-set cross product — 2^10
     combinations — finishes in well under the budget) but 4000 rows, so
     materializing and querying the 1024 repairs dominates and cannot
     finish within 25 ms.  The cancellation then surfaces as
     par.cancelled — CI asserts both fields of this row. *)
  let db, key =
    Gen.key_conflict_instance ~seed:11 ~n:4000 ~conflict_fraction:0.005 ()
  in
  let schema = Instance.schema db in
  let eng = Cqa.Engine.create ~schema ~ics:[ key ] db in
  let budget_s = 0.025 in
  let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
  let ctx =
    Obs.Progress.create ~deadline_s:budget_s ~label:"b2/enum-deadline" ~id:0 ()
  in
  Par.set_default_jobs 4;
  let timed_out =
    Fun.protect
      ~finally:(fun () -> Par.set_default_jobs 1)
      (fun () ->
        match
          Obs.Progress.run ctx (fun () ->
              Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
        with
        | _ -> false
        | exception Obs.Progress.Deadline_exceeded -> true)
  in
  let delta =
    Obs.Registry.counter_delta ~since:before (Obs.Registry.current ())
  in
  let par_cancelled =
    Option.value ~default:0 (List.assoc_opt "par.cancelled" delta)
  in
  Printf.printf
    "  enum-deadline pairs=10 jobs=4 timed_out=%b phase=%s candidates=%d \
     par_cancelled=%d\n"
    timed_out
    (Obs.Progress.phase_of ctx)
    (Obs.Progress.work ctx) par_cancelled;
  Bench_json.record ~bench:"b2"
    [
      ("method", Bench_json.str "enum-deadline");
      ("pairs", Bench_json.int 10);
      ("jobs", Bench_json.int 4);
      ("budget_ms", Bench_json.num (budget_s *. 1e3));
      ("timed_out", Bench_json.str (string_of_bool timed_out));
      ("phase", Bench_json.str (Obs.Progress.phase_of ctx));
      ("candidates", Bench_json.int (Obs.Progress.work ctx));
      ("par_cancelled", Bench_json.int par_cancelled);
    ];
  print_newline ()

(* B3: Section 4.1 — C-repair problems are harder than S-repair ones. *)
let b3 ~quick () =
  header "B3" "C-repairs vs S-repairs"
    "finding one S-repair (greedy maximal independent set) stays cheap; \
     minimum-cardinality repair (branch-and-bound hitting set) grows with \
     the conflict count";
  let sizes = if quick then [ 30; 60 ] else [ 30; 60; 90 ] in
  List.iter
    (fun n ->
      let db, kappa = Gen.denial_instance ~seed:7 ~n ~conflict_fraction:0.4 () in
      let schema = Instance.schema db in
      let g = Constraints.Conflict_graph.build db schema [ kappa ] in
      let results =
        Bech_harness.group
          (Printf.sprintf "b3/n=%d" n)
          [
            ( "one-s-repair",
              fun () -> ignore (Repairs.S_repair.one db schema [ kappa ]) );
            ( "c-repair-min",
              fun () -> ignore (Repairs.C_repair.one db schema [ kappa ]) );
          ]
      in
      List.iter
        (fun (name, ns) ->
          Printf.printf "  n=%-5d edges=%-4d %-14s %s\n" n
            (List.length g.Constraints.Conflict_graph.edges)
            name (Bech_harness.pp_ns ns);
          Bench_json.record ~bench:"b3"
            [
              ("n", Bench_json.int n);
              ("edges", Bench_json.int (List.length g.Constraints.Conflict_graph.edges));
              ("case", Bench_json.str name);
              ("ns", Bench_json.num ns);
            ])
        results)
    sizes;
  print_newline ()

(* B4: Section 3.3 — repair programs have exactly the required power:
   ASP cautious answers equal repair-enumeration answers. *)
let b4 ~quick () =
  header "B4" "ASP CQA = repair-enumeration CQA (differential)"
    "stable models of the repair program are the S-repairs, so cautious \
     answers agree with enumeration on every instance";
  let trials = if quick then 10 else 30 in
  let q = Gen.employees_query () in
  let agree = ref 0 in
  let asp_total = ref 0.0 and enum_total = ref 0.0 in
  for seed = 1 to trials do
    let db, key =
      Gen.key_conflict_instance ~seed ~n:24 ~conflict_fraction:0.25 ()
    in
    let schema = Instance.schema db in
    let eng = Cqa.Engine.create ~schema ~ics:[ key ] db in
    let a, t1 =
      Bech_harness.once (fun () -> Cqa.Engine.consistent_answers ~method_:`Asp eng q)
    in
    let b, t2 =
      Bech_harness.once (fun () ->
          Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
    in
    if a = b then incr agree;
    asp_total := !asp_total +. t1;
    enum_total := !enum_total +. t2
  done;
  Printf.printf "  agreement: %d/%d instances\n" !agree trials;
  Printf.printf "  mean asp:  %s\n"
    (Bech_harness.pp_ns (!asp_total /. float_of_int trials));
  Printf.printf "  mean enum: %s\n\n"
    (Bech_harness.pp_ns (!enum_total /. float_of_int trials));
  Bench_json.record ~bench:"b4"
    [
      ("agree", Bench_json.int !agree);
      ("trials", Bench_json.int trials);
      ("mean_asp_ns", Bench_json.num (!asp_total /. float_of_int trials));
      ("mean_enum_ns", Bench_json.num (!enum_total /. float_of_int trials));
    ]

(* B5: Section 7 — responsibility via C-repairs vs the ASP route. *)
let b5 ~quick () =
  header "B5" "responsibility: repair connection vs ASP"
    "both compute the same responsibilities; the direct hypergraph route is \
     faster than stable-model enumeration";
  let trials = if quick then 6 else 15 in
  let agree = ref 0 in
  let direct_total = ref 0.0 and asp_total = ref 0.0 in
  let q = Workload.Paper.Denial.q in
  for seed = 1 to trials do
    let db, _ = Gen.denial_instance ~seed ~n:12 ~conflict_fraction:0.5 () in
    let schema = Instance.schema db in
    if Logic.Cq.holds q db then begin
      let direct, t1 =
        Bech_harness.once (fun () ->
            Causality.Cause.actual_causes db schema q
            |> List.map (fun (c : Causality.Cause.t) -> (c.tid, c.responsibility)))
      in
      let asp, t2 =
        Bech_harness.once (fun () ->
            Repair_programs.Cause_rules.responsibilities db schema q)
      in
      if direct = asp then incr agree;
      direct_total := !direct_total +. t1;
      asp_total := !asp_total +. t2
    end
    else incr agree
  done;
  Printf.printf "  agreement: %d/%d instances\n" !agree trials;
  Printf.printf "  mean direct: %s\n"
    (Bech_harness.pp_ns (!direct_total /. float_of_int trials));
  Printf.printf "  mean asp:    %s\n\n"
    (Bech_harness.pp_ns (!asp_total /. float_of_int trials));
  Bench_json.record ~bench:"b5"
    [
      ("agree", Bench_json.int !agree);
      ("trials", Bench_json.int trials);
      ("mean_direct_ns", Bench_json.num (!direct_total /. float_of_int trials));
      ("mean_asp_ns", Bench_json.num (!asp_total /. float_of_int trials));
    ]

(* B6: Section 8 / [16,17] — inconsistency degree tracks the planted
   violation rate. *)
let b6 ~quick () =
  header "B6" "inconsistency measures vs planted conflict rate"
    "repair-based degree grows monotonically with the planted rate";
  let n = if quick then 40 else 100 in
  Printf.printf "  %6s %10s %12s %12s\n" "rate" "drastic" "confl-ratio"
    "repair-based";
  List.iter
    (fun rate ->
      let db, key = Gen.key_conflict_instance ~seed:3 ~n ~conflict_fraction:rate () in
      let schema = Instance.schema db in
      let measure f = f db schema [ key ] in
      Printf.printf "  %6.2f %10.2f %12.3f %12.3f\n" rate
        (measure Measures.Degree.drastic)
        (measure Measures.Degree.conflicting_tuple_ratio)
        (measure Measures.Degree.repair_based);
      Bench_json.record ~bench:"b6"
        [
          ("rate", Bench_json.num rate);
          ("drastic", Bench_json.num (measure Measures.Degree.drastic));
          ( "conflicting_ratio",
            Bench_json.num (measure Measures.Degree.conflicting_tuple_ratio) );
          ("repair_based", Bench_json.num (measure Measures.Degree.repair_based));
        ])
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  print_newline ()

(* B7: ConsEx's magic-set optimization — focused evaluation derives fewer
   facts and runs faster when the query is selective. *)
let b7 ~quick () =
  header "B7" "magic sets: focused vs full Datalog evaluation"
    "bottom-up evaluation restricted to the query's cone derives a fraction \
     of the facts (ConsEx [43] uses this on repair programs)";
  let open Logic in
  let x = Term.var "X" and y = Term.var "Y" and z = Term.var "Z" in
  let tc =
    Datalog.Program.make
      [
        Datalog.Rule.make (Atom.make "path" [ x; y ]) [ Atom.make "edge" [ x; y ] ];
        Datalog.Rule.make
          (Atom.make "path" [ x; z ])
          [ Atom.make "edge" [ x; y ]; Atom.make "path" [ y; z ] ];
      ]
  in
  let sizes = if quick then [ 20; 40 ] else [ 20; 40; 80 ] in
  Printf.printf "  %6s %12s %12s %14s %14s\n" "chains" "plain-facts"
    "magic-facts" "plain-time" "magic-time";
  List.iter
    (fun chains ->
      (* [chains] disjoint 6-node chains; the query asks about one chain. *)
      let edb =
        List.concat
          (List.init chains (fun c ->
               List.init 5 (fun i ->
                   Relational.Fact.make "edge"
                     [
                       Value.int ((c * 10) + i); Value.int ((c * 10) + i + 1);
                     ])))
      in
      let query = Atom.make "path" [ Term.int 0; Term.var "Z" ] in
      let plain_facts, magic_facts = Datalog.Magic.derived_count tc edb ~query in
      let _, plain_ns = Bech_harness.once (fun () -> Datalog.Eval.run tc edb) in
      let _, magic_ns = Bech_harness.once (fun () -> Datalog.Magic.answers tc edb ~query) in
      Printf.printf "  %6d %12d %12d %14s %14s\n" chains plain_facts
        magic_facts (Bech_harness.pp_ns plain_ns) (Bech_harness.pp_ns magic_ns);
      Bench_json.record ~bench:"b7"
        [
          ("chains", Bench_json.int chains);
          ("plain_facts", Bench_json.int plain_facts);
          ("magic_facts", Bench_json.int magic_facts);
          ("plain_ns", Bench_json.num plain_ns);
          ("magic_ns", Bench_json.num magic_ns);
        ])
    sizes;
  print_newline ()

(* B8: incremental conflict maintenance vs full rebuild per update. *)
let b8 ~quick () =
  header "B8" "incremental maintenance vs rebuild (updates, Sec 4.1)"
    "maintaining the conflict hypergraph across insertions beats rebuilding \
     it after every update";
  let sizes = if quick then [ 50; 100 ] else [ 50; 100; 200 ] in
  List.iter
    (fun n ->
      let db, key =
        Gen.key_conflict_instance ~seed:13 ~n ~conflict_fraction:0.2 ()
      in
      let schema = Instance.schema db in
      let facts = Instance.fact_list db in
      let _, inc_ns =
        Bech_harness.once (fun () ->
            List.fold_left
              (fun t f -> fst (Repairs.Incremental.insert t f))
              (Repairs.Incremental.create (Instance.create schema) schema [ key ])
              facts)
      in
      let _, rebuild_ns =
        Bech_harness.once (fun () ->
            ignore
              (List.fold_left
                 (fun acc f ->
                   let acc = Instance.add acc f in
                   ignore (Constraints.Conflict_graph.build acc schema [ key ]);
                   acc)
                 (Instance.create schema) facts))
      in
      Printf.printf "  n=%-5d incremental %14s   rebuild-per-update %14s\n" n
        (Bech_harness.pp_ns inc_ns) (Bech_harness.pp_ns rebuild_ns);
      Bench_json.record ~bench:"b8"
        [
          ("n", Bench_json.int n);
          ("incremental_ns", Bench_json.num inc_ns);
          ("rebuild_ns", Bench_json.num rebuild_ns);
        ])
    sizes;
  print_newline ()

(* B9: counting repairs — closed form vs hitting sets vs enumeration. *)
let b9 ~quick () =
  header "B9" "counting repairs (Sec 3.2, [90])"
    "the key-block closed form counts in linear time where enumeration is \
     exponential";
  let sizes = if quick then [ 6; 10 ] else [ 6; 10; 12 ] in
  Printf.printf "  %6s %12s %14s %14s\n" "pairs" "#repairs" "closed-form"
    "enumeration";
  List.iter
    (fun pairs ->
      let db, key = Gen.key_conflict_chain ~seed:29 ~pairs () in
      let schema = Instance.schema db in
      (* Best-of-3: the small sizes finish in well under a millisecond,
         where single-shot timings flap the bench gate. *)
      let count, cf_ns =
        Bech_harness.best_of 3 (fun () ->
            Repairs.Count.s_repairs db schema [ key ])
      in
      let _, enum_ns =
        Bech_harness.best_of 3 (fun () ->
            Repairs.S_repair.enumerate db schema [ key ])
      in
      Printf.printf "  %6d %12d %14s %14s\n" pairs count (Bech_harness.pp_ns cf_ns)
        (Bech_harness.pp_ns enum_ns);
      Bench_json.record ~bench:"b9"
        [
          ("pairs", Bench_json.int pairs);
          ("repairs", Bench_json.int count);
          ("closed_form_ns", Bench_json.num cf_ns);
          ("enum_ns", Bench_json.num enum_ns);
        ])
    sizes;
  print_newline ()

(* B10: approximation quality — how often the polynomial bounds close. *)
let b10 ~quick () =
  header "B10" "approximation of CQA (Sec 3.2, [65, 69-71])"
    "under/over bounds always bracket the consistent answers at a fraction \
     of the exact cost once the repair space is exponential; the interval \
     narrows (and eventually closes) with more samples";
  let trials = if quick then 10 else 25 in
  let q = Gen.full_tuple_query () in
  let closed = ref 0 and sound = ref 0 in
  let approx_total = ref 0.0 and exact_total = ref 0.0 in
  for seed = 1 to trials do
    (* Half the tuples conflict: the repair space has ~2^10 elements, so
       exact enumeration pays while the bounds stay polynomial. *)
    let db, key = Gen.key_conflict_instance ~seed ~n:44 ~conflict_fraction:0.5 () in
    let schema = Instance.schema db in
    let eng = Cqa.Engine.create ~schema ~ics:[ key ] db in
    let b, t1 = Bech_harness.once (fun () -> Cqa.Approx.bounds ~seed ~samples:4 eng q) in
    let exact, t2 =
      Bech_harness.once (fun () ->
          Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
    in
    if b.Cqa.Approx.exact then incr closed;
    let subset a bb = List.for_all (fun r -> List.mem r bb) a in
    if subset b.Cqa.Approx.under exact && subset exact b.Cqa.Approx.over then
      incr sound;
    approx_total := !approx_total +. t1;
    exact_total := !exact_total +. t2
  done;
  Printf.printf "  bounds sound:    %d/%d\n" !sound trials;
  Printf.printf "  interval closed: %d/%d\n" !closed trials;
  Printf.printf "  mean bounds time: %s\n" (Bech_harness.pp_ns (!approx_total /. float_of_int trials));
  Printf.printf "  mean exact time:  %s\n\n" (Bech_harness.pp_ns (!exact_total /. float_of_int trials));
  Bench_json.record ~bench:"b10"
    [
      ("sound", Bench_json.int !sound);
      ("closed", Bench_json.int !closed);
      ("trials", Bench_json.int trials);
      ("mean_bounds_ns", Bench_json.num (!approx_total /. float_of_int trials));
      ("mean_exact_ns", Bench_json.num (!exact_total /. float_of_int trials));
    ]

(* B11: inconsistency-tolerant ontology semantics — IAR is the tractable
   approximation of AR (Sec 8, [79, 29, 100]). *)
let b11 ~quick () =
  header "B11" "ontology semantics: IAR vs AR vs brave"
    "IAR answers from the intersection of repairs without enumerating them; \
     AR/brave pay for the repair space";
  let open Ontology in
  let sizes = if quick then [ 4; 6 ] else [ 4; 6; 8 ] in
  List.iter
    (fun conflicts ->
      (* [conflicts] individuals asserted both Student and Prof: the repair
         space has 2^conflicts elements. *)
      let abox =
        List.concat
          (List.init conflicts (fun i ->
               let who = Printf.sprintf "p%d" i in
               [ Concept_of ("Prof", who); Concept_of ("Student", who) ]))
        @ List.init 20 (fun i -> Concept_of ("Student", Printf.sprintf "s%d" i))
      in
      let kb =
        make
          ~tbox:
            [
              Subsumed (Atomic "Prof", Atomic "Faculty");
              Disjoint (Atomic "Student", Atomic "Faculty");
            ]
          ~abox
      in
      let q =
        Logic.Cq.make [ Logic.Term.var "x" ]
          [ Logic.Atom.make "Student" [ Logic.Term.var "x" ] ]
      in
      let time sem = snd (Bech_harness.once (fun () -> answers kb sem q)) in
      let iar_ns = time IAR and ar_ns = time AR and brave_ns = time Brave in
      Printf.printf "  conflicts=%-3d IAR %12s   AR %12s   brave %12s\n"
        conflicts
        (Bech_harness.pp_ns iar_ns)
        (Bech_harness.pp_ns ar_ns)
        (Bech_harness.pp_ns brave_ns);
      Bench_json.record ~bench:"b11"
        [
          ("conflicts", Bench_json.int conflicts);
          ("iar_ns", Bench_json.num iar_ns);
          ("ar_ns", Bench_json.num ar_ns);
          ("brave_ns", Bench_json.num brave_ns);
        ])
    sizes;
  print_newline ()

(* B12: data exchange — chase cost scales with the source, exchange-repair
   search with the number of target conflicts. *)
let b12 ~quick () =
  header "B12" "data exchange: chase and exchange-repairs"
    "chasing is linear in the tgd matches; repairing a failing exchange \
     searches source deletions smallest-first";
  let open Logic in
  let src_schema = Relational.Schema.of_list [ ("DeptMgr", [ "dept"; "mgr" ]) ] in
  let tgt_schema = Relational.Schema.of_list [ ("TDept", [ "dept"; "mgr" ]) ] in
  let d = Term.var "d" and m = Term.var "m" in
  let setting =
    {
      Exchange.source_schema = src_schema;
      target_schema = tgt_schema;
      st_tgds =
        [
          Exchange.st_tgd
            ~body:(Cq.make [ d; m ] [ Atom.make "DeptMgr" [ d; m ] ])
            ~head:[ Atom.make "TDept" [ d; m ] ];
        ];
      egds =
        [
          Exchange.egd
            ~body:
              [
                Atom.make "TDept" [ d; Term.var "m1" ];
                Atom.make "TDept" [ d; Term.var "m2" ];
              ]
            "m1" "m2";
        ];
      target_ics = [];
    }
  in
  let sizes = if quick then [ 50; 100 ] else [ 50; 100; 200 ] in
  List.iter
    (fun n ->
      (* Clean source of n departments plus 2 conflicting ones. *)
      let clean_rows =
        List.init n (fun i ->
            [
              Value.str (Printf.sprintf "d%d" i);
              Value.str (Printf.sprintf "m%d" i);
            ])
      in
      let clean = Instance.of_rows src_schema [ ("DeptMgr", clean_rows) ] in
      let dirty =
        Instance.of_rows src_schema
          [
            ( "DeptMgr",
              clean_rows
              @ [
                  [ Value.str "dx"; Value.str "a" ];
                  [ Value.str "dx"; Value.str "b" ];
                ] );
          ]
      in
      let _, chase_ns = Bech_harness.once (fun () -> Exchange.chase setting clean) in
      let repairs, repair_ns =
        Bech_harness.once (fun () -> Exchange.exchange_repairs ~max_deletions:1 setting dirty)
      in
      Printf.printf
        "  n=%-5d chase %12s   exchange-repairs (%d found) %12s\n" n
        (Bech_harness.pp_ns chase_ns) (List.length repairs) (Bech_harness.pp_ns repair_ns);
      Bench_json.record ~bench:"b12"
        [
          ("n", Bench_json.int n);
          ("chase_ns", Bench_json.num chase_ns);
          ("exchange_repairs", Bench_json.int (List.length repairs));
          ("repair_ns", Bench_json.num repair_ns);
        ])
    sizes;
  print_newline ()

(* B13: temporal CQA — per-snapshot independence keeps the cost local to
   the dirty snapshots (Sec 8, [50]). *)
let b13 ~quick () =
  header "B13" "temporal CQA: cost tracks dirty snapshots"
    "snapshots repair independently, so range queries cost the sum of \
     per-snapshot CQA, dominated by the inconsistent snapshots";
  let schema = Relational.Schema.of_list [ ("T", [ "k"; "v" ]) ] in
  let key = Constraints.Ic.key ~rel:"T" [ 0 ] in
  let months = if quick then 10 else 20 in
  let q = Gen.employees_query () in
  let db_with ~dirty_months =
    let facts =
      List.concat
        (List.init months (fun t ->
             let base =
               List.init 10 (fun i ->
                   ( t,
                     Relational.Fact.make "T"
                       [ Value.int i; Value.int (100 + i) ] ))
             in
             if t < dirty_months then
               (* four key conflicts: 16 repairs for this snapshot *)
               List.init 4 (fun i ->
                   (t, Relational.Fact.make "T" [ Value.int i; Value.int (999 + i) ]))
               @ base
             else base))
    in
    Temporal.of_facts schema [ key ] facts
  in
  let cases =
    List.map
      (fun dirty_months ->
        let db = db_with ~dirty_months in
        ( Printf.sprintf "dirty=%02d" dirty_months,
          fun () ->
            ignore (Temporal.consistent_always db ~from_:0 ~until:(months - 1) q) ))
      [ 0; months / 4; months / 2 ]
  in
  List.iter
    (fun (name, ns) ->
      Printf.printf "  months=%-3d %s  always-range %s\n" months name
        (Bech_harness.pp_ns ns);
      Bench_json.record ~bench:"b13"
        [
          ("months", Bench_json.int months);
          ("case", Bench_json.str name);
          ("ns", Bench_json.num ns);
        ])
    (Bech_harness.group "b13" cases);
  print_newline ()

(* B14: numerical repairs — the L1-optimal fix is linear in the relation
   size (Sec 4, [20, 62]). *)
let b14 ~quick () =
  header "B14" "numerical repair cost"
    "clamping plus one-pass sum adjustment computes the L1-minimal fix in \
     linear time";
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  List.iter
    (fun n ->
      let schema = Relational.Schema.of_list [ ("L", [ "e"; "amount" ]) ] in
      let db =
        Instance.of_rows schema
          [
            ( "L",
              List.init n (fun i ->
                  [ Value.int i; Value.Real (float_of_int (i mod 90)) ]) );
          ]
      in
      let constraints =
        [
          Numeric.Numeric_repair.Row_bounds
            { rel = "L"; pos = 1; lower = Some 0.0; upper = Some 80.0 };
          Numeric.Numeric_repair.Sum_eq
            { rel = "L"; pos = 1; total = float_of_int (40 * n) };
        ]
      in
      let r, ns =
        Bech_harness.once (fun () -> Numeric.Numeric_repair.repair db constraints)
      in
      Printf.printf "  n=%-6d changes=%-5d cost=%-10.1f %s\n" n
        (List.length r.Numeric.Numeric_repair.changes)
        r.Numeric.Numeric_repair.l1_cost (Bech_harness.pp_ns ns);
      Bench_json.record ~bench:"b14"
        [
          ("n", Bench_json.int n);
          ("changes", Bench_json.int (List.length r.Numeric.Numeric_repair.changes));
          ("l1_cost", Bench_json.num r.Numeric.Numeric_repair.l1_cost);
          ("ns", Bench_json.num ns);
        ])
    sizes;
  print_newline ()

(* B15: the cqa-fast tentpole — indexed vs naive join evaluation.  (This is
   the "b10" scaling bench of ISSUE 3; b10 was already taken by the
   approximation bench.)  A two-atom key join evaluated through Cq.answers:
   the naive path scans the joined relation once per candidate binding
   (O(n²)), the indexed path probes a hash index per binding (O(n)). *)
let b15 ~quick () =
  header "B15" "indexed vs naive join (cqa-fast)"
    "hash-indexed candidate lookup turns the quadratic nested-loop join \
     into a near-linear one";
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  let schema = Relational.Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]) ] in
  let open Logic in
  let q =
    Cq.make
      [ Term.var "x"; Term.var "z" ]
      [
        Atom.make "R" [ Term.var "x"; Term.var "y" ];
        Atom.make "S" [ Term.var "y"; Term.var "z" ];
      ]
  in
  Printf.printf "  %8s %12s %14s %14s %8s\n" "n" "#answers" "naive" "indexed"
    "speedup";
  List.iter
    (fun n ->
      let db =
        Instance.of_rows schema
          [
            ("R", List.init n (fun i -> [ Value.int i; Value.int (i / 2) ]));
            ("S", List.init n (fun i -> [ Value.int i; Value.int (i mod 97) ]));
          ]
      in
      (* Naive first so its scans cannot be served by indexes built during
         the indexed run (and its join.nested increments stay honest). *)
      Instance.set_indexing false;
      let naive, naive_ns = Bech_harness.once (fun () -> Cq.answers q db) in
      Instance.set_indexing true;
      let indexed, indexed_ns = Bech_harness.once (fun () -> Cq.answers q db) in
      assert (naive = indexed);
      let speedup = naive_ns /. indexed_ns in
      Printf.printf "  %8d %12d %14s %14s %7.1fx\n" n (List.length indexed)
        (Bech_harness.pp_ns naive_ns)
        (Bech_harness.pp_ns indexed_ns)
        speedup;
      Bench_json.record ~bench:"b15"
        [
          ("n", Bench_json.int n);
          ("answers", Bench_json.int (List.length indexed));
          ("naive_ns", Bench_json.num naive_ns);
          ("indexed_ns", Bench_json.num indexed_ns);
          ("speedup", Bench_json.num speedup);
        ])
    sizes;
  print_newline ()

(* B16: the cqa-analyze tentpole — tractability-driven method dispatch.
   The key-conflict-chain workload's certain-pairs query is proved
   FO-rewritable by the static classifier, so [`Auto] answers it through
   the Fuxman–Miller rewriting while forced enumeration walks all 2^pairs
   repairs.  Counter deltas keep the comparison honest: the auto phase
   must never touch the enumeration machinery (repairs.candidates and
   sat.hitting_set.nodes stay at zero), and must actually take the rewriting
   (rewrite.key_applicable increments). *)
let b16 ~quick () =
  header "B16" "auto dispatch vs forced enumeration (cqa-analyze)"
    "the static classifier proves the query FO-rewritable and dispatches \
     past the exponential repair enumeration";
  let sizes = if quick then [ 16; 20 ] else [ 16; 20; 24; 28 ] in
  let open Logic in
  let q =
    Cq.make ~name:"pairs"
      [ Term.var "k"; Term.var "v" ]
      [ Atom.make "T" [ Term.var "k"; Term.var "v" ] ]
  in
  Printf.printf "  %6s %10s %10s %14s %14s %8s\n" "n" "verdict" "#answers"
    "enum" "auto" "speedup";
  List.iter
    (fun n ->
      (* Half the keys get two claimants: 2^(n/2) S-repairs, while the
         other half survive as certain answers — so [enum = auto] below
         compares non-empty answer sets. *)
      let db, key =
        Gen.key_conflict_instance ~seed:11 ~n ~conflict_fraction:0.5 ()
      in
      let schema = Instance.schema db in
      let engine = Cqa.Engine.create ~schema ~ics:[ key ] db in
      let plan = Cqa.Engine.plan engine q in
      let enum, enum_ns =
        Bech_harness.once (fun () ->
            Cqa.Engine.consistent_answers ~method_:`Repair_enumeration engine q)
      in
      let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
      let auto, auto_ns =
        Bech_harness.once (fun () -> Cqa.Engine.consistent_answers engine q)
      in
      let delta = Obs.Registry.counter_delta ~since:before (Obs.Registry.current ()) in
      let d name = Option.value ~default:0 (List.assoc_opt name delta) in
      assert (enum = auto);
      assert (d "repairs.candidates" = 0);
      assert (d "sat.hitting_set.nodes" = 0);
      assert (d "rewrite.key_applicable" > 0);
      let speedup = enum_ns /. auto_ns in
      Printf.printf "  %6d %10s %10d %14s %14s %7.1fx\n" n
        (Analysis.Classify.verdict_label plan.classification.verdict)
        (List.length auto)
        (Bech_harness.pp_ns enum_ns)
        (Bech_harness.pp_ns auto_ns)
        speedup;
      Bench_json.record ~bench:"b16"
        [
          ("n", Bench_json.int n);
          ("verdict", Bench_json.str
             (Analysis.Classify.verdict_label plan.classification.verdict));
          ("route", Bench_json.str (Cqa.Engine.route_label plan.route));
          ("answers", Bench_json.int (List.length auto));
          ("enum_ns", Bench_json.num enum_ns);
          ("auto_ns", Bench_json.num auto_ns);
          ("speedup", Bench_json.num speedup);
        ])
    sizes;
  print_newline ()

(* B17: the cqa-sat tentpole — CAvSAT-style SAT compilation racing repair
   enumeration and ASP on the coNP-hard join q(x) :- R(x,y), S(z,y)
   (keys R[a], S[c]).  The generator plants gadgets whose certainty is
   known by construction, so correctness is asserted even at sizes where
   the 2^(#key groups) repair space makes enumeration infeasible (the
   cutoffs mirror b2's ASP cutoff and must stay visible in the output).
   Counter deltas prove the SAT phase never touches the enumeration
   machinery: repairs.enumerations, repairs.candidates and
   sat.hitting_set.nodes stay at zero while cavsat.sat_calls counts the
   incremental refutations. *)
let b17 ~quick () =
  header "B17" "SAT compilation vs enumeration vs ASP (cqa-sat)"
    "the CAvSAT encoding answers the coNP-hard join at sizes where \
     materializing the exponential repair space is infeasible";
  let sizes = if quick then [ 24; 80 ] else [ 24; 48; 80; 120 ] in
  let enum_cutoff = 48 and asp_cutoff = 24 in
  let q = Gen.hard_join_query () in
  Printf.printf "  %6s %10s %8s %14s %14s %14s\n" "n" "#certain" "#sat"
    "sat" "enum" "asp";
  List.iter
    (fun n ->
      let db, ics, expected =
        Gen.hard_join_instance ~n ~conflict_fraction:0.5 ()
      in
      let engine = Cqa.Engine.create ~schema:Gen.hard_join_schema ~ics db in
      (* The trichotomy routes the free-variable join to the Datalog
         tier (B19 measures that branch); the Boolean variant is the
         strong attack 2-cycle that stays on the coNP-hard SAT route. *)
      let bool_hard = Logic.Cq.make ~name:"bhard" [] q.Logic.Cq.body in
      let plan = Cqa.Engine.plan engine bool_hard in
      assert (Cqa.Engine.route_label plan.route = "sat_compilation");
      let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
      let sat, sat_ns =
        Bech_harness.once (fun () ->
            Cqa.Engine.consistent_answers ~method_:`Sat engine q)
      in
      let delta =
        Obs.Registry.counter_delta ~since:before (Obs.Registry.current ())
      in
      let d name = Option.value ~default:0 (List.assoc_opt name delta) in
      assert (List.sort compare sat = expected);
      assert (d "repairs.enumerations" = 0);
      assert (d "repairs.candidates" = 0);
      assert (d "sat.hitting_set.nodes" = 0);
      assert (d "cavsat.sat_calls" > 0);
      let enum_ns =
        if n > enum_cutoff then None
        else begin
          let enum, ns =
            Bech_harness.once (fun () ->
                Cqa.Engine.consistent_answers ~method_:`Repair_enumeration
                  engine q)
          in
          assert (List.sort compare enum = expected);
          Some ns
        end
      in
      let asp_ns =
        if n > asp_cutoff then None
        else begin
          let asp, ns =
            Bech_harness.once (fun () ->
                Cqa.Engine.consistent_answers ~method_:`Asp engine q)
          in
          assert (List.sort compare asp = expected);
          Some ns
        end
      in
      let cell = function
        | Some ns -> Bech_harness.pp_ns ns
        | None -> "skipped"
      in
      Printf.printf "  %6d %10d %8d %14s %14s %14s\n" n (List.length sat)
        (d "cavsat.sat_calls")
        (Bech_harness.pp_ns sat_ns) (cell enum_ns) (cell asp_ns);
      Bench_json.record ~bench:"b17"
        ([
           ("n", Bench_json.int n);
           ("route", Bench_json.str (Cqa.Engine.route_label plan.route));
           ("certain", Bench_json.int (List.length sat));
           ("sat_calls", Bench_json.int (d "cavsat.sat_calls"));
           ("repairs_enumerated_during_sat",
            Bench_json.int (d "repairs.enumerations"));
           ("sat_ns", Bench_json.num sat_ns);
         ]
        @ (match enum_ns with
          | Some ns -> [ ("enum_ns", Bench_json.num ns) ]
          | None -> [ ("enum_skipped", Bench_json.str "timeout") ])
        @
        match asp_ns with
        | Some ns -> [ ("asp_ns", Bench_json.num ns) ]
        | None -> [ ("asp_skipped", Bench_json.str "timeout") ]))
    sizes;
  print_newline ()

(* B18: the cqa-columnar tentpole — compiled columnar kernels vs the row
   interpreter on the FO-rewriting pipeline.  Both phases evaluate the
   same Fuxman–Miller rewritings ([Formula.answers] picks the engine via
   [Columnar.set_enabled]); answers are asserted identical, and counter
   deltas prove which engine ran: the columnar phase must show
   scan.columnar and join.fused activity with scan.row at zero (the
   string-labelled column also feeds dict.entries — labels are salted
   per size so the delta is visible), while the row phase must show
   scan.row.  At n = 10^4 the compiled kernels must clear 5x. *)
let b18 ~quick () =
  header "B18" "columnar kernels vs row interpreter (cqa-columnar)"
    "fused columnar scans/joins answer the FO-rewriting pipeline with the \
     same tuples as the row interpreter at a fraction of the time";
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 10000 ] in
  let open Logic in
  let schema =
    Relational.Schema.of_list
      [ ("T", [ "k"; "v"; "lbl"; "p"; "q"; "r" ]); ("S", [ "v"; "w" ]) ]
  in
  let keys = [ ("T", [ 0 ]); ("S", [ 0 ]) ] in
  let instance n =
    (* ~20% of T keys and ~14% of S keys get a second claimant, so the
       rewriting's guards have real refutation work to do.  T is wide
       (arity 6) — realistic for the census/claims tables CQA papers
       benchmark on — which is where per-tuple Binding costs bite the
       row interpreter.  String columns are salted with [n] so every
       size interns fresh dictionary entries. *)
    let m = max 10 (n / 10) in
    let lbl i = Value.str (Printf.sprintf "u%d-%d" n (i mod 97)) in
    let rv i = Value.str (Printf.sprintf "r%d-%d" n (i mod 53)) in
    let trow i j =
      [ Value.int i; Value.int (j mod m); lbl j; Value.int (j mod 31);
        Value.int (j mod 13); rv j ]
    in
    let t_rows =
      List.concat_map
        (fun i ->
          if i mod 5 = 0 then [ trow i i; trow i (i + 1) ] else [ trow i i ])
        (List.init n Fun.id)
    in
    let s_rows =
      List.concat_map
        (fun j ->
          let base = [ Value.int j; Value.int (j mod 50) ] in
          if j mod 7 = 0 then
            [ base; [ Value.int j; Value.int ((j + 1) mod 50) ] ]
          else [ base ])
        (List.init m Fun.id)
    in
    Instance.of_rows schema [ ("T", t_rows); ("S", s_rows) ]
  in
  let x = Term.var "x" and y = Term.var "y" and l = Term.var "l"
  and p = Term.var "p" and qv = Term.var "qv" and r = Term.var "r"
  and w = Term.var "w" in
  let t_atom = Atom.make "T" [ x; y; l; p; qv; r ] in
  let queries =
    [
      ("proj", Cq.make ~name:"proj" [ x ] [ t_atom ]);
      ("full", Cq.make ~name:"full" [ x; y; l; p; qv; r ] [ t_atom ]);
      ( "chain",
        Cq.make ~name:"chain" [ x ] [ t_atom; Atom.make "S" [ y; w ] ] );
    ]
  in
  let with_columnar on f =
    let prev = Relational.Columnar.enabled () in
    Relational.Columnar.set_enabled on;
    Fun.protect ~finally:(fun () -> Relational.Columnar.set_enabled prev) f
  in
  Printf.printf "  %6s %6s %10s %14s %14s %8s %8s %6s\n" "n" "query"
    "#answers" "row" "columnar" "speedup" "fused" "dict+";
  (* Timing comparison, not memory bench: give the major GC slack so
     slice work triggered by whatever earlier benches left live is not
     billed to either phase (restored below). *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.space_overhead = 500 };
  Fun.protect ~finally:(fun () -> Gc.set gc) @@ fun () ->
  List.iter
    (fun n ->
      let db = instance n in
      let speedups = ref [] in
      (* Earlier benches leave a large, fragmented major heap whose GC
         slices would be billed to whichever phase allocates more;
         compact so both phases start from the same heap. *)
      Gc.compact ();
      List.iter
        (fun (qname, q) ->
          let run () =
            Option.get (Rewriting.Key_rewrite.consistent_answers q ~keys db)
          in
          let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
          let col_answers, col_ns =
            Bech_harness.best_of 3 (fun () -> with_columnar true run)
          in
          let delta =
            Obs.Registry.counter_delta ~since:before (Obs.Registry.current ())
          in
          let d name = Option.value ~default:0 (List.assoc_opt name delta) in
          assert (d "scan.columnar" > 0);
          (* [proj]'s guard has no conditions to refute, so its plan is a
             bare scan; the other rewritings must run fused join kernels. *)
          assert (qname = "proj" || d "join.fused" > 0);
          assert (d "scan.row" = 0);
          let row_ns =
            let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
            let row_answers, ns =
              Bech_harness.best_of 3 (fun () -> with_columnar false run)
            in
            let delta =
              Obs.Registry.counter_delta ~since:before (Obs.Registry.current ())
            in
            assert (Option.value ~default:0 (List.assoc_opt "scan.row" delta) > 0);
            assert (row_answers = col_answers);
            ns
          in
          let speedup = row_ns /. col_ns in
          speedups := speedup :: !speedups;
          (* Every query must show a solid per-query win at 10^4; the 5x
             acceptance bar is enforced on the pipeline geomean below. *)
          assert (n < 10000 || speedup >= 3.);
          Printf.printf "  %6d %6s %10d %14s %14s %7.1fx %8d %6d\n" n qname
            (List.length col_answers)
            (Bech_harness.pp_ns row_ns)
            (Bech_harness.pp_ns col_ns) speedup (d "join.fused")
            (d "dict.entries");
          Bench_json.record ~bench:"b18"
            ([
               ("n", Bench_json.int n);
               ("query", Bench_json.str qname);
               ("answers", Bench_json.int (List.length col_answers));
               ("columnar_ns", Bench_json.num col_ns);
               ("scan_columnar", Bench_json.int (d "scan.columnar"));
               ("join_fused", Bench_json.int (d "join.fused"));
               ("dict_entries", Bench_json.int (d "dict.entries"));
               ("scan_row_during_columnar", Bench_json.int (d "scan.row"));
               ("row_ns", Bench_json.num row_ns);
               ("speedup", Bench_json.num speedup);
             ]))
        queries;
      let geo =
        exp
          (List.fold_left (fun a s -> a +. log s) 0. !speedups
          /. float_of_int (List.length !speedups))
      in
      Printf.printf "  %6d %6s %49s %7.1fx\n" n "geo" "" geo;
      Bench_json.record ~bench:"b18"
        [
          ("n", Bench_json.int n);
          ("query", Bench_json.str "geomean");
          ("speedup", Bench_json.num geo);
        ];
      (* The acceptance bar: at 10^4 tuples the compiled kernels must beat
         the row interpreter by 5x across the FO-rewriting pipeline. *)
      assert (n < 10000 || geo >= 5.))
    sizes;
  print_newline ()

(* B19: the trichotomy's L tier — the attack-graph Datalog rewriting vs
   repair enumeration vs forced SAT on the canonical acyclic-but-not-
   C-forest query q(x) :- R(x,y), S(y,x).  Every 4th R key carries a
   second claimant whose partner does not point back, so the repair
   space is 2^(n/4): enumeration is measured while feasible and runs
   under a cooperative deadline at n = 80 (where 2^20 repairs make it
   blow), while the seminaive evaluation of the emitted program stays
   polynomial.  Counter deltas prove the datalog phase never touches
   the repair enumerator — CI asserts the recorded fields. *)
let b19 ~quick () =
  header "B19" "L-tier CQA: datalog rewriting vs enumeration vs SAT"
    "the stratified Datalog rewriting answers the acyclic attack-graph \
     tier in PTIME; repair enumeration pays 2^conflicts and times out at \
     n=80; forced SAT stays exact but solves per instance";
  let open Logic in
  let schema =
    Relational.Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "a" ]) ]
  in
  let ics =
    [ Constraints.Ic.key ~rel:"R" [ 0 ]; Constraints.Ic.key ~rel:"S" [ 0 ] ]
  in
  let x = Term.var "x" and y = Term.var "y" in
  let q =
    Cq.make ~name:"pair" [ x ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ]
  in
  let instance n =
    (* Key i points at partner n+i and S points back; conflicted keys
       (every 4th) get a second claimant whose partner assists the next
       key instead, so exactly the unconflicted keys are certain. *)
    let r_rows =
      List.concat_map
        (fun i ->
          let base = [ Value.int i; Value.int (n + i) ] in
          if i mod 4 = 0 then
            [ base; [ Value.int i; Value.int (n + ((i + 1) mod n)) ] ]
          else [ base ])
        (List.init n Fun.id)
    in
    let s_rows = List.init n (fun i -> [ Value.int (n + i); Value.int i ]) in
    Instance.of_rows schema [ ("R", r_rows); ("S", s_rows) ]
  in
  let expected n =
    List.filter_map
      (fun i -> if i mod 4 = 0 then None else Some [ Value.int i ])
      (List.init n Fun.id)
  in
  let sizes = if quick then [ 20; 80 ] else [ 20; 40; 80 ] in
  let enum_cutoff = 40 in
  Printf.printf "  %6s %10s %8s %14s %14s %14s\n" "n" "#certain" "rounds"
    "datalog" "enum" "sat";
  List.iter
    (fun n ->
      let db = instance n in
      let engine = Cqa.Engine.create ~schema ~ics db in
      let plan = Cqa.Engine.plan engine q in
      assert (Cqa.Engine.route_label plan.route = "datalog_rewriting");
      let before = Obs.Registry.counter_snapshot (Obs.Registry.current ()) in
      let datalog, datalog_ns =
        Bech_harness.best_of 3 (fun () ->
            Cqa.Engine.consistent_answers ~method_:`Datalog engine q)
      in
      let delta =
        Obs.Registry.counter_delta ~since:before (Obs.Registry.current ())
      in
      let d name = Option.value ~default:0 (List.assoc_opt name delta) in
      assert (List.sort compare datalog = expected n);
      assert (d "repairs.enumerations" = 0);
      assert (d "repairs.candidates" = 0);
      assert (d "datalog.seminaive.rounds" > 0);
      let sat, sat_ns =
        Bech_harness.once (fun () ->
            Cqa.Engine.consistent_answers ~method_:`Sat engine q)
      in
      assert (List.sort compare sat = expected n);
      let enum_cell =
        if n <= enum_cutoff then begin
          let enum, ns =
            Bech_harness.once (fun () ->
                Cqa.Engine.consistent_answers ~method_:`Repair_enumeration
                  engine q)
          in
          assert (List.sort compare enum = expected n);
          Bench_json.record ~bench:"b19"
            [
              ("n", Bench_json.int n);
              ("method", Bench_json.str "repair-enum");
              ("wall_ns", Bench_json.num ns);
            ];
          Bech_harness.pp_ns ns
        end
        else begin
          (* 2^(n/4) repairs: run under a real deadline and record the
             cancellation with its progress snapshot, not a skip. *)
          let budget_s = 0.25 in
          let ctx =
            Obs.Progress.create ~deadline_s:budget_s ~label:"b19/enum" ~id:n ()
          in
          let timed_out =
            match
              Obs.Progress.run ctx (fun () ->
                  Cqa.Engine.consistent_answers ~method_:`Repair_enumeration
                    engine q)
            with
            | _ -> false
            | exception Obs.Progress.Deadline_exceeded -> true
          in
          Bench_json.record ~bench:"b19"
            [
              ("n", Bench_json.int n);
              ("method", Bench_json.str "repair-enum");
              ("timed_out", Bench_json.str (string_of_bool timed_out));
              ("budget_ms", Bench_json.num (budget_s *. 1e3));
              ("phase", Bench_json.str (Obs.Progress.phase_of ctx));
            ];
          if timed_out then
            Printf.sprintf "timeout@%.0fms" (budget_s *. 1e3)
          else "under-budget"
        end
      in
      Printf.printf "  %6d %10d %8d %14s %14s %14s\n" n (List.length datalog)
        (d "datalog.seminaive.rounds")
        (Bech_harness.pp_ns datalog_ns) enum_cell (Bech_harness.pp_ns sat_ns);
      Bench_json.record ~bench:"b19"
        [
          ("n", Bench_json.int n);
          ("method", Bench_json.str "datalog");
          ("route", Bench_json.str (Cqa.Engine.route_label plan.route));
          ("certain", Bench_json.int (List.length datalog));
          ("wall_ns", Bench_json.num datalog_ns);
          ("seminaive_rounds", Bench_json.int (d "datalog.seminaive.rounds"));
          ("seminaive_facts", Bench_json.int (d "datalog.seminaive.facts"));
          ( "repairs_enumerated_during_datalog",
            Bench_json.int (d "repairs.enumerations") );
        ];
      Bench_json.record ~bench:"b19"
        [
          ("n", Bench_json.int n);
          ("method", Bench_json.str "sat");
          ("wall_ns", Bench_json.num sat_ns);
        ])
    sizes;
  print_newline ()

let all =
  [
    ("b1", b1); ("b2", b2); ("b3", b3); ("b4", b4); ("b5", b5); ("b6", b6);
    ("b7", b7); ("b8", b8); ("b9", b9); ("b10", b10); ("b11", b11);
    ("b12", b12); ("b13", b13); ("b14", b14); ("b15", b15); ("b16", b16);
    ("b17", b17); ("b18", b18); ("b19", b19);
  ]

let run ~quick ids =
  let selected =
    match ids with
    | [] -> all
    | _ -> List.filter (fun (id, _) -> List.mem id ids) all
  in
  List.iter (fun (_, f) -> f ~quick ()) selected
