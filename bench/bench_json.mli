(** Recorder for machine-readable benchmark results (BENCH_*.json).

    Field values are pre-rendered JSON fragments — build them with
    {!int}, {!num} and {!str}. *)

val str : string -> string
(** A JSON string literal. *)

val int : int -> string
val num : float -> string

val record : bench:string -> (string * string) list -> unit
(** Append one result row tagged with the benchmark id. *)

val write : ?counters:(string * int) list -> string -> unit
(** Write every recorded row plus the named counters (typically
    {!Obs.Registry.counters_list}) as one JSON document:
    [{"rows":[{"bench":..., ...}, ...],"counters":{...}}]. *)
