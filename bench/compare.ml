(* The perf-regression gate's comparison engine: diff a fresh
   BENCH_*.json against a committed baseline and classify every numeric
   field.

   Field semantics are read off the names the benchmarks already use:

   - [*_ns] and [*_s] are wall-clock timings (lower is better).  They
     are gated with [timing_tolerance] and only once they clear the
     [min_ns] noise floor — micro-timings jitter too much to gate.
   - [*_rps] and [speedup] are throughput (higher is better), gated
     with [timing_tolerance] since they are wall-clock-derived.
   - Every other numeric row field (answer counts, cache hits, repair
     counts) is deterministic for the fixed bench seeds, so any drift
     beyond [tolerance] in either direction is flagged.
   - Top-level [counters] measure solver effort: an increase beyond
     [tolerance] is a regression, a decrease is an improvement.

   Tiny integer values get an absolute slack of 2 so a 1 -> 2 counter
   bump is not reported as a 100% regression. *)

type opts = {
  tolerance : float; (* counters and deterministic row fields *)
  timing_tolerance : float; (* wall-clock timings and throughput *)
  min_ns : float; (* ignore timings where both sides are below this *)
}

let default_opts =
  { tolerance = 0.25; timing_tolerance = 0.25; min_ns = 1e6 }

type kind = Timing | Throughput | Check | Counter

let kind_name = function
  | Timing -> "timing"
  | Throughput -> "throughput"
  | Check -> "check"
  | Counter -> "counter"

type status = Pass | Improved | Regressed | Missing | Added | Skipped

let status_name = function
  | Pass -> "pass"
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Missing -> "missing"
  | Added -> "added"
  | Skipped -> "skipped"

type finding = {
  row : string; (* row key, or "counters" *)
  field : string;
  kind : kind;
  base : float option;
  fresh : float option;
  status : status;
}

let is_regression f = f.status = Regressed || f.status = Missing

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let classify field =
  if has_suffix "_ns" field || has_suffix "_s" field then Timing
  else if has_suffix "_rps" field || field = "speedup" then Throughput
  else Check

(* Timing fields in nanoseconds, whatever their unit suffix. *)
let to_ns field v = if has_suffix "_s" field then v *. 1e9 else v

(* ---- row identity ----------------------------------------------------- *)

(* A row is identified by its bench name plus the workload parameters it
   was measured at; measured outputs must not participate, or a changed
   result would masquerade as a missing row. *)
let param_fields =
  [ "n"; "pairs"; "requests"; "months"; "chains"; "conflicts"; "rate";
    "case"; "method"; "trials"; "query" ]

let row_key row =
  let part name =
    match Tiny_json.member name row with
    | Some (Tiny_json.Str s) -> Some (Printf.sprintf "%s=%s" name s)
    | Some (Tiny_json.Num f) -> Some (Printf.sprintf "%s=%g" name f)
    | _ -> None
  in
  let bench =
    match Option.bind (Tiny_json.member "bench" row) Tiny_json.to_str with
    | Some b -> b
    | None -> "?"
  in
  String.concat "," (bench :: List.filter_map part param_fields)

let rows_of doc =
  match Option.bind (Tiny_json.member "rows" doc) Tiny_json.to_list with
  | Some rows -> List.map (fun r -> (row_key r, r)) rows
  | None -> []

let counters_of doc =
  match Tiny_json.member "counters" doc with
  | Some (Tiny_json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (Tiny_json.to_num v))
        fields
  | _ -> []

(* ---- field comparison ------------------------------------------------- *)

let rel_change ~base ~fresh =
  if base = 0.0 then if fresh = 0.0 then 0.0 else infinity
  else (fresh -. base) /. Float.abs base

let small_slack ~base ~fresh =
  (* integer noise floor for tiny counts *)
  Float.abs (fresh -. base) <= 2.0 && Float.abs base < 100.0

let compare_field opts ~row ~field ~base ~fresh =
  let kind = classify field in
  let change = rel_change ~base ~fresh in
  let status =
    match kind with
    | Timing ->
        if
          to_ns field base < opts.min_ns && to_ns field fresh < opts.min_ns
        then Skipped
        else if change > opts.timing_tolerance then Regressed
        else if change < -.opts.timing_tolerance then Improved
        else Pass
    | Throughput ->
        if change < -.opts.timing_tolerance then Regressed
        else if change > opts.timing_tolerance then Improved
        else Pass
    | Check | Counter ->
        if small_slack ~base ~fresh then Pass
        else if kind = Counter && change < -.opts.tolerance then Improved
        else if kind = Counter && change > opts.tolerance then Regressed
        else if Float.abs change > opts.tolerance then Regressed
        else Pass
  in
  { row; field; kind; base = Some base; fresh = Some fresh; status }

let compare_row opts key base_row fresh_row =
  let numeric_fields row =
    match row with
    | Tiny_json.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            if k = "bench" || List.mem k param_fields then None
            else Option.map (fun f -> (k, f)) (Tiny_json.to_num v))
          fields
    | _ -> []
  in
  let base_fields = numeric_fields base_row in
  let fresh_fields = numeric_fields fresh_row in
  List.filter_map
    (fun (field, base) ->
      match List.assoc_opt field fresh_fields with
      | Some fresh -> Some (compare_field opts ~row:key ~field ~base ~fresh)
      | None ->
          Some
            {
              row = key;
              field;
              kind = classify field;
              base = Some base;
              fresh = None;
              status = Missing;
            })
    base_fields
  @ List.filter_map
      (fun (field, fresh) ->
        if List.mem_assoc field base_fields then None
        else
          Some
            {
              row = key;
              field;
              kind = classify field;
              base = None;
              fresh = Some fresh;
              status = Added;
            })
      fresh_fields

let compare_counter opts (name, base) fresh_counters =
  match List.assoc_opt name fresh_counters with
  | None ->
      {
        row = "counters";
        field = name;
        kind = Counter;
        base = Some base;
        fresh = None;
        status = Missing;
      }
  | Some fresh ->
      let f = compare_field opts ~row:"counters" ~field:name ~base ~fresh in
      { f with kind = Counter }

let compare_docs opts base_doc fresh_doc =
  let base_rows = rows_of base_doc and fresh_rows = rows_of fresh_doc in
  let row_findings =
    List.concat_map
      (fun (key, brow) ->
        match List.assoc_opt key fresh_rows with
        | Some frow -> compare_row opts key brow frow
        | None ->
            [
              {
                row = key;
                field = "(row)";
                kind = Check;
                base = None;
                fresh = None;
                status = Missing;
              };
            ])
      base_rows
  in
  let added_rows =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key base_rows then None
        else
          Some
            {
              row = key;
              field = "(row)";
              kind = Check;
              base = None;
              fresh = None;
              status = Added;
            })
      fresh_rows
  in
  let base_counters = counters_of base_doc in
  let fresh_counters = counters_of fresh_doc in
  let counter_findings =
    List.map (fun c -> compare_counter opts c fresh_counters) base_counters
  in
  row_findings @ added_rows @ counter_findings

let regressions findings = List.filter is_regression findings

(* ---- the JSON report -------------------------------------------------- *)

let finding_json f =
  let num = function
    | Some v -> Printf.sprintf "%.6g" v
    | None -> "null"
  in
  let ratio =
    match (f.base, f.fresh) with
    | Some b, Some fr when b <> 0.0 -> Printf.sprintf "%.4g" (fr /. b)
    | _ -> "null"
  in
  Printf.sprintf
    "{\"row\":%s,\"field\":%s,\"kind\":\"%s\",\"base\":%s,\"fresh\":%s,\"ratio\":%s,\"status\":\"%s\"}"
    (Obs.Export.json_string f.row)
    (Obs.Export.json_string f.field)
    (kind_name f.kind) (num f.base) (num f.fresh) ratio
    (status_name f.status)

let report_json opts ~base_path ~fresh_path findings =
  let regs = regressions findings in
  let interesting f = f.status <> Pass && f.status <> Skipped in
  Printf.sprintf
    "{\n\
    \  \"base\": %s,\n\
    \  \"fresh\": %s,\n\
    \  \"tolerance\": %g,\n\
    \  \"timing_tolerance\": %g,\n\
    \  \"min_ns\": %g,\n\
    \  \"compared\": %d,\n\
    \  \"regressions\": %d,\n\
    \  \"status\": \"%s\",\n\
    \  \"findings\": [\n%s\n  ]\n\
     }\n"
    (Obs.Export.json_string base_path)
    (Obs.Export.json_string fresh_path)
    opts.tolerance opts.timing_tolerance opts.min_ns (List.length findings)
    (List.length regs)
    (if regs = [] then "pass" else "fail")
    (String.concat ",\n"
       (List.map
          (fun f -> "    " ^ finding_json f)
          (List.filter interesting findings)))
