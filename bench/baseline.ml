(* The perf-regression gate: compare a fresh BENCH_*.json run against
   its committed baseline and exit non-zero on regression.

     dune exec bench/baseline.exe -- bench/baselines/BENCH_serve.json BENCH_serve.json
     dune exec bench/baseline.exe -- --timing-tolerance 2.0 BASE FRESH

   Timings gate at --timing-tolerance (and only above the --min-ns
   noise floor); deterministic counters gate at --tolerance.  CI runs
   this with a wide timing tolerance (shared runners jitter) and the
   default 25% counter tolerance, which is the part that actually
   catches algorithmic regressions. *)

open Gate

let usage () =
  prerr_endline
    "usage: baseline.exe [--tolerance T] [--timing-tolerance T] [--min-ns \
     NS] [--report PATH] BASELINE FRESH";
  exit 2

let () =
  let opts = ref Compare.default_opts in
  let report = ref None in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        opts := { !opts with Compare.tolerance = float_of_string v };
        parse rest
    | "--timing-tolerance" :: v :: rest ->
        opts := { !opts with Compare.timing_tolerance = float_of_string v };
        parse rest
    | "--min-ns" :: v :: rest ->
        opts := { !opts with Compare.min_ns = float_of_string v };
        parse rest
    | "--report" :: path :: rest ->
        report := Some path;
        parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, fresh_path =
    match List.rev !positional with
    | [ b; f ] -> (b, f)
    | _ -> usage ()
  in
  let load path =
    match Tiny_json.of_file path with
    | doc -> doc
    | exception Sys_error msg ->
        Printf.eprintf "baseline: cannot read %s: %s\n" path msg;
        exit 2
    | exception Tiny_json.Parse_error (pos, msg) ->
        Printf.eprintf "baseline: %s: parse error at byte %d: %s\n" path pos
          msg;
        exit 2
  in
  let findings =
    Compare.compare_docs !opts (load base_path) (load fresh_path)
  in
  let regs = Compare.regressions findings in
  let doc =
    Compare.report_json !opts ~base_path ~fresh_path findings
  in
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc doc);
      Printf.printf "report written to %s\n" path)
    !report;
  let describe f =
    let num = function
      | Some v -> Printf.sprintf "%.4g" v
      | None -> "-"
    in
    Printf.printf "  %-10s %-40s %-10s base=%s fresh=%s\n"
      (Compare.status_name f.Compare.status)
      (f.Compare.row ^ "." ^ f.Compare.field)
      (Compare.kind_name f.Compare.kind)
      (num f.Compare.base) (num f.Compare.fresh)
  in
  let interesting =
    List.filter
      (fun f ->
        f.Compare.status <> Compare.Pass && f.Compare.status <> Compare.Skipped)
      findings
  in
  Printf.printf "baseline: %d comparisons, %d regressions (%s vs %s)\n"
    (List.length findings) (List.length regs) fresh_path base_path;
  if interesting <> [] then begin
    print_endline "findings:";
    List.iter describe interesting
  end;
  if regs <> [] then begin
    Printf.printf "FAIL: %d regression(s) beyond tolerance\n"
      (List.length regs);
    exit 1
  end
  else print_endline "PASS"
