(* Machine-readable benchmark output.  Benchmarks record flat rows of
   pre-rendered JSON values; [write] dumps them (plus an optional
   counters object, typically the obs registry) as one JSON document —
   CI parses and archives these as BENCH_*.json. *)

let rows : (string * (string * string) list) list ref = ref []

let str = Obs.Export.json_string
let int = string_of_int
let num f = Printf.sprintf "%.6g" f

let record ~bench fields = rows := (bench, fields) :: !rows

let render_row (bench, fields) =
  let fs =
    Printf.sprintf "\"bench\":%s" (str bench)
    :: List.map (fun (k, v) -> Printf.sprintf "%s:%s" (str k) v) fields
  in
  "{" ^ String.concat "," fs ^ "}"

let write ?(counters = []) path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b ("\n  " ^ render_row row))
    (List.rev !rows);
  Buffer.add_string b "\n],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n  %s:%d" (str name) v))
    counters;
  Buffer.add_string b "\n}}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Printf.printf "wrote %s (%d rows, %d counters)\n%!" path
    (List.length !rows) (List.length counters)
