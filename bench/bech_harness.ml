(* Thin wrapper over Bechamel: run a named group of thunks, return ns/run. *)

open Bechamel
open Toolkit

let group ?(quota = 0.25) name cases =
  let tests =
    List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun test_name ols_result acc ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) -> (test_name, ns) :: acc
      | _ -> acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

(* One-shot wall-clock measurement for heavyweight runs where repeated
   sampling would dominate the bench's time budget. *)
let once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1e9)

(* Best-of-[k] wall clock: repeat [f] and keep the fastest run.  Damps
   scheduler and GC noise for comparisons where a single shot would be
   too jittery but Bechamel's sampling would blow the time budget. *)
let best_of k f =
  let result = ref None and best = ref infinity in
  for _ = 1 to k do
    let r, ns = once f in
    result := Some r;
    if ns < !best then best := ns
  done;
  (Option.get !result, !best)
