module Schema = Relational.Schema
module Fact = Relational.Fact
module Value = Relational.Value
module Gav = Integration.Gav
module Lav = Integration.Lav
module Global_cqa = Integration.Global_cqa
open Logic

let check = Alcotest.check
let v = Value.str
let fact rel values = Fact.make rel (List.map v values)
let rows_to_strings rows = List.map (List.map Value.to_string) rows

(* Example 5.1: two university sources mediated under GAV. *)
let global_schema =
  Schema.of_list [ ("Stds", [ "number"; "name"; "univ"; "field" ]) ]

let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let u = Term.var "u"
let w = Term.var "w"

let gav =
  Gav.make global_schema
    [
      Datalog.Rule.make
        (Atom.make "Stds" [ x; y; Term.str "cu"; z ])
        [ Atom.make "CUstds" [ x; y ]; Atom.make "SpecCU" [ x; z ] ];
      Datalog.Rule.make
        (Atom.make "Stds" [ x; y; Term.str "ou"; z ])
        [ Atom.make "OUstds" [ x; y ]; Atom.make "SpecOU" [ x; z ] ];
    ]

let sources_51 =
  [
    fact "CUstds" [ "101"; "john" ];
    fact "CUstds" [ "102"; "mary" ];
    fact "OUstds" [ "103"; "claire" ];
    fact "OUstds" [ "104"; "peter" ];
    fact "SpecCU" [ "101"; "alg" ];
    fact "SpecCU" [ "102"; "ai" ];
    fact "SpecOU" [ "103"; "db" ];
  ]

let test_gav_retrieval () =
  let retrieved = Gav.retrieved_instance gav sources_51 in
  check Alcotest.int "three global students" 3
    (Relational.Instance.size retrieved)

let test_gav_query () =
  (* Names of students studying the same field at both universities: none
     in this data. *)
  let q =
    Cq.make [ x ]
      [
        Atom.make "Stds" [ z; x; Term.str "cu"; u ];
        Atom.make "Stds" [ w; x; Term.str "ou"; u ];
      ]
  in
  check Alcotest.int "no shared students" 0
    (List.length (Gav.answer gav sources_51 q))

(* Example 5.2: Ottawa U's table now has number 101 with a different name;
   the global FD Number → Name is violated at the mediator. *)
let sources_52 =
  sources_51
  @ [ fact "OUstds" [ "101"; "sue" ]; fact "SpecOU" [ "101"; "bio" ] ]

let global_fd = Constraints.Ic.fd ~rel:"Stds" ~lhs:[ 0 ] ~rhs:[ 1 ]

let q_names =
  Cq.make [ x; y ] [ Atom.make "Stds" [ x; y; u; z ] ]

let test_global_cqa () =
  let retrieved = Gav.retrieved_instance gav sources_52 in
  check Alcotest.bool "global FD violated" false
    (Constraints.Ic.holds retrieved global_schema global_fd);
  let rows =
    Global_cqa.consistent_answers gav ~sources:sources_52 ~ics:[ global_fd ]
      q_names
  in
  check
    Alcotest.(list (list string))
    "101 excluded, others kept"
    [ [ "102"; "mary" ]; [ "103"; "claire" ] ]
    (rows_to_strings rows)

let test_global_cqa_engines_agree () =
  let by e =
    Global_cqa.consistent_answers ~engine:e gav ~sources:sources_52
      ~ics:[ global_fd ] q_names
  in
  check Alcotest.bool "repair-enum = asp" true
    (by `Repair_enumeration = by `Asp)

(* LAV: CUstds defined as a view over the global Stds (Section 5). *)
let lav =
  Lav.make global_schema
    [
      {
        Lav.source = "CUstds";
        head_vars = [ "n"; "m" ];
        body = [ Atom.make "Stds" [ Term.var "n"; Term.var "m"; Term.str "cu"; Term.var "f" ] ];
      };
    ]

let test_lav_canonical_and_certain () =
  let sources = [ fact "CUstds" [ "101"; "john" ]; fact "CUstds" [ "102"; "mary" ] ] in
  let canonical = Lav.canonical_instance lav sources in
  check Alcotest.int "two canonical tuples" 2 (Relational.Instance.size canonical);
  (* Certain answers: numbers and names are known... *)
  let q = Cq.make [ x; y ] [ Atom.make "Stds" [ x; y; u; z ] ] in
  check
    Alcotest.(list (list string))
    "names certain"
    [ [ "101"; "john" ]; [ "102"; "mary" ] ]
    (rows_to_strings (Lav.certain_answers lav sources q));
  (* ... but fields are labeled nulls and not certain. *)
  let qf = Cq.make [ z ] [ Atom.make "Stds" [ x; y; u; z ] ] in
  check Alcotest.int "fields unknown" 0
    (List.length (Lav.certain_answers lav sources qf))

let suite =
  [
    Alcotest.test_case "GAV retrieval (Ex 5.1)" `Quick test_gav_retrieval;
    Alcotest.test_case "GAV query by unfolding" `Quick test_gav_query;
    Alcotest.test_case "global CQA (Ex 5.2)" `Quick test_global_cqa;
    Alcotest.test_case "global CQA engines agree" `Quick
      test_global_cqa_engines_agree;
    Alcotest.test_case "LAV inverse rules" `Quick test_lav_canonical_and_certain;
  ]
