module Instance = Relational.Instance
module Value = Relational.Value
module Engine = Cqa.Engine
open Logic
open Paper_examples

let check = Alcotest.check
let rows_to_strings rows = List.map (List.map Value.to_string) rows

let employee_engine =
  Engine.create ~schema:Employee.schema ~ics:[ Employee.key ] Employee.instance

let q_full =
  Cq.make [ Term.var "x"; Term.var "y" ]
    [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]

let q_proj =
  Cq.make [ Term.var "x" ] [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]

let test_methods_agree () =
  let expected = [ [ "smith"; "3" ]; [ "stowe"; "7" ] ] in
  List.iter
    (fun m ->
      check
        Alcotest.(list (list string))
        "full-tuple query" expected
        (rows_to_strings (Engine.consistent_answers ~method_:m employee_engine q_full)))
    [ `Repair_enumeration; `Key_rewriting; `Asp; `Auto ]

let test_projection_methods () =
  let expected = [ [ "page" ]; [ "smith" ]; [ "stowe" ] ] in
  List.iter
    (fun m ->
      check
        Alcotest.(list (list string))
        "projection query" expected
        (rows_to_strings (Engine.consistent_answers ~method_:m employee_engine q_proj)))
    [ `Repair_enumeration; `Key_rewriting; `Asp; `Auto ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_key_rewriting_refuses_denials () =
  let eng =
    Engine.create ~schema:Denial.schema ~ics:[ Denial.kappa ] Denial.instance
  in
  let q = Cq.make [ Term.var "x" ] [ Atom.make "S" [ Term.var "x" ] ] in
  (* The refusal carries the classifier's witness: it must name the
     constraint that takes the pair outside the key class. *)
  (match Engine.consistent_answers ~method_:`Key_rewriting eng q with
  | _ -> Alcotest.fail "key rewriting accepted a denial constraint"
  | exception Invalid_argument msg ->
      List.iter
        (fun part ->
          if not (contains ~sub:part msg) then
            Alcotest.fail
              (Printf.sprintf "refusal %S does not mention %S" msg part))
        [ "not applicable"; "constraints/non-key"; "kappa" ]);
  (* Auto falls back to repair enumeration. *)
  let rows = Engine.consistent_answers eng q in
  check
    Alcotest.(list (list string))
    "S certain members"
    [ [ "a2" ] ]
    (rows_to_strings rows)

let test_engine_misc () =
  check Alcotest.bool "inconsistent" false (Engine.is_consistent employee_engine);
  check Alcotest.int "two S-repairs" 2 (List.length (Engine.s_repairs employee_engine));
  check Alcotest.int "two C-repairs" 2 (List.length (Engine.c_repairs employee_engine));
  check (Alcotest.float 1e-9) "degree 1/4" 0.25
    (Engine.inconsistency_degree employee_engine);
  let g = Engine.conflict_graph employee_engine in
  check Alcotest.int "one conflict edge" 1
    (List.length g.Constraints.Conflict_graph.edges)

let test_engine_causes () =
  let eng = Engine.create ~schema:Denial.schema ~ics:[] Denial.instance in
  let causes = Engine.causes eng Denial.q in
  check Alcotest.int "four causes" 4 (List.length causes)

let test_c_semantics () =
  let eng =
    Engine.create ~schema:Hypergraph.schema ~ics:Hypergraph.dcs Hypergraph.instance
  in
  let qd = Cq.make [ Term.var "x" ] [ Atom.make "D" [ Term.var "x" ] ] in
  check Alcotest.int "S: none" 0
    (List.length (Engine.consistent_answers eng qd));
  check Alcotest.int "C: one" 1 (List.length (Engine.consistent_answers_c eng qd))

let suite =
  [
    Alcotest.test_case "all methods agree (full tuple)" `Quick test_methods_agree;
    Alcotest.test_case "all methods agree (projection)" `Quick
      test_projection_methods;
    Alcotest.test_case "key rewriting applicability" `Quick
      test_key_rewriting_refuses_denials;
    Alcotest.test_case "repairs, degree, graph" `Quick test_engine_misc;
    Alcotest.test_case "causes facade" `Quick test_engine_causes;
    Alcotest.test_case "S vs C semantics" `Quick test_c_semantics;
  ]
