(* Further-development modules in lib/repairs: counting, prioritized
   repairs, operational sampling, incremental maintenance, aggregation. *)

module Instance = Relational.Instance
module Schema = Relational.Schema
module Value = Relational.Value
module Tid = Relational.Tid
module Fact = Relational.Fact
module Count = Repairs.Count
module Prioritized = Repairs.Prioritized
module Operational = Repairs.Operational
module Incremental = Repairs.Incremental
module Aggregate = Repairs.Aggregate
module P = Workload.Paper

let check = Alcotest.check
let flt = Alcotest.float 1e-9

(* --- counting --- *)

let test_count_closed_form () =
  let db, key = Workload.Gen.key_conflict_chain ~seed:1 ~pairs:5 () in
  let schema = Instance.schema db in
  check Alcotest.int "2^5 s-repairs" 32 (Count.s_repairs db schema [ key ]);
  check Alcotest.int "2^5 c-repairs" 32 (Count.c_repairs db schema [ key ]);
  check Alcotest.(option int) "closed form applies" (Some 32)
    (Count.closed_form_keys db schema [ key ])

let test_count_hypergraph () =
  check Alcotest.int "Fig 1: 4 S-repairs" 4
    (Count.s_repairs P.Hypergraph.instance P.Hypergraph.schema P.Hypergraph.dcs);
  check Alcotest.int "Fig 1: 3 C-repairs" 3
    (Count.c_repairs P.Hypergraph.instance P.Hypergraph.schema P.Hypergraph.dcs);
  check Alcotest.(option int) "no closed form for DCs" None
    (Count.closed_form_keys P.Hypergraph.instance P.Hypergraph.schema
       P.Hypergraph.dcs)

let test_key_blocks () =
  let blocks =
    Count.key_blocks P.Employee.instance P.Employee.schema ~rel:"Employee"
      ~key:[ 0 ]
  in
  check Alcotest.(list int) "one block of two claimants" [ 2 ] blocks

let arb_rows =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 8) (pair (int_range 0 3) (int_range 0 3)))
    ~print:(fun rows ->
      String.concat ";" (List.map (fun (k, s) -> Printf.sprintf "%d,%d" k s) rows))

let schema_kv = Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let instance_of rows =
  Instance.of_rows schema_kv
    [ ("T", List.map (fun (k, s) -> [ Value.int k; Value.int s ]) rows) ]

let prop_count_matches_enumeration =
  QCheck.Test.make ~count:100 ~name:"closed-form count = enumeration count"
    arb_rows (fun rows ->
      let db = instance_of rows in
      Count.s_repairs db schema_kv [ key_kv ]
      = List.length (Repairs.S_repair.enumerate db schema_kv [ key_kv ]))

(* --- prioritized repairs --- *)

(* Employee key conflict: tids t1 = (page,5), t2 = (page,8). *)
let prefer_low_salary t t' =
  (* t1 (salary 5) preferred over t2 (salary 8) *)
  Tid.to_int t = 1 && Tid.to_int t' = 2

let test_prioritized_globally_optimal () =
  let opt =
    Prioritized.globally_optimal prefer_low_salary P.Employee.instance
      P.Employee.schema [ P.Employee.key ]
  in
  check Alcotest.int "one globally optimal repair" 1 (List.length opt);
  let r = List.hd opt in
  check Alcotest.bool "keeps the preferred tuple" true
    (Instance.mem_fact r.Repairs.Repair.repaired
       (Fact.make "Employee" [ Value.str "page"; Value.int 5 ]))

let test_prioritized_empty_priority () =
  let none _ _ = false in
  let all = Repairs.S_repair.enumerate P.Employee.instance P.Employee.schema [ P.Employee.key ] in
  let opt =
    Prioritized.globally_optimal none P.Employee.instance P.Employee.schema
      [ P.Employee.key ]
  in
  check Alcotest.int "no priority: all repairs optimal" (List.length all)
    (List.length opt)

let test_prioritized_containment () =
  (* Globally optimal ⊆ Pareto optimal for any priority. *)
  let p t t' = Tid.to_int t < Tid.to_int t' in
  let glob =
    Prioritized.globally_optimal p P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  let pareto =
    Prioritized.pareto_optimal p P.Hypergraph.instance P.Hypergraph.schema
      P.Hypergraph.dcs
  in
  check Alcotest.bool "global ⊆ pareto" true
    (List.for_all
       (fun g -> List.exists (fun q -> Repairs.Repair.equal g q) pareto)
       glob);
  check Alcotest.bool "some repair survives" true (glob <> [])

let test_greedy_completion () =
  (* Completion preferring t2 first keeps (page, 8). *)
  let r =
    Prioritized.greedy_completion
      ~order:[ Tid.of_int 2; Tid.of_int 1 ]
      P.Employee.instance P.Employee.schema [ P.Employee.key ]
  in
  check Alcotest.bool "keeps (page,8)" true
    (Instance.mem_fact r.Repairs.Repair.repaired
       (Fact.make "Employee" [ Value.str "page"; Value.int 8 ]));
  check Alcotest.bool "is an S-repair" true
    (Repairs.Check.is_s_repair ~original:P.Employee.instance P.Employee.schema
       [ P.Employee.key ] r.Repairs.Repair.repaired)

let test_prioritized_answers () =
  let rows =
    Prioritized.consistent_answers ~semantics:`Global prefer_low_salary
      P.Employee.instance P.Employee.schema [ P.Employee.key ]
      P.Employee.full_query
  in
  (* With the priority resolving the conflict, (page, 5) becomes certain. *)
  check Alcotest.int "three certain tuples" 3 (List.length rows)

(* --- operational sampling --- *)

let test_operational_sample_is_repair () =
  for seed = 0 to 9 do
    let r =
      Operational.sample_repair ~seed P.Denial.instance P.Denial.schema
        [ P.Denial.kappa ]
    in
    check Alcotest.bool "sampled result is an S-repair" true
      (Repairs.Check.is_s_repair ~original:P.Denial.instance P.Denial.schema
         [ P.Denial.kappa ] r.Repairs.Repair.repaired)
  done

let test_operational_probabilities () =
  let probs =
    Operational.answer_probability ~seed:7 ~samples:300 P.Employee.instance
      P.Employee.schema [ P.Employee.key ] P.Employee.names_query
  in
  let p name = List.assoc [ Value.str name ] probs in
  check flt "smith certain" 1.0 (p "smith");
  check flt "stowe certain" 1.0 (p "stowe");
  check flt "page certain (survives both repairs)" 1.0 (p "page");
  let probs_full =
    Operational.answer_probability ~seed:7 ~samples:300 P.Employee.instance
      P.Employee.schema [ P.Employee.key ] P.Employee.full_query
  in
  let p5 = List.assoc [ Value.str "page"; Value.int 5 ] probs_full in
  check Alcotest.bool "page,5 strictly between 0 and 1" true (p5 > 0.2 && p5 < 0.8)

let test_operational_probable_answers () =
  let rows =
    Operational.probable_answers ~seed:3 ~samples:200 ~threshold:0.9
      P.Employee.instance P.Employee.schema [ P.Employee.key ]
      P.Employee.names_query
  in
  check Alcotest.int "three high-probability names" 3 (List.length rows)

let test_operational_rejects_ind () =
  Alcotest.check_raises "IND rejected"
    (Invalid_argument "Operational: denial-class constraints only") (fun () ->
      ignore
        (Operational.sample_repair P.Supply.instance P.Supply.schema
           [ P.Supply.ind ]))

(* --- incremental maintenance --- *)

let test_incremental_insert_delete () =
  let clean =
    Instance.of_rows P.Employee.schema
      [ ("Employee", [ [ Value.str "page"; Value.int 5 ]; [ Value.str "smith"; Value.int 3 ] ]) ]
  in
  let t = Incremental.create clean P.Employee.schema [ P.Employee.key ] in
  check Alcotest.bool "initially consistent" true (Incremental.is_consistent t);
  let t, tid = Incremental.insert t (Fact.make "Employee" [ Value.str "page"; Value.int 8 ]) in
  check Alcotest.bool "conflict detected" false (Incremental.is_consistent t);
  check Alcotest.int "one edge" 1
    (List.length (Incremental.graph t).Constraints.Conflict_graph.edges);
  check Alcotest.int "two repairs" 2 (List.length (Incremental.s_repairs t));
  let t = Incremental.delete t tid in
  check Alcotest.bool "consistent after delete" true (Incremental.is_consistent t)

let test_incremental_matches_rebuild () =
  (* Random insertion sequences: the maintained graph equals a rebuild. *)
  let prop =
    QCheck.Test.make ~count:60 ~name:"incremental graph = rebuilt graph"
      arb_rows (fun rows ->
        let t =
          List.fold_left
            (fun t (k, s) ->
              fst (Incremental.insert t (Fact.make "T" [ Value.int k; Value.int s ])))
            (Incremental.create (Instance.create schema_kv) schema_kv [ key_kv ])
            rows
        in
        let rebuilt =
          Constraints.Conflict_graph.build (Incremental.instance t) schema_kv
            [ key_kv ]
        in
        let edges g =
          List.sort compare
            (List.map Tid.Set.elements
               g.Constraints.Conflict_graph.edges)
        in
        edges (Incremental.graph t) = edges rebuilt)
  in
  prop

let test_incremental_cqa () =
  let t =
    Incremental.create P.Employee.instance P.Employee.schema [ P.Employee.key ]
  in
  let rows = Incremental.consistent_answers t P.Employee.names_query in
  check Alcotest.int "same as engine" 3 (List.length rows)

(* --- aggregation --- *)

let test_aggregate_employee () =
  let range agg =
    Aggregate.range P.Employee.instance P.Employee.schema [ P.Employee.key ]
      ~rel:"Employee" agg
  in
  let sum = range (Aggregate.Sum 1) in
  check flt "sum glb = 3+7+5" 15.0 sum.Aggregate.glb;
  check flt "sum lub = 3+7+8" 18.0 sum.Aggregate.lub;
  let count = range Aggregate.Count_all in
  check flt "count glb" 3.0 count.Aggregate.glb;
  check flt "count lub" 3.0 count.Aggregate.lub;
  let mn = range (Aggregate.Min 1) in
  check flt "min glb" 3.0 mn.Aggregate.glb;
  check flt "min lub" 3.0 mn.Aggregate.lub;
  let mx = range (Aggregate.Max 1) in
  check flt "max glb" 7.0 mx.Aggregate.glb;
  check flt "max lub" 8.0 mx.Aggregate.lub

let test_aggregate_null_sum () =
  let db =
    Instance.of_rows schema_kv
      [ ("T", [ [ Value.int 1; Value.int 4 ]; [ Value.int 1; Value.Null ] ]) ]
  in
  let sum = Aggregate.range db schema_kv [ key_kv ] ~rel:"T" (Aggregate.Sum 1) in
  (* Electing the NULL claimant contributes 0. *)
  check flt "sum glb 0" 0.0 sum.Aggregate.glb;
  check flt "sum lub 4" 4.0 sum.Aggregate.lub

let prop_aggregate_closed_form =
  QCheck.Test.make ~count:100 ~name:"aggregate closed form = enumeration"
    arb_rows (fun rows ->
      let db = instance_of rows in
      List.for_all
        (fun agg ->
          let a = Aggregate.range db schema_kv [ key_kv ] ~rel:"T" agg in
          let b =
            Aggregate.range_by_enumeration db schema_kv [ key_kv ] ~rel:"T" agg
          in
          Float.abs (a.Aggregate.glb -. b.Aggregate.glb) < 1e-9
          && Float.abs (a.Aggregate.lub -. b.Aggregate.lub) < 1e-9)
        [ Aggregate.Count_all; Aggregate.Sum 1; Aggregate.Min 1; Aggregate.Max 1 ])

(* --- optimal (weighted) repairs --- *)

let test_optimal_keys () =
  (* Weigh (page, 8) heavier: the optimal repair keeps it. *)
  let weight tid = if Tid.to_int tid = 2 then 5.0 else 1.0 in
  match
    Repairs.Optimal.optimal_repair ~weight P.Employee.instance P.Employee.schema
      [ P.Employee.key ]
  with
  | None -> Alcotest.fail "repair exists"
  | Some r ->
      check Alcotest.bool "keeps (page,8)" true
        (Instance.mem_fact r.Repairs.Repair.repaired
           (Fact.make "Employee" [ Value.str "page"; Value.int 8 ]));
      check Alcotest.bool "is optimal" true
        (Repairs.Optimal.is_optimal ~weight P.Employee.instance
           P.Employee.schema [ P.Employee.key ] r)

let test_optimal_denials () =
  (* Make S(a3) very heavy: the optimal repair must keep it and delete the
     R tuples instead, even though that costs two deletions. *)
  let weight tid = if Tid.to_int tid = 6 then 10.0 else 1.0 in
  match
    Repairs.Optimal.optimal_repair ~weight P.Denial.instance P.Denial.schema
      [ P.Denial.kappa ]
  with
  | None -> Alcotest.fail "repair exists"
  | Some r ->
      check Alcotest.bool "keeps S(a3)" true
        (Instance.mem_fact r.Repairs.Repair.repaired
           (Fact.make "S" [ Value.str "a3" ]));
      check Alcotest.bool "is optimal" true
        (Repairs.Optimal.is_optimal ~weight P.Denial.instance P.Denial.schema
           [ P.Denial.kappa ] r)

let prop_optimal_matches_bruteforce =
  QCheck.Test.make ~count:80 ~name:"weighted optimal repair = brute force"
    arb_rows (fun rows ->
      let db = instance_of rows in
      (* Deterministic pseudo-weights from the tid. *)
      let weight tid = float_of_int (1 + (Tid.to_int tid * 7 mod 5)) in
      match Repairs.Optimal.optimal_repair ~weight db schema_kv [ key_kv ] with
      | None -> false
      | Some r -> Repairs.Optimal.is_optimal ~weight db schema_kv [ key_kv ] r)

let test_weighted_hitting_set () =
  (* Edge {1,2} with w(1)=5, w(2)=1: pick 2. *)
  let hs =
    Sat.Hitting_set.minimum_weighted
      ~weight:(fun v -> if v = 1 then 5.0 else 1.0)
      [ [ 1; 2 ] ]
  in
  check Alcotest.(option (list int)) "cheap vertex chosen" (Some [ 2 ]) hs

let suite =
  [
    Alcotest.test_case "optimal repair: keys" `Quick test_optimal_keys;
    Alcotest.test_case "optimal repair: denials" `Quick test_optimal_denials;
    QCheck_alcotest.to_alcotest prop_optimal_matches_bruteforce;
    Alcotest.test_case "weighted minimum hitting set" `Quick
      test_weighted_hitting_set;
    Alcotest.test_case "counting: closed form (2^k)" `Quick test_count_closed_form;
    Alcotest.test_case "counting: hypergraph (Fig 1)" `Quick test_count_hypergraph;
    Alcotest.test_case "counting: key blocks" `Quick test_key_blocks;
    QCheck_alcotest.to_alcotest prop_count_matches_enumeration;
    Alcotest.test_case "prioritized: globally optimal" `Quick
      test_prioritized_globally_optimal;
    Alcotest.test_case "prioritized: empty priority" `Quick
      test_prioritized_empty_priority;
    Alcotest.test_case "prioritized: global ⊆ pareto" `Quick
      test_prioritized_containment;
    Alcotest.test_case "prioritized: greedy completion" `Quick
      test_greedy_completion;
    Alcotest.test_case "prioritized: certain answers" `Quick
      test_prioritized_answers;
    Alcotest.test_case "operational: samples are S-repairs" `Quick
      test_operational_sample_is_repair;
    Alcotest.test_case "operational: answer probabilities" `Quick
      test_operational_probabilities;
    Alcotest.test_case "operational: probable answers" `Quick
      test_operational_probable_answers;
    Alcotest.test_case "operational: rejects INDs" `Quick
      test_operational_rejects_ind;
    Alcotest.test_case "incremental: insert/delete" `Quick
      test_incremental_insert_delete;
    QCheck_alcotest.to_alcotest (test_incremental_matches_rebuild ());
    Alcotest.test_case "incremental: CQA" `Quick test_incremental_cqa;
    Alcotest.test_case "aggregate: Employee ranges" `Quick test_aggregate_employee;
    Alcotest.test_case "aggregate: NULL contributes 0 to SUM" `Quick
      test_aggregate_null_sum;
    QCheck_alcotest.to_alcotest prop_aggregate_closed_form;
  ]
