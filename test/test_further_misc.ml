(* Magic sets, causal effect, secrecy views, CQA approximation, parser. *)

module Instance = Relational.Instance
module Schema = Relational.Schema
module Value = Relational.Value
module Fact = Relational.Fact
module Tid = Relational.Tid
module Magic = Datalog.Magic
module P = Workload.Paper
open Logic

let check = Alcotest.check
let flt = Alcotest.float 1e-9
let v = Value.str
let fact rel values = Fact.make rel (List.map v values)

(* --- magic sets --- *)

let x = Term.var "X"
let y = Term.var "Y"
let z = Term.var "Z"

let tc_program =
  Datalog.Program.make
    [
      Datalog.Rule.make (Atom.make "path" [ x; y ]) [ Atom.make "edge" [ x; y ] ];
      Datalog.Rule.make
        (Atom.make "path" [ x; z ])
        [ Atom.make "edge" [ x; y ]; Atom.make "path" [ y; z ] ];
    ]

(* Two disconnected chains: a->b->c and u->v->w->s->t; magic evaluation
   from source a never explores the second component. *)
let edges =
  [
    fact "edge" [ "a"; "b" ];
    fact "edge" [ "b"; "c" ];
    fact "edge" [ "u"; "v" ];
    fact "edge" [ "v"; "w" ];
    fact "edge" [ "w"; "s" ];
    fact "edge" [ "s"; "t" ];
  ]

let test_magic_answers () =
  let query = Atom.make "path" [ Term.str "a"; Term.var "Z" ] in
  let rows = Magic.answers tc_program edges ~query in
  check Alcotest.int "a reaches b and c" 2 (List.length rows);
  (* Same answers as the plain program, restricted to the query constants. *)
  let plain =
    Datalog.Eval.query tc_program edges "path"
    |> List.filter (fun row -> row <> [] && Value.equal (List.hd row) (v "a"))
  in
  check Alcotest.int "matches plain evaluation" (List.length plain)
    (List.length rows)

let test_magic_focuses () =
  let query = Atom.make "path" [ Term.str "a"; Term.var "Z" ] in
  let plain, magic = Magic.derived_count tc_program edges ~query in
  check Alcotest.bool "magic derives fewer facts" true (magic < plain)

let test_magic_boolean_query () =
  let query = Atom.make "path" [ Term.str "a"; Term.str "c" ] in
  check Alcotest.int "a reaches c" 1
    (List.length (Magic.answers tc_program edges ~query));
  let no = Atom.make "path" [ Term.str "a"; Term.str "w" ] in
  check Alcotest.int "a does not reach w" 0
    (List.length (Magic.answers tc_program edges ~query:no))

let test_magic_rejects () =
  let neg_program =
    Datalog.Program.make
      [
        Datalog.Rule.make
          ~neg:[ Atom.make "q" [ x ] ]
          (Atom.make "p" [ x ])
          [ Atom.make "d" [ x ] ];
      ]
  in
  (match Magic.optimize neg_program ~query:(Atom.make "p" [ Term.str "a" ]) with
  | exception Magic.Unsupported _ -> ()
  | _ -> Alcotest.fail "negation should be rejected");
  match Magic.optimize tc_program ~query:(Atom.make "edge" [ x; y ]) with
  | exception Magic.Unsupported _ -> ()
  | _ -> Alcotest.fail "EDB query should be rejected"

let prop_magic_equivalence =
  QCheck.Test.make ~count:80 ~name:"magic answers = plain answers"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 10)
           (pair (int_range 0 5) (int_range 0 5)))
        (int_range 0 5))
    (fun (edge_pairs, source) ->
      let edb =
        List.map
          (fun (a, b) ->
            Fact.make "edge" [ Value.int a; Value.int b ])
          edge_pairs
      in
      let query = Atom.make "path" [ Term.int source; Term.var "Z" ] in
      let magic = Magic.answers tc_program edb ~query in
      let plain =
        Datalog.Eval.query tc_program edb "path"
        |> List.filter (fun row ->
               row <> [] && Value.equal (List.hd row) (Value.int source))
      in
      List.sort compare magic = List.sort compare plain)

(* --- causal effect --- *)

let test_causal_effect_single () =
  let schema = Schema.of_list [ ("Pr", [ "x" ]) ] in
  let db = Instance.of_rows schema [ ("Pr", [ [ v "a" ] ]) ] in
  let q = Cq.make [] [ Atom.make "Pr" [ Term.var "X" ] ] in
  check flt "single tuple is decisive" 1.0
    (Causality.Causal_effect.exact db q (Tid.of_int 1))

let test_causal_effect_pair () =
  let schema = Schema.of_list [ ("Pr", [ "x" ]) ] in
  let db = Instance.of_rows schema [ ("Pr", [ [ v "a" ]; [ v "b" ] ]) ] in
  let q = Cq.make [] [ Atom.make "Pr" [ Term.var "X" ] ] in
  check flt "each of two contributes 1/2" 0.5
    (Causality.Causal_effect.exact db q (Tid.of_int 1))

let test_causal_effect_irrelevant () =
  (* R(a2,a1) never participates in κ's query: its causal effect is 0. *)
  check flt "irrelevant tuple: CE = 0" 0.0
    (Causality.Causal_effect.exact P.Denial.instance P.Denial.q (Tid.of_int 2));
  check Alcotest.bool "counterfactual cause has positive effect" true
    (Causality.Causal_effect.exact P.Denial.instance P.Denial.q (Tid.of_int 6)
     > 0.0)

let test_causal_effect_sampled () =
  let exact = Causality.Causal_effect.exact P.Denial.instance P.Denial.q (Tid.of_int 6) in
  let sampled =
    Causality.Causal_effect.sampled ~seed:5 ~samples:4000 P.Denial.instance
      P.Denial.q (Tid.of_int 6)
  in
  check Alcotest.bool "sampled within 0.05 of exact" true
    (Float.abs (exact -. sampled) < 0.05)

let test_causal_effect_ranking () =
  let ranking = Causality.Causal_effect.ranking P.Denial.instance P.Denial.q in
  check Alcotest.int "all six tuples ranked" 6 (List.length ranking);
  List.iter
    (fun (_, ce) -> check Alcotest.bool "effect in [0,1]" true (ce >= 0.0 && ce <= 1.0))
    ranking;
  (* The counterfactual cause dominates the irrelevant tuple. *)
  let ce tid = List.assoc (Tid.of_int tid) ranking in
  check Alcotest.bool "CE(ι6) > CE(ι2)" true (ce 6 > ce 2)

(* --- secrecy views --- *)

let test_privacy_hide () =
  (* Hide who earns 8 in the Employee table. *)
  let view =
    Cq.make ~name:"secret"
      ~comps:[ Cmp.eq (Term.var "S") (Term.int 8) ]
      [ Term.var "N" ]
      [ Atom.make "Employee" [ Term.var "N"; Term.var "S" ] ]
  in
  let secured =
    Cleaning.Privacy.hide P.Employee.instance P.Employee.schema ~views:[ view ]
  in
  check Alcotest.bool "no leak" false
    (Cleaning.Privacy.leaks secured ~views:[ view ]);
  check Alcotest.int "secret view is empty" 0
    (List.length (Cleaning.Privacy.secret_answers secured view));
  (* Non-secret data survives: every employee name is still certain. *)
  let names = Cleaning.Privacy.secret_answers secured P.Employee.names_query in
  check Alcotest.int "names preserved" 3 (List.length names)

let test_privacy_impossible () =
  (* A bare projection view has no breakable cell: hiding must fail. *)
  let view =
    Cq.make ~name:"all" [ Term.var "N" ]
      [ Atom.make "Employee" [ Term.var "N"; Term.var "S" ] ]
  in
  Alcotest.check_raises "cannot hide"
    (Invalid_argument
       "Privacy.hide: some secrecy view cannot be emptied by NULL updates")
    (fun () ->
      ignore
        (Cleaning.Privacy.hide P.Employee.instance P.Employee.schema
           ~views:[ view ]))

let test_privacy_consistent_view () =
  (* A view that is already empty requires no change. *)
  let view =
    Cq.make ~name:"none"
      ~comps:[ Cmp.eq (Term.var "S") (Term.int 999) ]
      [ Term.var "N" ]
      [ Atom.make "Employee" [ Term.var "N"; Term.var "S" ] ]
  in
  let secured =
    Cleaning.Privacy.hide P.Employee.instance P.Employee.schema ~views:[ view ]
  in
  check Alcotest.int "original kept" 1 (List.length secured.Cleaning.Privacy.secured);
  check Alcotest.bool "unchanged" true
    (Instance.equal
       (List.hd secured.Cleaning.Privacy.secured)
       P.Employee.instance)

(* --- approximation --- *)

let schema_kv = Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let instance_of rows =
  Instance.of_rows schema_kv
    [ ("T", List.map (fun (k, s) -> [ Value.int k; Value.int s ]) rows) ]

let full_q = Workload.Gen.full_tuple_query ()
let proj_q = Workload.Gen.employees_query ()

let exact_answers db q =
  let eng = Cqa.Engine.create ~schema:schema_kv ~ics:[ key_kv ] db in
  Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q

let subset a b = List.for_all (fun r -> List.mem r b) a

let prop_approx_brackets =
  QCheck.Test.make ~count:80 ~name:"under ⊆ exact ⊆ over"
    QCheck.(
      make
        Gen.(list_size (int_range 1 8) (pair (int_range 0 3) (int_range 0 3)))
        ~print:(fun rows ->
          String.concat ";"
            (List.map (fun (k, s) -> Printf.sprintf "%d,%d" k s) rows)))
    (fun rows ->
      let db = instance_of rows in
      let eng = Cqa.Engine.create ~schema:schema_kv ~ics:[ key_kv ] db in
      List.for_all
        (fun q ->
          let exact = exact_answers db q in
          let under = Cqa.Approx.under_approximation eng q in
          let over = Cqa.Approx.over_approximation ~samples:4 eng q in
          subset under exact && subset exact over)
        [ full_q; proj_q ])

let test_approx_bounds_exactness () =
  let eng =
    Cqa.Engine.create ~schema:P.Employee.schema ~ics:[ P.Employee.key ]
      P.Employee.instance
  in
  let b = Cqa.Approx.bounds ~samples:16 eng P.Employee.full_query in
  check Alcotest.bool "bounds bracket" true
    (subset b.Cqa.Approx.under b.Cqa.Approx.over);
  (* On the full-tuple query the residue rewriting is exact, and 16 samples
     of a two-repair space intersect to the exact answers. *)
  check Alcotest.bool "interval closes" true b.Cqa.Approx.exact

(* --- parser --- *)

let doc_text =
  {|% test document
relation Employee(name, salary)
row Employee(page, 5)
row Employee(page, 8)
row Employee("mc gee", 7)
key Employee(name)
fd Employee: name -> salary
dc no_nine: Employee(X, Y), Y = 9
query names(X) :- Employee(X, Y)
query rich(X) :- Employee(X, Y), Y > 6
|}

let test_parse_document () =
  let doc = Cqa.Parse.document_of_string doc_text in
  check Alcotest.int "three rows" 3 (Instance.size doc.Cqa.Parse.instance);
  check Alcotest.int "three constraints" 3 (List.length doc.Cqa.Parse.ics);
  check Alcotest.int "two queries" 2 (List.length doc.Cqa.Parse.queries);
  check Alcotest.bool "quoted value kept" true
    (Instance.mem_fact doc.Cqa.Parse.instance
       (Fact.make "Employee" [ Value.str "mc gee"; Value.int 7 ]));
  let q = Cqa.Parse.find_query doc "rich" in
  let rows = Cq.answers q doc.Cqa.Parse.instance in
  check Alcotest.int "rich: page(8) and mc gee(7)" 2 (List.length rows)

let test_parse_errors () =
  let expect_error text =
    match Cqa.Parse.document_of_string text with
    | exception Cqa.Parse.Error (_, _) -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "bogus directive";
  expect_error "row Unknown(1)";
  expect_error "relation R(a)\nrow R(\"unterminated)";
  expect_error "relation R(a)\nkey R(nope)";
  expect_error "relation R(a, a)"

let test_parse_null_and_ind () =
  let doc =
    Cqa.Parse.document_of_string
      {|relation Supply(company, receiver, item)
relation Articles(item)
row Supply(c1, r1, null)
ind Supply[item] <= Articles[item]
|}
  in
  check Alcotest.bool "null parsed" true
    (Instance.mem_fact doc.Cqa.Parse.instance
       (Fact.make "Supply" [ v "c1"; v "r1"; Value.Null ]));
  match doc.Cqa.Parse.ics with
  | [ Constraints.Ic.Ind i ] ->
      check Alcotest.(pair string (list int)) "sub side" ("Supply", [ 2 ]) i.Constraints.Ic.sub
  | _ -> Alcotest.fail "expected one IND"

let test_parse_cfd () =
  let doc =
    Cqa.Parse.document_of_string
      {|relation Cust(cc, zip, street)
row Cust(44, "EH4", mayfield)
row Cust(44, "EH4", crichton)
row Cust(1, "07974", "mtn ave")
cfd Cust: cc = 44, zip -> street
|}
  in
  match doc.Cqa.Parse.ics with
  | [ (Constraints.Ic.Cfd c) as ic ] ->
      check Alcotest.(list int) "lhs positions" [ 0; 1 ] c.Constraints.Ic.lhs;
      check Alcotest.bool "violated by the EH4 pair" false
        (Constraints.Ic.holds doc.Cqa.Parse.instance doc.Cqa.Parse.schema ic)
  | _ -> Alcotest.fail "expected one CFD"

let test_parse_find_ucq () =
  let doc =
    Cqa.Parse.document_of_string
      {|relation E(n, s)
row E(page, 5)
row E(page, 8)
key E(n)
query earns() :- E(page, 5)
query earns() :- E(page, 8)
|}
  in
  let u = Cqa.Parse.find_ucq doc "earns" in
  check Alcotest.int "two disjuncts" 2 (List.length u.Ucq.disjuncts);
  let eng =
    Cqa.Engine.create ~schema:doc.Cqa.Parse.schema ~ics:doc.Cqa.Parse.ics
      doc.Cqa.Parse.instance
  in
  check Alcotest.int "the disjunction is certain" 1
    (List.length (Cqa.Engine.consistent_answers_ucq eng u))

let suite =
  [
    Alcotest.test_case "parse: cfd directive" `Quick test_parse_cfd;
    Alcotest.test_case "parse: find_ucq" `Quick test_parse_find_ucq;
    Alcotest.test_case "magic sets: answers" `Quick test_magic_answers;
    Alcotest.test_case "magic sets: focusing" `Quick test_magic_focuses;
    Alcotest.test_case "magic sets: boolean query" `Quick test_magic_boolean_query;
    Alcotest.test_case "magic sets: rejections" `Quick test_magic_rejects;
    QCheck_alcotest.to_alcotest prop_magic_equivalence;
    Alcotest.test_case "causal effect: decisive tuple" `Quick
      test_causal_effect_single;
    Alcotest.test_case "causal effect: shared responsibility" `Quick
      test_causal_effect_pair;
    Alcotest.test_case "causal effect: irrelevant tuple" `Quick
      test_causal_effect_irrelevant;
    Alcotest.test_case "causal effect: sampling converges" `Quick
      test_causal_effect_sampled;
    Alcotest.test_case "causal effect: ranking" `Quick test_causal_effect_ranking;
    Alcotest.test_case "privacy: hide a view" `Quick test_privacy_hide;
    Alcotest.test_case "privacy: impossible view" `Quick test_privacy_impossible;
    Alcotest.test_case "privacy: already-empty view" `Quick
      test_privacy_consistent_view;
    QCheck_alcotest.to_alcotest prop_approx_brackets;
    Alcotest.test_case "approximation bounds close" `Quick
      test_approx_bounds_exactness;
    Alcotest.test_case "parse: full document" `Quick test_parse_document;
    Alcotest.test_case "parse: errors" `Quick test_parse_errors;
    Alcotest.test_case "parse: null and IND" `Quick test_parse_null_and_ind;
  ]
