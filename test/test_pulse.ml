(* cqa-pulse: Prometheus exposition, the structured event log, the
   slow-query log, and the perf-regression gate.

   The property tests pin the exposition down to its grammar: whatever
   bytes reach the metric names and label values, the rendered document
   must still parse line-by-line as text exposition format 0.0.4, and
   histogram bucket series must be cumulative with the implicit +Inf
   bucket equal to the count. *)

module P = Server.Protocol
module Prom = Obs.Prometheus

let doc_lines =
  [
    "relation T(k, v)";
    "row T(1, 1)";
    "row T(1, 2)";
    "row T(2, 5)";
    "key T(k)";
    "query q(X) :- T(X, Y)";
  ]

(* ---- the exposition grammar ------------------------------------------ *)

let metric_name_re = Str.regexp {|^[a-zA-Z_:][a-zA-Z0-9_:]*$|}
let label_name_re = Str.regexp {|^[a-zA-Z_][a-zA-Z0-9_]*$|}

let is_metric_name s = Str.string_match metric_name_re s 0
let is_label_name s = Str.string_match label_name_re s 0

let is_value s =
  s = "+Inf" || s = "-Inf" || s = "NaN" || float_of_string_opt s <> None

(* One exposition line: a [# TYPE name kind] comment or a sample
   [name value] / [name{k="v",...} value].  Returns false on anything a
   Prometheus scraper would reject. *)
let line_ok line =
  if line = "" then true
  else if String.length line >= 1 && line.[0] = '#' then
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; kind ] ->
        is_metric_name name
        && List.mem kind [ "counter"; "gauge"; "histogram" ]
    | "#" :: "HELP" :: name :: _ -> is_metric_name name
    | _ -> false
  else
    match String.index_opt line '{' with
    | None -> (
        match String.split_on_char ' ' line with
        | [ name; value ] -> is_metric_name name && is_value value
        | _ -> false)
    | Some i -> (
        let name = String.sub line 0 i in
        match String.rindex_opt line '}' with
        | None -> false
        | Some j when j < i -> false
        | Some j ->
            let labels = String.sub line (i + 1) (j - i - 1) in
            let rest = String.sub line (j + 1) (String.length line - j - 1) in
            let labels_ok =
              (* Split label pairs on quote-comma: commas can appear
                 inside quoted values, but every pair boundary is a
                 closing quote followed by a comma. *)
              Str.split (Str.regexp_string "\",") labels
              |> List.for_all (fun pair ->
                     match String.index_opt pair '=' with
                     | None -> false
                     | Some k ->
                         let lname = String.sub pair 0 k in
                         let v =
                           String.sub pair (k + 1)
                             (String.length pair - k - 1)
                         in
                         is_label_name lname
                         && String.length v >= 1
                         && v.[0] = '"'
                         (* closing quote present unless the splitter
                            consumed it *)
                         && (v = "\"" || true))
            in
            labels_ok
            && is_metric_name name
            && match String.split_on_char ' ' (String.trim rest) with
               | [ value ] -> is_value value
               | _ -> false)

let document_ok text =
  String.split_on_char '\n' text |> List.for_all line_ok

(* ---- qcheck properties ----------------------------------------------- *)

let prop_mangle_name =
  QCheck2.Test.make ~count:500 ~name:"mangle_name emits valid, idempotent names"
    QCheck2.Gen.string (fun s ->
      let m = Prom.mangle_name s in
      is_metric_name m && Prom.mangle_name m = m)

let prop_mangle_label =
  QCheck2.Test.make ~count:500
    ~name:"mangle_label_name emits valid, idempotent label names"
    QCheck2.Gen.string (fun s ->
      let m = Prom.mangle_label_name s in
      is_label_name m
      && Prom.mangle_label_name m = m
      && not (String.length m >= 2 && String.sub m 0 2 = "__"))

let prop_escape_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"label value escape/unescape round-trip"
    QCheck2.Gen.string (fun s ->
      Prom.unescape_label_value (Prom.escape_label_value s) = s
      (* the escaped form must not leak a bare quote or newline *)
      && String.for_all
           (fun c -> c <> '\n')
           (Prom.escape_label_value s))

let prop_render_parses =
  (* Whatever (weird) names the registry accumulates, the document still
     parses against the grammar. *)
  let gen =
    QCheck2.Gen.(list_size (int_range 1 8) (pair string (int_range 0 5)))
  in
  QCheck2.Test.make ~count:200 ~name:"render parses as exposition format" gen
    (fun entries ->
      let r = Obs.Registry.create () in
      List.iter
        (fun (name, v) ->
          let cell = Obs.Registry.counter_cell r name in
          cell := v;
          Obs.Registry.set_gauge r (name ^ ".g") (float_of_int v);
          let h = Obs.Registry.histogram r (name ^ ".h") in
          Obs.Registry.observe h (float_of_int v *. 1e-3))
        entries;
      document_ok (Prom.render r))

(* ---- histogram encoding ---------------------------------------------- *)

let test_histogram_buckets () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "latency_query" in
  List.iter (Obs.Registry.observe h)
    [ 2e-6; 5e-6; 3e-4; 0.02; 0.02; 7.0; 1000.0 ];
  let text = Prom.render r in
  Alcotest.(check bool) "document parses" true (document_ok text);
  let lines = String.split_on_char '\n' text in
  let bucket_lines =
    List.filter_map
      (fun l ->
        if
          String.length l > 26
          && String.sub l 0 26 = "cqa_latency_query_bucket{l"
        then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some
                (float_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "at least the +Inf bucket" true
    (List.length bucket_lines >= 2);
  (* cumulative: monotone non-decreasing *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "buckets are cumulative" true (monotone bucket_lines);
  let last = List.nth bucket_lines (List.length bucket_lines - 1) in
  Alcotest.(check (float 0.0)) "+Inf bucket equals count" 7.0 last;
  let has_line pre =
    List.exists
      (fun l ->
        String.length l >= String.length pre
        && String.sub l 0 (String.length pre) = pre)
      lines
  in
  Alcotest.(check bool) "count series present" true
    (has_line "cqa_latency_query_count 7");
  Alcotest.(check bool) "sum series present" true
    (has_line "cqa_latency_query_sum ");
  Alcotest.(check bool) "histogram TYPE header" true
    (has_line "# TYPE cqa_latency_query histogram")

let test_sample_labels () =
  Alcotest.(check string)
    "label values are escaped"
    {|m{path="a\"b\\c\nd"} 1|}
    (Prom.sample ~labels:[ ("path", "a\"b\\c\nd") ] "m" "1")

(* ---- the event log --------------------------------------------------- *)

let json_field line key =
  (* crude but sufficient extraction for flat test events *)
  let re = Str.regexp (Printf.sprintf {|"%s":\([^,}]*\)|} key) in
  try
    ignore (Str.search_forward re line 0);
    Some (Str.matched_group 1 line)
  with Not_found -> None

let test_events_monotone_ts () =
  let lines = ref [] in
  let clock_values = ref [ 0.0; 0.010; 0.005; 0.020 ] in
  let clock () =
    match !clock_values with
    | v :: rest ->
        clock_values := rest;
        v
    | [] -> 1.0
  in
  let sink = Obs.Events.make ~clock (fun l -> lines := l :: !lines) in
  (* sink creation consumed the first clock value as its epoch *)
  Obs.Events.emit sink "a";
  Obs.Events.emit sink "b" (* clock runs backwards here *);
  Obs.Events.emit sink "c";
  let ts =
    List.rev_map
      (fun l -> int_of_string (Option.get (json_field l "ts_us")))
      !lines
  in
  Alcotest.(check int) "three events" 3 (Obs.Events.emitted sink);
  Alcotest.(check bool) "timestamps never decrease" true
    (match ts with [ a; b; c ] -> a <= b && b <= c | _ -> false);
  (* creation ate 0.0 as the epoch; the backwards 0.005 clamps to the
     preceding 0.010 *)
  Alcotest.(check (list int)) "backwards clock clamped"
    [ 10_000; 10_000; 20_000 ] ts

(* ---- the slow-query log ---------------------------------------------- *)

(* A handler whose clock is a script: each dispatch pops two values
   (start, end), so latency is fully controlled. *)
let scripted_handler ~script ~slow_ms lines =
  let q = ref script in
  let clock () =
    match !q with
    | v :: rest ->
        q := rest;
        v
    | [] -> 0.0
  in
  let sink = Obs.Events.make (fun l -> lines := l :: !lines) in
  Server.Handler.create ~events:sink ~slow_ms ~clock ()

let load t =
  match
    Server.Handler.dispatch t ~payload:doc_lines (P.Load "s1")
  with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head)

let events_of_type lines ev =
  List.filter
    (fun l -> json_field l "ev" = Some (Printf.sprintf "%S" ev))
    (List.rev !lines)

let test_slow_log_fires_iff_over_threshold () =
  let lines = ref [] in
  (* LOAD: 0 -> 0.5s (slow); CHECK: 1.0 -> 1.001 (fast) *)
  let t =
    scripted_handler ~script:[ 0.0; 0.5; 1.0; 1.001 ] ~slow_ms:100.0 lines
  in
  load t;
  (match Server.Handler.dispatch t (P.Check "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("CHECK failed: " ^ head));
  let slow = events_of_type lines "slow_query" in
  let requests = events_of_type lines "request" in
  Alcotest.(check int) "both requests logged" 2 (List.length requests);
  Alcotest.(check int) "exactly one slow record" 1 (List.length slow);
  let record = List.hd slow in
  Alcotest.(check (option string)) "slow record names LOAD"
    (Some "\"LOAD\"") (json_field record "command");
  Alcotest.(check bool) "slow record carries a span tree" true
    (json_field record "spans" <> None)

let test_fast_requests_produce_no_slow_records () =
  let lines = ref [] in
  let t =
    scripted_handler ~script:[ 0.0; 0.001; 1.0; 1.001 ] ~slow_ms:100.0 lines
  in
  load t;
  ignore (Server.Handler.dispatch t (P.Check "s1"));
  Alcotest.(check int) "no slow records" 0
    (List.length (events_of_type lines "slow_query"))

let test_request_ids_join_events_to_spans () =
  let lines = ref [] in
  let t = scripted_handler ~script:[ 0.0; 9.9 ] ~slow_ms:1.0 lines in
  load t;
  let slow = List.hd (events_of_type lines "slow_query") in
  let request = List.hd (events_of_type lines "request") in
  let rid = Option.get (json_field request "req") in
  Alcotest.(check (option string)) "slow record has the same request id"
    (Some rid) (json_field slow "req");
  (* ...and the captured span tree carries the id as the [req] attr of
     the wrapping request span. *)
  let spans_text = slow in
  Alcotest.(check bool) "span attrs name the request id" true
    (let needle = Printf.sprintf "req=%s" rid in
     let re = Str.regexp_string needle in
     try
       ignore (Str.search_forward re spans_text 0);
       true
     with Not_found -> false)

(* ---- METRICS command and deterministic STATS ------------------------- *)

let test_metrics_command () =
  let t = Server.Handler.create () in
  load t;
  ignore (Server.Handler.dispatch t (P.Query { sid = "s1"; name = "q";
                                              method_ = P.Auto;
                                              semantics = P.S;
                                              timeout_ms = None }));
  match Server.Handler.dispatch t P.Metrics with
  | { P.status = `Ok; body; _ } ->
      let text = String.concat "\n" body in
      Alcotest.(check bool) "body parses as exposition" true
        (document_ok text);
      let has kind =
        List.exists
          (fun l ->
            String.length l > 7
            && String.sub l 0 7 = "# TYPE "
            && Filename.check_suffix l kind)
          body
      in
      Alcotest.(check bool) "has a counter" true (has "counter");
      Alcotest.(check bool) "has a gauge" true (has "gauge");
      Alcotest.(check bool) "has a histogram" true (has "histogram")
  | { P.head; _ } -> Alcotest.fail ("METRICS failed: " ^ head)

let test_metrics_parse () =
  (match P.parse "METRICS" with
  | Ok P.Metrics -> ()
  | _ -> Alcotest.fail "METRICS should parse");
  match P.parse "METRICS now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "METRICS takes no arguments"

let test_stats_sorted () =
  let t = Server.Handler.create () in
  load t;
  ignore (Server.Handler.dispatch t (P.Query { sid = "s1"; name = "q";
                                              method_ = P.Auto;
                                              semantics = P.S;
                                              timeout_ms = None }));
  let rendered = Server.Metrics.render (Server.Handler.metrics t) in
  let names =
    List.filter_map
      (fun l ->
        match String.index_opt l ' ' with
        | Some i -> Some (String.sub l 0 i)
        | None -> None)
      rendered
  in
  Alcotest.(check bool) "at least a few metrics" true (List.length names > 5);
  Alcotest.(check (list string)) "render is sorted by metric name"
    (List.sort compare names) names

(* ---- the perf-regression gate ---------------------------------------- *)

let base_doc =
  {|{"rows":[
    {"bench":"serve","requests":1000,"elapsed_s":0.05,"throughput_rps":20000,"cache_hits":700}
  ],"counters":{"sat.dpll.decisions":870,"join.hash":16098}}|}

let doc_with ~elapsed ~rps ~decisions =
  Printf.sprintf
    {|{"rows":[
      {"bench":"serve","requests":1000,"elapsed_s":%g,"throughput_rps":%g,"cache_hits":700}
    ],"counters":{"sat.dpll.decisions":%d,"join.hash":16098}}|}
    elapsed rps decisions

let run_gate fresh =
  let opts = Gate.Compare.default_opts in
  Gate.Compare.regressions
    (Gate.Compare.compare_docs opts
       (Gate.Tiny_json.parse base_doc)
       (Gate.Tiny_json.parse fresh))

let test_gate_pass_on_equal () =
  Alcotest.(check int) "identical runs pass" 0
    (List.length (run_gate base_doc))

let test_gate_fails_on_2x_latency () =
  let regs = run_gate (doc_with ~elapsed:0.1 ~rps:20000. ~decisions:870) in
  Alcotest.(check bool) "2x elapsed_s regresses" true
    (List.exists (fun f -> f.Gate.Compare.field = "elapsed_s") regs)

let test_gate_fails_on_counter_blowup () =
  let regs = run_gate (doc_with ~elapsed:0.05 ~rps:20000. ~decisions:2000) in
  Alcotest.(check bool) "counter increase beyond 25% regresses" true
    (List.exists (fun f -> f.Gate.Compare.field = "sat.dpll.decisions") regs)

let test_gate_tolerates_noise () =
  (* +10% latency, -10% throughput, +10% counters: all inside 25% *)
  let regs = run_gate (doc_with ~elapsed:0.055 ~rps:18000. ~decisions:950) in
  Alcotest.(check int) "noise passes" 0 (List.length regs)

let test_gate_missing_row_regresses () =
  let fresh = {|{"rows":[],"counters":{"sat.dpll.decisions":870,"join.hash":16098}}|} in
  let regs = run_gate fresh in
  Alcotest.(check bool) "dropped row is a regression" true
    (List.exists
       (fun f -> f.Gate.Compare.status = Gate.Compare.Missing)
       regs)

let test_gate_min_ns_floor () =
  (* Sub-floor timings never gate, however bad the ratio. *)
  let base = {|{"rows":[{"bench":"b","n":1,"x_ns":100}],"counters":{}}|} in
  let fresh = {|{"rows":[{"bench":"b","n":1,"x_ns":90000}],"counters":{}}|} in
  let opts = Gate.Compare.default_opts in
  let regs =
    Gate.Compare.regressions
      (Gate.Compare.compare_docs opts
         (Gate.Tiny_json.parse base)
         (Gate.Tiny_json.parse fresh))
  in
  Alcotest.(check int) "sub-floor timing skipped" 0 (List.length regs)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_mangle_name;
    QCheck_alcotest.to_alcotest prop_mangle_label;
    QCheck_alcotest.to_alcotest prop_escape_roundtrip;
    QCheck_alcotest.to_alcotest prop_render_parses;
    Alcotest.test_case "histogram buckets are cumulative with +Inf=count"
      `Quick test_histogram_buckets;
    Alcotest.test_case "sample escapes label values" `Quick test_sample_labels;
    Alcotest.test_case "event timestamps are monotone" `Quick
      test_events_monotone_ts;
    Alcotest.test_case "slow log fires iff over threshold" `Quick
      test_slow_log_fires_iff_over_threshold;
    Alcotest.test_case "fast requests leave no slow records" `Quick
      test_fast_requests_produce_no_slow_records;
    Alcotest.test_case "request ids join events to spans" `Quick
      test_request_ids_join_events_to_spans;
    Alcotest.test_case "METRICS returns valid exposition" `Quick
      test_metrics_command;
    Alcotest.test_case "METRICS parses and rejects arguments" `Quick
      test_metrics_parse;
    Alcotest.test_case "STATS render is sorted" `Quick test_stats_sorted;
    Alcotest.test_case "gate: identical runs pass" `Quick
      test_gate_pass_on_equal;
    Alcotest.test_case "gate: 2x latency fails" `Quick
      test_gate_fails_on_2x_latency;
    Alcotest.test_case "gate: counter blowup fails" `Quick
      test_gate_fails_on_counter_blowup;
    Alcotest.test_case "gate: 10% noise passes" `Quick
      test_gate_tolerates_noise;
    Alcotest.test_case "gate: missing row fails" `Quick
      test_gate_missing_row_regresses;
    Alcotest.test_case "gate: min-ns floor skips micro timings" `Quick
      test_gate_min_ns_floor;
  ]
