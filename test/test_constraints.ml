module Value = Relational.Value
module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Ic = Constraints.Ic
module Violation = Constraints.Violation
module Cg = Constraints.Conflict_graph
open Paper_examples

let check = Alcotest.check

let test_ind_violation () =
  check Alcotest.bool "ID violated" false
    (Ic.holds Supply.instance Supply.schema Supply.ind);
  let dangling = Violation.of_ind Supply.instance
      (match Supply.ind with Ic.Ind i -> i | _ -> assert false)
  in
  check Alcotest.int "one dangling tuple" 1 (List.length dangling)

let test_ind_null_vacuous () =
  let db =
    Instance.of_rows Supply.schema
      [ ("Supply", [ [ v "C1"; v "R1"; Value.Null ] ]); ("Articles", []) ]
  in
  check Alcotest.bool "NULL fk is vacuously fine" true
    (Ic.holds db Supply.schema Supply.ind)

let test_key_to_fd_and_violation () =
  check Alcotest.bool "key violated" false
    (Ic.holds Employee.instance Employee.schema Employee.key);
  let ws = Violation.of_ic Employee.instance Employee.schema Employee.key in
  check Alcotest.int "one conflicting pair" 1 (List.length ws);
  let w = List.hd ws in
  check Alcotest.int "pair of tuples" 2 (Tid.Set.cardinal w.Violation.tids)

let test_fd_null_does_not_violate () =
  let db =
    Instance.of_rows Employee.schema
      [ ("Employee", [ [ Value.Null; i 5 ]; [ Value.Null; i 8 ] ]) ]
  in
  check Alcotest.bool "NULL keys do not clash" true
    (Ic.holds db Employee.schema Employee.key)

let test_denial_violation () =
  let ws = Violation.of_ic Denial.instance Denial.schema Denial.kappa in
  (* κ is violated by (S(a4),R(a4,a3),S(a3)), (S(a3),R(a3,a3),S(a3)) and
     (S(a2),R(a2,a1),S(a1))? — no S(a1); exactly the first two. *)
  check Alcotest.int "two violation witnesses" 2 (List.length ws)

let test_conflict_graph_fig1 () =
  let g = Cg.build Hypergraph.instance Hypergraph.schema Hypergraph.dcs in
  check Alcotest.int "five vertices" 5 (Tid.Set.cardinal g.Cg.vertices);
  check Alcotest.int "three edges" 3 (List.length g.Cg.edges);
  let sizes = List.sort compare (List.map Tid.Set.cardinal g.Cg.edges) in
  check Alcotest.(list int) "edge sizes" [ 2; 2; 3 ] sizes

let test_conflict_graph_rejects_ind () =
  Alcotest.check_raises "IND not allowed"
    (Invalid_argument
       "Conflict_graph.build: ind:Supply[2]\xe2\x8a\x86Articles[0] is not a denial-class constraint")
    (fun () -> ignore (Cg.build Supply.instance Supply.schema [ Supply.ind ]))

let test_cfd () =
  (* Section 6's example: [CC=44, Zip] -> [Street]. *)
  let schema =
    Schema.of_list
      [ ("Cust", [ "cc"; "ac"; "phone"; "name"; "street"; "city"; "zip" ]) ]
  in
  let row cc ac ph nm st ct zp = [ i cc; i ac; v ph; v nm; v st; v ct; v zp ] in
  let db =
    Instance.of_rows schema
      [
        ( "Cust",
          [
            row 44 131 "1234567" "mike" "mayfield" "NYC" "EH4 8LE";
            row 44 131 "3456789" "rick" "crichton" "NYC" "EH4 8LE";
            row 01 908 "3456789" "joe" "mtn ave" "NYC" "07974";
          ] );
      ]
  in
  let fd1 = Ic.fd ~rel:"Cust" ~lhs:[ 0; 1; 2 ] ~rhs:[ 4; 5; 6 ] in
  let fd2 = Ic.fd ~rel:"Cust" ~lhs:[ 0; 1 ] ~rhs:[ 5 ] in
  check Alcotest.bool "plain FD 1 holds" true (Ic.holds db schema fd1);
  check Alcotest.bool "plain FD 2 holds" true (Ic.holds db schema fd2);
  let cfd =
    Ic.cfd ~rel:"Cust" ~lhs:[ 0; 6 ] ~rhs:[ 4 ]
      ~pat:[ (0, Some (Value.int 44)); (6, None); (4, None) ]
  in
  check Alcotest.bool "CFD violated" false (Ic.holds db schema cfd);
  let ws = Violation.of_ic db schema cfd in
  check Alcotest.int "one CFD conflict" 1 (List.length ws)

let test_cfd_constant_pattern () =
  let schema = Schema.of_list [ ("T", [ "country"; "capital" ]) ] in
  let db =
    Instance.of_rows schema
      [ ("T", [ [ v "nl"; v "amsterdam" ]; [ v "nl"; v "rotterdam" ] ]) ]
  in
  (* country = nl forces capital = amsterdam (single-tuple CFD). *)
  let cfd =
    Ic.cfd ~rel:"T" ~lhs:[ 0 ] ~rhs:[ 1 ]
      ~pat:[ (0, Some (v "nl")); (1, Some (v "amsterdam")) ]
  in
  check Alcotest.bool "constant CFD violated" false (Ic.holds db schema cfd);
  let ws = Violation.of_ic db schema cfd in
  check Alcotest.int "single-tuple violation" 1 (List.length ws)

let test_to_clauses () =
  let clauses = Ic.to_clauses Employee.schema Employee.key in
  check Alcotest.int "one clause for 2-attribute key" 1 (List.length clauses);
  let ind_clauses = Ic.to_clauses Supply.schema Supply.ind in
  check Alcotest.int "full IND has a clause" 1 (List.length ind_clauses);
  (* A tgd with an existential head position has no clausal form. *)
  let schema2 =
    Schema.of_list [ ("Supply", [ "c"; "r"; "i" ]); ("Art2", [ "item"; "cost" ]) ]
  in
  let tgd = Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Art2", [ 0 ]) in
  check Alcotest.int "existential tgd: no clause" 0
    (List.length (Ic.to_clauses schema2 tgd))

let test_all_hold () =
  check Alcotest.bool "hypergraph dcs all violated somewhere" false
    (Ic.all_hold Hypergraph.instance Hypergraph.schema Hypergraph.dcs);
  check Alcotest.bool "empty ics hold" true
    (Ic.all_hold Hypergraph.instance Hypergraph.schema [])

let suite =
  [
    Alcotest.test_case "IND violation (Ex 2.1)" `Quick test_ind_violation;
    Alcotest.test_case "IND with NULL is vacuous" `Quick test_ind_null_vacuous;
    Alcotest.test_case "key violation (Ex 3.3)" `Quick test_key_to_fd_and_violation;
    Alcotest.test_case "FD ignores NULL" `Quick test_fd_null_does_not_violate;
    Alcotest.test_case "denial violations (Ex 3.5)" `Quick test_denial_violation;
    Alcotest.test_case "conflict hypergraph (Fig 1)" `Quick test_conflict_graph_fig1;
    Alcotest.test_case "conflict graph rejects INDs" `Quick
      test_conflict_graph_rejects_ind;
    Alcotest.test_case "CFDs (Sec 6 example)" `Quick test_cfd;
    Alcotest.test_case "CFD with constant pattern" `Quick test_cfd_constant_pattern;
    Alcotest.test_case "clausal forms" `Quick test_to_clauses;
    Alcotest.test_case "all_hold" `Quick test_all_hold;
  ]
