module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
open Logic

let check = Alcotest.check
let v = Value.str
let x = Term.var "x"
let d = Term.var "d"
let m = Term.var "m"

let schema =
  Schema.of_list
    [
      ("Emp", [ "name"; "dept" ]);
      ("Mgr", [ "dept"; "mgr" ]);
      ("Staff", [ "who" ]);
      ("NoMgr", [ "dept" ]);
    ]

(* Every department of an employee has a manager; managers are staff. *)
let rules =
  [
    Exrules.rule
      ~body:(Cq.make [ d ] [ Atom.make "Emp" [ x; d ] ])
      ~head:[ Atom.make "Mgr" [ d; m ] ];
    Exrules.rule
      ~body:(Cq.make [ m ] [ Atom.make "Mgr" [ d; m ] ])
      ~head:[ Atom.make "Staff" [ m ] ];
  ]

let nc : Constraints.Ic.denial =
  (* A department cannot both have a manager and be manager-free. *)
  match
    Constraints.Ic.denial ~name:"mgr_clash"
      [ Atom.make "Mgr" [ d; m ]; Atom.make "NoMgr" [ d ] ]
  with
  | Constraints.Ic.Denial den -> den
  | _ -> assert false

let program = { Exrules.rules; constraints = [ nc ] }

let base =
  Instance.of_rows schema
    [ ("Emp", [ [ v "ann"; v "cs" ]; [ v "bob"; v "math" ] ]) ]

let test_weak_acyclicity () =
  check Alcotest.bool "manager rules are WA" true (Exrules.weakly_acyclic rules);
  let looping =
    [
      Exrules.rule
        ~body:(Cq.make [ x ] [ Atom.make "Staff" [ x ] ])
        ~head:[ Atom.make "Mgr" [ x; Term.var "y" ]; Atom.make "Staff" [ Term.var "y" ] ];
    ]
  in
  check Alcotest.bool "value-inventing loop rejected" false
    (Exrules.weakly_acyclic looping)

let test_chase () =
  let saturated = Exrules.chase program base in
  check Alcotest.int "two invented managers" 2
    (Instance.cardinality saturated ~rel:"Mgr");
  check Alcotest.int "managers are staff" 2
    (Instance.cardinality saturated ~rel:"Staff");
  let mgr_values =
    Instance.rows saturated ~rel:"Mgr" |> List.map (fun r -> r.(1))
  in
  check Alcotest.bool "managers are skolems" true
    (List.for_all Exrules.is_skolem mgr_values)

let test_chase_nonterminating_guard () =
  let looping =
    {
      Exrules.rules =
        [
          Exrules.rule
            ~body:(Cq.make [ x ] [ Atom.make "Staff" [ x ] ])
            ~head:
              [ Atom.make "Mgr" [ x; Term.var "y" ]; Atom.make "Staff" [ Term.var "y" ] ];
        ];
      constraints = [];
    }
  in
  let db = Instance.of_rows schema [ ("Staff", [ [ v "root" ] ]) ] in
  Alcotest.check_raises "budget guard"
    (Failure "Exrules.chase: round budget exhausted (non-terminating rules?)")
    (fun () -> ignore (Exrules.chase ~max_rounds:5 looping db))

let test_certain_answers () =
  (* Departments with a manager: both, even though the manager is unknown. *)
  let q = Cq.make [ d ] [ Atom.make "Mgr" [ d; m ] ] in
  check
    Alcotest.(list (list string))
    "both departments"
    [ [ "cs" ]; [ "math" ] ]
    (List.map (List.map Value.to_string) (Exrules.certain_answers program base q));
  (* The managers themselves are skolems: no certain answer. *)
  let q2 = Cq.make [ m ] [ Atom.make "Mgr" [ d; m ] ] in
  check Alcotest.int "no certain manager" 0
    (List.length (Exrules.certain_answers program base q2))

let dirty =
  Instance.of_rows schema
    [
      ("Emp", [ [ v "ann"; v "cs" ]; [ v "bob"; v "math" ] ]);
      ("NoMgr", [ [ v "cs" ] ]);
    ]

let test_conflicts_via_provenance () =
  check Alcotest.bool "clean base consistent" true
    (Exrules.is_consistent program base);
  check Alcotest.bool "dirty base inconsistent" false
    (Exrules.is_consistent program dirty);
  let cs = Exrules.conflicts program dirty in
  check Alcotest.int "one minimal conflict" 1 (List.length cs);
  (* The conflict traces the derived Mgr(cs, sk) back to Emp(ann, cs). *)
  check Alcotest.int "conflict has two base tuples" 2
    (Relational.Tid.Set.cardinal (List.hd cs))

let test_repairs_and_semantics () =
  let rs = Exrules.repairs program dirty in
  check Alcotest.int "two repairs" 2 (List.length rs);
  let q_emp = Cq.make [ x ] [ Atom.make "Emp" [ x; d ] ] in
  let rows sem = Exrules.answers sem program dirty q_emp in
  check
    Alcotest.(list (list string))
    "AR: bob certain, ann not"
    [ [ "bob" ] ]
    (List.map (List.map Value.to_string) (Exrules.answers Exrules.AR program dirty q_emp));
  check
    Alcotest.(list (list string))
    "brave: both"
    [ [ "ann" ]; [ "bob" ] ]
    (List.map (List.map Value.to_string) (rows Exrules.Brave));
  check Alcotest.bool "IAR ⊆ AR" true
    (List.for_all
       (fun r -> List.mem r (rows Exrules.AR))
       (rows Exrules.IAR))

let suite =
  [
    Alcotest.test_case "weak acyclicity" `Quick test_weak_acyclicity;
    Alcotest.test_case "skolem chase" `Quick test_chase;
    Alcotest.test_case "non-terminating guard" `Quick
      test_chase_nonterminating_guard;
    Alcotest.test_case "certain answers" `Quick test_certain_answers;
    Alcotest.test_case "conflicts via provenance" `Quick
      test_conflicts_via_provenance;
    Alcotest.test_case "repairs and AR/IAR/brave" `Quick
      test_repairs_and_semantics;
  ]
