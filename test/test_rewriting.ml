module Value = Relational.Value
module Instance = Relational.Instance
module Schema = Relational.Schema
open Logic
open Paper_examples

let check = Alcotest.check
let vrows = Alcotest.(list (list string))
let rows_to_strings rows = List.map (List.map Value.to_string) rows

(* E1 (Ex 2.1–2.2): residue rewriting of the item query under the IND. *)
let test_residue_ind () =
  let q =
    Cq.make [ Term.var "z" ]
      [ Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ] ]
  in
  let answers =
    Rewriting.Residue_rewrite.consistent_answers q Supply.schema [ Supply.ind ]
      Supply.instance
  in
  check vrows "consistent items" [ [ "I1" ]; [ "I2" ] ] (rows_to_strings answers)

(* E3 (Ex 3.3–3.4): residue rewriting of the full-tuple query under the key. *)
let test_residue_key_full_tuple () =
  let q =
    Cq.make [ Term.var "x"; Term.var "y" ]
      [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]
  in
  let answers =
    Rewriting.Residue_rewrite.consistent_answers q Employee.schema
      [ Employee.key ] Employee.instance
  in
  check vrows "smith and stowe"
    [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
    (rows_to_strings answers)

(* The projection query Q2(x): ∃y Employee(x,y) — residue rewriting is too
   strict here (drops page), which is exactly why Fuxman–Miller-style
   rewriting exists. *)
let q2 =
  Cq.make [ Term.var "x" ]
    [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]

let test_residue_projection_incomplete () =
  let answers =
    Rewriting.Residue_rewrite.consistent_answers q2 Employee.schema
      [ Employee.key ] Employee.instance
  in
  check vrows "residue rewriting misses page"
    [ [ "smith" ]; [ "stowe" ] ]
    (rows_to_strings answers)

let emp_keys = [ ("Employee", [ 0 ]) ]

let test_key_rewrite_projection () =
  match Rewriting.Key_rewrite.consistent_answers q2 ~keys:emp_keys Employee.instance with
  | None -> Alcotest.fail "Q2 is in the rewritable class"
  | Some answers ->
      check vrows "page is a consistent answer to Q2"
        [ [ "page" ]; [ "smith" ]; [ "stowe" ] ]
        (rows_to_strings answers)

let test_key_rewrite_full_tuple () =
  let q1 =
    Cq.make [ Term.var "x"; Term.var "y" ]
      [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]
  in
  match Rewriting.Key_rewrite.consistent_answers q1 ~keys:emp_keys Employee.instance with
  | None -> Alcotest.fail "Q1 is in the rewritable class"
  | Some answers ->
      check vrows "full tuples"
        [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
        (rows_to_strings answers)

(* Fuxman–Miller's canonical join: R(x,y) ⋈ S(y,z) with keys on the first
   attributes.  x is an answer iff in every repair some R-mate of x joins. *)
let join_schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "c"; "d" ]) ]
let join_keys = [ ("R", [ 0 ]); ("S", [ 0 ]) ]

let join_q =
  Cq.make [ Term.var "x" ]
    [
      Atom.make "R" [ Term.var "x"; Term.var "y" ];
      Atom.make "S" [ Term.var "y"; Term.var "z" ];
    ]

let test_key_rewrite_join () =
  let db =
    Instance.of_rows join_schema
      [
        ( "R",
          [
            (* a1 has conflicting R-tuples; only one of them joins S. *)
            [ v "a1"; v "b1" ];
            [ v "a1"; v "b2" ];
            (* a2's single tuple joins S. *)
            [ v "a2"; v "b3" ];
            (* a3 has conflicting tuples and both join S. *)
            [ v "a3"; v "b4" ];
            [ v "a3"; v "b5" ];
          ] );
        ( "S",
          [
            [ v "b1"; v "c1" ];
            [ v "b3"; v "c2" ];
            [ v "b4"; v "c3" ];
            [ v "b5"; v "c4" ];
          ] );
      ]
  in
  match Rewriting.Key_rewrite.consistent_answers join_q ~keys:join_keys db with
  | None -> Alcotest.fail "join query is in C-forest"
  | Some answers ->
      check vrows "a2 and a3 only"
        [ [ "a2" ]; [ "a3" ] ]
        (rows_to_strings answers)

let test_key_rewrite_rejects_self_join () =
  let q =
    Cq.make [ Term.var "x" ]
      [
        Atom.make "R" [ Term.var "x"; Term.var "y" ];
        Atom.make "R" [ Term.var "y"; Term.var "z" ];
      ]
  in
  check Alcotest.bool "self-join rejected" true
    (Rewriting.Key_rewrite.rewrite q ~keys:join_keys = None)

let test_key_rewrite_rejects_nonkey_join () =
  let q =
    Cq.make []
      [
        Atom.make "R" [ Term.var "x"; Term.var "y" ];
        Atom.make "S" [ Term.var "z"; Term.var "y" ];
      ]
  in
  check Alcotest.bool "non-key to non-key join rejected" true
    (Rewriting.Key_rewrite.rewrite q ~keys:join_keys = None)

let test_key_rewrite_constants () =
  let db =
    Instance.of_rows join_schema
      [ ("R", [ [ v "a1"; v "b1" ]; [ v "a1"; v "b2" ]; [ v "a2"; v "b1" ] ]) ]
  in
  (* Q(x): R(x,'b1') — consistent iff every key-mate carries b1. *)
  let q =
    Cq.make [ Term.var "x" ] [ Atom.make "R" [ Term.var "x"; Term.str "b1" ] ]
  in
  match Rewriting.Key_rewrite.consistent_answers q ~keys:join_keys db with
  | None -> Alcotest.fail "in class"
  | Some answers ->
      check vrows "only a2" [ [ "a2" ] ] (rows_to_strings answers)

(* Differential property: on random instances over one keyed relation, the
   Fuxman–Miller rewriting agrees with repair-enumeration CQA, for both the
   full-tuple query and the projection. *)
let schema_kv = Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let repair_cqa q db =
  let repairs = Repairs.S_repair.enumerate db schema_kv [ key_kv ] in
  match repairs with
  | [] -> []
  | first :: rest ->
      let module Rows = Set.Make (struct
        type t = Value.t list

        let compare = List.compare Value.compare
      end) in
      let answers r = Rows.of_list (Cq.answers q r.Repairs.Repair.repaired) in
      Rows.elements
        (List.fold_left (fun acc r -> Rows.inter acc (answers r)) (answers first) rest)

let gen_rows =
  QCheck.Gen.(list_size (int_range 1 7) (pair (int_range 0 3) (int_range 0 2)))

let arb_rows =
  QCheck.make gen_rows ~print:(fun rows ->
      String.concat ";" (List.map (fun (k, s) -> Printf.sprintf "%d,%d" k s) rows))

let instance_of rows =
  Instance.of_rows schema_kv
    [ ("T", List.map (fun (k, s) -> [ Value.int k; Value.int s ]) rows) ]

let prop_fm_agrees_with_repairs query =
  QCheck.Test.make ~count:100
    ~name:
      (Printf.sprintf "FM rewriting = repair CQA (%s)" query.Cq.name)
    arb_rows
    (fun rows ->
      let db = instance_of rows in
      match Rewriting.Key_rewrite.consistent_answers query ~keys:[ ("T", [ 0 ]) ] db with
      | None -> false
      | Some rewritten -> rewritten = repair_cqa query db)

let q_full =
  Cq.make ~name:"full" [ Term.var "x"; Term.var "y" ]
    [ Atom.make "T" [ Term.var "x"; Term.var "y" ] ]

let q_proj =
  Cq.make ~name:"proj" [ Term.var "x" ]
    [ Atom.make "T" [ Term.var "x"; Term.var "y" ] ]

let suite =
  [
    Alcotest.test_case "residue rewriting: IND (E1)" `Quick test_residue_ind;
    Alcotest.test_case "residue rewriting: key, full tuple (E3)" `Quick
      test_residue_key_full_tuple;
    Alcotest.test_case "residue rewriting incomplete on projection" `Quick
      test_residue_projection_incomplete;
    Alcotest.test_case "FM rewriting: projection keeps page" `Quick
      test_key_rewrite_projection;
    Alcotest.test_case "FM rewriting: full tuple" `Quick test_key_rewrite_full_tuple;
    Alcotest.test_case "FM rewriting: key join" `Quick test_key_rewrite_join;
    Alcotest.test_case "FM rejects self-joins" `Quick test_key_rewrite_rejects_self_join;
    Alcotest.test_case "FM rejects non-key joins" `Quick
      test_key_rewrite_rejects_nonkey_join;
    Alcotest.test_case "FM rewriting with constants" `Quick test_key_rewrite_constants;
    QCheck_alcotest.to_alcotest (prop_fm_agrees_with_repairs q_full);
    QCheck_alcotest.to_alcotest (prop_fm_agrees_with_repairs q_proj);
  ]
