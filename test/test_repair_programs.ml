module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Tid = Relational.Tid
module Compile = Repair_programs.Compile
module Asp_cqa = Repair_programs.Asp_cqa
module Cause_rules = Repair_programs.Cause_rules
open Logic
open Paper_examples

let check = Alcotest.check

let facts_sorted inst =
  Instance.fact_list inst |> List.map Fact.to_string |> List.sort compare

(* E4: the compiled repair program for κ has exactly the three stable
   models / repairs of Example 3.5. *)
let test_compiled_repairs_ex35 () =
  let repairs = Asp_cqa.repairs Denial.instance Denial.schema [ Denial.kappa ] in
  check Alcotest.int "three repairs" 3 (List.length repairs);
  let expected =
    Repairs.S_repair.enumerate Denial.instance Denial.schema [ Denial.kappa ]
    |> List.map (fun r -> facts_sorted r.Repairs.Repair.repaired)
    |> List.sort compare
  in
  let got = List.sort compare (List.map facts_sorted repairs) in
  check Alcotest.(list (list string)) "same as hypergraph engine" expected got

(* Stable-model CQA agrees with repair-enumeration CQA on Example 3.3. *)
let test_asp_cqa_employee () =
  let q =
    Cq.make [ Term.var "x"; Term.var "y" ]
      [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]
  in
  let rows =
    Asp_cqa.consistent_answers q Employee.schema [ Employee.key ]
      Employee.instance
  in
  check
    Alcotest.(list (list string))
    "consistent tuples"
    [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
    (List.map (List.map Value.to_string) rows);
  (* Projection query: cautious reasoning keeps page, unlike the naive
     residue rewriting. *)
  let q2 =
    Cq.make [ Term.var "x" ] [ Atom.make "Employee" [ Term.var "x"; Term.var "y" ] ]
  in
  let rows2 =
    Asp_cqa.consistent_answers q2 Employee.schema [ Employee.key ]
      Employee.instance
  in
  check
    Alcotest.(list (list string))
    "page kept"
    [ [ "page" ]; [ "smith" ]; [ "stowe" ] ]
    (List.map (List.map Value.to_string) rows2)

(* E6: weak constraints — C-repair CQA on Figure 1's instance. *)
let test_c_repairs_via_weak_constraints () =
  let crs = Asp_cqa.c_repairs Hypergraph.instance Hypergraph.schema Hypergraph.dcs in
  check Alcotest.int "three C-repairs" 3 (List.length crs);
  let expected =
    Repairs.C_repair.enumerate Hypergraph.instance Hypergraph.schema Hypergraph.dcs
    |> List.map (fun r -> facts_sorted r.Repairs.Repair.repaired)
    |> List.sort compare
  in
  check
    Alcotest.(list (list string))
    "same as hitting-set engine" expected
    (List.sort compare (List.map facts_sorted crs))

(* CQA under C-repairs can accept more answers than under S-repairs:
   B(a) holds in all three C-repairs?  No — D2={C,D,E} drops B.  But
   D(a) holds in D2, D3, D4 (all C-repairs) while failing in D1={B,C}. *)
let test_s_vs_c_semantics () =
  let qd = Cq.make [ Term.var "x" ] [ Atom.make "D" [ Term.var "x" ] ] in
  let s_rows =
    Asp_cqa.consistent_answers ~semantics:`S qd Hypergraph.schema Hypergraph.dcs
      Hypergraph.instance
  in
  let c_rows =
    Asp_cqa.consistent_answers ~semantics:`C qd Hypergraph.schema Hypergraph.dcs
      Hypergraph.instance
  in
  check Alcotest.int "D(a) not S-consistent" 0 (List.length s_rows);
  check
    Alcotest.(list (list string))
    "D(a) is C-consistent"
    [ [ "a" ] ]
    (List.map (List.map Value.to_string) c_rows)

(* E12: cause extraction via repair programs (Example 7.2). *)
let test_cause_rules () =
  let causes = Cause_rules.causes Denial.instance Denial.schema Denial.q in
  check
    Alcotest.(list int)
    "causes are ι1 ι3 ι4 ι6"
    [ 1; 3; 4; 6 ]
    (List.map Tid.to_int causes);
  let pairs = Cause_rules.cau_con_pairs Denial.instance Denial.schema Denial.q in
  (* From the repair deleting {ι1, ι3}: CauCon(1,3) and CauCon(3,1); from
     {ι3, ι4}: CauCon(3,4) and CauCon(4,3). *)
  check
    Alcotest.(list (pair int int))
    "CauCon pairs"
    [ (1, 3); (3, 1); (3, 4); (4, 3) ]
    (List.map (fun (a, b) -> (Tid.to_int a, Tid.to_int b)) pairs)

let test_cause_rules_responsibility () =
  let rho = Cause_rules.responsibilities Denial.instance Denial.schema Denial.q in
  let find tid = List.assoc (Tid.of_int tid) rho in
  check (Alcotest.float 1e-9) "rho(ι6) = 1" 1.0 (find 6);
  check (Alcotest.float 1e-9) "rho(ι1) = 1/2" 0.5 (find 1);
  check (Alcotest.float 1e-9) "rho(ι3) = 1/2" 0.5 (find 3);
  check (Alcotest.float 1e-9) "rho(ι4) = 1/2" 0.5 (find 4);
  check Alcotest.bool "ι2, ι5 not causes" true
    (not (List.mem_assoc (Tid.of_int 2) rho)
    && not (List.mem_assoc (Tid.of_int 5) rho))

(* Differential: ASP CQA = repair-enumeration CQA on random instances. *)
let schema_kv = Relational.Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let q_proj =
  Cq.make [ Term.var "x" ] [ Atom.make "T" [ Term.var "x"; Term.var "y" ] ]

let repair_cqa q db =
  let repairs = Repairs.S_repair.enumerate db schema_kv [ key_kv ] in
  match repairs with
  | [] -> []
  | first :: rest ->
      let module Rows = Set.Make (struct
        type t = Value.t list

        let compare = List.compare Value.compare
      end) in
      let answers r = Rows.of_list (Cq.answers q r.Repairs.Repair.repaired) in
      Rows.elements
        (List.fold_left (fun acc r -> Rows.inter acc (answers r)) (answers first) rest)

let arb_rows =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 6) (pair (int_range 0 2) (int_range 0 2)))
    ~print:(fun rows ->
      String.concat ";" (List.map (fun (k, s) -> Printf.sprintf "%d,%d" k s) rows))

let prop_asp_cqa_agrees =
  QCheck.Test.make ~count:60 ~name:"ASP CQA = repair-enumeration CQA" arb_rows
    (fun rows ->
      let db =
        Instance.of_rows schema_kv
          [ ("T", List.map (fun (k, s) -> [ Value.int k; Value.int s ]) rows) ]
      in
      Asp_cqa.consistent_answers q_proj schema_kv [ key_kv ] db
      = repair_cqa q_proj db)

let suite =
  [
    Alcotest.test_case "compiled repair program (E4)" `Quick
      test_compiled_repairs_ex35;
    Alcotest.test_case "ASP CQA on Employee" `Quick test_asp_cqa_employee;
    Alcotest.test_case "weak constraints give C-repairs (E6)" `Quick
      test_c_repairs_via_weak_constraints;
    Alcotest.test_case "S- vs C-repair semantics" `Quick test_s_vs_c_semantics;
    Alcotest.test_case "cause rules (E12)" `Quick test_cause_rules;
    Alcotest.test_case "responsibilities via ASP" `Quick
      test_cause_rules_responsibility;
    QCheck_alcotest.to_alcotest prop_asp_cqa_agrees;
  ]
