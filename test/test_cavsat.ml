(* The cqa-sat vertical: the incremental DPLL interface, the CAvSAT
   repair theory and certainty pipeline, engine dispatch to the
   sat_compilation route, and the SAT ≡ enumeration equivalence on
   random inconsistent instances. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic
module Inc = Sat.Dpll.Incremental
open Logic

let check = Alcotest.check
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

let rows = Alcotest.(list (list string))
let strings_of = List.map (List.map Value.to_string)

(* ---- Dpll.Incremental ------------------------------------------------ *)

let test_incremental_basic () =
  let s = Inc.create () in
  Inc.add_clause s [ 1; 2 ];
  Inc.add_clause s [ -1; 2 ];
  check Alcotest.bool "sat" true (Inc.satisfiable s);
  (* Growing the formula between calls is visible to the next call. *)
  Inc.add_clause s [ -2 ];
  check Alcotest.bool "now unsat" false (Inc.satisfiable s);
  (* Root-level unsatisfiability is permanent. *)
  check Alcotest.bool "still unsat" false (Inc.satisfiable s)

let test_incremental_assumptions () =
  let s = Inc.create () in
  let a = Inc.fresh_var s and b = Inc.fresh_var s in
  Inc.add_clause s [ -a; b ];
  Inc.add_clause s [ -b ];
  check Alcotest.bool "free: sat" true (Inc.satisfiable s);
  check Alcotest.int "no learned clauses yet" 0 (Inc.learned_clauses s);
  (* Assuming a forces b, contradicting ¬b: unsat under the assumption,
     and the refutation ¬a is retained. *)
  check Alcotest.bool "under a: unsat" false (Inc.satisfiable ~assumptions:[ a ] s);
  check Alcotest.int "refutation retained" 1 (Inc.learned_clauses s);
  (match Inc.solve s with
  | None -> Alcotest.fail "formula itself is satisfiable"
  | Some m -> check Alcotest.bool "learned unit forces a false" false m.(a));
  (* The solver stays reusable after an unsat call. *)
  check Alcotest.bool "still sat free" true (Inc.satisfiable s)

let test_incremental_empty_clause () =
  let s = Inc.create () in
  Inc.add_clause s [ 1 ];
  Inc.add_clause s [];
  check Alcotest.bool "empty clause: unsat" false (Inc.satisfiable s)

let test_incremental_many_selectors () =
  (* The cavsat usage pattern: a fixed theory, then one selector per
     probe, each retired after its call. *)
  let s = Inc.create () in
  let v1 = Inc.fresh_var s and v2 = Inc.fresh_var s in
  Inc.add_clause s [ v1; v2 ];
  Inc.add_clause s [ -v1; -v2 ];
  for _ = 1 to 20 do
    let sel = Inc.fresh_var s in
    Inc.add_clause s [ -sel; v1 ];
    Inc.add_clause s [ -sel; v2 ];
    (match Inc.solve ~assumptions:[ sel ] s with
    | Some _ -> Alcotest.fail "selector forces v1∧v2 against ¬(v1∧v2)"
    | None -> ());
    check Alcotest.bool "theory survives probe" true (Inc.satisfiable s)
  done;
  check Alcotest.int "twenty refutations retained" 20 (Inc.learned_clauses s)

(* ---- Theory ---------------------------------------------------------- *)

let rs_schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "c"; "d" ]) ]
let rs_keys = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ]

let test_theory_key_block () =
  let db =
    Instance.of_rows rs_schema
      [
        ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]);
        ("S", [ [ Value.int 7; Value.int 10 ] ]);
      ]
  in
  let t = Cavsat.Theory.build db rs_schema rs_keys in
  check Alcotest.bool "repairs exist" false t.Cavsat.Theory.no_repairs;
  (* One key group of two: x1, x2; ¬x1∨¬x2 and x1∨x2. *)
  check Alcotest.int "two vars" 2 t.Cavsat.Theory.base.Cavsat.Theory.vars;
  check Alcotest.int "two clauses" 2 t.Cavsat.Theory.base.Cavsat.Theory.clauses;
  check Alcotest.int "one conflict edge" 1
    t.Cavsat.Theory.base.Cavsat.Theory.conflict_edges;
  (* Exactly the two singleton repairs: models = maximal independent sets. *)
  match Inc.solve t.Cavsat.Theory.solver with
  | None -> Alcotest.fail "theory of a repairable instance is satisfiable"
  | Some m -> check Alcotest.bool "exactly one kept" true (m.(1) <> m.(2))

let test_theory_cache () =
  let db =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]) ]
  in
  let t1 = Cavsat.Theory.cached db rs_schema rs_keys in
  let t2 = Cavsat.Theory.cached db rs_schema rs_keys in
  check Alcotest.bool "same theory instance" true (t1 == t2)

(* ---- Certain --------------------------------------------------------- *)

(* q(x) :- R(x,y), S(z,y): the Fuxman–Miller coNP-hard pattern. *)
let hard = Cq.make ~name:"hard" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]

let certain_sat db q = Cavsat.Certain.consistent_answers db rs_schema rs_keys q

let certain_enum db q =
  let eng = Cqa.Engine.create ~schema:rs_schema ~ics:rs_keys db in
  Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q

let test_certain_planted () =
  let db =
    Instance.of_rows rs_schema
      [
        ( "R",
          [
            (* uncertain: only one claimant's value has S support *)
            [ Value.int 1; Value.int 10 ];
            [ Value.int 1; Value.int 11 ];
            (* certain despite conflict: both claimants supported *)
            [ Value.int 2; Value.int 20 ];
            [ Value.int 2; Value.int 21 ];
            (* clean and supported *)
            [ Value.int 3; Value.int 30 ];
          ] );
        ( "S",
          [
            [ Value.int 70; Value.int 10 ];
            [ Value.int 71; Value.int 20 ];
            [ Value.int 72; Value.int 21 ];
            [ Value.int 73; Value.int 30 ];
          ] );
      ]
  in
  let sat = certain_sat db hard in
  check rows "planted certain answers" [ [ "2" ]; [ "3" ] ] (strings_of sat);
  check rows "agrees with enumeration" (strings_of (certain_enum db hard))
    (strings_of sat)

let test_certain_needs_maximality () =
  (* Both claimants of the key group produce the SAME answer.  A
     non-maximal consistent subset (drop both) kills every witness, but
     every S-repair keeps one — so the answer is certain, and an
     encoding without maximality clauses would wrongly refute it. *)
  let db =
    Instance.of_rows rs_schema
      [
        ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]);
        ("S", [ [ Value.int 7; Value.int 10 ]; [ Value.int 8; Value.int 11 ] ]);
      ]
  in
  check rows "certain through either claimant" [ [ "1" ] ]
    (strings_of (certain_sat db hard));
  check rows "agrees with enumeration" (strings_of (certain_enum db hard))
    [ [ "1" ] ]

let test_certain_boolean () =
  let bool_q = Cq.make ~name:"b" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ] in
  let db =
    Instance.of_rows rs_schema
      [
        ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]);
        ("S", [ [ Value.int 7; Value.int 10 ] ]);
      ]
  in
  (* The only witness dies in the repair keeping R(1,11): not certain. *)
  check rows "boolean not certain" [] (strings_of (certain_sat db bool_q));
  check rows "enumeration agrees" (strings_of (certain_enum db bool_q)) [];
  let db2 =
    Instance.add db (Relational.Fact.make "S" [ Value.int 8; Value.int 11 ])
  in
  check rows "boolean certain" [ [] ] (strings_of (certain_sat db2 bool_q));
  check rows "enumeration agrees too" (strings_of (certain_enum db2 bool_q))
    [ [] ]

let test_certain_rejects_inds () =
  let schema =
    Schema.of_list [ ("Supply", [ "c"; "r"; "i" ]); ("Articles", [ "i" ]) ]
  in
  let db = Instance.create schema in
  let ind = Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ]) in
  let q = Cq.make ~name:"q" [ x ] [ Atom.make "Articles" [ x ] ] in
  match Cavsat.Certain.consistent_answers db schema [ ind ] q with
  | _ -> Alcotest.fail "SAT backend accepted an inclusion dependency"
  | exception Invalid_argument msg ->
      check Alcotest.bool "message names the constraint class" true
        (String.length msg > 0
        && Str.string_match (Str.regexp ".*denial-class.*") msg 0)

(* ---- Engine dispatch ------------------------------------------------- *)

let test_engine_auto_routes_to_sat () =
  let db =
    Instance.of_rows rs_schema
      [
        ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]);
        ("S", [ [ Value.int 7; Value.int 10 ]; [ Value.int 8; Value.int 11 ] ]);
      ]
  in
  let eng = Cqa.Engine.create ~schema:rs_schema ~ics:rs_keys db in
  (* The Boolean variant is the trichotomy's coNP-hard strong 2-cycle
     (with x free the attack graph is acyclic and the Datalog tier
     takes it instead). *)
  let bhard =
    Cq.make ~name:"bhard" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let plan = Cqa.Engine.plan eng bhard in
  check Alcotest.string "route" "sat_compilation"
    (Cqa.Engine.route_label plan.Cqa.Engine.route);
  (* The auto dispatch must not touch the repair enumerator. *)
  let reg = Obs.Registry.current () in
  let before = Obs.Registry.counter_snapshot reg in
  let auto = Cqa.Engine.consistent_answers eng bhard in
  let delta = Obs.Registry.counter_delta ~since:before reg in
  let d name = Option.value ~default:0 (List.assoc_opt name delta) in
  check rows "auto answers (certainly true)" [ [] ] (strings_of auto);
  check Alcotest.int "zero repair enumerations" 0 (d "repairs.enumerations");
  check Alcotest.int "zero repair candidates" 0 (d "repairs.candidates");
  check Alcotest.int "zero hitting-set nodes" 0 (d "sat.hitting_set.nodes");
  check Alcotest.bool "sat calls happened" true (d "cavsat.sat_calls" > 0);
  (* Forced method=sat gives the same rows. *)
  check rows "method=sat agrees" (strings_of auto)
    (strings_of (Cqa.Engine.consistent_answers ~method_:`Sat eng bhard))

let test_engine_sat_on_rewritable_query () =
  (* method=sat is exact outside the hard tier too. *)
  let db =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.int 1; Value.int 10 ]; [ Value.int 1; Value.int 11 ] ]) ]
  in
  let proj = Cq.make ~name:"proj" [ x ] [ Atom.make "R" [ x; y ] ] in
  let eng = Cqa.Engine.create ~schema:rs_schema ~ics:rs_keys db in
  check rows "proj certain" [ [ "1" ] ]
    (strings_of (Cqa.Engine.consistent_answers ~method_:`Sat eng proj))

(* ---- qcheck equivalence (SAT ≡ enumeration) -------------------------- *)

let instance_of (rs, ss) =
  Instance.of_rows rs_schema
    [
      ("R", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) rs);
      ("S", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) ss);
    ]

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6) (pair (int_range 0 2) (int_range 0 3)))
        (list_size (int_range 0 6) (pair (int_range 0 2) (int_range 0 3))))
    ~print:(fun (rs, ss) ->
      let side l =
        String.concat ";"
          (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) l)
      in
      Printf.sprintf "R=%s S=%s" (side rs) (side ss))

(* Every query shape the property runs: a projection, the coNP-hard
   nonkey-nonkey join, its Boolean form, a full-tuple query, and a
   comparison query. *)
let shapes =
  [
    Cq.make ~name:"proj" [ x ] [ Atom.make "R" [ x; y ] ];
    hard;
    Cq.make ~name:"bool" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ];
    Cq.make ~name:"full" [ x; y ] [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"cmp" ~comps:[ Cmp.make Cmp.Lt x y ] [ x ]
      [ Atom.make "R" [ x; y ] ];
  ]

let equivalent ics db_spec =
  let db = instance_of db_spec in
  let schema = Instance.schema db in
  let eng = Cqa.Engine.create ~schema ~ics db in
  List.for_all
    (fun q ->
      Cavsat.Certain.consistent_answers db schema ics q
      = Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
    shapes

let prop_sat_equals_enum_keys =
  QCheck.Test.make ~count:150 ~name:"SAT ≡ enumeration under keys" arb_db
    (equivalent rs_keys)

let prop_sat_equals_enum_denial =
  (* A cross-relation denial on top of the keys: hyperedges that are not
     key groups, so maximality needs real aux reasoning. *)
  let deny =
    Ic.denial ~name:"no_rs_pair" [ Atom.make "R" [ x; y ]; Atom.make "S" [ x; y ] ]
  in
  QCheck.Test.make ~count:150 ~name:"SAT ≡ enumeration under keys + denial"
    arb_db
    (equivalent (deny :: rs_keys))

let suite =
  [
    Alcotest.test_case "incremental: grow and solve" `Quick test_incremental_basic;
    Alcotest.test_case "incremental: assumptions learn refutations" `Quick
      test_incremental_assumptions;
    Alcotest.test_case "incremental: empty clause" `Quick
      test_incremental_empty_clause;
    Alcotest.test_case "incremental: selector per probe" `Quick
      test_incremental_many_selectors;
    Alcotest.test_case "theory: key block encoding" `Quick test_theory_key_block;
    Alcotest.test_case "theory: cached per digest" `Quick test_theory_cache;
    Alcotest.test_case "certain: planted instance" `Quick test_certain_planted;
    Alcotest.test_case "certain: maximality clauses matter" `Quick
      test_certain_needs_maximality;
    Alcotest.test_case "certain: boolean query" `Quick test_certain_boolean;
    Alcotest.test_case "certain: INDs refused" `Quick test_certain_rejects_inds;
    Alcotest.test_case "engine: auto routes coNP tier to SAT" `Quick
      test_engine_auto_routes_to_sat;
    Alcotest.test_case "engine: method=sat on rewritable query" `Quick
      test_engine_sat_on_rewritable_query;
    QCheck_alcotest.to_alcotest prop_sat_equals_enum_keys;
    QCheck_alcotest.to_alcotest prop_sat_equals_enum_denial;
  ]
