module Value = Relational.Value
module Tvl = Relational.Tvl
module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Tid = Relational.Tid
module Ra = Relational.Ra

let check = Alcotest.check
let tvl = Alcotest.testable Tvl.pp Tvl.equal

let test_value_equality () =
  check Alcotest.bool "null structurally equal" true Value.(equal Null Null);
  check tvl "null sql-unknown" Tvl.Unknown Value.(sql_eq Null Null);
  check tvl "null vs int unknown" Tvl.Unknown Value.(sql_eq Null (int 1));
  check tvl "ints equal" Tvl.True Value.(sql_eq (int 3) (int 3));
  check tvl "strings differ" Tvl.False Value.(sql_eq (str "a") (str "b"));
  check tvl "cross-type compare unknown" Tvl.Unknown
    (Value.sql_cmp (fun c -> c < 0) (Value.int 1) (Value.str "a"))

let test_tvl_tables () =
  let open Tvl in
  check tvl "T and U" Unknown (True &&& Unknown);
  check tvl "F and U" False (False &&& Unknown);
  check tvl "T or U" True (True ||| Unknown);
  check tvl "F or U" Unknown (False ||| Unknown);
  check tvl "not U" Unknown (not_ Unknown);
  check Alcotest.bool "only true selects" false (to_bool Unknown)

let test_schema () =
  let s = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "x" ]) ] in
  check Alcotest.int "arity R" 2 (Schema.arity s "R");
  check Alcotest.int "attr index" 1 (Schema.attribute_index s ~rel:"R" ~attr:"b");
  check Alcotest.bool "mem" true (Schema.mem s "S");
  check Alcotest.bool "not mem" false (Schema.mem s "T");
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Schema.add_relation: duplicate relation R") (fun () ->
      ignore (Schema.add_relation s ~name:"R" ~attributes:[ "z" ]))

let schema = Schema.of_list [ ("R", [ "a"; "b" ]) ]

let test_instance_set_semantics () =
  let db = Instance.create schema in
  let db, t1 = Instance.insert_row db ~rel:"R" [ Value.int 1; Value.int 2 ] in
  let db, t2 = Instance.insert_row db ~rel:"R" [ Value.int 1; Value.int 2 ] in
  check Alcotest.bool "same tid on duplicate insert" true (Tid.equal t1 t2);
  check Alcotest.int "size 1" 1 (Instance.size db);
  let db, t3 = Instance.insert_row db ~rel:"R" [ Value.int 3; Value.int 4 ] in
  check Alcotest.int "size 2" 2 (Instance.size db);
  let db = Instance.delete db t3 in
  check Alcotest.int "size back to 1" 1 (Instance.size db);
  check Alcotest.bool "tid gone" false (Instance.mem_tid db t3)

let test_instance_arity_check () =
  let db = Instance.create schema in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Instance: R expects arity 2, got 1") (fun () ->
      ignore (Instance.insert_row db ~rel:"R" [ Value.int 1 ]))

let test_update_cell () =
  let db = Instance.create schema in
  let db, t1 = Instance.insert_row db ~rel:"R" [ Value.int 1; Value.int 2 ] in
  let db = Instance.update_cell db (Tid.Cell.make t1 2) Value.Null in
  check Alcotest.bool "updated fact present" true
    (Instance.mem_fact db (Fact.make "R" [ Value.int 1; Value.Null ]));
  check Alcotest.bool "tid preserved" true (Instance.mem_tid db t1);
  (* Updating into an existing fact merges (set semantics). *)
  let db, _ = Instance.insert_row db ~rel:"R" [ Value.int 1; Value.int 9 ] in
  let db = Instance.update_cell db (Tid.Cell.make t1 2) (Value.int 9) in
  check Alcotest.int "merged" 1 (Instance.size db)

let test_symmetric_difference () =
  let mk rows = Instance.of_rows schema [ ("R", rows) ] in
  let a = mk [ [ Value.int 1; Value.int 1 ]; [ Value.int 2; Value.int 2 ] ] in
  let b = mk [ [ Value.int 2; Value.int 2 ]; [ Value.int 3; Value.int 3 ] ] in
  let d = Instance.symmetric_difference a b in
  check Alcotest.int "two facts differ" 2 (Fact.Set.cardinal d)

let test_active_domain () =
  let db =
    Instance.of_rows schema
      [ ("R", [ [ Value.int 1; Value.Null ]; [ Value.int 2; Value.str "x" ] ]) ]
  in
  check Alcotest.int "nulls excluded" 3 (List.length (Instance.active_domain db))

let test_restrict () =
  let db = Instance.create schema in
  let db, t1 = Instance.insert_row db ~rel:"R" [ Value.int 1; Value.int 1 ] in
  let db, _t2 = Instance.insert_row db ~rel:"R" [ Value.int 2; Value.int 2 ] in
  let sub = Instance.restrict db (Tid.Set.singleton t1) in
  check Alcotest.int "restricted to one" 1 (Instance.size sub);
  check Alcotest.bool "subset" true (Instance.subset sub db)

let test_ra_basics () =
  let db =
    Instance.of_rows schema
      [ ("R", [ [ Value.int 1; Value.int 2 ]; [ Value.int 3; Value.int 4 ] ]) ]
  in
  let r = Ra.of_instance db "R" in
  check Alcotest.int "cardinality" 2 (Ra.cardinality r);
  let sel = Ra.select_eq "a" (Value.int 1) r in
  check Alcotest.int "selection" 1 (Ra.cardinality sel);
  let proj = Ra.project [ "b" ] r in
  check Alcotest.int "projection arity" 1 (Array.length proj.Ra.cols);
  let renamed = Ra.rename [ ("a", "c") ] r in
  check Alcotest.int "renamed col" 0 (Ra.col renamed "c")

let test_ra_null_join () =
  let s2 = Schema.of_list [ ("P", [ "k"; "v" ]); ("Q", [ "k"; "w" ]) ] in
  let db =
    Instance.of_rows s2
      [
        ("P", [ [ Value.int 1; Value.str "a" ]; [ Value.Null; Value.str "b" ] ]);
        ("Q", [ [ Value.int 1; Value.str "c" ]; [ Value.Null; Value.str "d" ] ]);
      ]
  in
  let j = Ra.natural_join (Ra.of_instance db "P") (Ra.of_instance db "Q") in
  (* NULL keys never join: only the key-1 pair matches. *)
  check Alcotest.int "null never joins" 1 (Ra.cardinality j)

let test_ra_set_ops () =
  let db =
    Instance.of_rows schema
      [ ("R", [ [ Value.int 1; Value.int 2 ]; [ Value.int 3; Value.int 4 ] ]) ]
  in
  let r = Ra.of_instance db "R" in
  check Alcotest.int "union idempotent" 2 (Ra.cardinality (Ra.union r r));
  check Alcotest.int "difference empty" 0 (Ra.cardinality (Ra.difference r r))

(* Kleene-algebra laws for the three-valued logic. *)
let arb_tvl =
  QCheck.make
    (QCheck.Gen.oneofl [ Tvl.True; Tvl.False; Tvl.Unknown ])
    ~print:(fun t -> Format.asprintf "%a" Tvl.pp t)

let prop_tvl_de_morgan =
  QCheck.Test.make ~count:100 ~name:"Tvl: De Morgan"
    QCheck.(pair arb_tvl arb_tvl)
    (fun (a, b) ->
      let open Tvl in
      equal (not_ (a &&& b)) (not_ a ||| not_ b)
      && equal (not_ (a ||| b)) (not_ a &&& not_ b))

let prop_tvl_lattice =
  QCheck.Test.make ~count:100 ~name:"Tvl: commutative, associative, involutive"
    QCheck.(triple arb_tvl arb_tvl arb_tvl)
    (fun (a, b, c) ->
      let open Tvl in
      equal (a &&& b) (b &&& a)
      && equal (a ||| b) (b ||| a)
      && equal ((a &&& b) &&& c) (a &&& (b &&& c))
      && equal ((a ||| b) ||| c) (a ||| (b ||| c))
      && equal (not_ (not_ a)) a)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tvl_de_morgan;
    QCheck_alcotest.to_alcotest prop_tvl_lattice;
    Alcotest.test_case "value equality and sql_eq" `Quick test_value_equality;
    Alcotest.test_case "three-valued truth tables" `Quick test_tvl_tables;
    Alcotest.test_case "schema declarations" `Quick test_schema;
    Alcotest.test_case "instance set semantics" `Quick test_instance_set_semantics;
    Alcotest.test_case "instance arity check" `Quick test_instance_arity_check;
    Alcotest.test_case "update_cell" `Quick test_update_cell;
    Alcotest.test_case "symmetric difference" `Quick test_symmetric_difference;
    Alcotest.test_case "active domain excludes NULL" `Quick test_active_domain;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "relational algebra basics" `Quick test_ra_basics;
    Alcotest.test_case "NULL never joins (RA)" `Quick test_ra_null_join;
    Alcotest.test_case "RA set operations" `Quick test_ra_set_ops;
  ]
