(* cqa-scope: query fingerprints, the workload statements store, the
   tail sampler, line-aware clamping, and the WORKLOAD surface.

   The fingerprint properties pin the identity down: invariant under
   variable renaming and constant substitution, but distinct for
   distinct query shapes.  The sampler tests drive it with stubbed
   wall times — it never reads a clock — and check that exactly the
   over-threshold and error traces are retained within the ring
   bound. *)

module P = Server.Protocol
module T = Logic.Term
module A = Logic.Atom
module C = Logic.Cmp
module Cq = Logic.Cq
module Ucq = Logic.Ucq
module Fp = Cqa.Fingerprint

(* ---- fingerprint generators ------------------------------------------ *)

let rels = [| ("R", 1); ("S", 2); ("T", 3) |]
let var_pool = [| "X"; "Y"; "Z"; "W" |]

let gen_term =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> T.var var_pool.(i)) (int_range 0 3));
        (1, map T.int (int_range 0 9));
        (1, map T.str (oneofl [ "a"; "b"; "smith" ]));
      ])

let gen_atom =
  QCheck2.Gen.(
    int_range 0 2 >>= fun r ->
    let rel, ar = rels.(r) in
    map (A.make rel) (list_repeat ar gen_term))

let gen_cq =
  QCheck2.Gen.(
    list_size (int_range 1 3) gen_atom >>= fun body ->
    let bvars =
      match List.concat_map A.vars body with [] -> [ "X" ] | vs -> vs
    in
    list_size (int_range 0 2) (oneofl bvars) >>= fun head ->
    let gen_comp =
      oneofl bvars >>= fun v ->
      map2
        (fun op c -> C.make op (T.var v) (T.int c))
        (oneofl [ C.Eq; C.Neq; C.Lt; C.Le; C.Gt; C.Ge ])
        (int_range 0 9)
    in
    list_size (int_range 0 2) gen_comp >>= fun comps ->
    return (Cq.make ~name:"q" ~comps (List.map T.var head) body))

(* Rewrite every term of a query — heads, atom arguments, comparison
   sides — with one function. *)
let map_terms f (q : Cq.t) =
  {
    q with
    Cq.head = List.map f q.Cq.head;
    body = List.map (fun (a : A.t) -> { a with A.args = List.map f a.args }) q.Cq.body;
    comps =
      List.map
        (fun (c : C.t) -> { c with C.left = f c.left; right = f c.right })
        q.Cq.comps;
  }

let prop_rename_invariant =
  QCheck2.Test.make ~count:300
    ~name:"fingerprint invariant under variable renaming" gen_cq (fun q ->
      let renamed =
        map_terms (function T.Var v -> T.Var ("zz" ^ v) | t -> t) q
      in
      Fp.cq q = Fp.cq renamed)

let prop_const_invariant =
  QCheck2.Test.make ~count:300
    ~name:"fingerprint invariant under constant substitution" gen_cq (fun q ->
      let subst = map_terms (function T.Const _ -> T.int 99 | t -> t) q in
      let subst' = map_terms (function T.Const _ -> T.str "other" | t -> t) q in
      Fp.cq q = Fp.cq subst && Fp.cq q = Fp.cq subst')

let prop_shape_distinguished =
  QCheck2.Test.make ~count:300
    ~name:"fingerprint distinguishes distinct shapes" gen_cq (fun q ->
      let extra_atom =
        { q with Cq.body = q.Cq.body @ [ A.make "R" [ T.var "X" ] ] }
      in
      let renamed_rel =
        match q.Cq.body with
        | a :: rest -> { q with Cq.body = { a with A.rel = a.A.rel ^ "x" } :: rest }
        | [] -> assert false
      in
      Fp.cq q <> Fp.cq extra_atom && Fp.cq q <> Fp.cq renamed_rel)

let test_fingerprint_examples () =
  let q =
    Cq.make ~name:"q"
      ~comps:[ C.neq (T.var "X") (T.str "smith") ]
      [ T.var "X" ]
      [ A.make "Emp" [ T.var "X"; T.int 5000 ] ]
  in
  Alcotest.(check string)
    "docstring example" "(v0):-Emp(v0,?),v0!=?" (Fp.cq q);
  (* the query's own name is not part of the shape *)
  Alcotest.(check string)
    "name dropped"
    (Fp.cq q)
    (Fp.cq { q with Cq.name = "renamed" });
  (* union fingerprints are disjunct-order independent *)
  let a = Cq.make [ T.var "X" ] [ A.make "R" [ T.var "X" ] ] in
  let b = Cq.make [ T.var "X" ] [ A.make "S" [ T.var "X"; T.var "Y" ] ] in
  Alcotest.(check string)
    "union disjunct order"
    (Fp.ucq (Ucq.make [ a; b ]))
    (Fp.ucq (Ucq.make [ b; a ]));
  Alcotest.(check string)
    "singleton union = cq" (Fp.cq a)
    (Fp.ucq (Ucq.of_cq a))

(* ---- the tail sampler ------------------------------------------------ *)

let offer_seq t reqs =
  List.map
    (fun (rid, wall_s, ok) ->
      Obs.Sampler.offer t ~rid ~command:"QUERY" ~wall_s ~ok [])
    reqs

let retained_rids t =
  List.map (fun (r : Obs.Sampler.record) -> r.rid) (Obs.Sampler.retained t)

let test_sampler_retains_exactly_slow_and_errors () =
  let t = Obs.Sampler.create ~capacity:8 ~threshold_s:0.100 () in
  ignore
    (offer_seq t
       [
         (1, 0.010, true) (* fast, ok: dropped *);
         (2, 0.250, true) (* over threshold: Slow *);
         (3, 0.005, false) (* failed: Error *);
         (4, 0.100, true) (* exactly at threshold: Slow *);
         (5, 0.099, true) (* just under: dropped *);
       ]);
  Alcotest.(check (list int)) "exactly the slow/error requests" [ 2; 3; 4 ]
    (retained_rids t);
  let reasons =
    List.map
      (fun (r : Obs.Sampler.record) -> Obs.Sampler.reason_label r.reason)
      (Obs.Sampler.retained t)
  in
  Alcotest.(check (list string)) "reasons" [ "slow"; "error"; "slow" ] reasons;
  Alcotest.(check int) "seen" 5 (Obs.Sampler.seen t);
  Alcotest.(check int) "kept" 3 (Obs.Sampler.kept t)

let test_sampler_error_beats_slow () =
  let t = Obs.Sampler.create ~threshold_s:0.1 ~sample_every:1 () in
  (match Obs.Sampler.offer t ~rid:1 ~command:"Q" ~wall_s:9.9 ~ok:false [] with
  | Some Obs.Sampler.Error -> ()
  | _ -> Alcotest.fail "over-threshold failure must retain as Error");
  match Obs.Sampler.offer t ~rid:2 ~command:"Q" ~wall_s:0.001 ~ok:true [] with
  | Some Obs.Sampler.Sampled -> ()
  | _ -> Alcotest.fail "1-in-1 sampling must retain fast requests"

let test_sampler_reservoir_grid () =
  let t = Obs.Sampler.create ~capacity:8 ~sample_every:3 () in
  ignore
    (offer_seq t
       (List.init 9 (fun i -> (i + 1, 0.001, true))));
  (* deterministic 1-in-3: every third offer is retained *)
  Alcotest.(check (list int)) "the 1-in-3 grid" [ 3; 6; 9 ] (retained_rids t)

let test_sampler_ring_bound () =
  let t = Obs.Sampler.create ~capacity:2 ~threshold_s:0.0 () in
  ignore (offer_seq t (List.init 5 (fun i -> (i + 1, 1.0, true))));
  Alcotest.(check (list int)) "oldest overwritten, oldest-first order" [ 4; 5 ]
    (retained_rids t);
  Alcotest.(check int) "kept counts every retention" 5 (Obs.Sampler.kept t);
  Alcotest.(check int) "overwritten" 3 (Obs.Sampler.overwritten t);
  Obs.Sampler.clear t;
  Alcotest.(check (list int)) "clear empties the ring" [] (retained_rids t);
  Alcotest.(check int) "clear restarts seen" 0 (Obs.Sampler.seen t)

(* ---- line-aware clamping --------------------------------------------- *)

let test_clamp_splits_embedded_newlines () =
  (* One body element carrying three physical lines: the clamp counts
     and truncates physical lines, never mid-element, so a machine
     consumer reading the wire sees no torn line. *)
  let r = P.ok ~body:[ "a\nb\nc"; "d" ] "h" in
  let clamped = P.clamp ~max_lines:10 r in
  Alcotest.(check (list string))
    "embedded newlines split" [ "a"; "b"; "c"; "d" ] clamped.P.body;
  let truncated = P.clamp ~max_lines:2 r in
  Alcotest.(check (list string))
    "truncation on a line boundary"
    [ "a"; "b"; "...truncated (2 of 4 lines)" ]
    truncated.P.body;
  (* a terminator smuggled inside a multi-line element is still escaped *)
  let dotted = P.clamp (P.ok ~body:[ "x\n.\ny" ] "h") in
  Alcotest.(check (list string)) "embedded terminator indented"
    [ "x"; " ."; "y" ] dotted.P.body;
  (* rendered wire text ends exactly one response *)
  let wire = P.render dotted in
  let dots =
    String.split_on_char '\n' wire |> List.filter (fun l -> l = ".")
  in
  Alcotest.(check int) "exactly one terminator on the wire" 1 (List.length dots)

(* ---- the statements store -------------------------------------------- *)

let record ?(branch = "direct") ?(wall_s = 0.01) t fp =
  Obs.Stats.record t ~fingerprint:fp ~branch ~wall_s ()

let test_stats_deterministic_eviction () =
  let t = Obs.Stats.create ~capacity:2 () in
  record t ~wall_s:0.30 "q1";
  record t ~wall_s:0.10 "q2";
  record t ~wall_s:0.05 "q3" (* at capacity: q2 (least wall) evicts *);
  let fps =
    List.map (fun (e : Obs.Stats.entry) -> e.fingerprint) (Obs.Stats.entries t)
  in
  Alcotest.(check (list string)) "least-wall entry evicted" [ "q1"; "q3" ] fps;
  Alcotest.(check int) "evicted" 1 (Obs.Stats.evicted t);
  Alcotest.(check int) "recorded counts evictions" 3 (Obs.Stats.recorded t);
  (* totals stay honest: attributed excludes the evicted wall *)
  Alcotest.(check (float 1e-9)) "total keeps evicted time" 0.45
    (Obs.Stats.total_wall_s t);
  Alcotest.(check (float 1e-9)) "attributed excludes evicted time" 0.35
    (Obs.Stats.attributed_s t);
  (* ties break lexicographically: with q1=q3 on wall, a new entry
     evicts q1 (smaller fingerprint) — deterministic across replays *)
  let t2 = Obs.Stats.create ~capacity:2 () in
  record t2 ~wall_s:0.10 "b";
  record t2 ~wall_s:0.10 "a";
  record t2 ~wall_s:0.01 "c";
  let fps2 =
    List.map (fun (e : Obs.Stats.entry) -> e.fingerprint) (Obs.Stats.entries t2)
  in
  Alcotest.(check (list string)) "ties evict lexicographically-first" [ "b"; "c" ]
    fps2

let test_stats_aggregation_and_reset () =
  let t = Obs.Stats.create () in
  Obs.Stats.record t ~fingerprint:"q" ~branch:"sat_compilation" ~wall_s:0.2
    ~rows:3 ~cache:Obs.Stats.Miss
    ~counters:[ ("sat.decisions", 10) ]
    ();
  Obs.Stats.record t ~fingerprint:"q" ~branch:"sat_compilation" ~wall_s:0.1
    ~rows:3 ~cache:Obs.Stats.Hit ~error:true
    ~counters:[ ("sat.decisions", 5); ("join.hash", 2) ]
    ();
  (match Obs.Stats.entries t with
  | [ e ] ->
      Alcotest.(check int) "calls" 2 e.calls;
      Alcotest.(check int) "errors" 1 e.errors;
      Alcotest.(check int) "rows" 6 e.rows;
      Alcotest.(check int) "hits" 1 e.cache_hits;
      Alcotest.(check int) "misses" 1 e.cache_misses;
      Alcotest.(check (float 1e-9)) "wall" 0.3 e.wall_s;
      Alcotest.(check (float 1e-9)) "max" 0.2 e.max_s;
      Alcotest.(check bool) "counters merged" true
        (e.counters = [ ("join.hash", 2); ("sat.decisions", 15) ])
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es));
  Alcotest.(check bool) "exposition lines parse" true
    (List.for_all
       (fun l -> String.length l > 0)
       (Obs.Stats.prometheus_lines t));
  Obs.Stats.reset t;
  Alcotest.(check int) "reset empties" 0 (Obs.Stats.length t);
  Alcotest.(check (float 0.0)) "reset restarts totals" 0.0
    (Obs.Stats.total_wall_s t)

let span ~id ~parent ~name ~t0 ~t1 =
  { Obs.Trace.id; parent; name; attrs = []; t0; t1 }

let test_phase_attribution_partitions () =
  (* request(1.0s) > rewrite.key(0.4) > sat.dpll(0.1); the partition:
     other = 1.0-0.4 = 0.6, rewrite = 0.4-0.1 = 0.3, sat = 0.1.
     An unclassified child inherits its ancestor's phase. *)
  let spans =
    [
      span ~id:1 ~parent:0 ~name:"request" ~t0:0.0 ~t1:1.0;
      span ~id:2 ~parent:1 ~name:"rewrite.key" ~t0:0.1 ~t1:0.5;
      span ~id:3 ~parent:2 ~name:"sat.dpll" ~t0:0.2 ~t1:0.3;
    ]
  in
  let phases = Obs.Stats.phases_of_spans spans in
  let get p = List.assoc_opt p phases in
  Alcotest.(check (option (float 1e-9))) "other" (Some 0.6) (get "other");
  Alcotest.(check (option (float 1e-9))) "rewrite" (Some 0.3) (get "rewrite");
  Alcotest.(check (option (float 1e-9))) "sat" (Some 0.1) (get "sat");
  let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 phases in
  Alcotest.(check (float 1e-9)) "exact partition of the root" 1.0 total;
  (* nested unclassified span: all self time flows to the ancestor *)
  let nested =
    [
      span ~id:1 ~parent:0 ~name:"cavsat.compile" ~t0:0.0 ~t1:0.8;
      span ~id:2 ~parent:1 ~name:"helper.step" ~t0:0.0 ~t1:0.5;
    ]
  in
  Alcotest.(check (option (float 1e-9)))
    "unclassified child inherits sat" (Some 0.8)
    (List.assoc_opt "sat" (Obs.Stats.phases_of_spans nested));
  Alcotest.(check (list (pair string (float 0.0)))) "empty tree" []
    (Obs.Stats.phases_of_spans [])

let test_phase_of_span_names () =
  let check name expect =
    Alcotest.(check (option string)) name expect (Obs.Stats.phase_of_span name)
  in
  check "engine.classify" (Some "classify");
  check "rewrite.residue" (Some "rewrite");
  check "conflict_graph.build" (Some "conflict_graph");
  check "sat.dpll" (Some "sat");
  check "cavsat.compile" (Some "sat");
  check "repairs.enumerate" (Some "enumeration");
  check "asp.ground" (Some "asp");
  Alcotest.(check (option string)) "request is unclassified" None
    (Obs.Stats.phase_of_span "request")

(* ---- WORKLOAD protocol ----------------------------------------------- *)

let test_workload_parse () =
  let ok line expect =
    match P.parse line with
    | Ok (P.Workload got) ->
        Alcotest.(check bool) line true (got = expect)
    | Ok _ -> Alcotest.failf "%s parsed as another command" line
    | Error e -> Alcotest.failf "%s rejected: %s" line e
  in
  ok "WORKLOAD" `Summary;
  ok "workload top" (`Top 10);
  ok "WORKLOAD TOP 3" (`Top 3);
  ok "WORKLOAD BY branch" `By_branch;
  ok "WORKLOAD RESET" `Reset;
  let bad line =
    match P.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should not parse" line
  in
  bad "WORKLOAD TOP 0";
  bad "WORKLOAD TOP many";
  bad "WORKLOAD BY phase";
  bad "WORKLOAD nonsense"

(* ---- the serving surface --------------------------------------------- *)

let doc_lines =
  [
    "relation T(k, v)";
    "row T(1, 1)";
    "row T(1, 2)";
    "row T(2, 5)";
    "key T(k)";
    "query q(X) :- T(X, Y)";
  ]

(* A handler whose latency clock is a script: each dispatch pops two
   values (start, end).  Creation does not consume the script — uptime
   is measured on the real clock. *)
let scripted ~script ?stats ?sampler () =
  let q = ref script in
  let clock () =
    match !q with
    | v :: rest ->
        q := rest;
        v
    | [] -> 0.0
  in
  Server.Handler.create ?stats ?sampler ~clock ()

let load t =
  match Server.Handler.dispatch t ~payload:doc_lines (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head)

let query t =
  Server.Handler.dispatch t
    (P.Query { sid = "s1"; name = "q"; method_ = P.Auto; semantics = P.S;
               timeout_ms = None })

let test_workload_disabled_is_err () =
  let t = Server.Handler.create () in
  match Server.Handler.dispatch t (P.Workload `Summary) with
  | { P.status = `Err; head; _ } ->
      Alcotest.(check bool) "message names the flag" true
        (let re = Str.regexp_string "--workload" in
         try
           ignore (Str.search_forward re head 0);
           true
         with Not_found -> false)
  | _ -> Alcotest.fail "WORKLOAD without a store must ERR"

let test_workload_attribution_and_commands () =
  let stats = Obs.Stats.create ~capacity:64 () in
  let sampler = Obs.Sampler.create ~capacity:8 ~threshold_s:0.150 () in
  (* LOAD 0.2s, QUERY 0.05s, QUERY 0.01s, CHECK 0.001s *)
  let t =
    scripted
      ~script:[ 0.0; 0.2; 1.0; 1.05; 2.0; 2.01; 3.0; 3.001 ]
      ~stats ~sampler ()
  in
  load t;
  ignore (query t);
  ignore (query t);
  ignore (Server.Handler.dispatch t (P.Check "s1"));
  let expected = 0.2 +. 0.05 +. 0.01 +. 0.001 in
  Alcotest.(check int) "every request recorded" 4 (Obs.Stats.recorded stats);
  Alcotest.(check (float 1e-9)) "wall fully accounted" expected
    (Obs.Stats.total_wall_s stats);
  (* the acceptance bar: >= 95% of request wall time attributed *)
  Alcotest.(check bool) "at least 95% attributed" true
    (Obs.Stats.attributed_s stats >= 0.95 *. Obs.Stats.total_wall_s stats);
  (* both QUERYs fold into one fingerprint entry off the service branch *)
  (match
     List.find_opt
       (fun (e : Obs.Stats.entry) -> e.branch <> "service")
       (Obs.Stats.entries stats)
   with
  | Some e ->
      Alcotest.(check int) "query shape seen twice" 2 e.calls;
      Alcotest.(check bool) "semantics-qualified fingerprint" true
        (String.length e.fingerprint > 2 && String.sub e.fingerprint 0 2 = "s:")
  | None -> Alcotest.fail "expected a non-service entry for the query");
  (* only the 0.2s LOAD crossed the 150ms tail threshold *)
  Alcotest.(check (list string)) "tail keeps exactly the slow request"
    [ "LOAD" ]
    (List.map
       (fun (r : Obs.Sampler.record) -> r.command)
       (Obs.Sampler.retained sampler));
  (* WORKLOAD summary / top / by-branch read the same store *)
  (match Server.Handler.dispatch t (P.Workload `Summary) with
  | { P.status = `Ok; body; _ } ->
      Alcotest.(check bool) "summary reports recorded=4" true
        (List.mem "workload.recorded 4" body);
      Alcotest.(check bool) "summary reports the tail ring" true
        (List.exists
           (fun l -> l = "workload.tail_kept 1")
           body)
  | { P.head; _ } -> Alcotest.fail ("WORKLOAD failed: " ^ head));
  (match Server.Handler.dispatch t (P.Workload (`Top 3)) with
  | { P.status = `Ok; body; _ } ->
      Alcotest.(check bool) "top names the query shape" true
        (List.exists
           (fun l ->
             let re = Str.regexp_string "T(v0,v1)" in
             try
               ignore (Str.search_forward re l 0);
               true
             with Not_found -> false)
           body)
  | _ -> Alcotest.fail "WORKLOAD TOP failed");
  (match Server.Handler.dispatch t (P.Workload `By_branch) with
  | { P.status = `Ok; body; _ } ->
      Alcotest.(check bool) "a service cost center exists" true
        (List.exists
           (fun l ->
             let re = Str.regexp_string "branch service" in
             try
               ignore (Str.search_forward re l 0);
               true
             with Not_found -> false)
           body)
  | _ -> Alcotest.fail "WORKLOAD BY branch failed");
  (* STATS carries the -- workload section *)
  (match Server.Handler.dispatch t P.Stats with
  | { P.status = `Ok; body; _ } ->
      Alcotest.(check bool) "STATS has the workload section" true
        (List.mem "-- workload" body)
  | _ -> Alcotest.fail "STATS failed");
  (* RESET clears the store and the tail ring *)
  (match Server.Handler.dispatch t (P.Workload `Reset) with
  | { P.status = `Ok; _ } -> ()
  | _ -> Alcotest.fail "WORKLOAD RESET failed");
  (* the RESET request is itself offered post-reset; nothing retained
     survives and the counters restarted *)
  Alcotest.(check int) "reset clears the tail ring" 0 (Obs.Sampler.kept sampler);
  Alcotest.(check bool) "reset restarts the seen counter" true
    (Obs.Sampler.seen sampler <= 1);
  (* the store restarts; requests after the reset are recorded anew *)
  Alcotest.(check bool) "store restarted" true (Obs.Stats.recorded stats <= 1)

(* ---- wall-clock anchors ---------------------------------------------- *)

let json_field line key =
  let re = Str.regexp (Printf.sprintf {|"%s":\([^,}]*\)|} key) in
  try
    ignore (Str.search_forward re line 0);
    Some (Str.matched_group 1 line)
  with Not_found -> None

let test_anchor_carries_wall_ms () =
  let lines = ref [] in
  let mono = ref [ 0.0; 0.001 ] in
  let clock () =
    match !mono with
    | v :: rest ->
        mono := rest;
        v
    | [] -> 1.0
  in
  let wall () = 1754400000.123 in
  let sink = Obs.Events.make ~clock ~wall (fun l -> lines := l :: !lines) in
  Obs.Events.anchor ~label:"startup" sink;
  match !lines with
  | [ line ] ->
      Alcotest.(check (option string)) "ev" (Some "\"anchor\"")
        (json_field line "ev");
      Alcotest.(check (option string)) "label" (Some "\"startup\"")
        (json_field line "label");
      Alcotest.(check (option string)) "wall_ms is integer epoch ms"
        (Some "1754400000123") (json_field line "wall_ms")
  | _ -> Alcotest.fail "anchor must emit exactly one event"

(* ---- build info and uptime ------------------------------------------- *)

let test_metrics_build_info_and_uptime () =
  let t = Server.Handler.create ~version:"9.9.9" () in
  match Server.Handler.dispatch t P.Metrics with
  | { P.status = `Ok; body; _ } ->
      let has needle =
        List.exists
          (fun l ->
            let re = Str.regexp_string needle in
            try
              ignore (Str.search_forward re l 0);
              true
            with Not_found -> false)
          body
      in
      Alcotest.(check bool) "build info carries the version" true
        (has {|cqa_build_info{version="9.9.9",ocaml_version="|});
      Alcotest.(check bool) "build info is a gauge" true
        (has "# TYPE cqa_build_info gauge");
      Alcotest.(check bool) "uptime gauge present" true
        (has "cqa_server_uptime_seconds")
  | { P.head; _ } -> Alcotest.fail ("METRICS failed: " ^ head)

let test_metrics_workload_families () =
  let stats = Obs.Stats.create () in
  let t = scripted ~script:[ 0.0; 0.01 ] ~stats () in
  load t;
  match Server.Handler.dispatch t P.Metrics with
  | { P.status = `Ok; body; _ } ->
      Alcotest.(check bool) "labeled branch family present" true
        (List.exists
           (fun l ->
             let re = Str.regexp_string {|cqa_workload_branch_seconds_bucket{branch="service"|} in
             try
               ignore (Str.search_forward re l 0);
               true
             with Not_found -> false)
           body)
  | _ -> Alcotest.fail "METRICS failed"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rename_invariant;
    QCheck_alcotest.to_alcotest prop_const_invariant;
    QCheck_alcotest.to_alcotest prop_shape_distinguished;
    Alcotest.test_case "fingerprint examples and union order" `Quick
      test_fingerprint_examples;
    Alcotest.test_case "sampler retains exactly slow and error traces"
      `Quick test_sampler_retains_exactly_slow_and_errors;
    Alcotest.test_case "sampler: error beats slow; 1-in-1 samples" `Quick
      test_sampler_error_beats_slow;
    Alcotest.test_case "sampler: deterministic 1-in-N grid" `Quick
      test_sampler_reservoir_grid;
    Alcotest.test_case "sampler: ring bound and clear" `Quick
      test_sampler_ring_bound;
    Alcotest.test_case "clamp is line-aware" `Quick
      test_clamp_splits_embedded_newlines;
    Alcotest.test_case "stats: deterministic eviction" `Quick
      test_stats_deterministic_eviction;
    Alcotest.test_case "stats: aggregation, exposition, reset" `Quick
      test_stats_aggregation_and_reset;
    Alcotest.test_case "phases partition the span tree exactly" `Quick
      test_phase_attribution_partitions;
    Alcotest.test_case "phase_of_span name mapping" `Quick
      test_phase_of_span_names;
    Alcotest.test_case "WORKLOAD parses and rejects" `Quick test_workload_parse;
    Alcotest.test_case "WORKLOAD without a store is ERR" `Quick
      test_workload_disabled_is_err;
    Alcotest.test_case "workload attribution, commands, reset" `Quick
      test_workload_attribution_and_commands;
    Alcotest.test_case "event anchors carry epoch wall_ms" `Quick
      test_anchor_carries_wall_ms;
    Alcotest.test_case "METRICS exposes build info and uptime" `Quick
      test_metrics_build_info_and_uptime;
    Alcotest.test_case "METRICS exposes workload families" `Quick
      test_metrics_workload_families;
  ]
