(* cqa-columnar equivalence suites: every compiled columnar kernel must be
   observationally identical to the row evaluator it replaces.
   [Columnar.set_enabled false] routes Cq/Formula/Violation through the
   row interpreters, so the same workload evaluated under both settings
   compares the two engines — including NULL/3VL edges, which the
   generators force on every path. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Tid = Relational.Tid
module Columnar = Relational.Columnar
module Plan = Relational.Plan
module Dict = Relational.Dict
module Ra = Relational.Ra
open Logic

let check = Alcotest.check

let with_columnar on f =
  let prev = Columnar.enabled () in
  Columnar.set_enabled on;
  Fun.protect ~finally:(fun () -> Columnar.set_enabled prev) f

(* Values in 0..3 force join collisions; 4 encodes NULL so three-valued
   semantics get exercised on every kernel. *)
let value_of n = if n >= 4 then Value.Null else Value.int n

let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]) ]

let instance_of (rs, ss) =
  Instance.of_rows schema
    [
      ("R", List.map (fun (a, b) -> [ value_of a; value_of b ]) rs);
      ("S", List.map (fun (b, c) -> [ value_of b; value_of c ]) ss);
    ]

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 8) (pair (int_range 0 4) (int_range 0 4)))
        (list_size (int_range 0 8) (pair (int_range 0 4) (int_range 0 4))))
    ~print:(fun (rs, ss) ->
      let row (a, b) = Printf.sprintf "%d,%d" a b in
      Printf.sprintf "R=%s S=%s"
        (String.concat ";" (List.map row rs))
        (String.concat ";" (List.map row ss)))

(* --- Plan kernels = Ra operators ------------------------------------ *)

let ra_rel cols rows =
  {
    Ra.cols = Array.of_list cols;
    rows = List.map (fun (a, b) -> [| value_of a; value_of b |]) rows;
  }

let same_rel r1 r2 = r1.Ra.cols = r2.Ra.cols && r1.Ra.rows = r2.Ra.rows

let prop_plan_ops_eq =
  QCheck.Test.make ~count:300 ~name:"Plan kernels = Ra operators" arb_db
    (fun (rs, ss) ->
      let inst = Instance.create schema in
      let a = ra_rel [ "a"; "b" ] rs
      and b = ra_rel [ "b"; "c" ] ss
      and a2 = ra_rel [ "a"; "b" ] ss in
      let ta = Plan.Table (Ra.to_columnar a)
      and tb = Plan.Table (Ra.to_columnar b)
      and ta2 = Plan.Table (Ra.to_columnar a2) in
      let run p = Ra.of_columnar (Plan.run inst p) in
      let eq1 = { Plan.op = Plan.Eq; left = Col "a"; right = Const (Value.int 1) } in
      let lt = { Plan.op = Plan.Lt; left = Col "a"; right = Col "b" } in
      let anti_expect =
        let joined = Ra.semijoin a b in
        { a with Ra.rows = List.filter (fun r -> not (List.mem r joined.Ra.rows)) a.Ra.rows }
      in
      same_rel (run (Plan.Filter (All [ eq1 ], ta))) (Ra.select_eq "a" (Value.int 1) a)
      && same_rel
           (run (Plan.Filter (All [ lt ], ta)))
           (Ra.select (fun _ row -> Plan.eval_op Plan.Lt row.(0) row.(1)) a)
      && same_rel (run (Plan.Join (ta, tb))) (Ra.natural_join a b)
      && same_rel (run (Plan.Semijoin (ta, tb))) (Ra.semijoin a b)
      && same_rel (run (Plan.Antijoin (ta, tb))) anti_expect
      && same_rel (run (Plan.Union (ta, ta2))) (Ra.union a a2)
      && same_rel (run (Plan.Diff (ta, ta2))) (Ra.difference a a2)
      && same_rel (run (Plan.Distinct ta)) (Ra.distinct a)
      && same_rel (run (Plan.Project ([ "b" ], ta))) (Ra.project [ "b" ] a))

(* --- Cq.answers: compiled = interpreted ------------------------------ *)

let queries =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  [
    Cq.make ~name:"join" [ x; z ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ];
    Cq.make ~name:"const" [ y ] [ Atom.make "R" [ Term.const (Value.int 1); y ] ];
    Cq.make ~name:"selfjoin" [ x ] [ Atom.make "R" [ x; x ] ];
    Cq.make ~name:"triangle" [ x ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ]; Atom.make "R" [ z; x ] ];
    Cq.make ~name:"lt" ~comps:[ Cmp.make Cmp.Lt x y ] [ x; y ]
      [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"vareq" ~comps:[ Cmp.eq y z ] [ x; z ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; Term.var "w" ] ];
    Cq.make ~name:"selfeq" ~comps:[ Cmp.eq x x ] [ x ] [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"neq" ~comps:[ Cmp.neq x (Term.const (Value.int 2)) ] [ x ]
      [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"bool" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ];
    Cq.make ~name:"product" [ x; z ]
      [ Atom.make "R" [ x; x ]; Atom.make "S" [ z; z ] ];
  ]

let prop_cq_columnar_eq =
  QCheck.Test.make ~count:300 ~name:"columnar Cq.answers = row Cq.answers"
    arb_db (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          with_columnar false (fun () -> Cq.answers q db)
          = with_columnar true (fun () -> Cq.answers q db))
        queries)

(* --- Formula.answers: compiled guarded plans = interpreter ----------- *)

let keys = [ ("R", [ 0 ]); ("S", [ 0 ]) ]

let rewritable_queries =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  [
    (* Q2-style projection: the guard quantifies the non-key position. *)
    Cq.make ~name:"proj" [ x ] [ Atom.make "R" [ x; y ] ];
    (* C-forest join: child guard nests under the parent's mate. *)
    Cq.make ~name:"chain" [ x; z ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ];
    (* Constant in a non-key position becomes a comparison condition. *)
    Cq.make ~name:"constnk" [ x ] [ Atom.make "R" [ x; Term.const (Value.int 2) ] ];
    (* Full-tuple query: no mates to refute, plain conjunction plan. *)
    Cq.make ~name:"full" [ x; y ] [ Atom.make "R" [ x; y ] ];
  ]

let prop_rewrite_columnar_eq =
  QCheck.Test.make ~count:300
    ~name:"columnar consistent_answers (FO rewriting) = row" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          with_columnar false (fun () ->
              Rewriting.Key_rewrite.consistent_answers q ~keys db)
          = with_columnar true (fun () ->
                Rewriting.Key_rewrite.consistent_answers q ~keys db))
        rewritable_queries)

let prop_formula_columnar_eq =
  QCheck.Test.make ~count:300 ~name:"columnar Formula.answers = row" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          let f = Formula.of_cq q in
          let free = Cq.head_vars q in
          with_columnar false (fun () -> Formula.answers db ~free f)
          = with_columnar true (fun () -> Formula.answers db ~free f))
        queries)

(* --- Violation search: compiled = interpreted ------------------------ *)

let vschema = Schema.of_list [ ("T", [ "k"; "v"; "w" ]) ]

let arb_vdb =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 10)
        (triple (int_range 0 3) (int_range 0 4) (int_range 0 2)))
    ~print:(fun rows ->
      String.concat ";"
        (List.map (fun (k, v, w) -> Printf.sprintf "%d,%d,%d" k v w) rows))

(* Witness equality including bindings: [Binding.to_list] canonicalizes,
   so differing internal construction orders cannot hide behind (=). *)
let witness_repr (w : Constraints.Violation.witness) =
  ( w.ic_name,
    Tid.Set.elements w.tids,
    Binding.to_list w.binding,
    List.map (fun (tid, a) -> (tid, Format.asprintf "%a" Atom.pp a)) w.matched )

let prop_violation_columnar_eq =
  QCheck.Test.make ~count:300 ~name:"columnar violations = row violations"
    arb_vdb (fun rows ->
      let db =
        Instance.of_rows vschema
          [
            ( "T",
              List.map
                (fun (k, v, w) -> [ value_of k; value_of v; Value.int w ])
                rows );
          ]
      in
      let ics =
        [
          Constraints.Ic.key ~rel:"T" [ 0 ];
          Constraints.Ic.fd ~rel:"T" ~lhs:[ 1 ] ~rhs:[ 2 ];
        ]
      in
      let witnesses on =
        with_columnar on (fun () ->
            List.map witness_repr (Constraints.Violation.all db vschema ics))
      in
      witnesses false = witnesses true)

(* --- counters prove which engine ran --------------------------------- *)

let counter_value = Obs.Registry.counter_value

let test_engine_counters () =
  let db = instance_of ([ (1, 2); (3, 4) ], [ (2, 5) ]) in
  let q = List.hd queries in
  let deltas on =
    let reg = Obs.Registry.create () in
    let prev = Obs.Registry.current () in
    Obs.Registry.set_current reg;
    Fun.protect ~finally:(fun () -> Obs.Registry.set_current prev) @@ fun () ->
    ignore (with_columnar on (fun () -> Cq.answers q db));
    ( counter_value reg "scan.columnar",
      counter_value reg "join.fused",
      counter_value reg "scan.row" )
  in
  let sc, jf, sr = deltas true in
  check Alcotest.bool "columnar: scan.columnar > 0" true (sc > 0);
  check Alcotest.bool "columnar: join.fused > 0" true (jf > 0);
  check Alcotest.int "columnar: scan.row = 0" 0 sr;
  let sc', _, sr' = deltas false in
  check Alcotest.int "row: scan.columnar = 0" 0 sc';
  check Alcotest.bool "row: scan.row > 0" true (sr' > 0);
  check Alcotest.bool "dictionary populated" true (Dict.size () > 0)

(* --- dictionary and columnar-view integrity under updates ------------ *)

type op = Ins of int * int * int | Del of int | Upd of int * int * int

let arb_ops =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6)
           (triple (int_range 0 3) (int_range 0 4) (int_range 0 2)))
        (list_size (int_range 0 12)
           (oneof
              [
                map
                  (fun (k, v, w) -> Ins (k, v, w))
                  (triple (int_range 0 3) (int_range 0 4) (int_range 0 2));
                map (fun i -> Del i) (int_range 0 20);
                map
                  (fun (i, p, v) -> Upd (i, p, v))
                  (triple (int_range 0 20) (int_range 0 2) (int_range 0 4));
              ])))
    ~print:(fun (rows, ops) ->
      let pp_op = function
        | Ins (k, v, w) -> Printf.sprintf "I(%d,%d,%d)" k v w
        | Del i -> Printf.sprintf "D%d" i
        | Upd (i, p, v) -> Printf.sprintf "U(%d,%d,%d)" i p v
      in
      Printf.sprintf "rows=%s ops=%s"
        (String.concat ";"
           (List.map (fun (k, v, w) -> Printf.sprintf "%d,%d,%d" k v w) rows))
        (String.concat ";" (List.map pp_op ops)))

let apply db = function
  | Ins (k, v, w) ->
      Instance.add db (Fact.make "T" [ value_of k; value_of v; Value.int w ])
  | Del i -> (
      match Tid.Set.elements (Instance.tids db) with
      | [] -> db
      | ts -> Instance.delete db (List.nth ts (i mod List.length ts)))
  | Upd (i, p, v) -> (
      match Tid.Set.elements (Instance.tids db) with
      | [] -> db
      | ts ->
          Instance.update_cell db
            (Tid.Cell.make (List.nth ts (i mod List.length ts)) (p + 1))
            (value_of v))

(* The memoized columnar view must decode back to exactly the row store
   after every persistent update (the per-relation cache invalidation in
   [Instance.cache_with] is what's under test), and dictionary codes must
   round-trip. *)
let prop_columnar_view_integrity =
  QCheck.Test.make ~count:300
    ~name:"columnar views stay exact across insert/delete/update_cell"
    arb_ops (fun (rows, ops) ->
      let db0 =
        Instance.of_rows vschema
          [
            ( "T",
              List.map
                (fun (k, v, w) -> [ value_of k; value_of v; Value.int w ])
                rows );
          ]
      in
      (* Build the view *before* the updates so what's under test is the
         invalidation, not a fresh build. *)
      ignore (Instance.columnar db0 ~rel:"T");
      let view_ok db =
        let view = Instance.columnar db ~rel:"T" in
        let expected =
          List.map
            (fun (tid, row) ->
              Array.append [| Value.int (Tid.to_int tid) |] row)
            (Instance.tuples db ~rel:"T")
        in
        Columnar.cols view = [| Instance.tid_column; "k"; "v"; "w" |]
        && Columnar.rows view = expected
      in
      let dict_ok db =
        List.for_all
          (fun (_, row) ->
            Array.for_all
              (fun v ->
                let c = Dict.intern v in
                c = Dict.intern v && Value.equal (Dict.value c) v)
              row)
          (Instance.tuples db ~rel:"T")
      in
      let db = List.fold_left (fun db op -> apply db op) db0 ops in
      List.for_all view_ok [ db0; db ] && dict_ok db)

(* --- descriptive unknown-column errors ------------------------------- *)

let test_ra_unknown_column () =
  let r = ra_rel [ "a"; "b" ] [ (1, 2) ] in
  let expect_msg op f =
    match f () with
    | exception Invalid_argument m ->
        let has s =
          let re = Str.regexp_string s in
          try
            ignore (Str.search_forward re m 0);
            true
          with Not_found -> false
        in
        check Alcotest.bool (op ^ " names the operation") true (has op);
        check Alcotest.bool (op ^ " names the missing column") true (has "\"z\"");
        check Alcotest.bool (op ^ " lists available columns") true (has "a, b")
    | _ -> Alcotest.fail (op ^ ": expected Invalid_argument")
  in
  expect_msg "Ra.col" (fun () -> Ra.col r "z");
  expect_msg "Ra.project" (fun () -> Ra.project [ "a"; "z" ] r);
  expect_msg "Ra.rename" (fun () -> Ra.rename [ ("z", "q") ] r)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_plan_ops_eq;
    QCheck_alcotest.to_alcotest prop_cq_columnar_eq;
    QCheck_alcotest.to_alcotest prop_rewrite_columnar_eq;
    QCheck_alcotest.to_alcotest prop_formula_columnar_eq;
    QCheck_alcotest.to_alcotest prop_violation_columnar_eq;
    Alcotest.test_case "counters prove the engine that ran" `Quick
      test_engine_counters;
    QCheck_alcotest.to_alcotest prop_columnar_view_integrity;
    Alcotest.test_case "Ra unknown-column diagnostics" `Quick
      test_ra_unknown_column;
  ]
