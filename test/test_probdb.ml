module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Tid = Relational.Tid
open Logic

let check = Alcotest.check
let flt = Alcotest.float 1e-9

let schema = Schema.of_list [ ("P", [ "x" ]) ]
let q_exists = Cq.make [] [ Atom.make "P" [ Term.var "x" ] ]

let test_ti_single () =
  let db = Instance.of_rows schema [ ("P", [ [ Value.str "a" ] ]) ] in
  let t = { Probdb.instance = db; prob = [ (Tid.of_int 1, 0.6) ] } in
  check flt "P(Q) = 0.6" 0.6 (Probdb.ti_query_probability t q_exists)

let test_ti_independent_or () =
  let db = Instance.of_rows schema [ ("P", [ [ Value.str "a" ]; [ Value.str "b" ] ]) ] in
  let t =
    { Probdb.instance = db; prob = [ (Tid.of_int 1, 0.5); (Tid.of_int 2, 0.5) ] }
  in
  check flt "1 - (1/2)^2" 0.75 (Probdb.ti_query_probability t q_exists)

let test_ti_certain_tuple () =
  let db = Instance.of_rows schema [ ("P", [ [ Value.str "a" ] ]) ] in
  let t = { Probdb.instance = db; prob = [] } in
  check flt "unlisted tuples are certain" 1.0 (Probdb.ti_query_probability t q_exists)

let test_ti_join () =
  let s2 = Schema.of_list [ ("R", [ "x"; "y" ]); ("S", [ "y" ]) ] in
  let db =
    Instance.of_rows s2
      [ ("R", [ [ Value.str "a"; Value.str "b" ] ]); ("S", [ [ Value.str "b" ] ]) ]
  in
  let q =
    Cq.make []
      [ Atom.make "R" [ Term.var "x"; Term.var "y" ]; Atom.make "S" [ Term.var "y" ] ]
  in
  let t =
    { Probdb.instance = db; prob = [ (Tid.of_int 1, 0.5); (Tid.of_int 2, 0.4) ] }
  in
  check flt "independent conjunction" 0.2 (Probdb.ti_query_probability t q)

let test_ti_answer_probabilities () =
  let db = Instance.of_rows schema [ ("P", [ [ Value.str "a" ]; [ Value.str "b" ] ]) ] in
  let t =
    { Probdb.instance = db; prob = [ (Tid.of_int 1, 0.3) ] }
  in
  let q = Cq.make [ Term.var "x" ] [ Atom.make "P" [ Term.var "x" ] ] in
  let probs = Probdb.ti_answer_probabilities t q in
  check flt "a at 0.3" 0.3 (List.assoc [ Value.str "a" ] probs);
  check flt "b certain" 1.0 (List.assoc [ Value.str "b" ] probs)

let test_ti_sampling_close_to_exact () =
  let db =
    Instance.of_rows schema
      [ ("P", List.init 25 (fun i -> [ Value.int i ])) ]
  in
  (* 25 uncertain tuples forces the Monte Carlo path. *)
  let t =
    {
      Probdb.instance = db;
      prob = List.init 25 (fun i -> (Tid.of_int (i + 1), 0.1));
    }
  in
  let estimate = Probdb.ti_query_probability ~seed:3 ~samples:4000 t q_exists in
  let exact = 1.0 -. (0.9 ** 25.0) in
  check Alcotest.bool "estimate within 0.05" true (Float.abs (estimate -. exact) < 0.05)

(* The dirty-database model on the Employee example. *)
module P = Workload.Paper

let test_dirty_uniform () =
  let dirty =
    Probdb.of_key_blocks P.Employee.instance P.Employee.schema [ P.Employee.key ]
  in
  check Alcotest.int "two worlds" 2 (List.length dirty.Probdb.weighted);
  let probs = Probdb.answer_probabilities dirty P.Employee.full_query in
  check flt "page,5 at 1/2" 0.5
    (List.assoc [ Value.str "page"; Value.int 5 ] probs);
  check flt "smith certain" 1.0
    (List.assoc [ Value.str "smith"; Value.int 3 ] probs);
  check
    Alcotest.(list (list string))
    "consistent = probability-1"
    [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
    (List.map (List.map Value.to_string)
       (Probdb.consistent_answers dirty P.Employee.full_query))

let test_dirty_weighted () =
  (* Trust (page, 5) three times as much as (page, 8). *)
  let weight tid = if Tid.to_int tid = 1 then 3.0 else 1.0 in
  let dirty =
    Probdb.of_key_blocks ~weight P.Employee.instance P.Employee.schema
      [ P.Employee.key ]
  in
  let probs = Probdb.answer_probabilities dirty P.Employee.full_query in
  check flt "page,5 at 3/4" 0.75
    (List.assoc [ Value.str "page"; Value.int 5 ] probs);
  let clean = Probdb.clean_answers ~threshold:0.5 dirty P.Employee.full_query in
  check Alcotest.bool "page,5 is a clean answer now" true
    (List.mem [ Value.str "page"; Value.int 5 ] clean)

let test_dirty_rejects_non_keys () =
  Alcotest.check_raises "denials rejected"
    (Invalid_argument "Probdb.of_key_blocks: primary keys only") (fun () ->
      ignore
        (Probdb.of_key_blocks P.Denial.instance P.Denial.schema [ P.Denial.kappa ]))

let test_world_probabilities_sum_to_one () =
  let db, key =
    Workload.Gen.key_conflict_instance ~seed:5 ~n:12 ~conflict_fraction:0.4 ()
  in
  let dirty = Probdb.of_key_blocks db (Instance.schema db) [ key ] in
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 dirty.Probdb.weighted in
  check (Alcotest.float 1e-6) "normalized" 1.0 total

let suite =
  [
    Alcotest.test_case "TI: single tuple" `Quick test_ti_single;
    Alcotest.test_case "TI: independent disjunction" `Quick test_ti_independent_or;
    Alcotest.test_case "TI: certain tuples" `Quick test_ti_certain_tuple;
    Alcotest.test_case "TI: join probability" `Quick test_ti_join;
    Alcotest.test_case "TI: answer probabilities" `Quick test_ti_answer_probabilities;
    Alcotest.test_case "TI: Monte Carlo fallback" `Quick
      test_ti_sampling_close_to_exact;
    Alcotest.test_case "dirty db: uniform worlds" `Quick test_dirty_uniform;
    Alcotest.test_case "dirty db: weighted alternatives" `Quick test_dirty_weighted;
    Alcotest.test_case "dirty db: keys only" `Quick test_dirty_rejects_non_keys;
    Alcotest.test_case "world probabilities normalized" `Quick
      test_world_probabilities_sum_to_one;
  ]
