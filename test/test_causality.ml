module Instance = Relational.Instance
module Schema = Relational.Schema
module Value = Relational.Value
module Tid = Relational.Tid
module Cause = Causality.Cause
module Attr_cause = Causality.Attr_cause
module Under_ics = Causality.Under_ics
open Logic
open Paper_examples

let check = Alcotest.check
let flt = Alcotest.float 1e-9

(* E11 (Example 7.1): causes and responsibilities for Q in D. *)
let test_causes_ex71 () =
  let causes = Cause.actual_causes Denial.instance Denial.schema Denial.q in
  check
    Alcotest.(list int)
    "four actual causes"
    [ 1; 3; 4; 6 ]
    (List.map (fun c -> Tid.to_int c.Cause.tid) causes);
  let rho tid =
    Cause.responsibility Denial.instance Denial.schema Denial.q (Tid.of_int tid)
  in
  check flt "S(a3) counterfactual" 1.0 (rho 6);
  check flt "R(a4,a3) half" 0.5 (rho 1);
  check flt "R(a3,a3) half" 0.5 (rho 3);
  check flt "S(a4) half" 0.5 (rho 4);
  check flt "R(a2,a1) not a cause" 0.0 (rho 2);
  check flt "S(a2) not a cause" 0.0 (rho 5)

let test_counterfactual_and_mrac () =
  check
    Alcotest.(list int)
    "only S(a3) counterfactual" [ 6 ]
    (List.map Tid.to_int
       (Cause.counterfactual_causes Denial.instance Denial.schema Denial.q));
  check
    Alcotest.(list int)
    "MRAC is S(a3)" [ 6 ]
    (List.map Tid.to_int
       (Cause.most_responsible Denial.instance Denial.schema Denial.q))

let test_false_query_no_causes () =
  let q = Cq.make [] [ Atom.make "S" [ Term.str "zz" ] ] in
  check Alcotest.int "no causes for false query" 0
    (List.length (Cause.actual_causes Denial.instance Denial.schema q))

(* The generic (direct-definition) engine agrees with the repair-based one
   on Example 7.1. *)
let test_generic_agrees () =
  let holds = Cause.holds Denial.q in
  let generic = Cause.generic_actual_causes ~holds Denial.instance in
  let repair_based = Cause.actual_causes Denial.instance Denial.schema Denial.q in
  check Alcotest.int "same number" (List.length repair_based) (List.length generic);
  List.iter2
    (fun (g : Cause.t) (r : Cause.t) ->
      check Alcotest.int "same tid" (Tid.to_int r.tid) (Tid.to_int g.tid);
      check flt "same responsibility" r.responsibility g.responsibility)
    generic repair_based

(* E13 (Example 7.3): attribute-level causes. *)
let test_attr_causes () =
  let causes = Attr_cause.actual_causes Denial.instance Denial.schema Denial.q in
  let rho tid pos =
    Attr_cause.responsibility Denial.instance Denial.schema Denial.q
      (Tid.Cell.make (Tid.of_int tid) pos)
  in
  check flt "ι6[1] counterfactual" 1.0 (rho 6 1);
  check flt "ι1[2] actual with |Γ|=1" 0.5 (rho 1 2);
  check flt "ι3[2] actual with |Γ|=1" 0.5 (rho 3 2);
  check flt "ι2[1] not a cause" 0.0 (rho 2 1);
  check Alcotest.bool "some causes found" true (causes <> [])

(* E14 (Example 7.4): causality under an inclusion dependency. *)
module Courses = struct
  let schema =
    Schema.of_list
      [ ("Dep", [ "dname"; "tstaff" ]); ("Course", [ "cname"; "tstaff"; "dname" ]) ]

  (* tids: Dep t1..t3 then Course t4..t8, matching ι1..ι8. *)
  let instance =
    Instance.of_rows schema
      [
        ( "Dep",
          [
            [ v "Computing"; v "John" ];
            [ v "Philosophy"; v "Patrick" ];
            [ v "Math"; v "Kevin" ];
          ] );
        ( "Course",
          [
            [ v "COM08"; v "John"; v "Computing" ];
            [ v "Math01"; v "Kevin"; v "Math" ];
            [ v "HIST02"; v "Patrick"; v "Philosophy" ];
            [ v "Math08"; v "Eli"; v "Math" ];
            [ v "COM01"; v "John"; v "Computing" ];
          ] );
      ]

  let psi = Constraints.Ic.ind ~sub:("Dep", [ 0; 1 ]) ~sup:("Course", [ 2; 1 ])

  let x = Term.var "x"
  let y = Term.var "y"
  let z = Term.var "z"

  (* (A) Q(x): ∃y∃z (Dep(y,x) ∧ Course(z,x,y)) *)
  let q =
    Cq.make ~name:"QA" [ x ] [ Atom.make "Dep" [ y; x ]; Atom.make "Course" [ z; x; y ] ]

  (* (C) Q2(x): ∃y∃z Course(z,x,y) *)
  let q2 = Cq.make ~name:"QC" [ x ] [ Atom.make "Course" [ z; x; y ] ]

  let john = [ Value.str "John" ]
end

let test_under_ics_without_constraint () =
  let rho tid =
    Under_ics.responsibility Courses.instance Courses.schema ~ics:[] Courses.q
      ~answer:Courses.john (Tid.of_int tid)
  in
  check flt "ι1 counterfactual" 1.0 (rho 1);
  check flt "ι4 half" 0.5 (rho 4);
  check flt "ι8 half" 0.5 (rho 8);
  check flt "ι5 not a cause" 0.0 (rho 5)

let test_under_ics_with_psi () =
  let ics = [ Courses.psi ] in
  check Alcotest.bool "psi satisfied" true
    (Constraints.Ic.all_hold Courses.instance Courses.schema ics);
  let rho tid =
    Under_ics.responsibility Courses.instance Courses.schema ~ics Courses.q
      ~answer:Courses.john (Tid.of_int tid)
  in
  check flt "ι1 still counterfactual" 1.0 (rho 1);
  check flt "ι4 no longer a cause" 0.0 (rho 4);
  check flt "ι8 no longer a cause" 0.0 (rho 8)

let test_under_ics_q2 () =
  (* Without ψ: ι4 and ι8 have ρ = 1/2; under ψ the contingency sets grow
     (must delete ι1 too) and ρ drops to 1/3. *)
  let rho ~ics tid =
    Under_ics.responsibility Courses.instance Courses.schema ~ics Courses.q2
      ~answer:Courses.john (Tid.of_int tid)
  in
  check flt "ι4 without psi" 0.5 (rho ~ics:[] 4);
  check flt "ι8 without psi" 0.5 (rho ~ics:[] 8);
  check flt "ι1 not a cause for Q2" 0.0 (rho ~ics:[] 1);
  let ics = [ Courses.psi ] in
  check flt "ι4 under psi" (1.0 /. 3.0) (rho ~ics 4);
  check flt "ι8 under psi" (1.0 /. 3.0) (rho ~ics 8);
  check flt "ι1 still not a cause" 0.0 (rho ~ics 1)

(* ASP-based causes = direct repair-based causes (B5 spot check via qcheck). *)
let schema_rs = Denial.schema

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 5) (pair (int_range 0 3) (int_range 0 3)))
        (list_size (int_range 0 4) (int_range 0 3)))
    ~print:(fun (rs, ss) ->
      Printf.sprintf "R=%s S=%s"
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) rs))
        (String.concat ";" (List.map string_of_int ss)))

let prop_asp_causes_agree =
  QCheck.Test.make ~count:40 ~name:"ASP causes = repair-connection causes"
    arb_db
    (fun (rs, ss) ->
      let label i = Value.str (Printf.sprintf "a%d" i) in
      let db =
        Instance.of_rows schema_rs
          [
            ("R", List.map (fun (a, b) -> [ label a; label b ]) rs);
            ("S", List.map (fun a -> [ label a ]) ss);
          ]
      in
      if not (Cq.holds Denial.q db) then true
      else
        let direct =
          Cause.actual_causes db schema_rs Denial.q
          |> List.map (fun c -> (Tid.to_int c.Cause.tid, c.Cause.responsibility))
        in
        let asp =
          Repair_programs.Cause_rules.responsibilities db schema_rs Denial.q
          |> List.map (fun (t, r) -> (Tid.to_int t, r))
        in
        direct = asp)

let suite =
  [
    Alcotest.test_case "causes and responsibilities (E11)" `Quick test_causes_ex71;
    Alcotest.test_case "counterfactual causes and MRACs" `Quick
      test_counterfactual_and_mrac;
    Alcotest.test_case "false query has no causes" `Quick test_false_query_no_causes;
    Alcotest.test_case "generic engine agrees" `Quick test_generic_agrees;
    Alcotest.test_case "attribute-level causes (E13)" `Quick test_attr_causes;
    Alcotest.test_case "causality without ICs (E14 part 1)" `Quick
      test_under_ics_without_constraint;
    Alcotest.test_case "causality under psi (E14 part 2)" `Quick
      test_under_ics_with_psi;
    Alcotest.test_case "Q2 responsibilities drop under psi (E14 part 3)" `Quick
      test_under_ics_q2;
    QCheck_alcotest.to_alcotest prop_asp_causes_agree;
  ]
