module Fact = Relational.Fact
module Value = Relational.Value
module Syntax = Asp.Syntax
open Logic

let check = Alcotest.check
let a name = Atom.make name []
let fact name values = Fact.make name (List.map Value.str values)
let prop name = Fact.make name []

let models_as_strings models =
  models
  |> List.map (fun m ->
         Fact.Set.elements m |> List.map Fact.to_string |> List.sort compare)
  |> List.sort compare

(* p :- not q.  q :- not p.  Two stable models. *)
let test_negation_choice () =
  let program =
    Syntax.program
      [
        Syntax.rule ~neg:[ a "q" ] [ a "p" ] [];
        Syntax.rule ~neg:[ a "p" ] [ a "q" ] [];
      ]
  in
  check
    Alcotest.(list (list string))
    "two models"
    [ [ "p()" ]; [ "q()" ] ]
    (models_as_strings (Asp.Stable.models program []))

(* p :- not p.  No stable model. *)
let test_no_stable_model () =
  let program = Syntax.program [ Syntax.rule ~neg:[ a "p" ] [ a "p" ] [] ] in
  check Alcotest.int "no model" 0 (List.length (Asp.Stable.models program []))

(* p :- p has only the empty model (no unfounded self-support). *)
let test_unfounded () =
  let program = Syntax.program [ Syntax.rule [ a "p" ] [ a "p" ] ] in
  check
    Alcotest.(list (list string))
    "empty model only" [ [] ]
    (models_as_strings (Asp.Stable.models program []))

(* Disjunction is minimal: p ∨ q. gives {p} and {q}, never {p,q}. *)
let test_disjunction_minimality () =
  let program = Syntax.program [ Syntax.rule [ a "p"; a "q" ] [] ] in
  check
    Alcotest.(list (list string))
    "two minimal models"
    [ [ "p()" ]; [ "q()" ] ]
    (models_as_strings (Asp.Stable.models program []))

(* Head-cycle-free disjunction with a constraint. *)
let test_disjunction_constraint () =
  let program =
    Syntax.program
      [
        Syntax.rule [ a "p"; a "q" ] [];
        Syntax.hard_constraint [ a "p" ];
      ]
  in
  check
    Alcotest.(list (list string))
    "only q survives"
    [ [ "q()" ] ]
    (models_as_strings (Asp.Stable.models program []))

(* Non-ground rules with variables and comparisons. *)
let test_grounding () =
  let x = Term.var "x" in
  let program =
    Syntax.program
      [
        Syntax.rule
          ~comps:[ Cmp.neq x (Term.str "b") ]
          [ Atom.make "sel" [ x ] ]
          [ Atom.make "dom" [ x ] ];
      ]
  in
  let edb = [ fact "dom" [ "a" ]; fact "dom" [ "b" ]; fact "dom" [ "c" ] ] in
  match Asp.Stable.models program edb with
  | [ m ] ->
      let sel = Fact.Set.filter (fun f -> f.Fact.rel = "sel") m in
      check Alcotest.int "two selected" 2 (Fact.Set.cardinal sel)
  | ms -> Alcotest.failf "expected one model, got %d" (List.length ms)

(* Example 3.5: the repair program of κ, written out by hand, has three
   stable models corresponding to the repairs D1, D2, D3. *)
let denial_repair_program () =
  let t1 = Term.var "t1" and t2 = Term.var "t2" and t3 = Term.var "t3" in
  let x = Term.var "x" and y = Term.var "y" in
  let d = Term.str "d" and s = Term.str "s" in
  let t = Term.var "t" in
  Syntax.program
    [
      (* Disjunctive violation rule. *)
      Syntax.rule
        [
          Atom.make "S'" [ t1; x; d ];
          Atom.make "R'" [ t2; x; y; d ];
          Atom.make "S'" [ t3; y; d ];
        ]
        [
          Atom.make "S" [ t1; x ];
          Atom.make "R" [ t2; x; y ];
          Atom.make "S" [ t3; y ];
        ];
      (* Inertia. *)
      Syntax.rule
        ~neg:[ Atom.make "S'" [ t; x; d ] ]
        [ Atom.make "S'" [ t; x; s ] ]
        [ Atom.make "S" [ t; x ] ];
      Syntax.rule
        ~neg:[ Atom.make "R'" [ t; x; y; d ] ]
        [ Atom.make "R'" [ t; x; y; s ] ]
        [ Atom.make "R" [ t; x; y ] ];
    ]

let denial_edb =
  [
    Fact.make "R" [ Value.str "t1"; Value.str "a4"; Value.str "a3" ];
    Fact.make "R" [ Value.str "t2"; Value.str "a2"; Value.str "a1" ];
    Fact.make "R" [ Value.str "t3"; Value.str "a3"; Value.str "a3" ];
    Fact.make "S" [ Value.str "t4"; Value.str "a4" ];
    Fact.make "S" [ Value.str "t5"; Value.str "a2" ];
    Fact.make "S" [ Value.str "t6"; Value.str "a3" ];
  ]

let stays m =
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      let n = Array.length f.row in
      if
        (f.rel = "R'" || f.rel = "S'")
        && n > 0
        && Value.equal f.row.(n - 1) (Value.str "s")
      then Fact.to_string f :: acc
      else acc)
    m []
  |> List.sort compare

let test_repair_program_ex35 () =
  let models = Asp.Stable.models (denial_repair_program ()) denial_edb in
  check Alcotest.int "three stable models" 3 (List.length models);
  let kept = List.sort compare (List.map stays models) in
  (* D1 deletes S(t6;a3): model keeps everything else. *)
  let d1 =
    [
      "R'(t1, a4, a3, s)";
      "R'(t2, a2, a1, s)";
      "R'(t3, a3, a3, s)";
      "S'(t4, a4, s)";
      "S'(t5, a2, s)";
    ]
  in
  check Alcotest.bool "M1 present" true (List.mem d1 kept)

(* Weak constraints: prefer models deleting fewer tuples (Example 4.2). *)
let test_weak_constraints () =
  let t = Term.var "t" and x = Term.var "x" and y = Term.var "y" in
  let d = Term.str "d" in
  let base = denial_repair_program () in
  let weaks =
    [
      Syntax.weak [ Atom.make "S'" [ t; x; d ] ];
      Syntax.weak [ Atom.make "R'" [ t; x; y; d ] ];
    ]
  in
  let program = Syntax.program ~weaks base.Syntax.rules in
  let optima = Asp.Stable.optimal_models program denial_edb in
  (* The C-repair deletes a single tuple: S(t6;a3). *)
  check Alcotest.int "one optimal model" 1 (List.length optima);
  let w, m = List.hd optima in
  check Alcotest.int "one deletion" 1 w;
  check Alcotest.bool "S(t6) deleted" true
    (Fact.Set.mem
       (Fact.make "S'" [ Value.str "t6"; Value.str "a3"; Value.str "d" ])
       m)

let test_brave_cautious () =
  let program =
    Syntax.program
      [
        Syntax.rule ~neg:[ a "q" ] [ a "p" ] [];
        Syntax.rule ~neg:[ a "p" ] [ a "q" ] [];
        Syntax.rule [ a "r" ] [ a "p" ];
        Syntax.rule [ a "r" ] [ a "q" ];
      ]
  in
  check Alcotest.bool "p brave" true (Asp.Reason.brave program [] (prop "p"));
  check Alcotest.bool "p not cautious" false (Asp.Reason.cautious program [] (prop "p"));
  check Alcotest.bool "r cautious" true (Asp.Reason.cautious program [] (prop "r"))

let test_hard_constraint_filters () =
  let program =
    Syntax.program
      [
        Syntax.rule ~neg:[ a "q" ] [ a "p" ] [];
        Syntax.rule ~neg:[ a "p" ] [ a "q" ] [];
        Syntax.hard_constraint [ a "q" ];
      ]
  in
  check
    Alcotest.(list (list string))
    "q model eliminated"
    [ [ "p()" ] ]
    (models_as_strings (Asp.Stable.models program []))

let test_unsafe_rule_rejected () =
  Alcotest.check_raises "unsafe head var"
    (Invalid_argument "Asp.Syntax: unsafe rule, variable x not bound")
    (fun () ->
      ignore (Syntax.rule [ Atom.make "p" [ Term.var "x" ] ] []))

let suite =
  [
    Alcotest.test_case "negation choice" `Quick test_negation_choice;
    Alcotest.test_case "odd loop: no stable model" `Quick test_no_stable_model;
    Alcotest.test_case "no unfounded self-support" `Quick test_unfounded;
    Alcotest.test_case "disjunction minimality" `Quick test_disjunction_minimality;
    Alcotest.test_case "disjunction + constraint" `Quick test_disjunction_constraint;
    Alcotest.test_case "grounding with comparisons" `Quick test_grounding;
    Alcotest.test_case "repair program of Ex 3.5" `Quick test_repair_program_ex35;
    Alcotest.test_case "weak constraints (Ex 4.2)" `Quick test_weak_constraints;
    Alcotest.test_case "brave / cautious" `Quick test_brave_cautious;
    Alcotest.test_case "hard constraints filter models" `Quick
      test_hard_constraint_filters;
    Alcotest.test_case "safety check" `Quick test_unsafe_rule_rejected;
  ]
