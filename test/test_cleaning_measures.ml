module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Quality = Cleaning.Quality
module Cost_clean = Cleaning.Cost_clean
module Degree = Measures.Degree
open Logic
open Paper_examples

let check = Alcotest.check
let flt = Alcotest.float 1e-9
let rows_to_strings rows = List.map (List.map Value.to_string) rows

(* Section 6: the CC/AC/phone table with the CFD [CC=44, Zip] -> [Street]. *)
let cust_schema =
  Schema.of_list
    [ ("Cust", [ "cc"; "ac"; "phone"; "name"; "street"; "city"; "zip" ]) ]

let cust_row cc ac ph nm st ct zp = [ i cc; i ac; v ph; v nm; v st; v ct; v zp ]

let cust_db =
  Instance.of_rows cust_schema
    [
      ( "Cust",
        [
          cust_row 44 131 "1234567" "mike" "mayfield" "NYC" "EH4 8LE";
          cust_row 44 131 "3456789" "rick" "crichton" "NYC" "EH4 8LE";
          cust_row 01 908 "3456789" "joe" "mtn ave" "NYC" "07974";
        ] );
    ]

let cust_cfd =
  Constraints.Ic.cfd ~rel:"Cust" ~lhs:[ 0; 6 ] ~rhs:[ 4 ]
    ~pat:[ (0, Some (Value.int 44)); (6, None); (4, None) ]

(* E10: quality answers wrt the CFD. *)
let test_quality_answers () =
  let q =
    Cq.make [ Term.var "n" ]
      [
        Atom.make "Cust"
          [
            Term.var "cc";
            Term.var "ac";
            Term.var "ph";
            Term.var "n";
            Term.var "st";
            Term.var "ct";
            Term.var "zp";
          ];
      ]
  in
  let rows = Quality.quality_answers cust_db cust_schema [ cust_cfd ] q in
  (* Names survive every repair: either mike or rick is deleted, joe stays;
     names are certain answers... mike and rick each appear in one repair
     only, so only joe is a quality answer for the name query?  No: the
     projection keeps the surviving tuple's name. mike survives in the
     repair deleting rick and vice versa, so only joe is in all repairs. *)
  check
    Alcotest.(list (list string))
    "joe is quality-certain"
    [ [ "joe" ] ]
    (rows_to_strings rows)

let test_answer_frequencies () =
  let q =
    Cq.make [ Term.var "n" ]
      [
        Atom.make "Cust"
          [
            Term.var "cc";
            Term.var "ac";
            Term.var "ph";
            Term.var "n";
            Term.var "st";
            Term.var "ct";
            Term.var "zp";
          ];
      ]
  in
  let freqs = Quality.answer_frequencies cust_db cust_schema [ cust_cfd ] q in
  let find name =
    List.assoc [ Value.str name ]
      (List.map (fun (r, f) -> (r, f)) freqs)
  in
  check flt "joe in all repairs" 1.0 (find "joe");
  check flt "mike in half" 0.5 (find "mike");
  check flt "rick in half" 0.5 (find "rick");
  let majority = Quality.majority_answers cust_db cust_schema [ cust_cfd ] q in
  check
    Alcotest.(list (list string))
    "majority = joe only"
    [ [ "joe" ] ]
    (rows_to_strings majority)

let test_cost_clean_fd () =
  (* Employee key violations: page 5 vs page 8; cleaning overwrites one
     salary so the FD holds, at cost 1 change. *)
  let result =
    Cost_clean.clean Employee.instance Employee.schema [ Employee.key ]
  in
  check Alcotest.bool "cleaned is consistent" true
    (Constraints.Ic.all_hold result.Cost_clean.cleaned Employee.schema
       [ Employee.key ]);
  check Alcotest.int "one change suffices" 1 result.Cost_clean.cost

let test_cost_clean_supports_majority () =
  (* Three tuples with key k: values 7, 7, 9 — majority value 7 wins. *)
  let schema = Schema.of_list [ ("T", [ "k"; "v" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ( "T",
          [
            [ Value.int 1; Value.int 7 ];
            [ Value.int 1; Value.int 9 ];
            [ Value.int 2; Value.int 7 ];
          ] );
      ]
  in
  let key = Constraints.Ic.key ~rel:"T" [ 0 ] in
  let result = Cost_clean.clean db schema [ key ] in
  check Alcotest.bool "consistent" true
    (Constraints.Ic.all_hold result.Cost_clean.cleaned schema [ key ]);
  (* The value 9 (support 1) is overwritten by 7 (support 2). *)
  List.iter
    (fun (c : Cost_clean.change) ->
      check Alcotest.bool "overwrites 9 with 7" true
        (Value.equal c.old_value (Value.int 9)
        && Value.equal c.new_value (Value.int 7)))
    result.Cost_clean.changes

let test_cost_clean_rejects_denials () =
  Alcotest.check_raises "denials unsupported"
    (Invalid_argument "Cost_clean.clean: unsupported constraint kappa")
    (fun () ->
      ignore (Cost_clean.clean Denial.instance Denial.schema [ Denial.kappa ]))

(* B6 spot checks: measures. *)
let test_measures_consistent_db () =
  let db = Instance.of_rows Employee.schema [ ("Employee", [ [ v "a"; i 1 ] ]) ] in
  List.iter
    (fun (_, x) -> check flt "all zero on consistent" 0.0 x)
    (Degree.all db Employee.schema [ Employee.key ])

let test_measures_employee () =
  check flt "drastic" 1.0 (Degree.drastic Employee.instance Employee.schema [ Employee.key ]);
  (* One C-repair deletion out of four tuples. *)
  check flt "repair-based = 1/4" 0.25
    (Degree.repair_based Employee.instance Employee.schema [ Employee.key ]);
  (* Two of four tuples are in conflict. *)
  check flt "conflicting ratio = 1/2" 0.5
    (Degree.conflicting_tuple_ratio Employee.instance Employee.schema
       [ Employee.key ])

let test_measures_monotone_in_conflicts () =
  let degree_at frac =
    let db, key =
      Workload.Gen.key_conflict_instance ~seed:7 ~n:40 ~conflict_fraction:frac ()
    in
    Degree.repair_based db (Instance.schema db) [ key ]
  in
  check Alcotest.bool "more conflicts, higher degree" true
    (degree_at 0.0 <= degree_at 0.2 && degree_at 0.2 <= degree_at 0.6)

let test_workload_generators () =
  let db, key = Workload.Gen.key_conflict_chain ~seed:3 ~pairs:4 () in
  let repairs = Repairs.S_repair.enumerate db (Instance.schema db) [ key ] in
  check Alcotest.int "2^4 repairs" 16 (List.length repairs);
  let db2, kappa =
    Workload.Gen.denial_instance ~seed:3 ~n:30 ~conflict_fraction:0.3 ()
  in
  check Alcotest.bool "denial instance inconsistent" false
    (Constraints.Ic.all_hold db2 (Instance.schema db2) [ kappa ]);
  let db3, ind = Workload.Gen.ind_instance ~seed:3 ~n:30 ~dangling_fraction:0.2 () in
  check Alcotest.bool "ind instance inconsistent" false
    (Constraints.Ic.all_hold db3 (Instance.schema db3) [ ind ])

let suite =
  [
    Alcotest.test_case "quality answers (E10)" `Quick test_quality_answers;
    Alcotest.test_case "answer frequencies / majority" `Quick
      test_answer_frequencies;
    Alcotest.test_case "cost-based cleaning on FDs" `Quick test_cost_clean_fd;
    Alcotest.test_case "cleaning prefers majority values" `Quick
      test_cost_clean_supports_majority;
    Alcotest.test_case "cleaning rejects denials" `Quick
      test_cost_clean_rejects_denials;
    Alcotest.test_case "measures: consistent db" `Quick test_measures_consistent_db;
    Alcotest.test_case "measures: Employee" `Quick test_measures_employee;
    Alcotest.test_case "measures monotone in conflicts" `Quick
      test_measures_monotone_in_conflicts;
    Alcotest.test_case "workload generators" `Quick test_workload_generators;
  ]
