(* cqa-watch: progress heartbeats, per-request deadlines, the INFLIGHT
   table, and the flight recorder.

   Deadlines are tested against a scripted clock that advances a fixed
   step per read, so "the budget blows" is a deterministic statement
   about probe counts, not wall time. *)

module P = Server.Protocol

let doc_lines =
  [
    "relation T(k, v)";
    "row T(1, 1)";
    "row T(1, 2)";
    "row T(2, 5)";
    "key T(k)";
    "query q(X) :- T(X, Y)";
  ]

(* A clock advancing [step] seconds per read. *)
let stepping_clock ?(step = 0.01) () =
  let now = ref 0.0 in
  fun () ->
    now := !now +. step;
    !now

(* Force a deadline check on every tick for the duration of [f]. *)
let with_interval n f =
  let prev = Obs.Progress.check_interval () in
  Obs.Progress.set_check_interval n;
  Fun.protect ~finally:(fun () -> Obs.Progress.set_check_interval prev) f

let handler ?default_timeout_ms ?max_body_lines ?(step = 0.01) () =
  let h =
    Server.Handler.create ?default_timeout_ms ?max_body_lines ~progress:true
      ~clock:(stepping_clock ~step ()) ()
  in
  let r = Server.Handler.dispatch h ~payload:doc_lines (P.Load "s1") in
  Alcotest.(check bool) "loaded" true (r.P.status = `Ok);
  h

let query ?timeout_ms ?(method_ = P.Enum) () =
  P.Query { sid = "s1"; name = "q"; method_; semantics = P.S; timeout_ms }

(* ---- deadlines -------------------------------------------------------- *)

let test_deadline_expires () =
  with_interval 1 (fun () ->
      let h = handler () in
      (* The clock advances 10ms per read; a 1ms budget is blown by the
         first heartbeat, and the next tick raises. *)
      let r = Server.Handler.dispatch h (query ~timeout_ms:1.0 ()) in
      Alcotest.(check bool) "is an error" true (r.P.status = `Err);
      let starts_with p s =
        String.length s >= String.length p && String.sub s 0 (String.length p) = p
      in
      Alcotest.(check bool)
        (Printf.sprintf "structured deadline head: %s" r.P.head)
        true
        (starts_with "deadline budget_ms=1 " r.P.head);
      let has needle =
        let re = Str.regexp_string needle in
        try
          ignore (Str.search_forward re r.P.head 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool) "carries phase" true (has "phase=");
      Alcotest.(check bool) "carries work" true (has "work=");
      Alcotest.(check bool) "carries branch" true (has "branch="))

let test_deadline_unaffected_under_budget () =
  with_interval 1 (fun () ->
      let h = handler () in
      let r = Server.Handler.dispatch h (query ~timeout_ms:1e9 ()) in
      Alcotest.(check bool) "ok" true (r.P.status = `Ok);
      Alcotest.(check string) "answers" "answers=2" r.P.head)

let test_default_timeout_applies () =
  with_interval 1 (fun () ->
      let h = handler ~default_timeout_ms:1.0 () in
      let r = Server.Handler.dispatch h (query ()) in
      Alcotest.(check bool) "server default enforced" true (r.P.status = `Err);
      (* An explicit generous timeout= overrides the tight default. *)
      let r = Server.Handler.dispatch h (query ~timeout_ms:1e9 ()) in
      Alcotest.(check bool) "explicit timeout wins" true (r.P.status = `Ok))

let test_deadline_does_not_poison_cache () =
  with_interval 1 (fun () ->
      let h = handler () in
      let r = Server.Handler.dispatch h (query ~timeout_ms:1.0 ()) in
      Alcotest.(check bool) "first attempt times out" true (r.P.status = `Err);
      (* The timed-out answer must not have been cached as the result of
         this query. *)
      let r = Server.Handler.dispatch h (query ~timeout_ms:1e9 ()) in
      Alcotest.(check bool) "retry succeeds" true (r.P.status = `Ok);
      Alcotest.(check string) "retry has the real answer" "answers=2" r.P.head)

let test_counters_move () =
  with_interval 1 (fun () ->
      let h = handler () in
      let reg = Server.Metrics.registry (Server.Handler.metrics h) in
      let expired () =
        Obs.Registry.counter_value reg "progress.deadline_expired"
      in
      let beats () = Obs.Registry.counter_value reg "progress.heartbeats" in
      let e0 = expired () and b0 = beats () in
      ignore (Server.Handler.dispatch h (query ~timeout_ms:1.0 ()));
      Alcotest.(check bool) "deadline_expired incremented" true
        (expired () > e0);
      Alcotest.(check bool) "heartbeats incremented" true (beats () > b0))

(* ---- INFLIGHT --------------------------------------------------------- *)

let test_inflight_shows_then_clears () =
  let h = handler () in
  let ctx =
    Obs.Progress.create ~deadline_s:60.0 ~session:"s1" ~label:"QUERY" ~id:41 ()
  in
  let r = Obs.Progress.run ctx (fun () -> Server.Handler.dispatch h P.Inflight) in
  Alcotest.(check bool) "ok" true (r.P.status = `Ok);
  Alcotest.(check string) "one live request" "inflight=1" r.P.head;
  (match r.P.body with
  | [ line ] ->
      let has needle =
        try
          ignore (Str.search_forward (Str.regexp_string needle) line 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool) "rid" true (has "rid=41");
      Alcotest.(check bool) "session" true (has "sid=s1");
      Alcotest.(check bool) "phase" true (has "phase=");
      Alcotest.(check bool) "heartbeat age" true (has "heartbeat_age_ms=");
      Alcotest.(check bool) "deadline" true (has "deadline_in_ms=")
  | body ->
      Alcotest.fail (Printf.sprintf "expected one body line, got %d"
                       (List.length body)));
  (* Once the context is uninstalled the table is empty again. *)
  let r = Server.Handler.dispatch h P.Inflight in
  Alcotest.(check string) "cleared" "inflight=0" r.P.head;
  Alcotest.(check int) "no body" 0 (List.length r.P.body)

let test_inflight_gauges () =
  let h = handler () in
  let reg = Server.Metrics.registry (Server.Handler.metrics h) in
  let ctx = Obs.Progress.create ~session:"s1" ~label:"QUERY" ~id:7 () in
  let inflight_gauge () =
    Option.value ~default:(-1.0)
      (Obs.Registry.gauge_value reg "inflight.requests")
  in
  Obs.Progress.run ctx (fun () ->
      Server.Handler.sample_gauges h;
      Alcotest.(check (float 0.0)) "one in flight" 1.0 (inflight_gauge ()));
  Server.Handler.sample_gauges h;
  Alcotest.(check (float 0.0)) "none in flight" 0.0 (inflight_gauge ())

(* ---- the flight recorder --------------------------------------------- *)

let test_explain_dumps_recorder () =
  let h = handler () in
  let r =
    Server.Handler.dispatch h
      (P.Explain
         { sid = "s1"; name = "q"; method_ = P.Enum; semantics = P.S;
           timeout_ms = None })
  in
  Alcotest.(check bool) "explain ok" true (r.P.status = `Ok);
  Alcotest.(check bool) "has a -- progress section" true
    (List.mem "-- progress" r.P.body);
  (* Everything after the marker is a snapshot line. *)
  let rec after = function
    | [] -> []
    | "-- progress" :: rest -> rest
    | _ :: rest -> after rest
  in
  let snapshots = after r.P.body in
  Alcotest.(check bool) "non-empty trail" true (snapshots <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot line shape: %s" l)
        true
        (Str.string_match (Str.regexp {|^t\+[0-9.]+ms phase=.* work=[0-9]+|}) l 0))
    snapshots

let test_history_bounded () =
  let clock = stepping_clock ~step:0.001 () in
  (* The check interval is captured at create time. *)
  with_interval 1 (fun () ->
      let c = Obs.Progress.create ~ring:4 ~clock ~label:"X" ~id:1 () in
      Obs.Progress.run c (fun () ->
          for _ = 1 to 100 do
            Obs.Progress.tick ()
          done);
      Alcotest.(check int) "ring keeps the last 4" 4
        (List.length (Obs.Progress.history c)))

(* ---- satellite: zero-observation histograms render "-" --------------- *)

let test_empty_histogram_renders_dash () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "lat" in
  let line = Obs.Registry.render_histogram "lat" h in
  let has needle =
    try
      ignore (Str.search_forward (Str.regexp_string needle) line 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool)
    (Printf.sprintf "dashes for empty histogram: %s" line)
    true
    (has "count=0" && has "p50_us=-" && has "p95_us=-" && has "p99_us=-"
   && has "mean_us=-")

(* ---- satellite: clamp truncation is counted -------------------------- *)

let test_clamp_counter () =
  let h = handler ~max_body_lines:5 () in
  let reg = Server.Metrics.registry (Server.Handler.metrics h) in
  Alcotest.(check int) "pre-created at zero" 0
    (Obs.Registry.counter_value reg "protocol.clamped_total");
  (* METRICS is far over 5 lines, so the response is truncated. *)
  let r = Server.Handler.dispatch h P.Metrics in
  Alcotest.(check bool) "truncation marker present" true
    (match List.rev r.P.body with
    | last :: _ ->
        String.length last > 12 && String.sub last 0 12 = "...truncated"
    | [] -> false);
  Alcotest.(check int) "counted" 1
    (Obs.Registry.counter_value reg "protocol.clamped_total")

(* ---- protocol --------------------------------------------------------- *)

let test_parse_timeout_and_inflight () =
  (match P.parse "QUERY s1 q timeout=250 method=enum" with
  | Ok (P.Query { timeout_ms = Some ms; method_ = P.Enum; _ }) ->
      Alcotest.(check (float 0.0)) "ms" 250.0 ms
  | _ -> Alcotest.fail "QUERY timeout= did not parse");
  (match P.parse "QUERY s1 q timeout=0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "timeout=0 must be rejected");
  (match P.parse "QUERY s1 q timeout=soon" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "timeout=soon must be rejected");
  (match P.parse "inflight" with
  | Ok P.Inflight -> ()
  | _ -> Alcotest.fail "INFLIGHT did not parse");
  match P.parse "INFLIGHT now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "INFLIGHT takes no arguments"

(* ---- disabled-path allocation guard ---------------------------------- *)

let test_disabled_probes_do_not_allocate () =
  Alcotest.(check bool) "no ambient context" false (Obs.Progress.armed ());
  let probe () =
    Obs.Progress.tick ();
    Obs.Progress.phase "hot";
    Obs.Progress.bound 3;
    Obs.Progress.set_branch "x"
  in
  for _ = 1 to 100 do
    probe ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    probe ()
  done;
  let words = Gc.minor_words () -. before in
  (* Gc.minor_words itself allocates its boxed float results; anything
     beyond a small constant means the probes allocate per call. *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-probe allocation (%.0f words for 10k probes)" words)
    true (words < 256.0)

(* ---- qcheck: heartbeat monotonicity ---------------------------------- *)

(* Whatever interleaving of ticks and phase changes a request performs,
   the flight recorder reads as a monotone trail: work counts and
   relative timestamps never decrease, and the live work counter equals
   the number of ticks. *)
let prop_heartbeat_monotone =
  QCheck.Test.make ~count:200 ~name:"flight recorder is monotone"
    QCheck.(list_of_size Gen.(int_range 0 80) bool)
    (fun ops ->
      let clock = stepping_clock ~step:0.001 () in
      let c = Obs.Progress.create ~ring:16 ~clock ~label:"Q" ~id:1 () in
      let prev = Obs.Progress.check_interval () in
      Obs.Progress.set_check_interval 1;
      Fun.protect
        ~finally:(fun () -> Obs.Progress.set_check_interval prev)
        (fun () ->
          Obs.Progress.run c (fun () ->
              List.iteri
                (fun i tick ->
                  if tick then Obs.Progress.tick ()
                  else Obs.Progress.phase (Printf.sprintf "p%d" (i mod 3)))
                ops));
      let ticks = List.length (List.filter Fun.id ops) in
      let history = Obs.Progress.history c in
      let monotone =
        let rec go = function
          | a :: (b :: _ as rest) ->
              a.Obs.Progress.s_work <= b.Obs.Progress.s_work
              && a.Obs.Progress.at <= b.Obs.Progress.at
              && go rest
          | _ -> true
        in
        go history
      in
      monotone && Obs.Progress.work c = ticks)

let suite =
  [
    Alcotest.test_case "deadline expires to a structured ERR" `Quick
      test_deadline_expires;
    Alcotest.test_case "generous budget leaves the answer intact" `Quick
      test_deadline_unaffected_under_budget;
    Alcotest.test_case "--default-timeout-ms applies, timeout= overrides"
      `Quick test_default_timeout_applies;
    Alcotest.test_case "a timeout never poisons the cache" `Quick
      test_deadline_does_not_poison_cache;
    Alcotest.test_case "deadline and heartbeat counters move" `Quick
      test_counters_move;
    Alcotest.test_case "INFLIGHT shows a live request, then clears" `Quick
      test_inflight_shows_then_clears;
    Alcotest.test_case "inflight gauges rise and fall" `Quick
      test_inflight_gauges;
    Alcotest.test_case "EXPLAIN dumps the flight recorder" `Quick
      test_explain_dumps_recorder;
    Alcotest.test_case "the recorder ring is bounded" `Quick
      test_history_bounded;
    Alcotest.test_case "empty histograms render dashes" `Quick
      test_empty_histogram_renders_dash;
    Alcotest.test_case "clamp truncation is counted" `Quick test_clamp_counter;
    Alcotest.test_case "timeout= and INFLIGHT parse" `Quick
      test_parse_timeout_and_inflight;
    Alcotest.test_case "disabled probes do not allocate" `Quick
      test_disabled_probes_do_not_allocate;
    QCheck_alcotest.to_alcotest prop_heartbeat_monotone;
  ]
