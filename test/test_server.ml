(* The serving layer: LRU eviction and capacity bounds, metrics, protocol
   parsing (errors answered with ERR, never an exception), cache
   invalidation on UPDATE, and an end-to-end socket round-trip against
   the select loop. *)

module P = Server.Protocol

let doc_lines =
  [
    "relation T(k, v)";
    "row T(1, 1)";
    "row T(1, 2)";
    "row T(2, 5)";
    "key T(k)";
    "query q(X) :- T(X, Y)";
  ]

(* ---- Lru ------------------------------------------------------------- *)

let test_lru_eviction () =
  let c = Server.Lru.create ~capacity:3 in
  Server.Lru.add c "a" 1;
  Server.Lru.add c "b" 2;
  Server.Lru.add c "c" 3;
  (* Touch "a": now "b" is least recently used. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Server.Lru.find c "a");
  Server.Lru.add c "d" 4;
  Alcotest.(check int) "capacity bound" 3 (Server.Lru.length c);
  Alcotest.(check bool) "b evicted" false (Server.Lru.mem c "b");
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ]
    (Server.Lru.keys c);
  Alcotest.(check int) "one eviction" 1 (Server.Lru.evictions c);
  (* Finding the front element takes promote's fast path; order holds. *)
  Alcotest.(check (option int)) "find front" (Some 4) (Server.Lru.find c "d");
  Alcotest.(check (list string)) "front find keeps order" [ "d"; "a"; "c" ]
    (Server.Lru.keys c)

let test_lru_overwrite () =
  let c = Server.Lru.create ~capacity:2 in
  Server.Lru.add c "a" 1;
  Server.Lru.add c "b" 2;
  Server.Lru.add c "a" 10;
  Alcotest.(check int) "no growth on overwrite" 2 (Server.Lru.length c);
  Alcotest.(check (option int)) "new value" (Some 10) (Server.Lru.find c "a");
  (* Overwriting promoted "a", so "b" goes first. *)
  Server.Lru.add c "c" 3;
  Alcotest.(check bool) "b evicted" false (Server.Lru.mem c "b");
  Alcotest.(check bool) "a kept" true (Server.Lru.mem c "a")

let test_lru_remove_clear () =
  let c = Server.Lru.create ~capacity:4 in
  List.iter (fun k -> Server.Lru.add c k k) [ 1; 2; 3 ];
  Server.Lru.remove c 2;
  Server.Lru.remove c 99 (* absent: no-op *);
  Alcotest.(check (list int)) "after remove" [ 3; 1 ] (Server.Lru.keys c);
  Server.Lru.clear c;
  Alcotest.(check int) "after clear" 0 (Server.Lru.length c);
  Server.Lru.add c 7 7;
  Alcotest.(check (list int)) "usable after clear" [ 7 ] (Server.Lru.keys c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Server.Lru.create ~capacity:0))

let test_lru_capacity_one () =
  let c = Server.Lru.create ~capacity:1 in
  Server.Lru.add c "a" 1;
  Server.Lru.add c "b" 2;
  Alcotest.(check (list string)) "only newest" [ "b" ] (Server.Lru.keys c);
  Alcotest.(check (option int)) "a gone" None (Server.Lru.find c "a")

(* ---- Metrics --------------------------------------------------------- *)

let test_metrics () =
  let m = Server.Metrics.create () in
  Server.Metrics.observe m ~command:"QUERY" ~latency:0.0005;
  Server.Metrics.observe m ~command:"QUERY" ~latency:0.05;
  Server.Metrics.observe m ~command:"CHECK" ~latency:1e-7;
  Server.Metrics.cache_hit m;
  Server.Metrics.cache_miss m;
  Server.Metrics.cache_miss m;
  Server.Metrics.add_bytes_in m 10;
  Server.Metrics.add_bytes_out m 20;
  Alcotest.(check int) "requests" 3 (Server.Metrics.requests m);
  Alcotest.(check int) "hits" 1 (Server.Metrics.hits m);
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0)
    (Server.Metrics.hit_rate m);
  let rendered = Server.Metrics.render m in
  Alcotest.(check bool) "hits line" true (List.mem "cache_hits 1" rendered);
  Alcotest.(check bool) "bytes line" true (List.mem "bytes_in 10" rendered);
  let query_line =
    List.find
      (fun l -> String.length l > 13 && String.sub l 0 13 = "latency_query")
      rendered
  in
  Alcotest.(check bool) "histogram rendered" true
    (String.length query_line > 0)

(* ---- Protocol -------------------------------------------------------- *)

let test_protocol_parse () =
  (match P.parse "QUERY s1 q method=asp semantics=c" with
  | Ok (P.Query { sid; name; method_ = P.Asp; semantics = P.C; _ }) ->
      Alcotest.(check string) "sid" "s1" sid;
      Alcotest.(check string) "name" "q" name
  | _ -> Alcotest.fail "QUERY with options should parse");
  (match P.parse "update s2 add T(3, \"a b\")" with
  | Ok (P.Update { op = `Add; rel; values; _ }) ->
      Alcotest.(check string) "rel" "T" rel;
      Alcotest.(check int) "arity" 2 (List.length values);
      Alcotest.(check bool) "quoted string value" true
        (List.nth values 1 = Relational.Value.Str "a b")
  | _ -> Alcotest.fail "lowercase UPDATE should parse");
  (match P.parse "REPAIRS s1 c" with
  | Ok (P.Repairs { semantics = P.C; _ }) -> ()
  | _ -> Alcotest.fail "REPAIRS c should parse");
  (match P.parse "TRACE on" with
  | Ok (P.Trace true) -> ()
  | _ -> Alcotest.fail "TRACE on should parse");
  (match P.parse "trace OFF" with
  | Ok (P.Trace false) -> ()
  | _ -> Alcotest.fail "lowercase TRACE off should parse");
  (match P.parse "EXPLAIN s1 q method=enum semantics=s" with
  | Ok (P.Explain { sid = "s1"; name = "q"; method_ = P.Enum; semantics = P.S; _ })
    ->
      ()
  | _ -> Alcotest.fail "EXPLAIN with options should parse");
  (match P.parse "EXPLAIN s1 q" with
  | Ok (P.Explain { method_ = P.Auto; semantics = P.S; _ }) -> ()
  | _ -> Alcotest.fail "EXPLAIN defaults should parse");
  (* A digit run wider than max_int must parse (as a string constant),
     not raise out of the server loop. *)
  (match P.parse "UPDATE s1 add T(99999999999999999999, -99999999999999999999)"
   with
  | Ok (P.Update { values; _ }) ->
      Alcotest.(check bool) "overlong int literal kept as string" true
        (values
        = [
            Relational.Value.Str "99999999999999999999";
            Relational.Value.Str "-99999999999999999999";
          ])
  | Ok _ -> Alcotest.fail "overlong literal parsed as wrong command"
  | Error msg -> Alcotest.fail ("overlong literal should parse: " ^ msg));
  let bad l =
    match P.parse l with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" l)
  in
  List.iter bad
    [
      "FROBNICATE x"; ""; "QUERY"; "QUERY s1 q method=warp";
      "UPDATE s1 add no-parens"; "REPAIRS s1 q"; "LOAD a b"; "STATS extra";
      "TRACE"; "TRACE maybe"; "TRACE on off"; "EXPLAIN s1";
      "EXPLAIN s1 q method=warp";
    ]

(* ---- Handler: memoization and invalidation --------------------------- *)

let load_session h sid =
  match Server.Handler.dispatch h ~payload:doc_lines (P.Load sid) with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head)

let dispatch_line h line =
  Server.Handler.handle_line h line

let test_handler_cache_and_invalidation () =
  let h = Server.Handler.create ~cache_capacity:16 () in
  load_session h "s1";
  let m = Server.Handler.metrics h in
  let r1 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check bool) "first QUERY ok" true (r1.P.status = `Ok);
  (* Key 1 conflicts (two claimants), key 2 is clean: answers are 1, 2. *)
  Alcotest.(check (list string)) "answers" [ "1"; "2" ]
    (List.sort compare r1.P.body);
  Alcotest.(check int) "one miss" 1 (Server.Metrics.misses m);
  let r2 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check int) "served from cache" 1 (Server.Metrics.hits m);
  Alcotest.(check (list string)) "same body from cache" r1.P.body r2.P.body;
  (* UPDATE invalidates: the digest changes and the entry is dropped. *)
  Alcotest.(check int) "entry cached" 1 (Server.Handler.cache_length h);
  let u = dispatch_line h "UPDATE s1 add T(9, 9)" in
  Alcotest.(check bool) "update ok" true (u.P.status = `Ok);
  Alcotest.(check int) "cache dropped" 0 (Server.Handler.cache_length h);
  let r3 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check int) "recomputed, not hit" 1 (Server.Metrics.hits m);
  Alcotest.(check int) "second miss" 2 (Server.Metrics.misses m);
  Alcotest.(check (list string)) "new fact visible" [ "1"; "2"; "9" ]
    (List.sort compare r3.P.body);
  (* Deleting the clean tuple changes answers again. *)
  ignore (dispatch_line h "UPDATE s1 del T(2, 5)");
  let r4 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check (list string)) "delete visible" [ "1"; "9" ]
    (List.sort compare r4.P.body)

let test_handler_reload_redefines_query () =
  (* Same instance and ICs, but q now projects the value column: the
     digest must change so the old answers cannot be replayed. *)
  let h = Server.Handler.create () in
  load_session h "s1";
  let r1 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check (list string)) "key column first" [ "1"; "2" ]
    (List.sort compare r1.P.body);
  let redefined =
    List.map
      (fun l -> if l = "query q(X) :- T(X, Y)" then "query q(Y) :- T(X, Y)" else l)
      doc_lines
  in
  (match Server.Handler.dispatch h ~payload:redefined (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("re-LOAD failed: " ^ head));
  let r2 = dispatch_line h "QUERY s1 q" in
  Alcotest.(check int) "no stale cache hit" 0
    (Server.Metrics.hits (Server.Handler.metrics h));
  (* T(2, 5) is clean, so 5 is certain; the conflicting key 1's values
     1 and 2 are not. *)
  Alcotest.(check (list string)) "redefined query answers" [ "5" ]
    (List.sort compare r2.P.body)

let test_handler_ucq_method_mismatch () =
  let h = Server.Handler.create () in
  let payload =
    doc_lines @ [ "query u(X) :- T(X, Y)"; "query u(Y) :- T(X, Y)" ]
  in
  (match Server.Handler.dispatch h ~payload (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head));
  (* An explicitly requested FO-rewriting method is refused for a union
     rather than silently downgraded to repair enumeration. *)
  List.iter
    (fun line ->
      match dispatch_line h line with
      | { P.status = `Err; _ } -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should answer ERR" line))
    [ "QUERY s1 u method=rewriting"; "QUERY s1 u method=key-rewriting" ];
  match dispatch_line h "QUERY s1 u" with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("auto UCQ should answer OK: " ^ head)

let test_handler_shared_cache_across_sessions () =
  (* Equal data under different session ids shares cache entries: the
     key is the instance digest, not the session id. *)
  let h = Server.Handler.create () in
  load_session h "a";
  load_session h "b";
  ignore (dispatch_line h "QUERY a q");
  ignore (dispatch_line h "QUERY b q");
  Alcotest.(check int) "second session hits" 1
    (Server.Metrics.hits (Server.Handler.metrics h))

let test_handler_repairs_measure_check () =
  let h = Server.Handler.create () in
  load_session h "s1";
  (match dispatch_line h "REPAIRS s1 s" with
  | { P.status = `Ok; head = "count=2"; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("unexpected REPAIRS: " ^ head));
  (match dispatch_line h "CHECK s1" with
  | { P.status = `Ok; head = "inconsistent violations=1"; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("unexpected CHECK: " ^ head));
  let m = dispatch_line h "MEASURE s1" in
  Alcotest.(check bool) "measures returned" true (List.length m.P.body >= 3);
  ignore (dispatch_line h "MEASURE s1");
  ignore (dispatch_line h "REPAIRS s1 s");
  Alcotest.(check int) "repairs+measure cached" 2
    (Server.Metrics.hits (Server.Handler.metrics h))

let test_handler_errors_keep_session () =
  let h = Server.Handler.create () in
  load_session h "s1";
  (* Parse error, unknown session, unknown query, bad update: all ERR,
     none fatal. *)
  List.iter
    (fun line ->
      match dispatch_line h line with
      | { P.status = `Err; _ } -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should answer ERR" line))
    [
      "FROBNICATE";
      "QUERY ghost q";
      "QUERY s1 nosuchquery";
      "UPDATE s1 add Ghost(1)";
      "UPDATE s1 add T(1)";
      "CLOSE ghost";
    ];
  (match dispatch_line h "QUERY s1 q" with
  | { P.status = `Ok; _ } -> ()
  | _ -> Alcotest.fail "session must survive bad requests");
  Alcotest.(check int) "errors counted" 6
    (Server.Metrics.errors (Server.Handler.metrics h))

(* ---- observability: TRACE, EXPLAIN, clamped framing ------------------- *)

let body_has_prefix body prefix =
  let n = String.length prefix in
  List.exists (fun l -> String.length l >= n && String.sub l 0 n = prefix) body

let test_trace_toggle () =
  let h = Server.Handler.create () in
  let on = dispatch_line h "TRACE on" in
  Alcotest.(check string) "trace on" "trace=on" on.P.head;
  Alcotest.(check bool) "tracing enabled" true (Obs.Trace.is_enabled ());
  let off = dispatch_line h "TRACE off" in
  Alcotest.(check string) "trace off" "trace=off" off.P.head;
  Alcotest.(check bool) "tracing disabled" false (Obs.Trace.is_enabled ())

let test_explain_cost_shift () =
  (* The acceptance demo: the same query EXPLAINed under repair
     enumeration (the coNP-shaped path) and under FO key-rewriting shows
     the cost moving between solver-counter families. *)
  let h = Server.Handler.create () in
  load_session h "s1";
  let enum = dispatch_line h "EXPLAIN s1 q method=enum" in
  Alcotest.(check bool) "enum EXPLAIN ok" true (enum.P.status = `Ok);
  Alcotest.(check bool) "enum head" true
    (String.length enum.P.head >= 17
    && String.sub enum.P.head 0 17 = "explain answers=2");
  Alcotest.(check bool) "enum enumerates repairs" true
    (body_has_prefix enum.P.body "repairs.enumerations ");
  Alcotest.(check bool) "enum weighs repair candidates" true
    (body_has_prefix enum.P.body "repairs.candidates ");
  Alcotest.(check bool) "enum never touches the rewriter" false
    (body_has_prefix enum.P.body "rewrite.");
  let rewr = dispatch_line h "EXPLAIN s1 q method=key-rewriting" in
  Alcotest.(check bool) "rewriting EXPLAIN ok" true (rewr.P.status = `Ok);
  Alcotest.(check bool) "rewriting applies the key rewrite" true
    (body_has_prefix rewr.P.body "rewrite.key_applicable ");
  Alcotest.(check bool) "rewriting enumerates no repairs" false
    (body_has_prefix rewr.P.body "repairs.");
  (* Both explanations carry the span tree rooted at the engine. *)
  List.iter
    (fun (r : P.response) ->
      Alcotest.(check bool) "span section" true (List.mem "-- spans" r.P.body);
      Alcotest.(check bool) "engine span" true
        (body_has_prefix r.P.body "engine.certain_answers"))
    [ enum; rewr ];
  (* Same answers either way: EXPLAIN changes the lens, not the result. *)
  Alcotest.(check bool) "rewriting finds the same answers" true
    (String.length rewr.P.head >= 17
    && String.sub rewr.P.head 0 17 = "explain answers=2")

let test_explain_cache_provenance () =
  (* EXPLAIN reports whether an equivalent QUERY would hit the memo
     cache, without reading, filling, or promoting it. *)
  let h = Server.Handler.create () in
  load_session h "s1";
  let m = Server.Handler.metrics h in
  let cold = dispatch_line h "EXPLAIN s1 q" in
  Alcotest.(check bool) "cold explain says miss" true
    (body_has_prefix cold.P.body "cache miss");
  Alcotest.(check int) "explain does not fill the cache" 0
    (Server.Handler.cache_length h);
  ignore (dispatch_line h "QUERY s1 q");
  let warm = dispatch_line h "EXPLAIN s1 q" in
  Alcotest.(check bool) "warm explain says hit" true
    (body_has_prefix warm.P.body "cache hit");
  Alcotest.(check int) "explain counts no cache hit" 0 (Server.Metrics.hits m)

let test_response_truncation () =
  (* Framing safety: a body longer than max_body_lines is cut with an
     explicit marker instead of flooding (or breaking) the line
     protocol. *)
  let h = Server.Handler.create ~max_body_lines:3 () in
  load_session h "s1";
  let r = dispatch_line h "EXPLAIN s1 q method=enum" in
  Alcotest.(check bool) "still OK" true (r.P.status = `Ok);
  Alcotest.(check int) "three lines plus the marker" 4 (List.length r.P.body);
  let last = List.nth r.P.body 3 in
  Alcotest.(check bool)
    (Printf.sprintf "marker present (%s)" last)
    true
    (String.length last >= 17 && String.sub last 0 17 = "...truncated (3 o");
  (* Short bodies pass through untouched. *)
  let q = dispatch_line h "QUERY s1 q" in
  Alcotest.(check (list string)) "short body untouched" [ "1"; "2" ]
    (List.sort compare q.P.body)

let test_stats_includes_solver_counters () =
  (* One STATS path: the solver counters accumulated during query
     execution render next to the request metrics. *)
  let h = Server.Handler.create () in
  load_session h "s1";
  ignore (dispatch_line h "QUERY s1 q method=enum");
  let stats = dispatch_line h "STATS" in
  Alcotest.(check bool) "STATS ok" true (stats.P.status = `Ok);
  List.iter
    (fun prefix ->
      Alcotest.(check bool)
        (Printf.sprintf "STATS has %s" prefix)
        true
        (body_has_prefix stats.P.body prefix))
    [
      "engine.queries "; "repairs.enumerations "; "requests_total ";
      "cache_hit_rate "; "latency_query ";
    ]

(* ---- end-to-end over a Unix socket ----------------------------------- *)

let connect_client path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  Unix.set_nonblock fd;
  fd

(* Drive the loop and the client in one thread of control: step the
   server until a full response (ending with ".") has arrived. *)
let roundtrip loop fd text =
  let pos = ref 0 in
  while !pos < String.length text do
    match Unix.write_substring fd text !pos (String.length text - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        ignore (Server.Loop.step ~timeout:0.01 loop)
  done;
  let buf = Buffer.create 256 in
  let bytes = Bytes.create 4096 in
  let complete () =
    let lines = String.split_on_char '\n' (Buffer.contents buf) in
    List.mem "." lines
  in
  let tries = ref 0 in
  while not (complete ()) do
    incr tries;
    if !tries > 2000 then Alcotest.fail "no response from server loop";
    ignore (Server.Loop.step ~timeout:0.01 loop);
    match Unix.read fd bytes 0 (Bytes.length bytes) with
    | 0 -> Alcotest.fail "server closed the connection"
    | n -> Buffer.add_subbytes buf bytes 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  done;
  let rec up_to_dot = function
    | "." :: _ | [] -> []
    | l :: rest -> l :: up_to_dot rest
  in
  up_to_dot (String.split_on_char '\n' (Buffer.contents buf))

let test_listen_unix_refuses_non_socket () =
  let path = Filename.temp_file "cqa-test" ".notasock" in
  (match Server.Loop.listen_unix path with
  | exception Failure _ -> ()
  | fd ->
      Unix.close fd;
      Alcotest.fail "listen_unix must refuse a regular file");
  Alcotest.(check bool) "regular file untouched" true (Sys.file_exists path);
  Sys.remove path

let test_e2e_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqa-test-%d.sock" (Unix.getpid ()))
  in
  let loop = Server.Loop.create (Server.Loop.listen_unix path) in
  let fd = connect_client path in
  ignore (Server.Loop.step ~timeout:0.01 loop);
  Alcotest.(check int) "connection accepted" 1 (Server.Loop.connections loop);
  let load =
    roundtrip loop fd
      ("LOAD s1\n" ^ String.concat "\n" doc_lines ^ "\n.\n")
  in
  Alcotest.(check (list string)) "LOAD response"
    [ "OK loaded session=s1 facts=3 ics=1 queries=1" ]
    load;
  let q1 = roundtrip loop fd "QUERY s1 q\n" in
  Alcotest.(check (list string)) "QUERY response"
    [ "OK answers=2"; "1"; "2" ] q1;
  let q2 = roundtrip loop fd "QUERY s1 q\n" in
  Alcotest.(check (list string)) "identical QUERY replayed" q1 q2;
  (* The STATS hit counter proves the replay came from the cache. *)
  let stats = roundtrip loop fd "STATS\n" in
  Alcotest.(check bool) "warm QUERY hit the cache" true
    (List.mem "cache_hits 1" stats);
  (* A garbage line answers ERR without killing the connection. *)
  (match roundtrip loop fd "FROBNICATE the database\n" with
  | e :: _ -> Alcotest.(check string) "ERR status" "ERR" (String.sub e 0 3)
  | [] -> Alcotest.fail "no ERR response");
  let q3 = roundtrip loop fd "QUERY s1 q\n" in
  Alcotest.(check (list string)) "connection survives ERR" q1 q3;
  (match roundtrip loop fd "CLOSE s1\n" with
  | [ "OK closed s1" ] -> ()
  | other -> Alcotest.fail ("CLOSE: " ^ String.concat "|" other));
  (match roundtrip loop fd "QUERY s1 q\n" with
  | e :: _ when String.length e >= 3 && String.sub e 0 3 = "ERR" -> ()
  | _ -> Alcotest.fail "closed session must be gone");
  ignore (roundtrip loop fd "QUIT\n");
  (* The server closes its side once QUIT's response is flushed. *)
  let rec drain tries =
    if tries > 2000 then Alcotest.fail "connection not closed after QUIT";
    ignore (Server.Loop.step ~timeout:0.01 loop);
    if Server.Loop.connections loop > 0 then drain (tries + 1)
  in
  drain 0;
  Unix.close fd;
  Unix.unlink path

(* ---- ANALYZE memoization across UPDATE / re-LOAD -------------------- *)

let test_analyze_invalidation () =
  let h = Server.Handler.create () in
  load_session h "s1";
  let m = Server.Handler.metrics h in
  let a1 = dispatch_line h "ANALYZE s1" in
  Alcotest.(check bool) "first ANALYZE ok" true (a1.P.status = `Ok);
  Alcotest.(check int) "analyze cached" 1 (Server.Handler.cache_length h);
  ignore (dispatch_line h "ANALYZE s1");
  Alcotest.(check int) "second ANALYZE is a hit" 1 (Server.Metrics.hits m);
  (* UPDATE must drop the memoized analysis: a changed instance cannot
     serve the stale entry. *)
  let u = dispatch_line h "UPDATE s1 add T(3, 7)" in
  Alcotest.(check bool) "update ok" true (u.P.status = `Ok);
  Alcotest.(check int) "analysis entry dropped" 0
    (Server.Handler.cache_length h);
  ignore (dispatch_line h "ANALYZE s1");
  Alcotest.(check int) "post-UPDATE ANALYZE recomputes" 1
    (Server.Metrics.hits m);
  Alcotest.(check int) "post-UPDATE ANALYZE is a miss" 2
    (Server.Metrics.misses m)

let test_analyze_reload_schema_change () =
  (* Same facts, ICs and queries — only the schema differs (an extra
     attribute name on a declared relation never mentioned by a row).
     The digest must still change, or a re-LOAD could replay the old
     session's memoized analysis. *)
  let doc_of lines =
    Cqa.Parse.document_of_string (String.concat "\n" lines)
  in
  let base = [ "relation T(k, v)"; "row T(1, 2)"; "key T(k)"; "query q(X) :- T(X, Y)" ] in
  let with_extra =
    [ "relation T(k, v)"; "relation Extra(e)"; "row T(1, 2)"; "key T(k)";
      "query q(X) :- T(X, Y)" ]
  in
  Alcotest.(check bool) "schema feeds the session digest" false
    (String.equal
       (Server.Session.digest_of (doc_of base))
       (Server.Session.digest_of (doc_of with_extra)));
  (* End to end: re-LOAD with the changed schema recomputes ANALYZE. *)
  let h = Server.Handler.create () in
  let m = Server.Handler.metrics h in
  (match Server.Handler.dispatch h ~payload:base (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head));
  ignore (dispatch_line h "ANALYZE s1");
  (match Server.Handler.dispatch h ~payload:with_extra (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("re-LOAD failed: " ^ head));
  ignore (dispatch_line h "ANALYZE s1");
  Alcotest.(check int) "no stale hit across re-LOAD" 0 (Server.Metrics.hits m);
  Alcotest.(check int) "both ANALYZEs computed" 2 (Server.Metrics.misses m)

(* ---- EXPLAIN plan section ------------------------------------------- *)

let hard_doc_lines =
  [
    "relation R(a, b)";
    "relation S(c, d)";
    "row R(1, 10)";
    "row R(1, 11)";
    "row S(7, 10)";
    "row S(8, 11)";
    "key R(a)";
    "key S(c)";
    "query hard(X) :- R(X, Y), S(Z, Y)";
  ]

let test_explain_always_shows_plan () =
  let h = Server.Handler.create () in
  (match Server.Handler.dispatch h ~payload:hard_doc_lines (P.Load "s1") with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head));
  let has body sub =
    List.exists
      (fun line ->
        Str.string_match (Str.regexp (".*" ^ Str.quote sub ^ ".*")) line 0)
      body
  in
  (* method=auto on the acyclic-but-not-C-forest pattern: the plan names
     the Datalog branch and the classifier's verdict. *)
  let e = dispatch_line h "EXPLAIN s1 hard" in
  Alcotest.(check bool) "explain ok" true (e.P.status = `Ok);
  Alcotest.(check bool) "plan section" true (has e.P.body "-- plan");
  Alcotest.(check bool) "branch line" true
    (has e.P.body "branch datalog_rewriting");
  Alcotest.(check bool) "verdict line" true
    (has e.P.body "verdict L_datalog_rewritable");
  (* A forced method reports its own branch, same verdict. *)
  let e2 = dispatch_line h "EXPLAIN s1 hard method=enum" in
  Alcotest.(check bool) "forced branch" true
    (has e2.P.body "branch repair_enumeration");
  Alcotest.(check bool) "forced still shows verdict" true
    (has e2.P.body "verdict L_datalog_rewritable");
  (* Explicit method=sat and method=datalog round-trip through QUERY. *)
  let q = dispatch_line h "QUERY s1 hard method=sat" in
  Alcotest.(check bool) "method=sat ok" true (q.P.status = `Ok);
  Alcotest.(check (list string)) "certain answer" [ "1" ] q.P.body;
  let q2 = dispatch_line h "QUERY s1 hard method=datalog" in
  Alcotest.(check bool) "method=datalog ok" true (q2.P.status = `Ok);
  Alcotest.(check (list string)) "datalog certain answer" [ "1" ] q2.P.body

let suite =
  [
    Alcotest.test_case "lru eviction order and capacity" `Quick
      test_lru_eviction;
    Alcotest.test_case "lru overwrite promotes" `Quick test_lru_overwrite;
    Alcotest.test_case "lru remove and clear" `Quick test_lru_remove_clear;
    Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
    Alcotest.test_case "metrics counters and render" `Quick test_metrics;
    Alcotest.test_case "protocol parse ok and errors" `Quick
      test_protocol_parse;
    Alcotest.test_case "cache hit then UPDATE invalidates" `Quick
      test_handler_cache_and_invalidation;
    Alcotest.test_case "re-LOAD with redefined query misses cache" `Quick
      test_handler_reload_redefines_query;
    Alcotest.test_case "UCQ with rewriting method answers ERR" `Quick
      test_handler_ucq_method_mismatch;
    Alcotest.test_case "listen_unix refuses non-socket paths" `Quick
      test_listen_unix_refuses_non_socket;
    Alcotest.test_case "equal instances share cache entries" `Quick
      test_handler_shared_cache_across_sessions;
    Alcotest.test_case "repairs, measure, check" `Quick
      test_handler_repairs_measure_check;
    Alcotest.test_case "ERR responses keep the session alive" `Quick
      test_handler_errors_keep_session;
    Alcotest.test_case "TRACE toggles the global sink" `Quick test_trace_toggle;
    Alcotest.test_case "EXPLAIN shows the enum/rewriting cost shift" `Quick
      test_explain_cost_shift;
    Alcotest.test_case "EXPLAIN reports cache provenance read-only" `Quick
      test_explain_cache_provenance;
    Alcotest.test_case "long bodies truncate with a marker" `Quick
      test_response_truncation;
    Alcotest.test_case "STATS renders solver counters" `Quick
      test_stats_includes_solver_counters;
    Alcotest.test_case "end-to-end socket round-trip" `Quick test_e2e_socket;
    Alcotest.test_case "ANALYZE memo invalidates on UPDATE" `Quick
      test_analyze_invalidation;
    Alcotest.test_case "ANALYZE memo invalidates on schema re-LOAD" `Quick
      test_analyze_reload_schema_change;
    Alcotest.test_case "EXPLAIN always includes plan branch and verdict" `Quick
      test_explain_always_shows_plan;
  ]
