(* Clausal forms from formulas, UCQ engines, SAT differential testing. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module P = Workload.Paper
open Logic

let check = Alcotest.check
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

(* --- Clause.of_formula / Ic.of_formula --- *)

let test_clause_of_formula_key () =
  (* ∀x,y,z (E(x,y) ∧ E(x,z) → y = z) — the key sentence of Example 3.4. *)
  let f =
    Formula.forall [ "x"; "y"; "z" ]
      (Formula.Implies
         ( Formula.And
             ( Formula.Atom (Atom.make "Employee" [ x; y ]),
               Formula.Atom (Atom.make "Employee" [ x; z ]) ),
           Formula.Cmp (Cmp.eq y z) ))
  in
  match Clause.of_formula f with
  | Some [ c ] ->
      check Alcotest.int "three literals" 3 (List.length c.Clause.literals);
      (* The clause must agree with the formula on the dirty instance. *)
      check Alcotest.bool "clause violated like the formula" false
        (Clause.holds P.Employee.instance c);
      check Alcotest.bool "formula violated" false
        (Formula.holds P.Employee.instance f)
  | _ -> Alcotest.fail "expected a single clause"

let test_clause_of_formula_conjunction () =
  (* A conjunction of two denials yields two clauses. *)
  let d1 = Formula.Not (Formula.Exists ([ "x" ], Formula.Atom (Atom.make "A" [ x ]))) in
  let d2 =
    Formula.Not
      (Formula.Exists
         ( [ "x" ],
           Formula.And
             (Formula.Atom (Atom.make "B" [ x ]), Formula.Atom (Atom.make "C" [ x ]))
         ))
  in
  match Clause.of_formula (Formula.And (d1, d2)) with
  | Some cs -> check Alcotest.int "two clauses" 2 (List.length cs)
  | None -> Alcotest.fail "clausal form exists"

let test_clause_of_formula_rejects_existential () =
  (* ∀x (R(x) → ∃y S(x,y)) has no clausal form over the schema. *)
  let f =
    Formula.forall [ "x" ]
      (Formula.Implies
         ( Formula.Atom (Atom.make "R" [ x ]),
           Formula.Exists ([ "y" ], Formula.Atom (Atom.make "S" [ x; y ])) ))
  in
  check Alcotest.bool "no clausal form" true (Clause.of_formula f = None)

let test_clause_roundtrip () =
  (* to_formula then of_formula recovers the clause. *)
  let c =
    Clause.make
      [
        Clause.Neg (Atom.make "S" [ x ]);
        Clause.Pos (Atom.make "T" [ x ]);
        Clause.Builtin (Cmp.neq x (Term.int 0));
      ]
  in
  match Clause.of_formula (Clause.to_formula c) with
  | Some [ c' ] ->
      check Alcotest.int "same literal count" 3 (List.length c'.Clause.literals)
  | _ -> Alcotest.fail "roundtrip failed"

let test_ic_of_formula () =
  (* The κ sentence becomes a single denial equivalent to the original. *)
  let f =
    Formula.Not
      (Formula.Exists
         ( [ "x"; "y" ],
           Formula.conj
             [
               Formula.Atom (Atom.make "S" [ x ]);
               Formula.Atom (Atom.make "R" [ x; y ]);
               Formula.Atom (Atom.make "S" [ y ]);
             ] ))
  in
  match Constraints.Ic.of_formula ~name:"kappa_f" f with
  | Some [ ic ] ->
      check Alcotest.bool "violated like kappa" false
        (Constraints.Ic.holds P.Denial.instance P.Denial.schema ic);
      let repairs =
        Repairs.S_repair.enumerate P.Denial.instance P.Denial.schema [ ic ]
      in
      check Alcotest.int "same three repairs" 3 (List.length repairs)
  | _ -> Alcotest.fail "expected one denial"

let test_ic_of_formula_rejects_generating () =
  let f =
    Formula.forall [ "x" ]
      (Formula.Implies
         ( Formula.Atom (Atom.make "R" [ x ]),
           Formula.Atom (Atom.make "S" [ x ]) ))
  in
  check Alcotest.bool "generating dependency rejected" true
    (Constraints.Ic.of_formula f = None)

(* --- UCQ consistent answers --- *)

let test_ucq_engine () =
  (* Names employed, or anyone earning over 6 — over the dirty Employee. *)
  let q1 =
    Cq.make ~name:"names" [ x ] [ Atom.make "Employee" [ x; y ] ]
  in
  let q2 =
    Cq.make ~name:"rich" ~comps:[ Cmp.make Cmp.Gt y (Term.int 6) ] [ x ]
      [ Atom.make "Employee" [ x; y ] ]
  in
  let u = Ucq.make [ q1; q2 ] in
  let eng =
    Cqa.Engine.create ~schema:P.Employee.schema ~ics:[ P.Employee.key ]
      P.Employee.instance
  in
  let enum = Cqa.Engine.consistent_answers_ucq eng u in
  let asp = Cqa.Engine.consistent_answers_ucq ~method_:`Asp eng u in
  check
    Alcotest.(list (list string))
    "all three names"
    [ [ "page" ]; [ "smith" ]; [ "stowe" ] ]
    (List.map (List.map Value.to_string) enum);
  check Alcotest.bool "ASP agrees" true (enum = asp)

let test_ucq_gains_over_cq () =
  (* Ex 3.3 flavour: "page earns 5 or page earns 8" is certain as a UCQ
     even though neither disjunct is. *)
  let earns s =
    Cq.make ~name:(Printf.sprintf "earns%d" s) []
      [ Atom.make "Employee" [ Term.str "page"; Term.int s ] ]
  in
  let u = Ucq.make [ earns 5; earns 8 ] in
  let eng =
    Cqa.Engine.create ~schema:P.Employee.schema ~ics:[ P.Employee.key ]
      P.Employee.instance
  in
  (* Boolean UCQ: certain iff the empty tuple is an answer. *)
  check Alcotest.int "disjunction certain" 1
    (List.length (Cqa.Engine.consistent_answers_ucq eng u));
  let single_eng_answer q =
    List.length
      (Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)
  in
  check Alcotest.int "earns5 alone uncertain" 0 (single_eng_answer (earns 5));
  check Alcotest.int "earns8 alone uncertain" 0 (single_eng_answer (earns 8))

(* --- SAT differential vs brute force --- *)

let brute_force_models nvars clauses =
  let satisfied assignment =
    List.for_all
      (fun clause ->
        List.exists
          (fun lit ->
            let v = abs lit in
            if lit > 0 then assignment.(v) else not assignment.(v))
          clause)
      clauses
  in
  let models = ref [] in
  for mask = 0 to (1 lsl nvars) - 1 do
    let assignment = Array.make (nvars + 1) false in
    for v = 1 to nvars do
      assignment.(v) <- mask land (1 lsl (v - 1)) <> 0
    done;
    if satisfied assignment then models := assignment :: !models
  done;
  !models

let arb_cnf =
  QCheck.make
    QCheck.Gen.(
      let lit = map (fun (v, s) -> if s then v else -v) (pair (int_range 1 5) bool) in
      list_size (int_range 0 8) (list_size (int_range 1 3) lit))
    ~print:(fun clauses ->
      String.concat " & "
        (List.map
           (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
           clauses))

let prop_sat_differential =
  QCheck.Test.make ~count:200 ~name:"DPLL model count = brute force" arb_cnf
    (fun clauses ->
      let cnf = Sat.Cnf.create () in
      Sat.Cnf.reserve cnf 5;
      List.iter (Sat.Cnf.add_clause cnf) clauses;
      Sat.Dpll.count cnf = List.length (brute_force_models 5 clauses))

let prop_sat_minimize_differential =
  QCheck.Test.make ~count:200 ~name:"DPLL minimize = brute force minimum"
    arb_cnf
    (fun clauses ->
      let cnf = Sat.Cnf.create () in
      Sat.Cnf.reserve cnf 5;
      List.iter (Sat.Cnf.add_clause cnf) clauses;
      let soft = [ 1; 2; 3; 4; 5 ] in
      let brute =
        brute_force_models 5 clauses
        |> List.map (fun m ->
               List.length (List.filter (fun v -> m.(v)) soft))
        |> List.fold_left min max_int
      in
      match Sat.Dpll.minimize ~soft cnf with
      | None -> brute = max_int
      | Some (cost, _) -> cost = brute)

let suite =
  [
    Alcotest.test_case "clause of key sentence" `Quick test_clause_of_formula_key;
    Alcotest.test_case "clauses of a conjunction" `Quick
      test_clause_of_formula_conjunction;
    Alcotest.test_case "existential formulas rejected" `Quick
      test_clause_of_formula_rejects_existential;
    Alcotest.test_case "clause round trip" `Quick test_clause_roundtrip;
    Alcotest.test_case "Ic.of_formula builds working denials" `Quick
      test_ic_of_formula;
    Alcotest.test_case "Ic.of_formula rejects generating deps" `Quick
      test_ic_of_formula_rejects_generating;
    Alcotest.test_case "UCQ consistent answers" `Quick test_ucq_engine;
    Alcotest.test_case "UCQs gain over single CQs" `Quick test_ucq_gains_over_cq;
    QCheck_alcotest.to_alcotest prop_sat_differential;
    QCheck_alcotest.to_alcotest prop_sat_minimize_differential;
  ]
