module Cnf = Sat.Cnf
module Dpll = Sat.Dpll
module Hs = Sat.Hitting_set

let check = Alcotest.check

let test_sat_simple () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
  Cnf.add_clause cnf [ a; b ];
  Cnf.add_clause cnf [ -a ];
  (match Dpll.solve cnf with
  | None -> Alcotest.fail "satisfiable"
  | Some m ->
      check Alcotest.bool "a false" false m.(a);
      check Alcotest.bool "b true" true m.(b));
  Cnf.add_clause cnf [ -b ];
  check Alcotest.bool "now unsat" false (Dpll.satisfiable cnf)

let test_empty_clause () =
  let cnf = Cnf.create () in
  Cnf.add_clause cnf [];
  check Alcotest.bool "empty clause unsat" false (Dpll.satisfiable cnf)

let test_assumptions () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
  Cnf.add_clause cnf [ a; b ];
  check Alcotest.bool "assume -a -b conflicts" false
    (Dpll.satisfiable ~assumptions:[ -a; -b ] cnf);
  check Alcotest.bool "assume -a ok" true (Dpll.satisfiable ~assumptions:[ -a ] cnf)

let test_enumerate () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
  Cnf.add_clause cnf [ a; b ];
  let models = Dpll.enumerate cnf in
  check Alcotest.int "three models of a∨b" 3 (List.length models);
  let proj = Dpll.enumerate ~project:[ a ] cnf in
  check Alcotest.int "two projections on a" 2 (List.length proj);
  let limited = Dpll.enumerate ~limit:1 cnf in
  check Alcotest.int "limit respected" 1 (List.length limited)

let test_enumerate_count_pigeons () =
  (* 3 pigeons, 3 holes, exactly-one encodings: 6 permutation models. *)
  let cnf = Cnf.create () in
  let var = Array.init 3 (fun _ -> Array.init 3 (fun _ -> Cnf.fresh cnf)) in
  for p = 0 to 2 do
    Cnf.add_clause cnf [ var.(p).(0); var.(p).(1); var.(p).(2) ];
    for h = 0 to 2 do
      for h' = h + 1 to 2 do
        Cnf.add_clause cnf [ -var.(p).(h); -var.(p).(h') ]
      done
    done
  done;
  for h = 0 to 2 do
    for p = 0 to 2 do
      for p' = p + 1 to 2 do
        Cnf.add_clause cnf [ -var.(p).(h); -var.(p').(h) ]
      done
    done
  done;
  check Alcotest.int "6 permutations" 6 (Dpll.count cnf)

let test_minimize () =
  let cnf = Cnf.create () in
  let vs = List.init 4 (fun _ -> Cnf.fresh cnf) in
  (match vs with
  | [ a; b; c; d ] ->
      Cnf.add_clause cnf [ a; b ];
      Cnf.add_clause cnf [ b; c ];
      Cnf.add_clause cnf [ c; d ];
      (match Dpll.minimize ~soft:vs cnf with
      | None -> Alcotest.fail "sat"
      | Some (cost, m) ->
          check Alcotest.int "vertex cover of path is 2" 2 cost;
          (* Any cover of size 2 is fine ({b,c} or {b,d}). *)
          check Alcotest.bool "model covers all edges" true
            ((m.(a) || m.(b)) && (m.(b) || m.(c)) && (m.(c) || m.(d))))
  | _ -> assert false)

let test_minimize_zero () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
  Cnf.add_clause cnf [ a; -b ];
  match Dpll.minimize ~soft:[ a; b ] cnf with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "all-false model exists"

let sorted l = List.sort compare l

let test_hitting_minimal () =
  (* Figure 1's hypergraph: vertices A=1 B=2 C=3 D=4 E=5; edges {B,E},
     {B,C,D}, {A,C}. *)
  let edges = [ [ 2; 5 ]; [ 2; 3; 4 ]; [ 1; 3 ] ] in
  let hss = List.map sorted (Hs.minimal edges) |> sorted in
  check
    Alcotest.(list (list int))
    "minimal hitting sets"
    (sorted [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 5 ]; [ 1; 4; 5 ] ])
    hss;
  List.iter
    (fun h -> check Alcotest.bool "each is minimal" true (Hs.is_minimal_hitting edges h))
    hss

let test_hitting_minimum () =
  let edges = [ [ 2; 5 ]; [ 2; 3; 4 ]; [ 1; 3 ] ] in
  (match Hs.minimum edges with
  | None -> Alcotest.fail "hittable"
  | Some h -> check Alcotest.int "minimum size 2" 2 (List.length h));
  (* The paper's Example 4.1: exactly three C-repairs (D2, D3, D4). *)
  check Alcotest.int "three minimum hitting sets" 3 (List.length (Hs.minimum_all edges))

let test_hitting_edge_cases () =
  check Alcotest.(list (list int)) "no edges: empty hs" [ [] ] (Hs.minimal []);
  check Alcotest.(option (list int)) "no edges minimum" (Some []) (Hs.minimum []);
  check Alcotest.(list (list int)) "empty edge: unhittable" [] (Hs.minimal [ [] ]);
  check Alcotest.(option (list int)) "empty edge minimum" None (Hs.minimum [ [ 1 ]; [] ])

let prop_minimal_hitting_sets_are_minimal =
  QCheck.Test.make ~count:200 ~name:"minimal hitting sets hit and are minimal"
    QCheck.(
      list_of_size (Gen.int_range 1 5)
        (list_of_size (Gen.int_range 1 4) (int_range 1 8)))
    (fun edges ->
      let hss = Hs.minimal edges in
      List.for_all (fun h -> Hs.is_minimal_hitting edges h) hss)

let prop_minimum_le_minimal =
  QCheck.Test.make ~count:200 ~name:"minimum size is the least minimal size"
    QCheck.(
      list_of_size (Gen.int_range 1 5)
        (list_of_size (Gen.int_range 1 4) (int_range 1 8)))
    (fun edges ->
      match Hs.minimum edges with
      | None -> Hs.minimal edges = []
      | Some h ->
          let sizes = List.map List.length (Hs.minimal edges) in
          List.length h = List.fold_left min max_int sizes)

let suite =
  [
    Alcotest.test_case "basic solving" `Quick test_sat_simple;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "model enumeration" `Quick test_enumerate;
    Alcotest.test_case "pigeonhole permutations" `Quick test_enumerate_count_pigeons;
    Alcotest.test_case "branch-and-bound minimization" `Quick test_minimize;
    Alcotest.test_case "zero-cost minimization" `Quick test_minimize_zero;
    Alcotest.test_case "minimal hitting sets (Fig 1)" `Quick test_hitting_minimal;
    Alcotest.test_case "minimum hitting sets (Fig 1)" `Quick test_hitting_minimum;
    Alcotest.test_case "hitting set edge cases" `Quick test_hitting_edge_cases;
    QCheck_alcotest.to_alcotest prop_minimal_hitting_sets_are_minimal;
    QCheck_alcotest.to_alcotest prop_minimum_le_minimal;
  ]
