module Value = Relational.Value
open Logic
open Ontology

let check = Alcotest.check
let rows_to_strings rows = List.map (List.map Value.to_string) rows

(* Professors are faculty; students and faculty are disjoint; a person
   heads at most one department. *)
let tbox =
  [
    Subsumed (Atomic "Prof", Atomic "Faculty");
    Disjoint (Atomic "Student", Atomic "Faculty");
    Functional "headOf";
    Subsumed (Exists "teaches", Atomic "Teacher");
  ]

let abox =
  [
    Concept_of ("Prof", "ann");
    Concept_of ("Student", "ann");
    (* inconsistent with the above *)
    Concept_of ("Student", "bob");
    Role_of ("headOf", "ann", "cs");
    Role_of ("headOf", "ann", "math");
    (* functional conflict *)
    Role_of ("teaches", "carl", "db");
  ]

let kb = make ~tbox ~abox

let test_conflicts () =
  check Alcotest.bool "inconsistent" false (is_consistent kb);
  check Alcotest.int "two binary conflicts" 2 (List.length (conflicts kb));
  check Alcotest.int "four repairs" 4 (List.length (repairs kb))

let test_saturation () =
  let saturated = saturate kb [ Concept_of ("Prof", "ann") ] in
  check Alcotest.bool "Faculty(ann) derived" true
    (List.mem (Concept_of ("Faculty", "ann")) saturated);
  let from_role = saturate kb [ Role_of ("teaches", "carl", "db") ] in
  check Alcotest.bool "Teacher(carl) derived from ∃teaches" true
    (List.mem (Concept_of ("Teacher", "carl")) from_role)

let q_student =
  Cq.make ~name:"students" [ Term.var "x" ]
    [ Atom.make "Student" [ Term.var "x" ] ]

let test_ar_semantics () =
  let rows = answers kb AR q_student in
  (* bob survives every repair; ann's Student assertion is deleted in the
     repairs that keep Prof(ann). *)
  check Alcotest.(list (list string)) "bob only" [ [ "bob" ] ] (rows_to_strings rows)

let test_brave_semantics () =
  let rows = answers kb Brave q_student in
  check
    Alcotest.(list (list string))
    "ann bravely a student"
    [ [ "ann" ]; [ "bob" ] ]
    (rows_to_strings rows)

let test_iar_semantics () =
  let rows = answers kb IAR q_student in
  check Alcotest.(list (list string)) "IAR ⊆ AR" [ [ "bob" ] ] (rows_to_strings rows);
  (* Faculty(ann) holds in some repairs only: neither IAR nor AR. *)
  let q_fac =
    Cq.make ~name:"faculty" [ Term.var "x" ] [ Atom.make "Faculty" [ Term.var "x" ] ]
  in
  check Alcotest.int "no IAR faculty" 0 (List.length (answers kb IAR q_fac));
  check Alcotest.int "no AR faculty" 0 (List.length (answers kb AR q_fac));
  check Alcotest.int "brave faculty" 1 (List.length (answers kb Brave q_fac))

let test_functional_role () =
  let q = Cq.make ~name:"heads" [ Term.var "x"; Term.var "y" ]
      [ Atom.make "headOf" [ Term.var "x"; Term.var "y" ] ]
  in
  check Alcotest.int "no certain headship" 0 (List.length (answers kb AR q));
  check Alcotest.int "two brave headships" 2 (List.length (answers kb Brave q))

let test_entails () =
  let bq body = Cq.make ~name:"b" [] body in
  check Alcotest.bool "AR: some student exists" true
    (entails kb AR (bq [ Atom.make "Student" [ Term.var "x" ] ]));
  check Alcotest.bool "AR: teacher derived" true
    (entails kb AR (bq [ Atom.make "Teacher" [ Term.var "x" ] ]));
  check Alcotest.bool "IAR weaker than brave" true
    (entails kb Brave (bq [ Atom.make "Faculty" [ Term.var "x" ] ]))

let test_consistent_kb () =
  let clean = make ~tbox ~abox:[ Concept_of ("Student", "bob") ] in
  check Alcotest.bool "consistent" true (is_consistent clean);
  check Alcotest.int "single repair = abox" 1 (List.length (repairs clean));
  check Alcotest.int "AR = plain answers" 1
    (List.length (answers clean AR q_student))

let test_inverse_functional () =
  let kb2 =
    make
      ~tbox:[ Inverse_functional "advises" ]
      ~abox:
        [
          Role_of ("advises", "ann", "carl");
          Role_of ("advises", "bob", "carl");
        ]
  in
  check Alcotest.bool "conflict on shared advisee" false (is_consistent kb2);
  check Alcotest.int "two repairs" 2 (List.length (repairs kb2))

let suite =
  [
    Alcotest.test_case "conflicts and repairs" `Quick test_conflicts;
    Alcotest.test_case "saturation" `Quick test_saturation;
    Alcotest.test_case "AR semantics" `Quick test_ar_semantics;
    Alcotest.test_case "brave semantics" `Quick test_brave_semantics;
    Alcotest.test_case "IAR semantics" `Quick test_iar_semantics;
    Alcotest.test_case "functional roles" `Quick test_functional_role;
    Alcotest.test_case "Boolean entailment" `Quick test_entails;
    Alcotest.test_case "consistent KB" `Quick test_consistent_kb;
    Alcotest.test_case "inverse functionality" `Quick test_inverse_functional;
  ]
