module Value = Relational.Value
module Instance = Relational.Instance
module Tvl = Relational.Tvl
open Logic

let check = Alcotest.check
let vrows = Alcotest.(list (list string))

let rows_to_strings rows = List.map (List.map Value.to_string) rows

let supply = Paper_examples.Supply.instance

let test_cq_projection () =
  (* Q(z): ∃x∃y Supply(x,y,z) — Example 2.1's query against the dirty db. *)
  let q =
    Cq.make [ Term.var "z" ]
      [ Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ] ]
  in
  check vrows "all three items"
    [ [ "I1" ]; [ "I2" ]; [ "I3" ] ]
    (rows_to_strings (Cq.answers q supply))

let test_cq_join_and_rewriting () =
  (* Q'(z): ∃x∃y (Supply(x,y,z) ∧ Articles(z)) — the rewritten query (4)
     returns the consistent answers from the inconsistent db. *)
  let q =
    Cq.make [ Term.var "z" ]
      [
        Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ];
        Atom.make "Articles" [ Term.var "z" ];
      ]
  in
  check vrows "I1 and I2 only"
    [ [ "I1" ]; [ "I2" ] ]
    (rows_to_strings (Cq.answers q supply))

let test_cq_comparisons () =
  let emp = Paper_examples.Employee.instance in
  let q =
    Cq.make
      ~comps:[ Cmp.make Cmp.Gt (Term.var "s") (Term.int 4) ]
      [ Term.var "n" ]
      [ Atom.make "Employee" [ Term.var "n"; Term.var "s" ] ]
  in
  check vrows "salaries above 4" [ [ "page" ]; [ "stowe" ] ]
    (rows_to_strings (Cq.answers q emp))

let test_cq_boolean () =
  let q = Paper_examples.Denial.q in
  check Alcotest.bool "kappa's query holds" true
    (Cq.holds q Paper_examples.Denial.instance)

let test_cq_null_join () =
  let schema =
    Relational.Schema.of_list [ ("P", [ "k" ]); ("Q", [ "k" ]) ]
  in
  let db =
    Instance.of_rows schema
      [ ("P", [ [ Value.Null ] ]); ("Q", [ [ Value.Null ] ]) ]
  in
  let q =
    Cq.make [] [ Atom.make "P" [ Term.var "x" ]; Atom.make "Q" [ Term.var "x" ] ]
  in
  check Alcotest.bool "NULL does not join" false (Cq.holds q db);
  let single = Cq.make [] [ Atom.make "P" [ Term.var "x" ] ] in
  check Alcotest.bool "single occurrence matches NULL" true (Cq.holds single db)

let test_unify () =
  let a = Atom.make "R" [ Term.var "x"; Term.str "c" ] in
  let b = Atom.make "R" [ Term.str "d"; Term.var "y" ] in
  (match Unify.atoms a b with
  | None -> Alcotest.fail "should unify"
  | Some s ->
      check Alcotest.bool "x bound to d" true
        (Term.equal (Subst.apply_term s (Term.var "x")) (Term.str "d"));
      check Alcotest.bool "y bound to c" true
        (Term.equal (Subst.apply_term s (Term.var "y")) (Term.str "c")));
  let c = Atom.make "R" [ Term.str "e"; Term.var "y" ] in
  check Alcotest.bool "clashing constants do not unify" true
    (Unify.atoms b c = None);
  let d = Atom.make "R" [ Term.var "x"; Term.var "x" ] in
  let e = Atom.make "R" [ Term.str "u"; Term.str "w" ] in
  check Alcotest.bool "x cannot be both" true (Unify.atoms d e = None)

let test_formula_eval_rewritten_query () =
  (* Example 3.4's rewriting (6): Employee(x,y) ∧ ¬∃z (Employee(x,z) ∧ z≠y).
     Its classical answers from the dirty instance are the consistent
     answers. *)
  let emp = Paper_examples.Employee.instance in
  let f =
    Formula.And
      ( Formula.Atom (Atom.make "Employee" [ Term.var "x"; Term.var "y" ]),
        Formula.Not
          (Formula.Exists
             ( [ "z" ],
               Formula.And
                 ( Formula.Atom (Atom.make "Employee" [ Term.var "x"; Term.var "z" ]),
                   Formula.Cmp (Cmp.neq (Term.var "z") (Term.var "y")) ) )) )
  in
  let rows = Formula.answers emp ~free:[ "x"; "y" ] f in
  check vrows "smith and stowe survive"
    [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
    (rows_to_strings rows)

let test_formula_quantifiers () =
  let emp = Paper_examples.Employee.instance in
  let all_have_salary =
    Formula.Forall
      ( [ "x"; "y" ],
        Formula.Implies
          ( Formula.Atom (Atom.make "Employee" [ Term.var "x"; Term.var "y" ]),
            Formula.Exists
              ( [ "z" ],
                Formula.Atom (Atom.make "Employee" [ Term.var "x"; Term.var "z" ]) ) ) )
  in
  check Alcotest.bool "trivial forall holds" true (Formula.holds emp all_have_salary);
  let somebody_earns_9 =
    Formula.Exists
      ( [ "x" ],
        Formula.Atom (Atom.make "Employee" [ Term.var "x"; Term.int 9 ]) )
  in
  check Alcotest.bool "nobody earns 9" false (Formula.holds emp somebody_earns_9)

let test_formula_nnf () =
  let f =
    Formula.Not
      (Formula.Or
         ( Formula.Atom (Atom.make "R" [ Term.var "x" ]),
           Formula.Not (Formula.Cmp (Cmp.eq (Term.var "x") (Term.int 1))) ))
  in
  match Formula.nnf f with
  | Formula.And (Formula.Not (Formula.Atom _), Formula.Cmp c) ->
      check Alcotest.bool "negation absorbed into comparison" true
        (c.Cmp.op = Cmp.Eq)
  | _ -> Alcotest.fail "unexpected NNF shape"

let test_clause_and_residue_ind () =
  (* Example 2.2: residue of ID against the Supply atom is Articles(z). *)
  let clause =
    Clause.make
      [
        Clause.Neg (Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ]);
        Clause.Pos (Atom.make "Articles" [ Term.var "z" ]);
      ]
  in
  let atom = Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ] in
  match Residue.of_clause atom clause with
  | [ Formula.Atom a ] -> check Alcotest.string "residue Articles(z)" "Articles" a.Atom.rel
  | _ -> Alcotest.fail "expected single positive residue"

let test_clause_and_residue_key () =
  (* Example 3.4: residue of the key clause against Employee(x,y). *)
  let clause =
    Clause.make
      [
        Clause.Neg (Atom.make "Employee" [ Term.var "x"; Term.var "y" ]);
        Clause.Neg (Atom.make "Employee" [ Term.var "x"; Term.var "z" ]);
        Clause.Builtin (Cmp.eq (Term.var "y") (Term.var "z"));
      ]
  in
  let atom = Atom.make "Employee" [ Term.var "x"; Term.var "y" ] in
  let residues = Residue.of_clause atom clause in
  check Alcotest.int "two unifiable negative literals" 2 (List.length residues);
  (* Each residue, conjoined with the atom, must yield the consistent
     answers on the dirty Employee instance. *)
  let emp = Paper_examples.Employee.instance in
  List.iter
    (fun r ->
      let q = Formula.And (Formula.Atom atom, r) in
      let rows = Formula.answers emp ~free:[ "x"; "y" ] q in
      check vrows "consistent answers"
        [ [ "smith"; "3" ]; [ "stowe"; "7" ] ]
        (rows_to_strings rows))
    residues

let test_clause_holds () =
  let clause =
    Clause.make
      [
        Clause.Neg (Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ]);
        Clause.Pos (Atom.make "Articles" [ Term.var "z" ]);
      ]
  in
  check Alcotest.bool "ID violated on dirty db" false (Clause.holds supply clause)

let test_ucq () =
  let q1 =
    Cq.make [ Term.var "z" ]
      [ Atom.make "Articles" [ Term.var "z" ] ]
  in
  let q2 =
    Cq.make [ Term.var "z" ]
      [ Atom.make "Supply" [ Term.var "x"; Term.var "y"; Term.var "z" ] ]
  in
  let u = Ucq.make [ q1; q2 ] in
  check Alcotest.int "union of items" 3 (List.length (Ucq.answers u supply));
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Ucq.make: arity mismatch")
    (fun () -> ignore (Ucq.make [ q1; Cq.make [] [] ]))

let suite =
  [
    Alcotest.test_case "CQ projection" `Quick test_cq_projection;
    Alcotest.test_case "CQ join (rewritten query (4))" `Quick test_cq_join_and_rewriting;
    Alcotest.test_case "CQ comparisons" `Quick test_cq_comparisons;
    Alcotest.test_case "Boolean CQ" `Quick test_cq_boolean;
    Alcotest.test_case "NULL join semantics in CQs" `Quick test_cq_null_join;
    Alcotest.test_case "unification" `Quick test_unify;
    Alcotest.test_case "formula eval: rewritten key query (6)" `Quick
      test_formula_eval_rewritten_query;
    Alcotest.test_case "formula quantifiers" `Quick test_formula_quantifiers;
    Alcotest.test_case "NNF" `Quick test_formula_nnf;
    Alcotest.test_case "residue: inclusion dependency (Ex 2.2)" `Quick
      test_clause_and_residue_ind;
    Alcotest.test_case "residue: key constraint (Ex 3.4)" `Quick
      test_clause_and_residue_key;
    Alcotest.test_case "clause satisfaction" `Quick test_clause_holds;
    Alcotest.test_case "UCQ evaluation" `Quick test_ucq;
  ]
