(* Entity resolution, signal-based cleaning, ASP brute-force differential. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Tid = Relational.Tid
module Matching = Entity.Matching
module Signals = Cleaning.Signals
open Logic

let check = Alcotest.check
let v = Value.str

(* --- matching dependencies --- *)

let people_schema = Schema.of_list [ ("P", [ "name"; "phone"; "address" ]) ]

let people =
  Instance.of_rows people_schema
    [
      ( "P",
        [
          [ v "John Doe"; v "555-1234"; v "12 Main St" ];
          [ v "john doe"; v "555-1234"; v "12 Main Street" ];
          [ v "Jane Roe"; v "555-9999"; v "1 Elm St" ];
        ] );
    ]

(* Same phone and near-equal name → same address. *)
let md =
  {
    Matching.rel = "P";
    premise =
      [ (1, Matching.equal_similarity); (0, Matching.edit_similarity ~max_distance:2) ];
    identify = [ 2 ];
  }

let test_edit_distance () =
  check Alcotest.int "kitten/sitting" 3 (Matching.edit_distance "kitten" "sitting");
  check Alcotest.int "identity" 0 (Matching.edit_distance "abc" "abc");
  check Alcotest.int "empty" 3 (Matching.edit_distance "" "abc")

let test_md_chase () =
  check Alcotest.bool "unstable before" false (Matching.is_stable people [ md ]);
  let stable = Matching.chase people [ md ] in
  check Alcotest.bool "stable after" true (Matching.is_stable stable [ md ]);
  (* The two John Doe addresses merged (Prefer_first keeps tid 1's). *)
  let addresses =
    Instance.rows stable ~rel:"P"
    |> List.filter_map (fun r ->
           if Value.equal r.(1) (v "555-1234") then Some r.(2) else None)
    |> List.sort_uniq Value.compare
  in
  check Alcotest.int "one shared address" 1 (List.length addresses)

let test_md_policies () =
  let longest = Matching.chase ~policy:Matching.Prefer_longest people [ md ] in
  check Alcotest.bool "longest address chosen" true
    (List.exists
       (fun r -> Value.equal r.(2) (v "12 Main Street"))
       (Instance.rows longest ~rel:"P"))

let test_clusters () =
  let cs = Matching.clusters people [ md ] in
  check Alcotest.int "one duplicate cluster" 1 (List.length cs);
  check Alcotest.int "of two tuples" 2 (Tid.Set.cardinal (List.hd cs))

let test_resolve_with_key () =
  (* After merging, enforce one tuple per phone. *)
  let key = Constraints.Ic.key ~rel:"P" [ 1 ] in
  let resolved = Matching.resolve_with_key people people_schema ~mds:[ md ] ~key in
  check Alcotest.bool "some resolution exists" true (resolved <> []);
  List.iter
    (fun inst ->
      check Alcotest.bool "key holds" true
        (Constraints.Ic.holds inst people_schema key))
    resolved

let test_prefix_similarity () =
  check Alcotest.bool "prefix match" true
    (Matching.prefix_similarity 3 (v "Johnson") (v "JOHN"));
  check Alcotest.bool "prefix mismatch" false
    (Matching.prefix_similarity 3 (v "Johnson") (v "Jane"))

(* --- signal-based cleaning --- *)

let city_schema = Schema.of_list [ ("C", [ "zip"; "city"; "street" ]) ]

(* Two tuples agree that 10001 is NYC; one outlier says LA. *)
let city_db =
  Instance.of_rows city_schema
    [
      ( "C",
        [
          [ v "10001"; v "NYC"; v "a st" ];
          [ v "10001"; v "NYC"; v "b st" ];
          [ v "10001"; v "LA"; v "c st" ];
          [ v "90210"; v "LA"; v "d st" ];
        ] );
    ]

let zip_fd = Constraints.Ic.fd ~rel:"C" ~lhs:[ 0 ] ~rhs:[ 1 ]

let test_signals_suggest () =
  let suggestions = Signals.suggest city_db city_schema [ zip_fd ] in
  (* The 10001 block is 2 NYC vs 1 LA: block majority proposes NYC for the
     outlier cell. *)
  check Alcotest.bool "a suggestion exists" true (suggestions <> []);
  let s = List.hd suggestions in
  check Alcotest.bool "proposes NYC" true (Value.equal s.Signals.proposed (v "NYC"));
  check Alcotest.bool "targets the LA cell" true
    (Value.equal s.Signals.current (v "LA"))

let test_signals_apply () =
  let outcome = Signals.apply ~min_confidence:0.5 city_db city_schema [ zip_fd ] in
  check Alcotest.bool "consistent after" true outcome.Signals.consistent;
  check Alcotest.bool "something applied" true (outcome.Signals.applied <> [])

let test_signals_low_confidence_skipped () =
  (* An evenly split block gives no signal either way: each row's own value
     wins its local vote (self co-occurrence), so nothing is proposed and
     the violation is explicitly left unresolved for a human. *)
  let db =
    Instance.of_rows city_schema
      [ ("C", [ [ v "10001"; v "A"; v "x" ]; [ v "10001"; v "B"; v "y" ] ]) ]
  in
  let outcome = Signals.apply ~min_confidence:0.9 db city_schema [ zip_fd ] in
  check Alcotest.bool "nothing applied" true (outcome.Signals.applied = []);
  check Alcotest.bool "still inconsistent" false outcome.Signals.consistent

let test_signals_reject_denials () =
  Alcotest.check_raises "denial rejected"
    (Invalid_argument "Signals: unsupported constraint kappa") (fun () ->
      ignore
        (Signals.suggest Workload.Paper.Denial.instance Workload.Paper.Denial.schema
           [ Workload.Paper.Denial.kappa ]))

(* --- ASP brute-force differential --- *)

(* Random propositional programs over atoms p0..p3; stable models computed
   from the definition (all subsets; reduct; minimal-model check by brute
   force) must equal the engine's. *)

let atoms = [ "p0"; "p1"; "p2"; "p3" ]
let atom name = Atom.make name []
let fact name = Fact.make name []

type brule = { head : string list; pos : string list; neg : string list }

let gen_rule =
  QCheck.Gen.(
    let subset = map (List.filteri (fun i _ -> i < 2)) (shuffle_l atoms) in
    map3
      (fun h p n ->
        { head = List.filteri (fun i _ -> i < max 1 (List.length h)) h;
          pos = p; neg = n })
      (map (List.filteri (fun i _ -> i < 2)) (shuffle_l atoms))
      subset subset)

let arb_program =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 4) gen_rule)
    ~print:(fun rules ->
      String.concat "; "
        (List.map
           (fun r ->
             Printf.sprintf "%s :- %s, not %s"
               (String.concat "|" r.head)
               (String.concat "," r.pos)
               (String.concat "," r.neg))
           rules))

let to_syntax rules =
  Asp.Syntax.program
    (List.map
       (fun r ->
         Asp.Syntax.rule
           ~neg:(List.map atom r.neg)
           (List.map atom r.head)
           (List.map atom r.pos))
       rules)

let subsets l =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] l

let brute_stable rules =
  let satisfies m (h, p, n) =
    (not
       (List.for_all (fun a -> List.mem a m) p
       && List.for_all (fun a -> not (List.mem a m)) n))
    || List.exists (fun a -> List.mem a m) h
  in
  let is_model m rs = List.for_all (satisfies m) rs in
  let stable m =
    let reduct =
      List.filter_map
        (fun r ->
          if List.exists (fun a -> List.mem a m) r.neg then None
          else Some (r.head, r.pos, []))
        rules
    in
    is_model m (List.map (fun (h, p, n) -> (h, p, n)) reduct)
    && not
         (List.exists
            (fun m' ->
              List.length m' < List.length m
              && List.for_all (fun a -> List.mem a m) m'
              && is_model m' reduct)
            (subsets m))
  in
  List.filter stable (subsets atoms)
  |> List.map (List.sort compare)
  |> List.sort compare

let prop_asp_differential =
  QCheck.Test.make ~count:150 ~name:"stable models = brute-force definition"
    arb_program (fun rules ->
      let engine =
        Asp.Stable.models (to_syntax rules) []
        |> List.map (fun m ->
               Fact.Set.elements m
               |> List.map (fun (f : Fact.t) -> f.rel)
               |> List.sort compare)
        |> List.sort compare
      in
      engine = brute_stable rules)

let prop_shift_differential =
  QCheck.Test.make ~count:150 ~name:"shifted program agrees when HCF"
    arb_program (fun rules ->
      let program = to_syntax rules in
      if not (Asp.Shift.is_head_cycle_free program) then true
      else
        let norm models =
          models
          |> List.map (fun m ->
                 Fact.Set.elements m |> List.map Fact.to_string |> List.sort compare)
          |> List.sort compare
        in
        norm (Asp.Stable.models program [])
        = norm (Asp.Stable.models (Asp.Shift.program program) []))

let test_brute_sanity () =
  (* p :- not q; q :- not p gives {p} and {q} under the brute checker. *)
  let rules =
    [
      { head = [ "p0" ]; pos = []; neg = [ "p1" ] };
      { head = [ "p1" ]; pos = []; neg = [ "p0" ] };
    ]
  in
  check
    Alcotest.(list (list string))
    "two models"
    [ [ "p0" ]; [ "p1" ] ]
    (brute_stable rules);
  ignore (fact "p0")

let suite =
  [
    Alcotest.test_case "edit distance" `Quick test_edit_distance;
    Alcotest.test_case "MD chase merges duplicates" `Quick test_md_chase;
    Alcotest.test_case "MD resolution policies" `Quick test_md_policies;
    Alcotest.test_case "duplicate clusters" `Quick test_clusters;
    Alcotest.test_case "matching + key repairs ([59])" `Quick
      test_resolve_with_key;
    Alcotest.test_case "prefix similarity" `Quick test_prefix_similarity;
    Alcotest.test_case "signal suggestions (HoloClean-ish)" `Quick
      test_signals_suggest;
    Alcotest.test_case "signal apply" `Quick test_signals_apply;
    Alcotest.test_case "low confidence left to humans" `Quick
      test_signals_low_confidence_skipped;
    Alcotest.test_case "signals reject denials" `Quick test_signals_reject_denials;
    Alcotest.test_case "brute-force stable checker sanity" `Quick
      test_brute_sanity;
    QCheck_alcotest.to_alcotest prop_asp_differential;
    QCheck_alcotest.to_alcotest prop_shift_differential;
  ]
