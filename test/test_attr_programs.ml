(* Attribute-repair programs ([15]): stable models = minimal change sets. *)

module Instance = Relational.Instance
module Schema = Relational.Schema
module Value = Relational.Value
module Tid = Relational.Tid
module Attr_compile = Repair_programs.Attr_compile
module Attr_repair = Repairs.Attr_repair
module P = Workload.Paper

let check = Alcotest.check

let sets_as_strings sets =
  List.map
    (fun s ->
      Tid.Cell.Set.elements s |> List.map (Format.asprintf "%a" Tid.Cell.pp))
    sets
  |> List.sort compare

let test_ex44_change_sets () =
  let via_asp =
    Attr_compile.change_sets P.Denial.instance P.Denial.schema [ P.Denial.kappa ]
  in
  let via_hitting =
    Attr_repair.enumerate P.Denial.instance P.Denial.schema [ P.Denial.kappa ]
    |> List.map (fun (r : Attr_repair.t) -> r.changes)
  in
  check Alcotest.int "seven change sets" 7 (List.length via_asp);
  check
    Alcotest.(list (list string))
    "ASP = hitting-set engine"
    (sets_as_strings via_hitting)
    (sets_as_strings via_asp)

let test_repairs_consistent () =
  List.iter
    (fun (r : Attr_repair.t) ->
      check Alcotest.bool "repaired instance consistent" true
        (Repairs.Check.is_consistent r.repaired P.Denial.schema [ P.Denial.kappa ]))
    (Attr_compile.repairs P.Denial.instance P.Denial.schema [ P.Denial.kappa ])

let test_no_breakable_cells () =
  (* ¬∃x S(x) has no breakable cell: the rule's head is empty, i.e. a hard
     constraint, and there is no attribute repair. *)
  let schema = Schema.of_list [ ("S", [ "a" ]) ] in
  let db = Instance.of_rows schema [ ("S", [ [ Value.str "a" ] ]) ] in
  let dc =
    Constraints.Ic.denial ~name:"empty_s"
      [ Logic.Atom.make "S" [ Logic.Term.var "x" ] ]
  in
  check Alcotest.int "no stable model" 0
    (List.length (Attr_compile.change_sets db schema [ dc ]));
  check Alcotest.int "hitting-set engine agrees" 0
    (List.length (Attr_repair.enumerate db schema [ dc ]))

let test_consistent_instance () =
  let schema = Schema.of_list [ ("S", [ "a" ]) ] in
  let db = Instance.of_rows schema [ ("S", [ [ Value.str "a" ] ]) ] in
  let dc =
    Constraints.Ic.denial ~name:"no_b"
      [ Logic.Atom.make "S" [ Logic.Term.str "b" ] ]
  in
  match Attr_compile.change_sets db schema [ dc ] with
  | [ only ] -> check Alcotest.int "empty change set" 0 (Tid.Cell.Set.cardinal only)
  | sets -> Alcotest.failf "expected one empty change set, got %d" (List.length sets)

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 4) (pair (int_range 0 2) (int_range 0 2)))
        (list_size (int_range 0 3) (int_range 0 2)))
    ~print:(fun (rs, ss) ->
      Printf.sprintf "R=%s S=%s"
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) rs))
        (String.concat ";" (List.map string_of_int ss)))

let prop_asp_matches_hitting =
  QCheck.Test.make ~count:40 ~name:"attr-repair program = hitting-set engine"
    arb_db
    (fun (rs, ss) ->
      let label i = Value.str (Printf.sprintf "a%d" i) in
      let db =
        Instance.of_rows P.Denial.schema
          [
            ("R", List.map (fun (a, b) -> [ label a; label b ]) rs);
            ("S", List.map (fun a -> [ label a ]) ss);
          ]
      in
      let asp =
        Attr_compile.change_sets db P.Denial.schema [ P.Denial.kappa ]
      in
      let hitting =
        Attr_repair.enumerate db P.Denial.schema [ P.Denial.kappa ]
        |> List.map (fun (r : Attr_repair.t) -> r.changes)
        |> List.sort_uniq Tid.Cell.Set.compare
      in
      List.length asp = List.length hitting
      && List.for_all2 Tid.Cell.Set.equal asp hitting)

let suite =
  [
    Alcotest.test_case "Ex 4.4 change sets via ASP" `Quick test_ex44_change_sets;
    Alcotest.test_case "repairs are consistent" `Quick test_repairs_consistent;
    Alcotest.test_case "unbreakable violation: no repair" `Quick
      test_no_breakable_cells;
    Alcotest.test_case "consistent instance: empty change set" `Quick
      test_consistent_instance;
    QCheck_alcotest.to_alcotest prop_asp_matches_hitting;
  ]
