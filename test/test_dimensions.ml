open Dimensions.Dimension

let check = Alcotest.check

(* Product → Category → All, the classical sales dimension. *)
let s =
  schema
    ~categories:[ "Product"; "Category"; "All" ]
    ~edges:[ ("Product", "Category"); ("Category", "All") ]

let consistent_instance =
  {
    members =
      [ ("p1", "Product"); ("p2", "Product"); ("c1", "Category");
        ("c2", "Category"); ("all", "All") ];
    links = [ ("p1", "c1"); ("p2", "c2"); ("c1", "all"); ("c2", "all") ];
  }

(* p1 rolls up to both categories: non-strict. *)
let non_strict =
  {
    consistent_instance with
    links = [ ("p1", "c1"); ("p1", "c2"); ("p2", "c2"); ("c1", "all"); ("c2", "all") ];
  }

(* p2 has no category link: non-covering. *)
let non_covering =
  {
    consistent_instance with
    links = [ ("p1", "c1"); ("c1", "all"); ("c2", "all") ];
  }

let test_schema_validation () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Dimension.schema: cyclic hierarchy") (fun () ->
      ignore
        (schema ~categories:[ "A"; "B" ] ~edges:[ ("A", "B"); ("B", "A") ]));
  Alcotest.check_raises "unknown category"
    (Invalid_argument "Dimension.schema: unknown category in A->C") (fun () ->
      ignore (schema ~categories:[ "A"; "B" ] ~edges:[ ("A", "C") ]))

let test_rollup () =
  check
    Alcotest.(list string)
    "p1 rolls up to c1" [ "c1" ]
    (rollup s consistent_instance "p1" ~category:"Category");
  check
    Alcotest.(list string)
    "p1 reaches all" [ "all" ]
    (rollup s consistent_instance "p1" ~category:"All")

let test_violation_detection () =
  check Alcotest.bool "clean instance consistent" true
    (is_consistent s consistent_instance);
  check Alcotest.bool "non-strict flagged" false (is_consistent s non_strict);
  check Alcotest.int "one strictness violation" 1
    (List.length (strictness_violations s non_strict));
  check Alcotest.bool "non-covering flagged" false (is_consistent s non_covering);
  check
    Alcotest.(list (pair string string))
    "p2 misses Category"
    [ ("p2", "Category") ]
    (covering_violations s non_covering)

let test_strictness_repairs () =
  let rs = repairs s non_strict in
  (* Redirect p1's link to c1 onto c2, or the one to c2 onto c1. *)
  check Alcotest.int "two minimal repairs" 2 (List.length rs);
  List.iter
    (fun r ->
      check Alcotest.bool "repaired is consistent" true (is_consistent s r.repaired);
      check Alcotest.int "one reclassification" 1 (List.length r.changes))
    rs

let test_covering_repairs () =
  let rs = repairs s non_covering in
  (* Insert p2 → c1 or p2 → c2. *)
  check Alcotest.int "two minimal repairs" 2 (List.length rs);
  List.iter
    (fun r ->
      check Alcotest.bool "consistent" true (is_consistent s r.repaired);
      match r.changes with
      | [ { from_elt = "p2"; old_parent = None; new_parent = _ } ] -> ()
      | _ -> Alcotest.fail "expected a single link insertion for p2")
    rs

let test_consistent_needs_no_repair () =
  match repairs s consistent_instance with
  | [ r ] -> check Alcotest.int "no changes" 0 (List.length r.changes)
  | rs -> Alcotest.failf "expected identity repair, got %d" (List.length rs)

(* The diamond case of [44]: a product classified under a category that
   rolls up to the wrong top-level branch. *)
let diamond_schema =
  schema
    ~categories:[ "City"; "Region"; "Country"; "All" ]
    ~edges:
      [ ("City", "Region"); ("Region", "Country"); ("City", "Country");
        ("Country", "All") ]

let diamond =
  {
    members =
      [ ("nyc", "City"); ("east", "Region"); ("usa", "Country");
        ("canada", "Country"); ("all", "All") ];
    links =
      [ ("nyc", "east"); ("east", "usa"); ("nyc", "canada");
        ("usa", "all"); ("canada", "all") ];
  }

let test_diamond_strictness () =
  (* nyc reaches usa (via east) and canada (directly): non-strict. *)
  check Alcotest.bool "diamond is non-strict" false
    (is_consistent diamond_schema diamond);
  let rs = repairs diamond_schema diamond in
  check Alcotest.bool "repairs exist" true (rs <> []);
  List.iter
    (fun r ->
      check Alcotest.bool "consistent after repair" true
        (is_consistent diamond_schema r.repaired))
    rs

let suite =
  [
    Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "rollup" `Quick test_rollup;
    Alcotest.test_case "violation detection" `Quick test_violation_detection;
    Alcotest.test_case "strictness repairs" `Quick test_strictness_repairs;
    Alcotest.test_case "covering repairs" `Quick test_covering_repairs;
    Alcotest.test_case "consistent dimension: identity repair" `Quick
      test_consistent_needs_no_repair;
    Alcotest.test_case "diamond reclassification" `Quick test_diamond_strictness;
  ]
