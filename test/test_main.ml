let () =
  Alcotest.run "cqa"
    [
      ("relational", Test_relational.suite);
      ("logic", Test_logic.suite);
      ("sat", Test_sat.suite);
      ("cavsat", Test_cavsat.suite);
      ("constraints", Test_constraints.suite);
      ("repairs", Test_repairs.suite);
      ("rewriting", Test_rewriting.suite);
      ("datalog", Test_datalog.suite);
      ("asp", Test_asp.suite);
      ("repair_programs", Test_repair_programs.suite);
      ("causality", Test_causality.suite);
      ("integration", Test_integration.suite);
      ("cleaning+measures", Test_cleaning_measures.suite);
      ("engine", Test_engine.suite);
      ("further_repairs", Test_further_repairs.suite);
      ("further_misc", Test_further_misc.suite);
      ("attr_programs", Test_attr_programs.suite);
      ("peers", Test_peers.suite);
      ("exchange", Test_exchange.suite);
      ("ontology", Test_ontology.suite);
      ("dimensions", Test_dimensions.suite);
      ("probdb", Test_probdb.suite);
      ("wave3", Test_wave3.suite);
      ("wave4", Test_wave4.suite);
      ("wave5", Test_wave5.suite);
      ("exrules", Test_exrules.suite);
      ("facade", Test_facade.suite);
      ("obs", Test_obs.suite);
      ("server", Test_server.suite);
      ("properties", Test_properties.suite);
      ("fast", Test_fast.suite);
      ("analysis", Test_analysis.suite);
      ("pulse", Test_pulse.suite);
      ("workload", Test_workload.suite);
    ]
