module Value = Relational.Value
module Instance = Relational.Instance
module Fact = Relational.Fact
module Tid = Relational.Tid
module Repair = Repairs.Repair
module S_repair = Repairs.S_repair
module C_repair = Repairs.C_repair
module Attr_repair = Repairs.Attr_repair
module Check = Repairs.Check
open Paper_examples

let check = Alcotest.check

let deltas repairs =
  repairs
  |> List.map (fun r ->
         Repair.delta r |> Fact.Set.elements |> List.map Fact.to_string
         |> List.sort String.compare)
  |> List.sort compare

(* Example 3.1: two S-repairs of the Supply instance wrt the IND — delete
   the dangling tuple or insert Articles(I3). *)
let test_supply_s_repairs () =
  let repairs =
    S_repair.enumerate Supply.instance Supply.schema [ Supply.ind ]
  in
  check
    Alcotest.(list (list string))
    "two repairs"
    [ [ "Articles(I3)" ]; [ "Supply(C2, R1, I3)" ] ]
    (deltas repairs);
  List.iter
    (fun r ->
      check Alcotest.bool "each is an S-repair" true
        (Check.is_s_repair ~original:Supply.instance Supply.schema
           [ Supply.ind ] r.Repair.repaired))
    repairs

let test_supply_delete_only () =
  let repairs =
    S_repair.enumerate ~actions:`Delete_only Supply.instance Supply.schema
      [ Supply.ind ]
  in
  check
    Alcotest.(list (list string))
    "deletion repair only"
    [ [ "Supply(C2, R1, I3)" ] ]
    (deltas repairs)

(* Example 3.1's D3 — deleting two tuples — is consistent but NOT minimal. *)
let test_non_minimal_rejected () =
  let d3 =
    Instance.of_rows Supply.schema
      [
        ("Supply", [ [ v "C1"; v "R1"; v "I1" ] ]);
        ("Articles", [ [ v "I1" ]; [ v "I2" ] ]);
      ]
  in
  check Alcotest.bool "D3 consistent" true
    (Check.is_consistent d3 Supply.schema [ Supply.ind ]);
  check Alcotest.bool "D3 not an S-repair" false
    (Check.is_s_repair ~original:Supply.instance Supply.schema [ Supply.ind ] d3)

(* Example 3.3: the two key repairs of Employee. *)
let test_employee_repairs () =
  let repairs =
    S_repair.enumerate Employee.instance Employee.schema [ Employee.key ]
  in
  check
    Alcotest.(list (list string))
    "delete one page tuple each"
    [ [ "Employee(page, 5)" ]; [ "Employee(page, 8)" ] ]
    (deltas repairs);
  (* Both are also C-repairs (single deletions). *)
  let crs = C_repair.enumerate Employee.instance Employee.schema [ Employee.key ] in
  check Alcotest.int "two C-repairs" 2 (List.length crs)

(* Example 3.5: three S-repairs wrt κ. *)
let test_denial_s_repairs () =
  let repairs = S_repair.enumerate Denial.instance Denial.schema [ Denial.kappa ] in
  check
    Alcotest.(list (list string))
    "paper's D1, D2, D3"
    [
      [ "R(a3, a3)"; "R(a4, a3)" ];
      [ "R(a3, a3)"; "S(a4)" ];
      [ "S(a3)" ];
    ]
    (deltas repairs)

(* Example 4.1 / Figure 1: four S-repairs, three C-repairs. *)
let test_hypergraph_repairs () =
  let srs = S_repair.enumerate Hypergraph.instance Hypergraph.schema Hypergraph.dcs in
  check Alcotest.int "four S-repairs" 4 (List.length srs);
  let crs = C_repair.enumerate Hypergraph.instance Hypergraph.schema Hypergraph.dcs in
  check Alcotest.int "three C-repairs" 3 (List.length crs);
  check
    Alcotest.(option int)
    "C-repair cost 2" (Some 2)
    (C_repair.minimum_cost Hypergraph.instance Hypergraph.schema Hypergraph.dcs);
  (* D1 = {B,C} (cost 3) is an S-repair but not a C-repair. *)
  let d1 =
    Instance.of_rows Hypergraph.schema
      [ ("B", [ [ v "a" ] ]); ("C", [ [ v "a" ] ]) ]
  in
  check Alcotest.bool "D1 is S-repair" true
    (Check.is_s_repair ~original:Hypergraph.instance Hypergraph.schema
       Hypergraph.dcs d1);
  check Alcotest.bool "D1 not C-repair" false
    (Check.is_c_repair ~original:Hypergraph.instance Hypergraph.schema
       Hypergraph.dcs d1)

let test_one_repair_greedy () =
  match S_repair.one Hypergraph.instance Hypergraph.schema Hypergraph.dcs with
  | None -> Alcotest.fail "repair exists"
  | Some r ->
      check Alcotest.bool "greedy result is an S-repair" true
        (Check.is_s_repair ~original:Hypergraph.instance Hypergraph.schema
           Hypergraph.dcs r.Repair.repaired)

(* Example 4.3: tgd with existential head — repairs delete the dangling
   tuple or insert ⟨I3, NULL⟩. *)
let test_null_tuple_repair () =
  let schema =
    Relational.Schema.of_list
      [ ("Supply", [ "company"; "receiver"; "item" ]); ("Articles", [ "item"; "cost" ]) ]
  in
  let db =
    Instance.of_rows schema
      [
        ( "Supply",
          [
            [ v "C1"; v "R1"; v "I1" ];
            [ v "C2"; v "R2"; v "I2" ];
            [ v "C2"; v "R1"; v "I3" ];
          ] );
        ("Articles", [ [ v "I1"; i 50 ]; [ v "I2"; i 30 ] ]);
      ]
  in
  let tgd = Constraints.Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ]) in
  let repairs = S_repair.enumerate db schema [ tgd ] in
  check
    Alcotest.(list (list string))
    "delete or insert with NULL"
    [ [ "Articles(I3, NULL)" ]; [ "Supply(C2, R1, I3)" ] ]
    (deltas repairs)

(* Interacting constraints: an IND insertion can violate a key. *)
let test_interacting_ics () =
  let schema = Relational.Schema.of_list [ ("P", [ "x" ]); ("Q", [ "x"; "y" ]) ] in
  let db =
    Instance.of_rows schema
      [ ("P", [ [ v "a" ] ]); ("Q", [ [ v "a"; v "b1" ]; [ v "a"; v "b2" ] ]) ]
  in
  let ind = Constraints.Ic.ind ~sub:("P", [ 0 ]) ~sup:("Q", [ 0 ]) in
  let key = Constraints.Ic.key ~rel:"Q" [ 0 ] in
  let repairs = S_repair.enumerate db schema [ key; ind ] in
  (* Fix the key by deleting one Q tuple (IND stays satisfied), either one. *)
  check Alcotest.int "two repairs" 2 (List.length repairs);
  List.iter
    (fun r ->
      check Alcotest.bool "consistent" true
        (Check.is_consistent r.Repair.repaired schema [ key; ind ]))
    repairs

(* Example 4.4: the paper displays the attribute repairs with change sets
   {ι6[1]} and {ι1[2], ι3[2]}.  Under minimal-change semantics these are two
   of the seven set-inclusion-minimal NULL change sets (the other five break
   the x-join of κ rather than the y-join); we check the full enumeration
   and that the paper's two are among them. *)
let test_attr_repairs () =
  let repairs = Attr_repair.enumerate Denial.instance Denial.schema [ Denial.kappa ] in
  let change_strings =
    repairs
    |> List.map (fun (r : Attr_repair.t) ->
           Tid.Cell.Set.elements r.changes
           |> List.map (Format.asprintf "%a" Tid.Cell.pp))
    |> List.sort compare
  in
  check Alcotest.int "seven minimal change sets" 7 (List.length change_strings);
  List.iter
    (fun paper_repair ->
      check Alcotest.bool "paper change set present" true
        (List.mem paper_repair change_strings))
    [ [ "t6[1]" ]; [ "t1[2]"; "t3[2]" ] ];
  List.iter
    (fun (r : Attr_repair.t) ->
      check Alcotest.bool "attr-repaired instance consistent" true
        (Check.is_consistent r.repaired Denial.schema [ Denial.kappa ]))
    repairs

let test_attr_repair_minimum () =
  match Attr_repair.minimum Denial.instance Denial.schema [ Denial.kappa ] with
  | None -> Alcotest.fail "exists"
  | Some r -> check Alcotest.int "minimum is one change" 1 (Tid.Cell.Set.cardinal r.changes)

let test_consistent_db_repairs () =
  let repairs = S_repair.enumerate Employee.instance Employee.schema [] in
  check Alcotest.int "no ICs: original is the only repair" 1 (List.length repairs);
  check Alcotest.int "zero cost" 0 (Repair.cost (List.hd repairs))

(* qcheck: on random small key-violating instances, every enumerated
   S-repair passes the exact checker, and C-repairs have minimum cost. *)
let gen_instance =
  QCheck.Gen.(
    let row = pair (int_range 0 3) (int_range 0 2) in
    list_size (int_range 1 7) row)

let arb_instance =
  QCheck.make gen_instance
    ~print:(fun rows ->
      String.concat "; "
        (List.map (fun (k, s) -> Printf.sprintf "(%d,%d)" k s) rows))

let schema_kv = Relational.Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let instance_of rows =
  Instance.of_rows schema_kv
    [ ("T", List.map (fun (k, s) -> [ Value.int k; Value.int s ]) rows) ]

let prop_s_repairs_check =
  QCheck.Test.make ~count:100 ~name:"enumerated S-repairs pass is_s_repair"
    arb_instance (fun rows ->
      let db = instance_of rows in
      let repairs = S_repair.enumerate db schema_kv [ key_kv ] in
      repairs <> []
      && List.for_all
           (fun r ->
             Check.is_s_repair ~original:db schema_kv [ key_kv ]
               r.Repair.repaired)
           repairs)

let prop_c_repairs_minimum =
  QCheck.Test.make ~count:100 ~name:"C-repairs have minimum cost" arb_instance
    (fun rows ->
      let db = instance_of rows in
      let srs = S_repair.enumerate db schema_kv [ key_kv ] in
      let crs = C_repair.enumerate db schema_kv [ key_kv ] in
      let min_cost = List.fold_left (fun m r -> min m (Repair.cost r)) max_int srs in
      crs <> []
      && List.for_all (fun r -> Repair.cost r = min_cost) crs
      && List.length (List.filter (fun r -> Repair.cost r = min_cost) srs)
         = List.length crs)

let prop_repairs_consistent =
  QCheck.Test.make ~count:100 ~name:"all repairs are consistent" arb_instance
    (fun rows ->
      let db = instance_of rows in
      List.for_all
        (fun r -> Check.is_consistent r.Repair.repaired schema_kv [ key_kv ])
        (S_repair.enumerate db schema_kv [ key_kv ]))

let suite =
  [
    Alcotest.test_case "Supply S-repairs (Ex 3.1)" `Quick test_supply_s_repairs;
    Alcotest.test_case "Supply delete-only repairs" `Quick test_supply_delete_only;
    Alcotest.test_case "non-minimal candidate rejected (D3)" `Quick
      test_non_minimal_rejected;
    Alcotest.test_case "Employee key repairs (Ex 3.3)" `Quick test_employee_repairs;
    Alcotest.test_case "denial S-repairs (Ex 3.5)" `Quick test_denial_s_repairs;
    Alcotest.test_case "Figure 1 S-/C-repairs (Ex 4.1)" `Quick
      test_hypergraph_repairs;
    Alcotest.test_case "greedy single repair" `Quick test_one_repair_greedy;
    Alcotest.test_case "null-based tuple repair (Ex 4.3)" `Quick
      test_null_tuple_repair;
    Alcotest.test_case "interacting key + IND" `Quick test_interacting_ics;
    Alcotest.test_case "attribute repairs (Ex 4.4)" `Quick test_attr_repairs;
    Alcotest.test_case "minimum attribute repair" `Quick test_attr_repair_minimum;
    Alcotest.test_case "consistent db has itself as repair" `Quick
      test_consistent_db_repairs;
    QCheck_alcotest.to_alcotest prop_s_repairs_check;
    QCheck_alcotest.to_alcotest prop_c_repairs_minimum;
    QCheck_alcotest.to_alcotest prop_repairs_consistent;
  ]
