module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Peer = Peers.Peer
open Logic

let check = Alcotest.check
let v = Value.str
let rows_to_strings rows = List.map (List.map Value.to_string) rows

(* A catalog peer publishing prices, a store peer with its own (possibly
   stale) price list and a key on item. *)
let catalog_schema = Schema.of_list [ ("CatPrice", [ "item"; "price" ]) ]
let store_schema = Schema.of_list [ ("Price", [ "item"; "price" ]) ]

let catalog =
  {
    Peer.name = "catalog";
    schema = catalog_schema;
    instance =
      Instance.of_rows catalog_schema
        [ ("CatPrice", [ [ v "I1"; Value.int 10 ]; [ v "I2"; Value.int 20 ] ]) ];
    ics = [];
    mappings = [];
  }

let import_query =
  Cq.make ~name:"import"
    [ Term.var "i"; Term.var "p" ]
    [ Atom.make "CatPrice" [ Term.var "i"; Term.var "p" ] ]

let store trust =
  {
    Peer.name = "store";
    schema = store_schema;
    instance =
      Instance.of_rows store_schema [ ("Price", [ [ v "I1"; Value.int 12 ] ]) ];
    ics = [ Constraints.Ic.key ~rel:"Price" [ 0 ] ];
    mappings =
      [ { Peer.from_peer = "catalog"; query = import_query; target = "Price"; trust } ];
  }

let price_query =
  Cq.make ~name:"prices"
    [ Term.var "i"; Term.var "p" ]
    [ Atom.make "Price" [ Term.var "i"; Term.var "p" ] ]

let test_imports () =
  let net = Peer.network [ catalog; store Peer.More_trusted ] in
  let imports = Peer.imported_facts net "store" in
  check Alcotest.int "two imported facts" 2 (List.length imports)

let test_trusted_import_wins () =
  let net = Peer.network [ catalog; store Peer.More_trusted ] in
  let solutions = Peer.solutions net "store" in
  check Alcotest.int "one solution" 1 (List.length solutions);
  let rows = Peer.consistent_answers net "store" price_query in
  check
    Alcotest.(list (list string))
    "catalog price of I1 wins"
    [ [ "I1"; "10" ]; [ "I2"; "20" ] ]
    (rows_to_strings rows)

let test_same_trust_competes () =
  let net = Peer.network [ catalog; store Peer.Same_trusted ] in
  let solutions = Peer.solutions net "store" in
  check Alcotest.int "two solutions" 2 (List.length solutions);
  let rows = Peer.consistent_answers net "store" price_query in
  (* Only the unconflicted item survives all solutions. *)
  check
    Alcotest.(list (list string))
    "I1's price uncertain"
    [ [ "I2"; "20" ] ]
    (rows_to_strings rows)

let test_null_padding () =
  (* Import into a wider relation: the extra column becomes NULL. *)
  let wide_schema = Schema.of_list [ ("Price", [ "item"; "price"; "source" ]) ] in
  let item_query =
    Cq.make ~name:"items" [ Term.var "i"; Term.var "p" ]
      [ Atom.make "CatPrice" [ Term.var "i"; Term.var "p" ] ]
  in
  let wide_store =
    {
      Peer.name = "store";
      schema = wide_schema;
      instance = Instance.create wide_schema;
      ics = [];
      mappings =
        [
          {
            Peer.from_peer = "catalog";
            query = item_query;
            target = "Price";
            trust = Peer.More_trusted;
          };
        ];
    }
  in
  let net = Peer.network [ catalog; wide_store ] in
  match Peer.solutions net "store" with
  | [ sol ] ->
      check Alcotest.bool "NULL-padded import" true
        (Instance.mem_fact sol
           (Relational.Fact.make "Price" [ v "I1"; Value.int 10; Value.Null ]))
  | _ -> Alcotest.fail "expected one solution"

let test_unsolvable_protected () =
  (* Two more-trusted sources disagreeing leave the peer with no solution. *)
  let catalog2 =
    { catalog with Peer.name = "catalog2";
      instance =
        Instance.of_rows catalog_schema
          [ ("CatPrice", [ [ v "I1"; Value.int 99 ] ]) ] }
  in
  let conflicted =
    {
      (store Peer.More_trusted) with
      Peer.mappings =
        [
          { Peer.from_peer = "catalog"; query = import_query; target = "Price";
            trust = Peer.More_trusted };
          { Peer.from_peer = "catalog2"; query = import_query; target = "Price";
            trust = Peer.More_trusted };
        ];
    }
  in
  let net = Peer.network [ catalog; catalog2; conflicted ] in
  check Alcotest.int "no coherent state" 0 (List.length (Peer.solutions net "store"))

let test_network_validation () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Peers.network: mapping cycle") (fun () ->
      let a =
        {
          Peer.name = "a"; schema = catalog_schema;
          instance = Instance.create catalog_schema; ics = [];
          mappings =
            [ { Peer.from_peer = "b"; query = import_query; target = "CatPrice";
                trust = Peer.Same_trusted } ];
        }
      in
      let b =
        {
          Peer.name = "b"; schema = catalog_schema;
          instance = Instance.create catalog_schema; ics = [];
          mappings =
            [ { Peer.from_peer = "a"; query = import_query; target = "CatPrice";
                trust = Peer.Same_trusted } ];
        }
      in
      ignore (Peer.network [ a; b ]));
  Alcotest.check_raises "unknown peer rejected"
    (Invalid_argument "Peers.network: unknown peer nowhere") (fun () ->
      let a =
        {
          Peer.name = "a"; schema = catalog_schema;
          instance = Instance.create catalog_schema; ics = [];
          mappings =
            [ { Peer.from_peer = "nowhere"; query = import_query;
                target = "CatPrice"; trust = Peer.Same_trusted } ];
        }
      in
      ignore (Peer.network [ a ]))

let suite =
  [
    Alcotest.test_case "imports flow through mappings" `Quick test_imports;
    Alcotest.test_case "trusted imports are protected" `Quick
      test_trusted_import_wins;
    Alcotest.test_case "same-trust data competes" `Quick test_same_trust_competes;
    Alcotest.test_case "existential positions padded with NULL" `Quick
      test_null_padding;
    Alcotest.test_case "conflicting protected imports: no solution" `Quick
      test_unsolvable_protected;
    Alcotest.test_case "network validation" `Quick test_network_validation;
  ]
