(* lib/obs: spans, counters, registries, exporters — and the two
   guarantees the subsystem is built around: Chrome trace output is
   well-formed with balanced B/E events, and disabled tracing costs no
   allocation on the probe fast path. *)

(* ---- spans ----------------------------------------------------------- *)

let test_span_nesting () =
  let (), spans =
    Obs.Trace.collect (fun () ->
        let root = Obs.Trace.start "root" in
        let child = Obs.Trace.start "child" in
        Obs.Trace.attr "k" "v";
        Obs.Trace.finish child;
        let sibling = Obs.Trace.start "sibling" in
        Obs.Trace.finish sibling;
        Obs.Trace.finish root)
  in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let by_name n = List.find (fun (s : Obs.Trace.span) -> s.name = n) spans in
  let root = by_name "root" in
  let child = by_name "child" in
  let sibling = by_name "sibling" in
  Alcotest.(check int) "root is a root" 0 root.parent;
  Alcotest.(check int) "child under root" root.id child.parent;
  Alcotest.(check int) "sibling under root" root.id sibling.parent;
  Alcotest.(check (list (pair string string)))
    "attr lands on the innermost open span" [ ("k", "v") ] child.attrs;
  (* Start order: ids are increasing, and [spans] returns start order. *)
  Alcotest.(check bool) "start order" true
    (List.map (fun (s : Obs.Trace.span) -> s.name) spans
    = [ "root"; "child"; "sibling" ]);
  Alcotest.(check bool) "child within root" true
    (child.t0 >= root.t0 && child.t1 <= root.t1)

let test_span_disabled () =
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  let id = Obs.Trace.start "ghost" in
  Alcotest.(check bool) "none token" true (id = Obs.Trace.none);
  Obs.Trace.attr "k" "v";
  Obs.Trace.finish id;
  Alcotest.(check int) "no spans collected" 0 (List.length (Obs.Trace.spans ()))

let test_span_exception_safety () =
  Obs.Trace.set_enabled false;
  let result =
    try
      ignore
        (Obs.Trace.collect (fun () ->
             Obs.Trace.with_span "boom" (fun () -> failwith "bang")));
      "no exception"
    with Failure msg -> msg
  in
  Alcotest.(check string) "exception propagates" "bang" result;
  (* The sink in force before collect is restored. *)
  Alcotest.(check bool) "tracing off after collect" false
    (Obs.Trace.is_enabled ())

let test_span_drain () =
  let (), _ =
    Obs.Trace.collect (fun () ->
        Obs.Trace.with_span "a" (fun () -> ());
        let drained = Obs.Trace.drain () in
        Alcotest.(check int) "drain takes the finished span" 1
          (List.length drained);
        Obs.Trace.with_span "b" (fun () -> ());
        let again = Obs.Trace.drain () in
        Alcotest.(check int) "second drain sees only new spans" 1
          (List.length again);
        (* Ids keep increasing across drains. *)
        let a = List.hd drained and b = List.hd again in
        Alcotest.(check bool) "id sequence persists" true
          (b.Obs.Trace.id > a.Obs.Trace.id))
  in
  ()

(* ---- counters and registries ----------------------------------------- *)

let test_counter_registry_swap () =
  let c = Obs.Counter.make "test.swap_counter" in
  let r1 = Obs.Registry.create () and r2 = Obs.Registry.create () in
  Obs.Registry.set_current r1;
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Registry.set_current r2;
  Obs.Counter.incr c;
  Alcotest.(check int) "r1 kept its increments" 2
    (Obs.Registry.counter_value r1 "test.swap_counter");
  Alcotest.(check int) "r2 saw the later one" 1
    (Obs.Registry.counter_value r2 "test.swap_counter");
  Alcotest.(check int) "handle reads the current registry" 1
    (Obs.Counter.value c);
  let delta =
    Obs.Registry.counter_delta
      ~since:[ ("test.swap_counter", 0) ]
      r2
  in
  Alcotest.(check (list (pair string int))) "delta" [ ("test.swap_counter", 1) ] delta

let test_histogram_quantiles () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "lat" in
  (* 100 observations spread inside the 100us..1ms decade. *)
  for i = 1 to 100 do
    Obs.Registry.observe h (1e-4 +. (float_of_int i *. 8e-6))
  done;
  Alcotest.(check int) "count" 100 (Obs.Registry.hist_count h);
  let p50 = Obs.Registry.quantile h 0.5 in
  Alcotest.(check bool) "p50 inside the covering bucket" true
    (p50 >= 1e-4 && p50 <= 1e-3);
  let p99 = Obs.Registry.quantile h 0.99 in
  Alcotest.(check bool) "p99 >= p50" true (p99 >= p50);
  let line = Obs.Registry.render_histogram "lat" h in
  Alcotest.(check bool) "labelled buckets" true
    (try
       ignore (Str.search_forward (Str.regexp_string "hist=lt_1us:") line 0);
       true
     with Not_found -> false)

(* ---- exporters -------------------------------------------------------- *)

let collect_tree () =
  snd
    (Obs.Trace.collect (fun () ->
         Obs.Trace.with_span "outer" (fun () ->
             Obs.Trace.with_span ~attrs:[ ("q", "emp\"loyee") ] "inner"
               (fun () -> ()))))

let test_tree_render () =
  let lines = Obs.Export.tree (collect_tree ()) in
  match lines with
  | [ outer; inner ] ->
      Alcotest.(check bool) "outer unindented" true
        (String.length outer > 5 && String.sub outer 0 5 = "outer");
      Alcotest.(check bool) "inner indented" true
        (String.length inner > 2 && String.sub inner 0 2 = "  ")
  | _ -> Alcotest.fail "expected two lines"

(* A minimal JSON well-formedness checker: enough grammar to validate
   what Export emits without a JSON dependency. *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then s.[!pos] else fail () in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c = if peek () = c then advance () else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and literal lit =
    String.iter (fun c -> if peek () = c then advance () else fail ()) lit
  and number () =
    let accept c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    if not (accept (peek ())) then fail ();
    while !pos < n && accept s.[!pos] do
      advance ()
    done
  and string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail ();
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ ->
          advance ();
          go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        if peek () = ',' then begin
          advance ();
          members ()
        end
        else expect '}'
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        if peek () = ',' then begin
          advance ();
          elements ()
        end
        else expect ']'
      in
      elements ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

(* Extract every ("ph", name) pair from a chrome trace in order and check
   B/E events balance like parentheses, per (pid, tid, name). *)
let chrome_events_balance s =
  (* Events all match the exact shapes Export.chrome writes, so a light
     scan is reliable: find "ph":"B" / "ph":"E" and the preceding name. *)
  let events = ref [] in
  let re = Str.regexp "\"name\":\\(\"[^\"]*\"\\),\"cat\":\"cqa\",\"ph\":\"\\([BE]\\)\"" in
  let idx = ref 0 in
  (try
     while true do
       let at = Str.search_forward re s !idx in
       events := (Str.matched_group 1 s, Str.matched_group 2 s) :: !events;
       idx := at + 1
     done
   with Not_found -> ());
  let events = List.rev !events in
  let rec go stack = function
    | [] -> stack = []
    | (name, "B") :: rest -> go (name :: stack) rest
    | (name, "E") :: rest -> (
        match stack with
        | top :: stack' when top = name -> go stack' rest
        | _ -> false)
    | _ -> false
  in
  go [] events

let chrome_of_random_spans depth fanout =
  snd
    (Obs.Trace.collect (fun () ->
         let rec build d =
           Obs.Trace.with_span (Printf.sprintf "n%d" d) (fun () ->
               if d < depth then
                 for _ = 1 to fanout do
                   build (d + 1)
                 done;
               Obs.Trace.attr "weird" "a\"b\\c\nd")
         in
         build 0))
  |> Obs.Export.chrome

let qcheck_chrome_well_formed =
  QCheck.Test.make ~count:50 ~name:"chrome trace is well-formed, B/E balance"
    QCheck.(pair (int_range 0 3) (int_range 1 3))
    (fun (depth, fanout) ->
      let doc = chrome_of_random_spans depth fanout in
      json_well_formed doc && chrome_events_balance doc)

let test_jsonl_well_formed () =
  let spans = collect_tree () in
  List.iter
    (fun line ->
      Alcotest.(check bool) "jsonl line parses" true (json_well_formed line))
    (Obs.Export.jsonl spans)

(* ---- the no-allocation guard ----------------------------------------- *)

let test_disabled_probes_allocate_nothing () =
  Obs.Trace.set_enabled false;
  let c = Obs.Counter.make "test.hot_counter" in
  let r = Obs.Registry.create () in
  Obs.Registry.set_current r;
  let probe () =
    let sp = Obs.Trace.start "hot" in
    Obs.Counter.incr c;
    if Obs.Trace.is_enabled () then Obs.Trace.attr_int "n" 42;
    Obs.Trace.finish sp
  in
  (* Warm up: the counter handle resolves its cell once. *)
  for _ = 1 to 100 do
    probe ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    probe ()
  done;
  let words = Gc.minor_words () -. before in
  (* Gc.minor_words itself allocates its boxed float results; anything
     beyond a small constant means the probes allocate per call. *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-probe allocation (%.0f words for 10k probes)" words)
    true (words < 256.0)

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "disabled tracing collects nothing" `Quick
      test_span_disabled;
    Alcotest.test_case "with_span is exception-safe" `Quick
      test_span_exception_safety;
    Alcotest.test_case "drain keeps the id sequence" `Quick test_span_drain;
    Alcotest.test_case "counters follow registry swaps" `Quick
      test_counter_registry_swap;
    Alcotest.test_case "histogram quantiles and labels" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "tree exporter indents children" `Quick
      test_tree_render;
    Alcotest.test_case "jsonl lines are well-formed" `Quick
      test_jsonl_well_formed;
    QCheck_alcotest.to_alcotest qcheck_chrome_well_formed;
    Alcotest.test_case "disabled probes do not allocate" `Quick
      test_disabled_probes_allocate_nothing;
  ]
