(* Cross-layer property tests: the FO formula evaluator against the CQ
   engine, instance algebra laws, CSV round trips. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
open Logic

let check = Alcotest.check

let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a" ]) ]

let instance_of (rs, ss) =
  Instance.of_rows schema
    [
      ("R", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) rs);
      ("S", List.map (fun a -> [ Value.int a ]) ss);
    ]

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6) (pair (int_range 0 3) (int_range 0 3)))
        (list_size (int_range 0 4) (int_range 0 3)))
    ~print:(fun (rs, ss) ->
      Printf.sprintf "R=%s S=%s"
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) rs))
        (String.concat ";" (List.map string_of_int ss)))

(* The same CQ evaluated through Cq.answers and through the generic formula
   evaluator must agree. *)
let queries =
  let x = Term.var "x" and y = Term.var "y" in
  [
    Cq.make ~name:"proj" [ x ] [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"join" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ];
    Cq.make ~name:"selfjoin" [ x ]
      [ Atom.make "R" [ x; x ] ];
    Cq.make ~name:"cmp" ~comps:[ Cmp.make Cmp.Lt x y ] [ x; y ]
      [ Atom.make "R" [ x; y ] ];
  ]

let prop_formula_matches_cq =
  QCheck.Test.make ~count:200 ~name:"Formula.answers = Cq.answers" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          let via_cq = Cq.answers q db in
          let via_formula =
            Formula.answers db ~free:(Cq.head_vars q) (Formula.of_cq q)
          in
          List.sort compare via_cq = List.sort compare via_formula)
        queries)

(* Boolean satisfaction agrees too. *)
let prop_formula_holds_matches =
  QCheck.Test.make ~count:200 ~name:"Formula.holds = Cq.holds" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          let boolean = Cq.make ~name:"b" ~comps:q.Cq.comps [] q.Cq.body in
          Cq.holds boolean db = Formula.holds db (Formula.of_cq boolean))
        queries)

(* Residue rewriting is sound: its answers are consistent answers. *)
let prop_residue_sound =
  QCheck.Test.make ~count:100 ~name:"residue rewriting ⊆ consistent answers"
    arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      let x = Term.var "x" and y = Term.var "y" in
      let kappa =
        Constraints.Ic.denial ~name:"k"
          [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]
      in
      let q = Cq.make ~name:"q" [ x ] [ Atom.make "S" [ x ] ] in
      let rewritten =
        Rewriting.Residue_rewrite.consistent_answers q schema [ kappa ] db
      in
      let eng = Cqa.Engine.create ~schema ~ics:[ kappa ] db in
      let exact =
        Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q
      in
      List.for_all (fun r -> List.mem r exact) rewritten)

(* Instance algebra laws. *)
let prop_insert_delete_roundtrip =
  QCheck.Test.make ~count:200 ~name:"delete after fresh insert is identity"
    arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      let f = Fact.make "R" [ Value.int 99; Value.int 99 ] in
      let db', tid = Instance.insert db f in
      Instance.equal (Instance.delete db' tid) db)

let prop_insert_idempotent =
  QCheck.Test.make ~count:200 ~name:"insert is idempotent (set semantics)"
    arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      match Instance.fact_list db with
      | [] -> true
      | f :: _ -> Instance.equal (Instance.add db f) db)

let prop_restrict_subset =
  QCheck.Test.make ~count:200 ~name:"restrict yields a subset" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      let some_tids =
        Instance.tids db |> Relational.Tid.Set.filter (fun t ->
            Relational.Tid.to_int t mod 2 = 0)
      in
      Instance.subset (Instance.restrict db some_tids) db)

(* CSV round trips on generated values, including nasty strings. *)
let arb_rows_csv =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 8)
        (pair
           (oneof
              [
                map Value.int (int_range (-5) 5);
                map Value.str
                  (oneofl
                     [ "plain"; "with, comma"; "with \"quote\""; "two\nlines"; "" ]);
                return Value.Null;
              ])
           (map Value.int (int_range 0 3))))
    ~print:(fun rows ->
      String.concat "|"
        (List.map (fun (a, b) -> Value.to_string a ^ "," ^ Value.to_string b) rows))

let csv_schema = Schema.of_list [ ("T", [ "a"; "b" ]) ]

let prop_csv_roundtrip =
  QCheck.Test.make ~count:200 ~name:"CSV round trip" arb_rows_csv (fun rows ->
      let db =
        List.fold_left
          (fun acc (a, b) -> Instance.add acc (Fact.make "T" [ a; b ]))
          (Instance.create csv_schema) rows
      in
      let csv = Relational.Csv_io.to_csv db ~rel:"T" in
      let back = Relational.Csv_io.load_csv (Instance.create csv_schema) ~rel:"T" csv in
      Instance.equal db back)

(* Repair.delta decomposition: delta = deleted ⊎ inserted. *)
let prop_repair_delta =
  QCheck.Test.make ~count:100 ~name:"repair delta = deleted ∪ inserted"
    arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      let x = Term.var "x" and y = Term.var "y" in
      let kappa =
        Constraints.Ic.denial ~name:"k"
          [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]
      in
      List.for_all
        (fun (r : Repairs.Repair.t) ->
          Fact.Set.equal (Repairs.Repair.delta r)
            (Fact.Set.union r.deleted r.inserted)
          && Fact.Set.is_empty (Fact.Set.inter r.deleted r.inserted))
        (Repairs.S_repair.enumerate db schema [ kappa ]))

let test_csv_newline_in_value () =
  (* Quoted newlines survive to_csv but load_csv is line-oriented: verify
     the documented failure is a clean error, not silent corruption. *)
  let db =
    Instance.of_rows csv_schema
      [ ("T", [ [ Value.str "two\nlines"; Value.int 1 ] ]) ]
  in
  let csv = Relational.Csv_io.to_csv db ~rel:"T" in
  match
    Relational.Csv_io.load_csv (Instance.create csv_schema) ~rel:"T" csv
  with
  | reloaded -> check Alcotest.bool "roundtrip or clean" true (Instance.equal db reloaded)
  | exception Invalid_argument _ -> ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_formula_matches_cq;
    QCheck_alcotest.to_alcotest prop_formula_holds_matches;
    QCheck_alcotest.to_alcotest prop_residue_sound;
    QCheck_alcotest.to_alcotest prop_insert_delete_roundtrip;
    QCheck_alcotest.to_alcotest prop_insert_idempotent;
    QCheck_alcotest.to_alcotest prop_restrict_subset;
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    QCheck_alcotest.to_alcotest prop_repair_delta;
    Alcotest.test_case "CSV newline handling" `Quick test_csv_newline_in_value;
  ]
