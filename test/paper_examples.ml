(* Shared fixtures: the running examples of the paper, used across suites. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact

let v = Value.str
let i = Value.int

(* Example 2.1: Supply/Articles with inclusion dependency. *)
module Supply = struct
  let schema =
    Schema.of_list
      [
        ("Supply", [ "company"; "receiver"; "item" ]);
        ("Articles", [ "item" ]);
      ]

  let instance =
    Instance.of_rows schema
      [
        ( "Supply",
          [
            [ v "C1"; v "R1"; v "I1" ];
            [ v "C2"; v "R2"; v "I2" ];
            [ v "C2"; v "R1"; v "I3" ];
          ] );
        ("Articles", [ [ v "I1" ]; [ v "I2" ] ]);
      ]

  let ind = Constraints.Ic.ind ~sub:("Supply", [ 2 ]) ~sup:("Articles", [ 0 ])
end

(* Example 3.3: Employee with key constraint Name -> Salary. *)
module Employee = struct
  let schema = Schema.of_list [ ("Employee", [ "name"; "salary" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ( "Employee",
          [
            [ v "page"; i 5 ];
            [ v "page"; i 8 ];
            [ v "smith"; i 3 ];
            [ v "stowe"; i 7 ];
          ] );
      ]

  let key = Constraints.Ic.key ~rel:"Employee" [ 0 ]
end

(* Example 3.5 / 4.4 / 7.1: R, S and the denial constraint κ. *)
module Denial = struct
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a" ]) ]

  (* tids follow insertion order: R tuples get t1..t3, S tuples t4..t6,
     matching the paper's ι1..ι6. *)
  let instance =
    Instance.of_rows schema
      [
        ("R", [ [ v "a4"; v "a3" ]; [ v "a2"; v "a1" ]; [ v "a3"; v "a3" ] ]);
        ("S", [ [ v "a4" ]; [ v "a2" ]; [ v "a3" ] ]);
      ]

  open Logic
  let x = Term.var "x"
  let y = Term.var "y"

  let kappa =
    Constraints.Ic.denial ~name:"kappa"
      [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]

  (* The associated BCQ Q: ∃x∃y (S(x) ∧ R(x,y) ∧ S(y)). *)
  let q =
    Cq.make ~name:"Q" []
      [ Atom.make "S" [ x ]; Atom.make "R" [ x; y ]; Atom.make "S" [ y ] ]
end

(* Example 4.1 / Figure 1: five unary facts, three denial constraints. *)
module Hypergraph = struct
  let schema =
    Schema.of_list
      [ ("A", [ "x" ]); ("B", [ "x" ]); ("C", [ "x" ]); ("D", [ "x" ]); ("E", [ "x" ]) ]

  let instance =
    Instance.of_rows schema
      [
        ("A", [ [ v "a" ] ]);
        ("B", [ [ v "a" ] ]);
        ("C", [ [ v "a" ] ]);
        ("D", [ [ v "a" ] ]);
        ("E", [ [ v "a" ] ]);
      ]

  open Logic
  let x = Term.var "x"

  let dcs =
    [
      Constraints.Ic.denial ~name:"be" [ Atom.make "B" [ x ]; Atom.make "E" [ x ] ];
      Constraints.Ic.denial ~name:"bcd"
        [ Atom.make "B" [ x ]; Atom.make "C" [ x ]; Atom.make "D" [ x ] ];
      Constraints.Ic.denial ~name:"ac" [ Atom.make "A" [ x ]; Atom.make "C" [ x ] ];
    ]
end

let fact rel values = Fact.make rel values

(* Convenience: an instance's facts as sorted strings, for order-insensitive
   assertions. *)
let fact_strings inst =
  Instance.fact_list inst |> List.map Fact.to_string |> List.sort String.compare
