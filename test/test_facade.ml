(* Engine facade wrappers and cross-module properties. *)

module Instance = Relational.Instance
module Value = Relational.Value
module Tid = Relational.Tid
module Engine = Cqa.Engine
module P = Workload.Paper
open Logic

let check = Alcotest.check
let flt = Alcotest.float 1e-9

let employee_engine =
  Engine.create ~schema:P.Employee.schema ~ics:[ P.Employee.key ]
    P.Employee.instance

let test_engine_counts () =
  check Alcotest.int "two S-repairs" 2 (Engine.count_s_repairs employee_engine);
  check Alcotest.int "two C-repairs" 2 (Engine.count_c_repairs employee_engine)

let test_engine_aggregate () =
  let r = Engine.aggregate_range employee_engine ~rel:"Employee" (Repairs.Aggregate.Sum 1) in
  check flt "sum glb" 15.0 r.Repairs.Aggregate.glb;
  check flt "sum lub" 18.0 r.Repairs.Aggregate.lub

let test_engine_optimal () =
  let weight tid = if Tid.to_int tid = 2 then 9.0 else 1.0 in
  match Engine.optimal_repair ~weight employee_engine with
  | None -> Alcotest.fail "repair exists"
  | Some r ->
      check Alcotest.bool "heavy tuple kept" true
        (Instance.mem_fact r.Repairs.Repair.repaired
           (Relational.Fact.make "Employee" [ Value.str "page"; Value.int 8 ]))

(* Temporal: always-certain ⊆ sometime-certain on random histories. *)
let arb_history =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 12)
        (triple (int_range 1 3) (int_range 0 2) (int_range 0 2)))
    ~print:(fun h ->
      String.concat ";"
        (List.map (fun (t, k, s) -> Printf.sprintf "%d:%d=%d" t k s) h))

let schema_kv = Relational.Schema.of_list [ ("T", [ "k"; "v" ]) ]
let key_kv = Constraints.Ic.key ~rel:"T" [ 0 ]

let prop_temporal_always_subset_sometime =
  QCheck.Test.make ~count:60 ~name:"always-certain ⊆ sometime-certain"
    arb_history
    (fun history ->
      let db =
        Temporal.of_facts schema_kv [ key_kv ]
          (List.map
             (fun (t, k, s) ->
               (t, Relational.Fact.make "T" [ Value.int k; Value.int s ]))
             history)
      in
      let q = Workload.Gen.full_tuple_query () in
      let always = Temporal.consistent_always db ~from_:1 ~until:3 q in
      let sometime = Temporal.consistent_sometime db ~from_:1 ~until:3 q in
      List.for_all (fun r -> List.mem r sometime) always)

(* Ontology semantics containments on random ABoxes. *)
let prop_ontology_iar_subset_ar =
  QCheck.Test.make ~count:60 ~name:"ontology: IAR ⊆ AR ⊆ brave"
    QCheck.(
      make
        Gen.(list_size (int_range 0 6) (pair (int_range 0 3) bool))
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (i, b) -> Printf.sprintf "%d%c" i (if b then 'p' else 's')) l)))
    (fun people ->
      let abox =
        List.map
          (fun (i, is_prof) ->
            let who = Printf.sprintf "x%d" i in
            if is_prof then Ontology.Concept_of ("Prof", who)
            else Ontology.Concept_of ("Student", who))
          people
      in
      let kb =
        Ontology.make
          ~tbox:
            [
              Ontology.Subsumed (Ontology.Atomic "Prof", Ontology.Atomic "Faculty");
              Ontology.Disjoint (Ontology.Atomic "Student", Ontology.Atomic "Faculty");
            ]
          ~abox
      in
      let q =
        Cq.make [ Term.var "x" ] [ Atom.make "Student" [ Term.var "x" ] ]
      in
      let iar = Ontology.answers kb Ontology.IAR q in
      let ar = Ontology.answers kb Ontology.AR q in
      let brave = Ontology.answers kb Ontology.Brave q in
      List.for_all (fun r -> List.mem r ar) iar
      && List.for_all (fun r -> List.mem r brave) ar)

let suite =
  [
    Alcotest.test_case "engine counts" `Quick test_engine_counts;
    Alcotest.test_case "engine aggregate range" `Quick test_engine_aggregate;
    Alcotest.test_case "engine optimal repair" `Quick test_engine_optimal;
    QCheck_alcotest.to_alcotest prop_temporal_always_subset_sometime;
    QCheck_alcotest.to_alcotest prop_ontology_iar_subset_ar;
  ]
