(* The cqa-analyze subsystem: safety lints over rules built as raw
   records (bypassing the safe constructors), stratification and
   dependency-graph structure, constraint-set analysis (weak acyclicity,
   IND cycles), the tractability classifier with its witnesses, the
   engine's auto dispatch, report determinism, and the server's ANALYZE
   command. *)

module Finding = Analysis.Finding
module Lint = Analysis.Lint
module Classify = Analysis.Classify
module Ic_analysis = Analysis.Ic_analysis
module Depgraph = Analysis.Depgraph
module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic
module P = Server.Protocol
open Logic

let check = Alcotest.check
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

let codes fs = List.map (fun (f : Finding.t) -> f.code) (Finding.sort fs)

let has_code c fs =
  List.exists (fun (f : Finding.t) -> String.equal f.code c) fs

(* ---- Rule-level safety lints ----------------------------------------- *)

let test_unsafe_datalog_rule () =
  (* Raw record: Rule.make would reject all three defects at once. *)
  let r : Datalog.Rule.t =
    {
      head = Atom.make "p" [ x; z ];
      body_pos = [ Atom.make "q" [ x ] ];
      body_neg = [ Atom.make "r" [ y ] ];
      comps = [ Cmp.make Cmp.Lt (Term.var "w") (Term.Const (Value.int 3)) ];
    }
  in
  let fs = Lint.datalog_rule ~subject:"rule#1" r in
  check (Alcotest.list Alcotest.string) "three safety errors"
    [
      "safety/ground-unsafe-comparison";
      "safety/unbound-head-var";
      "safety/unsafe-negation";
    ]
    (codes fs);
  check Alcotest.bool "all errors" true (Finding.has_errors fs);
  (* A safe rule lints clean. *)
  let ok = Datalog.Rule.make (Atom.make "p" [ x ]) [ Atom.make "q" [ x ] ] in
  check (Alcotest.list Alcotest.string) "safe rule clean" []
    (codes (Lint.datalog_rule ok))

let test_unsafe_asp_rule () =
  let r : Asp.Syntax.rule =
    {
      head = [ Atom.make "a" [ x ]; Atom.make "b" [ y ] ];
      pos = [ Atom.make "e" [ x ] ];
      neg = [];
      comps = [];
    }
  in
  let fs = Lint.asp_rule r in
  check (Alcotest.list Alcotest.string) "unbound disjunct variable"
    [ "safety/unbound-head-var" ] (codes fs)

(* ---- Program structure ------------------------------------------------ *)

let test_datalog_stratification () =
  let open Datalog in
  let p_of rules = { Program.rules } in
  (* win(x) :- move(x,y), not win(y): stratifiable (no recursion through
     itself here since win is in a cycle with itself via negation!).
     Actually win <-neg- win is exactly the classic unstratifiable case. *)
  let win =
    Rule.make
      ~neg:[ Atom.make "win" [ y ] ]
      (Atom.make "win" [ x ])
      [ Atom.make "move" [ x; y ] ]
  in
  let fs = Lint.datalog_program ~edb:[ "move" ] (p_of [ win ]) in
  check Alcotest.bool "negative cycle is an error" true
    (has_code "stratification/negative-cycle" fs);
  check Alcotest.bool "errors reported" true (Finding.has_errors fs);
  (* Stratified program: negation only against a lower stratum. *)
  let reach =
    Rule.make (Atom.make "reach" [ x; y ]) [ Atom.make "edge" [ x; y ] ]
  in
  let unreach =
    Rule.make
      ~neg:[ Atom.make "reach" [ x; y ] ]
      (Atom.make "unreach" [ x; y ])
      [ Atom.make "node" [ x ]; Atom.make "node" [ y ] ]
  in
  let fs = Lint.datalog_program ~edb:[ "edge"; "node" ] (p_of [ reach; unreach ]) in
  check Alcotest.bool "stratified program has no errors" false
    (Finding.has_errors fs)

let test_datalog_unused_and_undefined () =
  let open Datalog in
  let dead = Rule.make (Atom.make "dead" [ x ]) [ Atom.make "e" [ x ] ] in
  let user =
    Rule.make (Atom.make "out" [ x ]) [ Atom.make "ghost" [ x ] ]
  in
  let fs = Lint.datalog_program ~edb:[ "e" ] { Program.rules = [ dead; user ] } in
  check Alcotest.bool "unused predicate noted" true
    (has_code "structure/unused-predicate" fs);
  check Alcotest.bool "undefined predicate warned" true
    (has_code "structure/undefined-predicate" fs)

let test_depgraph_structure () =
  let open Datalog in
  let r1 = Rule.make (Atom.make "t" [ x; y ]) [ Atom.make "e" [ x; y ] ] in
  let r2 =
    Rule.make (Atom.make "t" [ x; z ])
      [ Atom.make "e" [ x; y ]; Atom.make "t" [ y; z ] ]
  in
  let g = Depgraph.of_datalog { Program.rules = [ r1; r2 ] } in
  check (Alcotest.list Alcotest.string) "predicates" [ "e"; "t" ]
    (Depgraph.predicates g);
  check (Alcotest.list Alcotest.string) "recursive" [ "t" ]
    (Depgraph.recursive_predicates g);
  check Alcotest.bool "no negative cycle" true
    (Depgraph.negative_cycle_witness g = None);
  (* Dependencies first in the condensation order. *)
  check (Alcotest.list (Alcotest.list Alcotest.string)) "sccs topological"
    [ [ "e" ]; [ "t" ] ] (Depgraph.sccs g)

(* ---- Constraint-set analysis ------------------------------------------ *)

let test_weak_acyclicity () =
  (* Example 2.1's IND is acyclic: the chase terminates. *)
  let supply = Paper_examples.Supply.schema in
  let ind_of = function Ic.Ind i -> Some i | _ -> None in
  let inds ics = List.filter_map ind_of ics in
  check Alcotest.bool "Supply IND weakly acyclic" true
    (Ic_analysis.weakly_acyclic supply (inds [ Paper_examples.Supply.ind ])
    = None);
  let fs = Ic_analysis.analyze supply [ Paper_examples.Supply.ind ] in
  check Alcotest.bool "positive chase finding" true
    (has_code "chase/weakly-acyclic" fs);
  (* R[b] <= R[a]: the chase keeps inventing fresh b-values forever —
     a special edge on a cycle. *)
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]) ] in
  let looping = Ic.ind ~sub:("R", [ 1 ]) ~sup:("R", [ 0 ]) in
  check Alcotest.bool "self-feeding IND is not weakly acyclic" true
    (Ic_analysis.weakly_acyclic schema (inds [ looping ]) <> None);
  let fs = Ic_analysis.analyze schema [ looping ] in
  check Alcotest.bool "non-termination warned" true
    (has_code "chase/non-terminating" fs)

let test_ind_cycle_and_conformance () =
  let schema = Schema.of_list [ ("R", [ "a" ]); ("S", [ "a" ]) ] in
  let i1 = Ic.ind ~sub:("R", [ 0 ]) ~sup:("S", [ 0 ]) in
  let i2 = Ic.ind ~sub:("S", [ 0 ]) ~sup:("R", [ 0 ]) in
  let ind_of = function Ic.Ind i -> Some i | _ -> None in
  (match Ic_analysis.ind_cycle (List.filter_map ind_of [ i1; i2 ]) with
  | Some cycle -> check Alcotest.bool "cycle closes" true (List.length cycle >= 2)
  | None -> Alcotest.fail "R <-> S IND cycle not detected");
  let fs = Ic_analysis.analyze schema [ i1; i2 ] in
  check Alcotest.bool "cycle warned" true (has_code "ind/cycle" fs);
  (* Conformance: unknown relation and out-of-range position are errors. *)
  let fs = Ic_analysis.analyze schema [ Ic.key ~rel:"Nope" [ 0 ] ] in
  check Alcotest.bool "unknown relation" true
    (has_code "schema/unknown-relation" fs);
  let fs = Ic_analysis.analyze schema [ Ic.key ~rel:"R" [ 5 ] ] in
  check Alcotest.bool "position out of range" true
    (has_code "schema/position-out-of-range" fs);
  check Alcotest.bool "errors" true (Finding.has_errors fs)

(* ---- The paper's repair programs analyze clean ------------------------ *)

let test_paper_repair_programs_clean () =
  let program_findings schema ics =
    Lint.asp_program (Repair_programs.Compile.repair_program schema ics)
  in
  List.iter
    (fun (label, schema, ics) ->
      let fs = program_findings schema ics in
      check Alcotest.int (label ^ ": no errors") 0 (Finding.errors fs);
      check Alcotest.int (label ^ ": no warnings") 0 (Finding.warnings fs);
      (* The expected structure is still reported, as Info. *)
      check Alcotest.bool (label ^ ": unstratified noted") true
        (has_code "structure/unstratified" fs))
    [
      ( "Employee (Ex 3.3)",
        Paper_examples.Employee.schema,
        [ Paper_examples.Employee.key ] );
      ( "Denial kappa (Ex 3.5)",
        Paper_examples.Denial.schema,
        [ Paper_examples.Denial.kappa ] );
    ]

(* ---- The complexity classifier ---------------------------------------- *)

let emp_key = Paper_examples.Employee.key

let test_classifier_verdicts () =
  let classify ics q = (Classify.classify ics q : Classify.t) in
  (* Ex 3.3's queries: both C-forest, hence FO-rewritable. *)
  let names = Cq.make ~name:"names" [ x ] [ Atom.make "Employee" [ x; y ] ] in
  let c = classify [ emp_key ] names in
  check Alcotest.string "names verdict" "FO_rewritable"
    (Classify.verdict_label c.verdict);
  check Alcotest.string "names witness" "join-graph/c-forest"
    (Classify.witness_code c.witness);
  (* The trichotomy's hard tier: the Boolean nonkey-nonkey join is the
     Koutris–Wijsen strong 2-cycle (Fuxman–Miller's coNP-hard example). *)
  let rs_keys = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ] in
  let bhard =
    Cq.make ~name:"bhard" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let c = classify rs_keys bhard in
  check Alcotest.string "boolean hard verdict" "coNP_hard"
    (Classify.verdict_label c.verdict);
  check Alcotest.string "boolean hard witness" "attack-graph/strong-cycle"
    (Classify.witness_code c.witness);
  (* The same body with x free is NOT hard: the free variable acts as a
     constant, S's closure absorbs the join variable, and the attack
     graph is acyclic.  Outside the C-forest fragment, so the Datalog
     tier answers it. *)
  let hard =
    Cq.make ~name:"hard" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let c = classify rs_keys hard in
  check Alcotest.string "hard verdict" "L_datalog_rewritable"
    (Classify.verdict_label c.verdict);
  check Alcotest.string "hard witness" "attack-graph/acyclic"
    (Classify.witness_code c.witness);
  (* A join cycle that only closes through the free variable x is
     likewise acyclic: R attacks S but not vice versa. *)
  let cyc =
    Cq.make ~name:"cyc" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ]
  in
  let c = classify rs_keys cyc in
  check Alcotest.string "cyc verdict" "L_datalog_rewritable"
    (Classify.verdict_label c.verdict);
  check Alcotest.string "cyc witness" "attack-graph/acyclic"
    (Classify.witness_code c.witness);
  (* The Boolean cycle carries weak attacks both ways: PTIME per the
     trichotomy, but the recursive rewriting is out of scope. *)
  let bcyc =
    Cq.make ~name:"bcyc" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ]
  in
  let c = classify rs_keys bcyc in
  check Alcotest.string "weak cycle verdict" "unknown"
    (Classify.verdict_label c.verdict);
  check Alcotest.string "weak cycle witness" "attack-graph/weak-cycle"
    (Classify.witness_code c.witness);
  (* Non-key constraints put the pair outside the dichotomy. *)
  let over_r = Cq.make ~name:"q" [ x ] [ Atom.make "R" [ x; y ] ] in
  let c = classify [ Paper_examples.Denial.kappa ] over_r in
  check Alcotest.string "denial witness" "constraints/non-key"
    (Classify.witness_code c.witness);
  (* Constraints not touching the query's relations are irrelevant. *)
  let c = classify [ emp_key ] over_r in
  check Alcotest.string "foreign constraints" "constraints/none-relevant"
    (Classify.witness_code c.witness);
  check Alcotest.string "still rewritable" "FO_rewritable"
    (Classify.verdict_label c.verdict);
  (* Self-joins escape the dichotomy. *)
  let sj =
    Cq.make ~name:"sj" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "R" [ y; z ] ]
  in
  check Alcotest.string "self-join" "query/self-join"
    (Classify.witness_code (classify rs_keys sj).witness);
  (* Unions are not classified beyond their disjunct count. *)
  let u = Ucq.make ~name:"u" [ names; over_r ] in
  let c = Classify.classify_ucq [ emp_key ] u in
  check Alcotest.string "union witness" "query/union"
    (Classify.witness_code c.witness)

(* ---- Engine dispatch --------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_ucq_diagnostic_names_condition () =
  let rs_keys = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ] in
  let good = Cq.make ~name:"g" [ x ] [ Atom.make "R" [ x; y ] ] in
  let hard =
    Cq.make ~name:"h" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let d = Classify.ucq_rewriting_diagnostic rs_keys (Ucq.make ~name:"u" [ good; hard ]) in
  check Alcotest.bool "diagnostic names the failing disjunct" true
    (contains ~sub:"disjunct 2" d);
  check Alcotest.bool "diagnostic names the attack graph" true
    (contains ~sub:"attack graph" d);
  (* All-rewritable union: the diagnostic says what is missing instead. *)
  let good2 = Cq.make ~name:"g2" [ x ] [ Atom.make "S" [ x; y ] ] in
  let d = Classify.ucq_rewriting_diagnostic rs_keys (Ucq.make ~name:"u" [ good; good2 ]) in
  check Alcotest.bool "all-rewritable case explained" true
    (contains ~sub:"no union rewriting" d)

let test_engine_auto_dispatch () =
  let emp = Paper_examples.Employee.instance in
  let schema = Paper_examples.Employee.schema in
  let engine = Cqa.Engine.create ~schema ~ics:[ emp_key ] emp in
  let pairs = Cq.make ~name:"pairs" [ x; y ] [ Atom.make "Employee" [ x; y ] ] in
  let plan = Cqa.Engine.plan engine pairs in
  check Alcotest.string "routes to the rewriting" "key_rewriting"
    (Cqa.Engine.route_label plan.Cqa.Engine.route);
  let auto = Cqa.Engine.consistent_answers engine pairs in
  let enum =
    Cqa.Engine.consistent_answers ~method_:`Repair_enumeration engine pairs
  in
  check Alcotest.int "auto = enum" 0 (Stdlib.compare (List.sort compare auto)
    (List.sort compare enum));
  (* page has no certain salary; smith and stowe keep theirs. *)
  check Alcotest.int "two certain pairs" 2 (List.length auto);
  (* No relevant constraints: plain evaluation. *)
  let free = Cqa.Engine.create ~schema ~ics:[] emp in
  let plan = Cqa.Engine.plan free pairs in
  check Alcotest.string "routes direct" "direct"
    (Cqa.Engine.route_label plan.Cqa.Engine.route);
  check Alcotest.int "direct answers everything" 4
    (List.length (Cqa.Engine.consistent_answers free pairs))

let test_engine_rewriting_refusal_is_diagnostic () =
  let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "a"; "b" ]) ] in
  let db =
    Instance.of_rows schema
      [ ("R", [ [ Value.int 1; Value.int 2 ] ]);
        ("S", [ [ Value.int 3; Value.int 2 ] ]) ]
  in
  let ics = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ] in
  let engine = Cqa.Engine.create ~schema ~ics db in
  let hard =
    Cq.make ~name:"hard" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  (match
     Cqa.Engine.consistent_answers ~method_:`Key_rewriting engine hard
   with
  | _ -> Alcotest.fail "key rewriting accepted a non-C-forest query"
  | exception Invalid_argument msg ->
      check Alcotest.bool "message names the verdict" true
        (contains ~sub:"L_datalog_rewritable" msg);
      check Alcotest.bool "message names the attack graph" true
        (contains ~sub:"acyclic" msg));
  (* Auto still answers it — the acyclic attack graph outside the
     C-forest fragment routes to the Datalog rewriting. *)
  let plan = Cqa.Engine.plan engine hard in
  check Alcotest.string "L-tier route" "datalog_rewriting"
    (Cqa.Engine.route_label plan.Cqa.Engine.route);
  check Alcotest.int "L-tier answers" 1
    (List.length (Cqa.Engine.consistent_answers engine hard));
  (* Forced method=datalog works on this tier... *)
  check Alcotest.int "forced datalog answers" 1
    (List.length
       (Cqa.Engine.consistent_answers ~method_:`Datalog engine hard));
  (* ...and refuses the genuinely hard (Boolean) variant with the
     coNP-hardness witness in the message. *)
  let bhard =
    Cq.make ~name:"bhard" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  match Cqa.Engine.consistent_answers ~method_:`Datalog engine bhard with
  | _ -> Alcotest.fail "datalog rewriting accepted a coNP-hard pattern"
  | exception Invalid_argument msg ->
      check Alcotest.bool "refusal names the hard verdict" true
        (contains ~sub:"coNP_hard" msg)

(* ---- Report determinism ------------------------------------------------ *)

let doc_text =
  String.concat "\n"
    [
      "relation Employee(name, salary)";
      "row Employee(page, 5000)";
      "row Employee(page, 8000)";
      "row Employee(smith, 3000)";
      "key Employee(name)";
      "query names(X) :- Employee(X, Y)";
      "query pairs(X, Y) :- Employee(X, Y)";
    ]

let test_report_determinism () =
  let lines () =
    Cqa.Analyze.lines (Cqa.Analyze.document (Cqa.Parse.document_of_string doc_text))
  in
  let l1 = lines () and l2 = lines () in
  check (Alcotest.list Alcotest.string) "identical across runs" l1 l2;
  (* Finding.sort is order-insensitive and dedups. *)
  let f c s = Finding.make Finding.Warning ~code:c ~subject:s "m" in
  let fs = [ f "b" "s1"; f "a" "s2"; f "a" "s1"; f "b" "s1" ] in
  check (Alcotest.list Alcotest.string) "sort canonicalizes"
    (List.map Finding.to_line (Finding.sort fs))
    (List.map Finding.to_line (Finding.sort (List.rev fs)))

let test_analyze_document_report () =
  let doc = Cqa.Parse.document_of_string doc_text in
  let report = Cqa.Analyze.document doc in
  check Alcotest.bool "clean document" false (Cqa.Analyze.has_errors report);
  check Alcotest.int "two queries" 2 (List.length report.Cqa.Analyze.queries);
  let qlines = Cqa.Analyze.query_lines doc "names" in
  check Alcotest.bool "query lines mention the verdict" true
    (List.exists (contains ~sub:"FO_rewritable") qlines);
  check Alcotest.bool "query lines mention the route" true
    (List.exists (contains ~sub:"route key_rewriting") qlines);
  (match Cqa.Analyze.query_lines doc "nope" with
  | _ -> Alcotest.fail "unknown query accepted"
  | exception Not_found -> ())

(* ---- Server: ANALYZE and the analyzer-backed refusal ------------------- *)

let server_doc =
  [
    "relation T(k, v)";
    "row T(1, 1)";
    "row T(1, 2)";
    "row T(2, 5)";
    "key T(k)";
    "query q(X) :- T(X, Y)";
    "query u(X) :- T(X, Y)";
    "query u(Y) :- T(X, Y)";
  ]

let load h sid =
  match Server.Handler.dispatch h ~payload:server_doc (P.Load sid) with
  | { P.status = `Ok; _ } -> ()
  | { P.head; _ } -> Alcotest.fail ("LOAD failed: " ^ head)

let test_server_analyze () =
  let h = Server.Handler.create () in
  load h "s1";
  let r = Server.Handler.handle_line h "ANALYZE s1" in
  check Alcotest.bool "ANALYZE ok" true (r.P.status = `Ok);
  check Alcotest.bool "head says analyze" true
    (contains ~sub:"analyze" r.P.head);
  check Alcotest.bool "body has the query section" true
    (List.exists (contains ~sub:"verdict FO_rewritable") r.P.body);
  (* Per-query form. *)
  let r = Server.Handler.handle_line h "ANALYZE s1 q" in
  check Alcotest.bool "per-query ok" true (r.P.status = `Ok);
  check Alcotest.bool "per-query verdict" true
    (List.exists (contains ~sub:"verdict FO_rewritable") r.P.body);
  let r = Server.Handler.handle_line h "ANALYZE s1 nope" in
  check Alcotest.bool "unknown query is ERR" true (r.P.status = `Err);
  let r = Server.Handler.handle_line h "ANALYZE nosession" in
  check Alcotest.bool "unknown session is ERR" true (r.P.status = `Err)

let test_server_rewriting_refusal () =
  let h = Server.Handler.create () in
  load h "s1";
  (* u is a union query: rewriting must refuse with the analyzer's
     diagnostic, not a bare "not applicable". *)
  let r = Server.Handler.handle_line h "QUERY s1 u method=rewriting" in
  check Alcotest.bool "refused" true (r.P.status = `Err);
  check Alcotest.bool "diagnostic names the condition" true
    (contains ~sub:"FO-rewritable" r.P.head
    || contains ~sub:"disjunct" r.P.head);
  (* But auto and enum still answer it. *)
  let r = Server.Handler.handle_line h "QUERY s1 u" in
  check Alcotest.bool "auto answers the union" true (r.P.status = `Ok)

let test_server_explain_has_analysis () =
  let h = Server.Handler.create () in
  load h "s1";
  let r = Server.Handler.handle_line h "EXPLAIN s1 q" in
  check Alcotest.bool "EXPLAIN ok" true (r.P.status = `Ok);
  check Alcotest.bool "analysis section present" true
    (List.exists (contains ~sub:"-- analysis") r.P.body);
  check Alcotest.bool "verdict visible" true
    (List.exists (contains ~sub:"verdict") r.P.body)

(* ---- Property: the dispatch is sound ----------------------------------- *)

let prop_schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]) ]
let prop_ics = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ]

let prop_queries =
  [
    Cq.make ~name:"pairs" [ x; y ] [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"keys" [ x ] [ Atom.make "R" [ x; y ] ];
    Cq.make ~name:"chain" [ x; z ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ];
  ]

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6) (pair (int_range 0 2) (int_range 0 3)))
        (list_size (int_range 0 6) (pair (int_range 0 3) (int_range 0 2))))
    ~print:(fun (rs, ss) ->
      let row (a, b) = Printf.sprintf "(%d,%d)" a b in
      Printf.sprintf "R=%s S=%s"
        (String.concat "" (List.map row rs))
        (String.concat "" (List.map row ss)))

let prop_fo_rewritable_is_sound =
  QCheck.Test.make ~count:150
    ~name:"FO_rewritable => rewriting agrees with enumeration" arb_db
    (fun (rs, ss) ->
      let db =
        Instance.of_rows prop_schema
          [
            ("R", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) rs);
            ("S", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) ss);
          ]
      in
      let engine = Cqa.Engine.create ~schema:prop_schema ~ics:prop_ics db in
      List.for_all
        (fun q ->
          match (Classify.classify prop_ics q).Classify.verdict with
          | Classify.Fo_rewritable ->
              let rw =
                Cqa.Engine.consistent_answers ~method_:`Key_rewriting engine q
              in
              let enum =
                Cqa.Engine.consistent_answers ~method_:`Repair_enumeration
                  engine q
              in
              List.sort compare rw = List.sort compare enum
          | _ -> true)
        prop_queries)

let suite =
  [
    Alcotest.test_case "unsafe datalog rule" `Quick test_unsafe_datalog_rule;
    Alcotest.test_case "unsafe asp rule" `Quick test_unsafe_asp_rule;
    Alcotest.test_case "stratification" `Quick test_datalog_stratification;
    Alcotest.test_case "unused/undefined predicates" `Quick
      test_datalog_unused_and_undefined;
    Alcotest.test_case "dependency graph" `Quick test_depgraph_structure;
    Alcotest.test_case "weak acyclicity" `Quick test_weak_acyclicity;
    Alcotest.test_case "IND cycles and conformance" `Quick
      test_ind_cycle_and_conformance;
    Alcotest.test_case "paper repair programs analyze clean" `Quick
      test_paper_repair_programs_clean;
    Alcotest.test_case "classifier verdicts" `Quick test_classifier_verdicts;
    Alcotest.test_case "ucq diagnostic" `Quick
      test_ucq_diagnostic_names_condition;
    Alcotest.test_case "engine auto dispatch" `Quick test_engine_auto_dispatch;
    Alcotest.test_case "rewriting refusal is diagnostic" `Quick
      test_engine_rewriting_refusal_is_diagnostic;
    Alcotest.test_case "report determinism" `Quick test_report_determinism;
    Alcotest.test_case "document report" `Quick test_analyze_document_report;
    Alcotest.test_case "server ANALYZE" `Quick test_server_analyze;
    Alcotest.test_case "server rewriting refusal" `Quick
      test_server_rewriting_refusal;
    Alcotest.test_case "server EXPLAIN analysis section" `Quick
      test_server_explain_has_analysis;
    QCheck_alcotest.to_alcotest prop_fo_rewritable_is_sound;
  ]
