module Fact = Relational.Fact
module Value = Relational.Value
module Rule = Datalog.Rule
module Program = Datalog.Program
module Eval = Datalog.Eval
open Logic

let check = Alcotest.check
let v = Value.str
let fact rel values = Fact.make rel (List.map v values)
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

let edge_facts =
  [
    fact "edge" [ "a"; "b" ];
    fact "edge" [ "b"; "c" ];
    fact "edge" [ "c"; "d" ];
    fact "edge" [ "d"; "b" ];
  ]

let tc_program =
  Program.make
    [
      Rule.make (Atom.make "path" [ x; y ]) [ Atom.make "edge" [ x; y ] ];
      Rule.make
        (Atom.make "path" [ x; z ])
        [ Atom.make "edge" [ x; y ]; Atom.make "path" [ y; z ] ];
    ]

let test_transitive_closure () =
  let rows = Eval.query tc_program edge_facts "path" in
  (* Reachability in a->b->c->d->b: from a: b,c,d; from b: b,c,d (cycle);
     from c: b,c,d; from d: b,c,d.  12 pairs. *)
  check Alcotest.int "12 reachable pairs" 12 (List.length rows)

let test_stratified_negation () =
  let program =
    Program.make
      [
        Rule.make (Atom.make "node" [ x ]) [ Atom.make "edge" [ x; y ] ];
        Rule.make (Atom.make "node" [ y ]) [ Atom.make "edge" [ x; y ] ];
        Rule.make (Atom.make "path" [ x; y ]) [ Atom.make "edge" [ x; y ] ];
        Rule.make
          (Atom.make "path" [ x; z ])
          [ Atom.make "edge" [ x; y ]; Atom.make "path" [ y; z ] ];
        Rule.make
          ~neg:[ Atom.make "path" [ x; x ] ]
          (Atom.make "acyclic" [ x ])
          [ Atom.make "node" [ x ] ];
      ]
  in
  let rows = Eval.query program edge_facts "acyclic" in
  (* Only 'a' is outside the b-c-d cycle. *)
  check Alcotest.(list (list string))
    "a only"
    [ [ "a" ] ]
    (List.map (List.map Value.to_string) rows)

let test_unstratifiable () =
  let program =
    Program.make
      [
        Rule.make ~neg:[ Atom.make "q" [ x ] ] (Atom.make "p" [ x ])
          [ Atom.make "d" [ x ] ];
        Rule.make ~neg:[ Atom.make "p" [ x ] ] (Atom.make "q" [ x ])
          [ Atom.make "d" [ x ] ];
      ]
  in
  check Alcotest.bool "stratify returns None" true (Program.stratify program = None);
  Alcotest.check_raises "eval raises" Eval.Unstratifiable (fun () ->
      ignore (Eval.run program [ fact "d" [ "a" ] ]))

let test_comparisons () =
  let program =
    Program.make
      [
        Rule.make
          ~comps:[ Cmp.neq x y ]
          (Atom.make "diff" [ x; y ])
          [ Atom.make "d" [ x ]; Atom.make "d" [ y ] ];
      ]
  in
  let rows = Eval.query program [ fact "d" [ "a" ]; fact "d" [ "b" ] ] "diff" in
  check Alcotest.int "two ordered pairs" 2 (List.length rows)

let test_unsafe_rule () =
  Alcotest.check_raises "unsafe"
    (Invalid_argument
       "Rule.make: unsafe rule, variable y not bound by a positive atom")
    (fun () ->
      ignore (Rule.make (Atom.make "p" [ x; y ]) [ Atom.make "d" [ x ] ]))

(* GAV unfolding flavour: views defined over sources (Example 5.1). *)
let test_gav_views () =
  let program =
    Program.make
      [
        Rule.make
          (Atom.make "Stds" [ x; y; Term.str "cu"; z ])
          [ Atom.make "CUstds" [ x; y ]; Atom.make "SpecCU" [ x; z ] ];
        Rule.make
          (Atom.make "Stds" [ x; y; Term.str "ou"; z ])
          [ Atom.make "OUstds" [ x; y ]; Atom.make "SpecOU" [ x; z ] ];
      ]
  in
  let edb =
    [
      fact "CUstds" [ "101"; "john" ];
      fact "CUstds" [ "102"; "mary" ];
      fact "OUstds" [ "103"; "claire" ];
      fact "OUstds" [ "104"; "peter" ];
      fact "SpecCU" [ "101"; "alg" ];
      fact "SpecCU" [ "102"; "ai" ];
      fact "SpecOU" [ "103"; "db" ];
    ]
  in
  let rows = Eval.query program edb "Stds" in
  check Alcotest.int "three global students" 3 (List.length rows)

let test_datalog_null_is_constant () =
  let program =
    Program.make
      [
        Rule.make (Atom.make "j" [ x ]) [ Atom.make "p" [ x ]; Atom.make "q" [ x ] ];
      ]
  in
  let edb = [ Fact.make "p" [ Value.Null ]; Fact.make "q" [ Value.Null ] ] in
  let rows = Eval.query program edb "j" in
  (* Unlike SQL evaluation, Datalog matches NULL structurally. *)
  check Alcotest.int "null joins as a constant" 1 (List.length rows)

let suite =
  [
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "stratified negation" `Quick test_stratified_negation;
    Alcotest.test_case "unstratifiable program" `Quick test_unstratifiable;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "safety" `Quick test_unsafe_rule;
    Alcotest.test_case "GAV view rules (Ex 5.1)" `Quick test_gav_views;
    Alcotest.test_case "NULL is a plain constant" `Quick test_datalog_null_is_constant;
  ]
