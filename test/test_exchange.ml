module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
open Logic

let check = Alcotest.check
let v = Value.str
let rows_to_strings rows = List.map (List.map Value.to_string) rows

let source_schema = Schema.of_list [ ("Emp", [ "name"; "dept" ]) ]

let target_schema =
  Schema.of_list [ ("TEmp", [ "name"; "dept" ]); ("TDept", [ "dept"; "mgr" ]) ]

let n = Term.var "n"
let d = Term.var "d"
let m = Term.var "m"

(* Emp(n, d) → TEmp(n, d) ∧ ∃m TDept(d, m). *)
let setting =
  {
    Exchange.source_schema;
    target_schema;
    st_tgds =
      [
        Exchange.st_tgd
          ~body:(Cq.make [ n; d ] [ Atom.make "Emp" [ n; d ] ])
          ~head:[ Atom.make "TEmp" [ n; d ]; Atom.make "TDept" [ d; m ] ];
      ];
    egds =
      [
        (* Departments have one manager. *)
        Exchange.egd
          ~body:[ Atom.make "TDept" [ d; Term.var "m1" ];
                  Atom.make "TDept" [ d; Term.var "m2" ] ]
          "m1" "m2";
      ];
    target_ics = [];
  }

let source =
  Instance.of_rows source_schema
    [ ("Emp", [ [ v "ann"; v "cs" ]; [ v "bob"; v "cs" ]; [ v "eve"; v "math" ] ]) ]

let test_chase_solution () =
  match Exchange.chase setting source with
  | Exchange.Failed reason -> Alcotest.failf "chase failed: %s" reason
  | Exchange.Solution target ->
      check Alcotest.int "3 TEmp rows" 3 (Instance.cardinality target ~rel:"TEmp");
      (* ann's and bob's manager nulls were unified by the egd. *)
      check Alcotest.int "2 TDept rows" 2 (Instance.cardinality target ~rel:"TDept");
      let nulls =
        Instance.rows target ~rel:"TDept"
        |> List.filter (fun row -> Exchange.is_labeled_null row.(1))
      in
      check Alcotest.int "managers are labeled nulls" 2 (List.length nulls)

let test_certain_answers () =
  let q_emp = Cq.make [ n; d ] [ Atom.make "TEmp" [ n; d ] ] in
  check Alcotest.int "employee rows certain" 3
    (List.length (Exchange.certain_answers setting source q_emp));
  (* Manager values are nulls: not certain. *)
  let q_mgr = Cq.make [ m ] [ Atom.make "TDept" [ d; m ] ] in
  check Alcotest.int "no certain manager" 0
    (List.length (Exchange.certain_answers setting source q_mgr));
  (* But the departments exist. *)
  let q_dept = Cq.make [ d ] [ Atom.make "TDept" [ d; m ] ] in
  check
    Alcotest.(list (list string))
    "departments certain"
    [ [ "cs" ]; [ "math" ] ]
    (rows_to_strings (Exchange.certain_answers setting source q_dept))

(* A failing exchange: two sources claim different managers for cs. *)
let mgr_schema = Schema.of_list [ ("DeptMgr", [ "dept"; "mgr" ]) ]

let mgr_setting =
  {
    Exchange.source_schema = mgr_schema;
    target_schema;
    st_tgds =
      [
        Exchange.st_tgd
          ~body:(Cq.make [ d; m ] [ Atom.make "DeptMgr" [ d; m ] ])
          ~head:[ Atom.make "TDept" [ d; m ] ];
      ];
    egds =
      [
        Exchange.egd
          ~body:[ Atom.make "TDept" [ d; Term.var "m1" ];
                  Atom.make "TDept" [ d; Term.var "m2" ] ]
          "m1" "m2";
      ];
    target_ics = [];
  }

let mgr_source =
  Instance.of_rows mgr_schema
    [
      ( "DeptMgr",
        [ [ v "cs"; v "carl" ]; [ v "cs"; v "dana" ]; [ v "math"; v "mia" ] ] );
    ]

let test_chase_failure () =
  match Exchange.chase mgr_setting mgr_source with
  | Exchange.Failed _ -> ()
  | Exchange.Solution _ -> Alcotest.fail "expected failure"

let test_exchange_repairs () =
  let repairs = Exchange.exchange_repairs mgr_setting mgr_source in
  check Alcotest.int "two minimal source repairs" 2 (List.length repairs);
  List.iter
    (fun (src, _target) ->
      check Alcotest.int "one deletion each" 2 (Instance.size src))
    repairs;
  let q = Cq.make [ d; m ] [ Atom.make "TDept" [ d; m ] ] in
  check
    Alcotest.(list (list string))
    "math's manager certain, cs's not"
    [ [ "math"; "mia" ] ]
    (rows_to_strings
       (Exchange.exchange_repair_certain_answers mgr_setting mgr_source q))

let test_target_ics () =
  (* A target denial can also fail the exchange. *)
  let setting_ic =
    {
      mgr_setting with
      Exchange.egds = [];
      target_ics =
        [
          Constraints.Ic.denial ~name:"no_carl"
            [ Atom.make "TDept" [ d; Term.str "carl" ] ];
        ];
    }
  in
  (match Exchange.chase setting_ic mgr_source with
  | Exchange.Failed _ -> ()
  | Exchange.Solution _ -> Alcotest.fail "target IC should fail the chase");
  let repairs = Exchange.exchange_repairs setting_ic mgr_source in
  check Alcotest.int "delete the carl source tuple" 1 (List.length repairs)

let test_consistent_source_no_repair_needed () =
  let repairs = Exchange.exchange_repairs setting source in
  check Alcotest.int "identity repair" 1 (List.length repairs);
  match repairs with
  | [ (src, _) ] -> check Alcotest.bool "source unchanged" true (Instance.equal src source)
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "chase builds a universal solution" `Quick
      test_chase_solution;
    Alcotest.test_case "certain answers drop labeled nulls" `Quick
      test_certain_answers;
    Alcotest.test_case "egd on constants fails the chase" `Quick
      test_chase_failure;
    Alcotest.test_case "exchange-repairs of a failing source" `Quick
      test_exchange_repairs;
    Alcotest.test_case "target denial constraints" `Quick test_target_ics;
    Alcotest.test_case "consistent source needs no repair" `Quick
      test_consistent_source_no_repair_needed;
  ]
