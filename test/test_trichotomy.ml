(* The attack-graph trichotomy end to end: attack edges with their
   strong/weak classification, elimination orders, saturation as an
   equivalence-preserving preprocessing step, the Datalog rewriting's
   agreement with repair enumeration (unit + qcheck), and the seminaive
   evaluator's counters on the datalog branch. *)

module Attack_graph = Analysis.Attack_graph
module Classify = Analysis.Classify
module Lint = Analysis.Lint
module Finding = Analysis.Finding
module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Ic = Constraints.Ic
open Logic

let check = Alcotest.check
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let rs_schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "c"; "d" ]) ]
let rs_ics = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ] ]
let rs_keys = [ ("R", [ 0 ]); ("S", [ 0 ]) ]

let edges (g : Attack_graph.t) =
  List.map
    (fun (a : Attack_graph.attack) -> (a.source, a.target, a.strong))
    g.attacks

let edge = Alcotest.(list (triple int int bool))

(* ---- Attack edges, strength, cycles ---------------------------------- *)

let test_attack_edges () =
  (* Boolean nonkey-nonkey join — the Fuxman–Miller hard example — is a
     2-cycle of strong attacks. *)
  let bhard =
    Cq.make ~name:"bhard" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let g = Attack_graph.analyze bhard ~keys:rs_keys in
  check edge "bhard attacks" [ (0, 1, true); (1, 0, true) ] (edges g);
  (match g.cycle with
  | Some (Attack_graph.Strong_pair _) -> ()
  | _ -> Alcotest.fail "expected a strong 2-cycle");
  check Alcotest.bool "cyclic graph has no order" true (g.order = None);
  (* Free x acts as a constant: S's closure absorbs the join variable, so
     only R attacks S and the graph is acyclic. *)
  let hard =
    Cq.make ~name:"hard" [ x ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ]
  in
  let g = Attack_graph.analyze hard ~keys:rs_keys in
  check edge "hard attacks" [ (0, 1, true) ] (edges g);
  check Alcotest.(option (list int)) "hard order" (Some [ 0; 1 ]) g.order;
  (* The Boolean join cycle carries weak attacks both ways: each key is
     implied by the other under the full dependency set. *)
  let bcyc =
    Cq.make ~name:"bcyc" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ]
  in
  let g = Attack_graph.analyze bcyc ~keys:rs_keys in
  check edge "bcyc attacks" [ (0, 1, false); (1, 0, false) ] (edges g);
  match g.cycle with
  | Some (Attack_graph.Weak [ 0; 1 ]) -> ()
  | _ -> Alcotest.fail "expected a weak 2-cycle"

(* ---- The canonical L-tier example ------------------------------------ *)

(* pair(M) :- Advises(M, S), Assists(S, M), both keyed on their first
   column: the attack graph is acyclic (Advises attacks Assists, not
   vice versa) but the join into Assists' key is outside the C-forest
   fragment, so the engine must route to the Datalog rewriting. *)
let mentor_schema =
  Schema.of_list
    [ ("Advises", [ "mentor"; "student" ]); ("Assists", [ "student"; "mentor" ]) ]

let mentor_ics = [ Ic.key ~rel:"Advises" [ 0 ]; Ic.key ~rel:"Assists" [ 0 ] ]
let m = Term.var "m"
let s = Term.var "s"

let pair_q =
  Cq.make ~name:"pair" [ m ]
    [ Atom.make "Advises" [ m; s ]; Atom.make "Assists" [ s; m ] ]

let mentor_db =
  Instance.of_rows mentor_schema
    [
      ( "Advises",
        [
          [ Value.str "ann"; Value.str "bob" ];
          [ Value.str "cara"; Value.str "dan" ];
          [ Value.str "cara"; Value.str "ed" ];
        ] );
      ( "Assists",
        [
          [ Value.str "bob"; Value.str "ann" ];
          [ Value.str "dan"; Value.str "cara" ];
        ] );
    ]

let test_l_tier_routing_and_answers () =
  let eng = Cqa.Engine.create ~schema:mentor_schema ~ics:mentor_ics mentor_db in
  let plan = Cqa.Engine.plan eng pair_q in
  check Alcotest.string "plan routes to the datalog rewriting"
    "datalog_rewriting"
    (Cqa.Engine.route_label plan.Cqa.Engine.route);
  check Alcotest.string "verdict" "L_datalog_rewritable"
    (Classify.verdict_label
       plan.Cqa.Engine.classification.Classify.verdict);
  (* ann's block is consistent and assisted back; cara's conflicting
     advisees are not both assisting, so only ann is certain. *)
  let rows m = Cqa.Engine.consistent_answers ~method_:m eng pair_q in
  let expect = [ [ Value.str "ann" ] ] in
  check Alcotest.bool "auto answers" true
    (Cqa.Engine.consistent_answers eng pair_q = expect);
  check Alcotest.bool "datalog answers" true (rows `Datalog = expect);
  check Alcotest.bool "enumeration agrees" true
    (rows `Repair_enumeration = expect)

let test_datalog_counters_fire () =
  let eng = Cqa.Engine.create ~schema:mentor_schema ~ics:mentor_ics mentor_db in
  let reg = Obs.Registry.current () in
  let before = Obs.Registry.counter_snapshot reg in
  ignore (Cqa.Engine.consistent_answers ~method_:`Datalog eng pair_q);
  let delta = Obs.Registry.counter_delta ~since:before reg in
  let d name = Option.value ~default:0 (List.assoc_opt name delta) in
  check Alcotest.bool "seminaive rounds counted" true
    (d "datalog.seminaive.rounds" > 0);
  check Alcotest.bool "seminaive facts counted" true
    (d "datalog.seminaive.facts" > 0);
  check Alcotest.bool "rewriting counted applicable" true
    (d "rewrite.datalog_applicable" > 0);
  check Alcotest.int "no repairs enumerated" 0 (d "repairs.enumerations")

let test_null_instance_falls_back () =
  (* Datalog matches NULLs structurally while Cq.answers uses the SQL
     three-valued logic, so the rewriting declines instances with NULL
     and auto falls back to (sound) enumeration. *)
  let db =
    Instance.of_rows mentor_schema
      [
        ("Advises", [ [ Value.str "ann"; Value.Null ] ]);
        ("Assists", [ [ Value.str "bob"; Value.str "ann" ] ]);
      ]
  in
  let eng = Cqa.Engine.create ~schema:mentor_schema ~ics:mentor_ics db in
  check Alcotest.(list (list string)) "auto stays sound on NULLs" []
    (List.map (List.map (Format.asprintf "%a" Value.pp))
       (Cqa.Engine.consistent_answers eng pair_q))

(* ---- Saturation ------------------------------------------------------- *)

(* The Koutris–Wijsen triangle: q() :- R(x,y), S(y,z), T(x,z), all keyed
   on their first column.  T's non-key z is internally determined
   (x -> y by R, y -> z by S), so saturation fires for (T, z). *)
let tri_schema =
  Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]); ("T", [ "a"; "c" ]) ]

let tri_ics =
  [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ]; Ic.key ~rel:"T" [ 0 ] ]

let tri_keys = [ ("R", [ 0 ]); ("S", [ 0 ]); ("T", [ 0 ]) ]

let triangle =
  Cq.make ~name:"tri" []
    [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ]; Atom.make "T" [ x; z ] ]

let test_saturation_fires_on_triangle () =
  match Attack_graph.saturate triangle ~keys:tri_keys with
  | None -> Alcotest.fail "saturation should fire on the triangle query"
  | Some sat ->
      check Alcotest.int "one internal dependency" 1
        (List.length sat.Attack_graph.derived);
      let fd = List.hd sat.Attack_graph.derived in
      check Alcotest.string "on atom T" "T" fd.Attack_graph.rel;
      check Alcotest.string "for variable z" "z" fd.Attack_graph.var;
      check Alcotest.int "one helper atom appended" 4
        (List.length sat.Attack_graph.squery.Cq.body);
      check Alcotest.int "one defining rule" 1
        (List.length sat.Attack_graph.rules);
      (* The helper carries a whole-tuple key. *)
      let helper =
        (List.nth sat.Attack_graph.squery.Cq.body 3 : Atom.t).rel
      in
      check Alcotest.(option (list int)) "whole-tuple key" (Some [ 0; 1 ])
        (List.assoc_opt helper sat.Attack_graph.skeys);
      check Alcotest.bool "description names the path" true
        (String.length (Attack_graph.describe_fd fd) > 0)

(* Materialize the helper predicates over the raw database and hand back
   the extended (schema, ics, instance) triple for enumeration. *)
let extend_with_helpers schema ics db (sat : Attack_graph.saturation) =
  let heads =
    List.sort_uniq String.compare
      (List.map (fun (r : Datalog.Rule.t) -> r.head.Atom.rel) sat.rules)
  in
  let derived = Datalog.Eval.run_instance (Datalog.Program.make sat.rules) db in
  let helper_facts =
    List.filter
      (fun (f : Fact.t) -> List.mem f.rel heads)
      (Fact.Set.elements derived)
  in
  let arity r =
    match List.assoc_opt r sat.skeys with
    | Some ps -> List.length ps
    | None -> invalid_arg "helper without a whole-tuple key"
  in
  let schema' =
    List.fold_left
      (fun sc r ->
        Schema.add_relation sc ~name:r
          ~attributes:(List.init (arity r) (Printf.sprintf "a%d")))
      schema heads
  in
  let ics' =
    ics @ List.map (fun r -> Ic.key ~rel:r (List.init (arity r) Fun.id)) heads
  in
  let db' =
    Instance.add_all (Instance.of_facts schema' (Instance.fact_list db)) helper_facts
  in
  (schema', ics', db')

let certain_enum schema ics db q =
  let eng = Cqa.Engine.create ~schema ~ics db in
  List.sort compare
    (Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q)

let saturation_equivalent db =
  match Attack_graph.saturate triangle ~keys:tri_keys with
  | None -> false
  | Some sat ->
      let schema', ics', db' = extend_with_helpers tri_schema tri_ics db sat in
      certain_enum tri_schema tri_ics db triangle
      = certain_enum schema' ics' db' sat.Attack_graph.squery

let test_saturation_preserves_certainty () =
  let db =
    Instance.of_rows tri_schema
      [
        ("R", [ [ Value.int 1; Value.int 2 ]; [ Value.int 1; Value.int 3 ] ]);
        ("S", [ [ Value.int 2; Value.int 5 ]; [ Value.int 3; Value.int 5 ] ]);
        ("T", [ [ Value.int 1; Value.int 5 ]; [ Value.int 1; Value.int 6 ] ]);
      ]
  in
  check Alcotest.bool "CERTAINTY(q) = CERTAINTY(saturate q)" true
    (saturation_equivalent db)

(* ---- Self-join lint --------------------------------------------------- *)

let test_self_join_lint () =
  let sj =
    Cq.make ~name:"sj" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "R" [ y; z ] ]
  in
  let fs = Lint.query_findings sj in
  check Alcotest.int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check Alcotest.string "code" "query/self-join" f.Finding.code;
  check Alcotest.string "severity is a warning, not an error" "warning"
    (Finding.severity_label f.Finding.severity);
  check Alcotest.string "subject is the query" "sj" f.Finding.subject;
  check Alcotest.bool "message explains the fallback" true
    (let msg = f.Finding.message in
     let has sub = Str.string_match (Str.regexp (".*" ^ sub ^ ".*")) msg 0 in
     has "trichotomy" && has "enumeration");
  let sjf =
    Cq.make ~name:"ok" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ]
  in
  check Alcotest.int "self-join-free query is clean" 0
    (List.length (Lint.query_findings sjf))

(* ---- qcheck: the rewriting is exact on its tier ----------------------- *)

let arb_rs =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6) (pair (int_range 0 2) (int_range 0 3)))
        (list_size (int_range 0 6) (pair (int_range 0 3) (int_range 0 2))))
    ~print:(fun (rs, ss) ->
      let row (a, b) = Printf.sprintf "(%d,%d)" a b in
      Printf.sprintf "R=%s S=%s"
        (String.concat "" (List.map row rs))
        (String.concat "" (List.map row ss)))

let l_queries =
  [
    (* nonkey-nonkey join with a free variable *)
    Cq.make ~name:"hard" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ z; y ] ];
    (* join cycle closed through the free variable *)
    Cq.make ~name:"cyc" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ];
  ]

let prop_datalog_is_exact_on_l_tier =
  QCheck.Test.make ~count:150
    ~name:"L_datalog_rewritable => datalog = enumeration" arb_rs
    (fun (rs, ss) ->
      let db =
        Instance.of_rows rs_schema
          [
            ("R", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) rs);
            ("S", List.map (fun (a, b) -> [ Value.int a; Value.int b ]) ss);
          ]
      in
      let eng = Cqa.Engine.create ~schema:rs_schema ~ics:rs_ics db in
      List.for_all
        (fun q ->
          match (Classify.classify rs_ics q).Classify.verdict with
          | Classify.L_datalog_rewritable ->
              List.sort compare
                (Cqa.Engine.consistent_answers ~method_:`Datalog eng q)
              = List.sort compare
                  (Cqa.Engine.consistent_answers ~method_:`Repair_enumeration
                     eng q)
          | _ -> true)
        l_queries)

let arb_tri =
  QCheck.make
    QCheck.Gen.(
      triple
        (list_size (int_range 0 4) (pair (int_range 0 2) (int_range 0 2)))
        (list_size (int_range 0 4) (pair (int_range 0 2) (int_range 0 2)))
        (list_size (int_range 0 4) (pair (int_range 0 2) (int_range 0 2))))
    ~print:(fun (rs, ss, ts) ->
      let side l =
        String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) l)
      in
      Printf.sprintf "R=%s S=%s T=%s" (side rs) (side ss) (side ts))

let prop_saturation_preserves_certainty =
  QCheck.Test.make ~count:100
    ~name:"saturation fires => CERTAINTY(q) = CERTAINTY(saturate q)" arb_tri
    (fun (rs, ss, ts) ->
      let rows l = List.map (fun (a, b) -> [ Value.int a; Value.int b ]) l in
      let db =
        Instance.of_rows tri_schema
          [ ("R", rows rs); ("S", rows ss); ("T", rows ts) ]
      in
      saturation_equivalent db)

let suite =
  [
    Alcotest.test_case "attack edges, strength and cycles" `Quick
      test_attack_edges;
    Alcotest.test_case "L tier routes to datalog and answers" `Quick
      test_l_tier_routing_and_answers;
    Alcotest.test_case "datalog counters fire" `Quick
      test_datalog_counters_fire;
    Alcotest.test_case "NULL instances fall back soundly" `Quick
      test_null_instance_falls_back;
    Alcotest.test_case "saturation fires on the triangle" `Quick
      test_saturation_fires_on_triangle;
    Alcotest.test_case "saturation preserves certainty" `Quick
      test_saturation_preserves_certainty;
    Alcotest.test_case "self-join lint" `Quick test_self_join_lint;
    QCheck_alcotest.to_alcotest prop_datalog_is_exact_on_l_tier;
    QCheck_alcotest.to_alcotest prop_saturation_preserves_certainty;
  ]
