(* cqa-fast equivalence suites: every indexed/bucketed/parallel fast path
   must be observationally identical to the naive one it replaces.
   [Instance.set_indexing false] routes lookups through full scans, so the
   same workload evaluated under both settings compares the two engines. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Tid = Relational.Tid
module Tvl = Relational.Tvl
module Ra = Relational.Ra
open Logic

let check = Alcotest.check

let with_indexing on f =
  let prev = Instance.indexing_enabled () in
  Instance.set_indexing on;
  Fun.protect ~finally:(fun () -> Instance.set_indexing prev) f

(* Values in 0..3 force join collisions; 4 encodes NULL so three-valued
   semantics get exercised on every path. *)
let value_of n = if n >= 4 then Value.Null else Value.int n

let schema = Schema.of_list [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]) ]

let instance_of (rs, ss) =
  Instance.of_rows schema
    [
      ("R", List.map (fun (a, b) -> [ value_of a; value_of b ]) rs);
      ("S", List.map (fun (b, c) -> [ value_of b; value_of c ]) ss);
    ]

let arb_db =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 8) (pair (int_range 0 4) (int_range 0 4)))
        (list_size (int_range 0 8) (pair (int_range 0 4) (int_range 0 4))))
    ~print:(fun (rs, ss) ->
      let row (a, b) = Printf.sprintf "%d,%d" a b in
      Printf.sprintf "R=%s S=%s"
        (String.concat ";" (List.map row rs))
        (String.concat ";" (List.map row ss)))

(* --- indexed vs naive join evaluation ------------------------------- *)

let queries =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  [
    Cq.make ~name:"join" [ x; z ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ] ];
    Cq.make ~name:"const" [ y ] [ Atom.make "R" [ Term.const (Value.int 1); y ] ];
    Cq.make ~name:"selfjoin" [ x ] [ Atom.make "R" [ x; x ] ];
    Cq.make ~name:"triangle" [ x ]
      [
        Atom.make "R" [ x; y ]; Atom.make "S" [ y; z ]; Atom.make "R" [ z; x ];
      ];
  ]

let prop_indexed_join_eq =
  QCheck.Test.make ~count:300 ~name:"indexed Cq.answers = naive Cq.answers"
    arb_db (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          let naive = with_indexing false (fun () -> Cq.answers q db) in
          let indexed = with_indexing true (fun () -> Cq.answers q db) in
          naive = indexed)
        queries)

let prop_indexed_formula_eq =
  QCheck.Test.make ~count:300 ~name:"indexed Formula.holds = naive" arb_db
    (fun db_spec ->
      let db = instance_of db_spec in
      List.for_all
        (fun q ->
          let b = Cq.make ~name:"b" [] q.Cq.body in
          let f = Formula.of_cq b in
          with_indexing false (fun () -> Formula.holds db f)
          = with_indexing true (fun () -> Formula.holds db f))
        queries)

let prop_hash_join_eq =
  QCheck.Test.make ~count:300 ~name:"Ra hash join = nested-loop join" arb_db
    (fun db_spec ->
      let rel cols rows =
        {
          Ra.cols = Array.of_list cols;
          rows = List.map (fun (a, b) -> [| value_of a; value_of b |]) rows;
        }
      in
      let a = rel [ "a"; "b" ] (fst db_spec)
      and b = rel [ "b"; "c" ] (snd db_spec) in
      let nested = with_indexing false (fun () -> Ra.natural_join a b) in
      let hash = with_indexing true (fun () -> Ra.natural_join a b) in
      nested.Ra.cols = hash.Ra.cols && nested.Ra.rows = hash.Ra.rows)

(* --- bucketed vs pairwise violation detection ----------------------- *)

let vschema = Schema.of_list [ ("T", [ "k"; "v"; "w" ]) ]

let arb_vdb =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 10)
        (triple (int_range 0 3) (int_range 0 4) (int_range 0 2)))
    ~print:(fun rows ->
      String.concat ";"
        (List.map (fun (k, v, w) -> Printf.sprintf "%d,%d,%d" k v w) rows))

let prop_bucketed_violations_eq =
  QCheck.Test.make ~count:300 ~name:"bucketed violations = pairwise" arb_vdb
    (fun rows ->
      let db =
        Instance.of_rows vschema
          [
            ( "T",
              List.map
                (fun (k, v, w) -> [ value_of k; value_of v; Value.int w ])
                rows );
          ]
      in
      let ics =
        [ Constraints.Ic.key ~rel:"T" [ 0 ];
          Constraints.Ic.fd ~rel:"T" ~lhs:[ 1 ] ~rhs:[ 2 ] ]
      in
      let witnesses on =
        with_indexing on (fun () -> Constraints.Violation.all db vschema ics)
        |> List.map (fun (w : Constraints.Violation.witness) ->
               (w.ic_name, Tid.Set.elements w.tids))
      in
      witnesses false = witnesses true)

(* --- index integrity across the persistent-update API --------------- *)

type op = Ins of int * int * int | Del of int | Upd of int * int * int

let arb_ops =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6)
           (triple (int_range 0 3) (int_range 0 4) (int_range 0 2)))
        (list_size (int_range 0 12)
           (oneof
              [
                map
                  (fun (k, v, w) -> Ins (k, v, w))
                  (triple (int_range 0 3) (int_range 0 4) (int_range 0 2));
                map (fun i -> Del i) (int_range 0 20);
                map
                  (fun (i, p, v) -> Upd (i, p, v))
                  (triple (int_range 0 20) (int_range 0 2) (int_range 0 4));
              ])))
    ~print:(fun (rows, ops) ->
      let pp_op = function
        | Ins (k, v, w) -> Printf.sprintf "I(%d,%d,%d)" k v w
        | Del i -> Printf.sprintf "D%d" i
        | Upd (i, p, v) -> Printf.sprintf "U(%d,%d,%d)" i p v
      in
      Printf.sprintf "rows=%s ops=%s"
        (String.concat ";"
           (List.map (fun (k, v, w) -> Printf.sprintf "%d,%d,%d" k v w) rows))
        (String.concat ";" (List.map pp_op ops)))

let apply db = function
  | Ins (k, v, w) ->
      Instance.add db (Fact.make "T" [ value_of k; value_of v; Value.int w ])
  | Del i -> (
      match Tid.Set.elements (Instance.tids db) with
      | [] -> db
      | ts -> Instance.delete db (List.nth ts (i mod List.length ts)))
  | Upd (i, p, v) -> (
      match Tid.Set.elements (Instance.tids db) with
      | [] -> db
      | ts ->
          Instance.update_cell db
            (Tid.Cell.make (List.nth ts (i mod List.length ts)) (p + 1))
            (value_of v))

let naive_matching db ~rel ~bound =
  List.filter
    (fun (_, row) ->
      List.for_all
        (fun (p, v) ->
          p < Array.length row && Tvl.to_bool (Value.sql_eq row.(p) v))
        bound)
    (Instance.tuples db ~rel)

let prop_index_integrity =
  QCheck.Test.make ~count:300
    ~name:"indexes stay exact across insert/delete/update_cell" arb_ops
    (fun (rows, ops) ->
      with_indexing true (fun () ->
          let db0 =
            Instance.of_rows vschema
              [
                ( "T",
                  List.map
                    (fun (k, v, w) -> [ value_of k; value_of v; Value.int w ])
                    rows );
              ]
          in
          (* Build indexes *before* the updates so what's under test is the
             incremental patching, not a fresh build. *)
          ignore (Instance.matching_tuples db0 ~rel:"T" ~bound:[ (0, Value.int 0) ]);
          ignore
            (Instance.matching_tuples db0 ~rel:"T"
               ~bound:[ (1, Value.int 0); (2, Value.int 0) ]);
          let db = List.fold_left apply db0 ops in
          let bounds =
            [ [] ]
            @ List.concat_map
                (fun v ->
                  [
                    [ (0, Value.int v) ];
                    [ (1, Value.int v) ];
                    [ (1, Value.int v); (2, Value.int v) ];
                  ])
                [ 0; 1; 2; 3 ]
          in
          List.for_all
            (fun bound ->
              Instance.matching_tuples db ~rel:"T" ~bound
              = naive_matching db ~rel:"T" ~bound)
            bounds))

(* --- Par.map = List.map --------------------------------------------- *)

let prop_par_map_eq =
  QCheck.Test.make ~count:100 ~name:"Par.map = List.map"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) small_int)
    (fun xs ->
      let f x = (x * x) - (3 * x) in
      Par.map ~jobs:4 f xs = List.map f xs
      && Par.filter_map ~jobs:4
           (fun x -> if x mod 2 = 0 then Some (f x) else None)
           xs
         = List.filter_map (fun x -> if x mod 2 = 0 then Some (f x) else None) xs)

(* Small workloads must bypass the domain pool entirely: handing 2-3
   tasks to the workers costs more in lock hand-offs and wake-ups than
   the work itself (the b1 pairs=2 regression).  [par.tasks] counts
   chunks given to the pool, so it must not move below the cutoff. *)
let test_par_cutoff () =
  let c = Obs.Counter.make "par.tasks" in
  let saved = Par.parallel_cutoff () in
  Par.set_parallel_cutoff 4;
  Fun.protect ~finally:(fun () -> Par.set_parallel_cutoff saved) @@ fun () ->
  let f x = (2 * x) + 1 in
  let small = [ 3; 4; 5 ] in
  let before = Obs.Counter.value c in
  check Alcotest.(list int) "below cutoff: same results" (List.map f small)
    (Par.map ~jobs:4 f small);
  check Alcotest.int "below cutoff: pool untouched" before (Obs.Counter.value c);
  let big = List.init 4 Fun.id in
  check Alcotest.(list int) "at cutoff: same results" (List.map f big)
    (Par.map ~jobs:4 f big);
  check Alcotest.bool "at cutoff: pool engaged" true
    (Obs.Counter.value c > before)

let test_par_exception () =
  match Par.map ~jobs:4 (fun x -> if x = 7 then failwith "boom" else x)
          (List.init 40 Fun.id)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> check Alcotest.string "message" "boom" m

(* --- per-component hitting-set enumeration -------------------------- *)

let test_components_partition () =
  let edges = [ [ 1; 2 ]; [ 3; 4 ]; [ 2; 5 ]; [] ] in
  check
    Alcotest.(list (list (list int)))
    "components" [ [ [ 1; 2 ]; [ 2; 5 ] ]; [ [ 3; 4 ] ]; [ [] ] ]
    (Sat.Hitting_set.components edges)

let arb_edges =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 6) (list_size (int_range 1 3) (int_range 0 9)))
    ~print:(fun edges ->
      String.concat ";"
        (List.map
           (fun e -> "{" ^ String.concat "," (List.map string_of_int e) ^ "}")
           edges))

let prop_components_compose =
  QCheck.Test.make ~count:200
    ~name:"minimal hitting sets = cross product over components" arb_edges
    (fun edges ->
      let direct = Sat.Hitting_set.minimal edges in
      let composed =
        List.fold_left
          (fun acc hss ->
            List.concat_map
              (fun a -> List.map (fun h -> List.sort_uniq compare (a @ h)) hss)
              acc)
          [ [] ]
          (List.map Sat.Hitting_set.minimal (Sat.Hitting_set.components edges))
      in
      let norm hss = List.sort_uniq compare (List.map (List.sort compare) hss) in
      norm direct = norm composed)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_indexed_join_eq;
    QCheck_alcotest.to_alcotest prop_indexed_formula_eq;
    QCheck_alcotest.to_alcotest prop_hash_join_eq;
    QCheck_alcotest.to_alcotest prop_bucketed_violations_eq;
    QCheck_alcotest.to_alcotest prop_index_integrity;
    QCheck_alcotest.to_alcotest prop_par_map_eq;
    Alcotest.test_case "Par.map small-workload cutoff" `Quick test_par_cutoff;
    Alcotest.test_case "Par.map re-raises chunk exceptions" `Quick
      test_par_exception;
    Alcotest.test_case "Hitting_set.components partitions edges" `Quick
      test_components_partition;
    QCheck_alcotest.to_alcotest prop_components_compose;
  ]
