(* Shifting, temporal CQA, numerical repairs, Datalog abduction, CSV. *)

module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Fact = Relational.Fact
module Tid = Relational.Tid
module P = Workload.Paper
module Numeric_repair = Numeric.Numeric_repair
open Logic

let check = Alcotest.check
let flt = Alcotest.float 1e-6
let v = Value.str

(* --- shifting --- *)

let models_as_sets models =
  models
  |> List.map (fun m -> Fact.Set.elements m |> List.map Fact.to_string |> List.sort compare)
  |> List.sort compare

let test_shift_preserves_repair_models () =
  let program =
    Repair_programs.Compile.repair_program P.Denial.schema [ P.Denial.kappa ]
  in
  check Alcotest.bool "repair program is HCF" true
    (Asp.Shift.is_head_cycle_free program);
  let shifted = Asp.Shift.program program in
  check Alcotest.bool "no disjunction left" true
    (List.for_all
       (fun (r : Asp.Syntax.rule) -> List.length r.head <= 1)
       shifted.Asp.Syntax.rules);
  let edb = Repair_programs.Compile.edb_of_instance P.Denial.instance in
  check
    Alcotest.(list (list string))
    "same stable models"
    (models_as_sets (Asp.Stable.models program edb))
    (models_as_sets (Asp.Stable.models shifted edb))

let test_shift_simple_disjunction () =
  let a name = Atom.make name [] in
  let program = Asp.Syntax.program [ Asp.Syntax.rule [ a "p"; a "q" ] [] ] in
  let shifted = Asp.Shift.program program in
  check
    Alcotest.(list (list string))
    "p∨q shifts to two models"
    (models_as_sets (Asp.Stable.models program []))
    (models_as_sets (Asp.Stable.models shifted []))

let test_head_cycle_detection () =
  let x = Term.var "x" in
  (* p ∨ q with p :- q and q :- p: the head atoms are on a positive cycle. *)
  let cyclic =
    Asp.Syntax.program
      [
        Asp.Syntax.rule [ Atom.make "p" [ x ]; Atom.make "q" [ x ] ]
          [ Atom.make "d" [ x ] ];
        Asp.Syntax.rule [ Atom.make "p" [ x ] ] [ Atom.make "q" [ x ] ];
        Asp.Syntax.rule [ Atom.make "q" [ x ] ] [ Atom.make "p" [ x ] ];
      ]
  in
  check Alcotest.bool "cycle detected" false (Asp.Shift.is_head_cycle_free cyclic)

(* --- temporal CQA --- *)

let emp_fact name salary = Fact.make "Employee" [ v name; Value.int salary ]

let temporal_db =
  Temporal.of_facts P.Employee.schema [ P.Employee.key ]
    [
      (* t1: consistent *)
      (1, emp_fact "page" 5);
      (1, emp_fact "smith" 3);
      (* t2: page gets two salaries *)
      (2, emp_fact "page" 5);
      (2, emp_fact "page" 8);
      (2, emp_fact "smith" 3);
      (* t3: consistent again *)
      (3, emp_fact "page" 8);
      (3, emp_fact "smith" 3);
    ]

let q_names = P.Employee.names_query
let q_full = P.Employee.full_query

let test_temporal_snapshots () =
  check Alcotest.(list int) "three time points" [ 1; 2; 3 ] (Temporal.times temporal_db);
  check Alcotest.bool "inconsistent overall" false (Temporal.is_consistent temporal_db);
  check Alcotest.(list int) "only t2 dirty" [ 2 ]
    (Temporal.inconsistent_times temporal_db)

let test_temporal_at () =
  let rows = Temporal.consistent_at temporal_db ~time:2 q_full in
  check Alcotest.int "page's salary uncertain at t2" 1 (List.length rows);
  let names = Temporal.consistent_at temporal_db ~time:2 q_names in
  check Alcotest.int "both names certain at t2" 2 (List.length names)

let test_temporal_always_sometime () =
  let always = Temporal.consistent_always temporal_db ~from_:1 ~until:3 q_names in
  check
    Alcotest.(list (list string))
    "page and smith employed throughout"
    [ [ "page" ]; [ "smith" ] ]
    (List.map (List.map Value.to_string) always);
  let always_full = Temporal.consistent_always temporal_db ~from_:1 ~until:3 q_full in
  (* page's full tuple differs across time; smith's is stable. *)
  check
    Alcotest.(list (list string))
    "only smith's tuple always certain"
    [ [ "smith"; "3" ] ]
    (List.map (List.map Value.to_string) always_full);
  let sometime = Temporal.consistent_sometime temporal_db ~from_:1 ~until:3 q_full in
  (* page,5 certain at t1; page,8 certain at t3. *)
  check Alcotest.int "three tuples sometime-certain" 3 (List.length sometime)

let test_temporal_empty_snapshot () =
  check Alcotest.int "empty snapshot: nothing always" 0
    (List.length (Temporal.consistent_always temporal_db ~from_:1 ~until:5 q_names))

(* --- numerical repairs --- *)

let ledger_schema = Schema.of_list [ ("Ledger", [ "entry"; "amount" ]) ]

let ledger rows =
  Instance.of_rows ledger_schema
    [ ("Ledger", List.map (fun (e, a) -> [ v e; Value.Real a ]) rows) ]

let test_numeric_bounds () =
  let db = ledger [ ("a", 5.0); ("b", -2.0); ("c", 12.0) ] in
  let c =
    Numeric_repair.Row_bounds
      { rel = "Ledger"; pos = 1; lower = Some 0.0; upper = Some 10.0 }
  in
  check Alcotest.bool "violated" false (Numeric_repair.is_consistent db [ c ]);
  check flt "clamping distance 2 + 2" 4.0 (Numeric_repair.minimal_l1_cost db [ c ]);
  let r = Numeric_repair.repair db [ c ] in
  check flt "repair attains the bound" 4.0 r.Numeric_repair.l1_cost;
  check Alcotest.bool "consistent after" true
    (Numeric_repair.is_consistent r.Numeric_repair.repaired [ c ]);
  check Alcotest.int "two cells changed" 2 (List.length r.Numeric_repair.changes)

let test_numeric_sum () =
  let db = ledger [ ("a", 40.0); ("b", 70.0) ] in
  let c = Numeric_repair.Sum_eq { rel = "Ledger"; pos = 1; total = 100.0 } in
  check flt "delta 10" 10.0 (Numeric_repair.minimal_l1_cost db [ c ]);
  let r = Numeric_repair.repair db [ c ] in
  check flt "optimal cost" 10.0 r.Numeric_repair.l1_cost;
  check Alcotest.int "single-cell policy" 1 (List.length r.Numeric_repair.changes);
  check Alcotest.bool "sums to 100" true
    (Numeric_repair.is_consistent r.Numeric_repair.repaired [ c ])

let test_numeric_proportional () =
  let db = ledger [ ("a", 40.0); ("b", 60.0) ] in
  let c = Numeric_repair.Sum_eq { rel = "Ledger"; pos = 1; total = 50.0 } in
  let r = Numeric_repair.repair ~policy:`Proportional db [ c ] in
  check Alcotest.int "both cells touched" 2 (List.length r.Numeric_repair.changes);
  check flt "still optimal L1" 50.0 r.Numeric_repair.l1_cost;
  check Alcotest.bool "consistent" true
    (Numeric_repair.is_consistent r.Numeric_repair.repaired [ c ])

let test_numeric_interacting () =
  (* Bounds cap every entry at 50; the sum must reach 120 across three
     entries: waterfilling pushes several cells to their bound. *)
  let db = ledger [ ("a", 10.0); ("b", 10.0); ("c", 10.0) ] in
  let cs =
    [
      Numeric_repair.Row_bounds
        { rel = "Ledger"; pos = 1; lower = Some 0.0; upper = Some 50.0 };
      Numeric_repair.Sum_eq { rel = "Ledger"; pos = 1; total = 120.0 };
    ]
  in
  let r = Numeric_repair.repair db cs in
  check Alcotest.bool "both constraints hold" true
    (Numeric_repair.is_consistent r.Numeric_repair.repaired cs)

let test_numeric_unreachable () =
  let db = ledger [ ("a", 10.0) ] in
  let cs =
    [
      Numeric_repair.Row_bounds
        { rel = "Ledger"; pos = 1; lower = Some 0.0; upper = Some 20.0 };
      Numeric_repair.Sum_eq { rel = "Ledger"; pos = 1; total = 100.0 };
    ]
  in
  Alcotest.check_raises "bounds block the total"
    (Failure "Numeric_repair.repair: bounds make the total unreachable")
    (fun () -> ignore (Numeric_repair.repair db cs))

(* --- Datalog abduction --- *)

let x = Term.var "X"
let y = Term.var "Y"
let z = Term.var "Z"

let tc_program =
  Datalog.Program.make
    [
      Datalog.Rule.make (Atom.make "path" [ x; y ]) [ Atom.make "edge" [ x; y ] ];
      Datalog.Rule.make
        (Atom.make "path" [ x; z ])
        [ Atom.make "edge" [ x; y ]; Atom.make "path" [ y; z ] ];
    ]

let e a b = Fact.make "edge" [ v a; v b ]

let test_abduction_explanations () =
  let abducibles = [ e "a" "b"; e "b" "c"; e "a" "c"; e "c" "d" ] in
  let goal = Fact.make "path" [ v "a"; v "c" ] in
  let exps =
    Datalog.Abduction.explanations tc_program ~abducibles ~given:[] ~goal
  in
  (* a→c directly, or a→b→c. *)
  check Alcotest.int "two minimal explanations" 2 (List.length exps);
  check Alcotest.bool "direct edge is one" true (List.mem [ e "a" "c" ] exps)

let test_abduction_with_given () =
  let goal = Fact.make "path" [ v "a"; v "c" ] in
  let exps =
    Datalog.Abduction.explanations tc_program
      ~abducibles:[ e "b" "c"; e "c" "d" ]
      ~given:[ e "a" "b" ] ~goal
  in
  check
    Alcotest.(list (list string))
    "needs only b→c"
    [ [ "edge(b, c)" ] ]
    (List.map (List.map Fact.to_string) exps)

let test_abduction_necessary () =
  let goal = Fact.make "path" [ v "a"; v "d" ] in
  let abducibles = [ e "a" "b"; e "b" "d"; e "a" "c"; e "c" "d" ] in
  let nec =
    Datalog.Abduction.necessary_abducibles tc_program ~abducibles ~given:[] ~goal
  in
  (* Two disjoint paths: nothing is necessary. *)
  check Alcotest.int "no necessary abducible" 0 (List.length nec);
  let nec2 =
    Datalog.Abduction.necessary_abducibles tc_program
      ~abducibles:[ e "a" "b"; e "b" "d" ] ~given:[] ~goal
  in
  check Alcotest.int "chain: both necessary" 2 (List.length nec2)

let test_abduction_rejects_negation () =
  let program =
    Datalog.Program.make
      [
        Datalog.Rule.make ~neg:[ Atom.make "q" [ x ] ] (Atom.make "p" [ x ])
          [ Atom.make "d" [ x ] ];
      ]
  in
  Alcotest.check_raises "negation rejected"
    (Invalid_argument
       "Abduction: positive Datalog only (derivability must be monotone)")
    (fun () ->
      ignore
        (Datalog.Abduction.explanations program ~abducibles:[] ~given:[]
           ~goal:(Fact.make "p" [ v "a" ])))

(* --- CSV --- *)

let test_csv_roundtrip () =
  let schema = Schema.of_list [ ("T", [ "name"; "score"; "note" ]) ] in
  let db =
    Instance.of_rows schema
      [
        ( "T",
          [
            [ v "plain"; Value.int 3; v "ok" ];
            [ v "with, comma"; Value.Real 2.5; Value.Null ];
            [ v "with \"quotes\""; Value.int (-1); v "fine" ];
          ] );
      ]
  in
  let csv = Relational.Csv_io.to_csv db ~rel:"T" in
  let reloaded =
    Relational.Csv_io.load_csv (Instance.create schema) ~rel:"T" csv
  in
  check Alcotest.bool "round trip preserves facts" true (Instance.equal db reloaded)

let test_csv_typing () =
  let schema = Schema.of_list [ ("T", [ "a"; "b"; "c" ]) ] in
  let db =
    Relational.Csv_io.load_csv ~header:false (Instance.create schema) ~rel:"T"
      "42,3.5,\ntext,007x,\"42\"\n"
  in
  check Alcotest.bool "int, real and null typed" true
    (Instance.mem_fact db
       (Fact.make "T" [ Value.int 42; Value.Real 3.5; Value.Null ]));
  check Alcotest.bool "quoted digits stay strings" true
    (Instance.mem_fact db
       (Fact.make "T" [ v "text"; v "007x"; v "42" ]))

let test_csv_errors () =
  let schema = Schema.of_list [ ("T", [ "a"; "b" ]) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Csv_io: line 1 has 3 fields, T expects 2") (fun () ->
      ignore
        (Relational.Csv_io.load_csv ~header:false (Instance.create schema)
           ~rel:"T" "1,2,3\n"));
  Alcotest.check_raises "unterminated quote"
    (Invalid_argument "Csv_io: unterminated quote on line 1") (fun () ->
      ignore
        (Relational.Csv_io.load_csv ~header:false (Instance.create schema)
           ~rel:"T" "\"oops,2\n"))

let suite =
  [
    Alcotest.test_case "shifting preserves repair models" `Quick
      test_shift_preserves_repair_models;
    Alcotest.test_case "shifting a bare disjunction" `Quick
      test_shift_simple_disjunction;
    Alcotest.test_case "head-cycle detection" `Quick test_head_cycle_detection;
    Alcotest.test_case "temporal: snapshots" `Quick test_temporal_snapshots;
    Alcotest.test_case "temporal: CQA at a time point" `Quick test_temporal_at;
    Alcotest.test_case "temporal: always / sometime" `Quick
      test_temporal_always_sometime;
    Alcotest.test_case "temporal: empty snapshots" `Quick
      test_temporal_empty_snapshot;
    Alcotest.test_case "numeric: bounds" `Quick test_numeric_bounds;
    Alcotest.test_case "numeric: sum equality" `Quick test_numeric_sum;
    Alcotest.test_case "numeric: proportional policy" `Quick
      test_numeric_proportional;
    Alcotest.test_case "numeric: bounds + sum interact" `Quick
      test_numeric_interacting;
    Alcotest.test_case "numeric: unreachable total" `Quick test_numeric_unreachable;
    Alcotest.test_case "abduction: explanations" `Quick test_abduction_explanations;
    Alcotest.test_case "abduction: with given facts" `Quick
      test_abduction_with_given;
    Alcotest.test_case "abduction: necessary abducibles" `Quick
      test_abduction_necessary;
    Alcotest.test_case "abduction: negation rejected" `Quick
      test_abduction_rejects_negation;
    Alcotest.test_case "csv: round trip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv: typing heuristics" `Quick test_csv_typing;
    Alcotest.test_case "csv: errors" `Quick test_csv_errors;
  ]
