module Cq = Logic.Cq
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp
module Value = Relational.Value
module Instance = Relational.Instance
module Schema = Relational.Schema
module Ic = Constraints.Ic

let x = Term.var "x"
let y = Term.var "y"
let _z = Term.var "z"
let _w = Term.var "w"

let schema =
  Schema.of_list
    [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]); ("T", [ "c"; "d" ]) ]

let ics = [ Ic.key ~rel:"R" [ 0 ]; Ic.key ~rel:"S" [ 0 ]; Ic.key ~rel:"T" [ 0 ] ]

let queries =
  [
    (* chain with free var at the end key join *)
    Cq.make ~name:"q1" [ x ] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ];
    (* 3-chain, free head *)
    Cq.make ~name:"q2" [ x ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; _z ]; Atom.make "T" [ _z; x ] ];
    (* constant in nonkey position *)
    Cq.make ~name:"q3" [ x ]
      [ Atom.make "R" [ x; Term.Const (Value.int 1) ]; Atom.make "S" [ x; y ] ];
    (* repeated variable inside an atom *)
    Cq.make ~name:"q4" [ x ] [ Atom.make "R" [ x; x ]; Atom.make "S" [ x; y ] ];
    (* comparison over two levels *)
    Cq.make ~name:"q5" [ x ]
      ~comps:[ Cmp.make Cmp.Lt (Term.var "y") (Term.var "zc") ]
      [ Atom.make "R" [ x; y ]; Atom.make "S" [ x; Term.var "zc" ] ];
    (* boolean query *)
    Cq.make ~name:"q6" [] [ Atom.make "R" [ x; y ]; Atom.make "S" [ y; x ] ];
  ]

let seed = ref 42
let rand m = seed := (!seed * 1103515245 + 12345) land 0x3FFFFFFF; !seed mod m

let random_rows nrow dom =
  List.init nrow (fun _ -> [ Value.int (rand dom); Value.int (rand dom) ])

let () =
  let mismatches = ref 0 in
  for trial = 1 to 400 do
    let db =
      Instance.of_rows schema
        [
          ("R", random_rows (rand 6) 3);
          ("S", random_rows (rand 6) 3);
          ("T", random_rows (rand 6) 3);
        ]
    in
    let eng = Cqa.Engine.create ~schema ~ics db in
    List.iter
      (fun q ->
        let c = Analysis.Classify.classify ics q in
        match c.Analysis.Classify.verdict with
        | Analysis.Classify.L_datalog_rewritable | Analysis.Classify.Fo_rewritable -> (
            match
              (try Some (Cqa.Engine.consistent_answers ~method_:`Datalog eng q)
               with Invalid_argument _ -> None)
            with
            | None -> ()
            | Some dl ->
                let en =
                  Cqa.Engine.consistent_answers ~method_:`Repair_enumeration eng q
                in
                if List.sort compare dl <> List.sort compare en then begin
                  incr mismatches;
                  Printf.printf "MISMATCH trial=%d query=%s verdict=%s\n" trial
                    q.Cq.name
                    (Analysis.Classify.verdict_label c.Analysis.Classify.verdict)
                end)
        | _ -> ())
      queries
  done;
  Printf.printf "done, mismatches=%d\n" !mismatches
