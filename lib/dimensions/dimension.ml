type schema = { categories : string list; edges : (string * string) list }

type instance = {
  members : (string * string) list;
  links : (string * string) list;
}

let schema ~categories ~edges =
  let known c = List.mem c categories in
  if List.length (List.sort_uniq String.compare categories) <> List.length categories
  then invalid_arg "Dimension.schema: duplicate category";
  List.iter
    (fun (c, p) ->
      if not (known c && known p) then
        invalid_arg (Printf.sprintf "Dimension.schema: unknown category in %s->%s" c p))
    edges;
  (* Acyclicity of the category DAG. *)
  let state = Hashtbl.create 8 in
  let rec dfs c =
    match Hashtbl.find_opt state c with
    | Some `Done -> ()
    | Some `Active -> invalid_arg "Dimension.schema: cyclic hierarchy"
    | None ->
        Hashtbl.replace state c `Active;
        List.iter (fun (c', p) -> if String.equal c' c then dfs p) edges;
        Hashtbl.replace state c `Done
  in
  List.iter dfs categories;
  { categories; edges }

let category_of inst elt = List.assoc_opt elt inst.members

(* Categories reachable upward from [c] in the schema. *)
let ancestors_of_category s c =
  let rec go acc frontier =
    let next =
      List.filter_map
        (fun (c', p) ->
          if List.mem c' frontier && not (List.mem p acc) then Some p else None)
        s.edges
      |> List.sort_uniq String.compare
    in
    if next = [] then acc else go (next @ acc) next
  in
  go [] [ c ]

let rollup s inst elt ~category =
  ignore s;
  let rec go acc frontier =
    let next =
      List.filter_map
        (fun (u, v) ->
          if List.mem u frontier && not (List.mem v acc) then Some v else None)
        inst.links
      |> List.sort_uniq String.compare
    in
    if next = [] then acc else go (next @ acc) next
  in
  let reachable = go [] [ elt ] in
  List.filter
    (fun e ->
      match category_of inst e with
      | Some c -> String.equal c category
      | None -> false)
    reachable
  |> List.sort_uniq String.compare

let strictness_violations s inst =
  List.concat_map
    (fun (elt, cat) ->
      List.concat_map
        (fun anc_cat ->
          let ancs = rollup s inst elt ~category:anc_cat in
          let rec pairs = function
            | [] -> []
            | a :: rest -> List.map (fun b -> (elt, anc_cat, a, b)) rest @ pairs rest
          in
          pairs ancs)
        (ancestors_of_category s cat))
    inst.members

let covering_violations s inst =
  List.concat_map
    (fun (elt, cat) ->
      List.filter_map
        (fun (c, p) ->
          if not (String.equal c cat) then None
          else
            let covered =
              List.exists
                (fun (u, v) ->
                  String.equal u elt
                  && category_of inst v = Some p)
                inst.links
            in
            if covered then None else Some (elt, p))
        s.edges)
    inst.members

let is_consistent s inst =
  strictness_violations s inst = [] && covering_violations s inst = []

type change = {
  from_elt : string;
  old_parent : string option;
  new_parent : string;
}

type repair = { changes : change list; repaired : instance }

let members_of inst cat =
  List.filter_map
    (fun (e, c) -> if String.equal c cat then Some e else None)
    inst.members

(* Links lying on upward paths from [elt]. *)
let links_above inst elt =
  let rec go acc frontier =
    let fresh =
      List.filter
        (fun (u, _ as l) -> List.mem u frontier && not (List.mem l acc))
        inst.links
    in
    if fresh = [] then acc
    else
      go (fresh @ acc)
        (List.sort_uniq String.compare (List.map snd fresh))
  in
  go [] [ elt ]

let apply_redirect inst (u, v) v' =
  {
    inst with
    links =
      List.sort_uniq compare
        ((u, v') :: List.filter (fun l -> l <> (u, v)) inst.links);
  }

let repairs ?(fuel = 20_000) s inst =
  let budget = ref fuel in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let key i = List.sort compare i.links in
  let rec go current =
    decr budget;
    if !budget < 0 then failwith "Dimension.repairs: out of fuel";
    let k = key current in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      match covering_violations s current, strictness_violations s current with
      | [], [] -> results := current :: !results
      | (elt, parent_cat) :: _, _ ->
          (* Insert a link to any member of the missing parent category. *)
          List.iter
            (fun target ->
              go { current with links = (elt, target) :: current.links })
            (members_of current parent_cat)
      | [], (elt, _, _, _) :: _ ->
          (* Redirect any link on the element's upward paths to another
             member of the same category. *)
          List.iter
            (fun (u, v) ->
              match category_of current v with
              | None -> ()
              | Some cat ->
                  List.iter
                    (fun v' ->
                      if not (String.equal v' v) then
                        go (apply_redirect current (u, v) v'))
                    (members_of current cat))
            (links_above current elt)
    end
  in
  go inst;
  let change_set repaired =
    let removed = List.filter (fun l -> not (List.mem l repaired.links)) inst.links in
    let added = List.filter (fun l -> not (List.mem l inst.links)) repaired.links in
    (* A removed link is a reclassification: its element now rolls up to
       some (added or pre-existing) target of the same category. *)
    let redirects =
      List.filter_map
        (fun (u, v) ->
          let cat = category_of inst v in
          List.find_map
            (fun (u', v') ->
              if String.equal u u' && category_of repaired v' = cat then
                Some { from_elt = u; old_parent = Some v; new_parent = v' }
              else None)
            repaired.links)
        removed
    in
    let insertions =
      List.filter_map
        (fun (u, v') ->
          let cat = category_of repaired v' in
          if
            List.exists
              (fun (u', v) -> String.equal u u' && category_of inst v = cat)
              removed
          then None (* accounted as a redirect *)
          else Some { from_elt = u; old_parent = None; new_parent = v' })
        added
    in
    List.sort compare (redirects @ insertions)
  in
  let candidates =
    List.map (fun r -> { changes = change_set r; repaired = r }) !results
  in
  (* Keep the inclusion-minimal change sets. *)
  List.filter
    (fun r ->
      not
        (List.exists
           (fun r' ->
             r' != r
             && List.length r'.changes < List.length r.changes
             && List.for_all (fun c -> List.mem c r.changes) r'.changes)
           candidates))
    candidates
  |> List.sort compare

let pp_instance ppf inst =
  Format.fprintf ppf "@[<v>members: %s@,links: %s@]"
    (String.concat ", "
       (List.map (fun (e, c) -> Printf.sprintf "%s:%s" e c) inst.members))
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%s->%s" u v) inst.links))
