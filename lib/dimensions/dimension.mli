(** Repairs of multidimensional database dimensions (paper, Section 8:
    "repairs have been defined and investigated for data warehouses and
    multidimensional databases" [8, 21, 44, 45]).

    A dimension has a hierarchy schema — categories connected by
    child→parent edges, forming a DAG — and an instance assigning each
    element to a category and rolling elements up along the edges.  The
    classical summarizability conditions are:

    - {b strictness}: an element reaches at most one ancestor in each
      category (otherwise aggregating along different paths double-counts);
    - {b covering}: an element of a child category rolls up to at least one
      element of every parent category.

    Inconsistent dimensions are repaired by minimally {e changing rollup
    links} (the reclassification repairs of [44, 45]): a repair replaces
    some links [(child element → parent element)] so that both conditions
    hold, and is minimal in the set of changed links. *)

type schema = {
  categories : string list;
  edges : (string * string) list;  (** child category → parent category *)
}

type instance = {
  members : (string * string) list;  (** element → its category *)
  links : (string * string) list;  (** child element → parent element *)
}

val schema : categories:string list -> edges:(string * string) list -> schema
(** Raises [Invalid_argument] on unknown categories or a cyclic edge
    relation. *)

val category_of : instance -> string -> string option

val rollup : schema -> instance -> string -> category:string -> string list
(** The elements of [category] reachable from the element by following
    links upward. *)

val strictness_violations :
  schema -> instance -> (string * string * string * string) list
(** (element, category, ancestor1, ancestor2) with ancestor1 < ancestor2. *)

val covering_violations : schema -> instance -> (string * string) list
(** (element, parent category it fails to reach directly). *)

val is_consistent : schema -> instance -> bool

type change = {
  from_elt : string;
  old_parent : string option;  (** [None]: the link was inserted (covering) *)
  new_parent : string;
}

type repair = { changes : change list; repaired : instance }

val repairs : ?fuel:int -> schema -> instance -> repair list
(** All minimal link-change repairs: a change either redirects an existing
    link to another element of the same parent category, or inserts a
    missing link to restore covering.  [fuel] (default [20_000]) bounds the
    branching search. *)

val pp_instance : Format.formatter -> instance -> unit
