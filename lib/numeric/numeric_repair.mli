(** Fixing numerical attributes under numerical constraints (paper, Section
    4: "attribute-based repairs of databases with numerical values ...
    subject to numerical constraints" — Bertossi–Bravo–Franconi–Lopatenko
    [20], Flesca–Furfaro–Parisi [62]).

    Two constraint forms over a numeric column:
    - {b row bounds}: every value within [lower, upper];
    - {b aggregate equality}: the column sums to a prescribed total (the
      balance-sheet scenario of [62]).

    Repairs change numeric values, minimizing the L1 distance
    Σ |new − old| (and, among L1-minimal fixes for bounds, each cell is
    clamped — the unique pointwise-minimal fix).  For the sum constraint
    the minimal L1 cost is exactly |Δ| (Δ = actual − expected); the
    distribution of the adjustment is a policy choice. *)

type constraint_ =
  | Row_bounds of { rel : string; pos : int; lower : float option; upper : float option }
  | Sum_eq of { rel : string; pos : int; total : float }

type change = {
  cell : Relational.Tid.Cell.t;
  old_value : float;
  new_value : float;
}

type result = {
  repaired : Relational.Instance.t;
  changes : change list;
  l1_cost : float;
}

val violations :
  Relational.Instance.t -> constraint_ list -> (constraint_ * float) list
(** Violated constraints with their violation magnitude (for bounds, the
    total clamping distance; for sums, |Δ|). *)

val is_consistent : Relational.Instance.t -> constraint_ list -> bool

val minimal_l1_cost : Relational.Instance.t -> constraint_ list -> float
(** Lower bound on any repair's cost; attained by {!repair}. *)

val repair :
  ?policy:[ `Single_cell | `Proportional ] ->
  Relational.Instance.t ->
  constraint_ list ->
  result
(** Bounds are clamped first; a remaining sum discrepancy is absorbed by
    one cell ([`Single_cell], default — fewest changed cells) or spread
    proportionally to the current values ([`Proportional]).  When bounds
    and a sum constraint interact, the adjustment respects the bounds
    (waterfilling in tid order); raises [Failure] if the bounds make the
    total unreachable.  NULL and non-numeric cells raise
    [Invalid_argument]. *)
