module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value

type constraint_ =
  | Row_bounds of { rel : string; pos : int; lower : float option; upper : float option }
  | Sum_eq of { rel : string; pos : int; total : float }

type change = { cell : Tid.Cell.t; old_value : float; new_value : float }

type result = {
  repaired : Instance.t;
  changes : change list;
  l1_cost : float;
}

let numeric rel pos = function
  | Value.Int i -> float_of_int i
  | Value.Real r -> r
  | v ->
      invalid_arg
        (Format.asprintf "Numeric_repair: non-numeric value %a at %s[%d]"
           Value.pp v rel pos)

let cells inst rel pos =
  List.map
    (fun (tid, row) -> (tid, numeric rel pos row.(pos)))
    (Instance.tuples inst ~rel)

let clamp ~lower ~upper x =
  let x = match lower with Some l when x < l -> l | _ -> x in
  match upper with Some u when x > u -> u | _ -> x

let bounds_distance inst = function
  | Row_bounds { rel; pos; lower; upper } ->
      List.fold_left
        (fun acc (_tid, x) -> acc +. Float.abs (x -. clamp ~lower ~upper x))
        0.0 (cells inst rel pos)
  | Sum_eq _ -> 0.0

let sum_delta inst = function
  | Sum_eq { rel; pos; total } ->
      let actual = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (cells inst rel pos) in
      actual -. total
  | Row_bounds _ -> 0.0

let magnitude inst c =
  match c with
  | Row_bounds _ -> bounds_distance inst c
  | Sum_eq _ -> Float.abs (sum_delta inst c)

let violations inst constraints =
  List.filter_map
    (fun c ->
      let m = magnitude inst c in
      if m > 1e-9 then Some (c, m) else None)
    constraints

let is_consistent inst constraints = violations inst constraints = []

(* Clamping fixes bounds at minimal cost; the sum then needs the residual
   discrepancy moved, so the total optimal L1 cost is the clamping cost
   plus the post-clamping |Δ| per sum constraint. *)
let minimal_l1_cost inst constraints =
  let clamped =
    List.fold_left
      (fun acc c ->
        match c with
        | Row_bounds { rel; pos; lower; upper } ->
            List.fold_left
              (fun acc (tid, x) ->
                let x' = clamp ~lower ~upper x in
                if x' <> x then ((rel, pos, tid), x') :: acc else acc)
              acc (cells inst rel pos)
        | Sum_eq _ -> acc)
      [] constraints
  in
  let value_after rel pos tid x =
    match List.assoc_opt (rel, pos, tid) clamped with Some x' -> x' | None -> x
  in
  let clamp_cost = List.fold_left (fun acc c -> acc +. bounds_distance inst c) 0.0 constraints in
  let sum_cost =
    List.fold_left
      (fun acc c ->
        match c with
        | Sum_eq { rel; pos; total } ->
            let actual =
              List.fold_left
                (fun acc (tid, x) -> acc +. value_after rel pos tid x)
                0.0 (cells inst rel pos)
            in
            acc +. Float.abs (actual -. total)
        | Row_bounds _ -> acc)
      0.0 constraints
  in
  clamp_cost +. sum_cost

let set_cell inst rel pos tid x =
  ignore rel;
  Instance.update_cell inst (Tid.Cell.make tid (pos + 1)) (Value.Real x)

let bound_for constraints rel pos =
  List.fold_left
    (fun (lo, hi) c ->
      match c with
      | Row_bounds b when String.equal b.rel rel && b.pos = pos ->
          let lo = match b.lower with Some l -> Some (Float.max l (Option.value ~default:l lo)) | None -> lo in
          let hi = match b.upper with Some u -> Some (Float.min u (Option.value ~default:u hi)) | None -> hi in
          (lo, hi)
      | _ -> (lo, hi))
    (None, None) constraints

let repair ?(policy = `Single_cell) inst constraints =
  let changes = ref [] in
  let record rel pos tid old_value new_value db =
    if Float.abs (new_value -. old_value) > 1e-12 then begin
      changes :=
        { cell = Tid.Cell.make tid (pos + 1); old_value; new_value } :: !changes;
      set_cell db rel pos tid new_value
    end
    else db
  in
  (* Phase 1: clamp bounds. *)
  let db =
    List.fold_left
      (fun db c ->
        match c with
        | Row_bounds { rel; pos; lower; upper } ->
            List.fold_left
              (fun db (tid, x) ->
                record rel pos tid x (clamp ~lower ~upper x) db)
              db (cells db rel pos)
        | Sum_eq _ -> db)
      inst constraints
  in
  (* Phase 2: absorb each sum discrepancy within the bounds. *)
  let db =
    List.fold_left
      (fun db c ->
        match c with
        | Row_bounds _ -> db
        | Sum_eq { rel; pos; total } ->
            let delta = sum_delta db (Sum_eq { rel; pos; total }) in
            if Float.abs delta <= 1e-9 then db
            else begin
              let lower, upper = bound_for constraints rel pos in
              let current = cells db rel pos in
              if current = [] then
                failwith "Numeric_repair.repair: empty relation under Sum_eq";
              match policy with
              | `Proportional when List.for_all (fun (_, x) -> x > 0.0) current
                                   && lower = None && upper = None ->
                  let sum = List.fold_left (fun a (_, x) -> a +. x) 0.0 current in
                  List.fold_left
                    (fun db (tid, x) ->
                      record rel pos tid x (x -. (delta *. x /. sum)) db)
                    db current
              | _ ->
                  (* Waterfilling in tid order: push each cell toward its
                     bound until the discrepancy is gone. *)
                  let remaining = ref delta in
                  let db =
                    List.fold_left
                      (fun db (tid, x) ->
                        if Float.abs !remaining <= 1e-9 then db
                        else
                          let target = x -. !remaining in
                          let target = clamp ~lower ~upper target in
                          let absorbed = x -. target in
                          remaining := !remaining -. absorbed;
                          record rel pos tid x target db)
                      db current
                  in
                  if Float.abs !remaining > 1e-9 then
                    failwith
                      "Numeric_repair.repair: bounds make the total unreachable";
                  db
            end)
      db constraints
  in
  let l1_cost =
    List.fold_left
      (fun acc c -> acc +. Float.abs (c.new_value -. c.old_value))
      0.0 !changes
  in
  { repaired = db; changes = List.rev !changes; l1_cost }
