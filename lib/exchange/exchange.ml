module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Term = Logic.Term
module Atom = Logic.Atom
module Cq = Logic.Cq
module Binding = Logic.Binding

type st_tgd = { body : Cq.t; head : Atom.t list }

type egd = { egd_body : Atom.t list; left : string; right : string }

type setting = {
  source_schema : Schema.t;
  target_schema : Schema.t;
  st_tgds : st_tgd list;
  egds : egd list;
  target_ics : Constraints.Ic.t list;
}

let st_tgd ~body ~head = { body; head }
let egd ~body left right = { egd_body = body; left; right }

let null_prefix = "\xe2\x8a\xa5" (* ⊥ *)

let is_labeled_null = function
  | Value.Str s -> String.length s >= 3 && String.sub s 0 3 = null_prefix
  | _ -> false

type chase_result = Solution of Instance.t | Failed of string

(* Fire every st-tgd once per body match; existential head variables get a
   fresh labeled null per (tgd, match). *)
let fire_tgds setting source =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Value.Str (Printf.sprintf "%s%d" null_prefix !counter)
  in
  List.fold_left
    (fun target (tgd : st_tgd) ->
      List.fold_left
        (fun target env ->
          let locals = Hashtbl.create 4 in
          let value_of = function
            | Term.Const c -> c
            | Term.Var v -> (
                match Binding.find env v with
                | Some value -> value
                | None -> (
                    match Hashtbl.find_opt locals v with
                    | Some n -> n
                    | None ->
                        let n = fresh () in
                        Hashtbl.replace locals v n;
                        n))
          in
          List.fold_left
            (fun target (a : Atom.t) ->
              Instance.add target (Fact.make a.rel (List.map value_of a.args)))
            target tgd.head)
        target
        (Cq.bindings tgd.body source))
    (Instance.create setting.target_schema)
    setting.st_tgds

(* Structural matching for the egd chase: labeled nulls are named constants
   and join with themselves. *)
module Env = Map.Make (String)

let match_structural env (a : Atom.t) (row : Value.t array) =
  if List.length a.args <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c -> if Value.equal c v then go env (i + 1) rest else None
          | Term.Var x -> (
              match Env.find_opt x env with
              | Some bound ->
                  if Value.equal bound v then go env (i + 1) rest else None
              | None -> go (Env.add x v env) (i + 1) rest))
    in
    go env 0 a.args

(* Find one egd application: a body match where left ≠ right. *)
let find_egd_conflict target (e : egd) =
  let exception Found of Value.t * Value.t in
  let rec search env = function
    | [] -> (
        match Env.find_opt e.left env, Env.find_opt e.right env with
        | Some l, Some r when not (Value.equal l r) -> raise (Found (l, r))
        | _ -> ())
    | (a : Atom.t) :: rest ->
        List.iter
          (fun (_tid, row) ->
            match match_structural env a row with
            | Some env' -> search env' rest
            | None -> ())
          (Instance.tuples target ~rel:a.rel)
  in
  try
    search Env.empty e.egd_body;
    None
  with Found (l, r) -> Some (l, r)

let substitute_value target ~from ~into =
  Instance.fold_facts
    (fun _tid (f : Fact.t) acc ->
      let row =
        Array.map (fun v -> if Value.equal v from then into else v) f.row
      in
      Instance.add acc (Fact.make f.rel (Array.to_list row)))
    target
    (Instance.create (Instance.schema target))

let rec egd_chase setting target =
  let conflict =
    List.find_map (fun e -> find_egd_conflict target e) setting.egds
  in
  match conflict with
  | None -> Solution target
  | Some (l, r) ->
      if is_labeled_null l then
        egd_chase setting (substitute_value target ~from:l ~into:r)
      else if is_labeled_null r then
        egd_chase setting (substitute_value target ~from:r ~into:l)
      else
        Failed
          (Format.asprintf "egd equates distinct constants %a and %a" Value.pp
             l Value.pp r)

let chase setting source =
  let target = fire_tgds setting source in
  match egd_chase setting target with
  | Failed _ as f -> f
  | Solution target ->
      if Constraints.Ic.all_hold target setting.target_schema setting.target_ics
      then Solution target
      else Failed "target constraints violated by the exchanged data"

let certain_answers setting source q =
  match chase setting source with
  | Failed reason -> failwith ("Exchange.certain_answers: chase failed: " ^ reason)
  | Solution target ->
      List.filter
        (fun row -> not (List.exists is_labeled_null row))
        (Cq.answers q target)

let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest

let exchange_repairs ?(max_deletions = 4) setting source =
  let facts = Instance.fact_list source in
  let found = ref [] in
  let is_superset_of_found subset =
    List.exists
      (fun smaller -> List.for_all (fun f -> List.mem f subset) smaller)
      !found
  in
  let results = ref [] in
  (try
     for k = 0 to min max_deletions (List.length facts) do
       List.iter
         (fun subset ->
           if not (is_superset_of_found subset) then begin
             let candidate =
               List.fold_left Instance.delete_fact source subset
             in
             match chase setting candidate with
             | Solution target ->
                 found := subset :: !found;
                 results := (candidate, target) :: !results
             | Failed _ -> ()
           end)
         (subsets_of_size k facts);
       (* All minimal repairs found at sizes ≤ k; stop once any exist and
          the next size would only yield supersets... supersets are pruned
          anyway, but distinct minimal repairs can share no inclusion, so
          keep scanning all sizes up to the bound. *)
       ignore k
     done
   with Exit -> ());
  List.rev !results

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let exchange_repair_certain_answers ?max_deletions setting source q =
  match exchange_repairs ?max_deletions setting source with
  | [] -> []
  | repairs ->
      let answer_sets =
        List.map
          (fun (_src, target) ->
            Rows.of_list
              (List.filter
                 (fun row -> not (List.exists is_labeled_null row))
                 (Cq.answers q target)))
          repairs
      in
      match answer_sets with
      | [] -> []
      | first :: rest -> Rows.elements (List.fold_left Rows.inter first rest)
