(** Data exchange: source-to-target tgds, the chase, universal solutions,
    certain answers, and exchange-repairs (paper, Section 8; ten Cate–
    Fontaine–Kolaitis [105], ten Cate–Halpert–Kolaitis [106]).

    A setting consists of a source schema, a target schema, a set of
    source-to-target tgds, and target constraints (equality-generating
    dependencies and denial-class ICs).  Chasing a source instance:

    + every st-tgd fires once per body match, inventing a fresh labeled
      null per existential head variable;
    + egds equate values: a labeled null is replaced by the other side,
      two distinct constants make the chase {b fail}.

    A successful chase yields a universal solution; certain answers are the
    null-free answers over it.  When the chase fails — the paper's Section
    8 point that "data sent to a target may collide with the target
    constraints" — {e exchange-repairs} minimally delete source tuples so
    that the exchange succeeds. *)

type st_tgd = {
  body : Logic.Cq.t;  (** over the source schema *)
  head : Logic.Atom.t list;
      (** over the target schema; variables not in the body's head list are
          existential.  The tgd's frontier is [body.head]. *)
}

type egd = {
  egd_body : Logic.Atom.t list;  (** over the target schema *)
  left : string;
  right : string;  (** body variables forced equal *)
}

type setting = {
  source_schema : Relational.Schema.t;
  target_schema : Relational.Schema.t;
  st_tgds : st_tgd list;
  egds : egd list;
  target_ics : Constraints.Ic.t list;  (** denial-class *)
}

val st_tgd : body:Logic.Cq.t -> head:Logic.Atom.t list -> st_tgd
val egd : body:Logic.Atom.t list -> string -> string -> egd

val is_labeled_null : Relational.Value.t -> bool

type chase_result =
  | Solution of Relational.Instance.t
  | Failed of string  (** human-readable reason *)

val chase : setting -> Relational.Instance.t -> chase_result
(** Chase the source instance into a (canonical) universal solution. *)

val certain_answers :
  setting -> Relational.Instance.t -> Logic.Cq.t ->
  Relational.Value.t list list
(** Null-free answers over the universal solution; raises [Failure] when
    the chase fails (consider {!exchange_repairs}). *)

val exchange_repairs :
  ?max_deletions:int ->
  setting ->
  Relational.Instance.t ->
  (Relational.Instance.t * Relational.Instance.t) list
(** Minimal source sub-instances whose chase succeeds, with their
    solutions: smallest-first search over source deletions, cut off at
    [max_deletions] (default 4) deletions. *)

val exchange_repair_certain_answers :
  ?max_deletions:int ->
  setting ->
  Relational.Instance.t ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Certain answers across all exchange-repair solutions. *)
