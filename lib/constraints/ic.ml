module Schema = Relational.Schema
module Value = Relational.Value
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp

type denial = { name : string; atoms : Atom.t list; comps : Cmp.t list }
type fd = { rel : string; lhs : int list; rhs : int list }
type ind = { sub : string * int list; sup : string * int list }
type pattern = (int * Value.t option) list
type cfd = { rel : string; lhs : int list; rhs : int list; pat : pattern }

type t =
  | Denial of denial
  | Fd of fd
  | Key of string * int list
  | Ind of ind
  | Cfd of cfd

let denial ?(name = "dc") ?(comps = []) atoms = Denial { name; atoms; comps }
let fd ~rel ~lhs ~rhs = Fd { rel; lhs; rhs }
let key ~rel positions = Key (rel, positions)
let ind ~sub ~sup = Ind { sub; sup }
let cfd ~rel ~lhs ~rhs ~pat = Cfd { rel; lhs; rhs; pat }

let positions_name ps = String.concat "," (List.map string_of_int ps)

let name = function
  | Denial d -> d.name
  | Fd f -> Printf.sprintf "fd:%s:%s->%s" f.rel (positions_name f.lhs) (positions_name f.rhs)
  | Key (r, ps) -> Printf.sprintf "key:%s:%s" r (positions_name ps)
  | Ind i ->
      Printf.sprintf "ind:%s[%s]⊆%s[%s]" (fst i.sub) (positions_name (snd i.sub))
        (fst i.sup) (positions_name (snd i.sup))
  | Cfd c -> Printf.sprintf "cfd:%s:%s->%s" c.rel (positions_name c.lhs) (positions_name c.rhs)

let of_formula ?(name = "ic") f =
  match Logic.Clause.of_formula f with
  | None -> None
  | Some clauses ->
      let denial_of i (c : Logic.Clause.t) =
        let atoms =
          List.filter_map
            (function Logic.Clause.Neg a -> Some a | _ -> None)
            c.literals
        in
        let comps =
          List.filter_map
            (function
              | Logic.Clause.Builtin cmp -> Some (Cmp.negate cmp)
              | _ -> None)
            c.literals
        in
        let positive =
          List.exists
            (function Logic.Clause.Pos _ -> true | _ -> false)
            c.literals
        in
        if positive then None
        else Some (Denial { name = Printf.sprintf "%s#%d" name i; atoms; comps })
      in
      let rec all i = function
        | [] -> Some []
        | c :: rest -> (
            match denial_of i c with
            | None -> None
            | Some d -> (
                match all (i + 1) rest with
                | None -> None
                | Some ds -> Some (d :: ds)))
      in
      all 0 clauses

let key_to_fd schema rel positions =
  let n = Schema.arity schema rel in
  let rhs = List.filter (fun i -> not (List.mem i positions)) (List.init n Fun.id) in
  { rel; lhs = positions; rhs }

let vars prefix n = List.init n (fun i -> Term.Var (Printf.sprintf "%s%d" prefix i))

(* One two-tuple denial per determined attribute: R(x̄) ∧ R(ȳ) with x and y
   agreeing on [lhs] (via equality comparisons, so NULL never triggers a
   violation, matching SQL semantics) and differing on the attribute. *)
let fd_denials ?(extra = []) ~tag schema (f : fd) =
  let n = Schema.arity schema f.rel in
  let xs = vars "x" n and ys = vars "y" n in
  let xa = Array.of_list xs and ya = Array.of_list ys in
  let agree = List.map (fun i -> Cmp.eq xa.(i) ya.(i)) f.lhs in
  List.map
    (fun b ->
      {
        name = Printf.sprintf "%s#%d" tag b;
        atoms = [ Atom.make f.rel xs; Atom.make f.rel ys ];
        comps = agree @ [ Cmp.neq xa.(b) ya.(b) ] @ extra;
      })
    f.rhs

let cfd_denials schema (c : cfd) =
  let n = Schema.arity schema c.rel in
  let xs = vars "x" n and ys = vars "y" n in
  let xa = Array.of_list xs and ya = Array.of_list ys in
  let pat_of i = Option.join (List.assoc_opt i c.pat) in
  let lhs_consts terms =
    List.filter_map
      (fun i ->
        match pat_of i with
        | Some v -> Some (Cmp.eq terms.(i) (Term.Const v))
        | None -> None)
      c.lhs
  in
  let tag = Printf.sprintf "cfd:%s" c.rel in
  List.concat_map
    (fun b ->
      match pat_of b with
      | Some v ->
          (* Constant right-hand pattern: a single matching tuple must carry
             the constant. *)
          [
            {
              name = Printf.sprintf "%s#%d=const" tag b;
              atoms = [ Atom.make c.rel xs ];
              comps = lhs_consts xa @ [ Cmp.neq xa.(b) (Term.Const v) ];
            };
          ]
      | None ->
          let agree = List.map (fun i -> Cmp.eq xa.(i) ya.(i)) c.lhs in
          [
            {
              name = Printf.sprintf "%s#%d" tag b;
              atoms = [ Atom.make c.rel xs; Atom.make c.rel ys ];
              comps =
                agree @ lhs_consts xa @ lhs_consts ya
                @ [ Cmp.neq xa.(b) ya.(b) ];
            };
          ])
    c.rhs

let to_denials schema = function
  | Denial d -> Some [ d ]
  | Fd f -> Some (fd_denials ~tag:(name (Fd f)) schema f)
  | Key (r, ps) ->
      let f = key_to_fd schema r ps in
      Some (fd_denials ~tag:(name (Key (r, ps))) schema f)
  | Cfd c -> Some (cfd_denials schema c)
  | Ind _ -> None

let is_denial_class = function
  | Denial _ | Fd _ | Key _ | Cfd _ -> true
  | Ind _ -> false

let denial_clause (d : denial) =
  Logic.Clause.make
    (List.map (fun a -> Logic.Clause.Neg a) d.atoms
    @ List.map (fun c -> Logic.Clause.Builtin (Cmp.negate c)) d.comps)

let ind_clause schema (i : ind) =
  let sub_rel, sub_ps = i.sub and sup_rel, sup_ps = i.sup in
  let nsub = Schema.arity schema sub_rel and nsup = Schema.arity schema sup_rel in
  if List.length sub_ps <> List.length sup_ps then
    invalid_arg "Ic: inclusion dependency with mismatched position lists";
  if List.exists (fun q -> q < 0 || q >= nsup) sup_ps then
    invalid_arg "Ic: inclusion dependency position out of range";
  let xs = Array.of_list (vars "x" nsub) in
  let head_args =
    List.init nsup (fun q ->
        match List.find_opt (fun (_, q') -> q' = q) (List.combine sub_ps sup_ps) with
        | Some (p, _) -> xs.(p)
        | None -> Term.Var (Printf.sprintf "z%d" q))
  in
  let existential =
    List.exists (function Term.Var v -> String.length v > 0 && v.[0] = 'z' | _ -> false)
      head_args
  in
  if existential then []
  else
    [
      Logic.Clause.make
        [
          Logic.Clause.Neg (Atom.make sub_rel (Array.to_list xs));
          Logic.Clause.Pos (Atom.make sup_rel head_args);
        ];
    ]

let to_clauses schema ic =
  match ic with
  | Ind i -> ind_clause schema i
  | _ -> (
      match to_denials schema ic with
      | Some ds -> List.map denial_clause ds
      | None -> [])

let denial_query (d : denial) = Logic.Cq.make ~name:d.name ~comps:d.comps [] d.atoms

let ind_holds inst (i : ind) =
  let sub_rel, sub_ps = i.sub and sup_rel, sup_ps = i.sup in
  let project ps (row : Value.t array) = List.map (fun p -> row.(p)) ps in
  let sup_keys =
    List.fold_left
      (fun acc row -> project sup_ps row :: acc)
      []
      (Relational.Instance.rows inst ~rel:sup_rel)
  in
  List.for_all
    (fun row ->
      let k = project sub_ps row in
      (* A NULL in the projected key satisfies the IND vacuously, as for
         SQL foreign keys. *)
      List.exists Value.is_null k
      || List.exists (fun k' -> List.for_all2 Value.equal k k') sup_keys)
    (Relational.Instance.rows inst ~rel:sub_rel)

let holds inst schema ic =
  match ic with
  | Ind i -> ind_holds inst i
  | _ -> (
      match to_denials schema ic with
      | Some ds -> List.for_all (fun d -> not (Logic.Cq.holds (denial_query d) inst)) ds
      | None -> assert false)

let all_hold inst schema ics = List.for_all (holds inst schema) ics

let pp ppf ic =
  match ic with
  | Denial d ->
      Format.fprintf ppf "¬∃(%a%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
           Atom.pp)
        d.atoms
        (fun ppf comps ->
          List.iter (fun c -> Format.fprintf ppf " ∧ %a" Cmp.pp c) comps)
        d.comps
  | _ -> Format.pp_print_string ppf (name ic)
