module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Tvl = Relational.Tvl
module Binding = Logic.Binding
module Cq = Logic.Cq
module Plan = Relational.Plan
module Columnar = Relational.Columnar

let c_scan_row = Obs.Counter.make "scan.row"

type witness = {
  ic_name : string;
  tids : Tid.Set.t;
  binding : Binding.t;
  matched : (Tid.t * Logic.Atom.t) list;
}

module Tidset_set = Set.Make (Tid.Set)

(* Compiled violation search: the denial body is a conjunctive query, so
   {!Cq.compile_body} (with [~tids:true], one [#tid<i>] column per atom)
   turns it into one fused join plan per denial instead of the
   tuple-at-a-time backtracking below.  The interpreter's accumulator is
   then reconstructed exactly: it discovers witnesses in lexicographic
   order of the tid vector (atoms scanned in body order, candidate
   buckets tid-ascending) and prepends, so sorting the plan's output rows
   by tid vector and reversing reproduces [raw] byte for byte — the
   dedup fold downstream needs that order to keep the same
   representative per tid set. *)
let columnar_denial_search inst (d : Ic.denial) =
  match
    if Columnar.enabled () then Cq.compile_body inst ~tids:true d.atoms d.comps
    else None
  with
  | None -> None
  | Some (plan, find) ->
      let n_atoms = List.length d.atoms in
      let tid_cols = List.init n_atoms (Printf.sprintf "#tid%d") in
      let body_vars =
        Logic.Term.vars (List.concat_map (fun (a : Logic.Atom.t) -> a.args) d.atoms)
      in
      let rep_cols =
        List.fold_left
          (fun acc v ->
            let r = find v in
            if List.mem r acc then acc else r :: acc)
          [] body_vars
        |> List.rev
      in
      let table = Plan.run inst (Plan.Project (tid_cols @ rep_cols, plan)) in
      let col v = Columnar.col_index table (find v) in
      let tid_at (row : Value.t array) i =
        match row.(i) with Value.Int t -> Tid.of_int t | _ -> assert false
      in
      let rows =
        List.sort
          (fun (r1 : Value.t array) r2 ->
            let rec go i =
              if i = n_atoms then 0
              else
                match Value.compare r1.(i) r2.(i) with 0 -> go (i + 1) | c -> c
            in
            go 0)
          (Columnar.rows table)
      in
      Some
        (List.rev_map
           (fun row ->
             let env =
               List.fold_left
                 (fun env v -> Binding.bind env v row.(col v))
                 Binding.empty body_vars
             in
             (env, List.mapi (fun i a -> (tid_at row i, a)) d.atoms))
           rows)

let of_denial inst (d : Ic.denial) =
  let cmp_ready env c = List.for_all (Binding.mem env) (Logic.Cmp.vars c) in
  let rec search env matched atoms comps acc =
    let ready, pending = List.partition (cmp_ready env) comps in
    if
      not
        (List.for_all (fun c -> Tvl.to_bool (Binding.eval_cmp env c)) ready)
    then acc
    else
      match atoms with
      | [] -> (env, List.rev matched) :: acc
      | a :: rest ->
          List.fold_left
            (fun acc (tid, row) ->
              match Cq.match_row env a row with
              | Some env' -> search env' ((tid, a) :: matched) rest pending acc
              | None -> acc)
            acc
            (* Bucketed candidate lookup.  For an FD/key denial the second
               atom's candidates are exactly the first tuple's key bucket:
               the pending equality comparisons [xa_i = ya_i] force the
               already-matched tuple's key values onto the second atom's
               positions, so [bound_pattern] turns the pairwise scan into a
               hash-bucket probe (one per matched tuple). *)
            (Instance.matching_tuples inst ~rel:a.Logic.Atom.rel
               ~bound:(Cq.bound_pattern env a pending))
  in
  let raw =
    match columnar_denial_search inst d with
    | Some raw -> raw
    | None ->
        Obs.Counter.incr c_scan_row;
        search Binding.empty [] d.atoms d.comps []
  in
  (* Distinct tid sets only: symmetric constraint bodies (e.g. an FD's two
     atoms) produce each conflict once per automorphism. *)
  let _, witnesses =
    List.fold_left
      (fun (seen, ws) (binding, matched) ->
        let tids =
          List.fold_left
            (fun acc (tid, _) -> Tid.Set.add tid acc)
            Tid.Set.empty matched
        in
        if Tidset_set.mem tids seen then (seen, ws)
        else
          ( Tidset_set.add tids seen,
            { ic_name = d.name; tids; binding; matched } :: ws ))
      (Tidset_set.empty, []) raw
  in
  List.rev witnesses

let of_ind inst (i : Ic.ind) =
  let sub_rel, sub_ps = i.Ic.sub and sup_rel, sup_ps = i.Ic.sup in
  let project ps (row : Value.t array) = List.map (fun p -> row.(p)) ps in
  (* Membership in the sup-side projection is an index probe per sub tuple
     instead of a scan of sup per sub tuple.  NULL keys are vacuously
     satisfied, matching [Value.equal]'s Null = Null on the old scan path
     never firing because NULL sub keys were skipped first. *)
  let sup_has k =
    Instance.matching_tuples inst ~rel:sup_rel
      ~bound:(List.map2 (fun p v -> (p, v)) sup_ps k)
    <> []
  in
  List.filter_map
    (fun (tid, row) ->
      let k = project sub_ps row in
      if List.exists Value.is_null k || sup_has k then None else Some tid)
    (Instance.tuples inst ~rel:sub_rel)

let of_ic inst schema ic =
  match ic with
  | Ic.Ind i ->
      List.map
        (fun tid ->
          {
            ic_name = Ic.name ic;
            tids = Tid.Set.singleton tid;
            binding = Binding.empty;
            matched = [];
          })
        (of_ind inst i)
  | _ ->
      let denials = Option.get (Ic.to_denials schema ic) in
      List.concat_map (of_denial inst) denials

let all inst schema ics = List.concat_map (of_ic inst schema) ics
let is_consistent inst schema ics = all inst schema ics = []

let pp_witness ppf w =
  Format.fprintf ppf "%s: {%a}" w.ic_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tid.pp)
    (Tid.Set.elements w.tids)
