(** Integrity constraints.

    The classes the paper works with:
    - {b key constraints} and {b functional dependencies} (Examples 3.3–3.4),
    - {b inclusion dependencies} / tuple-generating dependencies, with or
      without existential variables in the head (Examples 2.1 and 4.3),
    - {b denial constraints} (Example 3.5),
    - {b conditional functional dependencies} (Section 6).

    Attribute positions are 0-based.  Keys, FDs and CFDs compile into denial
    constraints; inclusion dependencies do not (repairing them may require
    insertions) and are treated separately by the repair semantics. *)

type denial = { name : string; atoms : Logic.Atom.t list; comps : Logic.Cmp.t list }
(** [¬∃x̄ (atoms ∧ comps)].  Variables are implicit. *)

type fd = { rel : string; lhs : int list; rhs : int list }
(** [rel : lhs → rhs]. *)

type ind = {
  sub : string * int list;
  sup : string * int list;
}
(** [sub = (R, ps)], [sup = (S, qs)]: ∀x̄ (R(..) → ∃ȳ S(..)) where the
    [ps]-projection of R must appear as the [qs]-projection of some S-tuple.
    Positions of S outside [qs] are existential (the paper's tgd (7)). *)

type pattern = (int * Relational.Value.t option) list
(** CFD pattern over attribute positions: [Some c] demands the constant [c],
    [None] is the wildcard ['_']. *)

type cfd = { rel : string; lhs : int list; rhs : int list; pat : pattern }
(** FD [lhs → rhs] restricted to tuples matching the [lhs] part of [pat];
    constants in the [rhs] part additionally force those values. *)

type t =
  | Denial of denial
  | Fd of fd
  | Key of string * int list
  | Ind of ind
  | Cfd of cfd

val denial : ?name:string -> ?comps:Logic.Cmp.t list -> Logic.Atom.t list -> t
val fd : rel:string -> lhs:int list -> rhs:int list -> t
val key : rel:string -> int list -> t
val ind : sub:string * int list -> sup:string * int list -> t
val cfd : rel:string -> lhs:int list -> rhs:int list -> pat:pattern -> t

val name : t -> string

val of_formula : ?name:string -> Logic.Formula.t -> t list option
(** Constraints from a universal first-order sentence: the formula is put
    in clausal form ({!Logic.Clause.of_formula}); clauses without positive
    atoms become denial constraints.  Returns [None] when the formula has
    no clausal form or some clause has a positive atom (a
    generating dependency, not expressible as a denial). *)

val key_to_fd : Relational.Schema.t -> string -> int list -> fd
(** A key determines all remaining attributes. *)

val to_denials : Relational.Schema.t -> t -> denial list option
(** The equivalent set of denial constraints, or [None] for inclusion
    dependencies (which are not denials). *)

val is_denial_class : t -> bool

val to_clauses : Relational.Schema.t -> t -> Logic.Clause.t list
(** Clausal form for the residue-based rewriting.  A denial
    [¬∃(A ∧ c)] becomes [¬A1 ∨ ... ∨ ¬An ∨ ¬c]; an IND without existential
    head variables becomes [¬R(x̄) ∨ S(ȳ)].  INDs with existential variables
    have no clausal form over the schema and yield []. *)

val holds : Relational.Instance.t -> Relational.Schema.t -> t -> bool
val all_hold : Relational.Instance.t -> Relational.Schema.t -> t list -> bool
val pp : Format.formatter -> t -> unit
