module Tid = Relational.Tid
module Instance = Relational.Instance

type t = { vertices : Tid.Set.t; edges : Tid.Set.t list }

module Tidset_set = Set.Make (Tid.Set)

let build inst schema ics =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg
          (Printf.sprintf
             "Conflict_graph.build: %s is not a denial-class constraint"
             (Ic.name ic)))
    ics;
  Obs.Trace.with_span "conflict_graph.build" @@ fun () ->
  let witnesses = Violation.all inst schema ics in
  let edges =
    List.fold_left
      (fun acc (w : Violation.witness) -> Tidset_set.add w.tids acc)
      Tidset_set.empty witnesses
  in
  Obs.Trace.attr_int "edges" (Tidset_set.cardinal edges);
  { vertices = Instance.tids inst; edges = Tidset_set.elements edges }

(* ------------------------------------------------------------------ *)
(* Cached builds.

   Repair enumeration, C-repair search and repair checking all need the
   conflict graph of the *same* instance; a small bounded memo keyed by
   (instance digest, constraint fingerprint) lets them share one build.
   The digest is a hash, so a hit is only trusted after verifying the
   cached instance: first by physical equality (the overwhelmingly common
   case — the same [Instance.t] value flowing through one pipeline), then
   by [Instance.equal].  Protected by a mutex: Par workers may check
   repairs concurrently. *)

let c_cache_hits = Obs.Counter.make "conflict_graph.cache_hits"
let c_cache_misses = Obs.Counter.make "conflict_graph.cache_misses"

let cache_capacity = 8
let cache : (int * string * Instance.t * t) list ref = ref []
let cache_lock = Mutex.create ()

let ics_fingerprint ics =
  String.concat ";" (List.map (fun ic -> Format.asprintf "%a" Ic.pp ic) ics)

let build_cached inst schema ics =
  let key = Instance.digest inst in
  let fp = ics_fingerprint ics in
  let hit =
    Mutex.lock cache_lock;
    let found =
      List.find_opt
        (fun (k, f, cached_inst, _) ->
          k = key && String.equal f fp
          && (cached_inst == inst || Instance.equal_with_tids cached_inst inst))
        !cache
    in
    Mutex.unlock cache_lock;
    found
  in
  match hit with
  | Some (_, _, _, g) ->
      Obs.Counter.incr c_cache_hits;
      g
  | None ->
      Obs.Counter.incr c_cache_misses;
      let g = build inst schema ics in
      Mutex.lock cache_lock;
      cache :=
        (key, fp, inst, g)
        :: (if List.length !cache >= cache_capacity then
              List.filteri (fun i _ -> i < cache_capacity - 1) !cache
            else !cache);
      Mutex.unlock cache_lock;
      g

let edges_as_int_lists t =
  List.map
    (fun e -> List.map Tid.to_int (Tid.Set.elements e))
    t.edges

let degree t tid =
  List.length (List.filter (fun e -> Tid.Set.mem tid e) t.edges)

let conflicting_tids t =
  List.fold_left Tid.Set.union Tid.Set.empty t.edges

let is_independent t set =
  not (List.exists (fun e -> Tid.Set.subset e set) t.edges)

let pp ppf t =
  Format.fprintf ppf "vertices: {%a}@,edges:@,%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tid.pp)
    (Tid.Set.elements t.vertices)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "  {%a}"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
              Tid.pp)
           (Tid.Set.elements e)))
    t.edges
