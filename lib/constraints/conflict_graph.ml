module Tid = Relational.Tid
module Instance = Relational.Instance

type t = { vertices : Tid.Set.t; edges : Tid.Set.t list }

module Tidset_set = Set.Make (Tid.Set)

let build inst schema ics =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg
          (Printf.sprintf
             "Conflict_graph.build: %s is not a denial-class constraint"
             (Ic.name ic)))
    ics;
  let witnesses = Violation.all inst schema ics in
  let edges =
    List.fold_left
      (fun acc (w : Violation.witness) -> Tidset_set.add w.tids acc)
      Tidset_set.empty witnesses
  in
  { vertices = Instance.tids inst; edges = Tidset_set.elements edges }

let edges_as_int_lists t =
  List.map
    (fun e -> List.map Tid.to_int (Tid.Set.elements e))
    t.edges

let degree t tid =
  List.length (List.filter (fun e -> Tid.Set.mem tid e) t.edges)

let conflicting_tids t =
  List.fold_left Tid.Set.union Tid.Set.empty t.edges

let is_independent t set =
  not (List.exists (fun e -> Tid.Set.subset e set) t.edges)

let pp ppf t =
  Format.fprintf ppf "vertices: {%a}@,edges:@,%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Tid.pp)
    (Tid.Set.elements t.vertices)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "  {%a}"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
              Tid.pp)
           (Tid.Set.elements e)))
    t.edges
