(** Violation detection with tuple-level witnesses.

    A witness records which tuples (tids) jointly violate a constraint —
    exactly the hyperedges of the conflict hypergraph (paper, Figure 1). *)

type witness = {
  ic_name : string;
  tids : Relational.Tid.Set.t;
  binding : Logic.Binding.t;
  matched : (Relational.Tid.t * Logic.Atom.t) list;
      (** Which tuple matched which body atom, in body order (needed by
          attribute-level repairs to locate the cells that can break the
          violation).  Empty for IND witnesses. *)
}

val of_denial : Relational.Instance.t -> Ic.denial -> witness list
(** All distinct violating tuple sets of one denial constraint. *)

val of_ind : Relational.Instance.t -> Ic.ind -> Relational.Tid.t list
(** Tids of sub-relation tuples with no matching sup-relation tuple. *)

val of_ic :
  Relational.Instance.t -> Relational.Schema.t -> Ic.t -> witness list
(** Witnesses for any constraint; an IND violation is a singleton witness
    for the dangling tuple (deleting it is one way to restore consistency;
    inserting a matching tuple is the other — see lib/repairs). *)

val all :
  Relational.Instance.t -> Relational.Schema.t -> Ic.t list -> witness list

val is_consistent :
  Relational.Instance.t -> Relational.Schema.t -> Ic.t list -> bool

val pp_witness : Format.formatter -> witness -> unit
