(** Conflict hypergraphs (paper, Figure 1 / Example 4.1).

    Vertices are the tuples of the instance; a hyperedge connects the tuples
    of one constraint violation.  For denial-class constraints:
    - S-repairs are the sub-instances whose tid sets are the complements of
      the minimal hitting sets of the edges (maximal independent sets);
    - C-repairs correspond to minimum-cardinality hitting sets. *)

type t = {
  vertices : Relational.Tid.Set.t;
  edges : Relational.Tid.Set.t list; (* distinct *)
}

val build :
  Relational.Instance.t -> Relational.Schema.t -> Ic.t list -> t
(** Raises [Invalid_argument] when the constraint set contains an inclusion
    dependency — INDs are not denials and their repairs are not captured by
    a conflict hypergraph. *)

val build_cached :
  Relational.Instance.t -> Relational.Schema.t -> Ic.t list -> t
(** [build] through a small bounded memo keyed by the instance digest and a
    constraint fingerprint, verified against the cached instance before
    reuse (digests are hashes, not proofs).  Domain-safe; the
    [conflict_graph.cache_hits]/[cache_misses] counters record behaviour. *)

val edges_as_int_lists : t -> int list list
(** For the hitting-set solvers: each edge as a list of tid integers. *)

val degree : t -> Relational.Tid.t -> int
(** Number of edges containing the tuple. *)

val conflicting_tids : t -> Relational.Tid.Set.t
(** Tuples involved in at least one conflict. *)

val is_independent : t -> Relational.Tid.Set.t -> bool
(** No edge fully contained in the given set. *)

val pp : Format.formatter -> t -> unit
