(** Whole-document static analysis — the driver behind [cqa analyze] and
    the server's [ANALYZE] command.

    Runs every analyzer over a parsed document without evaluating
    anything: constraint-set conformance and structure
    ({!Analysis.Ic_analysis}), lints of the compiled ASP repair program
    ({!Analysis.Lint}), and the complexity classifier with the
    [method=auto] route for every named query ({!Analysis.Classify},
    {!Engine.plan}).  All output is deterministically ordered: findings
    are sorted, queries are reported in name order. *)

type query_report = {
  name : string;
  classification : Analysis.Classify.t;
  route : Engine.route option;
      (** [None] for union queries (no single-CQ plan). *)
  findings : Analysis.Finding.t list;
}

type t = {
  constraint_findings : Analysis.Finding.t list;
  program_findings : Analysis.Finding.t list;
      (** Lints of the compiled repair program; empty when the constraint
          set is outside the denial class (nothing to compile). *)
  program_rules : int;  (** Rule count of the compiled repair program. *)
  queries : query_report list;  (** Sorted by query name. *)
}

val document : Parse.document -> t

val has_errors : t -> bool
(** Any error-severity finding anywhere — the CI lint gate. *)

val lines : t -> string list
(** The full report, one line each, deterministic. *)

val query_lines : Parse.document -> string -> string list
(** The classification, witness and auto-route lines for one named query
    — the ["-- analysis"] section of the server's EXPLAIN output.
    Raises [Not_found] for an unknown name. *)
