(* Canonical query shapes: variables renamed v0,v1,... in first
   occurrence order, constants abstracted to "?", names dropped. *)

type ctx = { tbl : (string, string) Hashtbl.t; mutable next : int }

let term ctx = function
  | Logic.Term.Const _ -> "?"
  | Logic.Term.Var v -> (
      match Hashtbl.find_opt ctx.tbl v with
      | Some c -> c
      | None ->
          let c = Printf.sprintf "v%d" ctx.next in
          ctx.next <- ctx.next + 1;
          Hashtbl.add ctx.tbl v c;
          c)

let op_label = function
  | Logic.Cmp.Eq -> "="
  | Logic.Cmp.Neq -> "!="
  | Logic.Cmp.Lt -> "<"
  | Logic.Cmp.Le -> "<="
  | Logic.Cmp.Gt -> ">"
  | Logic.Cmp.Ge -> ">="

let cq (q : Logic.Cq.t) =
  let ctx = { tbl = Hashtbl.create 8; next = 0 } in
  let terms ts = String.concat "," (List.map (term ctx) ts) in
  (* Sequenced lets: first-occurrence order is head, then body atoms in
     order, then comparisons. *)
  let head = terms q.head in
  let atoms =
    List.map
      (fun (a : Logic.Atom.t) -> Printf.sprintf "%s(%s)" a.rel (terms a.args))
      q.body
  in
  let comps =
    List.map
      (fun (c : Logic.Cmp.t) ->
        let l = term ctx c.left in
        let r = term ctx c.right in
        Printf.sprintf "%s%s%s" l (op_label c.op) r)
      q.comps
  in
  Printf.sprintf "(%s):-%s" head (String.concat "," (atoms @ comps))

let ucq (u : Logic.Ucq.t) =
  match u.disjuncts with
  | [ q ] -> cq q
  | qs -> String.concat " | " (List.sort String.compare (List.map cq qs))
