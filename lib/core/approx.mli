(** Tractable approximations of consistent query answering (paper, Section
    3.2: "research has also been conducted on tractable approximations to
    CQA" [65, 69–71]).

    Two polynomially-computable bounds bracket the consistent answers:
    - an {b under-approximation} — answers guaranteed consistent — from the
      residue rewriting (its conditions force every repair to agree), and
    - an {b over-approximation} — a superset of the consistent answers —
      by intersecting the query answers over a few sampled repairs (each
      sampled repair only removes answers; the limit is the exact set).

    The gap between the two is an interval that narrows with more samples;
    when it closes, the exact consistent answers were computed without
    enumerating the repair space. *)

type bounds = {
  under : Relational.Value.t list list;
  over : Relational.Value.t list list;
  exact : bool;  (** true when [under = over]. *)
}

val under_approximation :
  Engine.t -> Logic.Cq.t -> Relational.Value.t list list
(** Sound: every returned answer is a consistent answer (denial-class and
    full INDs; property-tested against repair enumeration). *)

val over_approximation :
  ?seed:int -> ?samples:int -> Engine.t -> Logic.Cq.t ->
  Relational.Value.t list list
(** Complete: every consistent answer is returned.  [samples] (default 5)
    sampled repairs are intersected; denial-class constraints only. *)

val bounds :
  ?seed:int -> ?samples:int -> Engine.t -> Logic.Cq.t -> bounds
