module Schema = Relational.Schema
module Instance = Relational.Instance
module Value = Relational.Value
module Term = Logic.Term
module Atom = Logic.Atom
module Cmp = Logic.Cmp
module Ic = Constraints.Ic

type document = {
  schema : Schema.t;
  instance : Instance.t;
  ics : Ic.t list;
  queries : (string * Logic.Cq.t) list;
}

exception Error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Error (line, m))) fmt

(* --- tokenizing ------------------------------------------------------- *)

type token =
  | Ident of string
  | Quoted of string
  | Sym of string (* ( ) , : [ ] ; and operators *)

let tokenize line s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '%' then i := n
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail line "unterminated string";
      push (Quoted (String.sub s (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if
      (c >= 'a' && c <= 'z')
      || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9')
      || c = '_' || c = '\''
    then begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = s.[!j] in
        (d >= 'a' && d <= 'z')
        || (d >= 'A' && d <= 'Z')
        || (d >= '0' && d <= '9')
        || d = '_' || d = '\'' || d = '.'
      do
        incr j
      done;
      push (Ident (String.sub s !i (!j - !i)));
      i := !j
    end
    else begin
      (* multi-char operators *)
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | ":-" ->
          push (Sym two);
          i := !i + 2
      | _ ->
          push (Sym (String.make 1 c));
          i := !i + 1
    end
  done;
  List.rev !toks

(* --- token-stream helpers --------------------------------------------- *)

type stream = { mutable toks : token list; line : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail st.line "unexpected end of line"
  | t :: rest ->
      st.toks <- rest;
      t

let expect_sym st s =
  match next st with
  | Sym s' when String.equal s s' -> ()
  | _ -> fail st.line "expected '%s'" s

let ident st =
  match next st with
  | Ident s -> s
  | Quoted s -> s
  | Sym s -> fail st.line "expected identifier, got '%s'" s

let is_all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let value_of_token line = function
  | Quoted s -> Value.str s
  | Ident s when String.equal s "null" -> Value.Null
  | Ident s when is_all_digits s -> Value.int (int_of_string s)
  | Ident s -> Value.str s
  | Sym s -> fail line "expected value, got '%s'" s

let term_of_token line = function
  | Quoted s -> Term.Const (Value.str s)
  | Ident s when String.equal s "null" -> Term.Const Value.Null
  | Ident s when is_all_digits s -> Term.int (int_of_string s)
  | Ident s when s.[0] >= 'A' && s.[0] <= 'Z' -> Term.var s
  | Ident s -> Term.str s
  | Sym s -> fail line "expected term, got '%s'" s

let comma_list st parse =
  let rec go acc =
    let x = parse st in
    match peek st with
    | Some (Sym ",") ->
        ignore (next st);
        go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

let paren_list st parse =
  expect_sym st "(";
  match peek st with
  | Some (Sym ")") ->
      ignore (next st);
      []
  | _ ->
      let xs = comma_list st parse in
      expect_sym st ")";
      xs

(* atoms and comparisons in rule bodies *)
let parse_atom st name =
  let args = paren_list st (fun st -> term_of_token st.line (next st)) in
  Atom.make name args

let op_of_sym line = function
  | "=" -> Cmp.Eq
  | "<>" -> Cmp.Neq
  | "<" -> Cmp.Lt
  | "<=" -> Cmp.Le
  | ">" -> Cmp.Gt
  | ">=" -> Cmp.Ge
  | s -> fail line "unknown comparison operator '%s'" s

(* A body element: either Pred(args) or term OP term. *)
let parse_body_element st =
  let first = next st in
  match first, peek st with
  | Ident name, Some (Sym "(") -> `Atom (parse_atom st name)
  | t, Some (Sym op) when List.mem op [ "="; "<>"; "<"; "<="; ">"; ">=" ] ->
      ignore (next st);
      let right = term_of_token st.line (next st) in
      `Cmp (Cmp.make (op_of_sym st.line op) (term_of_token st.line t) right)
  | _ -> fail st.line "expected atom or comparison"

let parse_body st =
  let elems = comma_list st parse_body_element in
  let atoms = List.filter_map (function `Atom a -> Some a | `Cmp _ -> None) elems in
  let comps = List.filter_map (function `Cmp c -> Some c | `Atom _ -> None) elems in
  (atoms, comps)

(* --- directives ------------------------------------------------------- *)

type state = {
  mutable schema : Schema.t;
  mutable rows : (string * Value.t list) list; (* reversed *)
  mutable ics : Ic.t list; (* reversed *)
  mutable queries : (string * Logic.Cq.t) list; (* reversed *)
}

let attr_index state line rel attr =
  try Schema.attribute_index state.schema ~rel ~attr
  with Not_found -> fail line "unknown attribute %s of %s" attr rel

let check_rel state line rel =
  if not (Schema.mem state.schema rel) then fail line "unknown relation %s" rel

let parse_line state line_no raw =
  let toks = tokenize line_no raw in
  match toks with
  | [] -> ()
  | Ident "relation" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      let attrs = paren_list st ident in
      state.schema <- Schema.add_relation state.schema ~name ~attributes:attrs
  | Ident "row" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      check_rel state line_no name;
      let values = paren_list st (fun st -> value_of_token st.line (next st)) in
      state.rows <- (name, values) :: state.rows
  | Ident "key" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      check_rel state line_no name;
      let attrs = paren_list st ident in
      let positions = List.map (attr_index state line_no name) attrs in
      state.ics <- Ic.key ~rel:name positions :: state.ics
  | Ident "fd" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      check_rel state line_no name;
      expect_sym st ":";
      let lhs = comma_list st ident in
      expect_sym st "-";
      expect_sym st ">";
      let rhs = comma_list st ident in
      state.ics <-
        Ic.fd ~rel:name
          ~lhs:(List.map (attr_index state line_no name) lhs)
          ~rhs:(List.map (attr_index state line_no name) rhs)
        :: state.ics
  | Ident "ind" :: rest ->
      let st = { toks = rest; line = line_no } in
      let sub = ident st in
      check_rel state line_no sub;
      expect_sym st "[";
      let sub_attrs = comma_list st ident in
      expect_sym st "]";
      expect_sym st "<=";
      let sup = ident st in
      check_rel state line_no sup;
      expect_sym st "[";
      let sup_attrs = comma_list st ident in
      expect_sym st "]";
      state.ics <-
        Ic.ind
          ~sub:(sub, List.map (attr_index state line_no sub) sub_attrs)
          ~sup:(sup, List.map (attr_index state line_no sup) sup_attrs)
        :: state.ics
  | Ident "cfd" :: rest ->
      (* cfd R: a = 44, b -> c [= v]: pattern constants inline. *)
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      check_rel state line_no name;
      expect_sym st ":";
      let parse_spec st =
        let attr = ident st in
        match peek st with
        | Some (Sym "=") ->
            ignore (next st);
            let v = value_of_token st.line (next st) in
            (attr, Some v)
        | _ -> (attr, None)
      in
      let lhs = comma_list st parse_spec in
      expect_sym st "-";
      expect_sym st ">";
      let rhs = comma_list st parse_spec in
      let pos (attr, _) = attr_index state line_no name attr in
      let pat =
        List.map (fun ((_, v) as spec) -> (pos spec, v)) (lhs @ rhs)
      in
      state.ics <-
        Ic.cfd ~rel:name ~lhs:(List.map pos lhs) ~rhs:(List.map pos rhs) ~pat
        :: state.ics
  | Ident "dc" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      expect_sym st ":";
      let atoms, comps = parse_body st in
      state.ics <- Ic.denial ~name ~comps atoms :: state.ics
  | Ident "query" :: rest ->
      let st = { toks = rest; line = line_no } in
      let name = ident st in
      let head = paren_list st (fun st -> term_of_token st.line (next st)) in
      expect_sym st ":-";
      let atoms, comps = parse_body st in
      state.queries <-
        (name, Logic.Cq.make ~name ~comps head atoms) :: state.queries
  | Ident d :: _ -> fail line_no "unknown directive '%s'" d
  | _ -> fail line_no "malformed line"

let document_of_string text =
  let state = { schema = Schema.empty; rows = []; ics = []; queries = [] } in
  List.iteri
    (fun i raw ->
      try parse_line state (i + 1) raw
      with Invalid_argument msg -> raise (Error (i + 1, msg)))
    (String.split_on_char '\n' text);
  let instance =
    List.fold_left
      (fun acc (rel, values) ->
        Instance.add acc (Relational.Fact.make rel values))
      (Instance.create state.schema)
      (List.rev state.rows)
  in
  {
    schema = state.schema;
    instance;
    ics = List.rev state.ics;
    queries = List.rev state.queries;
  }

let document_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  document_of_string text

let find_query (doc : document) name = List.assoc name doc.queries

let find_ucq (doc : document) name =
  match
    List.filter_map
      (fun (n, q) -> if String.equal n name then Some q else None)
      doc.queries
  with
  | [] -> raise Not_found
  | disjuncts -> Logic.Ucq.make ~name disjuncts
