(** A small line-oriented text format for databases, constraints and
    queries, used by the command-line tool and the examples.

    {v
    % comments start with a percent sign
    relation Employee(name, salary)
    row Employee(page, 5)
    row Employee(page, 8)
    key Employee(name)
    fd Employee: name -> salary
    ind Supply[item] <= Articles[item]
    dc kappa: S(X), R(X, Y), S(Y)
    cfd Cust: cc = 44, zip -> street
    query q(X) :- Employee(X, Y), Y <> 5
    v}

    Identifiers starting with an uppercase letter are variables (Prolog
    convention); everything else is a constant.  All-digit tokens are
    integers, [null] is the SQL null, quoted strings keep their spelling.
    [ind] position lists use attribute names; [dc] bodies may end with
    comparisons ([=], [<>], [<], [<=], [>], [>=]). *)

type document = {
  schema : Relational.Schema.t;
  instance : Relational.Instance.t;
  ics : Constraints.Ic.t list;
  queries : (string * Logic.Cq.t) list;
}

exception Error of int * string
(** Line number and message. *)

val document_of_string : string -> document
val document_of_file : string -> document
val find_query : document -> string -> Logic.Cq.t
(** The first query with that name.  Raises [Not_found]. *)

val find_ucq : document -> string -> Logic.Ucq.t
(** All queries sharing the name, as a union — several [query q(...) :- ...]
    lines with one name declare a UCQ.  Raises [Not_found]. *)
