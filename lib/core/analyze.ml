module Finding = Analysis.Finding
module Classify = Analysis.Classify

type query_report = {
  name : string;
  classification : Classify.t;
  route : Engine.route option;
  findings : Finding.t list;
}

type t = {
  constraint_findings : Finding.t list;
  program_findings : Finding.t list;
  program_rules : int;
  queries : query_report list;
}

let query_names (doc : Parse.document) =
  List.map fst doc.queries |> List.sort_uniq String.compare

let report_of_query (doc : Parse.document) name =
  let u = Parse.find_ucq doc name in
  let classification = Classify.classify_ucq doc.ics u in
  let route =
    match u.Logic.Ucq.disjuncts with
    | [ q ] ->
        let engine = Engine.create ~schema:doc.schema ~ics:doc.ics doc.instance in
        Some (Engine.plan engine q).Engine.route
    | _ -> None
  in
  let findings =
    (match classification.Classify.witness with
    | Classify.Unsafe_query v ->
        [
          Finding.make Finding.Error ~code:"query/unsafe" ~subject:name
            (Printf.sprintf "variable %s is not bound by any body atom" v);
        ]
    | _ -> [])
    @ List.concat_map
        (Analysis.Lint.query_findings ~subject:name)
        u.Logic.Ucq.disjuncts
  in
  { name; classification; route; findings }

let repair_program_report (doc : Parse.document) =
  (* The repair program exists for denial-class constraint sets only;
     anything else (INDs) is compiled by other layers. *)
  match
    Repair_programs.Compile.repair_program doc.schema doc.ics
  with
  | program ->
      (List.length program.Asp.Syntax.rules, Analysis.Lint.asp_program program)
  | exception Invalid_argument _ -> (0, [])

let document (doc : Parse.document) =
  let program_rules, program_findings = repair_program_report doc in
  {
    constraint_findings = Analysis.Ic_analysis.analyze doc.schema doc.ics;
    program_findings;
    program_rules;
    queries = List.map (report_of_query doc) (query_names doc);
  }

let has_errors t =
  Finding.has_errors t.constraint_findings
  || Finding.has_errors t.program_findings
  || List.exists (fun q -> Finding.has_errors q.findings) t.queries

let section title findings =
  Printf.sprintf "-- %s: %d finding(s), %d error(s)" title
    (List.length (Finding.sort findings))
    (Finding.errors findings)
  :: Finding.to_lines findings

let query_report_lines q =
  let prefix line = Printf.sprintf "query %s: %s" q.name line in
  List.map prefix (Classify.to_lines q.classification)
  @ (match q.route with
    | Some route -> [ prefix (Printf.sprintf "route %s" (Engine.route_label route)) ]
    | None -> [ prefix "route repair_enumeration (union query)" ])
  @ List.map Finding.to_line (Finding.sort q.findings)

let lines t =
  section "constraints" t.constraint_findings
  @ (if t.program_rules = 0 then []
     else
       section
         (Printf.sprintf "repair-program (%d rules)" t.program_rules)
         t.program_findings)
  @ Printf.sprintf "-- queries: %d" (List.length t.queries)
    :: List.concat_map query_report_lines t.queries

let query_lines (doc : Parse.document) name =
  if not (List.mem_assoc name doc.queries) then raise Not_found;
  query_report_lines (report_of_query doc name)
