(** Query fingerprints — a normalized, stable identity for a query's
    {e shape}, in the spirit of [pg_stat_statements] queryids.

    Two queries get the same fingerprint exactly when they differ only
    by variable names and by the values of constants:

    - variables are renamed canonically ([v0], [v1], ...) in first
      occurrence order across head, body atoms (in order), then
      comparisons;
    - every constant is abstracted to [?];
    - the query's own name is dropped (the shape, not the label, is the
      identity);
    - a union's disjunct fingerprints are sorted before joining, so
      disjunct order does not matter.

    Relation names, atom order, argument positions and comparison
    operators are preserved — those are the shape.  The serving layer
    keys its workload store on [semantics ^ ":" ^ fingerprint]. *)

val cq : Logic.Cq.t -> string
(** E.g. [q(X) :- Emp(X, 5000), X <> smith] fingerprints as
    ["(v0):-Emp(v0,?),v0!=?"]. *)

val ucq : Logic.Ucq.t -> string
(** Disjunct fingerprints sorted and joined with [" | "]; a singleton
    union equals {!cq} of its disjunct. *)
