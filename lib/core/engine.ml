module Instance = Relational.Instance
module Value = Relational.Value
module Ic = Constraints.Ic

type t = {
  instance : Instance.t;
  schema : Relational.Schema.t;
  ics : Ic.t list;
}

type answer_method =
  [ `Repair_enumeration
  | `Residue_rewriting
  | `Key_rewriting
  | `Datalog
  | `Asp
  | `Sat
  | `Auto ]

let c_queries = Obs.Counter.make "engine.queries"

let method_label = function
  | `Repair_enumeration -> "repair_enumeration"
  | `Residue_rewriting -> "residue_rewriting"
  | `Key_rewriting -> "key_rewriting"
  | `Datalog -> "datalog"
  | `Asp -> "asp"
  | `Sat -> "sat"
  | `Auto -> "auto"

let create ~schema ~ics instance = { instance; schema; ics }

let is_consistent t = Ic.all_hold t.instance t.schema t.ics

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let s_repairs t = Repairs.S_repair.enumerate t.instance t.schema t.ics
let c_repairs t = Repairs.C_repair.enumerate t.instance t.schema t.ics
let attribute_repairs t = Repairs.Attr_repair.enumerate t.instance t.schema t.ics

let repair_check t candidate =
  Repairs.Check.is_s_repair ~original:t.instance t.schema t.ics candidate

let by_repair_enumeration t q =
  match s_repairs t with
  | [] -> []
  | repairs -> (
      (* Query every repair independently (parallel when --jobs allows),
         then intersect. *)
      let answer_sets =
        Par.map
          (fun (r : Repairs.Repair.t) ->
            Obs.Progress.tick ();
            Rows.of_list (Logic.Cq.answers q r.repaired))
          repairs
      in
      match answer_sets with
      | [] -> []
      | first :: rest ->
          Rows.elements (List.fold_left Rows.inter first rest))

let keys_of_ics ics =
  let keys =
    List.filter_map (function Ic.Key (rel, ps) -> Some (rel, ps) | _ -> None) ics
  in
  if List.length keys = List.length ics then Some keys else None

let by_key_rewriting t q =
  match keys_of_ics t.ics with
  | None -> None
  | Some keys -> Rewriting.Key_rewrite.consistent_answers q ~keys t.instance

(* Sound whenever the classifier places the query in the acyclic
   attack-graph class (FO or L tier): the verdict already checked that
   every relevant constraint is a single primary key, so the rewriting's
   key map covers everything repairs can delete.  [None] otherwise, or
   when the rewriting itself declines (e.g. NULLs in the instance). *)
let by_datalog_rewriting t q =
  match Analysis.Classify.classify t.ics q with
  | {
      Analysis.Classify.verdict =
        Analysis.Classify.Fo_rewritable | Analysis.Classify.L_datalog_rewritable;
      _;
    } -> (
      let keys = Analysis.Classify.rewrite_keys t.ics q in
      match Analysis.Attack_graph.rewriting_input q ~keys with
      | None -> None
      | Some ri ->
          Rewriting.Datalog_rewrite.consistent_answers
            ~prefix:ri.Analysis.Attack_graph.prefix ri.Analysis.Attack_graph.query
            ~keys:ri.Analysis.Attack_graph.keys
            ~order:ri.Analysis.Attack_graph.order t.instance)
  | _ -> None

(* --- static planning (method=auto) ----------------------------------- *)

type route =
  [ `Direct
  | `Key_rewriting
  | `Datalog_rewriting
  | `Sat_compilation
  | `Repair_enumeration ]

type plan = { route : route; classification : Analysis.Classify.t }

let route_label = function
  | `Direct -> "direct"
  | `Key_rewriting -> "key_rewriting"
  | `Datalog_rewriting -> "datalog_rewriting"
  | `Sat_compilation -> "sat_compilation"
  | `Repair_enumeration -> "repair_enumeration"

let denial_class t = List.for_all Ic.is_denial_class t.ics

let by_sat t q = Cavsat.Certain.consistent_answers t.instance t.schema t.ics q

let plan t q =
  let classification =
    Obs.Trace.with_span "engine.classify" (fun () ->
        Analysis.Classify.classify t.ics q)
  in
  let route =
    match (classification.Analysis.Classify.verdict, classification.witness) with
    | Analysis.Classify.Fo_rewritable, Analysis.Classify.No_constraints ->
        (* No relevant constraint can delete a tuple the query reads:
           the plain answers are already the certain answers. *)
        `Direct
    | Analysis.Classify.Fo_rewritable, _ -> `Key_rewriting
    | Analysis.Classify.L_datalog_rewritable, _ ->
        (* Acyclic attack graph outside the FO fragment: PTIME seminaive
           evaluation of the emitted Datalog program — no repairs are
           ever materialized on this branch. *)
        `Datalog_rewriting
    | Analysis.Classify.Conp_hard, _ when denial_class t ->
        (* The dichotomy's hard side: no FO rewriting exists, but the
           repairs are the maximal independent sets of the conflict
           graph, so certainty compiles to (incremental) SAT instead of
           materializing exponentially many repairs.  The denial-class
           guard keeps non-relevant INDs (repaired by insertion) off
           this route. *)
        `Sat_compilation
    | _ -> `Repair_enumeration
  in
  { route; classification }

let run_plan t q p =
  match p.route with
  | `Direct -> Logic.Cq.answers q t.instance
  | `Repair_enumeration -> by_repair_enumeration t q
  | `Sat_compilation -> by_sat t q
  | `Key_rewriting -> (
      let keys = Analysis.Classify.rewrite_keys t.ics q in
      match Rewriting.Key_rewrite.consistent_answers q ~keys t.instance with
      | Some rows -> rows
      | None ->
          (* The classifier verified the rewriting symbolically, so this
             is unreachable; enumeration keeps even a divergence sound. *)
          by_repair_enumeration t q)
  | `Datalog_rewriting -> (
      match by_datalog_rewriting t q with
      | Some rows -> rows
      | None ->
          (* Declined at runtime (NULLs in the instance, or a divergence
             from the symbolic check); enumeration stays sound. *)
          by_repair_enumeration t q)

(* The branch a non-auto method executes — EXPLAIN and the trace
   attrs report it uniformly whether or not planning was involved. *)
let method_route : answer_method -> string = function
  | `Repair_enumeration -> "repair_enumeration"
  | `Residue_rewriting -> "residue_rewriting"
  | `Key_rewriting -> "key_rewriting"
  | `Datalog -> route_label `Datalog_rewriting
  | `Asp -> "asp"
  | `Sat -> route_label `Sat_compilation
  | `Auto -> "auto"

let consistent_answers ?(method_ = `Auto) t q =
  let sp = Obs.Trace.start "engine.certain_answers" in
  Obs.Counter.incr c_queries;
  Obs.Progress.phase "engine.plan";
  if method_ <> `Auto then Obs.Progress.set_branch (method_route method_);
  if Obs.Trace.is_enabled () then begin
    Obs.Trace.attr "method" (method_label method_);
    Obs.Trace.attr "columnar"
      (if Relational.Columnar.enabled () then "on" else "off");
    if method_ <> `Auto then Obs.Trace.attr "route" (method_route method_)
  end;
  match
    match method_ with
    | `Repair_enumeration -> by_repair_enumeration t q
    | `Residue_rewriting ->
        Rewriting.Residue_rewrite.consistent_answers q t.schema t.ics t.instance
    | `Asp -> Repair_programs.Asp_cqa.consistent_answers q t.schema t.ics t.instance
    | `Sat ->
        (* Exact on every denial-class input, whatever the verdict;
           Cavsat rejects INDs with the precise message. *)
        by_sat t q
    | `Key_rewriting -> (
        match by_key_rewriting t q with
        | Some rows -> rows
        | None ->
            let c = Analysis.Classify.classify t.ics q in
            invalid_arg
              (Printf.sprintf
                 "Engine.consistent_answers: key rewriting not applicable: %s"
                 (Analysis.Classify.describe c)))
    | `Datalog -> (
        match by_datalog_rewriting t q with
        | Some rows -> rows
        | None ->
            let c = Analysis.Classify.classify t.ics q in
            invalid_arg
              (Printf.sprintf
                 "Engine.consistent_answers: datalog rewriting not \
                  applicable: %s"
                 (Analysis.Classify.describe c)))
    | `Auto ->
        let p = plan t q in
        Obs.Progress.set_branch (route_label p.route);
        if Obs.Trace.is_enabled () then begin
          Obs.Trace.attr "route" (route_label p.route);
          Obs.Trace.attr "verdict"
            (Analysis.Classify.verdict_label
               p.classification.Analysis.Classify.verdict);
          Obs.Trace.attr "witness"
            (Analysis.Classify.witness_code p.classification.witness)
        end;
        run_plan t q p
  with
  | rows ->
      if Obs.Trace.is_enabled () then
        Obs.Trace.attr_int "answers" (List.length rows);
      Obs.Trace.finish sp;
      rows
  | exception e ->
      Obs.Trace.finish sp;
      raise e

let consistent_answers_c t q =
  Obs.Trace.with_span "engine.certain_answers_c" (fun () ->
      Repair_programs.Asp_cqa.consistent_answers ~semantics:`C q t.schema t.ics
        t.instance)

let consistent_answers_ucq ?(method_ = `Repair_enumeration) t u =
  Obs.Trace.with_span "engine.certain_answers_ucq" @@ fun () ->
  match method_ with
  | `Asp -> Repair_programs.Asp_cqa.consistent_answers_ucq u t.schema t.ics t.instance
  | `Repair_enumeration -> (
      match s_repairs t with
      | [] -> []
      | first :: rest ->
          let answers (r : Repairs.Repair.t) =
            Rows.of_list (Logic.Ucq.answers u r.repaired)
          in
          Rows.elements
            (List.fold_left
               (fun acc r -> Rows.inter acc (answers r))
               (answers first) rest))

let inconsistency_degree t = Measures.Degree.repair_based t.instance t.schema t.ics

let causes t q = Causality.Cause.actual_causes t.instance t.schema q

let conflict_graph t =
  Constraints.Conflict_graph.build t.instance t.schema t.ics

let optimal_repair ~weight t =
  Repairs.Optimal.optimal_repair ~weight t.instance t.schema t.ics

let aggregate_range t ~rel agg =
  Repairs.Aggregate.range t.instance t.schema t.ics ~rel agg

let count_s_repairs t = Repairs.Count.s_repairs t.instance t.schema t.ics
let count_c_repairs t = Repairs.Count.c_repairs t.instance t.schema t.ics
