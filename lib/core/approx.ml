module Value = Relational.Value

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let under_approximation (t : Engine.t) q =
  Rewriting.Residue_rewrite.consistent_answers q t.schema t.ics t.instance

let over_approximation ?(seed = 0) ?(samples = 5) (t : Engine.t) q =
  let sets =
    List.init samples (fun i ->
        let r =
          Repairs.Operational.sample_repair ~seed:(seed + i) t.instance
            t.schema t.ics
        in
        Rows.of_list (Logic.Cq.answers q r.Repairs.Repair.repaired))
  in
  match sets with
  | [] -> []
  | first :: rest -> Rows.elements (List.fold_left Rows.inter first rest)

type bounds = {
  under : Value.t list list;
  over : Value.t list list;
  exact : bool;
}

let bounds ?seed ?samples t q =
  let under = under_approximation t q in
  let over = over_approximation ?seed ?samples t q in
  { under; over; exact = under = over }
