(** The unified consistent-query-answering engine — one façade over the
    three computational approaches the paper surveys:

    - {b repair enumeration}: materialize every S-repair and intersect the
      query answers (the model-theoretic definition, exact but worst-case
      exponential — Section 3.1);
    - {b first-order rewriting}: answer a rewritten query directly on the
      inconsistent database (Sections 2, 3.1–3.2; residue-based and
      Fuxman–Miller key rewriting);
    - {b answer-set programming}: cautious reasoning over the repair
      program's stable models (Section 3.3).

    All methods agree where they are defined; the [`Auto] method picks the
    cheapest one that is exact for the given query and constraints. *)

type t = private {
  instance : Relational.Instance.t;
  schema : Relational.Schema.t;
  ics : Constraints.Ic.t list;
}

type answer_method =
  [ `Repair_enumeration
  | `Residue_rewriting
  | `Key_rewriting
  | `Datalog
  | `Asp
  | `Sat
  | `Auto ]

val create :
  schema:Relational.Schema.t ->
  ics:Constraints.Ic.t list ->
  Relational.Instance.t ->
  t

val is_consistent : t -> bool

type route =
  [ `Direct
  | `Key_rewriting
  | `Datalog_rewriting
  | `Sat_compilation
  | `Repair_enumeration ]
(** What [`Auto] will actually execute: plain evaluation (no relevant
    constraints), the Fuxman–Miller rewriting, the attack-graph Datalog
    rewriting (the classifier's [L_datalog_rewritable] tier, run on the
    seminaive evaluator), CAvSAT-style SAT compilation (the classifier's
    [Conp_hard] tier under denial-class constraints), or repair
    enumeration. *)

type plan = { route : route; classification : Analysis.Classify.t }

val plan : t -> Logic.Cq.t -> plan
(** The static decision [`Auto] dispatches on, without running anything:
    the complexity classifier's verdict with its witness, and the method
    chosen from it.  Pure — safe to call from EXPLAIN/ANALYZE. *)

val route_label : route -> string

val consistent_answers :
  ?method_:answer_method ->
  t ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Consistent answers under S-repairs.  [`Auto] (default) consults
    {!plan}: the Fuxman–Miller rewriting when the classifier proves the
    (constraints, query) pair FO-rewritable, the Datalog rewriting on the
    [L_datalog_rewritable] tier, plain evaluation when no constraint
    touches the query's relations, SAT compilation on the classifier's
    coNP-hard tier (denial-class constraints only), and repair
    enumeration otherwise.  [`Sat] forces the SAT backend
    ({!Cavsat.Certain}) — exact on any denial-class input, raising
    [Invalid_argument] on inclusion dependencies.  [`Key_rewriting] and
    [`Datalog] raise [Invalid_argument] when not applicable, with the
    classifier's witness in the message; [`Residue_rewriting] answers
    whatever its (incomplete) rewriting produces — see
    {!Rewriting.Residue_rewrite}. *)

val consistent_answers_c : t -> Logic.Cq.t -> Relational.Value.t list list
(** Consistent answers under C-repairs (ASP with weak constraints). *)

val consistent_answers_ucq :
  ?method_:[ `Repair_enumeration | `Asp ] ->
  t ->
  Logic.Ucq.t ->
  Relational.Value.t list list
(** Consistent answers to a union of conjunctive queries (default:
    repair enumeration). *)

val s_repairs : t -> Repairs.Repair.t list
val c_repairs : t -> Repairs.Repair.t list
val attribute_repairs : t -> Repairs.Attr_repair.t list
val repair_check : t -> Relational.Instance.t -> bool
(** Is the candidate an S-repair of the engine's instance? *)

val inconsistency_degree : t -> float
(** The repair-based measure (denial-class constraints only). *)

val causes : t -> Logic.Cq.t -> Causality.Cause.t list
(** Actual causes for a Boolean query being true, ignoring the engine's
    ICs (the Section 7 setting). *)

val conflict_graph : t -> Constraints.Conflict_graph.t

val optimal_repair :
  weight:(Relational.Tid.t -> float) -> t -> Repairs.Repair.t option
(** Maximum-weight repair (Livshits–Kimelfeld–Roy); denial-class only. *)

val aggregate_range :
  t -> rel:string -> Repairs.Aggregate.agg -> Repairs.Aggregate.range
(** Range-consistent aggregate answer over all repairs. *)

val count_s_repairs : t -> int
val count_c_repairs : t -> int
