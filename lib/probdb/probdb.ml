module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic

type independent = {
  instance : Instance.t;
  prob : (Tid.t * float) list;
}

let tuple_prob t tid =
  match List.find_opt (fun (t', _) -> Tid.equal t' tid) t.prob with
  | Some (_, p) -> p
  | None -> 1.0

let uncertain_tids t =
  List.filter
    (fun tid -> tuple_prob t tid < 1.0)
    (Tid.Set.elements (Instance.tids t.instance))

let world_of t keep_uncertain =
  let drop =
    List.filter (fun tid -> not (Tid.Set.mem tid keep_uncertain)) (uncertain_tids t)
  in
  List.fold_left Instance.delete t.instance drop

let ti_exact t q =
  let uncertain = Array.of_list (uncertain_tids t) in
  let n = Array.length uncertain in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let keep = ref Tid.Set.empty and weight = ref 1.0 in
    for i = 0 to n - 1 do
      let p = tuple_prob t uncertain.(i) in
      if mask land (1 lsl i) <> 0 then begin
        keep := Tid.Set.add uncertain.(i) !keep;
        weight := !weight *. p
      end
      else weight := !weight *. (1.0 -. p)
    done;
    if !weight > 0.0 && Logic.Cq.holds q (world_of t !keep) then
      total := !total +. !weight
  done;
  !total

let ti_sampled ~seed ~samples t q =
  let rng = Random.State.make [| seed |] in
  let uncertain = uncertain_tids t in
  let hits = ref 0 in
  for _ = 1 to samples do
    let keep =
      List.fold_left
        (fun acc tid ->
          if Random.State.float rng 1.0 < tuple_prob t tid then
            Tid.Set.add tid acc
          else acc)
        Tid.Set.empty uncertain
    in
    if Logic.Cq.holds q (world_of t keep) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let ti_query_probability ?(seed = 0) ?(samples = 4000) t q =
  if List.length (uncertain_tids t) <= 20 then ti_exact t q
  else ti_sampled ~seed ~samples t q

module Rows = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let sorted_probs rows =
  Rows.bindings rows
  |> List.sort (fun (r1, p1) (r2, p2) ->
         match Float.compare p2 p1 with
         | 0 -> List.compare Value.compare r1 r2
         | c -> c)

let ti_answer_probabilities t q =
  let uncertain = Array.of_list (uncertain_tids t) in
  let n = Array.length uncertain in
  if n > 20 then
    invalid_arg "Probdb.ti_answer_probabilities: too many uncertain tuples";
  let acc = ref Rows.empty in
  for mask = 0 to (1 lsl n) - 1 do
    let keep = ref Tid.Set.empty and weight = ref 1.0 in
    for i = 0 to n - 1 do
      let p = tuple_prob t uncertain.(i) in
      if mask land (1 lsl i) <> 0 then begin
        keep := Tid.Set.add uncertain.(i) !keep;
        weight := !weight *. p
      end
      else weight := !weight *. (1.0 -. p)
    done;
    if !weight > 0.0 then
      List.iter
        (fun row ->
          acc :=
            Rows.update row
              (fun w -> Some (!weight +. Option.value ~default:0.0 w))
              !acc)
        (Logic.Cq.answers q (world_of t !keep))
  done;
  sorted_probs !acc

type dirty = { weighted : (float * Instance.t) list }

let of_key_blocks ?(weight = fun _ -> 1.0) inst schema ics =
  let all_keys =
    List.for_all (function Ic.Key _ -> true | _ -> false) ics
  in
  if not all_keys then
    invalid_arg "Probdb.of_key_blocks: primary keys only";
  let repairs = Repairs.S_repair.enumerate inst schema ics in
  (* The probability of a world multiplies, per block, the normalized
     weight of its chosen claimant.  Equivalently: product over kept
     conflicting tuples of weight/blockweight. *)
  let g = Constraints.Conflict_graph.build inst schema ics in
  let conflicting = Constraints.Conflict_graph.conflicting_tids g in
  (* Block weight per conflicting tuple: sum of weights over its block
     (tuples sharing an edge partition into key blocks for FD conflicts). *)
  let block_weight tid =
    let block =
      List.fold_left
        (fun acc e ->
          if Tid.Set.mem tid e then Tid.Set.union acc e else acc)
        (Tid.Set.singleton tid)
        g.Constraints.Conflict_graph.edges
    in
    Tid.Set.fold (fun t acc -> acc +. weight t) block 0.0
  in
  let world_weight (r : Repairs.Repair.t) =
    Tid.Set.fold
      (fun tid acc ->
        if Instance.mem_fact r.repaired (Instance.fact_of inst tid) then
          acc *. (weight tid /. block_weight tid)
        else acc)
      conflicting 1.0
  in
  let weighted = List.map (fun r -> (world_weight r, r.Repairs.Repair.repaired)) repairs in
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  {
    weighted =
      (if total > 0.0 then List.map (fun (w, i) -> (w /. total, i)) weighted
       else weighted);
  }

let answer_probabilities t q =
  let acc =
    List.fold_left
      (fun acc (w, inst) ->
        List.fold_left
          (fun acc row ->
            Rows.update row
              (fun p -> Some (w +. Option.value ~default:0.0 p))
              acc)
          acc (Logic.Cq.answers q inst))
      Rows.empty t.weighted
  in
  sorted_probs acc

let clean_answers ?(threshold = 0.5) t q =
  answer_probabilities t q
  |> List.filter_map (fun (row, p) -> if p > threshold then Some row else None)

let consistent_answers t q =
  answer_probabilities t q
  |> List.filter_map (fun (row, p) -> if p >= 1.0 -. 1e-9 then Some row else None)
