(** Probabilistic databases and probabilistic repairs (paper, Sections 6
    and 8: Andritsos–Fuxman–Miller's clean answers over dirty databases
    [2], probabilistic databases [104], probabilistic repairs [69, 83]).

    Two models:

    - {b tuple-independent}: every tuple is present independently with its
      own probability; query probability marginalizes over the 2^n worlds
      (exact for small n, Monte Carlo beyond);
    - {b block-independent-disjoint} (the dirty-database model of [2]): the
      conflicting tuples of each primary-key block are disjoint
      alternatives with weights; worlds are exactly the key repairs, with
      probability the product of the chosen alternatives' normalized
      weights.  {e Clean answers} are the answers whose probability clears
      a threshold. *)

type independent = {
  instance : Relational.Instance.t;
  prob : (Relational.Tid.t * float) list;
      (** present-probability per tuple; missing tids default to 1.0 *)
}

val ti_query_probability :
  ?seed:int -> ?samples:int -> independent -> Logic.Cq.t -> float
(** Exact world enumeration up to 20 uncertain tuples, Monte Carlo with
    [samples] (default 4000) beyond. *)

val ti_answer_probabilities :
  independent -> Logic.Cq.t -> (Relational.Value.t list * float) list
(** Exact; raises [Invalid_argument] beyond 20 uncertain tuples. *)

type dirty = {
  weighted : (float * Relational.Instance.t) list;
      (** the possible worlds with their probabilities (sum to 1) *)
}

val of_key_blocks :
  ?weight:(Relational.Tid.t -> float) ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  dirty
(** Build the block-disjoint world set from the S-repairs of a set of
    primary keys (all constraints must be keys, one per relation; raises
    [Invalid_argument] otherwise).  [weight] (default: uniform) weighs the
    alternatives inside each block. *)

val answer_probabilities :
  dirty -> Logic.Cq.t -> (Relational.Value.t list * float) list
(** Most probable first. *)

val clean_answers :
  ?threshold:float -> dirty -> Logic.Cq.t -> Relational.Value.t list list
(** The answers with probability strictly above [threshold] (default
    0.5). *)

val consistent_answers : dirty -> Logic.Cq.t -> Relational.Value.t list list
(** Probability-1 answers — the certain answers of CQA. *)
