(** Cost-based heuristic cleaning by value modification (paper, Section 6;
    Bohannon et al. [31]'s approach in spirit).

    Instead of exploring all repairs, produce {e one} clean instance by
    greedily resolving FD/CFD violations: for each violating pair, the
    right-hand-side cell of the less-supported tuple is overwritten with
    the majority value among its key group (falling back to NULL when there
    is no majority — the attribute-level null repair of Section 4.3).
    Returns the cleaned instance with the change log and its total cost
    (number of modified cells). *)

type change = {
  cell : Relational.Tid.Cell.t;
  old_value : Relational.Value.t;
  new_value : Relational.Value.t;
}

type result = {
  cleaned : Relational.Instance.t;
  changes : change list;
  cost : int;
}

val clean :
  ?max_rounds:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  result
(** Raises [Invalid_argument] on constraints that are not FDs, keys or
    CFDs.  [max_rounds] (default 10) bounds the resolve-recheck loop. *)
