(** Data privacy through secrecy views and null-based virtual updates
    (paper, Section 4.3; Bertossi–Li [24]).

    A secrecy view is a conjunctive query whose contents must be hidden.
    The database is {e virtually} updated — attribute values minimally
    changed to NULL — so the view becomes empty (NULL cannot satisfy the
    view's joins or selections), which is exactly an attribute-level repair
    wrt. the denial constraint "the view is empty".  User queries are then
    answered against the class of secured instances: the certain answers
    reveal nothing about the protected view. *)

type t = {
  secured : Relational.Instance.t list;
      (** The minimal virtually-updated instances. *)
  changes : Relational.Tid.Cell.Set.t list;
}

val hide :
  Relational.Instance.t ->
  Relational.Schema.t ->
  views:Logic.Cq.t list ->
  t
(** Raises [Invalid_argument] if some view cannot be emptied by NULL
    updates (e.g. a view with no join, comparison or constant). *)

val secret_answers :
  t -> Logic.Cq.t -> Relational.Value.t list list
(** Certain answers over the secured instances. *)

val leaks :
  t -> views:Logic.Cq.t list -> bool
(** Does any secured instance still expose a view tuple?  Always [false]
    for the instances produced by [hide]; exposed for testing. *)
