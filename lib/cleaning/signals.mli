(** Probabilistic-signal data cleaning, in the spirit of HoloClean (paper,
    Section 6: "holistic data repairs with probabilistic inference" [98],
    and the probabilistic cleaning direction of [52]).

    For every cell implicated in an FD/key/CFD violation, candidate
    corrections are scored by combining independent signals:

    - {b block majority}: how often the candidate appears among the tuples
      agreeing on the constraint's left-hand side;
    - {b co-occurrence}: how often the candidate co-occurs with the tuple's
      other attribute values across the relation.

    Each suggestion carries a confidence in (0, 1]; [apply] enforces the
    suggestions above a threshold and re-checks, so low-confidence cells
    are left for a human (the HoloClean workflow). *)

type suggestion = {
  cell : Relational.Tid.Cell.t;
  current : Relational.Value.t;
  proposed : Relational.Value.t;
  confidence : float;
}

val suggest :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  suggestion list
(** Suggestions for all current violations, highest confidence first.
    Raises [Invalid_argument] on constraints other than keys, FDs and
    CFDs. *)

type outcome = {
  cleaned : Relational.Instance.t;
  applied : suggestion list;
  skipped : suggestion list;  (** below the confidence threshold *)
  consistent : bool;  (** all violations resolved? *)
}

val apply :
  ?min_confidence:float ->
  ?max_rounds:int ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  outcome
(** Iteratively apply suggestions with confidence at least
    [min_confidence] (default 0.6); stops when consistent, when only
    low-confidence suggestions remain, or after [max_rounds] (default
    10). *)
