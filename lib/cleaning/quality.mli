(** Data quality through repairs (paper, Section 6).

    Quality concerns are expressed as constraints — typically CFDs — and the
    quality data is what persists across the repairs: {e quality answers}
    are the consistent answers wrt. those constraints.  Beyond certain
    (all-repairs) answers, the module offers the relaxations the paper
    mentions for data cleaning: majority answers (true in more than half of
    the repairs) and answer frequencies, a poor man's probabilistic
    semantics with the uniform distribution over repairs. *)

val quality_answers :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Certain answers over all S-repairs of the quality constraints. *)

val answer_frequencies :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  (Relational.Value.t list * float) list
(** Each possible answer with the fraction of repairs supporting it,
    most-supported first. *)

val majority_answers :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Answers supported by strictly more than half of the repairs. *)
