module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic

type t = {
  secured : Instance.t list;
  changes : Tid.Cell.Set.t list;
}

let view_denial (q : Logic.Cq.t) =
  Ic.denial ~name:("secrecy_" ^ q.Logic.Cq.name) ~comps:q.Logic.Cq.comps
    q.Logic.Cq.body

let hide inst schema ~views =
  let ics = List.map view_denial views in
  let repairs = Repairs.Attr_repair.enumerate inst schema ics in
  if repairs = [] && not (Constraints.Violation.is_consistent inst schema ics)
  then
    invalid_arg
      "Privacy.hide: some secrecy view cannot be emptied by NULL updates";
  match repairs with
  | [] -> { secured = [ inst ]; changes = [ Tid.Cell.Set.empty ] }
  | _ ->
      {
        secured = List.map (fun (r : Repairs.Attr_repair.t) -> r.repaired) repairs;
        changes = List.map (fun (r : Repairs.Attr_repair.t) -> r.changes) repairs;
      }

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let secret_answers t q =
  match t.secured with
  | [] -> []
  | first :: rest ->
      let answers inst = Rows.of_list (Logic.Cq.answers q inst) in
      Rows.elements
        (List.fold_left
           (fun acc inst -> Rows.inter acc (answers inst))
           (answers first) rest)

let leaks t ~views =
  List.exists
    (fun inst -> List.exists (fun v -> Logic.Cq.holds v inst) views)
    t.secured
