module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic

type suggestion = {
  cell : Tid.Cell.t;
  current : Value.t;
  proposed : Value.t;
  confidence : float;
}

let check_supported ics =
  List.iter
    (fun ic ->
      match ic with
      | Ic.Fd _ | Ic.Key _ | Ic.Cfd _ -> ()
      | Ic.Denial _ | Ic.Ind _ ->
          invalid_arg
            (Printf.sprintf "Signals: unsupported constraint %s" (Ic.name ic)))
    ics

(* The FDs induced by the constraints: (rel, lhs positions, rhs position). *)
let fd_components schema ics =
  List.concat_map
    (fun ic ->
      match ic with
      | Ic.Fd f -> List.map (fun b -> (f.Ic.rel, f.Ic.lhs, b)) f.Ic.rhs
      | Ic.Key (rel, ps) ->
          let f = Ic.key_to_fd schema rel ps in
          List.map (fun b -> (rel, f.Ic.lhs, b)) f.Ic.rhs
      | Ic.Cfd c -> List.map (fun b -> (c.Ic.rel, c.Ic.lhs, b)) c.Ic.rhs
      | Ic.Denial _ | Ic.Ind _ -> [])
    ics

let agree_on lhs (row1 : Value.t array) (row2 : Value.t array) =
  List.for_all
    (fun p ->
      (not (Value.is_null row1.(p)))
      && (not (Value.is_null row2.(p)))
      && Value.equal row1.(p) row2.(p))
    lhs

(* Votes for candidate value v at position [pos] of [row]: block majority
   plus co-occurrence with the row's other attributes. *)
let votes inst rel ~pos ~block (row : Value.t array) v =
  let block_votes =
    List.fold_left
      (fun acc (_, r) -> if Value.equal r.(pos) v then acc +. 1.0 else acc)
      0.0 block
  in
  let cooc =
    List.fold_left
      (fun acc (r : Value.t array) ->
        if Value.equal r.(pos) v then
          let shared = ref 0 and total = ref 0 in
          Array.iteri
            (fun i u ->
              if i <> pos then begin
                incr total;
                if Value.equal u row.(i) then incr shared
              end)
            r;
          acc +. (float_of_int !shared /. float_of_int (max 1 !total))
        else acc)
      0.0
      (Instance.rows inst ~rel)
  in
  block_votes +. (0.5 *. cooc)

let suggest inst schema ics =
  check_supported ics;
  let components = fd_components schema ics in
  let suggestions =
    List.concat_map
      (fun (rel, lhs, pos) ->
        let tuples = Instance.tuples inst ~rel in
        List.concat_map
          (fun (tid, row) ->
            let block =
              List.filter (fun (_, r) -> agree_on lhs row r) tuples
            in
            let distinct_values =
              List.sort_uniq Value.compare (List.map (fun (_, r) -> r.(pos)) block)
            in
            if List.length distinct_values <= 1 then []
            else begin
              (* The block disagrees: score all candidates. *)
              let scored =
                List.map
                  (fun v -> (v, votes inst rel ~pos ~block row v))
                  distinct_values
              in
              let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 scored in
              let best, best_score =
                List.fold_left
                  (fun (bv, bs) (v, s) -> if s > bs then (v, s) else (bv, bs))
                  (Value.Null, neg_infinity) scored
              in
              if Value.equal row.(pos) best then []
              else
                [
                  {
                    cell = Tid.Cell.make tid (pos + 1);
                    current = row.(pos);
                    proposed = best;
                    confidence = (if total > 0.0 then best_score /. total else 0.0);
                  };
                ]
            end)
          tuples)
      components
  in
  List.sort
    (fun a b ->
      match Float.compare b.confidence a.confidence with
      | 0 -> Tid.Cell.compare a.cell b.cell
      | c -> c)
    suggestions

type outcome = {
  cleaned : Instance.t;
  applied : suggestion list;
  skipped : suggestion list;
  consistent : bool;
}

let apply ?(min_confidence = 0.6) ?(max_rounds = 10) inst schema ics =
  let rec go inst applied round =
    let suggestions = suggest inst schema ics in
    let good, low =
      List.partition (fun s -> s.confidence >= min_confidence) suggestions
    in
    match good with
    | [] ->
        {
          cleaned = inst;
          applied = List.rev applied;
          skipped = low;
          consistent = Ic.all_hold inst schema ics;
        }
    | s :: _ when round < max_rounds ->
        (* Apply one highest-confidence suggestion, then re-derive: each fix
           changes the evidence for the rest. *)
        let inst = Instance.update_cell inst s.cell s.proposed in
        go inst (s :: applied) (round + 1)
    | _ ->
        {
          cleaned = inst;
          applied = List.rev applied;
          skipped = suggestions;
          consistent = Ic.all_hold inst schema ics;
        }
  in
  go inst [] 0
