module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic
module Violation = Constraints.Violation

type change = { cell : Tid.Cell.t; old_value : Value.t; new_value : Value.t }

type result = { cleaned : Instance.t; changes : change list; cost : int }

let check_supported ics =
  List.iter
    (fun ic ->
      match ic with
      | Ic.Fd _ | Ic.Key _ | Ic.Cfd _ -> ()
      | Ic.Denial _ | Ic.Ind _ ->
          invalid_arg
            (Printf.sprintf "Cost_clean.clean: unsupported constraint %s"
               (Ic.name ic)))
    ics

(* The determined (right-hand side) positions of the constraint owning a
   violation witness, recovered from its name tag "...#<pos>...". *)
let rhs_of_name name =
  match String.index_opt name '#' with
  | None -> None
  | Some i ->
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      let digits = String.to_seq rest |> Seq.take_while (fun c -> c >= '0' && c <= '9') in
      let s = String.of_seq digits in
      if s = "" then None else Some (int_of_string s)

(* Majority value at one position among the tuples agreeing with [tid] on
   the witness's other tuple — approximated as: among all tuples of the
   relation sharing the violated group we just take the two tuples of the
   witness and prefer the value with more total occurrences at that
   position in the relation. *)
let support_count inst rel pos v =
  List.fold_left
    (fun acc row -> if Value.equal row.(pos) v then acc + 1 else acc)
    0
    (Instance.rows inst ~rel)

let resolve inst (w : Violation.witness) pos =
  match Tid.Set.elements w.tids with
  | [ t1; t2 ] ->
      let f1 = Instance.fact_of inst t1 and f2 = Instance.fact_of inst t2 in
      let v1 = f1.Relational.Fact.row.(pos) and v2 = f2.Relational.Fact.row.(pos) in
      let s1 = support_count inst f1.Relational.Fact.rel pos v1 in
      let s2 = support_count inst f2.Relational.Fact.rel pos v2 in
      (* Overwrite the less-supported side with the better-supported
         value; ties go to the first tuple's value. *)
      let loser, winner_value, old_value =
        if s1 >= s2 then (t2, v1, v2) else (t1, v2, v1)
      in
      Some (Tid.Cell.make loser (pos + 1), old_value, winner_value)
  | [ t ] ->
      (* Single-tuple CFD violation: the pattern forces a constant; lacking
         better evidence, blank the offending cell. *)
      let f = Instance.fact_of inst t in
      Some (Tid.Cell.make t (pos + 1), f.Relational.Fact.row.(pos), Value.Null)
  | _ -> None

let clean ?(max_rounds = 10) inst schema ics =
  check_supported ics;
  let rec loop inst changes round =
    if round >= max_rounds then (inst, changes)
    else
      let witnesses = Violation.all inst schema ics in
      match witnesses with
      | [] -> (inst, changes)
      | w :: _ -> (
          match rhs_of_name w.ic_name with
          | None -> (inst, changes)
          | Some pos -> (
              match resolve inst w pos with
              | None -> (inst, changes)
              | Some (cell, old_value, new_value) ->
                  let inst = Instance.update_cell inst cell new_value in
                  loop inst
                    ({ cell; old_value; new_value } :: changes)
                    (round + 1)))
  in
  let cleaned, changes = loop inst [] 0 in
  { cleaned; changes = List.rev changes; cost = List.length changes }
