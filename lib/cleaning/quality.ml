module Value = Relational.Value

module Rows = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let support inst schema ics q =
  let repairs = Repairs.S_repair.enumerate inst schema ics in
  let n = List.length repairs in
  let counts =
    List.fold_left
      (fun acc (r : Repairs.Repair.t) ->
        List.fold_left
          (fun acc row ->
            Rows.update row
              (fun c -> Some (1 + Option.value ~default:0 c))
              acc)
          acc
          (Logic.Cq.answers q r.repaired))
      Rows.empty repairs
  in
  (n, counts)

let quality_answers inst schema ics q =
  let n, counts = support inst schema ics q in
  Rows.fold (fun row c acc -> if c = n then row :: acc else acc) counts []
  |> List.rev

let answer_frequencies inst schema ics q =
  let n, counts = support inst schema ics q in
  if n = 0 then []
  else
    Rows.fold
      (fun row c acc -> (row, float_of_int c /. float_of_int n) :: acc)
      counts []
    |> List.sort (fun (r1, f1) (r2, f2) ->
           match Float.compare f2 f1 with
           | 0 -> List.compare Value.compare r1 r2
           | c -> c)

let majority_answers inst schema ics q =
  let n, counts = support inst schema ics q in
  Rows.fold (fun row c acc -> if 2 * c > n then row :: acc else acc) counts []
  |> List.rev
