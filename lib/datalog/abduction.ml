module Fact = Relational.Fact

let check_positive (program : Program.t) =
  List.iter
    (fun (r : Rule.t) ->
      if r.body_neg <> [] then
        invalid_arg "Abduction: positive Datalog only (derivability must be monotone)")
    program.rules

let explains program ~given ~hypothesis ~goal =
  Fact.Set.mem goal (Eval.run program (given @ hypothesis))

let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest

let explanations ?max_size program ~abducibles ~given ~goal =
  check_positive program;
  let bound =
    match max_size with Some k -> k | None -> List.length abducibles
  in
  let found = ref [] in
  let is_superset subset =
    List.exists
      (fun smaller -> List.for_all (fun f -> List.mem f subset) smaller)
      !found
  in
  for k = 0 to bound do
    List.iter
      (fun subset ->
        if
          (not (is_superset subset))
          && explains program ~given ~hypothesis:subset ~goal
        then found := subset :: !found)
      (subsets_of_size k abducibles)
  done;
  List.rev !found

let necessary_abducibles ?max_size program ~abducibles ~given ~goal =
  match explanations ?max_size program ~abducibles ~given ~goal with
  | [] -> []
  | first :: rest ->
      List.filter
        (fun f -> List.for_all (fun e -> List.mem f e) rest)
        first
