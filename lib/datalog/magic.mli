(** Magic-set rewriting for positive Datalog queries.

    The paper's ConsEx system [43] uses magic sets to focus repair-program
    evaluation on the part of the database relevant to the query; this
    module provides the classical transformation for positive (negation-
    free) programs with the left-to-right sideways information passing
    strategy.

    Given a query atom with constants in some positions, the transformed
    program derives the same answers for the query predicate while
    restricting bottom-up evaluation to facts reachable from the query's
    bindings. *)

exception Unsupported of string
(** Raised on programs with negation (the classical transformation is for
    positive Datalog) or on queries over EDB predicates. *)

val optimize : Program.t -> query:Logic.Atom.t -> Program.t * Logic.Atom.t
(** [optimize program ~query] returns the magic program together with the
    adorned query atom to evaluate against it.  Constants in [query] become
    bound argument positions. *)

val answers :
  Program.t ->
  Relational.Fact.t list ->
  query:Logic.Atom.t ->
  Relational.Value.t list list
(** Evaluate the query through the magic transformation: the rows of the
    adorned query predicate matching the query's constants, sorted.  Same
    results as evaluating the original program, usually deriving far fewer
    facts. *)

val derived_count :
  Program.t -> Relational.Fact.t list -> query:Logic.Atom.t -> int * int
(** (facts derived by the plain program, facts derived by the magic
    program) — the focusing effect, for benchmarks. *)
