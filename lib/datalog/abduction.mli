(** Abduction for Datalog queries (paper, Section 7: cause computation for
    Datalog queries is NP-complete "via a connection between causality and
    Datalog abduction" [27]).

    Given a positive program, known facts, and a set of {e abducible}
    candidate facts, an explanation of an observation is a minimal set of
    abducibles that, added to the known facts, makes the program derive the
    observation. *)

val explains :
  Program.t ->
  given:Relational.Fact.t list ->
  hypothesis:Relational.Fact.t list ->
  goal:Relational.Fact.t ->
  bool

val explanations :
  ?max_size:int ->
  Program.t ->
  abducibles:Relational.Fact.t list ->
  given:Relational.Fact.t list ->
  goal:Relational.Fact.t ->
  Relational.Fact.t list list
(** All inclusion-minimal explanations of size at most [max_size] (default:
    no bound), smallest first.  Raises [Invalid_argument] on programs with
    negation (abduction here is for positive Datalog, where derivability is
    monotone). *)

val necessary_abducibles :
  ?max_size:int ->
  Program.t ->
  abducibles:Relational.Fact.t list ->
  given:Relational.Fact.t list ->
  goal:Relational.Fact.t ->
  Relational.Fact.t list
(** Abducibles occurring in every explanation. *)
