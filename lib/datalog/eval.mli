(** Bottom-up Datalog evaluation: semi-naive within each stratum, strata in
    stratification order (negation is evaluated against the completed lower
    strata). *)

exception Unstratifiable

val run : Program.t -> Relational.Fact.t list -> Relational.Fact.Set.t
(** All facts: the EDB plus everything derivable.  Raises
    [Unstratifiable]. *)

val run_instance :
  Program.t -> Relational.Instance.t -> Relational.Fact.Set.t
(** [run] on the instance's facts. *)

val query :
  Program.t ->
  Relational.Fact.t list ->
  string ->
  Relational.Value.t list list
(** The derived rows of one predicate, sorted. *)
