module Atom = Logic.Atom
module Cmp = Logic.Cmp

type t = {
  head : Atom.t;
  body_pos : Atom.t list;
  body_neg : Atom.t list;
  comps : Cmp.t list;
}

let make ?(neg = []) ?(comps = []) head body_pos =
  let rule = { head; body_pos; body_neg = neg; comps } in
  let positive_vars = List.concat_map Atom.vars body_pos in
  let needed =
    Atom.vars head
    @ List.concat_map Atom.vars neg
    @ List.concat_map Cmp.vars comps
  in
  List.iter
    (fun v ->
      if not (List.mem v positive_vars) then
        invalid_arg
          (Printf.sprintf
             "Rule.make: unsafe rule, variable %s not bound by a positive atom"
             v))
    needed;
  rule

let is_fact r = r.body_pos = [] && r.body_neg = [] && r.comps = []

let predicates r =
  r.head.Atom.rel
  :: (List.map (fun (a : Atom.t) -> a.rel) r.body_pos
     @ List.map (fun (a : Atom.t) -> a.rel) r.body_neg)

let pp ppf r =
  let pp_atoms =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Atom.pp
  in
  Format.fprintf ppf "%a" Atom.pp r.head;
  if not (is_fact r) then begin
    Format.fprintf ppf " :- %a" pp_atoms r.body_pos;
    List.iter (fun a -> Format.fprintf ppf ", not %a" Atom.pp a) r.body_neg;
    List.iter (fun c -> Format.fprintf ppf ", %a" Cmp.pp c) r.comps
  end
