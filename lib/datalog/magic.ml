module Atom = Logic.Atom
module Term = Logic.Term
module Fact = Relational.Fact
module Value = Relational.Value

exception Unsupported of string

(* Rules emitted by the magic-set transformation (seed included) —
   together with the seminaive counters this makes the Datalog tier's
   work visible in STATS/WORKLOAD. *)
let c_magic_rules = Obs.Counter.make "datalog.magic.rules"

module Sset = Set.Make (String)

let idb_predicates (program : Program.t) = Sset.of_list (Program.idb program)

let check_positive (program : Program.t) =
  List.iter
    (fun (r : Rule.t) ->
      if r.body_neg <> [] then
        raise (Unsupported "magic sets: program uses negation"))
    program.rules

let adornment_of bound (a : Atom.t) =
  String.concat ""
    (List.map
       (function
         | Term.Const _ -> "b"
         | Term.Var v -> if Sset.mem v bound then "b" else "f")
       a.args)

let adorned_name p ad = Printf.sprintf "%s__%s" p ad
let magic_name p ad = Printf.sprintf "m__%s__%s" p ad

let bound_args ad (a : Atom.t) =
  List.filteri (fun i _ -> ad.[i] = 'b') a.args

let add_vars set (a : Atom.t) =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Sset.add v acc | Term.Const _ -> acc)
    set a.args

(* Transform all rules defining [p] under adornment [ad]; returns new rules
   and the adorned IDB subgoal predicates discovered. *)
let transform_rules program idb (p, ad) =
  let rules = List.filter (fun (r : Rule.t) -> String.equal r.head.Atom.rel p) (program : Program.t).rules in
  List.fold_left
    (fun (acc_rules, acc_preds) (r : Rule.t) ->
      let head_bound =
        List.fold_left
          (fun set (i, t) ->
            match t with
            | Term.Var v when ad.[i] = 'b' -> Sset.add v set
            | Term.Var _ | Term.Const _ -> set)
          Sset.empty
          (List.mapi (fun i t -> (i, t)) r.head.Atom.args)
      in
      let magic_head_atom = Atom.make (magic_name p ad) (bound_args ad r.head) in
      (* Walk subgoals left-to-right with the sideways information passing
         of "everything earlier is bound". *)
      let _, rev_subgoals, magic_rules, preds =
        List.fold_left
          (fun (bound, subgoals, magics, preds) (g : Atom.t) ->
            if Sset.mem g.rel idb then begin
              let g_ad = adornment_of bound g in
              let magic_rule =
                Rule.make
                  (Atom.make (magic_name g.rel g_ad) (bound_args g_ad g))
                  (magic_head_atom :: List.rev subgoals)
              in
              let g' = Atom.make (adorned_name g.rel g_ad) g.args in
              ( add_vars bound g,
                g' :: subgoals,
                magic_rule :: magics,
                (g.rel, g_ad) :: preds )
            end
            else
              (add_vars bound g, g :: subgoals, magics, preds))
          (head_bound, [], [], [])
          r.body_pos
      in
      let modified =
        Rule.make ~comps:r.comps
          (Atom.make (adorned_name p ad) r.head.Atom.args)
          (magic_head_atom :: List.rev rev_subgoals)
      in
      (modified :: magic_rules @ acc_rules, preds @ acc_preds))
    ([], []) rules

let optimize program ~query =
  check_positive program;
  let idb = idb_predicates program in
  if not (Sset.mem query.Atom.rel idb) then
    raise
      (Unsupported
         (Printf.sprintf "magic sets: %s is not an IDB predicate" query.Atom.rel));
  let q_ad = adornment_of Sset.empty query in
  let seen = Hashtbl.create 16 in
  let rules = ref [] in
  let rec process (p, ad) =
    if not (Hashtbl.mem seen (p, ad)) then begin
      Hashtbl.add seen (p, ad) ();
      let new_rules, preds = transform_rules program idb (p, ad) in
      rules := new_rules @ !rules;
      List.iter process preds
    end
  in
  process (query.Atom.rel, q_ad);
  (* Seed: the query's bound constants. *)
  let seed =
    Rule.make
      (Atom.make (magic_name query.Atom.rel q_ad) (bound_args q_ad query))
      []
  in
  Obs.Counter.add c_magic_rules (1 + List.length !rules);
  ( Program.make (seed :: List.rev !rules),
    Atom.make (adorned_name query.Atom.rel q_ad) query.Atom.args )

let matches_query (query : Atom.t) row =
  List.for_all2
    (fun t v ->
      match t with
      | Term.Const c -> Value.equal c v
      | Term.Var _ -> true)
    query.args (Array.to_list row)

let answers program edb ~query =
  let magic_program, adorned_query = optimize program ~query in
  let facts = Eval.run magic_program edb in
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      if
        String.equal f.rel adorned_query.Atom.rel
        && matches_query query f.row
      then Array.to_list f.row :: acc
      else acc)
    facts []
  |> List.sort (List.compare Value.compare)

let count_derived program edb facts =
  let edb_set = Fact.Set.of_list edb in
  ignore program;
  Fact.Set.cardinal (Fact.Set.diff facts edb_set)

let derived_count program edb ~query =
  let plain = Eval.run program edb in
  let magic_program, _ = optimize program ~query in
  let magic = Eval.run magic_program edb in
  (count_derived program edb plain, count_derived program edb magic)
