(** Datalog rules with negation and comparisons:
    [head :- body_pos, not body_neg, comps]. *)

type t = {
  head : Logic.Atom.t;
  body_pos : Logic.Atom.t list;
  body_neg : Logic.Atom.t list;
  comps : Logic.Cmp.t list;
}

val make :
  ?neg:Logic.Atom.t list ->
  ?comps:Logic.Cmp.t list ->
  Logic.Atom.t ->
  Logic.Atom.t list ->
  t
(** [make head body].  Raises [Invalid_argument] if the rule is unsafe: every
    variable of the head, of negated atoms and of comparisons must occur in
    a positive body atom. *)

val is_fact : t -> bool
val predicates : t -> string list
(** All predicate names, head first. *)

val pp : Format.formatter -> t -> unit
