type t = { rules : Rule.t list }

let make rules = { rules }

let idb t =
  List.map (fun (r : Rule.t) -> r.head.Logic.Atom.rel) t.rules
  |> List.sort_uniq String.compare

(* Stratum numbers via the standard constraint relaxation: a positive
   dependency demands st(head) >= st(body), a negative one
   st(head) >= st(body) + 1.  If numbers keep growing past the number of
   predicates there is a negative cycle. *)
let stratify t =
  let preds = idb t in
  let n = List.length preds in
  let stratum = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace stratum p 0) preds;
  let get p = Option.value ~default:0 (Hashtbl.find_opt stratum p) in
  let changed = ref true and rounds = ref 0 and ok = ref true in
  while !changed && !ok do
    changed := false;
    incr rounds;
    if !rounds > n + 1 then ok := false
    else
      List.iter
        (fun (r : Rule.t) ->
          let h = r.head.Logic.Atom.rel in
          let bump target =
            if get h < target then begin
              Hashtbl.replace stratum h target;
              changed := true
            end
          in
          List.iter
            (fun (a : Logic.Atom.t) ->
              if Hashtbl.mem stratum a.rel then bump (get a.rel))
            r.body_pos;
          List.iter
            (fun (a : Logic.Atom.t) ->
              if Hashtbl.mem stratum a.rel then bump (get a.rel + 1))
            r.body_neg)
        t.rules
  done;
  if not !ok then None
  else begin
    let max_stratum = List.fold_left (fun m p -> max m (get p)) 0 preds in
    let strata =
      List.init (max_stratum + 1) (fun i ->
          List.filter (fun (r : Rule.t) -> get r.head.Logic.Atom.rel = i) t.rules)
    in
    Some (List.filter (fun s -> s <> []) strata)
  end

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut Rule.pp ppf t.rules
