(** Datalog programs: stratification and dependency analysis. *)

type t = { rules : Rule.t list }

val make : Rule.t list -> t

val idb : t -> string list
(** Predicates defined by some rule head. *)

val stratify : t -> Rule.t list list option
(** Strata in evaluation order, or [None] if the program is not stratifiable
    (negation through a cycle). *)

val pp : Format.formatter -> t -> unit
