module Fact = Relational.Fact
module Value = Relational.Value
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp

exception Unstratifiable

(* Seminaive-loop visibility: one [rounds] tick per delta iteration (the
   first naive pass included), and [facts] counts newly derived facts. *)
let c_rounds = Obs.Counter.make "datalog.seminaive.rounds"
let c_facts = Obs.Counter.make "datalog.seminaive.facts"

(* Datalog treats every value — including NULL — as a plain constant:
   matching and comparisons are structural, unlike SQL-side query
   evaluation.  (Repair programs that need SQL null behaviour encode it with
   explicit conditions, as in the paper.) *)

module Env = Map.Make (String)

let term_value env = function
  | Term.Const v -> Some v
  | Term.Var x -> Env.find_opt x env

let match_row env (a : Atom.t) (row : Value.t array) =
  if List.length a.args <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c -> if Value.equal c v then go env (i + 1) rest else None
          | Term.Var x -> (
              match Env.find_opt x env with
              | Some bound ->
                  if Value.equal bound v then go env (i + 1) rest else None
              | None -> go (Env.add x v env) (i + 1) rest))
    in
    go env 0 a.args

let eval_cmp env (c : Cmp.t) =
  match term_value env c.left, term_value env c.right with
  | Some l, Some r -> (
      let cmp = Value.compare l r in
      match c.op with
      | Cmp.Eq -> cmp = 0
      | Cmp.Neq -> cmp <> 0
      | Cmp.Lt -> cmp < 0
      | Cmp.Le -> cmp <= 0
      | Cmp.Gt -> cmp > 0
      | Cmp.Ge -> cmp >= 0)
  | _ ->
      invalid_arg
        (Format.asprintf "Datalog.Eval: unbound variable in %a" Cmp.pp c)

type store = {
  mutable all : Fact.Set.t;
  by_rel : (string, Value.t array list ref) Hashtbl.t;
}

let store_create () = { all = Fact.Set.empty; by_rel = Hashtbl.create 32 }

let store_add st (f : Fact.t) =
  if Fact.Set.mem f st.all then false
  else begin
    st.all <- Fact.Set.add f st.all;
    (match Hashtbl.find_opt st.by_rel f.rel with
    | Some rows -> rows := f.row :: !rows
    | None -> Hashtbl.add st.by_rel f.rel (ref [ f.row ]));
    true
  end

let rows_of st rel =
  match Hashtbl.find_opt st.by_rel rel with Some r -> !r | None -> []

let ground_head env (h : Atom.t) =
  Fact.make h.rel
    (List.map
       (fun t ->
         match term_value env t with
         | Some v -> v
         | None -> assert false (* safety guarantees binding *))
       h.args)

(* All derivations of one rule where the atom at [delta_pos] matches a delta
   row and the others match the full store. *)
let derive st delta (r : Rule.t) ~delta_pos emit =
  let rec go env i atoms =
    match atoms with
    | [] ->
        let neg_ok =
          List.for_all
            (fun (a : Atom.t) ->
              not
                (List.exists
                   (fun row -> match_row env a row <> None)
                   (rows_of st a.rel)))
            r.body_neg
        in
        if neg_ok && List.for_all (eval_cmp env) r.comps then
          emit (ground_head env r.head)
    | a :: rest ->
        let source = if i = delta_pos then rows_of delta a.Atom.rel else rows_of st a.Atom.rel in
        List.iter
          (fun row ->
            match match_row env a row with
            | Some env' -> go env' (i + 1) rest
            | None -> ())
          source
  in
  go Env.empty 0 r.body_pos

let run program edb =
  match Program.stratify program with
  | None -> raise Unstratifiable
  | Some strata ->
      let st = store_create () in
      List.iter (fun f -> ignore (store_add st f)) edb;
      List.iter
        (fun stratum ->
          (* Facts of the stratum seed the first delta. *)
          let delta = ref (store_create ()) in
          List.iter
            (fun (r : Rule.t) ->
              if Rule.is_fact r then begin
                let f = Logic.Atom.to_fact r.head in
                if store_add st f then ignore (store_add !delta f)
              end)
            stratum;
          let first = ref true in
          let continue = ref true in
          while !continue do
            Obs.Counter.incr c_rounds;
            let next = store_create () in
            let emit f =
              if store_add st f then begin
                Obs.Counter.incr c_facts;
                ignore (store_add next f)
              end
            in
            List.iter
              (fun (r : Rule.t) ->
                if not (Rule.is_fact r) then
                  if !first then
                    (* First round: full naive pass. *)
                    derive st st r ~delta_pos:(-1) emit
                  else
                    List.iteri
                      (fun i _ -> derive st !delta r ~delta_pos:i emit)
                      r.body_pos)
              stratum;
            first := false;
            if Fact.Set.is_empty next.all then continue := false
            else delta := next
          done)
        strata;
      st.all

let run_instance program inst = run program (Relational.Instance.fact_list inst)

let query program edb pred =
  let facts = run program edb in
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      if String.equal f.rel pred then Array.to_list f.row :: acc else acc)
    facts []
  |> List.sort (List.compare Value.compare)
