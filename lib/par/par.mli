(** Chunked parallel map over OCaml 5 domains.

    [map f xs] behaves exactly like [List.map f xs] — same results, same
    order, exceptions re-raised — but may evaluate [f] on contiguous chunks
    of [xs] on a persistent pool of worker domains (spawned lazily on first
    use, since [Domain.spawn] costs ~1 ms — far more than a typical chunk).
    The degree of parallelism comes from [?jobs], falling back to the
    process-wide default set by {!set_default_jobs} (the [--jobs] flag of
    the executables).

    Work runs sequentially when jobs ≤ 1, when the list is shorter than
    {!parallel_cutoff} (per-task pool hand-off overhead dwarfs tiny
    workloads), or when tracing is enabled ([Obs.Trace]'s span sink is a
    single mutable tree that is not domain-safe; counters are).  Callers
    must only pass an [f] that is safe to run concurrently with itself —
    everything in the repair/ASP hot paths is, because instances are
    persistent and solver state is per-call. *)

val set_default_jobs : int -> unit
(** Set the process-wide default parallelism (clamped to ≥ 1; default 1). *)

val default_jobs : unit -> int

val set_parallel_cutoff : int -> unit
(** Minimum list length for {!map} to engage the domain pool (clamped to
    ≥ 2; default 4).  Shorter lists run as plain [List.map] — queueing a
    handful of tasks costs more in lock hand-offs and wake-ups than the
    work itself, a measured ~4x slowdown on two-element repair-enumeration
    workloads. *)

val parallel_cutoff : unit -> int

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  Increments the [par.tasks] counter once
    per chunk handed to the pool (including the chunk the calling domain
    works on itself).  If [f] raises in any chunk, the first (leftmost
    chunk) exception is re-raised with its backtrace after all chunks have
    completed. *)

val filter_map : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b list

(** {1 Pool introspection}

    Occupancy of the persistent worker pool, for the serving layer's
    runtime gauges.  All three take the pool lock, so they are exact
    (not racy snapshots) but not for hot loops. *)

val pool_size : unit -> int
(** Worker domains spawned so far (the pool only grows). *)

val queue_depth : unit -> int
(** Tasks waiting in the shared queue right now. *)

val busy_workers : unit -> int
(** Worker domains currently running a task (excludes the calling
    domain's own chunk). *)

val sample_gauges : Obs.Registry.t -> unit
(** Write [par.pool_size], [par.queue_depth], [par.busy_workers] and
    [par.default_jobs] gauges into [registry]. *)
