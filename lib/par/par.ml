let c_par_tasks = Obs.Counter.make "par.tasks"

(* Chunks abandoned because the ambient [Obs.Progress] deadline blew
   while they ran: worker domains observe the same context as the
   caller, so one blown deadline cancels the whole map. *)
let c_par_cancelled = Obs.Counter.make "par.cancelled"

let default = ref 1
let set_default_jobs n = default := max 1 n
let default_jobs () = !default

(* Lists shorter than this run sequentially even when jobs > 1.  Handing
   two or three tasks to the pool costs a lock hand-off, a broadcast and
   a condition-variable wake per task — measured at ~4x the total work
   for two-element workloads in the b1 repair-enumeration bench — while
   the parallel upside at that size is at most the (tiny) chunk overlap.
   The default of 4 is where b1 crosses over to a net win. *)
let cutoff = ref 4
let set_parallel_cutoff n = cutoff := max 2 n
let parallel_cutoff () = !cutoff

type 'b slot =
  | Empty
  | Done of 'b list
  | Failed of exn * Printexc.raw_backtrace

(* Split [xs] into [n] contiguous chunks whose lengths differ by at most
   one (first chunks get the extra elements). *)
let chunk n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k acc xs =
    if k = 0 then (List.rev acc, xs)
    else match xs with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let c, rest = take sz [] xs in
      go (i + 1) rest (c :: acc)
  in
  go 0 xs [] |> List.filter (fun c -> c <> [])

let run_chunk f xs =
  match List.map f xs with
  | ys -> Done ys
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

(* Worker pool.  [Domain.spawn] costs on the order of a millisecond (each
   domain gets its own minor heap), which dwarfs the chunks the repair hot
   paths hand us — so domains are spawned once, lazily, and kept parked on
   a condition variable pulling thunks from a shared queue.  The pool only
   ever grows (to the largest [jobs - 1] requested) and is torn down by an
   [at_exit] hook so the process can shut down cleanly. *)

let lock = Mutex.create ()
let cond = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let stopping = ref false
let busy = ref 0 (* workers currently inside a task; guarded by [lock] *)

let worker_loop () =
  let rec next () =
    Mutex.lock lock;
    let rec wait () =
      if !stopping then None
      else
        match Queue.take_opt queue with
        | Some t -> Some t
        | None ->
            Condition.wait cond lock;
            wait ()
    in
    let step = wait () in
    (match step with Some _ -> incr busy | None -> ());
    Mutex.unlock lock;
    match step with
    | None -> ()
    | Some t ->
        t ();
        Mutex.lock lock;
        decr busy;
        Mutex.unlock lock;
        next ()
  in
  next ()

let locked f =
  Mutex.lock lock;
  let v = f () in
  Mutex.unlock lock;
  v

let pool_size () = locked (fun () -> List.length !workers)
let queue_depth () = locked (fun () -> Queue.length queue)
let busy_workers () = locked (fun () -> !busy)

let sample_gauges registry =
  let g name v = Obs.Registry.set_gauge registry ("par." ^ name) v in
  locked (fun () ->
      g "pool_size" (float_of_int (List.length !workers));
      g "queue_depth" (float_of_int (Queue.length queue));
      g "busy_workers" (float_of_int !busy));
  g "default_jobs" (float_of_int !default)

(* Must be called with [lock] held. *)
let ensure_workers n =
  let missing = n - List.length !workers in
  for _ = 1 to missing do
    workers := Domain.spawn worker_loop :: !workers
  done

let () =
  at_exit (fun () ->
      Mutex.lock lock;
      stopping := true;
      Condition.broadcast cond;
      Mutex.unlock lock;
      List.iter Domain.join !workers;
      workers := [])

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> !default in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 || Obs.Trace.is_enabled () -> List.map f xs
  | _ when List.length xs < !cutoff -> List.map f xs
  | _ ->
      let chunks = Array.of_list (chunk (min jobs (List.length xs)) xs) in
      let n = Array.length chunks in
      let slots = Array.make n Empty in
      let remaining = ref (n - 1) in
      Mutex.lock lock;
      ensure_workers (jobs - 1);
      for i = 1 to n - 1 do
        Obs.Counter.incr c_par_tasks;
        Queue.add
          (fun () ->
            let r = run_chunk f chunks.(i) in
            Mutex.lock lock;
            slots.(i) <- r;
            decr remaining;
            Condition.broadcast cond;
            Mutex.unlock lock)
          queue
      done;
      Condition.broadcast cond;
      Mutex.unlock lock;
      (* The calling domain works on chunk 0 instead of idling, then helps
         drain the queue while waiting — which also makes nested maps
         deadlock-free (a waiter never parks while work is available). *)
      Obs.Counter.incr c_par_tasks;
      slots.(0) <- run_chunk f chunks.(0);
      Mutex.lock lock;
      while !remaining > 0 do
        match Queue.take_opt queue with
        | Some t ->
            Mutex.unlock lock;
            t ();
            Mutex.lock lock
        | None -> Condition.wait cond lock
      done;
      Mutex.unlock lock;
      Array.iter
        (function
          | Failed (e, _) when Obs.Progress.is_cancel e ->
              Obs.Counter.incr c_par_cancelled
          | _ -> ())
        slots;
      let results =
        Array.to_list slots
        |> List.map (function
             | Done ys -> ys
             | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
             | Empty -> assert false)
      in
      List.concat results

let filter_map ?jobs f xs = map ?jobs f xs |> List.filter_map Fun.id
