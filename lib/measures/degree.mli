(** Repair-based degrees of database inconsistency — the question the
    paper's closing section returns to ("measuring the degree of
    inconsistency of a database", refs [16, 17]).

    All measures are normalized to [0, 1] where 0 means consistent.
    Denial-class constraints only (they are what the cited measures are
    defined for). *)

val drastic :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> float
(** 0 if consistent, 1 otherwise. *)

val violation_ratio :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> float
(** Number of violation witnesses over the number of tuples (clamped
    to 1). *)

val conflicting_tuple_ratio :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> float
(** Fraction of tuples involved in at least one conflict. *)

val repair_based :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> float
(** The measure of [16, 17]: (|D| − max size of D ∩ D' over S-repairs D')
    / |D| — i.e. the C-repair deletion count over |D|, computed by minimum
    hitting set without enumerating repairs. *)

val all :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  (string * float) list
