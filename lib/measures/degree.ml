module Instance = Relational.Instance
module Violation = Constraints.Violation
module Conflict_graph = Constraints.Conflict_graph

let drastic inst schema ics =
  if Violation.is_consistent inst schema ics then 0.0 else 1.0

let safe_ratio num den = if den = 0 then 0.0 else Float.min 1.0 (float_of_int num /. float_of_int den)

let violation_ratio inst schema ics =
  safe_ratio (List.length (Violation.all inst schema ics)) (Instance.size inst)

let conflicting_tuple_ratio inst schema ics =
  let g = Conflict_graph.build inst schema ics in
  safe_ratio
    (Relational.Tid.Set.cardinal (Conflict_graph.conflicting_tids g))
    (Instance.size inst)

let repair_based inst schema ics =
  let g = Conflict_graph.build inst schema ics in
  match Sat.Hitting_set.minimum_size (Conflict_graph.edges_as_int_lists g) with
  | None -> 1.0 (* unrepairable by deletions: maximally inconsistent *)
  | Some k -> safe_ratio k (Instance.size inst)

let all inst schema ics =
  [
    ("drastic", drastic inst schema ics);
    ("violation-ratio", violation_ratio inst schema ics);
    ("conflicting-tuple-ratio", conflicting_tuple_ratio inst schema ics);
    ("repair-based", repair_based inst schema ics);
  ]
