module Instance = Relational.Instance
module Tvl = Relational.Tvl
module Value = Relational.Value
module Plan = Relational.Plan
module Columnar = Relational.Columnar

let c_scan_row = Obs.Counter.make "scan.row"

type t =
  | True
  | False
  | Atom of Atom.t
  | Cmp of Cmp.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let exists vs f = if vs = [] then f else Exists (vs, f)
let forall vs f = if vs = [] then f else Forall (vs, f)

let of_cq_body (q : Cq.t) =
  conj (List.map (fun a -> Atom a) q.body @ List.map (fun c -> Cmp c) q.comps)

let of_cq (q : Cq.t) = exists (Cq.existential_vars q) (of_cq_body q)

let rec free_vars = function
  | True | False -> []
  | Atom a -> Atom.vars a
  | Cmp c -> Cmp.vars c
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      let va = free_vars a in
      va @ List.filter (fun v -> not (List.mem v va)) (free_vars b)
  | Exists (vs, f) | Forall (vs, f) ->
      List.filter (fun v -> not (List.mem v vs)) (free_vars f)

let rec substitute s = function
  | (True | False) as f -> f
  | Atom a -> Atom (Subst.apply_atom s a)
  | Cmp c -> Cmp (Subst.apply_cmp s c)
  | Not f -> Not (substitute s f)
  | And (a, b) -> And (substitute s a, substitute s b)
  | Or (a, b) -> Or (substitute s a, substitute s b)
  | Implies (a, b) -> Implies (substitute s a, substitute s b)
  | Exists (vs, f) -> Exists (vs, substitute s f)
  | Forall (vs, f) -> Forall (vs, substitute s f)

(* Negation normal form, pushing negations to literals (Kleene-valid, and
   valid for our two-valued quantifiers).  Comparisons absorb the negation
   via [Cmp.negate], so NNF turns e.g. ¬(E(x,z) → y=z) into the
   generator-friendly conjunction E(x,z) ∧ y≠z. *)
let rec nnf = function
  | (True | False | Atom _ | Cmp _) as f -> f
  | Not f -> neg f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (neg a, nnf b)
  | Exists (vs, f) -> Exists (vs, nnf f)
  | Forall (vs, f) -> Forall (vs, nnf f)

and neg = function
  | True -> False
  | False -> True
  | Atom _ as f -> Not f
  | Cmp c -> Cmp (Cmp.negate c)
  | Not f -> nnf f
  | And (a, b) -> Or (neg a, neg b)
  | Or (a, b) -> And (neg a, neg b)
  | Implies (a, b) -> And (nnf a, neg b)
  | Exists (vs, f) -> Forall (vs, neg f)
  | Forall (vs, f) -> Exists (vs, neg f)

let rec flatten_conj = function
  | And (a, b) -> flatten_conj a @ flatten_conj b
  | True -> []
  | f -> [ f ]

(* The truth value of one atom against one stored row: conjunction of
   three-valued equalities, so that NULL in a compared position yields
   Unknown rather than a match. *)
let match_row_tvl env (a : Atom.t) row =
  let n = List.length a.args in
  if n <> Array.length row then Tvl.False
  else
    let rec go i acc = function
      | [] -> acc
      | t :: rest -> (
          if acc = Tvl.False then Tvl.False
          else
            let v = row.(i) in
            match t with
            | Term.Const c -> go (i + 1) Tvl.(acc &&& Value.sql_eq c v) rest
            | Term.Var x -> (
                match Binding.find env x with
                | Some bound -> go (i + 1) Tvl.(acc &&& Value.sql_eq bound v) rest
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Formula.eval: unbound variable %s in atom %s" x a.rel)))
    in
    go 0 Tvl.True a.args

(* All argument positions of [a] with their forced values, or [None] if
   some variable is unbound (the caller falls back to the scan, which
   reproduces the historical unbound-variable error behaviour). *)
let atom_bound env (a : Atom.t) =
  let rec go i acc = function
    | [] -> Some (List.rev acc)
    | Term.Const c :: rest -> go (i + 1) ((i, c) :: acc) rest
    | Term.Var x :: rest -> (
        match Binding.find env x with
        | Some v -> go (i + 1) ((i, v) :: acc) rest
        | None -> None)
  in
  go 0 [] a.args

let rec eval inst env f : Tvl.t =
  match f with
  | True -> Tvl.True
  | False -> Tvl.False
  | Atom a ->
      let scan () =
        List.fold_left
          (fun acc (_tid, row) ->
            match acc with
            | Tvl.True -> Tvl.True
            | _ -> Tvl.(acc ||| match_row_tvl env a row))
          Tvl.False
          (Instance.tuples inst ~rel:a.Atom.rel)
      in
      let schema = Instance.schema inst in
      let indexable =
        Relational.Schema.mem schema a.Atom.rel
        && Relational.Schema.arity schema a.Atom.rel = List.length a.Atom.args
      in
      (match (if indexable then atom_bound env a else None) with
      | None -> scan ()
      | Some bound -> (
          if List.exists (fun (_, v) -> Value.is_null v) bound then
            (* A NULL-valued binding compares Unknown against every row:
               only the scan computes the right Unknown/False mix. *)
            scan ()
          else
            match Instance.probe inst ~rel:a.Atom.rel ~bound with
            | `All _ -> scan ()
            | `Hash (definite, null_candidates) ->
                (* Every position is bound, so a definite index match makes
                   the atom True outright; otherwise only rows with a NULL
                   in some compared position can still lift False to
                   Unknown. *)
                if definite <> [] then Tvl.True
                else
                  List.fold_left
                    (fun acc (_tid, row) ->
                      Tvl.(acc ||| match_row_tvl env a row))
                    Tvl.False null_candidates))
  | Cmp c -> Binding.eval_cmp env c
  | Not f -> Tvl.not_ (eval inst env f)
  | And (a, b) -> Tvl.(eval inst env a &&& eval inst env b)
  | Or (a, b) -> Tvl.(eval inst env a ||| eval inst env b)
  | Implies (a, b) -> Tvl.(not_ (eval inst env a) ||| eval inst env b)
  | Exists (vs, f) -> Tvl.of_bool (exists_sat inst env vs f)
  | Forall (vs, f) -> Tvl.of_bool (not (exists_sat inst env vs (Not f)))

and exists_sat inst env vs f =
  let exception Found in
  try
    sat inst env vs (flatten_conj (nnf f)) (fun _ -> raise Found);
    false
  with Found -> true

(* Enumerate extensions of [env] binding all of [vs] that make every
   conjunct definitely true.  Positive atom conjuncts act as generators;
   once a generator has produced a binding from a stored tuple it is removed
   from the residual conjuncts (its truth is witnessed by that tuple), which
   is also what lets a NULL-valued tuple satisfy its own atom while still
   failing any join it participates in. *)
and sat inst env vs conjs k =
  let unbound = List.filter (fun v -> not (Binding.mem env v)) vs in
  match unbound with
  | [] ->
      if List.for_all (fun c -> eval inst env c = Tvl.True) conjs then k env
  | _ -> (
      let is_generator = function
        | Atom a -> List.exists (fun v -> List.mem v unbound) (Atom.vars a)
        | _ -> false
      in
      let rec split acc = function
        | [] -> None
        | c :: rest when is_generator c -> Some (c, List.rev_append acc rest)
        | c :: rest -> split (c :: acc) rest
      in
      match split [] conjs with
      | Some (Atom a, rest) ->
          (* Candidate rows come from an index probe over the positions the
             environment and the pending equality conjuncts force; rows the
             probe drops would fail [match_row] or the final conjunct
             evaluation.  [rest] keeps every comparison, so the pruning
             comparisons are still re-checked before [k] fires. *)
          let pending =
            List.filter_map (function Cmp c -> Some c | _ -> None) rest
          in
          List.iter
            (fun (_tid, row) ->
              match Cq.match_row env a row with
              | Some env' -> sat inst env' vs rest k
              | None -> ())
            (Instance.matching_tuples inst ~rel:a.Atom.rel
               ~bound:(Cq.bound_pattern env a pending))
      | Some _ -> assert false
      | None ->
          let v = List.hd unbound in
          List.iter
            (fun value -> sat inst (Binding.bind env v value) vs conjs k)
            (Instance.active_domain inst))

let holds inst f = eval inst Binding.empty f = Tvl.True

module Row_set = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

(* --- compiled columnar evaluation ----------------------------------- *)

(* Compilation of the guarded ∃∀-shape the FO rewritings produce
   (see [Rewriting.Key_rewrite]).  The unit is a *conjunction*: after
   [flatten_conj], the items the interpreter evaluates are positive
   atoms (generators), comparisons (definite filters) and guards
   [∀ū (A' → cond1 ∧ ... ∧ condk)] evaluated per generated binding.
   That conjunction compiles to

     conj = (⋈ atoms) σ comparisons
            ∖ π( ⋃ per-guard refutation branches )

   where each guard's refutation test ranges over [conj ⋈ A'] (the
   key-mates of each surviving binding): a negated comparison becomes a
   disjunctive filter branch, and a child [∃ v̄ conj'] becomes an
   antijoin against the recursively compiled child conjunction —
   quantifiers are two-valued exactly as in [eval]/[sat], and a
   NULL-keyed mate join refutes nothing (NULL never joins), matching
   the interpreter's definite-match generators.

   Conditions of any other shape — in particular a bare atom, which
   [eval] judges in three-valued logic where [False] (no row matches
   even through NULL) differs from not-definitely-true — fall back to
   the interpreter, as does any conjunct outside the shape above and
   any quantified variable no atom generates (the interpreter
   enumerates the active domain for those). *)

exception Unsupported_plan

let rec strip_exists = function
  | Exists (vs, f) ->
      let vs', g = strip_exists f in
      (vs @ vs', g)
  | f -> ([], f)

let plan_of_formula inst f =
  let schema = Instance.schema inst in
  let scan_plan (a : Atom.t) =
    if not (Relational.Schema.mem schema a.Atom.rel) then
      (* The interpreter raises on undeclared relations; let it. *)
      raise Unsupported_plan;
    let args =
      List.map
        (function
          | Term.Const v -> Plan.Aconst v
          | Term.Var x -> Plan.Avar x)
        a.args
    in
    Plan.Scan { rel = a.Atom.rel; args; tid = None }
  in
  let pred_of cols (c : Cmp.t) =
    let conv = function
      | Term.Const v -> Plan.Const v
      | Term.Var x ->
          if List.mem x cols then Plan.Col x else raise Unsupported_plan
    in
    { Plan.op = Cq.plan_op c.op; left = conv c.left; right = conv c.right }
  in
  let require vs cols =
    if not (List.for_all (fun v -> List.mem v cols) vs) then
      raise Unsupported_plan
  in
  (* Row-identity column for guard subtraction; the leading '#' keeps it
     out of the variable namespace (like [Instance.tid_column]). *)
  let ord_col = "#ord" in
  (* Rows binding the conjunction's variables so that every item is
     definitely true. *)
  let rec compile_conj items =
    if List.mem False items then `Empty
    else begin
      let atoms, guards, cmps =
        List.fold_left
          (fun (ats, gs, cs) item ->
            match item with
            | Atom a -> (a :: ats, gs, cs)
            | Forall (us, Implies (Atom mate, conds)) ->
                (* A mate variable outside the mate atom would send the
                   refutation search to the active domain. *)
                require us (Atom.vars mate);
                (ats, (mate, conds) :: gs, cs)
            | Cmp c -> (ats, gs, c :: cs)
            | _ -> raise Unsupported_plan)
          ([], [], []) items
      in
      let atoms = List.rev atoms
      and guards = List.rev guards
      and cmps = List.rev cmps in
      match atoms with
      | [] -> raise Unsupported_plan (* atomless bodies: active domain *)
      | first :: rest ->
          let scan_cols a =
            let p = scan_plan a in
            (p, Plan.cols p)
          in
          let joined, all_cols =
            List.fold_left
              (fun (plan, vars) (p, vs) ->
                ( Plan.Join (plan, p),
                  vars @ List.filter (fun v -> not (List.mem v vars)) vs ))
              (scan_cols first)
              (List.map scan_cols rest)
          in
          let preds = List.map (pred_of all_cols) cmps in
          let filtered =
            if preds = [] then joined else Plan.Filter (Plan.All preds, joined)
          in
          (* When guards are present the conjunction table feeds the
             refutation subtraction AND every guard's mate join:
             materialize it once, with a synthetic ordinal column, so
             (a) the plan tree — which has no sharing — does not
             re-execute it per use and (b) refuted rows are subtracted
             by row identity with a raw-int antijoin instead of a
             value-keyed diff.  A guard refutes a binding by its
             values alone, and value-equal rows pick up the same mate
             matches, so identity subtraction removes exactly the
             value-refuted rows. *)
          let filtered =
            if guards = [] then filtered
            else begin
              let tbl = Plan.run inst filtered in
              let n = Columnar.length tbl in
              let ord = Relational.Column.of_ints (Array.init n Fun.id) in
              Plan.Table
                (Columnar.make
                   (Array.append (Columnar.cols tbl) [| ord_col |])
                   (Array.append (Columnar.columns tbl) [| ord |])
                   n)
            end
          in
          let bads =
            List.concat_map
              (fun (mate, conds) ->
                let jm = Plan.Join (filtered, scan_plan mate) in
                let jm_cols = Plan.cols jm in
                let neg_preds = ref [] and makers = ref [] in
                List.iter
                  (fun cond ->
                    match cond with
                    | Cmp c ->
                        neg_preds := pred_of jm_cols (Cmp.negate c) :: !neg_preds
                    | False -> makers := `Jm :: !makers
                    | Exists (vs, g) -> (
                        match compile_conj (flatten_conj g) with
                        | `Empty -> makers := `Jm :: !makers
                        | `Plan (child, child_cols) ->
                            require vs child_cols;
                            makers := `Anti child :: !makers)
                    | _ -> raise Unsupported_plan)
                  (flatten_conj conds);
                let neg_preds = List.rev !neg_preds and makers = List.rev !makers in
                (* Same sharing argument for the mate join when several
                   refutation branches range over it. *)
                let uses =
                  (if neg_preds = [] then 0 else 1) + List.length makers
                in
                let jm = if uses > 1 then Plan.Table (Plan.run inst jm) else jm in
                (match neg_preds with
                | [] -> []
                | ps -> [ Plan.Filter (Plan.Any ps, jm) ])
                @ List.map
                    (function
                      | `Jm -> jm
                      | `Anti child -> Plan.Antijoin (jm, child))
                    makers)
              guards
          in
          let plan =
            if guards = [] then filtered
            else
              Plan.Project
                ( all_cols,
                  List.fold_left
                    (fun acc b ->
                      Plan.Antijoin (acc, Plan.Project ([ ord_col ], b)))
                    filtered bads )
          in
          `Plan (plan, all_cols)
    end
  in
  let evars, body = strip_exists f in
  match compile_conj (flatten_conj body) with
  | `Empty -> `Empty
  | `Plan (plan, all_cols) ->
      require evars all_cols;
      `Plan (plan, all_cols)

let plan_answers inst ~free f =
  match try Some (plan_of_formula inst f) with Unsupported_plan -> None with
  | None -> None
  | Some `Empty -> Some []
  | Some (`Plan (plan, all_cols)) ->
      if not (List.for_all (fun v -> List.mem v all_cols) free) then
        (* A free variable no atom generates: the interpreter enumerates
           the active domain for it — out of scope for the plan. *)
        None
      else
        (* Under an existential prefix the interpreter has no top-level
           atom generators: free variables range over the active domain
           (never NULL) and atoms check them by definite equality.  An
           unwrapped conjunction instead binds free variables straight
           from the scans, NULLs included.  A self-equality predicate —
           definitely true exactly on non-NULL values — reproduces the
           wrapped case on the scan-driven plan. *)
        let plan =
          match f with
          | Exists _ when free <> [] ->
              Plan.Filter
                ( Plan.All
                    (List.map
                       (fun v -> { Plan.op = Plan.Eq; left = Col v; right = Col v })
                       free),
                  plan )
          | _ -> plan
        in
        let table =
          Plan.run inst (Plan.Distinct (Plan.Project (free, plan)))
        in
        (* [Distinct] already returns unique rows sorted by
           [Value.compare] — the [Row_set.elements] order for
           equal-length rows — so no set rebuild is needed. *)
        let getters =
          Array.map Relational.Column.getter (Columnar.columns table)
        in
        let k = Array.length getters in
        let row i =
          let rec go j acc =
            if j < 0 then acc else go (j - 1) (getters.(j) i :: acc)
          in
          go (k - 1) []
        in
        Some (List.init (Columnar.length table) row)

let answers inst ~free f =
  match if Columnar.enabled () then plan_answers inst ~free f else None with
  | Some rows -> rows
  | None ->
      Obs.Counter.incr c_scan_row;
      let acc = ref Row_set.empty in
      sat inst Binding.empty free (flatten_conj (nnf f)) (fun env ->
          let row =
            List.map
              (fun v ->
                match Binding.find env v with
                | Some value -> value
                | None -> assert false)
              free
          in
          acc := Row_set.add row !acc);
      Row_set.elements !acc

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "⊤"
  | False -> Format.pp_print_string ppf "⊥"
  | Atom a -> Atom.pp ppf a
  | Cmp c -> Cmp.pp ppf c
  | Not f -> Format.fprintf ppf "¬%a" pp_paren f
  | And (a, b) -> Format.fprintf ppf "%a ∧ %a" pp_paren a pp_paren b
  | Or (a, b) -> Format.fprintf ppf "%a ∨ %a" pp_paren a pp_paren b
  | Implies (a, b) -> Format.fprintf ppf "%a → %a" pp_paren a pp_paren b
  | Exists (vs, f) ->
      Format.fprintf ppf "∃%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_string)
        vs pp_paren f
  | Forall (vs, f) ->
      Format.fprintf ppf "∀%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_string)
        vs pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | Cmp _ | Not _ -> pp ppf f
  | And _ | Or _ | Implies _ | Exists _ | Forall _ ->
      Format.fprintf ppf "(%a)" pp f
