type t = { name : string; disjuncts : Cq.t list }

let make ?(name = "Q") disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: rest ->
      let n = Cq.arity q in
      List.iter
        (fun q' ->
          if Cq.arity q' <> n then invalid_arg "Ucq.make: arity mismatch")
        rest;
      { name; disjuncts }

let of_cq q = { name = q.Cq.name; disjuncts = [ q ] }
let arity u = Cq.arity (List.hd u.disjuncts)

module Row_set = Set.Make (struct
  type t = Relational.Value.t list

  let compare = List.compare Relational.Value.compare
end)

let answers u inst =
  List.fold_left
    (fun acc q -> List.fold_left (fun acc row -> Row_set.add row acc) acc (Cq.answers q inst))
    Row_set.empty u.disjuncts
  |> Row_set.elements

let holds u inst = List.exists (fun q -> Cq.holds q inst) u.disjuncts

let pp ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ∨ ")
    Cq.pp ppf u.disjuncts
