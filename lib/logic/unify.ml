let rec resolve s t =
  match t with
  | Term.Const _ -> t
  | Term.Var x -> (
      match Subst.find s x with
      | None -> t
      | Some t' -> if Term.equal t t' then t else resolve s t')

let terms s a b =
  let a = resolve s a and b = resolve s b in
  match a, b with
  | Term.Const u, Term.Const v ->
      if Relational.Value.equal u v then Some s else None
  | Term.Var x, Term.Var y when String.equal x y -> Some s
  | Term.Var x, t | t, Term.Var x -> Some (Subst.bind s x t)

let atoms (a : Atom.t) (b : Atom.t) =
  if not (String.equal a.rel b.rel) || List.length a.args <> List.length b.args
  then None
  else
    List.fold_left2
      (fun acc ta tb ->
        match acc with None -> None | Some s -> terms s ta tb)
      (Some Subst.empty) a.args b.args

let rename_apart ~suffix atoms =
  let rename = function
    | Term.Var x -> Term.Var (x ^ suffix)
    | Term.Const _ as t -> t
  in
  List.map (fun (a : Atom.t) -> { a with args = List.map rename a.args }) atoms
