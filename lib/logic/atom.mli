(** Relational atoms [R(t1, ..., tn)]. *)

type t = { rel : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> string list
val is_ground : t -> bool

val to_fact : t -> Relational.Fact.t
(** Raises [Invalid_argument] if the atom is not ground. *)

val of_fact : Relational.Fact.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
