type literal = Pos of Atom.t | Neg of Atom.t | Builtin of Cmp.t

type t = { literals : literal list }

let make literals = { literals }

let vars c =
  let terms =
    List.concat_map
      (function
        | Pos a | Neg a -> a.Atom.args
        | Builtin cmp -> [ cmp.Cmp.left; cmp.Cmp.right ])
      c.literals
  in
  Term.vars terms

let negative_atoms c =
  List.filter_map (function Neg a -> Some a | Pos _ | Builtin _ -> None) c.literals

let rename_apart ~suffix c =
  let rename_term = function
    | Term.Var x -> Term.Var (x ^ suffix)
    | Term.Const _ as t -> t
  in
  let rename_lit = function
    | Pos a -> Pos { a with Atom.args = List.map rename_term a.Atom.args }
    | Neg a -> Neg { a with Atom.args = List.map rename_term a.Atom.args }
    | Builtin cmp ->
        Builtin
          {
            cmp with
            Cmp.left = rename_term cmp.Cmp.left;
            Cmp.right = rename_term cmp.Cmp.right;
          }
  in
  { literals = List.map rename_lit c.literals }

let literal_formula = function
  | Pos a -> Formula.Atom a
  | Neg a -> Formula.Not (Formula.Atom a)
  | Builtin cmp -> Formula.Cmp cmp

let to_formula c =
  Formula.forall (vars c) (Formula.disj (List.map literal_formula c.literals))

let holds inst c = Formula.holds inst (to_formula c)

(* Distribute the NNF matrix into clauses.  Each recursive call returns the
   conjunction-of-disjunctions as a list of literal lists. *)
let of_formula f =
  let exception No_clausal_form in
  let rec matrix f =
    match (f : Formula.t) with
    | Formula.True -> []
    | Formula.False -> [ [] ]
    | Formula.Atom a -> [ [ Pos a ] ]
    | Formula.Not (Formula.Atom a) -> [ [ Neg a ] ]
    | Formula.Cmp c -> [ [ Builtin c ] ]
    | Formula.And (a, b) -> matrix a @ matrix b
    | Formula.Or (a, b) ->
        let ca = matrix a and cb = matrix b in
        List.concat_map (fun da -> List.map (fun db -> da @ db) cb) ca
    | Formula.Forall (_, g) -> matrix g
    | Formula.Exists _ -> raise No_clausal_form
    | Formula.Not _ | Formula.Implies _ ->
        (* NNF leaves negation only on atoms and eliminates implication. *)
        assert false
  in
  try Some (List.map make (matrix (Formula.nnf f))) with No_clausal_form -> None

let pp_literal ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Format.fprintf ppf "¬%a" Atom.pp a
  | Builtin cmp -> Cmp.pp ppf cmp

let pp ppf c =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∨ ")
    pp_literal ppf c.literals
