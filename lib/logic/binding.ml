module Smap = Map.Make (String)
module Value = Relational.Value

type t = Value.t Smap.t

let empty = Smap.empty
let find b x = Smap.find_opt x b
let bind b x v = Smap.add x v b
let mem b x = Smap.mem x b

let term_value b = function
  | Term.Const v -> Some v
  | Term.Var x -> find b x

let eval_cmp b (c : Cmp.t) =
  let value t =
    match term_value b t with
    | Some v -> v
    | None ->
        invalid_arg
          (Format.asprintf "Binding.eval_cmp: unbound variable in %a" Cmp.pp c)
  in
  Cmp.eval (value c.left) c.op (value c.right)

let to_list b = Smap.bindings b
let of_list l = List.fold_left (fun acc (x, v) -> Smap.add x v acc) Smap.empty l

let pp ppf b =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, v) -> Format.fprintf ppf "%s=%a" x Value.pp v))
    (to_list b)
