(** Most general unifiers for atoms over variable/constant terms.

    Since terms have no function symbols, unification reduces to computing a
    consistent variable/constant matching; no occurs-check is needed. *)

val terms : Subst.t -> Term.t -> Term.t -> Subst.t option
val atoms : Atom.t -> Atom.t -> Subst.t option

val rename_apart : suffix:string -> Atom.t list -> Atom.t list
(** Rename every variable by appending [suffix], for standardizing clauses
    apart before resolution. *)
