module Value = Relational.Value

type t = Var of string | Const of Value.t

let var x = Var x
let const v = Const v
let int i = Const (Value.int i)
let str s = Const (Value.str s)

let is_var = function Var _ -> true | Const _ -> false

let equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const u, Const v -> Value.equal u v
  | (Var _ | Const _), _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const u, Const v -> Value.compare u v
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Value.pp ppf v

let vars terms =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (function
      | Var x when not (Hashtbl.mem seen x) ->
          Hashtbl.add seen x ();
          Some x
      | Var _ | Const _ -> None)
    terms
