(** Term substitutions (variable → term), as produced by unification. *)

type t

val empty : t
val singleton : string -> Term.t -> t
val find : t -> string -> Term.t option
val bind : t -> string -> Term.t -> t

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t
val apply_cmp : t -> Cmp.t -> Cmp.t

val to_list : t -> (string * Term.t) list
val pp : Format.formatter -> t -> unit
