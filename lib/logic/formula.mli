(** First-order formulas over the database schema, with an evaluator that
    follows SQL semantics.

    This is the target language of the consistent-query-answering rewritings
    of Sections 2 and 3.1: e.g. query (6) of the paper,
    [Employee(x,y) ∧ ¬∃z (Employee(x,z) ∧ z ≠ y)].

    Evaluation semantics, chosen to match how such rewritings behave when
    translated to SQL (Example 3.4):
    - atoms and comparisons are three-valued in the presence of NULL
      (a comparison or join through NULL is unknown and does not select);
    - quantifiers are two-valued, like SQL [EXISTS]: [Exists] is true iff
      some binding makes the body definitely true, and [Forall x φ] is
      [¬Exists x ¬φ].

    The evaluator is generator-driven: existential variables are bound by
    scanning positive atom conjuncts rather than the whole active domain
    whenever possible, so rewritten queries evaluate in time close to a
    hand-written SQL plan. *)

type t =
  | True
  | False
  | Atom of Atom.t
  | Cmp of Cmp.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

val conj : t list -> t
val disj : t list -> t
val exists : string list -> t -> t
val forall : string list -> t -> t
val of_cq_body : Cq.t -> t
(** The body of a CQ as a conjunction (without quantifying anything). *)

val of_cq : Cq.t -> t
(** The CQ as a closed-or-open formula: existential variables quantified,
    head variables free. *)

val free_vars : t -> string list

val substitute : Subst.t -> t -> t
(** Capture-avoiding only in the weak sense required here: quantified
    variables are never substituted; callers must standardize apart. *)

val nnf : t -> t
(** Negation normal form: negations pushed onto atoms and absorbed into
    comparisons.  Semantics-preserving under the evaluation rules above. *)

val eval : Relational.Instance.t -> Binding.t -> t -> Relational.Tvl.t
(** Evaluate a formula whose free variables are all bound by the binding.
    Raises [Invalid_argument] on an unbound free variable reached outside a
    positive generator. *)

val holds : Relational.Instance.t -> t -> bool
(** [eval] on a closed formula, selecting definite truth. *)

val answers :
  Relational.Instance.t -> free:string list -> t -> Relational.Value.t list list
(** All bindings of [free] (as tuples in the order given) that make the
    formula definitely true.  Complete for formulas where every free and
    existential variable is range-restricted by a positive atom conjunct,
    and falls back to active-domain enumeration otherwise.

    When {!Relational.Columnar.enabled} (the default) and the formula has
    the guarded ∃∀-shape the FO rewritings produce — a conjunction of
    atoms, guarded atoms [A ∧ ∀ū (A' → conds)] and comparisons under an
    existential prefix — evaluation compiles to a fused columnar
    {!Relational.Plan}: guards subtract the rows refuted by each
    refutation branch (negated-comparison filters and antijoins against
    child guards) via row-identity antijoins on a synthetic ordinal
    column.  Same answers, same order; other shapes (and free
    variables needing active-domain enumeration) keep the generator-driven
    interpreter, counted by [scan.row]. *)

val pp : Format.formatter -> t -> unit
