module Smap = Map.Make (String)

type t = Term.t Smap.t

let empty = Smap.empty
let singleton x t = Smap.singleton x t
let find s x = Smap.find_opt x s

let rec apply_term s = function
  | Term.Const _ as t -> t
  | Term.Var x as t -> (
      match Smap.find_opt x s with
      | None -> t
      | Some t' -> if Term.equal t t' then t else apply_term s t')

let bind s x t = Smap.add x t s
let apply_atom s (a : Atom.t) = { a with args = List.map (apply_term s) a.args }

let apply_cmp s (c : Cmp.t) =
  { c with left = apply_term s c.left; right = apply_term s c.right }

let to_list s = Smap.bindings s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, t) -> Format.fprintf ppf "%s↦%a" x Term.pp t))
    (to_list s)
