(** Conjunctive queries with built-in comparisons.

    [Q(x̄) : ∃ȳ (A1 ∧ ... ∧ An ∧ c1 ∧ ... ∧ cm)] where the [head] terms list
    the distinguished variables (or constants) x̄ and all other body
    variables are existential.  Evaluation follows SQL semantics for NULL:
    a variable occurring in two positions is a join and never matches
    through NULL, and comparisons touching NULL do not select. *)

type t = { name : string; head : Term.t list; body : Atom.t list; comps : Cmp.t list }

val make : ?name:string -> ?comps:Cmp.t list -> Term.t list -> Atom.t list -> t
val arity : t -> int
val head_vars : t -> string list
val body_vars : t -> string list
val existential_vars : t -> string list
val is_boolean : t -> bool

val match_row : Binding.t -> Atom.t -> Relational.Value.t array -> Binding.t option
(** Extend a binding by matching one atom against one stored row; [None] if
    a constant or an already-bound variable fails to match definitely
    (NULL never matches). *)

val bindings : t -> Relational.Instance.t -> Binding.t list
(** All bindings of the body variables that satisfy body and comparisons. *)

val answers : t -> Relational.Instance.t -> Relational.Value.t list list
(** Distinct answer tuples, sorted.  When {!Relational.Columnar.enabled}
    (the default) and the query's shape allows it (non-empty body, safe
    head, declared relations), evaluation compiles to a fused columnar
    {!Relational.Plan} instead of the backtracking row interpreter —
    same answers, same order.  The [scan.row] counter records row-path
    entries; [scan.columnar]/[join.fused] record the compiled path. *)

val holds : t -> Relational.Instance.t -> bool
(** Satisfaction of the query's body — the Boolean-query reading. *)

val substitute : Subst.t -> t -> t
val pp : Format.formatter -> t -> unit

val bound_pattern :
  Binding.t -> Atom.t -> Cmp.t list -> (int * Relational.Value.t) list
(** Positions of the atom whose value is forced by the environment (constant
    arguments, bound variables) or by a pending equality comparison whose
    other side evaluates under the environment.  Feeding this to
    {!Relational.Instance.matching_tuples} prunes candidate rows exactly —
    excluded rows would fail [match_row] or the comparison check anyway. *)

(** {1 Columnar compilation} *)

val plan_op : Cmp.op -> Relational.Plan.op

val compile_body :
  Relational.Instance.t ->
  tids:bool ->
  Atom.t list ->
  Cmp.t list ->
  (Relational.Plan.t * (string -> string)) option
(** Compile a conjunctive body (atoms + comparisons) to a joined and
    filtered {!Relational.Plan}: variable-to-variable equality
    comparisons are canonicalized into shared columns (the returned
    function maps each body variable to its representative column),
    remaining in-body comparisons become filter predicates, and
    comparisons mentioning a variable outside the body are dropped —
    exactly the row path's never-ready pending comparisons.  With
    [~tids:true] each atom's scan also emits its tuple identifier as
    column [#tid<i>] (atom index [i]).  [None] when the body is empty
    or references an undeclared relation. *)
