module Value = Relational.Value
module Tvl = Relational.Tvl

type op = Eq | Neq | Lt | Le | Gt | Ge

type t = { op : op; left : Term.t; right : Term.t }

let make op left right = { op; left; right }
let eq l r = make Eq l r
let neq l r = make Neq l r

let negate c =
  let op =
    match c.op with
    | Eq -> Neq
    | Neq -> Eq
    | Lt -> Ge
    | Ge -> Lt
    | Le -> Gt
    | Gt -> Le
  in
  { c with op }

let vars c = Term.vars [ c.left; c.right ]

let eval l op r =
  match op with
  | Eq -> Value.sql_eq l r
  | Neq -> Tvl.not_ (Value.sql_eq l r)
  | Lt -> Value.sql_cmp (fun c -> c < 0) l r
  | Le -> Value.sql_cmp (fun c -> c <= 0) l r
  | Gt -> Value.sql_cmp (fun c -> c > 0) l r
  | Ge -> Value.sql_cmp (fun c -> c >= 0) l r

let equal a b = a.op = b.op && Term.equal a.left b.left && Term.equal a.right b.right

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp ppf c = Format.fprintf ppf "%a %a %a" Term.pp c.left pp_op c.op Term.pp c.right
