(** Residues of integrity constraints against query atoms — the semantic
    query optimization machinery of Chakravarthy, Grant and Minker that the
    paper's Section 2 turns into the first CQA rewriting.

    Resolving a (positive) query atom with a negative literal of an IC
    clause leaves the remaining literals as a residue: a condition implied
    for every tuple the atom retrieves.  Example 2.2: resolving
    [Supply(x,y,z)] with [¬Supply(x,y,z) ∨ Articles(z)] leaves the residue
    [Articles(z)]; Example 3.4: resolving [Employee(x,y)] with the key
    clause leaves [∀z (¬Employee(x,z) ∨ y = z)]. *)

val of_clause : ?suffix:string -> Atom.t -> Clause.t -> Formula.t list
(** [of_clause atom clause] returns one residue per negative literal of
    [clause] that unifies with [atom].  The clause is standardized apart
    with [suffix] (default ["'"]) before unification.  Clause variables not
    bound to the atom's own terms are universally quantified in the result;
    bindings imposed on the atom's variables (by constants in the clause)
    surface as equality preconditions guarding the residue. *)

val for_atom : ?suffix:string -> Atom.t -> Clause.t list -> Formula.t list
(** All residues of a set of IC clauses against one atom. *)
