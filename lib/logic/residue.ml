let literal_formula = function
  | Clause.Pos a -> Formula.Atom a
  | Clause.Neg a -> Formula.Not (Formula.Atom a)
  | Clause.Builtin cmp -> Formula.Cmp cmp

let apply_subst_literal s = function
  | Clause.Pos a -> Clause.Pos (Subst.apply_atom s a)
  | Clause.Neg a -> Clause.Neg (Subst.apply_atom s a)
  | Clause.Builtin cmp -> Clause.Builtin (Subst.apply_cmp s cmp)

let of_clause ?(suffix = "'") (atom : Atom.t) clause =
  let clause = Clause.rename_apart ~suffix clause in
  let atom_vars = Atom.vars atom in
  let residue_for lit rest =
    match lit with
    | Clause.Pos _ | Clause.Builtin _ -> None
    | Clause.Neg b -> (
        (* Unify with the clause literal first so that Var–Var pairs bind
           the clause's (renamed-apart) variables to the atom's terms; the
           residue is then expressed over the query's own variables. *)
        match Unify.atoms b atom with
        | None -> None
        | Some theta ->
            let rest = List.map (apply_subst_literal theta) rest in
            let body = Formula.disj (List.map literal_formula rest) in
            (* Bindings the unifier imposes on the atom's own variables
               become equality preconditions on the query side. *)
            let preconditions =
              List.filter_map
                (fun (x, t) ->
                  if List.mem x atom_vars && not (Term.equal (Term.Var x) t)
                  then Some (Formula.Cmp (Cmp.eq (Term.Var x) t))
                  else None)
                (Subst.to_list theta)
            in
            let extra =
              List.filter
                (fun v -> not (List.mem v atom_vars))
                (Formula.free_vars body)
            in
            let residue = Formula.forall extra body in
            let residue =
              match preconditions with
              | [] -> residue
              | _ -> Formula.Implies (Formula.conj preconditions, residue)
            in
            Some residue)
  in
  let rec each before = function
    | [] -> []
    | lit :: after -> (
        let rest = List.rev_append before after in
        match residue_for lit rest with
        | Some r -> r :: each (lit :: before) after
        | None -> each (lit :: before) after)
  in
  each [] clause.Clause.literals

let for_atom ?suffix atom clauses =
  List.concat_map (of_clause ?suffix atom) clauses
