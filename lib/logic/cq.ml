module Instance = Relational.Instance
module Tvl = Relational.Tvl
module Plan = Relational.Plan
module Columnar = Relational.Columnar

type t = { name : string; head : Term.t list; body : Atom.t list; comps : Cmp.t list }

let c_scan_row = Obs.Counter.make "scan.row"

let make ?(name = "Q") ?(comps = []) head body = { name; head; body; comps }
let arity q = List.length q.head
let head_vars q = Term.vars q.head
let body_vars q = Term.vars (List.concat_map (fun (a : Atom.t) -> a.args) q.body)

let existential_vars q =
  let hv = head_vars q in
  List.filter (fun v -> not (List.mem v hv)) (body_vars q)

let is_boolean q = q.head = []

(* Match one atom against one stored row, extending [env].  A bound variable
   or a constant must match via three-valued equality being definitely true,
   which is what makes NULL unable to satisfy joins. *)
let match_row env (a : Atom.t) row =
  let n = List.length a.args in
  if n <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c ->
              if Tvl.to_bool (Relational.Value.sql_eq c v) then
                go env (i + 1) rest
              else None
          | Term.Var x -> (
              match Binding.find env x with
              | Some bound ->
                  if Tvl.to_bool (Relational.Value.sql_eq bound v) then
                    go env (i + 1) rest
                  else None
              | None -> go (Binding.bind env x v) (i + 1) rest))
    in
    go env 0 a.args

let cmp_ready env (c : Cmp.t) =
  List.for_all (Binding.mem env) (Cmp.vars c)

(* Positions of [a] whose value is already forced: constant arguments,
   variables bound in [env], and unbound variables equated by a pending
   equality comparison to a term that evaluates under [env].  The FD/key
   denials of [Constraints.Ic] join their two atoms through such
   comparisons (disjoint variable sets per atom), so deriving bound
   positions from the pending comparisons is what turns violation search
   into bucketed index probes.  Pruning by these positions is exact: a
   candidate row excluded here would be rejected by [match_row] or by the
   comparison check immediately after it. *)
let bound_pattern env (a : Atom.t) pending =
  let eq_value x =
    List.find_map
      (fun (c : Cmp.t) ->
        if c.op <> Cmp.Eq then None
        else
          match c.left, c.right with
          | Term.Var y, t when String.equal y x -> Binding.term_value env t
          | t, Term.Var y when String.equal y x -> Binding.term_value env t
          | _, _ -> None)
      pending
  in
  List.mapi (fun i t -> (i, t)) a.args
  |> List.filter_map (fun (i, t) ->
         match t with
         | Term.Const c -> Some (i, c)
         | Term.Var x -> (
             match Binding.find env x with
             | Some v -> Some (i, v)
             | None -> Option.map (fun v -> (i, v)) (eq_value x)))

let candidates inst env (a : Atom.t) pending =
  Instance.matching_tuples inst ~rel:a.Atom.rel
    ~bound:(bound_pattern env a pending)

(* Backtracking join: at each step pick the atom with the fewest unbound
   variables (a cheap greedy join order), and check comparisons as soon as
   their variables are bound. *)
let bindings q inst =
  Obs.Counter.incr c_scan_row;
  let eval_comps env pending =
    let ready, rest = List.partition (cmp_ready env) pending in
    if List.for_all (fun c -> Tvl.to_bool (Binding.eval_cmp env c)) ready then
      Some rest
    else None
  in
  let unbound_count env (a : Atom.t) =
    List.length
      (List.filter
         (function Term.Var x -> not (Binding.mem env x) | Term.Const _ -> false)
         a.args)
  in
  let rec search env atoms comps acc =
    match atoms with
    | [] -> env :: acc
    | _ ->
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some a
              | Some b ->
                  if unbound_count env a < unbound_count env b then Some a
                  else best)
            None atoms
        in
        let a = Option.get best in
        let rest = List.filter (fun a' -> a' != a) atoms in
        List.fold_left
          (fun acc (_tid, row) ->
            match match_row env a row with
            | None -> acc
            | Some env' -> (
                match eval_comps env' comps with
                | None -> acc
                | Some pending -> search env' rest pending acc))
          acc
          (candidates inst env a comps)
  in
  match eval_comps Binding.empty q.comps with
  | None -> []
  | Some pending -> List.rev (search Binding.empty q.body pending [])

module Row_set = Set.Make (struct
  type t = Relational.Value.t list

  let compare = List.compare Relational.Value.compare
end)

(* --- compiled columnar evaluation ----------------------------------- *)

(* Union-find canonicalization of Var = Var equality comparisons whose
   variables both occur in the body: merged variables share one plan
   column, turning the equality into a (NULL-rejecting) natural-join
   constraint — the same test the row path applies when it matches a
   bound variable.  An equality between already-merged variables (e.g.
   x = x) stays behind as a residual self-comparison, which rejects
   NULL exactly like [Binding.eval_cmp] would. *)
let rep_table body_vars comps =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when not (String.equal p x) ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
    | _ -> x
  in
  let residual =
    List.filter
      (fun (c : Cmp.t) ->
        match c.op, c.left, c.right with
        | Cmp.Eq, Term.Var x, Term.Var y
          when List.mem x body_vars && List.mem y body_vars ->
            let rx = find x and ry = find y in
            if String.equal rx ry then true
            else begin
              Hashtbl.replace parent rx ry;
              false
            end
        | _ -> true)
      comps
  in
  (find, residual)

let plan_op : Cmp.op -> Plan.op = function
  | Cmp.Eq -> Plan.Eq
  | Cmp.Neq -> Plan.Neq
  | Cmp.Lt -> Plan.Lt
  | Cmp.Le -> Plan.Le
  | Cmp.Gt -> Plan.Gt
  | Cmp.Ge -> Plan.Ge

(* Greedy connected join order: always joins against an input sharing a
   column when one exists, deferring cartesian products to the end. *)
let order_scans = function
  | [] -> invalid_arg "Cq.order_scans: no scans"
  | first :: rest ->
      let rec go plan vars pending =
        match pending with
        | [] -> plan
        | _ ->
            let shares (_, vs) = List.exists (fun v -> List.mem v vars) vs in
            let next, others =
              match List.partition shares pending with
              | n :: ns, os -> (n, ns @ os)
              | [], o :: os -> (o, os)
              | [], [] -> assert false
            in
            go (Plan.Join (plan, fst next)) (snd next @ vars) others
      in
      go (fst first) (snd first) rest

let compile_body inst ~tids atoms comps =
  if atoms = [] then None
  else
    let schema = Instance.schema inst in
    if
      List.exists
        (fun (a : Atom.t) -> not (Relational.Schema.mem schema a.Atom.rel))
        atoms
    then None (* the row path raises on undeclared relations; keep it *)
    else
      let body_vars =
        Term.vars (List.concat_map (fun (a : Atom.t) -> a.args) atoms)
      in
      let find, residual = rep_table body_vars comps in
      (* Comparisons whose variables all occur in the body become filter
         predicates.  The rest never become ready in the row path's
         pending partition and are silently dropped there — mirror that. *)
      let preds =
        List.filter_map
          (fun (c : Cmp.t) ->
            if List.for_all (fun v -> List.mem v body_vars) (Cmp.vars c) then
              let conv = function
                | Term.Const v -> Plan.Const v
                | Term.Var x -> Plan.Col (find x)
              in
              Some
                { Plan.op = plan_op c.op; left = conv c.left; right = conv c.right }
            else None)
          residual
      in
      let scans =
        List.mapi
          (fun i (a : Atom.t) ->
            let args =
              List.map
                (function
                  | Term.Const v -> Plan.Aconst v
                  | Term.Var x -> Plan.Avar (find x))
                a.args
            in
            let tid = if tids then Some (Printf.sprintf "#tid%d" i) else None in
            let scan = Plan.Scan { rel = a.rel; args; tid } in
            (scan, Plan.cols scan))
          atoms
      in
      let joined = order_scans scans in
      let plan = if preds = [] then joined else Plan.Filter (Plan.All preds, joined) in
      Some (plan, find)

(* The compiled path of [answers]: [None] on the shapes the interpreter
   must keep (empty body, unsafe head, undeclared relation). *)
let columnar_answers q inst =
  let head_ok =
    let bv = body_vars q in
    List.for_all (fun v -> List.mem v bv) (head_vars q)
  in
  if not head_ok then None
  else
    match compile_body inst ~tids:false q.body q.comps with
    | None -> None
    | Some (plan, find) ->
        let out_vars =
          List.fold_left
            (fun acc t ->
              match t with
              | Term.Const _ -> acc
              | Term.Var x ->
                  let r = find x in
                  if List.mem r acc then acc else r :: acc)
            [] q.head
          |> List.rev
        in
        let table =
          Plan.run inst (Plan.Distinct (Plan.Project (out_vars, plan)))
        in
        let pos =
          List.map
            (fun t ->
              match t with
              | Term.Const v -> `Const v
              | Term.Var x -> `Col (Columnar.col_index table (find x)))
            q.head
        in
        let rows =
          List.fold_left
            (fun acc row ->
              Row_set.add
                (List.map
                   (function `Const v -> v | `Col i -> row.(i))
                   pos)
                acc)
            Row_set.empty (Columnar.rows table)
        in
        Some (Row_set.elements rows)

let answers q inst =
  match if Columnar.enabled () then columnar_answers q inst else None with
  | Some rows -> rows
  | None ->
      let term_value env = function
        | Term.Const c -> c
        | Term.Var x -> (
            match Binding.find env x with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Cq.answers: unsafe head variable %s in %s" x
                     q.name))
      in
      let rows =
        List.fold_left
          (fun acc env ->
            Row_set.add (List.map (term_value env) q.head) acc)
          Row_set.empty (bindings q inst)
      in
      Row_set.elements rows

let holds q inst = bindings q inst <> []

let substitute s q =
  {
    q with
    head = List.map (Subst.apply_term s) q.head;
    body = List.map (Subst.apply_atom s) q.body;
    comps = List.map (Subst.apply_cmp s) q.comps;
  }

let pp ppf q =
  let pp_terms ppf =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Term.pp ppf
  in
  Format.fprintf ppf "%s(%a) :- %a" q.name pp_terms q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    q.body;
  if q.comps <> [] then
    Format.fprintf ppf ", %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Cmp.pp)
      q.comps
