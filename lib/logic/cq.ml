module Instance = Relational.Instance
module Tvl = Relational.Tvl

type t = { name : string; head : Term.t list; body : Atom.t list; comps : Cmp.t list }

let make ?(name = "Q") ?(comps = []) head body = { name; head; body; comps }
let arity q = List.length q.head
let head_vars q = Term.vars q.head
let body_vars q = Term.vars (List.concat_map (fun (a : Atom.t) -> a.args) q.body)

let existential_vars q =
  let hv = head_vars q in
  List.filter (fun v -> not (List.mem v hv)) (body_vars q)

let is_boolean q = q.head = []

(* Match one atom against one stored row, extending [env].  A bound variable
   or a constant must match via three-valued equality being definitely true,
   which is what makes NULL unable to satisfy joins. *)
let match_row env (a : Atom.t) row =
  let n = List.length a.args in
  if n <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c ->
              if Tvl.to_bool (Relational.Value.sql_eq c v) then
                go env (i + 1) rest
              else None
          | Term.Var x -> (
              match Binding.find env x with
              | Some bound ->
                  if Tvl.to_bool (Relational.Value.sql_eq bound v) then
                    go env (i + 1) rest
                  else None
              | None -> go (Binding.bind env x v) (i + 1) rest))
    in
    go env 0 a.args

let cmp_ready env (c : Cmp.t) =
  List.for_all (Binding.mem env) (Cmp.vars c)

(* Positions of [a] whose value is already forced: constant arguments,
   variables bound in [env], and unbound variables equated by a pending
   equality comparison to a term that evaluates under [env].  The FD/key
   denials of [Constraints.Ic] join their two atoms through such
   comparisons (disjoint variable sets per atom), so deriving bound
   positions from the pending comparisons is what turns violation search
   into bucketed index probes.  Pruning by these positions is exact: a
   candidate row excluded here would be rejected by [match_row] or by the
   comparison check immediately after it. *)
let bound_pattern env (a : Atom.t) pending =
  let eq_value x =
    List.find_map
      (fun (c : Cmp.t) ->
        if c.op <> Cmp.Eq then None
        else
          match c.left, c.right with
          | Term.Var y, t when String.equal y x -> Binding.term_value env t
          | t, Term.Var y when String.equal y x -> Binding.term_value env t
          | _, _ -> None)
      pending
  in
  List.mapi (fun i t -> (i, t)) a.args
  |> List.filter_map (fun (i, t) ->
         match t with
         | Term.Const c -> Some (i, c)
         | Term.Var x -> (
             match Binding.find env x with
             | Some v -> Some (i, v)
             | None -> Option.map (fun v -> (i, v)) (eq_value x)))

let candidates inst env (a : Atom.t) pending =
  Instance.matching_tuples inst ~rel:a.Atom.rel
    ~bound:(bound_pattern env a pending)

(* Backtracking join: at each step pick the atom with the fewest unbound
   variables (a cheap greedy join order), and check comparisons as soon as
   their variables are bound. *)
let bindings q inst =
  let eval_comps env pending =
    let ready, rest = List.partition (cmp_ready env) pending in
    if List.for_all (fun c -> Tvl.to_bool (Binding.eval_cmp env c)) ready then
      Some rest
    else None
  in
  let unbound_count env (a : Atom.t) =
    List.length
      (List.filter
         (function Term.Var x -> not (Binding.mem env x) | Term.Const _ -> false)
         a.args)
  in
  let rec search env atoms comps acc =
    match atoms with
    | [] -> env :: acc
    | _ ->
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some a
              | Some b ->
                  if unbound_count env a < unbound_count env b then Some a
                  else best)
            None atoms
        in
        let a = Option.get best in
        let rest = List.filter (fun a' -> a' != a) atoms in
        List.fold_left
          (fun acc (_tid, row) ->
            match match_row env a row with
            | None -> acc
            | Some env' -> (
                match eval_comps env' comps with
                | None -> acc
                | Some pending -> search env' rest pending acc))
          acc
          (candidates inst env a comps)
  in
  match eval_comps Binding.empty q.comps with
  | None -> []
  | Some pending -> List.rev (search Binding.empty q.body pending [])

module Row_set = Set.Make (struct
  type t = Relational.Value.t list

  let compare = List.compare Relational.Value.compare
end)

let answers q inst =
  let term_value env = function
    | Term.Const c -> c
    | Term.Var x -> (
        match Binding.find env x with
        | Some v -> v
        | None ->
            invalid_arg
              (Printf.sprintf "Cq.answers: unsafe head variable %s in %s" x
                 q.name))
  in
  let rows =
    List.fold_left
      (fun acc env ->
        Row_set.add (List.map (term_value env) q.head) acc)
      Row_set.empty (bindings q inst)
  in
  Row_set.elements rows

let holds q inst = bindings q inst <> []

let substitute s q =
  {
    q with
    head = List.map (Subst.apply_term s) q.head;
    body = List.map (Subst.apply_atom s) q.body;
    comps = List.map (Subst.apply_cmp s) q.comps;
  }

let pp ppf q =
  let pp_terms ppf =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Term.pp ppf
  in
  Format.fprintf ppf "%s(%a) :- %a" q.name pp_terms q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    q.body;
  if q.comps <> [] then
    Format.fprintf ppf ", %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Cmp.pp)
      q.comps
