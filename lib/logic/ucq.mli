(** Unions of conjunctive queries. *)

type t = { name : string; disjuncts : Cq.t list }

val make : ?name:string -> Cq.t list -> t
(** Raises [Invalid_argument] on an empty list or mismatched arities. *)

val of_cq : Cq.t -> t
val arity : t -> int
val answers : t -> Relational.Instance.t -> Relational.Value.t list list
val holds : t -> Relational.Instance.t -> bool
val pp : Format.formatter -> t -> unit
