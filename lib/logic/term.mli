(** First-order terms: variables and constants (database values). *)

type t = Var of string | Const of Relational.Value.t

val var : string -> t
val const : Relational.Value.t -> t
val int : int -> t
val str : string -> t

val is_var : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val vars : t list -> string list
(** Distinct variables, in first-occurrence order. *)
