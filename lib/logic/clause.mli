(** Universal clauses — the clausal form of integrity constraints.

    A clause is an implicitly universally quantified disjunction of
    literals, e.g. the paper's (3) [¬Supply(x,y,z) ∨ Articles(z)] or (5)
    [¬Employee(x,y) ∨ ¬Employee(x,z) ∨ y = z]. *)

type literal = Pos of Atom.t | Neg of Atom.t | Builtin of Cmp.t

type t = { literals : literal list }

val make : literal list -> t
val vars : t -> string list
val negative_atoms : t -> Atom.t list
val rename_apart : suffix:string -> t -> t

val to_formula : t -> Formula.t
(** The universally closed disjunction. *)

val of_formula : Formula.t -> t list option
(** Clausal form of a universal formula: after NNF, universal quantifiers
    are stripped and the matrix is distributed into a conjunction of
    literal disjunctions.  Returns [None] when an existential quantifier
    survives in the NNF (such formulas have no clausal form over the
    schema).  [of_formula (to_formula c) = Some [c]] up to literal order
    and variable renaming. *)

val holds : Relational.Instance.t -> t -> bool
val pp : Format.formatter -> t -> unit
