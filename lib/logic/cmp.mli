(** Built-in comparison literals between terms.

    Evaluated under SQL three-valued logic once ground: any comparison
    touching NULL is [Unknown] (so it never selects). *)

type op = Eq | Neq | Lt | Le | Gt | Ge

type t = { op : op; left : Term.t; right : Term.t }

val make : op -> Term.t -> Term.t -> t
val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
val negate : t -> t
val vars : t -> string list
val eval : Relational.Value.t -> op -> Relational.Value.t -> Relational.Tvl.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit
