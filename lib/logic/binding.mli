(** Ground variable bindings produced by query evaluation. *)

type t

val empty : t
val find : t -> string -> Relational.Value.t option
val bind : t -> string -> Relational.Value.t -> t
val mem : t -> string -> bool

val term_value : t -> Term.t -> Relational.Value.t option
(** The value of a term under the binding; [None] for an unbound variable. *)

val eval_cmp : t -> Cmp.t -> Relational.Tvl.t
(** Raises [Invalid_argument] if a comparison variable is unbound. *)

val to_list : t -> (string * Relational.Value.t) list
val of_list : (string * Relational.Value.t) list -> t
val pp : Format.formatter -> t -> unit
