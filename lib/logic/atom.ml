type t = { rel : string; args : Term.t list }

let make rel args = { rel; args }
let arity a = List.length a.args
let vars a = Term.vars a.args
let is_ground a = List.for_all (fun t -> not (Term.is_var t)) a.args

let to_fact a =
  let values =
    List.map
      (function
        | Term.Const v -> v
        | Term.Var x ->
            invalid_arg
              (Printf.sprintf "Atom.to_fact: non-ground atom (variable %s)" x))
      a.args
  in
  Relational.Fact.make a.rel values

let of_fact (f : Relational.Fact.t) =
  { rel = f.rel; args = Array.to_list (Array.map Term.const f.row) }

let equal a b =
  String.equal a.rel b.rel
  && List.length a.args = List.length b.args
  && List.for_all2 Term.equal a.args b.args

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> List.compare Term.compare a.args b.args
  | c -> c

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    a.args
