(** Causes and responsibilities through repair programs (paper, Section 7,
    Example 7.2).

    For a Boolean conjunctive query Q true in D, the S-repairs of D wrt. the
    denial [κ(Q) = ¬Q] encode the causes: a tuple τ is an actual cause with
    minimal contingency Γ iff D∖(Γ∪{τ}) is an S-repair, and its
    responsibility is 1/(1+|Γ|), maximized over repairs containing τ in the
    deleted set.

    [causes] is brave reasoning on the Ans rules; contingency-set collection
    and the final 1/(1+min) arithmetic replace the DLV-Complex aggregates
    the paper uses (see DESIGN.md). *)

val kappa : Logic.Cq.t -> Constraints.Ic.t
(** The denial constraint associated to a Boolean CQ. *)

val cause_program :
  Relational.Schema.t -> Logic.Cq.t -> Asp.Syntax.t
(** Repair program of [κ(Q)] extended with Ans and CauCon rules. *)

val causes :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.t list
(** Tids that are actual causes for the query being true (brave Ans). *)

val cau_con_pairs :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  (Relational.Tid.t * Relational.Tid.t) list
(** All CauCon(t, t') pairs derived bravely: t is a cause, t' is deleted
    together with t in some repair. *)

val responsibilities :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  (Relational.Tid.t * float) list
(** Responsibility of every actual cause, via minimum contingency-set size
    across stable models. *)
