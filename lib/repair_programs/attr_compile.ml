module Schema = Relational.Schema
module Instance = Relational.Instance
module Tid = Relational.Tid
module Fact = Relational.Fact
module Value = Relational.Value
module Term = Logic.Term
module Atom = Logic.Atom
module Ic = Constraints.Ic

let change_pred = "_chg"

(* Positions of each denial atom whose change to NULL breaks the
   violation: constants, join variables (occurring at least twice in the
   body) and comparison variables. *)
let breakable_positions (d : Ic.denial) =
  let occurrences = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      List.iter
        (function
          | Term.Var v ->
              Hashtbl.replace occurrences v
                (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences v))
          | Term.Const _ -> ())
        a.args)
    d.atoms;
  let comp_vars = List.concat_map Logic.Cmp.vars d.comps in
  List.map
    (fun (a : Atom.t) ->
      List.mapi (fun i t -> (i, t)) a.args
      |> List.filter_map (fun (i, t) ->
             let breaks =
               match t with
               | Term.Const _ -> true
               | Term.Var v ->
                   Option.value ~default:0 (Hashtbl.find_opt occurrences v) >= 2
                   || List.mem v comp_vars
             in
             if breaks then Some i else None))
    d.atoms

let violation_rule (d : Ic.denial) =
  let tid_var i = Term.Var (Printf.sprintf "_t%d" i) in
  let body =
    List.mapi
      (fun i (a : Atom.t) -> Atom.make a.rel (tid_var i :: a.args))
      d.atoms
  in
  let head =
    List.concat
      (List.mapi
         (fun i positions ->
           List.map
             (fun p ->
               Atom.make change_pred [ tid_var i; Term.int (p + 1) ])
             positions)
         (breakable_positions d))
  in
  Asp.Syntax.rule ~comps:d.comps head body

let program schema ics =
  let denials =
    List.concat_map
      (fun ic ->
        match Ic.to_denials schema ic with
        | Some ds -> ds
        | None ->
            invalid_arg
              (Printf.sprintf "Attr_compile: %s is not denial-class" (Ic.name ic)))
      ics
  in
  Asp.Syntax.program (List.map violation_rule denials)

let change_sets inst schema ics =
  let models =
    Asp.Stable.models (program schema ics) (Compile.edb_of_instance inst)
  in
  List.map
    (fun model ->
      Fact.Set.fold
        (fun (f : Fact.t) acc ->
          if String.equal f.rel change_pred then
            match f.row.(0), f.row.(1) with
            | Value.Int t, Value.Int p ->
                Tid.Cell.Set.add (Tid.Cell.make (Tid.of_int t) p) acc
            | _ -> acc
          else acc)
        model Tid.Cell.Set.empty)
    models
  |> List.sort_uniq Tid.Cell.Set.compare

let repairs inst schema ics =
  List.map
    (fun changes ->
      {
        Repairs.Attr_repair.changes;
        repaired =
          Repairs.Attr_repair.apply_changes inst (Tid.Cell.Set.elements changes);
      })
    (change_sets inst schema ics)
