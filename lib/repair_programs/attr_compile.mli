(** Repair programs for attribute-level null-based repairs (paper, Sections
    4.3 and 7.1; the programs of [15]).

    Encoding: a change atom [_chg(t, p)] states that the cell at 1-based
    position p of the tuple with tid t is replaced by NULL.  For each
    denial constraint, a disjunctive rule offers, for every violation, the
    alternative cell changes that break it — a cell breaks a violation when
    its position carries a constant of the constraint, a join variable, or
    a comparison variable.  Stable-model minimality then yields exactly the
    set-inclusion-minimal change sets, i.e. the attribute repairs of
    {!Repairs.Attr_repair} (the correspondence is property-tested). *)

val change_pred : string

val program : Relational.Schema.t -> Constraints.Ic.t list -> Asp.Syntax.t
(** Raises [Invalid_argument] on non-denial-class constraints. *)

val change_sets :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Tid.Cell.Set.t list
(** The minimal change sets, one per stable model, in stable order. *)

val repairs :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Repairs.Attr_repair.t list
(** Change sets applied to the instance. *)
