(** CQA through repair programs: repairs are the stable models, consistent
    answers are the cautious consequences (paper, Section 3.3; the ConsEx
    architecture of [43] with our ASP engine in place of DLV). *)

val repairs :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t list
(** The S-repairs, read off the stable models of the repair program.
    Denial-class constraints only. *)

val c_repairs :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t list
(** C-repairs, read off the weak-constraint-optimal stable models. *)

val consistent_answers :
  ?semantics:[ `S | `C ] ->
  Logic.Cq.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t ->
  Relational.Value.t list list
(** Cautious answers of the query rules over the repair program ([`S],
    default) or its weak-constraint extension ([`C]). *)

val consistent_answers_ucq :
  ?semantics:[ `S | `C ] ->
  Logic.Ucq.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t ->
  Relational.Value.t list list
(** Union of conjunctive queries: one query rule per disjunct, cautious
    reasoning on the shared answer predicate. *)
