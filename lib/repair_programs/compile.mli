(** Compile denial-class integrity constraints into repair programs
    (paper, Section 3.3, Example 3.5).

    Encoding: a database relation [R] of arity n becomes an EDB predicate
    [R] of arity n+1 whose first argument is the global tid; its annotated
    nickname [R'] has arity n+2, the last argument being the annotation
    constant [d] (deleted) or [s] (stays).  For each denial constraint, a
    disjunctive rule offers the alternative deletions resolving each
    violation; inertia rules keep undeleted tuples.

    The stable models of the program over the instance's facts are in
    one-to-one correspondence with the S-repairs: a repair is read off a
    model by keeping the tuples annotated [s].

    NULL is treated as an ordinary constant by the program (the logic
    reconstruction of SQL nulls from [24] adds explicit non-null guards; we
    restrict repair programs to NULL-free instances, which is what the
    paper's Section 3.3 examples assume). *)

val anno_deleted : Logic.Term.t
val anno_stays : Logic.Term.t

val primed : string -> string
(** The annotated nickname of a relation ([R] ↦ [R']). *)

val tid_value : Relational.Tid.t -> Relational.Value.t

val edb_of_instance : Relational.Instance.t -> Relational.Fact.t list
(** Tid-extended facts [R(t; ā)]. *)

val repair_rules : Relational.Schema.t -> Constraints.Ic.t list -> Asp.Syntax.rule list
(** Disjunctive violation rules plus inertia rules for every relation of
    the schema.  Raises [Invalid_argument] on non-denial-class
    constraints. *)

val repair_program : Relational.Schema.t -> Constraints.Ic.t list -> Asp.Syntax.t

val c_repair_program :
  Relational.Schema.t -> Constraints.Ic.t list -> Asp.Syntax.t
(** [repair_program] plus the weak constraints of Example 4.2, so that
    optimal stable models are the C-repairs. *)

val query_rules : Logic.Cq.t -> pred:string -> Asp.Syntax.rule list
(** Rules collecting the query's answers over the repaired ([s]-annotated)
    relations into [pred]. *)

val repair_of_model :
  Relational.Instance.t -> Asp.Stable.model -> Relational.Instance.t
(** Read a repair off a stable model by keeping the [s]-annotated tuples. *)
