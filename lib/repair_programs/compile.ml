module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Fact = Relational.Fact
module Value = Relational.Value
module Term = Logic.Term
module Atom = Logic.Atom
module Ic = Constraints.Ic

let anno_deleted = Term.Const (Value.str "d")
let anno_stays = Term.Const (Value.str "s")
let primed rel = rel ^ "'"
let tid_value tid = Value.Int (Tid.to_int tid)

let edb_of_instance inst =
  Instance.fold_facts
    (fun tid (f : Fact.t) acc ->
      Fact.make f.rel (tid_value tid :: Array.to_list f.row) :: acc)
    inst []
  |> List.rev

let tid_var i = Term.Var (Printf.sprintf "_t%d" i)

let violation_rule (d : Ic.denial) =
  let body =
    List.mapi
      (fun i (a : Atom.t) -> Atom.make a.rel (tid_var i :: a.args))
      d.atoms
  in
  let head =
    List.mapi
      (fun i (a : Atom.t) ->
        Atom.make (primed a.rel) ((tid_var i :: a.args) @ [ anno_deleted ]))
      d.atoms
  in
  Asp.Syntax.rule ~comps:d.comps head body

let row_vars n = List.init n (fun i -> Term.Var (Printf.sprintf "_x%d" i))

let inertia_rules schema =
  List.map
    (fun (r : Schema.relation) ->
      let xs = row_vars (Array.length r.attributes) in
      let t = Term.Var "_t" in
      Asp.Syntax.rule
        ~neg:[ Atom.make (primed r.name) ((t :: xs) @ [ anno_deleted ]) ]
        [ Atom.make (primed r.name) ((t :: xs) @ [ anno_stays ]) ]
        [ Atom.make r.name (t :: xs) ])
    (Schema.relations schema)

let repair_rules schema ics =
  let denials =
    List.concat_map
      (fun ic ->
        match Ic.to_denials schema ic with
        | Some ds -> ds
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Repair_programs.Compile: %s is not a denial-class constraint"
                 (Ic.name ic)))
      ics
  in
  List.map violation_rule denials @ inertia_rules schema

let repair_program schema ics = Asp.Syntax.program (repair_rules schema ics)

let c_repair_program schema ics =
  let weaks =
    List.map
      (fun (r : Schema.relation) ->
        let xs = row_vars (Array.length r.attributes) in
        Asp.Syntax.weak
          [ Atom.make (primed r.name) ((Term.Var "_t" :: xs) @ [ anno_deleted ]) ])
      (Schema.relations schema)
  in
  Asp.Syntax.program ~weaks (repair_rules schema ics)

let query_rules (q : Logic.Cq.t) ~pred =
  let body =
    List.mapi
      (fun i (a : Atom.t) ->
        Atom.make (primed a.rel)
          ((Term.Var (Printf.sprintf "_q%d" i) :: a.args) @ [ anno_stays ]))
      q.body
  in
  [ Asp.Syntax.rule ~comps:q.comps [ Atom.make pred q.head ] body ]

let repair_of_model original model =
  let schema = Instance.schema original in
  let is_primed rel =
    String.length rel > 1 && rel.[String.length rel - 1] = '\''
  in
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      let n = Array.length f.row in
      if
        is_primed f.rel && n >= 2
        && Value.equal f.row.(n - 1) (Value.str "s")
      then
        let rel = String.sub f.rel 0 (String.length f.rel - 1) in
        let args = Array.to_list (Array.sub f.row 1 (n - 2)) in
        Instance.add acc (Fact.make rel args)
      else acc)
    model (Instance.create schema)
