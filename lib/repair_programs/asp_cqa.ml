let answer_pred = "_ans"

let repairs inst schema ics =
  let program = Compile.repair_program schema ics in
  let edb = Compile.edb_of_instance inst in
  List.map (Compile.repair_of_model inst) (Asp.Stable.models program edb)

let c_repairs inst schema ics =
  let program = Compile.c_repair_program schema ics in
  let edb = Compile.edb_of_instance inst in
  List.map
    (fun (_w, m) -> Compile.repair_of_model inst m)
    (Asp.Stable.optimal_models program edb)

let with_query_rules ?(semantics = `S) query_rules schema ics inst =
  let base =
    match semantics with
    | `S -> Compile.repair_program schema ics
    | `C -> Compile.c_repair_program schema ics
  in
  let program =
    Asp.Syntax.program ~weaks:base.Asp.Syntax.weaks
      (base.Asp.Syntax.rules @ query_rules)
  in
  let edb = Compile.edb_of_instance inst in
  match semantics with
  | `S -> Asp.Reason.cautious_rows program edb ~pred:answer_pred
  | `C -> Asp.Reason.optimal_cautious_rows program edb ~pred:answer_pred

let consistent_answers ?semantics q schema ics inst =
  with_query_rules ?semantics
    (Compile.query_rules q ~pred:answer_pred)
    schema ics inst

let consistent_answers_ucq ?semantics (u : Logic.Ucq.t) schema ics inst =
  let rules =
    List.concat_map
      (fun q -> Compile.query_rules q ~pred:answer_pred)
      u.Logic.Ucq.disjuncts
  in
  with_query_rules ?semantics rules schema ics inst
