module Instance = Relational.Instance
module Schema = Relational.Schema
module Tid = Relational.Tid
module Fact = Relational.Fact
module Value = Relational.Value
module Term = Logic.Term
module Atom = Logic.Atom
module Cmp = Logic.Cmp

let kappa (q : Logic.Cq.t) =
  Constraints.Ic.denial ~name:("kappa_" ^ q.name) ~comps:q.comps q.body

let ans_pred = "_cause"
let caucon_pred = "_caucon"

(* One Ans rule per relation occurring in the query: any deleted tuple of
   those relations is a cause candidate. *)
let ans_rules schema (q : Logic.Cq.t) =
  let rels =
    List.sort_uniq String.compare
      (List.map (fun (a : Atom.t) -> a.rel) q.body)
  in
  List.map
    (fun rel ->
      let n = Schema.arity schema rel in
      let xs = List.init n (fun i -> Term.Var (Printf.sprintf "_x%d" i)) in
      let t = Term.Var "_t" in
      Asp.Syntax.rule
        [ Atom.make ans_pred [ t ] ]
        [ Atom.make (Compile.primed rel) ((t :: xs) @ [ Compile.anno_deleted ]) ])
    rels

(* CauCon(t, t') for every ordered pair of query relations: both deleted in
   the same model, t ≠ t'. *)
let caucon_rules schema (q : Logic.Cq.t) =
  let rels =
    List.sort_uniq String.compare
      (List.map (fun (a : Atom.t) -> a.rel) q.body)
  in
  List.concat_map
    (fun rel_a ->
      List.map
        (fun rel_b ->
          let na = Schema.arity schema rel_a and nb = Schema.arity schema rel_b in
          let xs = List.init na (fun i -> Term.Var (Printf.sprintf "_x%d" i)) in
          let ys = List.init nb (fun i -> Term.Var (Printf.sprintf "_y%d" i)) in
          let t = Term.Var "_t" and t' = Term.Var "_t2" in
          Asp.Syntax.rule
            ~comps:[ Cmp.neq t t' ]
            [ Atom.make caucon_pred [ t; t' ] ]
            [
              Atom.make (Compile.primed rel_a)
                ((t :: xs) @ [ Compile.anno_deleted ]);
              Atom.make (Compile.primed rel_b)
                ((t' :: ys) @ [ Compile.anno_deleted ]);
            ])
        rels)
    rels

let cause_program schema q =
  let base = Compile.repair_program schema [ kappa q ] in
  Asp.Syntax.program
    (base.Asp.Syntax.rules @ ans_rules schema q @ caucon_rules schema q)

let tid_of_value = function
  | Value.Int i -> Tid.of_int i
  | _ -> invalid_arg "Cause_rules: malformed tid"

let models inst schema q =
  Asp.Stable.models (cause_program schema q) (Compile.edb_of_instance inst)

let causes inst schema q =
  let ms = models inst schema q in
  List.fold_left
    (fun acc m ->
      Fact.Set.fold
        (fun (f : Fact.t) acc ->
          if String.equal f.rel ans_pred then
            let tid = tid_of_value f.row.(0) in
            if List.mem tid acc then acc else tid :: acc
          else acc)
        m acc)
    [] ms
  |> List.sort Tid.compare

let cau_con_pairs inst schema q =
  let ms = models inst schema q in
  List.fold_left
    (fun acc m ->
      Fact.Set.fold
        (fun (f : Fact.t) acc ->
          if String.equal f.rel caucon_pred then
            let pair = (tid_of_value f.row.(0), tid_of_value f.row.(1)) in
            if List.mem pair acc then acc else pair :: acc
          else acc)
        m acc)
    [] ms
  |> List.sort compare

let responsibilities inst schema q =
  let ms = models inst schema q in
  (* Per model, the deleted set; a cause's contingency in that model is the
     deleted set minus itself. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let deleted =
        Fact.Set.fold
          (fun (f : Fact.t) acc ->
            if String.equal f.rel ans_pred then tid_of_value f.row.(0) :: acc
            else acc)
          m []
      in
      let size = List.length deleted in
      List.iter
        (fun tid ->
          let best = Option.value ~default:max_int (Hashtbl.find_opt tbl tid) in
          if size - 1 < best then Hashtbl.replace tbl tid (size - 1))
        deleted)
    ms;
  Hashtbl.fold (fun tid gamma acc -> (tid, 1.0 /. float_of_int (1 + gamma)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
