(** Named counters, gauges and latency histograms — the telemetry half
    of [lib/obs].

    A registry is a plain value; the solver stack writes through the
    {e current} registry, which a service owner (the server handler, a
    test) can swap with {!set_current}.  Swapping bumps an epoch so that
    the cached cells inside {!Counter} handles re-resolve on their next
    use — probes never write into a registry nobody is watching. *)

type t

val create : unit -> t

val current : unit -> t
(** The registry solver probes write into right now. *)

val set_current : t -> unit
(** Install [t] as the current registry and bump the swap epoch. *)

val swap_epoch : unit -> int
(** Monotone epoch, bumped by every {!set_current}; {!Counter} handles
    compare it to decide whether their cached cell is still valid. *)

(** {1 Counters} *)

val counter_cell : t -> string -> int ref
(** The cell for a named counter, created at zero on first use.  Prefer
    {!Counter.make}/{!Counter.incr} on hot paths. *)

val counter_value : t -> string -> int
(** Zero when the counter was never touched. *)

val counters_list : t -> (string * int) list
(** All counters, sorted by name. *)

val counter_snapshot : t -> (string * int) list
(** Same as {!counters_list}; pair it with {!counter_delta} to meter one
    request. *)

val counter_delta : since:(string * int) list -> t -> (string * int) list
(** Counters whose value changed since the snapshot, with the change. *)

type counter_baseline

val counter_baseline : ?reuse:counter_baseline -> t -> counter_baseline
(** A cheap point-in-time capture of every counter (one int array over
    the registry's cached cell table — no per-counter allocation).  The
    per-request metering path: take one before dispatch, read the
    changes after with {!counter_delta_since}.  Passing the previous
    capture as [reuse] refreshes it in place (zero allocation) when the
    cell table has not changed; the returned value must then replace the
    caller's reference, as it may or may not be [reuse] itself. *)

val counter_delta_since : counter_baseline -> t -> (string * int) list
(** Counters whose value moved since the baseline, sorted by name;
    allocates only for the movers.  Counters created after the baseline
    are reported in full. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option
val gauges_list : t -> (string * float) list

(** {1 Histograms} *)

type histogram

val histogram : ?bounds:float array -> t -> string -> histogram
(** The named histogram, created on first use.  [bounds] are strictly
    increasing upper bounds in seconds (default: decades from 1 µs to
    10 s); one overflow bucket is appended. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_mean : histogram -> float

val hist_sum : histogram -> float
(** Sum of every observed value, in seconds. *)

val hist_bounds : histogram -> float array
(** A copy of the upper bounds (seconds, strictly increasing); the
    implicit overflow bucket is not included. *)

val hist_raw_buckets : histogram -> int array
(** A copy of the per-bucket (non-cumulative) counts; one longer than
    {!hist_bounds}, the last entry being the overflow bucket. *)

val hist_buckets : histogram -> (string * int) list
(** Labelled bucket counts, e.g. [("lt_1us", 0); ...; ("ge_10s", 0)]. *)

val quantile : histogram -> float -> float
(** Estimated q-quantile in seconds: linear interpolation inside the
    covering bucket; the unbounded overflow bucket reports its lower
    bound.  0 on an empty histogram. *)

val histograms_list : t -> (string * histogram) list

val render_histogram : string -> histogram -> string
(** One line:
    [name count=N mean_us=M p50_us=A p95_us=B p99_us=C hist=lt_1us:0,...]. *)

val render : t -> string list
(** One [name value] line per counter and gauge and one
    {!render_histogram} line per histogram, merged and sorted by name —
    the order is deterministic, so dumps diff stably. *)
