(** A handle on a named counter of the {e current} {!Registry}.

    Make the handle once at module initialization; [incr]/[add] then
    cost two loads, a comparison and an in-place increment — the cell is
    re-resolved only after {!Registry.set_current} swaps the registry.
    No allocation on the steady-state path, so probes stay on even when
    tracing is disabled. *)

type t

val make : string -> t
(** A handle for the counter named [s]; the cell binds lazily on first
    use. *)

val name : t -> string
val incr : t -> unit
val add : t -> int -> unit

val value : t -> int
(** The counter's value in the current registry. *)
