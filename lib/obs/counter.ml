(* A named counter handle: the cell of the current registry, cached and
   re-resolved only when the registry is swapped.  After the first use
   an [incr] is two loads, one comparison and one in-place increment —
   no allocation — which is what lets the solver stack keep its probes
   on even when tracing is off. *)

type t = {
  name : string;
  mutable cell : int ref;
  mutable epoch : int;
}

let make name = { name; cell = ref 0; epoch = min_int }

let cell c =
  let e = Registry.swap_epoch () in
  if c.epoch <> e then begin
    c.cell <- Registry.counter_cell (Registry.current ()) c.name;
    c.epoch <- e
  end;
  c.cell

let name c = c.name
let incr c = Stdlib.incr (cell c)

let add c n =
  let r = cell c in
  r := !r + n

let value c = !(cell c)
