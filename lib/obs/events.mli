(** Structured JSONL event log — the third leg of [lib/obs], next to
    spans ({!Trace}) and metrics ({!Registry}).

    A sink turns [emit] calls into one JSON object per line:

    {v
    {"ev":"request","ts_us":1234,"req":7,"command":"QUERY","status":"ok",...}
    v}

    Timestamps ([ts_us], integer microseconds since the sink was
    created) are clamped to be non-decreasing, so the log never runs
    backwards even if the wall clock does.  The sink also hands out the
    per-request ids that the serving layer threads through span
    attributes and event fields, which is what lets a slow-query record
    be joined back to its trace.

    Writes are flushed per line: a sink killed by a signal loses at most
    the line being written. *)

type sink

(** Field values; [Raw] is pre-rendered JSON spliced in verbatim (lists,
    nested objects), everything else is escaped/formatted here. *)
type value = Str of string | Int of int | Float of float | Bool of bool | Raw of string

val make :
  ?clock:(unit -> float) ->
  ?wall:(unit -> float) ->
  ?close:(unit -> unit) ->
  (string -> unit) ->
  sink
(** A sink over a line writer (the line does not include the newline).
    [clock] (default [Unix.gettimeofday]) is stubbed by tests; [wall]
    (default [clock]) is the wall clock {!anchor} reads; [close] runs
    once when {!close} is called. *)

val open_file : ?clock:(unit -> float) -> string -> sink
(** A sink appending to [path], creating it if needed; every line is
    flushed as it is written. *)

val stderr_sink : ?clock:(unit -> float) -> unit -> sink
(** A sink writing lines to standard error. *)

val null : sink
(** Discards everything (still hands out request ids). *)

val emit : sink -> ?req:int -> ?fields:(string * value) list -> string -> unit
(** [emit sink ev] writes one event object with type [ev], the
    monotonic [ts_us], the request id [req] when given, and [fields] in
    order.  Never raises: a failing writer drops the line. *)

val anchor : ?label:string -> sink -> unit
(** Write one ["anchor"] event carrying the {e wall-clock} time as an
    integer [wall_ms] (epoch milliseconds, from the sink's [wall]
    clock).  [ts_us] stays monotonic like every other event; the anchor
    is the bridge that lets logs from different processes — whose
    monotonic origins differ — be correlated on a shared wall clock.
    Emit one at startup and at every flush/rotation point. *)

val next_request_id : sink -> int
(** A fresh id, starting at 1 and increasing. *)

val emitted : sink -> int
(** Events written so far (for tests and STATS). *)

val close : sink -> unit
(** Run the sink's close hook; idempotent.  Later emits are dropped. *)
