(* JSONL event sink.  The JSON is hand-rolled through Export's string
   helpers, like every other exporter in lib/obs. *)

type value = Str of string | Int of int | Float of float | Bool of bool | Raw of string

type sink = {
  write : string -> unit;
  on_close : unit -> unit;
  clock : unit -> float;
  wall : unit -> float;
  t0 : float;
  mutable last : float; (* clamp: timestamps never decrease *)
  mutable next_id : int;
  mutable emitted : int;
  mutable closed : bool;
}

let make ?(clock = Unix.gettimeofday) ?wall ?(close = fun () -> ()) write =
  let t0 = clock () in
  let wall = match wall with Some w -> w | None -> clock in
  {
    write;
    on_close = close;
    clock;
    wall;
    t0;
    last = t0;
    next_id = 0;
    emitted = 0;
    closed = false;
  }

let open_file ?clock path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  make ?clock
    ~close:(fun () -> close_out_noerr oc)
    (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let stderr_sink ?clock () =
  make ?clock (fun line ->
      output_string stderr line;
      output_char stderr '\n';
      flush stderr)

let null = make ~clock:(fun () -> 0.0) (fun _ -> ())

let render_value = function
  | Str s -> Export.json_string s
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f
      else Export.json_string (string_of_float f)
  | Bool b -> string_of_bool b
  | Raw json -> json

let now sink =
  let t = sink.clock () in
  let t = if t > sink.last then t else sink.last in
  sink.last <- t;
  t

let emit sink ?req ?(fields = []) ev =
  if not sink.closed then begin
    let ts_us = int_of_float ((now sink -. sink.t0) *. 1e6) in
    let parts =
      Printf.sprintf "\"ev\":%s" (Export.json_string ev)
      :: Printf.sprintf "\"ts_us\":%d" ts_us
      :: (match req with
         | Some id -> [ Printf.sprintf "\"req\":%d" id ]
         | None -> [])
      @ List.map
          (fun (k, v) ->
            Printf.sprintf "%s:%s" (Export.json_string k) (render_value v))
          fields
    in
    let line = "{" ^ String.concat "," parts ^ "}" in
    (try sink.write line with _ -> ());
    sink.emitted <- sink.emitted + 1
  end

let anchor ?label sink =
  (* Integer milliseconds: the Float renderer's %.6g would truncate an
     epoch timestamp to ~1000 s resolution. *)
  let wall_ms = int_of_float (Float.round (sink.wall () *. 1e3)) in
  let fields =
    ("wall_ms", Int wall_ms)
    :: (match label with Some l -> [ ("label", Str l) ] | None -> [])
  in
  emit sink ~fields "anchor"

let next_request_id sink =
  sink.next_id <- sink.next_id + 1;
  sink.next_id

let emitted sink = sink.emitted

let close sink =
  if not sink.closed then begin
    sink.closed <- true;
    try sink.on_close () with _ -> ()
  end
