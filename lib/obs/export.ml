(* Exporters for collected spans: a human-readable tree, JSON-lines, and
   the Chrome trace_event format (load chrome://tracing or
   https://ui.perfetto.dev and drop the file in).  All JSON is written
   by hand — lib/obs stays dependency-free. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let pp_duration s =
  if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

(* Children grouped by parent id, in start order.  Spans whose parent
   was dropped (sink limit, partial drain) are treated as roots. *)
let tree_of spans =
  let ids = Hashtbl.create 64 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace ids sp.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun (sp : Trace.span) ->
        if sp.parent <> 0 && Hashtbl.mem ids sp.parent then begin
          Hashtbl.replace children sp.parent
            (sp
            :: Option.value ~default:[] (Hashtbl.find_opt children sp.parent));
          false
        end
        else true)
      spans
  in
  let children_of id =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt children id))
  in
  (roots, children_of)

let attrs_suffix (sp : Trace.span) =
  List.rev_map (fun (k, v) -> Printf.sprintf " %s=%s" k v) sp.attrs
  |> List.rev |> String.concat ""

let tree spans =
  let roots, children_of = tree_of spans in
  let lines = ref [] in
  let rec render depth (sp : Trace.span) =
    lines :=
      Printf.sprintf "%s%s %s%s"
        (String.make (2 * depth) ' ')
        sp.name
        (pp_duration (Trace.duration sp))
        (attrs_suffix sp)
      :: !lines;
    List.iter (render (depth + 1)) (children_of sp.id)
  in
  List.iter (render 0) roots;
  List.rev !lines

let base_time spans =
  List.fold_left
    (fun acc (sp : Trace.span) -> Float.min acc sp.t0)
    infinity spans

let jsonl spans =
  let base = base_time spans in
  List.map
    (fun (sp : Trace.span) ->
      let attrs =
        List.rev_map
          (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
          sp.attrs
        |> List.rev |> String.concat ","
      in
      Printf.sprintf
        "{\"id\":%d,\"parent\":%d,\"name\":%s,\"ts_us\":%.1f,\"dur_us\":%.1f,\"attrs\":{%s}}"
        sp.id sp.parent (json_string sp.name)
        ((sp.t0 -. base) *. 1e6)
        (Trace.duration sp *. 1e6)
        attrs)
    spans

(* Chrome trace_event JSON with duration (B/E) events.  Events are
   emitted by walking the span tree — B(parent), children, E(parent) —
   so begins and ends always balance and nest, which is what the viewer
   (and the qcheck property in the test suite) requires. *)
let chrome spans =
  let base = base_time spans in
  let roots, children_of = tree_of spans in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let event fields =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_char b '{';
    Buffer.add_string b (String.concat "," fields);
    Buffer.add_char b '}'
  in
  let rec emit (sp : Trace.span) =
    let args =
      List.rev_map
        (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
        sp.attrs
      |> List.rev |> String.concat ","
    in
    event
      [
        Printf.sprintf "\"name\":%s" (json_string sp.name);
        "\"cat\":\"cqa\"";
        "\"ph\":\"B\"";
        Printf.sprintf "\"ts\":%.1f" ((sp.t0 -. base) *. 1e6);
        "\"pid\":1";
        "\"tid\":1";
        Printf.sprintf "\"args\":{%s}" args;
      ];
    List.iter emit (children_of sp.id);
    event
      [
        Printf.sprintf "\"name\":%s" (json_string sp.name);
        "\"cat\":\"cqa\"";
        "\"ph\":\"E\"";
        Printf.sprintf "\"ts\":%.1f"
          ((Float.max sp.t0 sp.t1 -. base) *. 1e6);
        "\"pid\":1";
        "\"tid\":1";
      ]
  in
  List.iter emit roots;
  Buffer.add_string b "]}";
  Buffer.contents b
