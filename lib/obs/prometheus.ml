(* Prometheus text exposition (version 0.0.4).  Kept dependency-free
   like the rest of lib/obs: the format is all string concatenation,
   and the only subtlety is that registry histograms store per-bucket
   counts while Prometheus wants cumulative ones. *)

let is_name_char extra c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || extra c

let mangle ~allow_colon s =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s + 1) in
    (match s.[0] with '0' .. '9' -> Buffer.add_char b '_' | _ -> ());
    String.iter
      (fun c ->
        if is_name_char (fun c -> allow_colon && c = ':') c then
          Buffer.add_char b c
        else Buffer.add_char b '_')
      s;
    Buffer.contents b
  end

let mangle_name = mangle ~allow_colon:true

let mangle_label_name s =
  let m = mangle ~allow_colon:false s in
  (* "__"-prefixed label names are reserved for Prometheus internals. *)
  if String.length m >= 2 && m.[0] = '_' && m.[1] = '_' then "x" ^ m else m

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let number x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

let sample ?(labels = []) name value =
  let name = mangle_name name in
  match labels with
  | [] -> Printf.sprintf "%s %s" name value
  | _ ->
      let ls =
        List.map
          (fun (k, v) ->
            Printf.sprintf "%s=\"%s\"" (mangle_label_name k)
              (escape_label_value v))
          labels
      in
      Printf.sprintf "%s{%s} %s" name (String.concat "," ls) value

(* One family: the TYPE header plus its samples. *)
let family buf name kind samples =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" (mangle_name name) kind);
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    samples

let histogram_samples name h =
  let bounds = Registry.hist_bounds h in
  let counts = Registry.hist_raw_buckets h in
  let cum = ref 0 in
  let buckets =
    List.concat
      [
        List.mapi
          (fun i bound ->
            cum := !cum + counts.(i);
            sample
              ~labels:[ ("le", number bound) ]
              (name ^ "_bucket")
              (string_of_int !cum))
          (Array.to_list bounds);
        [
          sample
            ~labels:[ ("le", "+Inf") ]
            (name ^ "_bucket")
            (string_of_int (Registry.hist_count h));
        ];
      ]
  in
  buckets
  @ [
      sample (name ^ "_sum") (number (Registry.hist_sum h));
      sample (name ^ "_count") (string_of_int (Registry.hist_count h));
    ]

let render ?(namespace = "cqa_") registry =
  let named kind = List.map (fun (n, v) -> (namespace ^ n, kind, v)) in
  let families =
    List.concat
      [
        named `Counter
          (List.map
             (fun (n, v) -> (n, `Int v))
             (Registry.counters_list registry));
        named `Gauge
          (List.map
             (fun (n, v) -> (n, `Float v))
             (Registry.gauges_list registry));
        named `Histogram
          (List.map
             (fun (n, h) -> (n, `Hist h))
             (Registry.histograms_list registry));
      ]
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, kind, value) ->
      match (kind, value) with
      | `Counter, `Int v -> family buf name "counter" [ sample name (string_of_int v) ]
      | `Gauge, `Float v -> family buf name "gauge" [ sample name (number v) ]
      | `Histogram, `Hist h -> family buf name "histogram" (histogram_samples name h)
      | _ -> ())
    families;
  Buffer.contents buf
