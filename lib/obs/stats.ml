(* Bounded statements store for workload introspection: per
   (fingerprint, plan-branch) aggregates with deterministic eviction,
   plus eviction-proof per-branch and per-phase cost centers. *)

(* Latency decades, 1 µs .. 10 s; the final array slot is the overflow
   bucket.  Matches the Registry histogram default so operators read the
   same shape everywhere. *)
let bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let n_buckets = Array.length bounds + 1

let bucket_of v =
  let rec go i = if i >= Array.length bounds || v <= bounds.(i) then i else go (i + 1) in
  go 0

(* A small standalone histogram (count, sum, decade buckets).  Entries
   embed one rather than using Registry histograms because store entries
   are evictable and the registry has no removal. *)
type hist = { mutable h_count : int; mutable h_sum : float; h_buckets : int array }

let hist_make () = { h_count = 0; h_sum = 0.0; h_buckets = Array.make n_buckets 0 }

let hist_observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let hist_quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let target = q *. float_of_int h.h_count in
    let rec go i acc =
      if i >= n_buckets then bounds.(Array.length bounds - 1)
      else begin
        let acc' = acc + h.h_buckets.(i) in
        if float_of_int acc' >= target && h.h_buckets.(i) > 0 then
          if i >= Array.length bounds then bounds.(Array.length bounds - 1)
          else begin
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            let hi = bounds.(i) in
            lo
            +. (hi -. lo)
               *. ((target -. float_of_int acc) /. float_of_int h.h_buckets.(i))
          end
        else go (i + 1) acc'
      end
    in
    go 0 0
  end

type cache_outcome = Hit | Miss | Uncached

type entry = {
  fingerprint : string;
  branch : string;
  mutable calls : int;
  mutable errors : int;
  mutable wall_s : float;
  mutable max_s : float;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rows : int;
  mutable phase_s : (string * float) list;
  mutable counters : (string * int) list;
  buckets : int array;
}

(* Eviction-proof per-branch cost center. *)
type center = {
  mutable c_calls : int;
  mutable c_errors : int;
  c_hist : hist;
  mutable c_phase_s : (string * float) list;
}

type t = {
  capacity : int;
  table : (string * string, entry) Hashtbl.t;
  branches : (string, center) Hashtbl.t;
  phase_hist : (string, hist) Hashtbl.t;
  mutable recorded : int;
  mutable evicted : int;
  mutable total_wall_s : float;
  mutable evicted_wall_s : float;
}

let create ?(capacity = 256) () =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    branches = Hashtbl.create 8;
    phase_hist = Hashtbl.create 8;
    recorded = 0;
    evicted = 0;
    total_wall_s = 0.0;
    evicted_wall_s = 0.0;
  }

(* Merge-add into an assoc list kept sorted by key. *)
let rec merge_assoc add base extra =
  match (base, extra) with
  | [], e -> e
  | b, [] -> b
  | (kb, vb) :: tb, (ke, ve) :: te ->
      let c = String.compare kb ke in
      if c = 0 then (kb, add vb ve) :: merge_assoc add tb te
      else if c < 0 then (kb, vb) :: merge_assoc add tb ((ke, ve) :: te)
      else (ke, ve) :: merge_assoc add ((kb, vb) :: tb) te

let sort_assoc kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

let merge_float base extra = merge_assoc ( +. ) base (sort_assoc extra)
let merge_int base extra = merge_assoc ( + ) base (sort_assoc extra)

(* Phase attribution ------------------------------------------------- *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let phase_of_span name =
  if name = "engine.classify" then Some "classify"
  else if has_prefix "rewrite." name then Some "rewrite"
  else if has_prefix "conflict_graph" name then Some "conflict_graph"
  else if has_prefix "sat." name || has_prefix "cavsat." name then Some "sat"
  else if has_prefix "repairs." name then Some "enumeration"
  else if has_prefix "asp." name then Some "asp"
  else None

let phases_of_spans spans =
  match spans with
  | [] -> []
  | [ s ] ->
      (* The common cache-hit request leaves exactly the wrapping span;
         skip the hashtable machinery on that path. *)
      let d = Trace.duration s in
      if d > 0.0 then
        [ ((match phase_of_span s.name with Some p -> p | None -> "other"), d) ]
      else []
  | _ when List.compare_length_with spans 12 <= 0 ->
      (* Real requests leave a wrapper plus a handful of probe spans;
         at that size flat array scans beat building two hashtables.
         Same contract as below: spans come in start (id) order, so a
         parent precedes its children. *)
      let a = Array.of_list spans in
      let n = Array.length a in
      let dur = Array.map Trace.duration a in
      let child_sum = Array.make n 0.0 in
      let phase = Array.make n "other" in
      for i = 0 to n - 1 do
        let s = a.(i) in
        let pi = ref (-1) in
        for j = 0 to i - 1 do
          if a.(j).Trace.id = s.Trace.parent then pi := j
        done;
        if !pi >= 0 then child_sum.(!pi) <- child_sum.(!pi) +. dur.(i);
        phase.(i) <-
          (match phase_of_span s.Trace.name with
          | Some p -> p
          | None -> if !pi >= 0 then phase.(!pi) else "other")
      done;
      let totals = ref [] in
      for i = 0 to n - 1 do
        let self = dur.(i) -. child_sum.(i) in
        if self > 0.0 then
          totals :=
            (match List.assoc_opt phase.(i) !totals with
            | Some r ->
                r := !r +. self;
                !totals
            | None -> (phase.(i), ref self) :: !totals)
      done;
      sort_assoc (List.map (fun (k, r) -> (k, !r)) !totals)
  | _ ->
      (* Children sum per parent id, for self time. *)
      let child_sum = Hashtbl.create 16 in
      List.iter
        (fun (s : Trace.span) ->
          let d = Trace.duration s in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt child_sum s.parent) in
          Hashtbl.replace child_sum s.parent (prev +. d))
        spans;
      (* Effective phase per span id: own phase, else nearest ancestor's
         (spans arrive in start order, so parents precede children). *)
      let eff = Hashtbl.create 16 in
      let totals = Hashtbl.create 8 in
      List.iter
        (fun (s : Trace.span) ->
          let phase =
            match phase_of_span s.name with
            | Some p -> p
            | None ->
                Option.value ~default:"other" (Hashtbl.find_opt eff s.parent)
          in
          Hashtbl.replace eff s.id phase;
          let self =
            Trace.duration s
            -. Option.value ~default:0.0 (Hashtbl.find_opt child_sum s.id)
          in
          let self = if self > 0.0 then self else 0.0 in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals phase) in
          Hashtbl.replace totals phase (prev +. self))
        spans;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
      |> List.filter (fun (_, v) -> v > 0.0)
      |> sort_assoc

(* Recording --------------------------------------------------------- *)

let center_of t branch =
  match Hashtbl.find_opt t.branches branch with
  | Some c -> c
  | None ->
      let c = { c_calls = 0; c_errors = 0; c_hist = hist_make (); c_phase_s = [] } in
      Hashtbl.replace t.branches branch c;
      c

let phase_hist_of t phase =
  match Hashtbl.find_opt t.phase_hist phase with
  | Some h -> h
  | None ->
      let h = hist_make () in
      Hashtbl.replace t.phase_hist phase h;
      h

let evict_min t =
  (* Deterministic: least total wall goes; ties by fingerprint, then
     branch, both ascending. *)
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | None -> Some e
        | Some best ->
            let c = compare e.wall_s best.wall_s in
            let worse =
              c < 0
              || c = 0
                 && (String.compare e.fingerprint best.fingerprint < 0
                    || String.compare e.fingerprint best.fingerprint = 0
                       && String.compare e.branch best.branch < 0)
            in
            if worse then Some e else acc)
      t.table None
  in
  match victim with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table (e.fingerprint, e.branch);
      t.evicted <- t.evicted + 1;
      t.evicted_wall_s <- t.evicted_wall_s +. e.wall_s

let entry_of t ~fingerprint ~branch =
  let key = (fingerprint, branch) in
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_min t;
      let e =
        {
          fingerprint;
          branch;
          calls = 0;
          errors = 0;
          wall_s = 0.0;
          max_s = 0.0;
          cache_hits = 0;
          cache_misses = 0;
          rows = 0;
          phase_s = [];
          counters = [];
          buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.replace t.table key e;
      e

let record t ~fingerprint ~branch ~wall_s ?(rows = 0) ?(cache = Uncached)
    ?(error = false) ?(phases = []) ?(counters = []) () =
  t.recorded <- t.recorded + 1;
  t.total_wall_s <- t.total_wall_s +. wall_s;
  let e = entry_of t ~fingerprint ~branch in
  e.calls <- e.calls + 1;
  if error then e.errors <- e.errors + 1;
  e.wall_s <- e.wall_s +. wall_s;
  if wall_s > e.max_s then e.max_s <- wall_s;
  (match cache with
  | Hit -> e.cache_hits <- e.cache_hits + 1
  | Miss -> e.cache_misses <- e.cache_misses + 1
  | Uncached -> ());
  e.rows <- e.rows + rows;
  let b = bucket_of wall_s in
  e.buckets.(b) <- e.buckets.(b) + 1;
  if phases <> [] then e.phase_s <- merge_float e.phase_s phases;
  if counters <> [] then e.counters <- merge_int e.counters counters;
  let c = center_of t branch in
  c.c_calls <- c.c_calls + 1;
  if error then c.c_errors <- c.c_errors + 1;
  hist_observe c.c_hist wall_s;
  if phases <> [] then begin
    c.c_phase_s <- merge_float c.c_phase_s phases;
    List.iter (fun (p, s) -> hist_observe (phase_hist_of t p) s) phases
  end

(* Inspection -------------------------------------------------------- *)

let length t = Hashtbl.length t.table
let recorded t = t.recorded
let evicted t = t.evicted
let total_wall_s t = t.total_wall_s

let attributed_s t = t.total_wall_s -. t.evicted_wall_s

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b ->
         let c = compare b.wall_s a.wall_s in
         if c <> 0 then c
         else
           let c = String.compare a.fingerprint b.fingerprint in
           if c <> 0 then c else String.compare a.branch b.branch)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let top t n = take n (entries t)

let quantile e q =
  let h = { h_count = e.calls; h_sum = e.wall_s; h_buckets = e.buckets } in
  hist_quantile h q

let reset t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.branches;
  Hashtbl.reset t.phase_hist;
  t.recorded <- 0;
  t.evicted <- 0;
  t.total_wall_s <- 0.0;
  t.evicted_wall_s <- 0.0

(* Rendering --------------------------------------------------------- *)

let ms v = Printf.sprintf "%.3f" (v *. 1e3)

let phase_split kvs =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%sms" k (ms v)) kvs)

let counter_split kvs =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)

let render_top t n =
  let es = top t n in
  if es = [] then [ "workload empty" ]
  else
    List.concat
      (List.mapi
         (fun i e ->
           let mean = if e.calls = 0 then 0.0 else e.wall_s /. float_of_int e.calls in
           let first =
             Printf.sprintf "%d. wall_ms %s calls %d branch %s fp %s" (i + 1)
               (ms e.wall_s) e.calls e.branch e.fingerprint
           in
           let second =
             Printf.sprintf
               "   mean_ms %s p50_ms %s p95_ms %s max_ms %s errors %d hits %d misses %d rows %d"
               (ms mean)
               (ms (quantile e 0.50))
               (ms (quantile e 0.95))
               (ms e.max_s) e.errors e.cache_hits e.cache_misses e.rows
           in
           let rest =
             (if e.phase_s = [] then []
              else [ "   phases " ^ phase_split e.phase_s ])
             @
             if e.counters = [] then []
             else [ "   counters " ^ counter_split e.counters ]
           in
           first :: second :: rest)
         es)

let centers t =
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) t.branches []
  |> List.sort (fun (_, a) (_, b) ->
         compare b.c_hist.h_sum a.c_hist.h_sum)
  |> fun l ->
  List.stable_sort
    (fun (na, a) (nb, b) ->
      let c = compare b.c_hist.h_sum a.c_hist.h_sum in
      if c <> 0 then c else String.compare na nb)
    l

let render_by_branch t =
  let cs = centers t in
  if cs = [] then [ "workload empty" ]
  else
    let total = t.total_wall_s in
    List.concat
      (List.map
         (fun (name, c) ->
           let mean =
             if c.c_calls = 0 then 0.0 else c.c_hist.h_sum /. float_of_int c.c_calls
           in
           let share = if total > 0.0 then c.c_hist.h_sum /. total else 0.0 in
           let first =
             Printf.sprintf
               "branch %s calls %d wall_ms %s share %.3f mean_ms %s p95_ms %s errors %d"
               name c.c_calls (ms c.c_hist.h_sum) share (ms mean)
               (ms (hist_quantile c.c_hist 0.95))
               c.c_errors
           in
           if c.c_phase_s = [] then [ first ]
           else [ first; "   phases " ^ phase_split c.c_phase_s ])
         cs)

let summary_lines t =
  [
    Printf.sprintf "workload.attributed_s %.6f" (attributed_s t);
    Printf.sprintf "workload.evicted %d" t.evicted;
    Printf.sprintf "workload.fingerprints %d" (Hashtbl.length t.table);
    Printf.sprintf "workload.recorded %d" t.recorded;
    Printf.sprintf "workload.total_s %.6f" t.total_wall_s;
  ]

let hist_lines ~family ~label_key name h =
  let lines = ref [] in
  let acc = ref 0 in
  Array.iteri
    (fun i n ->
      acc := !acc + n;
      let le =
        if i < Array.length bounds then Prometheus.number bounds.(i) else "+Inf"
      in
      lines :=
        Prometheus.sample
          ~labels:[ (label_key, name); ("le", le) ]
          (family ^ "_bucket") (string_of_int !acc)
        :: !lines)
    h.h_buckets;
  let tail =
    [
      Prometheus.sample ~labels:[ (label_key, name) ] (family ^ "_sum")
        (Prometheus.number h.h_sum);
      Prometheus.sample ~labels:[ (label_key, name) ] (family ^ "_count")
        (string_of_int h.h_count);
    ]
  in
  List.rev !lines @ tail

let prometheus_lines t =
  (* Prometheus.sample does not add the namespace prefix, so spell the
     cqa_ out here to match the HELP/TYPE headers. *)
  let branch_families =
    centers t
    |> List.concat_map (fun (name, c) ->
           hist_lines ~family:"cqa_workload_branch_seconds" ~label_key:"branch"
             name c.c_hist)
  in
  let phases =
    Hashtbl.fold (fun p h acc -> (p, h) :: acc) t.phase_hist []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let phase_families =
    List.concat_map
      (fun (p, h) ->
        hist_lines ~family:"cqa_workload_phase_seconds" ~label_key:"phase" p h)
      phases
  in
  (if branch_families = [] then []
   else
     ("# HELP cqa_workload_branch_seconds Request latency per plan branch."
     :: "# TYPE cqa_workload_branch_seconds histogram" :: branch_families))
  @
  if phase_families = [] then []
  else
    "# HELP cqa_workload_phase_seconds Per-request phase time by cost center."
    :: "# TYPE cqa_workload_phase_seconds histogram" :: phase_families

(* JSON -------------------------------------------------------------- *)

let json_num v = Printf.sprintf "%.9g" v

let json_entry e =
  let mean = if e.calls = 0 then 0.0 else e.wall_s /. float_of_int e.calls in
  let phases =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%s" (Export.json_string k) (json_num v))
         e.phase_s)
  in
  let counters =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%d" (Export.json_string k) v)
         e.counters)
  in
  Printf.sprintf
    "{\"fingerprint\":%s,\"branch\":%s,\"calls\":%d,\"errors\":%d,\"wall_s\":%s,\"mean_s\":%s,\"p50_s\":%s,\"p95_s\":%s,\"max_s\":%s,\"cache_hits\":%d,\"cache_misses\":%d,\"rows\":%d,\"phases\":{%s},\"counters\":{%s}}"
    (Export.json_string e.fingerprint)
    (Export.json_string e.branch)
    e.calls e.errors (json_num e.wall_s) (json_num mean)
    (json_num (quantile e 0.50))
    (json_num (quantile e 0.95))
    (json_num e.max_s) e.cache_hits e.cache_misses e.rows phases counters

let json_center total (name, c) =
  let share = if total > 0.0 then c.c_hist.h_sum /. total else 0.0 in
  let phases =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%s" (Export.json_string k) (json_num v))
         c.c_phase_s)
  in
  Printf.sprintf
    "{\"branch\":%s,\"calls\":%d,\"errors\":%d,\"wall_s\":%s,\"share\":%s,\"p95_s\":%s,\"phases\":{%s}}"
    (Export.json_string name) c.c_calls c.c_errors (json_num c.c_hist.h_sum)
    (json_num share)
    (json_num (hist_quantile c.c_hist 0.95))
    phases

let to_json t =
  Printf.sprintf
    "{\"capacity\":%d,\"recorded\":%d,\"evicted\":%d,\"total_wall_s\":%s,\"attributed_wall_s\":%s,\"entries\":[%s],\"branches\":[%s]}"
    t.capacity t.recorded t.evicted (json_num t.total_wall_s)
    (json_num (attributed_s t))
    (String.concat "," (List.map json_entry (entries t)))
    (String.concat "," (List.map (json_center t.total_wall_s) (centers t)))
