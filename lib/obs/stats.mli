(** Workload introspection — a bounded, deterministic statements store in
    the spirit of [pg_stat_statements], the fourth leg of [lib/obs] next
    to spans ({!Trace}), metrics ({!Registry}) and events ({!Events}).

    The serving layer records every finished request under a {e query
    fingerprint} (a normalized query shape computed by the caller — see
    [Cqa.Fingerprint]) and the {e plan branch} it executed
    ([direct] / [key_rewriting] / [sat_compilation] /
    [repair_enumeration] / ...).  Per (fingerprint, branch) the store
    aggregates calls, a latency histogram, cache hits/misses, rows
    returned, solver-counter deltas, and per-phase time derived from the
    request's span tree ({!phases_of_spans}).

    The store is capacity-bounded with {e deterministic} eviction: when
    a new fingerprint arrives at capacity, the entry with the least
    total wall time goes (ties broken lexicographically), so two
    replays of the same request stream always leave the same store.
    Evicted time is still accounted in the totals, which is what lets
    {!summary_lines} report the attributed fraction honestly.

    Plan-branch and phase cost centers are additionally aggregated in
    eviction-proof side tables, rendered as labeled Prometheus
    histograms by {!prometheus_lines}. *)

type t

val create : ?capacity:int -> unit -> t
(** A store keeping at most [capacity] (fingerprint, branch) entries
    (default 256, minimum 1). *)

type cache_outcome = Hit | Miss | Uncached

val record :
  t ->
  fingerprint:string ->
  branch:string ->
  wall_s:float ->
  ?rows:int ->
  ?cache:cache_outcome ->
  ?error:bool ->
  ?phases:(string * float) list ->
  ?counters:(string * int) list ->
  unit ->
  unit
(** Fold one finished request into the store.  [phases] are per-phase
    seconds (typically {!phases_of_spans} of the request's span tree);
    [counters] are the solver-counter deltas the request caused. *)

(** {1 Phase attribution}

    Per-phase time is derived from the span tree a request left behind:
    every span contributes its {e self} time (duration minus children)
    to the phase its name maps to, inheriting the nearest ancestor's
    phase when the name maps to none.  The result is an exact partition
    of the root spans' wall time — no double counting across nested
    phases (a DPLL solve inside a CAvSAT compilation is all [sat]). *)

val phase_of_span : string -> string option
(** The cost-center phase of a span name: [classify] ([engine.classify]),
    [rewrite] ([rewrite.*]), [conflict_graph], [sat] ([sat.*],
    [cavsat.*]), [enumeration] ([repairs.*]), [asp] ([asp.*]); [None]
    for anything else (attributed to the enclosing phase, or [other]). *)

val phases_of_spans : Trace.span list -> (string * float) list
(** Per-phase seconds, sorted by phase name; empty for an empty tree. *)

(** {1 Inspection} *)

type entry = {
  fingerprint : string;
  branch : string;
  mutable calls : int;
  mutable errors : int;
  mutable wall_s : float;  (** total wall time, seconds *)
  mutable max_s : float;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rows : int;  (** total rows returned *)
  mutable phase_s : (string * float) list;  (** sorted by phase *)
  mutable counters : (string * int) list;  (** sorted by counter name *)
  buckets : int array;  (** latency decades 1 µs .. 10 s + overflow *)
}

val length : t -> int
(** Live (fingerprint, branch) entries. *)

val recorded : t -> int
(** Requests folded in since creation (evictions included). *)

val evicted : t -> int

val total_wall_s : t -> float
(** All-time recorded wall, evictions included. *)

val attributed_s : t -> float
(** Wall time attributable to live entries; [attributed_s /.
    total_wall_s] is the store's coverage after eviction. *)

val entries : t -> entry list
(** All live entries, by total wall time descending (ties by
    fingerprint then branch — deterministic). *)

val top : t -> int -> entry list

val quantile : entry -> float -> float
(** Estimated latency q-quantile in seconds from the decade histogram
    (interpolated; the overflow bucket reports its lower bound). *)

val reset : t -> unit
(** Empty the store and both cost-center tables; counters restart. *)

(** {1 Rendering} *)

val render_top : t -> int -> string list
(** The [WORKLOAD TOP n] body: numbered entries with wall, calls,
    branch, fingerprint, latency quantiles, cache and row counts, the
    phase split and the solver-counter deltas. *)

val render_by_branch : t -> string list
(** The [WORKLOAD BY branch] body: one cost center per plan branch with
    calls, total/mean wall, share of total, and the phase split.
    Aggregated on the eviction-proof side table. *)

val summary_lines : t -> string list
(** [workload.* ] ["name value"] lines for the STATS [-- workload]
    section: entry count, recorded/evicted, attributed and total wall. *)

val prometheus_lines : t -> string list
(** Labeled histogram families for the metrics endpoint:
    [cqa_workload_branch_seconds{branch="..."}] (request latency per
    plan branch) and [cqa_workload_phase_seconds{phase="..."}]
    (per-request phase time), cumulative buckets with [+Inf] = count. *)

val to_json : t -> string
(** The stats dump: one JSON object
    [{"capacity":..,"recorded":..,"evicted":..,"total_wall_s":..,
    "attributed_wall_s":..,"entries":[...],"branches":[...]}] —
    the input of [cqa report]. *)
