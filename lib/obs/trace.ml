(* Hierarchical spans.  One process-global sink collects completed spans
   while tracing is enabled; [start]/[finish] are the zero-allocation
   probes for hot paths (disabled tracing returns the [none] token and
   does nothing), [with_span] is the exception-safe convenience.

   The clock is wall time clamped to be non-decreasing, so span
   timestamps are monotone even across an NTP step. *)

type span = {
  id : int; (* 1-based, in start order *)
  parent : int; (* 0 for a root span *)
  name : string;
  mutable attrs : (string * string) list; (* reverse order of addition *)
  t0 : float; (* seconds *)
  mutable t1 : float; (* neg_infinity while open *)
}

type sink = {
  mutable finished : span list; (* most recently finished first *)
  mutable nfinished : int;
  mutable dropped : int;
  mutable stack : span list; (* open spans, innermost first *)
  mutable next_id : int;
  limit : int;
}

let default_limit = 100_000

let make_sink ?(limit = default_limit) () =
  { finished = []; nfinished = 0; dropped = 0; stack = []; next_id = 1; limit }

let enabled = ref false
let the_sink = ref (make_sink ())

let is_enabled () = !enabled
let set_enabled b = enabled := b

let last_now = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

type id = int

let none = 0

let start name =
  if not !enabled then none
  else begin
    let s = !the_sink in
    let id = s.next_id in
    s.next_id <- id + 1;
    let parent = match s.stack with [] -> 0 | p :: _ -> p.id in
    let sp = { id; parent; name; attrs = []; t0 = now (); t1 = neg_infinity } in
    s.stack <- sp :: s.stack;
    id
  end

let finish id =
  if id <> none then begin
    let s = !the_sink in
    (* The id may belong to a sink swapped out by [collect] in between;
       only unwind when it is actually on this stack. *)
    if List.exists (fun sp -> sp.id = id) s.stack then begin
      let t = now () in
      let rec pop = function
        | [] -> []
        | sp :: rest ->
            sp.t1 <- t;
            if s.nfinished < s.limit then begin
              s.finished <- sp :: s.finished;
              s.nfinished <- s.nfinished + 1
            end
            else s.dropped <- s.dropped + 1;
            if sp.id = id then rest else pop rest
      in
      s.stack <- pop s.stack
    end
  end

let attr k v =
  if !enabled then
    match (!the_sink).stack with
    | [] -> ()
    | sp :: _ -> sp.attrs <- (k, v) :: sp.attrs

let attr_int k n = if !enabled then attr k (string_of_int n)

let with_span ?attrs name f =
  if not !enabled then f ()
  else begin
    let id = start name in
    (match attrs with
    | None -> ()
    | Some l -> List.iter (fun (k, v) -> attr k v) l);
    match f () with
    | r ->
        finish id;
        r
    | exception e ->
        finish id;
        raise e
  end

let by_id a b = Int.compare a.id b.id
let spans () = List.sort by_id (!the_sink).finished

let clear () =
  let limit = (!the_sink).limit in
  the_sink := make_sink ~limit ()

let drain () =
  let s = !the_sink in
  let out = List.sort by_id s.finished in
  s.finished <- [];
  s.nfinished <- 0;
  out

let dropped () = (!the_sink).dropped

let collect ?limit f =
  let old_sink = !the_sink and old_enabled = !enabled in
  the_sink := make_sink ?limit ();
  enabled := true;
  let restore () =
    the_sink := old_sink;
    enabled := old_enabled
  in
  match f () with
  | r ->
      let out = spans () in
      restore ();
      (r, out)
  | exception e ->
      restore ();
      raise e

let duration sp = if sp.t1 < sp.t0 then 0.0 else sp.t1 -. sp.t0
