(* The telemetry half of lib/obs: named counters, gauges and latency
   histograms behind a registry.  One registry is "current" at any time;
   swapping it (a new server handler, a test) bumps a global epoch so
   that Counter handles re-resolve their cells lazily instead of writing
   into a registry that is no longer observed. *)

type histogram = {
  bounds : float array; (* upper bounds, seconds, strictly increasing *)
  buckets : int array; (* length bounds + 1: the last is overflow *)
  mutable hcount : int;
  mutable hsum : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* Name-sorted counter cells, rebuilt lazily when a counter is
     created: per-request snapshots (the workload store, the slow-query
     log) deref this array instead of folding and sorting the table. *)
  mutable cells : (string * int ref) array;
  mutable cells_stale : bool;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    cells = [||];
    cells_stale = false;
  }

let global = ref (create ())
let epoch = ref 0
let current () = !global

let set_current r =
  global := r;
  incr epoch

let swap_epoch () = !epoch

(* Cell resolution may now race across domains (Par workers bind counter
   handles lazily), so table mutation is serialized.  The cells themselves
   stay plain int refs: increments are racy-but-benign telemetry. *)
let table_lock = Mutex.create ()

let with_lock f =
  Mutex.lock table_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_lock) f

let counter_cell t name =
  with_lock (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.replace t.counters name c;
          t.cells_stale <- true;
          c)

let sorted_cells t =
  if t.cells_stale then
    with_lock (fun () ->
        let l = Hashtbl.fold (fun n c acc -> (n, c) :: acc) t.counters [] in
        t.cells <-
          Array.of_list
            (List.sort (fun (a, _) (b, _) -> String.compare a b) l);
        t.cells_stale <- false);
  t.cells

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let by_name compare_v (a, av) (b, bv) =
  match String.compare a b with 0 -> compare_v av bv | c -> c

let counters_list t =
  Array.fold_right (fun (n, c) acc -> (n, !c) :: acc) (sorted_cells t) []

let counter_snapshot = counters_list

let counter_delta ~since t =
  (* Both sides are name-sorted ([counters_list] output), so the delta
     is a linear merge-join. *)
  let rec merge acc fresh since =
    match (fresh, since) with
    | [], _ -> List.rev acc
    | (n, v) :: fr, [] ->
        merge (if v <> 0 then (n, v) :: acc else acc) fr []
    | (n, v) :: fr, ((n', o) :: sr as s) -> (
        match String.compare n n' with
        | 0 -> merge (if v - o <> 0 then (n, v - o) :: acc else acc) fr sr
        | c when c < 0 -> merge (if v <> 0 then (n, v) :: acc else acc) fr s
        | _ -> merge acc fresh sr)
  in
  merge [] (counters_list t) since

(* The per-request metering path: a baseline is one int array over the
   cached cell array — no per-counter tuples — and the delta allocates
   only for counters that actually moved.  [counter_delta_since] falls
   back to the name-keyed merge when a counter was created mid-request
   (the cell array changed underneath the baseline). *)

type counter_baseline = {
  b_cells : (string * int ref) array;
  b_values : int array;
}

let counter_baseline ?reuse t =
  let cells = sorted_cells t in
  match reuse with
  | Some b when b.b_cells == cells ->
      (* Steady state: same cell array as last time, so refresh the
         values in place — no allocation on the per-request path. *)
      for i = 0 to Array.length cells - 1 do
        b.b_values.(i) <- !(snd cells.(i))
      done;
      b
  | _ -> { b_cells = cells; b_values = Array.map (fun (_, c) -> !c) cells }

let counter_delta_since b t =
  let cells = sorted_cells t in
  if cells == b.b_cells then begin
    let acc = ref [] in
    for i = Array.length cells - 1 downto 0 do
      let n, c = cells.(i) in
      let d = !c - b.b_values.(i) in
      if d <> 0 then acc := (n, d) :: !acc
    done;
    !acc
  end
  else
    counter_delta
      ~since:
        (Array.to_list
           (Array.mapi (fun i (n, _) -> (n, b.b_values.(i))) b.b_cells))
      t

let set_gauge t name v =
  with_lock (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let gauge_value t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let gauges_list t =
  Hashtbl.fold (fun name g acc -> (name, !g) :: acc) t.gauges []
  |> List.sort (by_name Float.compare)

(* Decade buckets, 1 µs to 10 s — the shape the serving layer has used
   since PR 1. *)
let decade_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let histogram ?(bounds = decade_bounds) t name =
  with_lock (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              bounds;
              buckets = Array.make (Array.length bounds + 1) 0;
              hcount = 0;
              hsum = 0.0;
            }
          in
          Hashtbl.replace t.histograms name h;
          h)

let observe h x =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || x < h.bounds.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. x

let hist_count h = h.hcount
let hist_sum h = h.hsum
let hist_bounds h = Array.copy h.bounds
let hist_raw_buckets h = Array.copy h.buckets
let hist_mean h = if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount

let label_of_seconds s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.0fms" (s *. 1e3)
  else Printf.sprintf "%.0fs" s

let bucket_label h i =
  if i < Array.length h.bounds then "lt_" ^ label_of_seconds h.bounds.(i)
  else "ge_" ^ label_of_seconds h.bounds.(Array.length h.bounds - 1)

let hist_buckets h =
  Array.to_list (Array.mapi (fun i c -> (bucket_label h i, c)) h.buckets)

(* Quantile estimate: find the bucket where the cumulative count crosses
   q * total and interpolate linearly inside it.  The overflow bucket has
   no upper bound, so it reports its lower bound. *)
let quantile h q =
  if h.hcount = 0 then 0.0
  else begin
    let target = q *. float_of_int h.hcount in
    let nb = Array.length h.buckets in
    let result = ref h.bounds.(Array.length h.bounds - 1) in
    (try
       let acc = ref 0 in
       for i = 0 to nb - 1 do
         let c = h.buckets.(i) in
         if c > 0 && float_of_int (!acc + c) >= target then begin
           let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
           if i >= Array.length h.bounds then result := lo
           else begin
             let hi = h.bounds.(i) in
             let frac = (target -. float_of_int !acc) /. float_of_int c in
             result := lo +. (frac *. (hi -. lo))
           end;
           raise Exit
         end;
         acc := !acc + c
       done
     with Exit -> ());
    !result
  end

let histograms_list t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render_histogram name h =
  let cells =
    hist_buckets h
    |> List.map (fun (label, c) -> Printf.sprintf "%s:%d" label c)
    |> String.concat ","
  in
  (* A histogram with zero observations has no mean or quantiles; print
     "-" rather than a fabricated 0.0. *)
  if hist_count h = 0 then
    Printf.sprintf "%s count=0 mean_us=- p50_us=- p95_us=- p99_us=- hist=%s"
      name cells
  else
    Printf.sprintf
      "%s count=%d mean_us=%.1f p50_us=%.1f p95_us=%.1f p99_us=%.1f hist=%s"
      name (hist_count h)
      (hist_mean h *. 1e6)
      (quantile h 0.50 *. 1e6)
      (quantile h 0.95 *. 1e6)
      (quantile h 0.99 *. 1e6)
      cells

(* One line per entry, merged across counters, gauges and histograms and
   sorted by name, so dumps (STATS, --metrics-dump) diff stably no
   matter in which order the entries were created. *)
let render t =
  List.map (fun (n, v) -> (n, Printf.sprintf "%s %d" n v)) (counters_list t)
  @ List.map (fun (n, v) -> (n, Printf.sprintf "%s %g" n v)) (gauges_list t)
  @ List.map (fun (n, h) -> (n, render_histogram n h)) (histograms_list t)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map snd
