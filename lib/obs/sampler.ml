(* Tail sampler: bounded ring of retained span trees.  Pure — the wall
   time of each request is an argument, never read from a clock. *)

type reason = Error | Slow | Sampled

let reason_label = function
  | Error -> "error"
  | Slow -> "slow"
  | Sampled -> "sampled"

type record = {
  rid : int;
  command : string;
  wall_s : float;
  reason : reason;
  spans : Trace.span list;
}

type t = {
  cap : int;
  threshold_s : float option;
  sample_every : int;
  ring : record option array;
  mutable next : int; (* write position *)
  mutable seen : int;
  mutable kept : int;
  mutable overwritten : int;
}

let create ?(capacity = 64) ?threshold_s ?(sample_every = 0) () =
  let cap = max 1 capacity in
  {
    cap;
    threshold_s;
    sample_every;
    ring = Array.make cap None;
    next = 0;
    seen = 0;
    kept = 0;
    overwritten = 0;
  }

let offer t ~rid ~command ~wall_s ~ok spans =
  t.seen <- t.seen + 1;
  let reason =
    if not ok then Some Error
    else
      match t.threshold_s with
      | Some thr when wall_s >= thr -> Some Slow
      | _ ->
          if t.sample_every > 0 && t.seen mod t.sample_every = 0 then Some Sampled
          else None
  in
  (match reason with
  | None -> ()
  | Some reason ->
      if t.ring.(t.next) <> None then t.overwritten <- t.overwritten + 1;
      t.ring.(t.next) <- Some { rid; command; wall_s; reason; spans };
      t.next <- (t.next + 1) mod t.cap;
      t.kept <- t.kept + 1);
  reason

let retained t =
  let out = ref [] in
  for i = t.cap - 1 downto 0 do
    match t.ring.((t.next + i) mod t.cap) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let seen t = t.seen
let kept t = t.kept
let overwritten t = t.overwritten
let capacity t = t.cap

let clear t =
  Array.fill t.ring 0 t.cap None;
  t.next <- 0;
  t.seen <- 0;
  t.kept <- 0;
  t.overwritten <- 0

let summary_json t =
  let records =
    List.map
      (fun r ->
        Printf.sprintf
          "{\"req\":%d,\"command\":%s,\"wall_s\":%.9g,\"reason\":%s,\"spans\":%d}"
          r.rid
          (Export.json_string r.command)
          r.wall_s
          (Export.json_string (reason_label r.reason))
          (List.length r.spans))
      (retained t)
  in
  Printf.sprintf
    "{\"capacity\":%d,\"seen\":%d,\"kept\":%d,\"overwritten\":%d,\"retained\":[%s]}"
    t.cap t.seen t.kept t.overwritten
    (String.concat "," records)
