(* In-flight introspection: per-request progress heartbeats, cooperative
   deadlines, and a bounded flight recorder.

   A request that wants live visibility installs a context with [run];
   solvers then call the probes ([tick], [phase], [bound]) from their
   inner loops.  Like [Trace], the disabled path is allocation-free: with
   no context installed every probe is one load and a branch.

   When armed, [tick] counts one unit of work and burns one unit of
   fuel; every [interval] ticks it takes a heartbeat — read the clock,
   record a snapshot into the ring, and check the deadline.  A blown
   deadline marks the context cancelled and raises [Deadline_exceeded]
   from the tick site, so cancellation surfaces inside whatever loop was
   doing the work — including chunks running on [Par] worker domains,
   which observe the same context through the process-global slot.
   [phase] heartbeats unconditionally but never raises; the next tick
   after a blown deadline raises immediately (one load, no fuel wait).

   Counters are racy-but-benign across domains, same policy as the
   registry cells: a torn [work] read costs a stale INFLIGHT line, not
   a wrong answer. *)

exception Deadline_exceeded

type snapshot = {
  at : float; (* seconds since the request started *)
  s_phase : string;
  s_work : int;
  s_bound : int; (* -1 when no bound is known *)
}

type t = {
  id : int;
  label : string;
  session : string;
  clock : unit -> float;
  started : float;
  deadline : float; (* absolute, [infinity] when none *)
  interval : int;
  mutable branch : string; (* plan branch, "?" until the engine routes *)
  mutable cur_phase : string;
  mutable work : int;
  mutable best_bound : int;
  mutable fuel : int;
  mutable last_beat : float;
  mutable cancel : bool;
  ring : snapshot option array;
  mutable ring_pos : int;
  mutable ring_len : int;
}

let c_heartbeats = Counter.make "progress.heartbeats"
let c_expired = Counter.make "progress.deadline_expired"

(* Fuel between deadline checks.  Settable so tests can force a check on
   every tick; the default keeps the armed-path clock reads amortized. *)
let default_interval = ref 64
let set_check_interval n = default_interval := max 1 n
let check_interval () = !default_interval

let create ?(deadline_s = infinity) ?(ring = 32) ?(clock = Unix.gettimeofday)
    ?now ?(session = "-") ~label ~id () =
  (* [now] lets a caller that already read the clock (the handler's
     request timestamp) avoid a second read — stub clocks in tests count
     their pops. *)
  let t0 = match now with Some t -> t | None -> clock () in
  {
    id;
    label;
    session;
    clock;
    started = t0;
    deadline = (if deadline_s = infinity then infinity else t0 +. deadline_s);
    interval = !default_interval;
    branch = "?";
    cur_phase = "start";
    work = 0;
    best_bound = -1;
    fuel = !default_interval;
    last_beat = t0;
    cancel = false;
    ring = Array.make (max 1 ring) None;
    ring_pos = 0;
    ring_len = 0;
  }

(* The ambient context.  [Par] worker domains read the same slot, so a
   deadline blown on one domain cancels the chunks on all of them; the
   slot is only written by the domain that owns the request. *)
let current : t option ref = ref None

(* Registration list backing INFLIGHT / gauges / the signal flush.
   Mutated only by the installing domain, read lock-free. *)
let live : t list ref = ref []

let active () = !current
let armed () = match !current with None -> false | Some _ -> true

let record c now =
  let s =
    { at = now -. c.started; s_phase = c.cur_phase; s_work = c.work;
      s_bound = c.best_bound }
  in
  c.ring.(c.ring_pos) <- Some s;
  c.ring_pos <- (c.ring_pos + 1) mod Array.length c.ring;
  if c.ring_len < Array.length c.ring then c.ring_len <- c.ring_len + 1

let beat c =
  let now = c.clock () in
  c.last_beat <- now;
  record c now;
  Counter.incr c_heartbeats;
  if now > c.deadline && not c.cancel then begin
    c.cancel <- true;
    Counter.incr c_expired
  end

let tick () =
  match !current with
  | None -> ()
  | Some c ->
      if c.cancel then raise Deadline_exceeded;
      c.work <- c.work + 1;
      c.fuel <- c.fuel - 1;
      if c.fuel <= 0 then begin
        c.fuel <- c.interval;
        beat c;
        if c.cancel then raise Deadline_exceeded
      end

let phase name =
  match !current with
  | None -> ()
  | Some c ->
      c.cur_phase <- name;
      beat c

let bound b =
  match !current with
  | None -> ()
  | Some c -> if c.best_bound < 0 || b < c.best_bound then c.best_bound <- b

let set_branch s = match !current with None -> () | Some c -> c.branch <- s

let run c f =
  let prev = !current in
  current := Some c;
  live := c :: !live;
  let cleanup () =
    current := prev;
    live := List.filter (fun x -> x != c) !live
  in
  match f () with
  | r ->
      cleanup ();
      r
  | exception e ->
      cleanup ();
      raise e

let inflight () = List.sort (fun a b -> Int.compare a.id b.id) !live
let is_cancel = function Deadline_exceeded -> true | _ -> false

let id c = c.id
let label c = c.label
let session c = c.session
let branch c = c.branch
let phase_of c = c.cur_phase
let work c = c.work
let bound_of c = c.best_bound
let started c = c.started
let cancelled c = c.cancel
let budget_s c = if c.deadline = infinity then None else Some (c.deadline -. c.started)
let elapsed ?now c =
  let now = match now with Some n -> n | None -> c.clock () in
  Float.max 0.0 (now -. c.started)

let heartbeat_age ?now c =
  let now = match now with Some n -> n | None -> c.clock () in
  Float.max 0.0 (now -. c.last_beat)

let snapshot c =
  { at = Float.max 0.0 (c.last_beat -. c.started); s_phase = c.cur_phase;
    s_work = c.work; s_bound = c.best_bound }

let history c =
  (* Oldest first: the ring holds the last [ring_len] snapshots with the
     write head at [ring_pos]. *)
  let n = Array.length c.ring in
  let out = ref [] in
  for i = c.ring_len downto 1 do
    match c.ring.((c.ring_pos - i + (2 * n)) mod n) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  List.rev !out

let pp_bound b = if b < 0 then "-" else string_of_int b

let describe ?now c =
  let now = match now with Some n -> n | None -> c.clock () in
  Printf.sprintf
    "rid=%d command=%s sid=%s branch=%s phase=%s work=%d bound=%s \
     elapsed_ms=%.0f heartbeat_age_ms=%.0f%s"
    c.id c.label c.session c.branch c.cur_phase c.work (pp_bound c.best_bound)
    (elapsed ~now c *. 1e3)
    (heartbeat_age ~now c *. 1e3)
    (if c.deadline = infinity then ""
     else Printf.sprintf " deadline_in_ms=%.0f" ((c.deadline -. now) *. 1e3))

let snapshot_line s =
  Printf.sprintf "t+%.1fms phase=%s work=%d bound=%s" (s.at *. 1e3) s.s_phase
    s.s_work (pp_bound s.s_bound)

let history_lines c = List.map snapshot_line (history c)
