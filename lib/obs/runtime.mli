(** OCaml runtime gauges: a [Gc.quick_stat] snapshot written into a
    {!Registry} as [gc.*] gauges.

    Sampled on the serving layer's gauge ticker (and before every STATS
    / METRICS render), so a scrape sees heap pressure next to the
    request metrics.  [quick_stat] does not force a collection and is
    cheap enough to call per scrape. *)

val sample_gc : Registry.t -> unit
(** Set the gauges [gc.minor_words], [gc.promoted_words],
    [gc.major_words] (words allocated, cumulative),
    [gc.minor_collections], [gc.major_collections], [gc.compactions]
    (cumulative counts), and [gc.heap_words], [gc.top_heap_words]
    (current/peak major heap size in words). *)
