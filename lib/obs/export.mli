(** Exporters for collected {!Trace.span}s, plus the hand-rolled JSON
    string helpers they (and the benchmarks) share.  [lib/obs] has no
    JSON dependency by design. *)

val json_escape : string -> string
(** Escape for use inside a JSON string literal. *)

val json_string : string -> string
(** A quoted, escaped JSON string literal. *)

val pp_duration : float -> string
(** Seconds as a human-readable ["12.3us"] / ["4.56ms"] / ["1.234s"]. *)

val tree : Trace.span list -> string list
(** Indented span tree: one line per span —
    [name duration k=v ...] — children indented two spaces under their
    parent.  Spans whose parent is absent from the list render as
    roots. *)

val jsonl : Trace.span list -> string list
(** One JSON object per span:
    [{"id":..,"parent":..,"name":..,"ts_us":..,"dur_us":..,"attrs":{..}}],
    timestamps relative to the earliest span. *)

val chrome : Trace.span list -> string
(** The whole list as one Chrome [trace_event] JSON document (open in
    chrome://tracing or Perfetto).  Spans become balanced, properly
    nested B/E duration-event pairs. *)
