(** In-flight introspection: progress heartbeats, cooperative per-request
    deadlines, and a bounded flight recorder of recent snapshots.

    A request installs a context with {!run}; solver inner loops call the
    probes.  With no context installed ({!armed} [= false]) every probe
    is a single load and branch — zero allocation, like {!Trace}.  When a
    deadline blows, {!tick} raises {!Deadline_exceeded} from inside the
    loop doing the work (including chunks on [Par] worker domains, which
    see the same ambient context); {!phase} records heartbeats but never
    raises. *)

exception Deadline_exceeded

type snapshot = {
  at : float;  (** seconds since the request started *)
  s_phase : string;
  s_work : int;
  s_bound : int;  (** -1 when no bound is known *)
}

type t

(** [create ~label ~id ()] makes a fresh context.  [deadline_s] is a
    relative budget in seconds (default: none); [ring] bounds the flight
    recorder (default 32 snapshots); [clock] defaults to wall time and
    is stubbable for tests. *)
val create :
  ?deadline_s:float ->
  ?ring:int ->
  ?clock:(unit -> float) ->
  ?now:float ->
  ?session:string ->
  label:string ->
  id:int ->
  unit ->
  t

(** Install [c] as the ambient context (registered in the in-flight
    table), run [f], restore the previous context.  Exception-safe;
    contexts may nest. *)
val run : t -> (unit -> 'a) -> 'a

(* Probes — no-ops when no context is installed. *)

(** One unit of work.  Every [check_interval] ticks: heartbeat + deadline
    check; raises {!Deadline_exceeded} once the deadline has blown. *)
val tick : unit -> unit

(** Enter a named phase; heartbeats unconditionally, never raises. *)
val phase : string -> unit

(** Report a best-known (minimization) bound; keeps the smallest. *)
val bound : int -> unit

(** Record the plan branch chosen by the engine. *)
val set_branch : string -> unit

val armed : unit -> bool
val active : unit -> t option

(** [true] exactly for {!Deadline_exceeded} — used by [Par] to classify
    cancelled chunks. *)
val is_cancel : exn -> bool

(* Introspection. *)

(** Live contexts, oldest request id first. *)
val inflight : unit -> t list

val id : t -> int
val label : t -> string
val session : t -> string
val branch : t -> string
val phase_of : t -> string
val work : t -> int
val bound_of : t -> int
val started : t -> float
val cancelled : t -> bool

(** The relative budget, if any. *)
val budget_s : t -> float option

val elapsed : ?now:float -> t -> float
val heartbeat_age : ?now:float -> t -> float

(** The latest state as a snapshot (independent of the ring). *)
val snapshot : t -> snapshot

(** Flight recorder contents, oldest first. *)
val history : t -> snapshot list

val describe : ?now:float -> t -> string
val snapshot_line : snapshot -> string
val history_lines : t -> string list

(** ["-"] for the no-bound sentinel [-1], the number otherwise. *)
val pp_bound : int -> string

(** Ticks between deadline checks (default 64).  Tests set 1 to force a
    check on every tick; clamped to at least 1. *)
val set_check_interval : int -> unit

val check_interval : unit -> int
