(** Tail-sampled tracing — a bounded ring buffer of full span trees.

    Always-on tracing to disk is a firehose; what an operator actually
    wants kept are the {e interesting} requests.  The serving layer
    offers every finished request's span tree to a sampler, which
    retains it only when the request

    - failed (retained with reason {!Error}), or
    - ran over the latency threshold (reason {!Slow}), or
    - fell on the deterministic 1-in-[sample_every] grid (reason
      {!Sampled}) — a background rate that keeps a baseline of normal
      traffic for comparison.

    Reasons take that precedence order (an over-threshold error is an
    [Error]).  The buffer holds at most [capacity] traces; a new
    retention overwrites the oldest.  The sampler never reads a clock —
    wall time is passed in — so tests drive it with stubbed values. *)

type reason = Error | Slow | Sampled

val reason_label : reason -> string
(** ["error"], ["slow"], ["sampled"]. *)

type record = {
  rid : int;  (** request id, joinable with the event log *)
  command : string;
  wall_s : float;
  reason : reason;
  spans : Trace.span list;  (** the request's full span tree, start order *)
}

type t

val create : ?capacity:int -> ?threshold_s:float -> ?sample_every:int -> unit -> t
(** [capacity] bounds the ring (default 64, minimum 1).  Omitting
    [threshold_s] disables the slow rule; [sample_every <= 0] (the
    default [0]) disables reservoir sampling, leaving error-only
    retention. *)

val offer :
  t -> rid:int -> command:string -> wall_s:float -> ok:bool ->
  Trace.span list -> reason option
(** Consider one finished request; returns the retention reason, or
    [None] when the trace was discarded. *)

val retained : t -> record list
(** The ring's contents, oldest first. *)

val seen : t -> int
(** Requests offered since creation (or {!clear}). *)

val kept : t -> int
(** Requests retained, including any since overwritten. *)

val overwritten : t -> int
(** Retained traces later displaced by the ring bound. *)

val capacity : t -> int

val clear : t -> unit
(** Empty the ring and restart the counters. *)

val summary_json : t -> string
(** [{"capacity":..,"seen":..,"kept":..,"overwritten":..,
    "retained":[{"req":..,"command":..,"wall_s":..,"reason":..,
    "spans":<n>},...]}] — trace bodies are flushed as events, not
    inlined here. *)
