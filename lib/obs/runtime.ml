let sample_gc registry =
  let s = Gc.quick_stat () in
  let g name v = Registry.set_gauge registry ("gc." ^ name) v in
  g "minor_words" s.Gc.minor_words;
  g "promoted_words" s.Gc.promoted_words;
  g "major_words" s.Gc.major_words;
  g "minor_collections" (float_of_int s.Gc.minor_collections);
  g "major_collections" (float_of_int s.Gc.major_collections);
  g "compactions" (float_of_int s.Gc.compactions);
  g "heap_words" (float_of_int s.Gc.heap_words);
  g "top_heap_words" (float_of_int s.Gc.top_heap_words)
