(** Prometheus text exposition (format version 0.0.4) over a
    {!Registry}.

    The registry's dotted metric names ([sat.decisions],
    [latency_query]) are mangled into the Prometheus name grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*] and prefixed with a namespace
    ([cqa_] by default); label values are escaped per the exposition
    rules (backslash, double quote and newline).  Counters and gauges
    render as single samples under a [# TYPE] header; histograms render
    as cumulative [_bucket] series labelled by [le] plus [_sum] and
    [_count], with the registry's per-bucket counts accumulated so
    every [le] series is monotone and the [+Inf] bucket equals
    [_count]. *)

val mangle_name : string -> string
(** Rewrite into a valid metric name: every character outside
    [[a-zA-Z0-9_:]] becomes [_], a leading digit gains a [_] prefix,
    and the empty string becomes ["_"].  Idempotent. *)

val mangle_label_name : string -> string
(** Like {!mangle_name} but for label names, whose grammar also
    excludes [:]; a leading [__] (reserved by Prometheus) is prefixed
    with [x].  Idempotent. *)

val escape_label_value : string -> string
(** Escape a label value for use inside a label assignment: backslash,
    double quote and newline gain a backslash prefix (newline becomes
    backslash-n). *)

val unescape_label_value : string -> string
(** Inverse of {!escape_label_value};
    [unescape_label_value (escape_label_value s) = s] for every [s]. *)

val number : float -> string
(** A float in a form every Prometheus parser accepts ([%.12g], with
    [+Inf]/[-Inf]/[NaN] spelled the Prometheus way). *)

val sample : ?labels:(string * string) list -> string -> string -> string
(** [sample name value] is one exposition line: the mangled name, the
    optional brace-wrapped label assignments (label names mangled,
    values quoted and escaped), and [value] — passed through verbatim
    so the caller controls integer vs float formatting. *)

val render : ?namespace:string -> Registry.t -> string
(** The whole registry as one exposition document (trailing newline
    included), families sorted by name for stable diffs.  [namespace]
    (default ["cqa_"]) prefixes every metric name.  Counters map to
    [counter], gauges to [gauge], histograms to [histogram] with
    seconds-valued [le] bounds. *)
