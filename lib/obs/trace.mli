(** Hierarchical execution spans — the tracing half of [lib/obs].

    A span covers one stretch of work (a query evaluation, a repair
    enumeration, a grounding); spans nest by dynamic scope, building the
    tree that {!Export.tree}/{!Export.chrome} render.  One process-global
    sink collects completed spans while tracing is on.

    Two probe styles:
    - [start]/[finish] — zero-allocation; when tracing is off, [start]
      returns {!none} and both are no-ops.  Use on hot paths, guarding
      exceptions by hand.
    - [with_span] — exception-safe; the closure argument may allocate at
      the call site, so keep it off the hottest loops.

    The sink is bounded ([limit], default 100k spans); spans past the
    bound are counted in {!dropped} rather than kept. *)

type span = {
  id : int;  (** 1-based, in start order *)
  parent : int;  (** 0 for a root span *)
  name : string;
  mutable attrs : (string * string) list;  (** reverse addition order *)
  t0 : float;  (** start, seconds, monotone across spans *)
  mutable t1 : float;  (** end; [neg_infinity] while open *)
}

type id

val none : id
(** The token [start] returns while tracing is off; [finish none] is a
    no-op. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val start : string -> id
(** Open a span as a child of the innermost open span.  Constant-time
    and allocation-free when tracing is off. *)

val finish : id -> unit
(** Close the span, and defensively any children still open inside it.
    Ignores tokens that are not on the current stack (e.g. across a
    {!collect} boundary). *)

val attr : string -> string -> unit
(** Attach [k=v] to the innermost open span; no-op when tracing is off
    or no span is open. *)

val attr_int : string -> int -> unit
(** Like {!attr}; the int renders only when tracing is on, so the call
    is allocation-free when off. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the closure inside a span, closing it on normal return and on
    exception. *)

val spans : unit -> span list
(** Completed spans of the current sink, in start order. *)

val clear : unit -> unit
(** Empty the sink (open spans are discarded too). *)

val drain : unit -> span list
(** Completed spans in start order, removing them from the sink; open
    spans and the id sequence are kept, so later drains stay
    consistent. *)

val dropped : unit -> int
(** Spans discarded because the sink hit its limit. *)

val collect : ?limit:int -> (unit -> 'a) -> 'a * span list
(** Run the closure with tracing enabled into a fresh private sink and
    return its completed spans; the previous sink and enabled flag are
    restored afterwards (also on exception, where spans are lost). *)

val duration : span -> float
(** [t1 - t0]; 0 for a span that never finished. *)
