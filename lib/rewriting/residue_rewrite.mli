(** The residue-based CQA rewriting of the PODS'99 paper (Sections 2 and
    3.1): append to each positive query atom the residues of the integrity
    constraints, iterating into residues' own positive atoms.

    Example 2.2: [Q(z) = ∃x,y Supply(x,y,z)] under the inclusion dependency
    becomes [∃x,y (Supply(x,y,z) ∧ Articles(z))].
    Example 3.4: [Q1(x,y) = Employee(x,y)] under the key becomes
    [Employee(x,y) ∧ ∀z (Employee(x,z) → z = y)].

    Scope: the rewriting is sound and complete for the classes identified in
    the original paper — notably quantifier-free queries under FDs and
    universal ICs, and existential queries whose quantified variables do not
    project key-determined attributes.  It is {e not} complete for
    projections of key conflicts (the paper's Q2; use {!Key_rewrite} or a
    repair-based engine there); [rewrite] is the computational device, the
    semantics stays with the repairs. *)

val rewrite :
  ?max_depth:int -> Logic.Cq.t -> Logic.Clause.t list -> Logic.Formula.t
(** The rewritten query as a formula with the CQ's head variables free.
    [max_depth] (default 4) bounds the residue iteration: interacting ICs
    can make iteration non-terminating (paper, Section 3.2), so expansion
    stops after that many rounds — residues beyond it are dropped, erring
    toward the original query condition. *)

val rewrite_ics :
  ?max_depth:int ->
  Logic.Cq.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Formula.t
(** [rewrite] on the clausal forms of the constraints (constraints with no
    clausal form, e.g. existential tgds, contribute nothing). *)

val consistent_answers :
  ?max_depth:int ->
  Logic.Cq.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Relational.Instance.t ->
  Relational.Value.t list list
(** Evaluate the rewriting on the (possibly inconsistent) instance. *)
