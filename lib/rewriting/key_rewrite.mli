(** First-order CQA rewriting for conjunctive queries under primary key
    constraints, after Fuxman–Miller (paper, Section 3.2; [64]) — the
    approach that also answers projections like the paper's Q2 correctly,
    where the residue rewriting of {!Residue_rewrite} is incomplete.

    Supported class (a practical reading of the C-forest condition):
    - self-join-free conjunctive queries;
    - every body relation has a declared primary key;
    - every existential variable occurring in a non-key position occurs in
      other atoms only in key positions, and the induced parent→child join
      graph is acyclic.

    [rewrite] returns [None] when the query falls outside this class; the
    caller should fall back to a repair-based or ASP engine (the paper's
    point that CQA is coNP-hard in general). *)

val rewrite :
  Logic.Cq.t -> keys:(string * int list) list -> Logic.Formula.t option

val consistent_answers :
  Logic.Cq.t ->
  keys:(string * int list) list ->
  Relational.Instance.t ->
  Relational.Value.t list list option
(** [None] when the query is outside the rewritable class. *)
