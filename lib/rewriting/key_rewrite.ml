module Formula = Logic.Formula
module Cq = Logic.Cq
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp
module Subst = Logic.Subst

type atom_info = {
  index : int;
  atom : Atom.t;
  key_positions : int list;
}

let var_positions (a : Atom.t) =
  List.mapi (fun pos t -> (pos, t)) a.args

(* Occurrences of a variable: (atom index, position, in-key?). *)
let occurrences atoms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun info ->
      List.iter
        (fun (pos, t) ->
          match t with
          | Term.Var v ->
              let in_key = List.mem pos info.key_positions in
              Hashtbl.replace tbl v
                ((info.index, pos, in_key)
                :: Option.value ~default:[] (Hashtbl.find_opt tbl v))
          | Term.Const _ -> ())
        (var_positions info.atom))
    atoms;
  tbl

exception Unsupported

let c_applicable = Obs.Counter.make "rewrite.key_applicable"
let c_unsupported = Obs.Counter.make "rewrite.key_unsupported"

let check_class (q : Cq.t) infos occ =
  (* Self-join-free. *)
  let rels = List.map (fun i -> i.atom.Atom.rel) infos in
  if List.length (List.sort_uniq String.compare rels) <> List.length rels then
    raise Unsupported;
  let head = Cq.head_vars q in
  Hashtbl.iter
    (fun v os ->
      let nonkey = List.filter (fun (_, _, k) -> not k) os in
      (* A variable in non-key positions of two different atoms is a
         non-key-to-non-key join: outside the forest class. *)
      let nonkey_atoms =
        List.sort_uniq compare (List.map (fun (i, _, _) -> i) nonkey)
      in
      if List.length nonkey_atoms > 1 && not (List.mem v head) then
        raise Unsupported;
      if List.length nonkey_atoms > 1 && List.mem v head then
        (* Head variables repeated across non-key positions force agreement
           conditions we do not generate. *)
        raise Unsupported;
      (* Repeated variable inside a single atom behaves like a self-join. *)
      let by_pos = List.sort_uniq compare (List.map (fun (i, p, _) -> (i, p)) os) in
      if List.length by_pos <> List.length os then raise Unsupported)
    occ

(* Parent→child edges: parent has v in a non-key position, child has v in a
   key position. *)
let children_of occ v parent_index =
  match Hashtbl.find_opt occ v with
  | None -> []
  | Some os ->
      List.filter_map
        (fun (i, _, in_key) ->
          if in_key && i <> parent_index then Some i else None)
        os
      |> List.sort_uniq compare

let check_acyclic infos occ =
  let n = List.length infos in
  let adj = Array.make n [] in
  List.iter
    (fun info ->
      List.iter
        (fun (pos, t) ->
          match t with
          | Term.Var v when not (List.mem pos info.key_positions) ->
              adj.(info.index) <- children_of occ v info.index @ adj.(info.index)
          | Term.Var _ | Term.Const _ -> ())
        (var_positions info.atom))
    infos;
  let state = Array.make n 0 in
  let rec dfs i =
    if state.(i) = 1 then raise Unsupported;
    if state.(i) = 0 then begin
      state.(i) <- 1;
      List.iter dfs adj.(i);
      state.(i) <- 2
    end
  in
  for i = 0 to n - 1 do
    dfs i
  done

let rewrite (q : Cq.t) ~keys =
  let infos =
    List.mapi
      (fun index atom ->
        match List.assoc_opt atom.Atom.rel keys with
        | None -> raise Unsupported
        | Some key_positions -> { index; atom; key_positions })
      q.body
  in
  let occ = occurrences infos in
  check_class q infos occ;
  check_acyclic infos occ;
  let head = Cq.head_vars q in
  let fresh =
    let counter = ref 0 in
    fun base ->
      incr counter;
      Printf.sprintf "%s#%d" base !counter
  in
  let info_array = Array.of_list infos in
  let comps_of v = List.filter (fun c -> List.mem v (Cmp.vars c)) q.comps in
  (* The consistency guard for one atom occurrence, with [subst] renaming
     its key-side variables (identity at the top level, parent-driven inside
     guards).  For every key-mate ū of the atom's key values, the non-key
     conditions must re-hold at ū. *)
  let rec guarded subst info =
    let atom = Subst.apply_atom subst info.atom in
    let nonkey_positions =
      List.filter
        (fun (pos, _) -> not (List.mem pos info.key_positions))
        (var_positions info.atom)
    in
    let mates =
      List.map
        (fun (pos, _) -> (pos, fresh (Printf.sprintf "u%d_%d" info.index pos)))
        nonkey_positions
    in
    let mate_atom_args =
      List.mapi
        (fun pos t ->
          match List.assoc_opt pos mates with
          | Some u -> Term.Var u
          | None -> Subst.apply_term subst t)
        info.atom.Atom.args
    in
    let mate_atom = Atom.make info.atom.Atom.rel mate_atom_args in
    let conds =
      List.concat_map
        (fun (pos, t) ->
          let u = Term.Var (List.assoc pos mates) in
          match t with
          | Term.Const c -> [ Formula.Cmp (Cmp.eq u (Term.Const c)) ]
          | Term.Var v ->
              let as_head =
                if List.mem v head then
                  [ Formula.Cmp (Cmp.eq u (Term.Var v)) ]
                else []
              in
              let as_comps =
                List.map
                  (fun c ->
                    Formula.Cmp (Subst.apply_cmp (Subst.singleton v u) c))
                  (comps_of v)
              in
              let as_children =
                List.map
                  (fun child ->
                    child_formula (Subst.bind subst v u) info_array.(child))
                  (children_of occ v info.index)
              in
              (* Only generate the child checks for existential variables;
                 for head variables the equality already pins the value. *)
              if as_head <> [] then as_head @ as_comps
              else as_comps @ as_children)
        nonkey_positions
    in
    let conds = List.filter (fun f -> f <> Formula.True) conds in
    match conds with
    | [] -> Formula.Atom atom
    | _ ->
        Formula.And
          ( Formula.Atom atom,
            Formula.forall
              (List.map snd mates)
              (Formula.Implies (Formula.Atom mate_atom, Formula.conj conds)) )
  (* A child atom re-checked inside a parent's guard: its own existential
     non-key variables get fresh names, and its subtree guard applies. *)
  and child_formula subst info =
    let freshened =
      List.fold_left
        (fun s (pos, t) ->
          match t with
          | Term.Var v
            when (not (List.mem pos info.key_positions))
                 && (not (List.mem v head))
                 && Subst.find s v = None ->
              Subst.bind s v (Term.Var (fresh v))
          | Term.Var _ | Term.Const _ -> s)
        subst (var_positions info.atom)
    in
    let bound =
      List.filter_map
        (fun (pos, t) ->
          match t with
          | Term.Var v when not (List.mem pos info.key_positions) -> (
              match Subst.find freshened v with
              | Some (Term.Var v') when not (String.equal v v') -> Some v'
              | _ -> None)
          | Term.Var _ | Term.Const _ -> None)
        (var_positions info.atom)
    in
    Formula.exists bound (guarded freshened info)
  in
  let body = List.map (guarded Subst.empty) infos in
  let comps = List.map (fun c -> Formula.Cmp c) q.comps in
  let evars = Cq.existential_vars q in
  Some (Formula.exists evars (Formula.conj (body @ comps)))

let rewrite q ~keys =
  let sp = Obs.Trace.start "rewrite.key" in
  let result = try rewrite q ~keys with Unsupported -> None in
  (match result with
  | Some _ -> Obs.Counter.incr c_applicable
  | None -> Obs.Counter.incr c_unsupported);
  if Obs.Trace.is_enabled () then
    Obs.Trace.attr "applicable" (if result = None then "no" else "yes");
  Obs.Trace.finish sp;
  result

let consistent_answers q ~keys inst =
  match rewrite q ~keys with
  | None -> None
  | Some f ->
      Some
        (Obs.Trace.with_span "rewrite.eval" (fun () ->
             Formula.answers inst ~free:(Cq.head_vars q) f))
