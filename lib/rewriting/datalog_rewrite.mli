(** Certain answers by Datalog rewriting — the executable side of the
    Koutris–Wijsen attack-graph analysis.

    For a self-join-free conjunctive query with an acyclic attack graph,
    certainty reduces one atom at a time: eliminating an unattacked atom
    [F = R(t̄)] turns "every repair satisfies the query" into "some key
    block of [R] is compatible with the context and {e every} tuple in it
    satisfies the comparisons and leaves a certain remainder".  Each level
    of the elimination order compiles to four nonrecursive, stratified
    rule groups over the raw database:

    {v
    ctx_i(W_i)            :- <all body atoms>.
    certain_i(W_i)        :- ctx_i(W_i), R(key̅, fresh̅), not bad_i(W_i, κ̅).
    bad_i(W_i, κ̅)         :- ctx_i(W_i), R(key̅, u̅), not good_i(W_i, κ̅, u̅).
    good_i(W_i, κ̅, u̅)     :- ctx_i(W_i), R(key̅, u̅), <comps>, certain_i+1(...).
    v}

    where [W_i] is the context — the variables shared between the already
    eliminated prefix (plus the free variables) and the remaining suffix
    (plus pending comparisons) — and κ̅ are the key variables first bound
    at this level.  The scheme strictly generalizes the Fuxman–Miller
    ∃∀-rewriting: repeated variables inside an atom, free variables in
    non-key joins, and constants all compile to per-tuple comparisons in
    [good_i].  The program runs on {!Datalog.Eval} (seminaive, stratified
    negation).

    Caveat: Datalog matching treats NULL as an ordinary constant, unlike
    the SQL three-valued semantics of {!Logic.Cq.answers} used by repair
    enumeration, so {!consistent_answers} declines instances containing
    NULL rather than diverge. *)

val goal_pred : string
(** Predicate holding the answer tuples of the rewritten program. *)

val rewrite :
  ?prefix:Datalog.Rule.t list ->
  Logic.Cq.t ->
  keys:(string * int list) list ->
  order:int list ->
  (Datalog.Program.t * string) option
(** The rewritten program and its goal predicate.  [order] is an
    unattacked-atom elimination order over [q.body] (from
    {!Analysis.Attack_graph.rewriting_input}); [prefix] prepends the
    saturation helper rules.  [None] when the query is not self-join-free,
    not safe, has an empty body, or [order] is not a permutation of the
    body. *)

val consistent_answers :
  ?prefix:Datalog.Rule.t list ->
  Logic.Cq.t ->
  keys:(string * int list) list ->
  order:int list ->
  Relational.Instance.t ->
  Relational.Value.t list list option
(** Evaluate the rewriting on an instance: distinct answer tuples, sorted
    like {!Logic.Cq.answers}.  [None] when {!rewrite} declines or the
    instance contains NULL. *)
