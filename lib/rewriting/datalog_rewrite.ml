module Cq = Logic.Cq
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp
module Value = Relational.Value
module VSet = Set.Make (String)

let goal_pred = "cqa$ans"
let c_applicable = Obs.Counter.make "rewrite.datalog_applicable"
let c_unsupported = Obs.Counter.make "rewrite.datalog_unsupported"

let ctx_pred l = Printf.sprintf "cqa$ctx%d" l
let certain_pred l = Printf.sprintf "cqa$certain%d" l
let bad_pred l = Printf.sprintf "cqa$bad%d" l
let good_pred l = Printf.sprintf "cqa$good%d" l

(* Fresh per-(level, position) variables; the '$' keeps them disjoint from
   anything the parser can produce. *)
let u_name l pos = Printf.sprintf "u$%d_%d" l pos
let e_name l pos = Printf.sprintf "e$%d_%d" l pos

let key_positions keys (a : Atom.t) =
  match List.assoc_opt a.Atom.rel keys with
  | Some ps -> ps
  | None -> List.init (Atom.arity a) Fun.id

exception Unsupported

let rewrite_exn ~prefix (q : Cq.t) ~keys ~order =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  if n = 0 then raise Unsupported;
  if List.sort compare order <> List.init n Fun.id then raise Unsupported;
  let rels = List.map (fun (a : Atom.t) -> a.Atom.rel) q.body in
  if List.length rels <> List.length (List.sort_uniq String.compare rels)
  then raise Unsupported;
  let head_vars = Cq.head_vars q in
  let body_vars = Cq.body_vars q in
  List.iter
    (fun v -> if not (List.mem v body_vars) then raise Unsupported)
    (head_vars @ List.concat_map Cmp.vars q.comps);
  let ordered = Array.of_list (List.map (fun i -> atoms.(i)) order) in
  (* 1-based level at which a variable is first bound. *)
  let first_level v =
    let rec go l =
      if l > n then raise Unsupported
      else if List.mem v (Atom.vars ordered.(l - 1)) then l
      else go (l + 1)
    in
    go 1
  in
  (* Each comparison applies at the first level where all its variables
     are bound, inside the per-tuple check of that level. *)
  let comps_at = Array.make (n + 1) [] in
  List.iter
    (fun c ->
      let l =
        List.fold_left (fun acc v -> max acc (first_level v)) 1 (Cmp.vars c)
      in
      comps_at.(l - 1) <- comps_at.(l - 1) @ [ c ])
    q.comps;
  (* W_l: variables the eliminated prefix (and the free variables) share
     with the remaining suffix atoms and still-pending comparisons. *)
  let w = Array.make (n + 2) [] in
  for l = 1 to n + 1 do
    let suffix = ref VSet.empty in
    for m = l to n do
      suffix := VSet.union !suffix (VSet.of_list (Atom.vars ordered.(m - 1)));
      List.iter
        (fun c -> suffix := VSet.union !suffix (VSet.of_list (Cmp.vars c)))
        comps_at.(m - 1)
    done;
    let prior = ref (VSet.of_list head_vars) in
    for m = 1 to l - 1 do
      prior := VSet.union !prior (VSet.of_list (Atom.vars ordered.(m - 1)))
    done;
    w.(l) <- VSet.elements (VSet.inter !suffix !prior)
  done;
  let var_atom p vs = Atom.make p (List.map Term.var vs) in
  let rules = ref [] in
  let add r = rules := r :: !rules in
  (* Empty remainder: always certain. *)
  add (Datalog.Rule.make (var_atom (certain_pred (n + 1)) w.(n + 1)) []);
  add
    (Datalog.Rule.make
       (Atom.make goal_pred q.head)
       [ var_atom (certain_pred 1) w.(1) ]);
  for l = 1 to n do
    let a = ordered.(l - 1) in
    let ps = key_positions keys a in
    let bound = VSet.of_list w.(l) in
    add (Datalog.Rule.make (var_atom (ctx_pred l) w.(l)) q.body);
    (* Key variables first bound at this level, in position order. *)
    let kappa = ref [] in
    List.iteri
      (fun pos t ->
        if List.mem pos ps then
          match t with
          | Term.Var v
            when (not (VSet.mem v bound)) && not (List.mem v !kappa) ->
              kappa := !kappa @ [ v ]
          | Term.Var _ | Term.Const _ -> ())
      a.Atom.args;
    let kappa = !kappa in
    let exist_args =
      List.mapi
        (fun pos t -> if List.mem pos ps then t else Term.var (e_name l pos))
        a.Atom.args
    in
    let block_args =
      List.mapi
        (fun pos t -> if List.mem pos ps then t else Term.var (u_name l pos))
        a.Atom.args
    in
    let us =
      List.init (Atom.arity a) Fun.id
      |> List.filter (fun pos -> not (List.mem pos ps))
      |> List.map (u_name l)
    in
    (* certain_l: some block of R is compatible with the context and no
       tuple of it fails. *)
    add
      (Datalog.Rule.make
         ~neg:[ var_atom (bad_pred l) (w.(l) @ kappa) ]
         (var_atom (certain_pred l) w.(l))
         [ var_atom (ctx_pred l) w.(l); Atom.make a.Atom.rel exist_args ]);
    (* bad_l: the block contains a tuple that is not good. *)
    add
      (Datalog.Rule.make
         ~neg:[ var_atom (good_pred l) (w.(l) @ kappa @ us) ]
         (var_atom (bad_pred l) (w.(l) @ kappa))
         [ var_atom (ctx_pred l) w.(l); Atom.make a.Atom.rel block_args ]);
    (* good_l: the tuple matches the atom's constants and repeated
       variables, satisfies the comparisons due at this level, and leaves
       a certain remainder. *)
    let sigma = Hashtbl.create 4 in
    let comps = ref [] in
    List.iteri
      (fun pos t ->
        if not (List.mem pos ps) then
          let u = Term.var (u_name l pos) in
          match t with
          | Term.Const _ -> comps := !comps @ [ Cmp.eq u t ]
          | Term.Var v -> (
              if VSet.mem v bound || List.mem v kappa then
                comps := !comps @ [ Cmp.eq u (Term.var v) ]
              else
                match Hashtbl.find_opt sigma v with
                | Some u0 -> comps := !comps @ [ Cmp.eq u (Term.var u0) ]
                | None -> Hashtbl.replace sigma v (u_name l pos)))
      a.Atom.args;
    let subst_term t =
      match t with
      | Term.Var v -> (
          match Hashtbl.find_opt sigma v with
          | Some u -> Term.var u
          | None -> t)
      | Term.Const _ -> t
    in
    List.iter
      (fun (c : Cmp.t) ->
        comps := !comps @ [ Cmp.make c.op (subst_term c.left) (subst_term c.right) ])
      comps_at.(l - 1);
    let next_args =
      List.map
        (fun v ->
          match Hashtbl.find_opt sigma v with
          | Some u -> Term.var u
          | None -> Term.var v)
        w.(l + 1)
    in
    add
      (Datalog.Rule.make ~comps:!comps
         (var_atom (good_pred l) (w.(l) @ kappa @ us))
         [
           var_atom (ctx_pred l) w.(l);
           Atom.make a.Atom.rel block_args;
           Atom.make (certain_pred (l + 1)) next_args;
         ])
  done;
  (Datalog.Program.make (prefix @ List.rev !rules), goal_pred)

let rewrite ?(prefix = []) q ~keys ~order =
  Obs.Trace.with_span "rewrite.datalog" @@ fun () ->
  match rewrite_exn ~prefix q ~keys ~order with
  | program, goal ->
      Obs.Counter.incr c_applicable;
      if Obs.Trace.is_enabled () then begin
        Obs.Trace.attr "applicable" "true";
        Obs.Trace.attr_int "rules" (List.length program.Datalog.Program.rules)
      end;
      Some (program, goal)
  | exception (Unsupported | Invalid_argument _) ->
      Obs.Counter.incr c_unsupported;
      if Obs.Trace.is_enabled () then Obs.Trace.attr "applicable" "false";
      None

let has_null inst =
  List.exists
    (fun (f : Relational.Fact.t) ->
      Array.exists (function Value.Null -> true | _ -> false) f.row)
    (Relational.Instance.fact_list inst)

let consistent_answers ?prefix q ~keys ~order inst =
  match rewrite ?prefix q ~keys ~order with
  | None -> None
  | Some (program, goal) ->
      if has_null inst then begin
        (* NULL joins structurally in Datalog but never under the SQL
           semantics the other tiers use; decline rather than diverge. *)
        Obs.Counter.incr c_unsupported;
        None
      end
      else
        let facts =
          Obs.Trace.with_span "rewrite.datalog_eval" (fun () ->
              Datalog.Eval.run_instance program inst)
        in
        let rows =
          Relational.Fact.Set.fold
            (fun (f : Relational.Fact.t) acc ->
              if String.equal f.rel goal then Array.to_list f.row :: acc
              else acc)
            facts []
        in
        Some (List.sort_uniq (List.compare Value.compare) rows)
