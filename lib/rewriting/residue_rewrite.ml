module Formula = Logic.Formula
module Cq = Logic.Cq

(* Attach residues to one positive atom and recurse into the positive atoms
   of the residues themselves (with fresh clause renamings per level, so
   nested quantified variables cannot capture each other). *)
let rec expand_atom ~depth ~level atom clauses =
  if depth <= 0 then Formula.Atom atom
  else
    let suffix = Printf.sprintf "'%d" level in
    let residues = Logic.Residue.for_atom ~suffix atom clauses in
    let residues =
      List.map (expand_positive ~depth:(depth - 1) ~level:(level + 1) clauses)
        residues
    in
    Formula.conj (Formula.Atom atom :: residues)

(* Walk a residue formula, expanding only atoms in positive positions:
   residues are consequences holding for retrieved tuples, so they apply to
   what the formula asserts, not to what it denies. *)
and expand_positive ~depth ~level clauses f =
  let rec go pos f =
    match f with
    | Formula.Atom a when pos -> expand_atom ~depth ~level a clauses
    | Formula.Atom _ | Formula.Cmp _ | Formula.True | Formula.False -> f
    | Formula.Not g -> Formula.Not (go (not pos) g)
    | Formula.And (a, b) -> Formula.And (go pos a, go pos b)
    | Formula.Or (a, b) -> Formula.Or (go pos a, go pos b)
    | Formula.Implies (a, b) -> Formula.Implies (go (not pos) a, go pos b)
    | Formula.Exists (vs, g) -> Formula.Exists (vs, go pos g)
    | Formula.Forall (vs, g) -> Formula.Forall (vs, go pos g)
  in
  go true f

let c_rewrites = Obs.Counter.make "rewrite.residue_rewrites"

let rewrite ?(max_depth = 4) (q : Cq.t) clauses =
  let sp = Obs.Trace.start "rewrite.residue" in
  Obs.Counter.incr c_rewrites;
  let body =
    Formula.conj
      (List.map (fun a -> expand_atom ~depth:max_depth ~level:0 a clauses) q.body
      @ List.map (fun c -> Formula.Cmp c) q.comps)
  in
  let f = Formula.exists (Cq.existential_vars q) body in
  Obs.Trace.finish sp;
  f

let rewrite_ics ?max_depth q schema ics =
  let clauses = List.concat_map (Constraints.Ic.to_clauses schema) ics in
  rewrite ?max_depth q clauses

let consistent_answers ?max_depth q schema ics inst =
  let f = rewrite_ics ?max_depth q schema ics in
  let free = Cq.head_vars q in
  Obs.Trace.with_span "rewrite.eval" (fun () -> Formula.answers inst ~free f)
