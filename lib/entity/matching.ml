module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value

type similarity = Value.t -> Value.t -> bool

let equal_similarity = Value.equal

let as_lower_string = function
  | Value.Str s -> Some (String.lowercase_ascii s)
  | _ -> None

let prefix_similarity n a b =
  match as_lower_string a, as_lower_string b with
  | Some sa, Some sb ->
      let k = min n (min (String.length sa) (String.length sb)) in
      String.sub sa 0 k = String.sub sb 0 k
  | _ -> Value.equal a b

let edit_distance a b =
  let n = String.length a and m = String.length b in
  let prev = Array.init (m + 1) Fun.id in
  let curr = Array.make (m + 1) 0 in
  for i = 1 to n do
    curr.(0) <- i;
    for j = 1 to m do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (m + 1)
  done;
  prev.(m)

let edit_similarity ~max_distance a b =
  match a, b with
  | Value.Str sa, Value.Str sb ->
      edit_distance (String.lowercase_ascii sa) (String.lowercase_ascii sb)
      <= max_distance
  | _ -> Value.equal a b

type md = {
  rel : string;
  premise : (int * similarity) list;
  identify : int list;
}

type policy = Prefer_first | Prefer_longest | Prefer_most_frequent

let premise_holds (md : md) (row1 : Value.t array) (row2 : Value.t array) =
  List.for_all (fun (pos, sim) -> sim row1.(pos) row2.(pos)) md.premise

let identify_violated (md : md) row1 row2 =
  List.exists (fun pos -> not (Value.equal row1.(pos) row2.(pos))) md.identify

(* One violating (md, tid1, tid2) triple, if any. *)
let find_violation inst mds =
  let rec check_md = function
    | [] -> None
    | md :: rest -> (
        let tuples = Instance.tuples inst ~rel:md.rel in
        let rec pairs = function
          | [] -> None
          | (t1, r1) :: more -> (
              match
                List.find_opt
                  (fun (_, r2) -> premise_holds md r1 r2 && identify_violated md r1 r2)
                  more
              with
              | Some (t2, _) -> Some (md, t1, t2)
              | None -> pairs more)
        in
        match pairs tuples with Some v -> Some v | None -> check_md rest)
  in
  check_md mds

let frequency inst rel pos v =
  List.fold_left
    (fun acc row -> if Value.equal row.(pos) v then acc + 1 else acc)
    0
    (Instance.rows inst ~rel)

let preferred ~policy inst rel pos t1 v1 t2 v2 =
  match policy with
  | Prefer_first -> if Tid.compare t1 t2 <= 0 then v1 else v2
  | Prefer_longest -> (
      match v1, v2 with
      | Value.Str a, Value.Str b ->
          if String.length a >= String.length b then v1 else v2
      | _ -> v1)
  | Prefer_most_frequent ->
      if frequency inst rel pos v1 >= frequency inst rel pos v2 then v1 else v2

let chase ?(policy = Prefer_first) ?(max_rounds = 100) inst mds =
  let rec go inst round =
    if round >= max_rounds then
      failwith "Matching.chase: did not stabilize within max_rounds";
    match find_violation inst mds with
    | None -> inst
    | Some (md, t1, t2) ->
        let r1 = (Instance.fact_of inst t1).Relational.Fact.row in
        let r2 = (Instance.fact_of inst t2).Relational.Fact.row in
        let inst =
          List.fold_left
            (fun inst pos ->
              let v1 = r1.(pos) and v2 = r2.(pos) in
              if Value.equal v1 v2 then inst
              else begin
                let v = preferred ~policy inst md.rel pos t1 v1 t2 v2 in
                let set inst tid =
                  if Instance.mem_tid inst tid then
                    Instance.update_cell inst (Tid.Cell.make tid (pos + 1)) v
                  else inst
                in
                set (set inst t1) t2
              end)
            inst md.identify
        in
        go inst (round + 1)
  in
  go inst 0

let is_stable inst mds = find_violation inst mds = None

let clusters inst mds =
  let tids = Tid.Set.elements (Instance.tids inst) in
  let matched t1 t2 =
    match Instance.find_fact inst t1, Instance.find_fact inst t2 with
    | Some f1, Some f2 when String.equal f1.rel f2.rel ->
        List.exists
          (fun md ->
            String.equal md.rel f1.rel && premise_holds md f1.row f2.row)
          mds
    | _ -> false
  in
  (* BFS components over the match relation. *)
  let visited = Hashtbl.create 16 in
  List.filter_map
    (fun seed ->
      if Hashtbl.mem visited seed then None
      else begin
        let component = ref Tid.Set.empty in
        let queue = Queue.create () in
        Queue.add seed queue;
        Hashtbl.replace visited seed ();
        while not (Queue.is_empty queue) do
          let t = Queue.pop queue in
          component := Tid.Set.add t !component;
          List.iter
            (fun t' ->
              if (not (Hashtbl.mem visited t')) && matched t t' then begin
                Hashtbl.replace visited t' ();
                Queue.add t' queue
              end)
            tids
        done;
        if Tid.Set.cardinal !component >= 2 then Some !component else None
      end)
    tids

let resolve_with_key ?policy inst schema ~mds ~key =
  let merged = chase ?policy inst mds in
  List.map
    (fun (r : Repairs.Repair.t) -> r.repaired)
    (Repairs.S_repair.enumerate merged schema [ key ])
