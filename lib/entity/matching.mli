(** Entity resolution with matching dependencies (paper, Section 6:
    "entity resolution (deduplication, record-matching) with
    entity-linking dependencies [28, 34, 35], and the combination of
    entity resolution and repairs [59, 66]").

    A matching dependency (MD) on relation R says: when two tuples are
    {e similar} on some attributes, they must be {e identified} on others:

      R[A] ≈ R[A]  →  R[B] ⇌ R[B]

    Enforcing MDs is a chase: whenever the premise holds and the matched
    attributes differ, the two values merge to a common representative
    (here: the preferred value under a resolution policy).  The chase
    terminates — each step strictly reduces the number of distinct values —
    and its result is a {e stable instance}.

    [cluster] exposes the duplicate clusters (connected components of the
    similarity-match relation), and {!resolve_with_key} combines matching
    with key repairs, the [59] interaction. *)

type similarity = Relational.Value.t -> Relational.Value.t -> bool
(** Must be reflexive and symmetric on the values it is applied to. *)

val equal_similarity : similarity
val prefix_similarity : int -> similarity
(** Strings sharing a prefix of the given length (case-insensitive);
    non-strings fall back to equality. *)

val edit_distance : string -> string -> int
val edit_similarity : max_distance:int -> similarity

type md = {
  rel : string;
  premise : (int * similarity) list;  (** positions that must be similar *)
  identify : int list;  (** positions forced to agree *)
}

type policy = Prefer_first | Prefer_longest | Prefer_most_frequent

val chase :
  ?policy:policy ->
  ?max_rounds:int ->
  Relational.Instance.t ->
  md list ->
  Relational.Instance.t
(** Enforce the MDs to a stable instance.  [max_rounds] (default 100)
    guards the fixpoint loop. *)

val is_stable : Relational.Instance.t -> md list -> bool

val clusters :
  Relational.Instance.t -> md list -> Relational.Tid.Set.t list
(** Duplicate clusters: connected components of tuples matched by some
    MD premise (singletons omitted). *)

val resolve_with_key :
  ?policy:policy ->
  Relational.Instance.t ->
  Relational.Schema.t ->
  mds:md list ->
  key:Constraints.Ic.t ->
  Relational.Instance.t list
(** First enforce the MDs (merging near-duplicate values), then repair the
    remaining key violations: the [59] pipeline of record matching
    interacting with repairing. *)
