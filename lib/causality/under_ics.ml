module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Ic = Constraints.Ic

type t = {
  tid : Tid.t;
  responsibility : float;
  min_contingency_size : int;
  a_min_contingency : Tid.Set.t;
}

let has_answer q answer inst =
  List.exists
    (fun row -> List.for_all2 Value.equal row answer)
    (Logic.Cq.answers q inst)

let consistent inst schema ics = Ic.all_hold inst schema ics

let rec subsets k pool =
  if k = 0 then [ [] ]
  else
    match pool with
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let actual_causes inst schema ~ics q ~answer =
  if not (consistent inst schema ics) then
    invalid_arg "Under_ics.actual_causes: instance violates the constraints";
  if not (has_answer q answer inst) then
    invalid_arg "Under_ics.actual_causes: not an answer";
  let tids = Tid.Set.elements (Instance.tids inst) in
  let n = List.length tids in
  let found = Hashtbl.create 16 in
  let without set =
    Instance.restrict inst (Tid.Set.diff (Instance.tids inst) set)
  in
  for k = 0 to n - 1 do
    List.iter
      (fun gamma ->
        let gamma_set = Tid.Set.of_list gamma in
        let d_gamma = without gamma_set in
        if consistent d_gamma schema ics && has_answer q answer d_gamma then
          List.iter
            (fun tid ->
              if (not (Tid.Set.mem tid gamma_set)) && not (Hashtbl.mem found tid)
              then
                let d_tau = Instance.delete d_gamma tid in
                if
                  consistent d_tau schema ics
                  && not (has_answer q answer d_tau)
                then
                  Hashtbl.replace found tid
                    {
                      tid;
                      responsibility = 1.0 /. float_of_int (1 + k);
                      min_contingency_size = k;
                      a_min_contingency = gamma_set;
                    })
            tids)
      (subsets k tids)
  done;
  Hashtbl.fold (fun _ c acc -> c :: acc) found []
  |> List.sort (fun a b -> Tid.compare a.tid b.tid)

let responsibility inst schema ~ics q ~answer tid =
  match
    List.find_opt
      (fun c -> Tid.equal c.tid tid)
      (actual_causes inst schema ~ics q ~answer)
  with
  | Some c -> c.responsibility
  | None -> 0.0
