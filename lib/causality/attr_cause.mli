(** Attribute-level causes (paper, Section 7.1, Example 7.3).

    Causes are cells [tid[pos]] rather than whole tuples, obtained from the
    attribute-level null-based repairs of Section 4.3: a cell is a
    counterfactual cause when changing it alone to NULL falsifies the
    query, and an actual cause with contingency Γ (a set of cells) when
    {cell} ∪ Γ is a minimal change set. *)

type t = {
  cell : Relational.Tid.Cell.t;
  responsibility : float;
  min_contingency_size : int;
}

val actual_causes :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t -> t list
(** Empty when the query is false in the instance. *)

val counterfactual_causes :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.Cell.t list

val responsibility :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.Cell.t -> float
