(** Causal effect of a tuple on a query answer — the alternative to
    responsibility the paper points to (Section 7; Salimi–Bertossi–Suciu–
    Van den Broeck [102]).

    Make every endogenous tuple independently present with probability ½
    (a uniform sub-instance distribution); the causal effect of τ on a
    monotone Boolean query Q is

      CE(τ) = P(Q | τ present) − P(Q | τ absent),

    a value in [0, 1] for monotone queries: 0 means τ is irrelevant, 1
    means τ is decisive in every context. *)

val exact :
  ?exogenous:Relational.Tid.Set.t ->
  Relational.Instance.t ->
  Logic.Cq.t ->
  Relational.Tid.t ->
  float
(** Exact computation by enumerating the 2^n sub-instances of the
    endogenous tuples; raises [Invalid_argument] beyond 20 endogenous
    tuples.  [exogenous] tuples are always present. *)

val sampled :
  ?exogenous:Relational.Tid.Set.t ->
  ?seed:int ->
  ?samples:int ->
  Relational.Instance.t ->
  Logic.Cq.t ->
  Relational.Tid.t ->
  float
(** Monte Carlo estimate ([samples] defaults to 2000). *)

val ranking :
  ?exogenous:Relational.Tid.Set.t ->
  Relational.Instance.t ->
  Logic.Cq.t ->
  (Relational.Tid.t * float) list
(** All endogenous tuples with their exact causal effects, strongest
    first. *)
