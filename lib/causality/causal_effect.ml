module Instance = Relational.Instance
module Tid = Relational.Tid

let endogenous_tids ?(exogenous = Tid.Set.empty) inst =
  Tid.Set.elements (Tid.Set.diff (Instance.tids inst) exogenous)

let restrict_to inst keep =
  Instance.restrict inst keep

(* P(Q | τ fixed present) and P(Q | τ fixed absent) under the uniform
   sub-instance distribution of the other endogenous tuples. *)
let exact ?(exogenous = Tid.Set.empty) inst q tau =
  let others =
    List.filter
      (fun t -> not (Tid.equal t tau))
      (endogenous_tids ~exogenous inst)
  in
  let n = List.length others in
  if n > 20 then
    invalid_arg "Causal_effect.exact: too many endogenous tuples (use sampled)";
  let arr = Array.of_list others in
  let total = 1 lsl n in
  let with_tau = ref 0 and without_tau = ref 0 in
  for mask = 0 to total - 1 do
    let keep = ref exogenous in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then keep := Tid.Set.add arr.(i) !keep
    done;
    let base = !keep in
    if Logic.Cq.holds q (restrict_to inst (Tid.Set.add tau base)) then
      incr with_tau;
    if Logic.Cq.holds q (restrict_to inst base) then incr without_tau
  done;
  float_of_int (!with_tau - !without_tau) /. float_of_int total

let sampled ?(exogenous = Tid.Set.empty) ?(seed = 0) ?(samples = 2000) inst q tau =
  let rng = Random.State.make [| seed |] in
  let others =
    List.filter
      (fun t -> not (Tid.equal t tau))
      (endogenous_tids ~exogenous inst)
  in
  let with_tau = ref 0 and without_tau = ref 0 in
  for _ = 1 to samples do
    let base =
      List.fold_left
        (fun acc t -> if Random.State.bool rng then Tid.Set.add t acc else acc)
        exogenous others
    in
    if Logic.Cq.holds q (restrict_to inst (Tid.Set.add tau base)) then
      incr with_tau;
    if Logic.Cq.holds q (restrict_to inst base) then incr without_tau
  done;
  float_of_int (!with_tau - !without_tau) /. float_of_int samples

let ranking ?(exogenous = Tid.Set.empty) inst q =
  endogenous_tids ~exogenous inst
  |> List.map (fun t -> (t, exact ~exogenous inst q t))
  |> List.sort (fun (t1, a) (t2, b) ->
         match Float.compare b a with 0 -> Tid.compare t1 t2 | c -> c)
