(** Causality in the presence of integrity constraints (paper, Section 7.2,
    Example 7.4; Bertossi–Salimi [27]).

    The instance is assumed consistent wrt. Σ.  A tuple τ is an actual
    cause for the answer ā of a monotone query Q under Σ with contingency
    Γ when (a) D∖Γ ⊨ Σ, (b) ā ∈ Q(D∖Γ), (c) D∖(Γ∪{τ}) ⊨ Σ and
    (d) ā ∉ Q(D∖(Γ∪{τ})).

    Deciding causality under ICs is NP-complete already for CQs with one
    inclusion dependency (the paper cites [27]), so the computation is a
    smallest-first exhaustive search over contingency sets — exact on the
    small instances it is meant for. *)

type t = {
  tid : Relational.Tid.t;
  responsibility : float;
  min_contingency_size : int;
  a_min_contingency : Relational.Tid.Set.t;
}

val actual_causes :
  Relational.Instance.t ->
  Relational.Schema.t ->
  ics:Constraints.Ic.t list ->
  Logic.Cq.t ->
  answer:Relational.Value.t list ->
  t list
(** Raises [Invalid_argument] if D violates Σ or ā is not an answer. *)

val responsibility :
  Relational.Instance.t ->
  Relational.Schema.t ->
  ics:Constraints.Ic.t list ->
  Logic.Cq.t ->
  answer:Relational.Value.t list ->
  Relational.Tid.t ->
  float
