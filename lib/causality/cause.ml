module Instance = Relational.Instance
module Tid = Relational.Tid
module Ic = Constraints.Ic

type t = {
  tid : Tid.t;
  responsibility : float;
  min_contingency_size : int;
  a_min_contingency : Tid.Set.t;
}

let holds (q : Logic.Cq.t) inst = Logic.Cq.holds q inst

let kappa (q : Logic.Cq.t) =
  Ic.denial ~name:("kappa_" ^ q.name) ~comps:q.comps q.body

(* Minimal deletion sets = deltas of the S-repairs wrt κ(Q). *)
let minimal_deletion_sets inst schema q =
  let repairs = Repairs.S_repair.enumerate inst schema [ kappa q ] in
  List.map
    (fun (r : Repairs.Repair.t) ->
      Relational.Fact.Set.fold
        (fun f acc ->
          match Instance.tid_of inst f with
          | Some tid -> Tid.Set.add tid acc
          | None -> acc)
        r.deleted Tid.Set.empty)
    repairs

let actual_causes inst schema q =
  if not (holds q inst) then []
  else
    let deletions = minimal_deletion_sets inst schema q in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun dset ->
        let size = Tid.Set.cardinal dset in
        Tid.Set.iter
          (fun tid ->
            let gamma = Tid.Set.remove tid dset in
            match Hashtbl.find_opt tbl tid with
            | Some (best, _) when best <= size - 1 -> ()
            | _ -> Hashtbl.replace tbl tid (size - 1, gamma))
          dset)
      deletions;
    Hashtbl.fold
      (fun tid (gamma_size, gamma) acc ->
        {
          tid;
          responsibility = 1.0 /. float_of_int (1 + gamma_size);
          min_contingency_size = gamma_size;
          a_min_contingency = gamma;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> Tid.compare a.tid b.tid)

let counterfactual_causes inst schema q =
  List.filter_map
    (fun c -> if c.min_contingency_size = 0 then Some c.tid else None)
    (actual_causes inst schema q)

let responsibility inst schema q tid =
  match List.find_opt (fun c -> Tid.equal c.tid tid) (actual_causes inst schema q) with
  | Some c -> c.responsibility
  | None -> 0.0

let is_actual_cause inst schema q tid = responsibility inst schema q tid > 0.0

let most_responsible inst schema q =
  match actual_causes inst schema q with
  | [] -> []
  | causes ->
      let best =
        List.fold_left (fun m c -> Float.max m c.responsibility) 0.0 causes
      in
      List.filter_map
        (fun c -> if c.responsibility = best then Some c.tid else None)
        causes

(* Smallest-first direct search: for k = 0, 1, ... try every deletion set Γ
   of size k; a tuple τ with holds(D∖Γ) and ¬holds(D∖(Γ∪{τ})) is a cause
   with responsibility 1/(1+k).  Once a tuple is witnessed at size k it is
   never improved later, so the loop stops when all tuples are decided or
   subsets are exhausted. *)
let generic_actual_causes ~holds inst =
  if not (holds inst) then []
  else begin
    let tids = Tid.Set.elements (Instance.tids inst) in
    let n = List.length tids in
    let found = Hashtbl.create 16 in
    let rec subsets k pool =
      if k = 0 then [ [] ]
      else
        match pool with
        | [] -> []
        | x :: rest ->
            List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
    in
    for k = 0 to n - 1 do
      if Hashtbl.length found < n then
        List.iter
          (fun gamma ->
            let gamma_set = Tid.Set.of_list gamma in
            let without_gamma = Instance.restrict inst (Tid.Set.diff (Instance.tids inst) gamma_set) in
            if holds without_gamma then
              List.iter
                (fun tid ->
                  if (not (Tid.Set.mem tid gamma_set)) && not (Hashtbl.mem found tid)
                  then
                    let without_tau = Instance.delete without_gamma tid in
                    if not (holds without_tau) then
                      Hashtbl.replace found tid
                        {
                          tid;
                          responsibility = 1.0 /. float_of_int (1 + k);
                          min_contingency_size = k;
                          a_min_contingency = gamma_set;
                        })
                tids)
          (subsets k tids)
    done;
    Hashtbl.fold (fun _ c acc -> c :: acc) found []
    |> List.sort (fun a b -> Tid.compare a.tid b.tid)
  end
