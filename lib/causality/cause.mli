(** Causality for query answers (paper, Section 7; Meliou et al. [91],
    Bertossi–Salimi [26]).

    A tuple τ is a {e counterfactual cause} for a Boolean query Q true in D
    when D∖{τ} ⊭ Q, and an {e actual cause} when some contingency set
    Γ ⊆ D makes it counterfactual in D∖Γ.  The responsibility of τ is
    1/(1+|Γ|) for the smallest such Γ.

    Computation uses the repair connection (Section 7): the S-repairs of D
    wrt. the denial κ(Q) = ¬Q are exactly the complements of the minimal
    deletion sets; τ is an actual cause with minimal contingency Γ iff
    D∖(Γ∪{τ}) is an S-repair, and C-repairs give the most responsible
    causes. *)

type t = {
  tid : Relational.Tid.t;
  responsibility : float;
  min_contingency_size : int;
  a_min_contingency : Relational.Tid.Set.t;
      (** One witnessing minimal contingency set of that size. *)
}

val holds : Logic.Cq.t -> Relational.Instance.t -> bool
(** Truth of the (Boolean reading of the) query. *)

val actual_causes :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t -> t list
(** All actual causes for Q being true in D, sorted by tid.  Empty when
    D ⊭ Q. *)

val counterfactual_causes :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.t list
(** Causes of responsibility 1. *)

val responsibility :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.t -> float
(** 0. when the tuple is not an actual cause. *)

val is_actual_cause :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.t -> bool

val most_responsible :
  Relational.Instance.t -> Relational.Schema.t -> Logic.Cq.t ->
  Relational.Tid.t list
(** The MRACs — causes achieving the maximum responsibility; they are the
    tuples deleted by C-repairs. *)

val generic_actual_causes :
  holds:(Relational.Instance.t -> bool) ->
  Relational.Instance.t ->
  t list
(** Direct-definition computation for an arbitrary monotone Boolean query
    (e.g. a Datalog query, for which the paper notes causality can be
    NP-hard): smallest-first search over deletion sets.  Exponential in the
    instance size; intended for small instances and as a differential
    oracle. *)
