module Tid = Relational.Tid
module Ic = Constraints.Ic

type t = {
  cell : Tid.Cell.t;
  responsibility : float;
  min_contingency_size : int;
}

let kappa (q : Logic.Cq.t) =
  Ic.denial ~name:("kappa_" ^ q.name) ~comps:q.comps q.body

let actual_causes inst schema q =
  if not (Logic.Cq.holds q inst) then []
  else
    let repairs = Repairs.Attr_repair.enumerate inst schema [ kappa q ] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Repairs.Attr_repair.t) ->
        let size = Tid.Cell.Set.cardinal r.changes in
        Tid.Cell.Set.iter
          (fun cell ->
            match Hashtbl.find_opt tbl cell with
            | Some best when best <= size - 1 -> ()
            | _ -> Hashtbl.replace tbl cell (size - 1))
          r.changes)
      repairs;
    Hashtbl.fold
      (fun cell gamma acc ->
        {
          cell;
          responsibility = 1.0 /. float_of_int (1 + gamma);
          min_contingency_size = gamma;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> Tid.Cell.compare a.cell b.cell)

let counterfactual_causes inst schema q =
  List.filter_map
    (fun c -> if c.min_contingency_size = 0 then Some c.cell else None)
    (actual_causes inst schema q)

let responsibility inst schema q cell =
  match
    List.find_opt (fun c -> Tid.Cell.equal c.cell cell) (actual_causes inst schema q)
  with
  | Some c -> c.responsibility
  | None -> 0.0
