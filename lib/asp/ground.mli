(** Grounding: instantiate program rules over the derivable atom base.

    The possibly-true atom base is the least fixpoint of the program with
    negation ignored and disjunctive heads read as conjunctions — a standard
    over-approximation of the atoms any stable model can contain.  Rules are
    then instantiated with their positive bodies ranging over that base;
    comparisons are evaluated structurally at grounding time, and negative
    literals on atoms outside the base are dropped as trivially true. *)

type rule = { head : int list; pos : int list; neg : int list }
type weak = { pos : int list; neg : int list; weight : int }

type t = {
  atoms : Relational.Fact.t array; (* id -> atom; ids are 1-based *)
  index : (Relational.Fact.t, int) Hashtbl.t;
  natoms : int;
  rules : rule list;
  weaks : weak list;
}

val atom_id : t -> Relational.Fact.t -> int option
val ground : Syntax.t -> Relational.Fact.t list -> t
(** [ground program edb]: the EDB facts are added as ground facts. *)

val pp : Format.formatter -> t -> unit
