(** Disjunctive logic programs with default negation and weak constraints —
    the language of the paper's repair programs (Sections 3.3 and 4.1), i.e.
    the fragment of DLV they need.

    A rule is [h1 ∨ ... ∨ hk :- b1, ..., bn, not c1, ..., not cm, comps];
    an empty head is a hard constraint.  A weak constraint
    [:~ body] may be violated, but the total weight of violated ground
    instances is minimized across stable models (Example 4.2). *)

type rule = {
  head : Logic.Atom.t list;
  pos : Logic.Atom.t list;
  neg : Logic.Atom.t list;
  comps : Logic.Cmp.t list;
}

type weak = {
  wpos : Logic.Atom.t list;
  wneg : Logic.Atom.t list;
  wcomps : Logic.Cmp.t list;
  weight : int;
}

type t = { rules : rule list; weaks : weak list }

val rule :
  ?neg:Logic.Atom.t list ->
  ?comps:Logic.Cmp.t list ->
  Logic.Atom.t list ->
  Logic.Atom.t list ->
  rule
(** [rule heads body].  Raises [Invalid_argument] on unsafe rules: head,
    negated and comparison variables must occur in the positive body. *)

val fact : Logic.Atom.t -> rule
val hard_constraint :
  ?neg:Logic.Atom.t list -> ?comps:Logic.Cmp.t list -> Logic.Atom.t list -> rule

val weak :
  ?neg:Logic.Atom.t list ->
  ?comps:Logic.Cmp.t list ->
  ?weight:int ->
  Logic.Atom.t list ->
  weak

val program : ?weaks:weak list -> rule list -> t
val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> t -> unit
