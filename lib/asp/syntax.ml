module Atom = Logic.Atom
module Cmp = Logic.Cmp

type rule = {
  head : Atom.t list;
  pos : Atom.t list;
  neg : Atom.t list;
  comps : Cmp.t list;
}

type weak = {
  wpos : Atom.t list;
  wneg : Atom.t list;
  wcomps : Cmp.t list;
  weight : int;
}

type t = { rules : rule list; weaks : weak list }

let check_safety ~what ~bound needed =
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        invalid_arg
          (Printf.sprintf "Asp.Syntax: unsafe %s, variable %s not bound" what v))
    needed

let rule ?(neg = []) ?(comps = []) head pos =
  let bound = List.concat_map Atom.vars pos in
  check_safety ~what:"rule" ~bound
    (List.concat_map Atom.vars head
    @ List.concat_map Atom.vars neg
    @ List.concat_map Cmp.vars comps);
  { head; pos; neg; comps }

let fact a = rule [ a ] []
let hard_constraint ?neg ?comps pos = rule ?neg ?comps [] pos

let weak ?(neg = []) ?(comps = []) ?(weight = 1) pos =
  let bound = List.concat_map Atom.vars pos in
  check_safety ~what:"weak constraint" ~bound
    (List.concat_map Atom.vars neg @ List.concat_map Cmp.vars comps);
  { wpos = pos; wneg = neg; wcomps = comps; weight }

let program ?(weaks = []) rules = { rules; weaks }

let pp_atoms sep =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep)
    Atom.pp

let pp_body ppf (pos, neg, comps) =
  pp_atoms ", " ppf pos;
  List.iter (fun a -> Format.fprintf ppf ", not %a" Atom.pp a) neg;
  List.iter (fun c -> Format.fprintf ppf ", %a" Cmp.pp c) comps

let pp_rule ppf r =
  (match r.head with
  | [] -> Format.pp_print_string ppf ":-"
  | hs ->
      pp_atoms " ∨ " ppf hs;
      if r.pos <> [] || r.neg <> [] || r.comps <> [] then
        Format.pp_print_string ppf " :-");
  if r.pos <> [] || r.neg <> [] || r.comps <> [] then begin
    Format.pp_print_string ppf " ";
    pp_body ppf (r.pos, r.neg, r.comps)
  end

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule ppf t.rules;
  List.iter
    (fun w ->
      Format.fprintf ppf "@,:~ %a [%d]" pp_body (w.wpos, w.wneg, w.wcomps)
        w.weight)
    t.weaks
