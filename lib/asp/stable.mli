(** Stable models (answer sets) of disjunctive programs, with weak
    constraints — the semantics the paper's repair programs rely on:
    stable models of a repair program correspond one-to-one to repairs
    (Section 3.3), and weak constraints select the C-repair models
    (Example 4.2).

    The computation goes through the SAT substrate: candidate models are
    classical models of the ground rules; a candidate M is stable iff M is
    a minimal model of the Gelfond–Lifschitz reduct P^M, which is checked
    with a second SAT query for a strictly smaller model of the reduct. *)

type model = Relational.Fact.Set.t

val models_ground : Ground.t -> model list
(** All stable models, ignoring weak constraints. *)

val models : Syntax.t -> Relational.Fact.t list -> model list
(** Ground then solve. *)

val optimal_models : Syntax.t -> Relational.Fact.t list -> (int * model) list
(** Stable models minimizing the total weight of violated weak constraints,
    each with that violation weight (all returned models share the minimum
    weight; [(0, m)] when there are no weak constraints).  Empty when the
    program has no stable model. *)

val violation_weight : Ground.t -> model -> int
