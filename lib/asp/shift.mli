(** The shifting transformation: disjunctive rules into normal
    (non-disjunctive) ones.

    The paper notes (end of Section 3.3, after [43]) that repair programs
    for denial constraints "can be transformed into non-disjunctive,
    unstratified programs".  Shifting replaces

      a1 ∨ ... ∨ ak :- body        by the k rules
      ai :- body, not a1, ..., not a(i-1), not a(i+1), ..., not ak

    which preserves the stable models exactly for head-cycle-free programs
    — and repair programs for DCs are head-cycle-free (their head atoms
    never support each other positively). *)

val rule : Syntax.rule -> Syntax.rule list

val program : Syntax.t -> Syntax.t
(** Shift every disjunctive rule; weak constraints pass through. *)

val is_head_cycle_free : Syntax.t -> bool
(** Sufficient syntactic check: no two atoms of one disjunctive head share
    a predicate with mutual positive dependency through the program's
    positive bodies. *)
