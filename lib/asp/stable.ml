module Fact = Relational.Fact
module Cnf = Sat.Cnf
module Dpll = Sat.Dpll

type model = Fact.Set.t

(* Candidates are classical models enumerated by SAT; each undergoes a
   reduct-minimality check, and the survivors are the stable models. *)
let c_candidates = Obs.Counter.make "asp.candidates"
let c_reduct_checks = Obs.Counter.make "asp.reduct_checks"
let c_stable = Obs.Counter.make "asp.stable_models"

(* Classical clauses of the ground rules: body → head becomes
   ¬pos ∨ neg ∨ head.  In addition, support clauses prune unsupported
   candidates: in every stable model, a true atom must appear in the head
   of some rule whose body holds (otherwise removing the atom still models
   the reduct, contradicting minimality).  One auxiliary variable per rule
   encodes its body truth; without this, the candidate enumeration would
   walk an exponential space of models with freely-true derived atoms. *)
let clauses_of (g : Ground.t) =
  let cnf = Cnf.create () in
  Cnf.reserve cnf g.natoms;
  let supporting = Hashtbl.create 64 in
  List.iter
    (fun (r : Ground.rule) ->
      Cnf.add_clause cnf (r.head @ List.map (fun b -> -b) r.pos @ r.neg);
      let body_var = Cnf.fresh cnf in
      (* body_var ↔ (∧ pos ∧ ¬neg) *)
      List.iter (fun b -> Cnf.add_clause cnf [ -body_var; b ]) r.pos;
      List.iter (fun c -> Cnf.add_clause cnf [ -body_var; -c ]) r.neg;
      Cnf.add_clause cnf
        (body_var :: (List.map (fun b -> -b) r.pos @ r.neg));
      List.iter
        (fun h ->
          Hashtbl.replace supporting h
            (body_var :: Option.value ~default:[] (Hashtbl.find_opt supporting h)))
        r.head)
    g.rules;
  for a = 1 to g.natoms do
    let supports = Option.value ~default:[] (Hashtbl.find_opt supporting a) in
    Cnf.add_clause cnf (-a :: supports)
  done;
  cnf

(* Is [m] (as a bool array over atom ids) a minimal model of the reduct
   P^M?  The reduct keeps rules whose negative body is disjoint from M,
   stripped of negation; we ask SAT for a model strictly below M. *)
let is_minimal_model_of_reduct (g : Ground.t) m =
  let cnf = Cnf.create () in
  Cnf.reserve cnf g.natoms;
  List.iter
    (fun (r : Ground.rule) ->
      if not (List.exists (fun b -> m.(b)) r.neg) then
        Cnf.add_clause cnf (r.head @ List.map (fun b -> -b) r.pos))
    g.rules;
  let true_atoms = ref [] in
  for v = 1 to g.natoms do
    if m.(v) then true_atoms := v :: !true_atoms
    else Cnf.add_clause cnf [ -v ]
  done;
  (* Strictly smaller: some currently-true atom must flip to false. *)
  match !true_atoms with
  | [] -> true
  | ts ->
      Cnf.add_clause cnf (List.map (fun v -> -v) ts);
      not (Dpll.satisfiable cnf)

let model_facts (g : Ground.t) m =
  let acc = ref Fact.Set.empty in
  for v = 1 to g.natoms do
    if m.(v) then acc := Fact.Set.add g.atoms.(v) !acc
  done;
  !acc

let models_ground g =
  let sp = Obs.Trace.start "asp.stable" in
  Obs.Progress.phase "asp.stable";
  let cnf = clauses_of g in
  let candidates = Dpll.enumerate cnf in
  Obs.Counter.add c_candidates (List.length candidates);
  (* Each reduct minimality check is independent (the ground program is
     read-only and the DPLL call inside is per-candidate state), so the
     candidates are checked with the parallel map; order is preserved. *)
  let stable =
    Par.filter_map
      (fun m ->
        Obs.Counter.incr c_reduct_checks;
        Obs.Progress.tick ();
        if is_minimal_model_of_reduct g m then Some (model_facts g m) else None)
      candidates
  in
  Obs.Counter.add c_stable (List.length stable);
  if Obs.Trace.is_enabled () then begin
    Obs.Trace.attr_int "candidates" (List.length candidates);
    Obs.Trace.attr_int "stable" (List.length stable)
  end;
  Obs.Trace.finish sp;
  stable

let models program edb = models_ground (Ground.ground program edb)

let violation_weight (g : Ground.t) model =
  let holds id = Fact.Set.mem g.atoms.(id) model in
  List.fold_left
    (fun acc (w : Ground.weak) ->
      if List.for_all holds w.pos && not (List.exists holds w.neg) then
        acc + w.weight
      else acc)
    0 g.weaks

let optimal_models program edb =
  let g = Ground.ground program edb in
  let stable = models_ground g in
  match stable with
  | [] -> []
  | _ ->
      let weighted = List.map (fun m -> (violation_weight g m, m)) stable in
      let best = List.fold_left (fun acc (w, _) -> min acc w) max_int weighted in
      List.filter (fun (w, _) -> w = best) weighted
