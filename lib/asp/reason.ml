module Fact = Relational.Fact
module Value = Relational.Value

let brave_facts program edb =
  List.fold_left Fact.Set.union Fact.Set.empty (Stable.models program edb)

let cautious_facts program edb =
  match Stable.models program edb with
  | [] -> Fact.Set.empty
  | m :: rest -> List.fold_left Fact.Set.inter m rest

let brave program edb f = Fact.Set.mem f (brave_facts program edb)
let cautious program edb f = Fact.Set.mem f (cautious_facts program edb)

let rows_of_pred pred facts =
  Fact.Set.fold
    (fun (f : Fact.t) acc ->
      if String.equal f.rel pred then Array.to_list f.row :: acc else acc)
    facts []
  |> List.sort (List.compare Value.compare)

let cautious_rows program edb ~pred = rows_of_pred pred (cautious_facts program edb)
let brave_rows program edb ~pred = rows_of_pred pred (brave_facts program edb)

let optimal_cautious_rows program edb ~pred =
  match Stable.optimal_models program edb with
  | [] -> []
  | (_, m) :: rest ->
      rows_of_pred pred
        (List.fold_left (fun acc (_, m') -> Fact.Set.inter acc m') m rest)
