(** Brave and cautious reasoning over stable models.

    CQA through repair programs is cautious reasoning: an answer is
    consistent iff it holds in {e every} stable model (paper, Section 3.3);
    cause extraction (Section 7) uses brave reasoning — truth in {e some}
    model. *)

val brave_facts : Syntax.t -> Relational.Fact.t list -> Relational.Fact.Set.t
(** Union of all stable models. *)

val cautious_facts :
  Syntax.t -> Relational.Fact.t list -> Relational.Fact.Set.t
(** Intersection of all stable models (empty if there is no model). *)

val brave : Syntax.t -> Relational.Fact.t list -> Relational.Fact.t -> bool
val cautious : Syntax.t -> Relational.Fact.t list -> Relational.Fact.t -> bool

val cautious_rows :
  Syntax.t ->
  Relational.Fact.t list ->
  pred:string ->
  Relational.Value.t list list
(** Rows of one predicate that appear in every stable model, sorted —
    the consistent answers when the predicate collects query answers. *)

val brave_rows :
  Syntax.t ->
  Relational.Fact.t list ->
  pred:string ->
  Relational.Value.t list list

val optimal_cautious_rows :
  Syntax.t ->
  Relational.Fact.t list ->
  pred:string ->
  Relational.Value.t list list
(** Like {!cautious_rows} but over weak-constraint-optimal models only
    (CQA under C-repairs, Section 4.1). *)
