module Fact = Relational.Fact
module Value = Relational.Value
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp

type rule = { head : int list; pos : int list; neg : int list }

let c_rules = Obs.Counter.make "asp.rules_grounded"
let c_atoms = Obs.Counter.make "asp.atoms"
type weak = { pos : int list; neg : int list; weight : int }

type t = {
  atoms : Fact.t array;
  index : (Fact.t, int) Hashtbl.t;
  natoms : int;
  rules : rule list;
  weaks : weak list;
}

module Env = Map.Make (String)

let term_value env = function
  | Term.Const v -> Some v
  | Term.Var x -> Env.find_opt x env

let match_row env (a : Atom.t) (row : Value.t array) =
  if List.length a.args <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c -> if Value.equal c v then go env (i + 1) rest else None
          | Term.Var x -> (
              match Env.find_opt x env with
              | Some bound ->
                  if Value.equal bound v then go env (i + 1) rest else None
              | None -> go (Env.add x v env) (i + 1) rest))
    in
    go env 0 a.args

let eval_cmp env (c : Cmp.t) =
  match term_value env c.left, term_value env c.right with
  | Some l, Some r -> (
      let cmp = Value.compare l r in
      match c.op with
      | Cmp.Eq -> cmp = 0
      | Cmp.Neq -> cmp <> 0
      | Cmp.Lt -> cmp < 0
      | Cmp.Le -> cmp <= 0
      | Cmp.Gt -> cmp > 0
      | Cmp.Ge -> cmp >= 0)
  | _ -> invalid_arg "Asp.Ground: unbound comparison variable"

let ground_atom env (a : Atom.t) =
  Fact.make a.rel
    (List.map
       (fun t ->
         match term_value env t with Some v -> v | None -> assert false)
       a.args)

type base = {
  mutable set : Fact.Set.t;
  by_rel : (string, Value.t array list ref) Hashtbl.t;
}

let base_add b (f : Fact.t) =
  if Fact.Set.mem f b.set then false
  else begin
    b.set <- Fact.Set.add f b.set;
    (match Hashtbl.find_opt b.by_rel f.rel with
    | Some rows -> rows := f.row :: !rows
    | None -> Hashtbl.add b.by_rel f.rel (ref [ f.row ]));
    true
  end

let rows_of b rel =
  match Hashtbl.find_opt b.by_rel rel with Some r -> !r | None -> []

(* Enumerate substitutions matching [atoms] against the base, with
   comparisons applied as soon as bound. *)
let substitutions base atoms comps k =
  let ready env c = List.for_all (fun v -> Env.mem v env) (Cmp.vars c) in
  let rec go env pending = function
    | [] -> if List.for_all (eval_cmp env) pending then k env
    | (a : Atom.t) :: rest ->
        List.iter
          (fun row ->
            Obs.Progress.tick ();
            match match_row env a row with
            | None -> ()
            | Some env' ->
                let now, later = List.partition (ready env') pending in
                if List.for_all (eval_cmp env') now then go env' later rest)
          (rows_of base a.rel)
  in
  go Env.empty comps atoms

let derivable_base (program : Syntax.t) edb =
  let base = { set = Fact.Set.empty; by_rel = Hashtbl.create 32 } in
  List.iter (fun f -> ignore (base_add base f)) edb;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Syntax.rule) ->
        substitutions base r.pos r.comps (fun env ->
            List.iter
              (fun h ->
                if base_add base (ground_atom env h) then changed := true)
              r.head))
      program.rules
  done;
  base

let ground (program : Syntax.t) edb =
  let sp = Obs.Trace.start "asp.ground" in
  Obs.Progress.phase "asp.ground";
  let base = derivable_base program edb in
  let table = Hashtbl.create 256 in
  let atoms = ref [] and natoms = ref 0 in
  let id_of f =
    match Hashtbl.find_opt table f with
    | Some i -> i
    | None ->
        incr natoms;
        Hashtbl.add table f !natoms;
        atoms := f :: !atoms;
        !natoms
  in
  let rules = ref [] in
  let seen_rules = Hashtbl.create 256 in
  let add_rule gr =
    if not (Hashtbl.mem seen_rules gr) then begin
      Hashtbl.add seen_rules gr ();
      rules := gr :: !rules
    end
  in
  (* EDB facts are unconditionally true. *)
  List.iter (fun f -> add_rule { head = [ id_of f ]; pos = []; neg = [] }) edb;
  List.iter
    (fun (r : Syntax.rule) ->
      substitutions base r.pos r.comps (fun env ->
          let head = List.map (fun h -> id_of (ground_atom env h)) r.head in
          let pos = List.map (fun a -> id_of (ground_atom env a)) r.pos in
          (* A negative literal on an atom outside the base is trivially
             true and disappears. *)
          let neg =
            List.filter_map
              (fun a ->
                let f = ground_atom env a in
                if Fact.Set.mem f base.set then Some (id_of f) else None)
              r.neg
          in
          add_rule { head = List.sort_uniq compare head; pos; neg }))
    program.rules;
  let weaks = ref [] in
  List.iter
    (fun (w : Syntax.weak) ->
      substitutions base w.wpos w.wcomps (fun env ->
          let pos = List.map (fun a -> id_of (ground_atom env a)) w.wpos in
          let neg =
            List.filter_map
              (fun a ->
                let f = ground_atom env a in
                if Fact.Set.mem f base.set then Some (id_of f) else None)
              w.wneg
          in
          weaks := { pos; neg; weight = w.weight } :: !weaks))
    program.weaks;
  let atom_array = Array.make (!natoms + 1) (Fact.make "" []) in
  List.iter (fun f -> atom_array.(Hashtbl.find table f) <- f) !atoms;
  let nrules = List.length !rules in
  Obs.Counter.add c_rules nrules;
  Obs.Counter.add c_atoms !natoms;
  if Obs.Trace.is_enabled () then begin
    Obs.Trace.attr_int "atoms" !natoms;
    Obs.Trace.attr_int "rules" nrules
  end;
  Obs.Trace.finish sp;
  {
    atoms = atom_array;
    index = table;
    natoms = !natoms;
    rules = List.rev !rules;
    weaks = List.rev !weaks;
  }

let atom_id t f = Hashtbl.find_opt t.index f

let pp ppf t =
  let pp_ids sep ppf ids =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep)
      (fun ppf i -> Fact.pp ppf t.atoms.(i))
      ppf ids
  in
  List.iter
    (fun r ->
      (match r.head with
      | [] -> Format.pp_print_string ppf ":-"
      | hs -> pp_ids " | " ppf hs);
      if r.pos <> [] || r.neg <> [] then begin
        Format.pp_print_string ppf " :- ";
        pp_ids ", " ppf r.pos;
        List.iter (fun i -> Format.fprintf ppf ", not %a" Fact.pp t.atoms.(i)) r.neg
      end;
      Format.pp_print_cut ppf ())
    t.rules
