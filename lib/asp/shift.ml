let rule (r : Syntax.rule) =
  match r.head with
  | [] | [ _ ] -> [ r ]
  | heads ->
      List.mapi
        (fun i a ->
          let others = List.filteri (fun j _ -> j <> i) heads in
          Syntax.rule ~neg:(r.neg @ others) ~comps:r.comps [ a ] r.pos)
        heads

let program (t : Syntax.t) =
  Syntax.program ~weaks:t.weaks (List.concat_map rule t.rules)

module Sset = Set.Make (String)

let is_head_cycle_free (t : Syntax.t) =
  (* Positive predicate dependencies: head pred -> positive body preds. *)
  let edges =
    List.concat_map
      (fun (r : Syntax.rule) ->
        List.concat_map
          (fun (h : Logic.Atom.t) ->
            List.map (fun (b : Logic.Atom.t) -> (h.rel, b.rel)) r.pos)
          r.head)
      t.rules
  in
  let reaches =
    let rec go acc =
      let acc' =
        List.fold_left
          (fun acc (a, b) ->
            let through =
              List.filter_map
                (fun (b', c) -> if String.equal b b' then Some (a, c) else None)
                acc
            in
            List.fold_left
              (fun acc e -> if List.mem e acc then acc else e :: acc)
              acc through)
          acc edges
      in
      if List.length acc' = List.length acc then acc else go acc'
    in
    go edges
  in
  (* Two head atoms are on a common positive cycle when their predicates
     reach each other (or, for one shared predicate, when it reaches
     itself). *)
  let on_common_cycle a b =
    if String.equal a b then List.mem (a, a) reaches
    else List.mem (a, b) reaches && List.mem (b, a) reaches
  in
  List.for_all
    (fun (r : Syntax.rule) ->
      let preds = List.map (fun (h : Logic.Atom.t) -> h.rel) r.head in
      let rec pairs = function
        | [] -> true
        | p :: rest ->
            List.for_all (fun q -> not (on_common_cycle p q)) rest && pairs rest
      in
      pairs preds)
    t.rules
