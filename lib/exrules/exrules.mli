(** Existential rules (Datalog±) with negative constraints, and
    inconsistency-tolerant query answering over them (paper, Section 8:
    OBDA "in terms of the ontological language (e.g. some Description Logic
    or a Datalog± program class)"; Lukasiewicz et al. [89]).

    A program is a set of rules [body → ∃ȳ head] over one schema, plus
    negative constraints (denials).  Reasoning is by the {b skolem chase}:
    existential variables are instantiated with deterministic skolem terms
    over the rule's frontier, so saturation is a fixpoint under set
    semantics and terminates for weakly acyclic rule sets (checked by
    {!weakly_acyclic}; non-weakly-acyclic programs chase under a round
    budget and fail loudly).

    When the chase violates a negative constraint, the {e database} facts
    are to blame: every violation is traced back through fact provenance to
    a minimal set of base facts, giving the conflict hypergraph; repairs
    and AR / IAR / brave answers follow as usual. *)

type rule = {
  body : Logic.Cq.t;
      (** the body; its head terms are the frontier (exported variables) *)
  head : Logic.Atom.t list;
      (** head atoms; variables that are neither frontier nor body
          variables are existential *)
}

type program = {
  rules : rule list;
  constraints : Constraints.Ic.denial list;
}

val rule : body:Logic.Cq.t -> head:Logic.Atom.t list -> rule

val is_skolem : Relational.Value.t -> bool

val weakly_acyclic : rule list -> bool

val chase :
  ?max_rounds:int -> program -> Relational.Instance.t ->
  Relational.Instance.t
(** Saturate the instance.  [max_rounds] defaults to 100 when the rules are
    weakly acyclic (they converge sooner) and is mandatory protection
    otherwise; raises [Failure] when the budget is exhausted. *)

val certain_answers :
  ?max_rounds:int -> program -> Relational.Instance.t -> Logic.Cq.t ->
  Relational.Value.t list list
(** Skolem-free answers over the chased instance (no consistency
    handling). *)

val is_consistent :
  ?max_rounds:int -> program -> Relational.Instance.t -> bool

val conflicts :
  ?max_rounds:int -> program -> Relational.Instance.t ->
  Relational.Tid.Set.t list
(** Minimal sets of base tuples whose presence triggers some negative
    constraint in the chase. *)

val repairs :
  ?max_rounds:int -> program -> Relational.Instance.t ->
  Relational.Instance.t list
(** Maximal base sub-instances whose chase satisfies the constraints. *)

type semantics = AR | IAR | Brave

val answers :
  ?max_rounds:int ->
  semantics ->
  program ->
  Relational.Instance.t ->
  Logic.Cq.t ->
  Relational.Value.t list list
