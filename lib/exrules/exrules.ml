module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Tid = Relational.Tid
module Term = Logic.Term
module Atom = Logic.Atom
module Cq = Logic.Cq

type rule = { body : Cq.t; head : Atom.t list }

type program = { rules : rule list; constraints : Constraints.Ic.denial list }

let rule ~body ~head = { body; head }

let skolem_prefix = "\xe2\x8a\xa5sk" (* ⊥sk *)

let is_skolem = function
  | Value.Str s ->
      String.length s >= String.length skolem_prefix
      && String.sub s 0 (String.length skolem_prefix) = skolem_prefix
  | _ -> false

(* --- weak acyclicity ------------------------------------------------- *)

let positions_of_var (a : Atom.t) var =
  List.mapi (fun i t -> (i, t)) a.args
  |> List.filter_map (fun (i, t) ->
         match t with
         | Term.Var v when String.equal v var -> Some (a.rel, i)
         | _ -> None)

let weakly_acyclic rules =
  (* Edges between positions (rel, i); special edges from frontier body
     positions to existential head positions. *)
  let regular = ref [] and special = ref [] in
  let add store e = if not (List.mem e !store) then store := e :: !store in
  List.iter
    (fun r ->
      let body_vars =
        List.concat_map (fun (a : Atom.t) -> Atom.vars a) r.body.Cq.body
        |> List.sort_uniq String.compare
      in
      let head_vars =
        List.concat_map Atom.vars r.head |> List.sort_uniq String.compare
      in
      let frontier = List.filter (fun v -> List.mem v head_vars) body_vars in
      let existential =
        List.filter (fun v -> not (List.mem v body_vars)) head_vars
      in
      List.iter
        (fun x ->
          let body_pos =
            List.concat_map (fun a -> positions_of_var a x) r.body.Cq.body
          in
          let head_pos = List.concat_map (fun a -> positions_of_var a x) r.head in
          List.iter
            (fun bp ->
              List.iter (fun hp -> add regular (bp, hp)) head_pos;
              List.iter
                (fun y ->
                  List.iter
                    (fun hp -> add special (bp, hp))
                    (List.concat_map (fun a -> positions_of_var a y) r.head))
                existential)
            body_pos)
        frontier)
    rules;
  (* Reachability over regular ∪ special; a special edge inside a cycle
     breaks weak acyclicity. *)
  let edges = !regular @ !special in
  let rec reaches seen src dst =
    List.exists
      (fun (u, v) ->
        (u = src && v = dst)
        || (u = src && (not (List.mem v seen)) && reaches (v :: seen) v dst))
      edges
  in
  not (List.exists (fun (u, v) -> v = u || reaches [ v ] v u) !special)

(* --- chase with provenance ------------------------------------------- *)

module Env = Map.Make (String)

let match_structural env (a : Atom.t) (row : Value.t array) =
  if List.length a.args <> Array.length row then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
          let v = row.(i) in
          match t with
          | Term.Const c -> if Value.equal c v then go env (i + 1) rest else None
          | Term.Var x -> (
              match Env.find_opt x env with
              | Some bound ->
                  if Value.equal bound v then go env (i + 1) rest else None
              | None -> go (Env.add x v env) (i + 1) rest))
    in
    go env 0 a.args

let eval_cmp env (c : Logic.Cmp.t) =
  let value = function
    | Term.Const v -> v
    | Term.Var x -> (
        match Env.find_opt x env with
        | Some v -> v
        | None -> invalid_arg "Exrules: unbound comparison variable")
  in
  let cmp = Value.compare (value c.left) (value c.right) in
  match c.op with
  | Logic.Cmp.Eq -> cmp = 0
  | Logic.Cmp.Neq -> cmp <> 0
  | Logic.Cmp.Lt -> cmp < 0
  | Logic.Cmp.Le -> cmp <= 0
  | Logic.Cmp.Gt -> cmp > 0
  | Logic.Cmp.Ge -> cmp >= 0

(* All structural matches of [atoms]+[comps], with the matched facts. *)
let matches inst atoms comps k =
  let rec go env used = function
    | [] -> if List.for_all (eval_cmp env) comps then k env (List.rev used)
    | (a : Atom.t) :: rest ->
        List.iter
          (fun (_tid, row) ->
            match match_structural env a row with
            | Some env' ->
                go env' (Fact.make a.rel (Array.to_list row) :: used) rest
            | None -> ())
          (Instance.tuples inst ~rel:a.rel)
  in
  go Env.empty [] atoms

type chase_state = {
  mutable inst : Instance.t;
  prov : (Fact.t, Fact.Set.t) Hashtbl.t; (* fact -> supporting base facts *)
}

let provenance st f =
  Option.value ~default:(Fact.Set.singleton f) (Hashtbl.find_opt st.prov f)

let skolem rule_id var env frontier =
  let args =
    List.map
      (fun v ->
        match Env.find_opt v env with
        | Some value -> Value.to_string value
        | None -> "?")
      frontier
  in
  Value.Str
    (Printf.sprintf "%s%d_%s(%s)" skolem_prefix rule_id var
       (String.concat "," args))

(* The chase proper, carrying fact provenance for conflict extraction. *)
let chase_state ?max_rounds program inst =
  let budget =
    match max_rounds with
    | Some n -> n
    | None -> if weakly_acyclic program.rules then 100 else 20
  in
  let st = { inst; prov = Hashtbl.create 64 } in
  let changed = ref true and rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > budget then
      failwith "Exrules.chase: round budget exhausted (non-terminating rules?)";
    List.iteri
      (fun rule_id r ->
        let frontier =
          let head_vars =
            List.concat_map Atom.vars r.head |> List.sort_uniq String.compare
          in
          List.filter (fun v -> List.mem v head_vars) (Cq.body_vars r.body)
        in
        matches st.inst r.body.Cq.body r.body.Cq.comps (fun env used ->
            let base =
              List.fold_left
                (fun acc f -> Fact.Set.union acc (provenance st f))
                Fact.Set.empty used
            in
            List.iter
              (fun (h : Atom.t) ->
                let args =
                  List.map
                    (function
                      | Term.Const c -> c
                      | Term.Var v -> (
                          match Env.find_opt v env with
                          | Some value -> value
                          | None -> skolem rule_id v env frontier))
                    h.args
                in
                let f = Fact.make h.rel args in
                if not (Instance.mem_fact st.inst f) then begin
                  st.inst <- Instance.add st.inst f;
                  Hashtbl.replace st.prov f base;
                  changed := true
                end)
              r.head))
      program.rules
  done;
  st

let chase ?max_rounds program inst = (chase_state ?max_rounds program inst).inst

let certain_answers ?max_rounds program inst q =
  let saturated = chase ?max_rounds program inst in
  List.filter
    (fun row -> not (List.exists is_skolem row))
    (Cq.answers q saturated)

let violation_witnesses st (d : Constraints.Ic.denial) =
  let acc = ref [] in
  matches st.inst d.atoms d.comps (fun _env used ->
      let base =
        List.fold_left
          (fun s f -> Fact.Set.union s (provenance st f))
          Fact.Set.empty used
      in
      acc := base :: !acc);
  !acc

let is_consistent ?max_rounds program inst =
  let st = chase_state ?max_rounds program inst in
  List.for_all (fun d -> violation_witnesses st d = []) program.constraints

(* Shrink a violating base set to a minimal one by re-chasing subsets. *)
let minimize_conflict ?max_rounds program inst base =
  let violates subset =
    let candidate =
      Fact.Set.fold
        (fun f acc -> Instance.add acc f)
        subset
        (Instance.create (Instance.schema inst))
    in
    not (is_consistent ?max_rounds program candidate)
  in
  let rec shrink set =
    match
      Fact.Set.fold
        (fun f found ->
          match found with
          | Some _ -> found
          | None ->
              let smaller = Fact.Set.remove f set in
              if violates smaller then Some smaller else None)
        set None
    with
    | Some smaller -> shrink smaller
    | None -> set
  in
  shrink base

let conflicts ?max_rounds program inst =
  let st = chase_state ?max_rounds program inst in
  let bases =
    List.concat_map (fun d -> violation_witnesses st d) program.constraints
  in
  let minimal =
    List.map (fun b -> minimize_conflict ?max_rounds program inst b) bases
    |> List.sort_uniq Fact.Set.compare
  in
  (* As tid sets over the base instance. *)
  List.filter_map
    (fun fs ->
      let tids =
        Fact.Set.fold
          (fun f acc ->
            match Instance.tid_of inst f with
            | Some tid -> Tid.Set.add tid acc
            | None -> acc)
          fs Tid.Set.empty
      in
      if Tid.Set.is_empty tids then None else Some tids)
    minimal
  |> List.sort_uniq Tid.Set.compare

let repairs ?max_rounds program inst =
  let edges =
    List.map
      (fun e -> List.map Tid.to_int (Tid.Set.elements e))
      (conflicts ?max_rounds program inst)
  in
  List.map
    (fun hs ->
      let doomed =
        List.fold_left (fun s i -> Tid.Set.add (Tid.of_int i) s) Tid.Set.empty hs
      in
      Instance.restrict inst (Tid.Set.diff (Instance.tids inst) doomed))
    (Sat.Hitting_set.minimal edges)

type semantics = AR | IAR | Brave

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let answers ?max_rounds semantics program inst q =
  let eval sub = Rows.of_list (certain_answers ?max_rounds program sub q) in
  match semantics with
  | IAR ->
      let conflicting =
        List.fold_left Tid.Set.union Tid.Set.empty
          (conflicts ?max_rounds program inst)
      in
      let survivors = Tid.Set.diff (Instance.tids inst) conflicting in
      Rows.elements (eval (Instance.restrict inst survivors))
  | AR -> (
      match repairs ?max_rounds program inst with
      | [] -> []
      | first :: rest ->
          Rows.elements
            (List.fold_left
               (fun acc r -> Rows.inter acc (eval r))
               (eval first) rest))
  | Brave ->
      Rows.elements
        (List.fold_left
           (fun acc r -> Rows.union acc (eval r))
           Rows.empty
           (repairs ?max_rounds program inst))
