(** Consistent query answering for atemporal constraints over temporal
    databases (paper, Section 8; Chomicki–Wijsen [50]).

    A temporal database associates facts with time points; an atemporal
    constraint set must hold at {e every snapshot}.  Snapshots repair
    independently, so a temporal repair chooses one snapshot repair per
    time point, and:

    - an answer is consistently true {b at} time t iff it is a consistent
      answer over snapshot t;
    - consistently {b always} true on a range iff consistently true at
      every point of the range;
    - consistently {b sometime} true on a range iff consistently true at
      {e some} point — the adversary repairs each snapshot separately, so
      certainty must already be achieved at a single time point. *)

type t

val create :
  Relational.Schema.t -> Constraints.Ic.t list -> t
(** Denial-class constraints only ([Invalid_argument] otherwise). *)

val add : t -> time:int -> Relational.Fact.t -> t
val of_facts :
  Relational.Schema.t -> Constraints.Ic.t list -> (int * Relational.Fact.t) list -> t

val times : t -> int list
(** Time points with at least one fact, ascending. *)

val snapshot : t -> int -> Relational.Instance.t

val is_consistent : t -> bool
(** Every snapshot satisfies the constraints. *)

val inconsistent_times : t -> int list

val consistent_at :
  t -> time:int -> Logic.Cq.t -> Relational.Value.t list list

val consistent_always :
  t -> from_:int -> until:int -> Logic.Cq.t -> Relational.Value.t list list
(** Intersection over the snapshots of the (inclusive) range; time points
    without facts have the empty snapshot, whose only repair is empty — so
    a range touching an empty snapshot has no always-certain answers for
    queries with a positive body. *)

val consistent_sometime :
  t -> from_:int -> until:int -> Logic.Cq.t -> Relational.Value.t list list
