module Schema = Relational.Schema
module Instance = Relational.Instance
module Fact = Relational.Fact
module Value = Relational.Value
module Ic = Constraints.Ic

module Imap = Map.Make (Int)

type t = {
  schema : Schema.t;
  ics : Ic.t list;
  snapshots : Instance.t Imap.t;
}

let create schema ics =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg
          (Printf.sprintf "Temporal.create: %s is not denial-class" (Ic.name ic)))
    ics;
  { schema; ics; snapshots = Imap.empty }

let add t ~time fact =
  let snap =
    match Imap.find_opt time t.snapshots with
    | Some s -> s
    | None -> Instance.create t.schema
  in
  { t with snapshots = Imap.add time (Instance.add snap fact) t.snapshots }

let of_facts schema ics facts =
  List.fold_left (fun t (time, f) -> add t ~time f) (create schema ics) facts

let times t = List.map fst (Imap.bindings t.snapshots)

let snapshot t time =
  match Imap.find_opt time t.snapshots with
  | Some s -> s
  | None -> Instance.create t.schema

let is_consistent t =
  Imap.for_all
    (fun _ snap -> Constraints.Violation.is_consistent snap t.schema t.ics)
    t.snapshots

let inconsistent_times t =
  Imap.fold
    (fun time snap acc ->
      if Constraints.Violation.is_consistent snap t.schema t.ics then acc
      else time :: acc)
    t.snapshots []
  |> List.rev

module Rows = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let cqa_snapshot t snap q =
  match Repairs.S_repair.enumerate snap t.schema t.ics with
  | [] -> Rows.empty
  | first :: rest ->
      let answers (r : Repairs.Repair.t) = Rows.of_list (Logic.Cq.answers q r.repaired) in
      List.fold_left (fun acc r -> Rows.inter acc (answers r)) (answers first) rest

let consistent_at t ~time q =
  Rows.elements (cqa_snapshot t (snapshot t time) q)

let range from_ until =
  if until < from_ then []
  else List.init (until - from_ + 1) (fun i -> from_ + i)

let consistent_always t ~from_ ~until q =
  match range from_ until with
  | [] -> []
  | first :: rest ->
      let at time = cqa_snapshot t (snapshot t time) q in
      Rows.elements
        (List.fold_left (fun acc time -> Rows.inter acc (at time)) (at first) rest)

let consistent_sometime t ~from_ ~until q =
  Rows.elements
    (List.fold_left
       (fun acc time -> Rows.union acc (cqa_snapshot t (snapshot t time) q))
       Rows.empty (range from_ until))
