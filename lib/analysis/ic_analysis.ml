module Schema = Relational.Schema
module Ic = Constraints.Ic
module Atom = Logic.Atom
module Cmp = Logic.Cmp

let err ~code ~subject msg = Finding.make Finding.Error ~code ~subject msg
let warn ~code ~subject msg = Finding.make Finding.Warning ~code ~subject msg
let info ~code ~subject msg = Finding.make Finding.Info ~code ~subject msg

(* --- conformance ----------------------------------------------------- *)

let check_relation schema ~subject rel =
  if Schema.mem schema rel then []
  else
    [
      err ~code:"schema/unknown-relation" ~subject
        (Printf.sprintf "relation %s is not declared in the schema" rel);
    ]

let check_positions schema ~subject ~what rel ps =
  if not (Schema.mem schema rel) then []
  else
    let arity = Schema.arity schema rel in
    List.filter_map
      (fun p ->
        if p < 0 || p >= arity then
          Some
            (err ~code:"schema/position-out-of-range" ~subject
               (Printf.sprintf "%s position %d is outside %s's arity %d" what p
                  rel arity))
        else None)
      ps
    @
    if List.length (List.sort_uniq Int.compare ps) <> List.length ps then
      [
        warn ~code:"schema/duplicate-position" ~subject
          (Printf.sprintf "%s position list repeats an attribute" what);
      ]
    else []

let check_denial schema ~subject (d : Ic.denial) =
  let arity_findings =
    List.concat_map
      (fun (a : Atom.t) ->
        check_relation schema ~subject a.rel
        @
        if Schema.mem schema a.rel && Atom.arity a <> Schema.arity schema a.rel
        then
          [
            err ~code:"schema/arity-mismatch" ~subject
              (Printf.sprintf "atom %s has %d arguments, %s is declared with %d"
                 a.rel (Atom.arity a) a.rel (Schema.arity schema a.rel));
          ]
        else [])
      d.atoms
  in
  let bound = List.concat_map Atom.vars d.atoms in
  let comp_findings =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun v ->
            if List.exists (String.equal v) bound then None
            else
              Some
                (err ~code:"safety/ground-unsafe-comparison" ~subject
                   (Printf.sprintf
                      "comparison variable %s occurs in no atom of the denial" v)))
          (Cmp.vars c))
      d.comps
  in
  arity_findings @ comp_findings

let conformance schema ic =
  let subject = Ic.name ic in
  match ic with
  | Ic.Key (rel, ps) ->
      check_relation schema ~subject rel
      @ check_positions schema ~subject ~what:"key" rel ps
      @
      if ps = [] then
        [ warn ~code:"schema/empty-key" ~subject "key with no attributes" ]
      else []
  | Ic.Fd f ->
      check_relation schema ~subject f.rel
      @ check_positions schema ~subject ~what:"lhs" f.rel f.lhs
      @ check_positions schema ~subject ~what:"rhs" f.rel f.rhs
      @
      let overlap = List.filter (fun p -> List.mem p f.lhs) f.rhs in
      if overlap <> [] then
        [
          info ~code:"fd/trivial-rhs" ~subject
            (Printf.sprintf "rhs position %d already determined (it is in the lhs)"
               (List.hd overlap));
        ]
      else []
  | Ic.Cfd c ->
      check_relation schema ~subject c.rel
      @ check_positions schema ~subject ~what:"lhs" c.rel c.lhs
      @ check_positions schema ~subject ~what:"rhs" c.rel c.rhs
      @ check_positions schema ~subject ~what:"pattern" c.rel (List.map fst c.pat)
  | Ic.Ind i ->
      let sub_rel, sub_ps = i.sub and sup_rel, sup_ps = i.sup in
      check_relation schema ~subject sub_rel
      @ check_relation schema ~subject sup_rel
      @ check_positions schema ~subject ~what:"sub" sub_rel sub_ps
      @ check_positions schema ~subject ~what:"sup" sup_rel sup_ps
      @
      if List.length sub_ps <> List.length sup_ps then
        [
          err ~code:"schema/ind-width-mismatch" ~subject
            (Printf.sprintf "%d exported positions vs %d imported"
               (List.length sub_ps) (List.length sup_ps));
        ]
      else []
  | Ic.Denial d -> check_denial schema ~subject d

(* --- key/FD interaction ---------------------------------------------- *)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let keys_of ics =
  List.filter_map (function Ic.Key (r, ps) -> Some (r, ps) | _ -> None) ics

let interaction ics =
  let keys = keys_of ics in
  let multiple =
    List.filter_map
      (fun (r, _) ->
        if List.length (List.filter (fun (r', _) -> String.equal r r') keys) > 1
        then Some r
        else None)
      keys
    |> List.sort_uniq String.compare
  in
  let multiple_findings =
    List.map
      (fun r ->
        warn ~code:"key/multiple-keys" ~subject:(Printf.sprintf "key:%s" r)
          (Printf.sprintf
             "%s carries several key constraints: repairs interact and the \
              rewriting dichotomy no longer applies"
             r))
      multiple
  in
  let implied_fds =
    List.filter_map
      (function
        | Ic.Fd f when
            List.exists
              (fun (r, ps) -> String.equal r f.rel && subset ps f.lhs)
              keys ->
            Some
              (info ~code:"fd/implied-by-key" ~subject:(Ic.name (Ic.Fd f))
                 (Printf.sprintf
                    "lhs contains a declared key of %s: the FD is implied" f.rel))
        | _ -> None)
      ics
  in
  let duplicates =
    let names = List.map Ic.name ics in
    List.filter
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      (List.sort_uniq String.compare names)
    |> List.map (fun n ->
           warn ~code:"ic/duplicate" ~subject:n "constraint declared twice")
  in
  multiple_findings @ implied_fds @ duplicates

(* --- inclusion-dependency structure ---------------------------------- *)

let inds_of ics = List.filter_map (function Ic.Ind i -> Some i | _ -> None) ics

(* Relation-level cycle among the INDs, by DFS from every relation. *)
let ind_cycle inds =
  let succ r =
    List.filter_map
      (fun (i : Ic.ind) -> if String.equal (fst i.sub) r then Some (fst i.sup) else None)
      inds
    |> List.sort_uniq String.compare
  in
  let nodes =
    List.concat_map (fun (i : Ic.ind) -> [ fst i.sub; fst i.sup ]) inds
    |> List.sort_uniq String.compare
  in
  let rec dfs path r =
    if List.exists (String.equal r) path then
      (* Cut the path at the first occurrence of [r]: that suffix is the cycle. *)
      let rec suffix = function
        | [] -> []
        | x :: rest -> if String.equal x r then x :: rest else suffix rest
      in
      Some (List.rev (r :: suffix path))
    else List.find_map (dfs (r :: path)) (succ r)
  in
  List.find_map (dfs []) nodes

(* Weak acyclicity of the IND position graph (the chase-termination
   criterion): regular edges copy a value between positions, special
   edges go from an exported position to the existential positions of
   the target.  A cycle through a special edge generates fresh values
   forever. *)
let weakly_acyclic schema inds =
  let regular = ref [] and special = ref [] in
  let add store e = if not (List.mem e !store) then store := e :: !store in
  List.iter
    (fun (i : Ic.ind) ->
      let sub_rel, sub_ps = i.sub and sup_rel, sup_ps = i.sup in
      let sup_arity =
        if Schema.mem schema sup_rel then Schema.arity schema sup_rel
        else List.fold_left max 0 (List.map succ sup_ps)
      in
      let existential =
        List.filter (fun p -> not (List.mem p sup_ps)) (List.init sup_arity Fun.id)
      in
      List.iteri
        (fun k p ->
          (match List.nth_opt sup_ps k with
          | Some q -> add regular ((sub_rel, p), (sup_rel, q))
          | None -> ());
          List.iter
            (fun q -> add special ((sub_rel, p), (sup_rel, q)))
            existential)
        sub_ps)
    inds;
  let edges = !regular @ !special in
  let reachable from target =
    let visited = Hashtbl.create 16 in
    let rec go n =
      if n = target then true
      else if Hashtbl.mem visited n then false
      else begin
        Hashtbl.replace visited n ();
        List.exists (fun (u, v) -> u = n && go v) edges
      end
    in
    go from
  in
  List.find_map
    (fun (u, v) -> if reachable v u then Some v else None)
    !special

let structure schema ics =
  match inds_of ics with
  | [] -> []
  | inds ->
      let cycle_findings =
        match ind_cycle inds with
        | None -> []
        | Some cycle ->
            [
              warn ~code:"ind/cycle"
                ~subject:(String.concat "⊆" cycle)
                "cyclic inclusion dependencies: repair enumeration is only \
                 complete for acyclic IND sets";
            ]
      in
      let chase_findings =
        match weakly_acyclic schema inds with
        | None ->
            [
              info ~code:"chase/weakly-acyclic" ~subject:"ind-set"
                "the IND set is weakly acyclic: the chase terminates on every \
                 instance";
            ]
        | Some (rel, pos) ->
            [
              warn ~code:"chase/non-terminating" ~subject:"ind-set"
                (Printf.sprintf
                   "not weakly acyclic: position %s.%d lies on a cycle through \
                    an existential edge, the chase may not terminate"
                   rel pos);
            ]
      in
      cycle_findings @ chase_findings

let analyze schema ics =
  Finding.sort (List.concat_map (conformance schema) ics @ interaction ics @ structure schema ics)
