(** Findings — the common currency of the static analyses.

    A finding names one defect (or notable property) of a rule, program,
    constraint set or query, at one of three severities.  Reports are
    {e deterministic}: {!sort} orders findings by subject, then code,
    then message, so two runs over the same input render byte-identical
    output regardless of hash-table iteration order. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** Stable machine-readable id, e.g. ["safety/unbound-head-var"]. *)
  subject : string;  (** What the finding is about: a rule id, predicate, constraint name. *)
  message : string;
}

val make : severity -> code:string -> subject:string -> string -> t
val severity_label : severity -> string

val compare : t -> t -> int
(** Orders by subject, code, severity, message — the report order. *)

val sort : t list -> t list
(** Sorted with duplicates removed; every report goes through this. *)

val errors : t list -> int
val warnings : t list -> int
val has_errors : t list -> bool

val to_line : t -> string
(** ["error safety/unbound-head-var rule#2: head variable X ..."]. *)

val to_lines : t list -> string list
(** {!sort}ed, one {!to_line} each. *)

val pp : Format.formatter -> t -> unit
