type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
}

let make severity ~code ~subject message = { severity; code; subject; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match String.compare a.subject b.subject with
  | 0 -> (
      match String.compare a.code b.code with
      | 0 -> (
          match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let sort findings = List.sort_uniq compare findings

let errors fs = List.length (List.filter (fun f -> f.severity = Error) fs)
let warnings fs = List.length (List.filter (fun f -> f.severity = Warning) fs)
let has_errors fs = List.exists (fun f -> f.severity = Error) fs

let to_line f =
  Printf.sprintf "%-7s %s %s: %s" (severity_label f.severity) f.code f.subject
    f.message

let to_lines fs = List.map to_line (sort fs)

let pp ppf f = Format.pp_print_string ppf (to_line f)
