module Atom = Logic.Atom
module Cmp = Logic.Cmp

let rule_subject i = Printf.sprintf "rule#%d" (i + 1)

let mem v vs = List.exists (String.equal v) vs

(* Shared safety core: [bound] are the variables bound by positive body
   atoms; every variable of [head]/[neg]/[comps] must be among them. *)
let safety_findings ~subject ~bound ~head_vars ~neg_vars ~comp_vars =
  let finding code what v =
    Finding.make Finding.Error ~code ~subject
      (Printf.sprintf "%s variable %s is not bound by a positive body atom"
         what v)
  in
  List.filter_map
    (fun v -> if mem v bound then None else Some (finding "safety/unbound-head-var" "head" v))
    (List.sort_uniq String.compare head_vars)
  @ List.filter_map
      (fun v -> if mem v bound then None else Some (finding "safety/unsafe-negation" "negated" v))
      (List.sort_uniq String.compare neg_vars)
  @ List.filter_map
      (fun v ->
        if mem v bound then None
        else Some (finding "safety/ground-unsafe-comparison" "comparison" v))
      (List.sort_uniq String.compare comp_vars)

let datalog_rule ?(subject = "rule") (r : Datalog.Rule.t) =
  safety_findings ~subject
    ~bound:(List.concat_map Atom.vars r.body_pos)
    ~head_vars:(Atom.vars r.head)
    ~neg_vars:(List.concat_map Atom.vars r.body_neg)
    ~comp_vars:(List.concat_map Cmp.vars r.comps)

let asp_rule ?(subject = "rule") (r : Asp.Syntax.rule) =
  safety_findings ~subject
    ~bound:(List.concat_map Atom.vars r.pos)
    ~head_vars:(List.concat_map Atom.vars r.head)
    ~neg_vars:(List.concat_map Atom.vars r.neg)
    ~comp_vars:(List.concat_map Cmp.vars r.comps)

let per_rule lint rules =
  List.concat (List.mapi (fun i r -> lint ?subject:(Some (rule_subject i)) r) rules)

let unused_findings graph =
  let defined = Depgraph.defined graph in
  let used =
    List.map (fun (b, _, _) -> b) (Depgraph.edges graph)
    |> List.sort_uniq String.compare
  in
  List.filter_map
    (fun p ->
      if mem p used then None
      else
        Some
          (Finding.make Finding.Info ~code:"structure/unused-predicate"
             ~subject:p "defined by a rule but never used in any body"))
    defined

let undefined_findings ?edb graph =
  match edb with
  | None -> []
  | Some edb ->
      let defined = Depgraph.defined graph in
      let used =
        List.map (fun (b, _, _) -> b) (Depgraph.edges graph)
        |> List.sort_uniq String.compare
      in
      List.filter_map
        (fun p ->
          if mem p defined || mem p edb then None
          else
            Some
              (Finding.make Finding.Warning ~code:"structure/undefined-predicate"
                 ~subject:p
                 "used in a body but neither defined by a rule nor extensional \
                  (always empty)"))
        used

let datalog_program ?edb (p : Datalog.Program.t) =
  let graph = Depgraph.of_datalog p in
  let strat =
    match Depgraph.negative_cycle_witness graph with
    | None -> []
    | Some (b, h) ->
        [
          Finding.make Finding.Error ~code:"stratification/negative-cycle"
            ~subject:h
            (Printf.sprintf
               "not stratifiable: %s depends negatively on %s inside a \
                recursive component"
               h b);
        ]
  in
  Finding.sort
    (per_rule datalog_rule p.rules
    @ strat @ unused_findings graph @ undefined_findings ?edb graph)

(* Query-level lints.  A self-join silently demotes the attack-graph
   trichotomy to the structural dichotomy checks (verdict [Unknown], the
   engine enumerates); surface that degradation as a warning so analyze
   reports it without failing the CI lint gate. *)
let query_findings ?subject (q : Logic.Cq.t) =
  let subject = Option.value subject ~default:q.Logic.Cq.name in
  let rels = List.map (fun (a : Atom.t) -> a.rel) q.Logic.Cq.body in
  List.sort_uniq String.compare rels
  |> List.filter_map (fun r ->
         let count = List.length (List.filter (String.equal r) rels) in
         if count < 2 then None
         else
           Some
             (Finding.make Finding.Warning ~code:"query/self-join" ~subject
                (Printf.sprintf
                   "relation %s occurs in %d atoms: the attack-graph \
                    trichotomy assumes self-join-freeness, so \
                    classification falls back to the dichotomy checks and \
                    the query is answered by enumeration"
                   r count)))

let asp_program (p : Asp.Syntax.t) =
  let graph = Depgraph.of_asp p in
  let disjunctive =
    List.exists (fun (r : Asp.Syntax.rule) -> List.length r.head > 1) p.rules
  in
  let shape =
    if not disjunctive then []
    else if Asp.Shift.is_head_cycle_free p then
      [
        Finding.make Finding.Info ~code:"structure/head-cycle-free"
          ~subject:"program"
          "disjunctive but head-cycle-free: shifting to a normal program \
           preserves the stable models";
      ]
    else
      [
        Finding.make Finding.Warning ~code:"structure/genuinely-disjunctive"
          ~subject:"program"
          "disjunctive head atoms support each other positively: shifting is \
           unsound, the Σ²p fragment applies";
      ]
  in
  let strat =
    match Depgraph.negative_cycle_witness graph with
    | None -> []
    | Some (b, h) ->
        [
          Finding.make Finding.Info ~code:"structure/unstratified"
            ~subject:h
            (Printf.sprintf
               "%s depends negatively on %s through a cycle: stable-model \
                semantics required (expected for repair programs)"
               h b);
        ]
  in
  Finding.sort (per_rule asp_rule p.rules @ shape @ strat)
