module Cq = Logic.Cq
module Atom = Logic.Atom
module Term = Logic.Term
module Cmp = Logic.Cmp
module VSet = Set.Make (String)

type attack = { source : int; target : int; strong : bool }
type cycle = Strong_pair of int * int | Weak of int list

type t = {
  attacks : attack list;
  cycle : cycle option;
  order : int list option;
}

let atom_rel (q : Cq.t) i = (List.nth q.body i).Atom.rel

let key_positions keys (a : Atom.t) =
  match List.assoc_opt a.Atom.rel keys with
  | Some ps -> ps
  | None ->
      (* No declared key: the relation is never repaired, the whole tuple
         acts as its own key (same convention as Classify.rewrite_keys). *)
      List.init (Atom.arity a) Fun.id

(* Distinct key variables of an atom, in key-position order (constants in
   key positions constrain matching but carry no dependency). *)
let key_var_list keys (a : Atom.t) =
  let ps = key_positions keys a in
  let terms =
    List.filteri (fun pos _ -> List.mem pos ps) a.Atom.args
  in
  Term.vars terms

let key_var_set keys a = VSet.of_list (key_var_list keys a)
let var_set (a : Atom.t) = VSet.of_list (Atom.vars a)

(* Fixpoint closure of [start] under the dependencies [(owner, lhs, rhs)].
   With [~why], records for each newly derived variable the dependency that
   introduced it, for saturation's proof paths. *)
let closure ?why start fds =
  let acc = ref start in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (owner, lhs, rhs) ->
        if VSet.subset lhs !acc && not (VSet.subset rhs !acc) then begin
          (match why with
          | Some tbl ->
              VSet.iter
                (fun v ->
                  if (not (VSet.mem v !acc)) && not (Hashtbl.mem tbl v) then
                    Hashtbl.replace tbl v (owner, lhs))
                rhs
          | None -> ());
          acc := VSet.union rhs !acc;
          changed := true
        end)
      fds
  done;
  !acc

(* The atoms whose dependencies fired, transitively, to derive [v] from
   [start] — in dependency order, deduplicated. *)
let support why start v =
  let rec go acc v =
    if VSet.mem v start then acc
    else
      match Hashtbl.find_opt why v with
      | None -> acc
      | Some (owner, lhs) ->
          if List.mem owner acc then acc
          else
            let acc = VSet.fold (fun u acc -> go acc u) lhs acc in
            if List.mem owner acc then acc else acc @ [ owner ]
  in
  go [] v

let analyze (q : Cq.t) ~keys =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  let free = VSet.of_list (Cq.head_vars q) in
  let fd_of i = (i, key_var_set keys atoms.(i), var_set atoms.(i)) in
  let all = List.init n Fun.id in
  let all_fds = List.map fd_of all in
  (* F^{+,q} relative to the [alive] subquery with [extra] variables (free
     variables, or variables of already-eliminated atoms) as constants. *)
  let closure_for i ~alive ~extra =
    let start = VSet.union (key_var_set keys atoms.(i)) extra in
    let fds = List.filter_map (fun j -> if j = i then None else Some (fd_of j)) alive in
    closure start fds
  in
  (* Atoms reachable from [i] through chains of variables outside
     [F^{+,q}] — the attack set of [i]. *)
  let attack_targets i ~alive ~extra =
    let cl = closure_for i ~alive ~extra in
    let out j = VSet.diff (var_set atoms.(j)) cl in
    let frontier = ref (out i) in
    let reached = ref [] in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun j ->
          if
            j <> i
            && (not (List.mem j !reached))
            && not (VSet.is_empty (VSet.inter (out j) !frontier))
          then begin
            reached := j :: !reached;
            frontier := VSet.union !frontier (out j);
            changed := true
          end)
        alive
    done;
    List.sort compare !reached
  in
  (* Weak attack: K(q) — all dependencies, F's own included, free
     variables as constants — implies key(F) -> key(G). *)
  let k_closure =
    let memo = Hashtbl.create 8 in
    fun i ->
      match Hashtbl.find_opt memo i with
      | Some cl -> cl
      | None ->
          let cl =
            closure (VSet.union (key_var_set keys atoms.(i)) free) all_fds
          in
          Hashtbl.add memo i cl;
          cl
  in
  let strong i j = not (VSet.subset (key_var_set keys atoms.(j)) (k_closure i)) in
  let attacks =
    List.concat_map
      (fun i ->
        List.map
          (fun j -> { source = i; target = j; strong = strong i j })
          (attack_targets i ~alive:all ~extra:free))
      all
  in
  let edge i j =
    List.exists (fun a -> a.source = i && a.target = j) attacks
  in
  let pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j && edge i j && edge j i then Some (i, j) else None)
          all)
      all
  in
  let cycle =
    match
      List.find_opt (fun (i, j) -> strong i j && strong j i) pairs
    with
    | Some (i, j) -> Some (Strong_pair (i, j))
    | None -> (
        match pairs with
        | (i, j) :: _ -> Some (Weak [ i; j ])
        | [] -> (
            (* By Koutris–Wijsen, a cyclic attack graph always has a
               2-cycle; a directed DFS keeps the claim independent of
               that lemma. *)
            let state = Hashtbl.create 8 in
            let found = ref None in
            let rec dfs path i =
              if !found = None then
                match Hashtbl.find_opt state i with
                | Some `Done -> ()
                | Some `Active ->
                    let rec upto acc = function
                      | [] -> acc
                      | x :: rest ->
                          if x = i then x :: acc else upto (x :: acc) rest
                    in
                    found := Some (Weak (upto [] path))
                | None ->
                    Hashtbl.replace state i `Active;
                    List.iter
                      (fun j -> if edge i j then dfs (i :: path) j)
                      all;
                    Hashtbl.replace state i `Done
            in
            List.iter (dfs []) all;
            !found))
  in
  let order =
    match cycle with
    | Some _ -> None
    | None ->
        let rec go alive freed acc =
          match alive with
          | [] -> Some (List.rev acc)
          | _ -> (
              let extra = VSet.union free freed in
              let attacked =
                List.concat_map
                  (fun j -> attack_targets j ~alive ~extra)
                  alive
              in
              match
                List.find_opt (fun i -> not (List.mem i attacked)) alive
              with
              | None -> None
              | Some i ->
                  go
                    (List.filter (fun j -> j <> i) alive)
                    (VSet.union freed (var_set atoms.(i)))
                    (i :: acc))
        in
        go all VSet.empty []
  in
  { attacks; cycle; order }

(* --- saturation ------------------------------------------------------- *)

type derived_fd = {
  atom : int;
  rel : string;
  key : string list;
  var : string;
  path : string list;
}

type saturation = {
  squery : Cq.t;
  skeys : (string * int list) list;
  rules : Datalog.Rule.t list;
  derived : derived_fd list;
}

let helper_rel rel var = Printf.sprintf "sat$%s$%s" rel var

let saturate (q : Cq.t) ~keys =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  let free = VSet.of_list (Cq.head_vars q) in
  let rel_of i = atoms.(i).Atom.rel in
  let derived =
    List.concat_map
      (fun i ->
        let kvars = key_var_list keys atoms.(i) in
        let start = VSet.union (VSet.of_list kvars) free in
        let fds =
          List.filter_map
            (fun j ->
              if j = i then None
              else Some (j, key_var_set keys atoms.(j), var_set atoms.(j)))
            (List.init n Fun.id)
        in
        let why = Hashtbl.create 8 in
        let cl = closure ~why start fds in
        Atom.vars atoms.(i)
        |> List.filter (fun y -> (not (VSet.mem y start)) && VSet.mem y cl)
        |> List.map (fun y ->
               {
                 atom = i;
                 rel = rel_of i;
                 key = kvars;
                 var = y;
                 path = List.map rel_of (support why start y);
               }))
      (List.init n Fun.id)
  in
  match derived with
  | [] -> None
  | _ ->
      let helper fd =
        let name = helper_rel fd.rel fd.var in
        let args = List.map Term.var (fd.key @ [ fd.var ]) in
        let atom = Atom.make name args in
        let rule = Datalog.Rule.make ~comps:q.comps atom q.body in
        let key = (name, List.init (List.length args) Fun.id) in
        (atom, rule, key)
      in
      let helpers = List.map helper derived in
      let squery =
        Cq.make ~name:q.name ~comps:q.comps q.head
          (q.body @ List.map (fun (a, _, _) -> a) helpers)
      in
      Some
        {
          squery;
          skeys = keys @ List.map (fun (_, _, k) -> k) helpers;
          rules = List.map (fun (_, r, _) -> r) helpers;
          derived;
        }

let describe_fd fd =
  Printf.sprintf "%s: key(%s) -> %s via %s" fd.rel
    (String.concat "," fd.key)
    fd.var
    (String.concat " -> " fd.path)

(* --- rewriting input -------------------------------------------------- *)

type rewriting_input = {
  query : Cq.t;
  keys : (string * int list) list;
  prefix : Datalog.Rule.t list;
  order : int list;
  fds : derived_fd list;
}

let rewriting_input (q : Cq.t) ~keys =
  let rels = List.map (fun (a : Atom.t) -> a.Atom.rel) q.body in
  let sjf =
    List.length rels = List.length (List.sort_uniq String.compare rels)
  in
  let bound = Cq.body_vars q in
  let safe =
    List.for_all
      (fun v -> List.mem v bound)
      (Cq.head_vars q @ List.concat_map Cmp.vars q.comps)
  in
  if q.body = [] || (not sjf) || not safe then None
  else
    let g = analyze q ~keys in
    match g.order with
    | None -> None
    | Some order -> (
        let unsaturated =
          { query = q; keys; prefix = []; order; fds = [] }
        in
        match saturate q ~keys with
        | None -> Some unsaturated
        | Some s -> (
            (* Helper atoms are inert (their variables co-occur in the
               saturated atom), so the graph stays acyclic; recompute the
               order defensively all the same. *)
            match (analyze s.squery ~keys:s.skeys).order with
            | Some order' ->
                Some
                  {
                    query = s.squery;
                    keys = s.skeys;
                    prefix = s.rules;
                    order = order';
                    fds = s.derived;
                  }
            | None -> Some unsaturated))
