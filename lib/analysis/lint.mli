(** Rule- and program-level lints for Datalog and ASP programs.

    The checks re-derive safety from the rule structure instead of
    trusting the smart constructors, so the analyzer also diagnoses rules
    built directly as records (or arriving from a future parser).

    Severity policy: conditions that make evaluation wrong or impossible
    are [Error] (unsafe variables, ground-unsafe comparisons, negation
    through recursion in Datalog); conditions that only cost expressive
    power or performance are [Warning]; notable structural properties are
    [Info].  An unstratified {e ASP} program is only [Info] — repair
    programs are unstratified by design and evaluated under stable-model
    semantics. *)

val datalog_rule : ?subject:string -> Datalog.Rule.t -> Finding.t list
(** Safety of one rule: every head variable, negated-atom variable and
    comparison variable must be bound by a positive body atom. *)

val datalog_program : ?edb:string list -> Datalog.Program.t -> Finding.t list
(** Per-rule safety plus program structure: stratification of negation
    (with the offending cycle edge as witness), predicates defined but
    never used, and — when [edb] lists the extensional predicates —
    body predicates that are neither defined nor extensional. *)

val asp_rule : ?subject:string -> Asp.Syntax.rule -> Finding.t list

val asp_program : Asp.Syntax.t -> Finding.t list
(** Per-rule safety plus: head-cycle-free vs genuinely disjunctive
    classification of disjunctive programs, and an [Info] note when
    negation is unstratified. *)

val query_findings : ?subject:string -> Logic.Cq.t -> Finding.t list
(** Query-level lints: a [Warning] per self-joined relation — the
    attack-graph trichotomy assumes self-join-freeness, so such queries
    silently degrade to the enumeration tier.  [subject] defaults to the
    query's name. *)

val rule_subject : int -> string
(** The canonical subject for the [i]-th rule (0-based): ["rule#1"]... *)
