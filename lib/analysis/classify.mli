(** The per-(constraints, query) complexity classifier — the static
    tractability test behind [method=auto].

    For self-join-free conjunctive queries under primary keys, the
    Koutris–Wijsen trichotomy (PAPER.md Section 3; built on the
    Fuxman–Miller dichotomy of Section 3.1) separates three tiers by the
    shape of the query's {!Attack_graph}: an acyclic attack graph means
    the certain answers are first-order rewritable; a cyclic graph whose
    every 2-cycle carries a weak attack leaves certainty in PTIME
    (L-complete, Datalog-rewritable); a 2-cycle of strong attacks makes
    it coNP-complete.  The classifier is symbolic — no data touched — and
    returns a verdict plus a machine-readable witness: the attacking
    cycle, the elimination order, the saturation steps applied, the
    non-key constraint, the self-joined relation, ...

    Soundness contract: when the verdict is {!Fo_rewritable}, the
    Fuxman–Miller rewriting with {!rewrite_keys} is guaranteed to apply
    and produce exactly the consistent answers (verified symbolically
    against {!Rewriting.Key_rewrite} before being emitted).  When it is
    {!L_datalog_rewritable}, {!Rewriting.Datalog_rewrite} driven by
    {!Attack_graph.rewriting_input} is guaranteed to apply — the attack
    graph is acyclic but outside the implemented FO fragment, so the
    engine evaluates the stratified Datalog program instead (PTIME).
    {!Conp_hard} is a sound {e lower} bound: the witness names a 2-cycle
    of strong attacks, the configuration of the trichotomy's hardness
    reduction.  [Unknown] covers everything the analysis does not decide,
    including weak attack cycles (PTIME in principle, but the recursive
    rewriting for that tier is not implemented). *)

type verdict = Fo_rewritable | L_datalog_rewritable | Conp_hard | Unknown

type witness =
  | No_constraints  (** No constraint touches the query's relations. *)
  | C_forest  (** In the rewritable class; the rewriting was verified. *)
  | Attack_acyclic of { order : string list; saturated : string list }
      (** Acyclic attack graph outside the C-forest fragment: the
          unattacked-atom elimination order (relation names) and the
          saturation steps applied (empty when the query is saturated). *)
  | Strong_attack_cycle of string list
      (** A 2-cycle of strong attacks — the coNP-hardness witness. *)
  | Weak_attack_cycle of string list
      (** An attack cycle whose 2-cycles all carry weak attacks: PTIME
          per the trichotomy, outside the implemented rewritings. *)
  | Unsafe_query of string  (** Head or comparison variable unbound in the body. *)
  | Non_key_constraint of string  (** A relevant constraint outside the key class. *)
  | Multiple_keys of string  (** Relation with two key constraints. *)
  | Self_join of string
      (** Relation occurring in two atoms: the trichotomy assumes
          self-join-freeness, classification falls back to [Unknown] (and
          {!Lint.query_findings} surfaces the degradation). *)
  | Union_query of int  (** UCQ with that many disjuncts. *)
  | Rewrite_failed
      (** Structural checks passed but the rewriter declined — downgraded
          to [Unknown] defensively. *)

type t = { verdict : verdict; witness : witness }

val classify : Constraints.Ic.t list -> Logic.Cq.t -> t
val classify_ucq : Constraints.Ic.t list -> Logic.Ucq.t -> t

val rewrite_keys : Constraints.Ic.t list -> Logic.Cq.t -> (string * int list) list
(** The key map to drive the rewritings with: declared keys for the
    query's relations, and a synthesized all-attribute key for query
    relations no relevant constraint touches (such relations are never
    repaired, so the full tuple acts as its own key). *)

val verdict_label : verdict -> string
(** ["FO_rewritable"], ["L_datalog_rewritable"], ["coNP_hard"],
    ["unknown"]. *)

val witness_code : witness -> string
(** Stable machine-readable code, e.g. ["attack-graph/strong-cycle"]. *)

val describe : t -> string
(** One line: verdict, witness code and the witness itself. *)

val to_lines : t -> string list
(** Deterministic multi-line rendering for ANALYZE / EXPLAIN output. *)

val ucq_rewriting_diagnostic : Constraints.Ic.t list -> Logic.Ucq.t -> string
(** Why [method=rewriting] does not apply to this union query — names the
    failing condition of the first offending disjunct (e.g. its attack
    cycle), or the absence of a union rewriting when every disjunct is
    individually rewritable. *)
