(** The per-(constraints, query) complexity classifier — the static
    tractability test behind [method=auto].

    For self-join-free conjunctive queries under key constraints, the
    Fuxman–Miller dichotomy (PAPER.md Section 3.1) separates queries whose
    certain answers are first-order rewritable (the C-forest class, built
    over the query's join graph) from queries for which consistent query
    answering is coNP-complete.  The classifier builds that join graph
    without touching any data and returns a verdict plus a
    machine-readable witness: the offending join edge, the non-key
    constraint, the self-joined relation, ...

    Soundness contract: when the verdict is {!Fo_rewritable}, evaluating
    the Fuxman–Miller rewriting with {!rewrite_keys} is guaranteed to
    apply and to produce exactly the consistent answers — the verdict is
    double-checked against {!Rewriting.Key_rewrite} symbolically (on the
    query only) before being emitted.  The other verdicts are upper
    bounds: [Conp_complete_candidate] marks the dichotomy's hard side,
    [Unknown] everything the analysis does not cover. *)

type verdict = Fo_rewritable | Conp_complete_candidate | Unknown

type witness =
  | No_constraints  (** No constraint touches the query's relations. *)
  | C_forest  (** In the rewritable class; the rewriting was verified. *)
  | Unsafe_query of string  (** Head or comparison variable unbound in the body. *)
  | Non_key_constraint of string  (** A relevant constraint outside the key class. *)
  | Multiple_keys of string  (** Relation with two key constraints. *)
  | Self_join of string  (** Relation occurring in two atoms. *)
  | Nonkey_nonkey_join of { var : string; rels : string * string }
      (** Existential variable joining non-key positions of two atoms —
          the dichotomy's coNP-hard pattern. *)
  | Head_nonkey_join of { var : string; rels : string * string }
      (** Free variable joined across non-key positions: rewritable in
          principle, outside the implemented rewriting. *)
  | Join_cycle of string list
      (** Cycle in the key-join graph over existential variables. *)
  | Free_variable_join_cycle of string list
      (** A join cycle that only closes through free-variable edges:
          outside the implemented rewriting, but not a hardness witness
          (free variables carry no join edge in the dichotomy). *)
  | Union_query of int  (** UCQ with that many disjuncts. *)
  | Rewrite_failed
      (** Structural checks passed but the rewriter declined — downgraded
          to [Unknown] defensively. *)

type t = { verdict : verdict; witness : witness }

val classify : Constraints.Ic.t list -> Logic.Cq.t -> t
val classify_ucq : Constraints.Ic.t list -> Logic.Ucq.t -> t

val rewrite_keys : Constraints.Ic.t list -> Logic.Cq.t -> (string * int list) list
(** The key map to drive {!Rewriting.Key_rewrite} with: declared keys for
    the query's relations, and a synthesized all-attribute key for query
    relations no relevant constraint touches (such relations are never
    repaired, so the full tuple acts as its own key). *)

val verdict_label : verdict -> string
(** ["FO_rewritable"], ["coNP_complete_candidate"], ["unknown"]. *)

val witness_code : witness -> string
(** Stable machine-readable code, e.g. ["join/nonkey-nonkey"]. *)

val describe : t -> string
(** One line: verdict, witness code and the witness itself. *)

val to_lines : t -> string list
(** Deterministic multi-line rendering for ANALYZE / EXPLAIN output. *)

val ucq_rewriting_diagnostic : Constraints.Ic.t list -> Logic.Ucq.t -> string
(** Why [method=rewriting] does not apply to this union query — names the
    failing condition of the first offending disjunct (e.g. its non-
    C-forest join edge), or the absence of a union rewriting when every
    disjunct is individually rewritable. *)
