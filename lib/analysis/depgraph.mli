(** Predicate dependency graphs of Datalog and ASP programs.

    Nodes are predicate names; an edge [(body, head, sign)] records that
    [head] is defined by a rule whose body mentions [body] positively or
    under negation.  Every accessor returns sorted data, so renderings of
    the graph are deterministic. *)

type sign = Pos | Neg

type t

val of_datalog : Datalog.Program.t -> t
val of_asp : Asp.Syntax.t -> t
(** Disjunctive heads contribute one edge per head atom. *)

val predicates : t -> string list
(** All predicates mentioned anywhere, sorted. *)

val defined : t -> string list
(** Predicates appearing in some head, sorted. *)

val edges : t -> (string * string * sign) list
(** [(body, head, sign)], sorted; at most one edge per triple, and a
    [Neg] edge is kept alongside a [Pos] edge over the same pair. *)

val sccs : t -> string list list
(** Strongly connected components, each sorted, listed in topological
    order of the condensation (dependencies first). *)

val recursive_predicates : t -> string list
(** Predicates on a cycle (an SCC of size > 1, or a self-loop), sorted. *)

val negative_cycle_witness : t -> (string * string) option
(** A [Neg] edge [(body, head)] with both endpoints in one SCC — the
    reason a program is not stratifiable — or [None]. *)

val to_lines : t -> string list
(** One line per edge, ["P <- Q"] / ["P <- not Q"], sorted. *)
