(** The Koutris–Wijsen attack graph for self-join-free conjunctive queries
    under primary keys (PAPER.md Section 3; Koutris & Wijsen, JACM 2017).

    Nodes are the query's body atoms (by index into [q.body]).  For an atom
    [F], the closure [F^{+,q}] collects every variable functionally
    determined by [key(F)] together with the free variables — free
    variables act as constants throughout — under the functional
    dependencies [key(G) -> vars(G)] of the {e other} atoms.  [F] attacks
    [G] when some chain of atoms links a variable of [F] to a variable of
    [G] entirely outside [F^{+,q}].  An attack [F ⇝ G] is {e weak} when
    the full dependency set [K(q)] already implies [key(F) -> key(G)], and
    {e strong} otherwise.

    The trichotomy: an acyclic attack graph means CERTAINTY(q) is
    FO-rewritable; a cycle whose every 2-cycle contains a weak attack
    leaves the query in PTIME (L-complete); a 2-cycle with both attacks
    strong is a sound coNP-hardness witness (the lower-bound reduction
    builds exactly that configuration).

    All functions here are symbolic — query-sized, no data touched. *)

type attack = { source : int; target : int; strong : bool }
(** [source] attacks [target]; indices into [q.body]. *)

type cycle =
  | Strong_pair of int * int
      (** A 2-cycle with both attacks strong: coNP-hardness witness. *)
  | Weak of int list
      (** A cycle (atom indices, in order) every 2-cycle of which carries a
          weak attack: PTIME per the trichotomy, but the Datalog rewriting
          for this tier needs non-stratified recursion and is not
          implemented here. *)

type t = {
  attacks : attack list;  (** Sorted by (source, target). *)
  cycle : cycle option;  (** [None] iff the attack graph is acyclic. *)
  order : int list option;
      (** An unattacked-atom elimination order (atom indices): at each
          step the next atom is unattacked within the remaining subquery,
          with the variables of already-eliminated atoms treated as
          constants.  Present iff the graph is acyclic. *)
}

val analyze : Logic.Cq.t -> keys:(string * int list) list -> t
(** Precondition: [q] is self-join-free and safe, and [keys] covers every
    body relation (as produced by {!Classify.rewrite_keys}).  Violations do
    not raise; they make the result meaningless, so callers gate on the
    structural checks first. *)

val atom_rel : Logic.Cq.t -> int -> string
(** Relation name of the atom at that body index. *)

(** {1 Saturation}

    A query is unsaturated when [K(q) \ {key(F) -> vars(F)}] already
    implies an "internal" dependency [key(F) -> y] for a non-key variable
    [y] of [F].  Following the FO-reduction of Koutris–Wijsen (and
    snippet 1's "rules at the start of the Datalog program"), saturation
    materializes each such dependency as a fresh helper atom
    [N(key(F), y)] defined by projecting the join of the whole query body
    over the {e raw} database.  [N] carries a whole-tuple key, so it is
    consistent in every instance and inert in the attack graph (its
    variables all co-occur in [F] already), and
    [CERTAINTY(q) = CERTAINTY(q ∧ N(key(F), y))]: a certain match lies in
    every repair, hence in the database, hence its projection is in [N];
    conversely any match of the extended query drops the conjunct.

    The graph-{e refining} use of internal dependencies (keying [N] on
    [key(F)] to shrink attack sets, Koutris–Wijsen 2019) is future work;
    here saturation is a sound, equivalence-preserving preprocessing step
    surfaced in the analysis trace and prefixed to the emitted program. *)

type derived_fd = {
  atom : int;  (** Index of [F] in [q.body]. *)
  rel : string;  (** Relation of [F]. *)
  key : string list;  (** The key variables of [F]. *)
  var : string;  (** The internally determined non-key variable [y]. *)
  path : string list;
      (** Relations whose dependencies fired to derive [y], in order. *)
}

type saturation = {
  squery : Logic.Cq.t;  (** [q] with the helper atoms appended. *)
  skeys : (string * int list) list;
      (** [keys] plus a whole-tuple key per helper relation. *)
  rules : Datalog.Rule.t list;
      (** Defining rules for the helper predicates over the raw EDB. *)
  derived : derived_fd list;
}

val saturate :
  Logic.Cq.t -> keys:(string * int list) list -> saturation option
(** [None] when every internal dependency is trivial (the query is already
    saturated).  Same preconditions as {!analyze}. *)

val describe_fd : derived_fd -> string
(** One line, e.g. ["T: key(c) -> z via R -> S"]. *)

(** {1 Rewriting input} *)

type rewriting_input = {
  query : Logic.Cq.t;  (** The (saturated) query handed to the rewriter. *)
  keys : (string * int list) list;
  prefix : Datalog.Rule.t list;  (** Saturation rules, possibly empty. *)
  order : int list;  (** Elimination order over [query.body]. *)
  fds : derived_fd list;  (** The internal dependencies materialized. *)
}

val rewriting_input :
  Logic.Cq.t -> keys:(string * int list) list -> rewriting_input option
(** The full preprocessing pipeline for {!Rewriting.Datalog_rewrite}:
    checks self-join-freeness, safety and a non-empty body, saturates,
    and computes the elimination order.  [None] when the attack graph is
    cyclic or a precondition fails. *)
