(** Static analysis of a constraint set against its schema.

    Three layers of checks, all without touching data:
    - {b conformance}: every constraint must name declared relations, use
      in-range 0-based attribute positions, and (for denials) keep its
      comparisons bound by atom variables;
    - {b key/FD interaction}: several keys on one relation (repair
      semantics become join-dependent), FDs already implied by a declared
      key, exact duplicate constraints;
    - {b inclusion-dependency structure}: relation-level IND cycles (the
      repair enumerator is complete for acyclic IND sets only) and weak
      acyclicity of the IND position graph — the chase-termination
      criterion the exchange/ontology layers rely on; a weakly acyclic
      IND set is reported as a positive [Info] finding. *)

val analyze : Relational.Schema.t -> Constraints.Ic.t list -> Finding.t list
(** Sorted (deterministic) findings; empty means the set is clean. *)

val weakly_acyclic :
  Relational.Schema.t -> Constraints.Ic.ind list -> (string * int) option
(** [None] when the dependency position graph of the INDs has no cycle
    through a special edge (the chase terminates); otherwise [Some (rel, pos)]
    — a position on such a cycle. *)

val ind_cycle : Constraints.Ic.ind list -> string list option
(** A relation-level cycle [R1 ⊆ R2 ⊆ ... ⊆ R1] among the INDs, or [None]. *)
