module Atom = Logic.Atom

type sign = Pos | Neg

type t = {
  predicates : string list; (* sorted *)
  edges : (string * string * sign) list; (* sorted *)
}

let build pairs =
  (* [pairs] : (head, pos body preds, neg body preds) per rule. *)
  let preds = ref [] and edges = ref [] in
  List.iter
    (fun (heads, pos, neg) ->
      preds := heads @ pos @ neg @ !preds;
      List.iter
        (fun h ->
          List.iter (fun b -> edges := (b, h, Pos) :: !edges) pos;
          List.iter (fun b -> edges := (b, h, Neg) :: !edges) neg)
        heads)
    pairs;
  {
    predicates = List.sort_uniq String.compare !preds;
    edges = List.sort_uniq Stdlib.compare !edges;
  }

let of_datalog (p : Datalog.Program.t) =
  build
    (List.map
       (fun (r : Datalog.Rule.t) ->
         ( [ r.head.Atom.rel ],
           List.map (fun (a : Atom.t) -> a.rel) r.body_pos,
           List.map (fun (a : Atom.t) -> a.rel) r.body_neg ))
       p.rules)

let of_asp (p : Asp.Syntax.t) =
  build
    (List.map
       (fun (r : Asp.Syntax.rule) ->
         ( List.map (fun (a : Atom.t) -> a.rel) r.head,
           List.map (fun (a : Atom.t) -> a.rel) r.pos,
           List.map (fun (a : Atom.t) -> a.rel) r.neg ))
       p.rules)

let predicates t = t.predicates

let defined t =
  List.map (fun (_, h, _) -> h) t.edges |> List.sort_uniq String.compare

let edges t = t.edges

let successors t p =
  List.filter_map (fun (b, h, _) -> if String.equal b p then Some h else None) t.edges
  |> List.sort_uniq String.compare

(* Tarjan's SCC algorithm; components are emitted in reverse topological
   order, and consing them onto [out] reverses that again — so [out]
   already lists dependencies first. *)
let sccs t =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and next = ref 0 and out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !next;
    Hashtbl.replace low v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (successors t v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := List.sort String.compare (pop []) :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) t.predicates;
  !out

let recursive_predicates t =
  let self_loop p = List.exists (fun (b, h, _) -> b = p && h = p) t.edges in
  List.concat_map
    (fun comp ->
      match comp with
      | [ p ] -> if self_loop p then [ p ] else []
      | comp -> comp)
    (sccs t)
  |> List.sort_uniq String.compare

let negative_cycle_witness t =
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun p -> Hashtbl.replace comp_of p i) comp)
    (sccs t);
  List.find_map
    (fun (b, h, sign) ->
      match sign with
      | Pos -> None
      | Neg ->
          if Hashtbl.find_opt comp_of b = Hashtbl.find_opt comp_of h then
            Some (b, h)
          else None)
    t.edges

let to_lines t =
  List.map
    (fun (b, h, sign) ->
      match sign with
      | Pos -> Printf.sprintf "%s <- %s" h b
      | Neg -> Printf.sprintf "%s <- not %s" h b)
    t.edges
  |> List.sort String.compare
