module Instance = Relational.Instance
module Tid = Relational.Tid
module Value = Relational.Value
module Tvl = Relational.Tvl
module Binding = Logic.Binding
module Cq = Logic.Cq

module Tidset_set = Set.Make (Tid.Set)

module Rows = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

(* Candidate answers of [q] on the (inconsistent) instance, each with
   the distinct tid sets of its witnesses — the body matches that
   produce the answer.  The search mirrors Violation.of_denial: bind
   atoms left to right against bucketed candidate rows, checking
   comparisons as soon as their variables are bound.  An answer row is
   in a given repair iff one of its witness tid sets survives there, so
   the witness sets are all the query layer needs. *)
let answers_with_witnesses (q : Cq.t) inst =
  let cmp_ready env c = List.for_all (Binding.mem env) (Logic.Cmp.vars c) in
  let acc = ref Rows.empty in
  let record env tids =
    match
      List.fold_left
        (fun row t ->
          match row with
          | None -> None
          | Some row -> (
              match Binding.term_value env t with
              | Some v -> Some (v :: row)
              | None -> None))
        (Some []) q.Cq.head
    with
    | None -> () (* unbound head term: not an answer under this match *)
    | Some rev_row ->
        let row = List.rev rev_row in
        let seen = Option.value ~default:Tidset_set.empty (Rows.find_opt row !acc) in
        acc := Rows.add row (Tidset_set.add tids seen) !acc
  in
  let rec search env matched atoms comps =
    let ready, pending = List.partition (cmp_ready env) comps in
    if List.for_all (fun c -> Tvl.to_bool (Binding.eval_cmp env c)) ready then
      match atoms with
      | [] -> if pending = [] then record env matched
      | a :: rest ->
          List.iter
            (fun (tid, row) ->
              match Cq.match_row env a row with
              | Some env' -> search env' (Tid.Set.add tid matched) rest pending
              | None -> ())
            (Instance.matching_tuples inst ~rel:a.Logic.Atom.rel
               ~bound:(Cq.bound_pattern env a pending))
    else ()
  in
  search Binding.empty Tid.Set.empty q.Cq.body q.Cq.comps;
  Rows.fold
    (fun row tids out -> (row, Tidset_set.elements tids) :: out)
    !acc []
  |> List.rev
