(** The instance-level half of the CAvSAT encoding: a CNF theory whose
    models are exactly the S-repairs of a (instance, denial-class
    constraints) pair, over one Boolean variable per conflicting tuple
    ("the tuple is kept").  Independence clauses come from the cached
    conflict hypergraph; maximality clauses pin models to *maximal*
    independent sets, so certainty tested against the theory agrees
    with repair enumeration.

    Built once per (instance digest × constraints) through {!cached}
    and shared by all answer candidates — the incremental solver inside
    retains both the indexed theory and the refutations it learns. *)

type stats = { vars : int; clauses : int; conflict_edges : int }

type t = {
  solver : Sat.Dpll.Incremental.t;
  var_of_tid : (int, int) Hashtbl.t;
  conflicting : Relational.Tid.Set.t;
  no_repairs : bool;
      (** Some constraint is violated by the empty binding: the instance
          has no S-repairs, so no answer is certain. *)
  base : stats;  (** Size of the theory as built, before any query. *)
  lock : Mutex.t;
      (** Serializes candidate probes on the shared solver. *)
}

val build :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> t
(** Raises [Invalid_argument] (via the conflict graph) when the
    constraint set is not denial-class. *)

val cached :
  Relational.Instance.t -> Relational.Schema.t -> Constraints.Ic.t list -> t
(** {!build} through a small bounded memo keyed by instance digest and
    constraint fingerprint, verified against the cached instance before
    reuse.  Counters: [cavsat.theory_builds], [cavsat.theory_cache_hits]. *)

val var_for : t -> Relational.Tid.t -> int option
(** The solver variable of a conflicting tuple; [None] for tuples
    outside every conflict (kept by all repairs). *)
