(** SAT-compiled consistent query answering for the coNP-hard tier
    (CAvSAT-style; Dixit–Kolaitis).

    Certainty of each candidate answer is decided without materializing
    a single repair: the candidate's witnesses are compiled to clauses
    over the shared repair {!Theory}, and one incremental SAT call under
    a per-candidate selector assumption asks for an S-repair killing
    every witness.  UNSAT ⇔ the answer is certain.

    Counters: [cavsat.queries], [cavsat.candidates], [cavsat.certain],
    [cavsat.clean_witness] (candidates settled without a SAT call),
    [cavsat.sat_calls], [cavsat.witness_clauses], plus the theory-layer
    [cavsat.theory_builds] / [cavsat.theory_cache_hits] /
    [cavsat.vars] / [cavsat.clauses].  The [cavsat.certain_answers]
    span carries vars/clauses/conflict_edges/candidates/certain
    attributes for EXPLAIN. *)

val consistent_answers :
  Relational.Instance.t ->
  Relational.Schema.t ->
  Constraints.Ic.t list ->
  Logic.Cq.t ->
  Relational.Value.t list list
(** Consistent answers under S-repair semantics; agrees with
    [Engine.consistent_answers ~method_:`Repair_enumeration] on every
    denial-class input.  Raises [Invalid_argument] when some constraint
    is not denial-class (inclusion dependencies repair by insertion;
    the conflict-graph theory does not capture them). *)
