module Tid = Relational.Tid
module Instance = Relational.Instance
module Ic = Constraints.Ic
module Conflict_graph = Constraints.Conflict_graph

let c_builds = Obs.Counter.make "cavsat.theory_builds"
let c_cache_hits = Obs.Counter.make "cavsat.theory_cache_hits"
let c_vars = Obs.Counter.make "cavsat.vars"
let c_clauses = Obs.Counter.make "cavsat.clauses"

type stats = { vars : int; clauses : int; conflict_edges : int }

type t = {
  solver : Sat.Dpll.Incremental.t;
  var_of_tid : (int, int) Hashtbl.t;
  conflicting : Tid.Set.t;
  no_repairs : bool;
  base : stats;
  lock : Mutex.t;
}

let var_for t tid = Hashtbl.find_opt t.var_of_tid (Tid.to_int tid)

(* The repair theory of one (instance, denial-class constraints) pair —
   the instance-level half of the CAvSAT encoding (Dixit–Kolaitis).  One
   Boolean variable x_t per *conflicting* tuple means "t is kept";
   tuples outside every conflict are kept by all S-repairs and get no
   variable.  The models of the theory are exactly the maximal
   independent sets of the conflict hypergraph, i.e. the S-repairs:

   - independence: per edge {t1..tk} the clause ¬x_t1 ∨ ... ∨ ¬x_tk;
   - maximality: per tuple t, x_t ∨ ⋁_{edges e ∋ t} aux_{e,t}, where
     aux_{e,t} implies every other member of e is kept (for the common
     binary edge the aux literal is just the other tuple's variable, so
     a key group of two yields the familiar at-least-one clause).

   A singleton edge {t} is a self-violation: unit ¬x_t, and t's
   maximality clause is vacuous.  An *empty* edge is a constraint
   violated by the empty binding — no subset repairs it, the instance
   has no S-repairs at all; [no_repairs] records that so the query layer
   can reproduce repair enumeration's "no repairs, no answers". *)
let build inst schema ics =
  Obs.Counter.incr c_builds;
  let graph = Conflict_graph.build_cached inst schema ics in
  let conflicting = Conflict_graph.conflicting_tids graph in
  let no_repairs = List.exists Tid.Set.is_empty graph.Conflict_graph.edges in
  let solver = Sat.Dpll.Incremental.create () in
  let var_of_tid = Hashtbl.create 64 in
  Tid.Set.iter
    (fun tid ->
      Hashtbl.replace var_of_tid (Tid.to_int tid)
        (Sat.Dpll.Incremental.fresh_var solver))
    conflicting;
  let var tid = Hashtbl.find var_of_tid (Tid.to_int tid) in
  let edges_of = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Tid.Set.iter
        (fun tid ->
          let k = Tid.to_int tid in
          Hashtbl.replace edges_of k
            (e :: Option.value ~default:[] (Hashtbl.find_opt edges_of k)))
        e)
    graph.Conflict_graph.edges;
  if not no_repairs then begin
    (* Independence clauses. *)
    List.iter
      (fun e ->
        Sat.Dpll.Incremental.add_clause solver
          (List.map (fun tid -> -var tid) (Tid.Set.elements e)))
      graph.Conflict_graph.edges;
    (* Maximality clauses, deduplicated by literal set: the two tuples
       of a binary edge would otherwise each emit the same at-least-one
       clause. *)
    let seen_max = Hashtbl.create 64 in
    Tid.Set.iter
      (fun tid ->
        let edges = Option.value ~default:[] (Hashtbl.find_opt edges_of (Tid.to_int tid)) in
        if not (List.exists (fun e -> Tid.Set.cardinal e = 1) edges) then begin
          let binary, wide =
            List.partition (fun e -> Tid.Set.cardinal e = 2) edges
          in
          let direct =
            List.map (fun e -> var (Tid.Set.min_elt (Tid.Set.remove tid e))) binary
          in
          let clause_key =
            List.sort_uniq Int.compare (var tid :: direct)
          in
          if wide <> [] || not (Hashtbl.mem seen_max clause_key) then begin
            Hashtbl.replace seen_max clause_key ();
            let aux_lits =
              List.map
                (fun e ->
                  let aux = Sat.Dpll.Incremental.fresh_var solver in
                  Tid.Set.iter
                    (fun o ->
                      Sat.Dpll.Incremental.add_clause solver [ -aux; var o ])
                    (Tid.Set.remove tid e);
                  aux)
                wide
            in
            Sat.Dpll.Incremental.add_clause solver
              (var tid :: List.sort_uniq Int.compare direct @ aux_lits)
          end
        end)
      conflicting;
    (* Self-violating tuples are in no repair. *)
    List.iter
      (fun e ->
        match Tid.Set.elements e with
        | [ t ] -> Sat.Dpll.Incremental.add_clause solver [ -var t ]
        | _ -> ())
      graph.Conflict_graph.edges
  end;
  let base =
    {
      vars = Sat.Dpll.Incremental.nvars solver;
      clauses = Sat.Dpll.Incremental.nclauses solver;
      conflict_edges = List.length graph.Conflict_graph.edges;
    }
  in
  Obs.Counter.add c_vars base.vars;
  Obs.Counter.add c_clauses base.clauses;
  {
    solver;
    var_of_tid;
    conflicting;
    no_repairs;
    base;
    lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Cached builds, mirroring Constraints.Conflict_graph.build_cached:
   keyed by (instance digest, constraint fingerprint), verified against
   the cached instance before reuse.  Sharing the cached theory across
   the candidates of one query — and across queries on the same
   instance — is what makes the per-candidate work incremental: the
   conflict clauses are indexed once, and the solver keeps its learned
   refutations. *)

let cache_capacity = 8
let cache : (int * string * Instance.t * t) list ref = ref []
let cache_lock = Mutex.create ()

let ics_fingerprint ics =
  String.concat ";" (List.map (fun ic -> Format.asprintf "%a" Ic.pp ic) ics)

let cached inst schema ics =
  let key = Instance.digest inst in
  let fp = ics_fingerprint ics in
  let hit =
    Mutex.lock cache_lock;
    let found =
      List.find_opt
        (fun (k, f, cached_inst, _) ->
          k = key && String.equal f fp
          && (cached_inst == inst || Instance.equal_with_tids cached_inst inst))
        !cache
    in
    Mutex.unlock cache_lock;
    found
  in
  match hit with
  | Some (_, _, _, t) ->
      Obs.Counter.incr c_cache_hits;
      t
  | None ->
      let t = build inst schema ics in
      Mutex.lock cache_lock;
      cache :=
        (key, fp, inst, t)
        :: (if List.length !cache >= cache_capacity then
              List.filteri (fun i _ -> i < cache_capacity - 1) !cache
            else !cache);
      Mutex.unlock cache_lock;
      t
