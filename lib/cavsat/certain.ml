module Tid = Relational.Tid
module Instance = Relational.Instance
module Ic = Constraints.Ic
module Dpll = Sat.Dpll.Incremental

let c_queries = Obs.Counter.make "cavsat.queries"
let c_candidates = Obs.Counter.make "cavsat.candidates"
let c_certain = Obs.Counter.make "cavsat.certain"
let c_clean_witness = Obs.Counter.make "cavsat.clean_witness"
let c_sat_calls = Obs.Counter.make "cavsat.sat_calls"
let c_witness_clauses = Obs.Counter.make "cavsat.witness_clauses"

(* Is [row] a certain answer?  Holding the theory lock: allocate a
   selector s, assert per witness "s → some conflicting member of the
   witness is deleted", and solve under assumption s.  A model is an
   S-repair killing every witness, so SAT refutes certainty; UNSAT
   proves every repair keeps a witness, i.e. the answer is certain (and
   the solver retains the learned ¬s, retiring the selector).  On SAT
   the selector is retired explicitly with a unit clause so later
   candidates never revisit its clauses. *)
let candidate_certain (theory : Theory.t) witnesses =
  let conflicting w = Tid.Set.inter w theory.Theory.conflicting in
  if List.exists (fun w -> Tid.Set.is_empty (conflicting w)) witnesses then begin
    (* A witness no constraint touches survives in every repair. *)
    Obs.Counter.incr c_clean_witness;
    true
  end
  else begin
    let solver = theory.Theory.solver in
    let s = Dpll.fresh_var solver in
    List.iter
      (fun w ->
        Obs.Counter.incr c_witness_clauses;
        Dpll.add_clause solver
          (-s
          :: List.map
               (fun tid -> -(Option.get (Theory.var_for theory tid)))
               (Tid.Set.elements (conflicting w))))
      witnesses;
    Obs.Counter.incr c_sat_calls;
    match Dpll.solve ~assumptions:[ s ] solver with
    | Some _ ->
        Dpll.add_clause solver [ -s ];
        false
    | None -> true
  end

let consistent_answers inst schema ics q =
  List.iter
    (fun ic ->
      if not (Ic.is_denial_class ic) then
        invalid_arg
          (Printf.sprintf
             "Cavsat.Certain.consistent_answers: %s is not a denial-class \
              constraint (SAT compilation repairs by deletion only)"
             (Ic.name ic)))
    ics;
  let sp = Obs.Trace.start "cavsat.certain_answers" in
  Obs.Counter.incr c_queries;
  Obs.Progress.phase "cavsat";
  match
    let theory = Theory.cached inst schema ics in
    if theory.Theory.no_repairs then []
    else begin
      let candidates = Witness.answers_with_witnesses q inst in
      Obs.Counter.add c_candidates (List.length candidates);
      Mutex.lock theory.Theory.lock;
      let certain =
        match
          List.filter
            (fun (_, ws) ->
              Obs.Progress.tick ();
              candidate_certain theory ws)
            candidates
        with
        | rows -> rows
        | exception e ->
            Mutex.unlock theory.Theory.lock;
            raise e
      in
      Mutex.unlock theory.Theory.lock;
      Obs.Counter.add c_certain (List.length certain);
      if Obs.Trace.is_enabled () then begin
        Obs.Trace.attr_int "vars" (Sat.Dpll.Incremental.nvars theory.Theory.solver);
        Obs.Trace.attr_int "clauses"
          (Sat.Dpll.Incremental.nclauses theory.Theory.solver);
        Obs.Trace.attr_int "conflict_edges" theory.Theory.base.Theory.conflict_edges;
        Obs.Trace.attr_int "candidates" (List.length candidates);
        Obs.Trace.attr_int "certain" (List.length certain)
      end;
      List.map fst certain
    end
  with
  | rows ->
      Obs.Trace.finish sp;
      rows
  | exception e ->
      Obs.Trace.finish sp;
      raise e
