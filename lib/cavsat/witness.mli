(** Candidate answers with witnesses.

    The candidate answers of a conjunctive query on an inconsistent
    instance are its plain answers; each comes with the distinct tid
    sets of the body matches ("witnesses") producing it.  A candidate
    holds in a repair iff some witness tid set is contained in it, which
    is exactly what the SAT encoding needs to assert "no surviving
    witness". *)

val answers_with_witnesses :
  Logic.Cq.t ->
  Relational.Instance.t ->
  (Relational.Value.t list * Relational.Tid.Set.t list) list
(** Distinct answer rows in sorted order (matching [Cq.answers]), each
    with at least one witness.  A Boolean query yields the empty row
    when its body is satisfiable. *)
