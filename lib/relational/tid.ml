type t = int

let of_int i = i
let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash i = Hashtbl.hash i
let pp ppf i = Format.fprintf ppf "t%d" i

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Cell = struct
  type nonrec t = { tid : t; pos : int }

  let make tid pos = { tid; pos }
  let equal a b = equal a.tid b.tid && a.pos = b.pos

  let compare a b =
    match compare a.tid b.tid with 0 -> Int.compare a.pos b.pos | c -> c

  let pp ppf { tid; pos } = Format.fprintf ppf "%a[%d]" pp tid pos

  module Set = Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)
end
