(* A columnar table: named typed columns of equal length.

   This is the storage half of the compiled evaluation path; the
   kernels that consume it live in [Plan].  The [length] field is
   explicit so zero-column tables (boolean query results) still carry
   their cardinality. *)

type t = { cols : string array; columns : Column.t array; length : int }

(* Process-wide switch for the compiled columnar evaluation paths in
   [Logic.Cq], [Logic.Formula] and [Constraints.Violation]; mirrors
   [Instance.set_indexing].  Storage itself is always available. *)
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let make cols columns length = { cols; columns; length }
let cols t = t.cols
let columns t = t.columns
let length t = t.length

let unknown_column ~op name available =
  invalid_arg
    (Printf.sprintf "%s: unknown column %S (available: %s)" op name
       (if Array.length available = 0 then "none"
        else String.concat ", " (Array.to_list available)))

let col_index t name =
  let n = Array.length t.cols in
  let rec go i =
    if i >= n then unknown_column ~op:"Columnar.col_index" name t.cols
    else if String.equal t.cols.(i) name then i
    else go (i + 1)
  in
  go 0

let column t name = t.columns.(col_index t name)

let empty cols = { cols; columns = Array.map (fun _ -> Column.of_ints [||]) cols; length = 0 }

let of_rows cols (rows : Value.t array list) =
  let n = List.length rows in
  let arr = Array.of_list rows in
  let columns =
    Array.mapi
      (fun j _ -> Column.of_values (Array.init n (fun i -> arr.(i).(j))))
      cols
  in
  { cols; columns; length = n }

let get_row t i = Array.map (fun c -> Column.get c i) t.columns

let rows t =
  let getters = Array.map Column.getter t.columns in
  List.init t.length (fun i -> Array.map (fun g -> g i) getters)

(* Keep the rows listed in [idx], in that order. *)
let select t idx =
  {
    t with
    columns = Array.map (fun c -> Column.gather c idx) t.columns;
    length = Array.length idx;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       Format.pp_print_string)
    t.cols
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf row ->
         Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           Value.pp ppf row))
    (rows t)
