type rel = { cols : string array; rows : Value.t array list }

let of_instance inst name =
  let r = Schema.relation (Instance.schema inst) name in
  { cols = Array.copy r.Schema.attributes; rows = Instance.rows inst ~rel:name }

let col r name =
  let n = Array.length r.cols in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal r.cols.(i) name then i
    else go (i + 1)
  in
  go 0

let select cond r =
  { r with rows = List.filter (fun row -> Tvl.to_bool (cond r row)) r.rows }

let select_eq name v r =
  let i = col r name in
  select (fun _ row -> Value.sql_eq row.(i) v) r

let project names r =
  let idxs = List.map (col r) names in
  let cols = Array.of_list names in
  let rows = List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs)) r.rows in
  { cols; rows }

let rename pairs r =
  let cols =
    Array.map
      (fun c -> match List.assoc_opt c pairs with Some c' -> c' | None -> c)
      r.cols
  in
  { r with cols }

let check_disjoint a b =
  Array.iter
    (fun c ->
      Array.iter
        (fun c' ->
          if String.equal c c' then
            invalid_arg
              (Printf.sprintf "Ra.product: overlapping column %s (rename first)"
                 c))
        b.cols)
    a.cols

let product a b =
  check_disjoint a b;
  let cols = Array.append a.cols b.cols in
  let rows =
    List.concat_map
      (fun ra -> List.map (fun rb -> Array.append ra rb) b.rows)
      a.rows
  in
  { cols; rows }

let natural_join a b =
  let shared =
    Array.to_list a.cols
    |> List.filter (fun c -> Array.exists (String.equal c) b.cols)
  in
  let a_idx = List.map (fun c -> col a c) shared in
  let b_idx = List.map (fun c -> col b c) shared in
  let b_keep =
    Array.to_list b.cols
    |> List.filter (fun c -> not (List.mem c shared))
    |> List.map (fun c -> col b c)
  in
  let cols =
    Array.append a.cols
      (Array.of_list (List.map (fun i -> b.cols.(i)) b_keep))
  in
  let matches ra rb =
    List.for_all2
      (fun ia ib -> Tvl.to_bool (Value.sql_eq ra.(ia) rb.(ib)))
      a_idx b_idx
  in
  let rows =
    List.concat_map
      (fun ra ->
        List.filter_map
          (fun rb ->
            if matches ra rb then
              Some
                (Array.append ra
                   (Array.of_list (List.map (fun i -> rb.(i)) b_keep)))
            else None)
          b.rows)
      a.rows
  in
  { cols; rows }

module Row_set = Set.Make (struct
  type t = Value.t array

  let compare a b =
    let n = Array.length a and m = Array.length b in
    if n <> m then Int.compare n m
    else
      let rec go i =
        if i >= n then 0
        else match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
      in
      go 0
end)

let distinct r =
  let set = Row_set.of_list r.rows in
  { r with rows = Row_set.elements set }

let union a b =
  if Array.length a.cols <> Array.length b.cols then
    invalid_arg "Ra.union: arity mismatch";
  distinct { a with rows = a.rows @ b.rows }

let difference a b =
  if Array.length a.cols <> Array.length b.cols then
    invalid_arg "Ra.difference: arity mismatch";
  let bs = Row_set.of_list b.rows in
  distinct { a with rows = List.filter (fun r -> not (Row_set.mem r bs)) a.rows }

let cardinality r = List.length (distinct r).rows
let rows_as_lists r = List.map Array.to_list (distinct r).rows

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       Format.pp_print_string)
    r.cols
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf row ->
         Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           Value.pp ppf row))
    r.rows
