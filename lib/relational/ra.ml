type rel = { cols : string array; rows : Value.t array list }

let c_join_hash = Obs.Counter.make "join.hash"
let c_join_nested = Obs.Counter.make "join.nested"

let of_instance inst name =
  let r = Schema.relation (Instance.schema inst) name in
  { cols = Array.copy r.Schema.attributes; rows = Instance.rows inst ~rel:name }

let col_named ~op r name =
  let n = Array.length r.cols in
  let rec go i =
    if i >= n then Columnar.unknown_column ~op name r.cols
    else if String.equal r.cols.(i) name then i
    else go (i + 1)
  in
  go 0

let col r name = col_named ~op:"Ra.col" r name

(* Resolve all column positions of an operator in one pass: name → index,
   built once, O(1) lookups afterwards.  A miss raises the same
   descriptive [Invalid_argument] as [col], attributed to [op]. *)
let position_table ~op r =
  let tbl = Hashtbl.create (Array.length r.cols) in
  Array.iteri
    (fun i c -> if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c i)
    r.cols;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some i -> i
    | None -> Columnar.unknown_column ~op name r.cols

let select cond r =
  { r with rows = List.filter (fun row -> Tvl.to_bool (cond r row)) r.rows }

let select_eq name v r =
  let i = col_named ~op:"Ra.select_eq" r name in
  select (fun _ row -> Value.sql_eq row.(i) v) r

let project names r =
  let pos = position_table ~op:"Ra.project" r in
  let idxs = List.map pos names in
  let cols = Array.of_list names in
  let rows = List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs)) r.rows in
  { cols; rows }

let rename pairs r =
  List.iter
    (fun (c, _) ->
      if not (Array.exists (String.equal c) r.cols) then
        Columnar.unknown_column ~op:"Ra.rename" c r.cols)
    pairs;
  let cols =
    Array.map
      (fun c -> match List.assoc_opt c pairs with Some c' -> c' | None -> c)
      r.cols
  in
  { r with cols }

let check_disjoint a b =
  Array.iter
    (fun c ->
      Array.iter
        (fun c' ->
          if String.equal c c' then
            invalid_arg
              (Printf.sprintf "Ra.product: overlapping column %s (rename first)"
                 c))
        b.cols)
    a.cols

let product a b =
  check_disjoint a b;
  let cols = Array.append a.cols b.cols in
  let rows =
    List.concat_map
      (fun ra -> List.map (fun rb -> Array.append ra rb) b.rows)
      a.rows
  in
  { cols; rows }

(* ------------------------------------------------------------------ *)
(* Hash joins.

   NULL never joins (SQL semantics: [Value.sql_eq] with a NULL operand is
   Unknown, and selection keeps only definite matches), so rows with a
   NULL key simply never enter a hash table or probe one.  On non-null
   values [Value.equal] coincides with [sql_eq], which makes a plain
   hash table an exact implementation of the nested-loop match test. *)

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = Hashtbl.hash (List.map Value.hash k)
end)

let key_of idxs row =
  let vals = List.map (fun i -> row.(i)) idxs in
  if List.exists Value.is_null vals then None else Some vals

let shared_cols a b =
  Array.to_list a.cols
  |> List.filter (fun c -> Array.exists (String.equal c) b.cols)

(* The planner: both sides always produce the rows in nested-loop order
   ([a]-major, [b] order within each [a] row); the hash table is built on
   whichever side is smaller.

   - build on [b]: table maps key → [b] rows (in order); probing with each
     [a] row emits its matches directly.
   - build on [a]: table maps key → [a] row slots; one pass over [b]
     appends each [b] row to every matching slot, and a final [a]-order
     sweep emits the collected matches.  *)
let hash_matches ~a_idx ~b_idx ~emit a b =
  let na = List.length a.rows and nb = List.length b.rows in
  if nb <= na then begin
    let tbl = Key_tbl.create (max 16 nb) in
    List.iteri
      (fun j rb ->
        match key_of b_idx rb with
        | None -> ()
        | Some k -> Key_tbl.add tbl k (j, rb))
      b.rows;
    (* Hashtbl.find_all returns bindings most-recent-first: reverse to get
       b's original order. *)
    List.concat_map
      (fun ra ->
        match key_of a_idx ra with
        | None -> []
        | Some k ->
            Key_tbl.find_all tbl k
            |> List.sort (fun (j, _) (j', _) -> Int.compare j j')
            |> List.map (fun (_, rb) -> emit ra rb))
      a.rows
  end
  else begin
    let slots = Array.make na [] in
    let tbl = Key_tbl.create (max 16 na) in
    List.iteri
      (fun i ra ->
        match key_of a_idx ra with
        | None -> ()
        | Some k -> Key_tbl.add tbl k i)
      a.rows;
    List.iter
      (fun rb ->
        match key_of b_idx rb with
        | None -> ()
        | Some k ->
            Key_tbl.find_all tbl k
            |> List.iter (fun i -> slots.(i) <- rb :: slots.(i)))
      b.rows;
    let out = ref [] in
    let arr_a = Array.of_list a.rows in
    for i = na - 1 downto 0 do
      (* [slots.(i)] holds this row's matches in reverse [b] order; consing
         while iterating reverses once more, restoring [b] order. *)
      List.iter (fun rb -> out := emit arr_a.(i) rb :: !out) slots.(i)
    done;
    !out
  end

let join_plan a b =
  let shared = shared_cols a b in
  let pos_a = position_table ~op:"Ra.join" a
  and pos_b = position_table ~op:"Ra.join" b in
  let a_idx = List.map pos_a shared in
  let b_idx = List.map pos_b shared in
  let b_keep =
    Array.to_list b.cols
    |> List.filter (fun c -> not (List.mem c shared))
    |> List.map pos_b
  in
  (shared, a_idx, b_idx, b_keep)

let natural_join a b =
  let shared, a_idx, b_idx, b_keep = join_plan a b in
  let cols =
    Array.append a.cols
      (Array.of_list (List.map (fun i -> b.cols.(i)) b_keep))
  in
  let emit ra rb =
    Array.append ra (Array.of_list (List.map (fun i -> rb.(i)) b_keep))
  in
  let rows =
    if shared = [] || not (Instance.indexing_enabled ()) then begin
      Obs.Counter.incr c_join_nested;
      let matches ra rb =
        List.for_all2
          (fun ia ib -> Tvl.to_bool (Value.sql_eq ra.(ia) rb.(ib)))
          a_idx b_idx
      in
      List.concat_map
        (fun ra ->
          List.filter_map
            (fun rb -> if matches ra rb then Some (emit ra rb) else None)
            b.rows)
        a.rows
    end
    else begin
      Obs.Counter.incr c_join_hash;
      hash_matches ~a_idx ~b_idx ~emit a b
    end
  in
  { cols; rows }

let semijoin a b =
  let shared, a_idx, b_idx, _ = join_plan a b in
  let rows =
    if shared = [] then (if b.rows = [] then [] else a.rows)
    else if not (Instance.indexing_enabled ()) then begin
      Obs.Counter.incr c_join_nested;
      List.filter
        (fun ra ->
          List.exists
            (fun rb ->
              List.for_all2
                (fun ia ib -> Tvl.to_bool (Value.sql_eq ra.(ia) rb.(ib)))
                a_idx b_idx)
            b.rows)
        a.rows
    end
    else begin
      Obs.Counter.incr c_join_hash;
      let tbl = Key_tbl.create (max 16 (List.length b.rows)) in
      List.iter
        (fun rb ->
          match key_of b_idx rb with
          | None -> ()
          | Some k -> Key_tbl.replace tbl k ())
        b.rows;
      List.filter
        (fun ra ->
          match key_of a_idx ra with
          | None -> false
          | Some k -> Key_tbl.mem tbl k)
        a.rows
    end
  in
  { a with rows }

module Row_set = Set.Make (struct
  type t = Value.t array

  let compare a b =
    let n = Array.length a and m = Array.length b in
    if n <> m then Int.compare n m
    else
      let rec go i =
        if i >= n then 0
        else match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
      in
      go 0
end)

let distinct r =
  let set = Row_set.of_list r.rows in
  { r with rows = Row_set.elements set }

let union a b =
  if Array.length a.cols <> Array.length b.cols then
    invalid_arg "Ra.union: arity mismatch";
  distinct { a with rows = a.rows @ b.rows }

let difference a b =
  if Array.length a.cols <> Array.length b.cols then
    invalid_arg "Ra.difference: arity mismatch";
  let bs = Row_set.of_list b.rows in
  distinct { a with rows = List.filter (fun r -> not (Row_set.mem r bs)) a.rows }

let cardinality r = List.length (distinct r).rows
let rows_as_lists r = List.map Array.to_list (distinct r).rows

(* The compatibility boundary with the columnar engine: row-oriented
   consumers keep their [rel] interface, columnar results cross over
   losslessly (same columns, same row order). *)
let of_columnar c =
  { cols = Array.copy (Columnar.cols c); rows = Columnar.rows c }

let to_columnar r = Columnar.of_rows (Array.copy r.cols) r.rows

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
       Format.pp_print_string)
    r.cols
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf row ->
         Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           Value.pp ppf row))
    r.rows
