(** A small executable relational algebra over named column sets.

    Used by the examples and by the SQL-style rewritings of Section 3.1 to
    evaluate queries directly against instances.  Conditions are evaluated in
    three-valued logic ({!Tvl}); a tuple is selected only when the condition
    is definitely true, matching SQL's treatment of NULL. *)

type rel = { cols : string array; rows : Value.t array list }
(** An intermediate result: column names plus rows (set semantics is
    restored by {!distinct}). *)

val of_instance : Instance.t -> string -> rel
(** The named base relation, with the attribute names of the schema. *)

val of_columnar : Columnar.t -> rel
val to_columnar : rel -> Columnar.t
(** Lossless boundary with the columnar engine: same columns, same row
    order. *)

val col : rel -> string -> int
(** Index of a column.  Raises [Invalid_argument] naming the missing
    column and the available ones (as do [select_eq], [project] and
    [rename] on unknown columns). *)

val select : (rel -> Value.t array -> Tvl.t) -> rel -> rel
val select_eq : string -> Value.t -> rel -> rel
val project : string list -> rel -> rel
val rename : (string * string) list -> rel -> rel
val product : rel -> rel -> rel
(** Raises [Invalid_argument] on overlapping column names; rename first. *)

val natural_join : rel -> rel -> rel
(** Join on all shared column names; NULL never joins.  Evaluated as a hash
    join (build side picked by cardinality, output in nested-loop order)
    when {!Instance.indexing_enabled} and at least one column is shared;
    falls back to a nested loop otherwise.  The [join.hash]/[join.nested]
    counters record which path ran. *)

val semijoin : rel -> rel -> rel
(** [semijoin a b] keeps the rows of [a] that join with at least one row of
    [b] on the shared columns ([a]'s columns are kept unchanged). *)

val union : rel -> rel -> rel
val difference : rel -> rel -> rel
val distinct : rel -> rel
val cardinality : rel -> int
val rows_as_lists : rel -> Value.t list list
val pp : Format.formatter -> rel -> unit
