(** One typed column of a {!Columnar} table: a dense unboxed array plus
    a NULL bitmap.

    Homogeneous primitive columns keep native [int]/[float]/[bool]
    arrays; string-valued and mixed-type columns are coded through the
    global {!Dict}.  NULL lives out-of-band in the bitmap — the cell
    under a null slot is a dummy — so every kernel checks {!is_null}
    (or masks with the bitmap) before trusting a cell, which is exactly
    what implements "NULL never joins". *)

type data =
  | Ints of int array
  | Reals of float array
  | Bools of bool array
  | Codes of int array  (** global {!Dict} codes; null slots hold Null's code *)

type t = { data : data; nulls : Bytes.t }

val of_values : Value.t array -> t
(** Build a column, picking the narrowest representation that fits the
    non-null cells. *)

val of_ints : int array -> t
(** A null-free [Ints] column (tid columns). *)

val length : t -> int
val is_null : t -> int -> bool
val has_nulls : t -> bool

val get : t -> int -> Value.t
(** Decode one cell ([Value.Null] at null slots). *)

val getter : t -> int -> Value.t
(** [getter c] resolves the representation dispatch once; the returned
    closure decodes cells with no per-cell variant match. *)

val gather : t -> int array -> t
(** [gather c idx] is the column whose row [k] is [c]'s row [idx.(k)] —
    the projection/join output kernel. *)

val concat : t -> t -> t

val eq_codes : t -> int array
(** Codes under which, {e within this column}, code equality coincides
    with [Value.equal] — including Null = Null.  Backs the distinct /
    difference kernels. *)

val pair_eq_codes : t -> t -> int array * int array
(** Same contract across two columns (for joins and positional set
    difference): the returned arrays are comparable with each other.
    Null slots decode to Null's dictionary code, so join kernels must
    additionally mask nulls via {!is_null} to keep SQL semantics. *)
