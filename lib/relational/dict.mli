(** Process-wide dictionary coding of {!Value.t}s.

    Columnar storage ({!Column}, {!Columnar}) keeps string-valued and
    mixed-type columns as dense [int] codes into this dictionary: two
    values receive the same code iff they are equal under
    {!Value.equal}, and codes are never reused, so code equality
    decides value equality in O(1) on the fused kernels' inner loops.
    The dictionary is global — one code space for the whole process —
    which makes codes from different columns and different tables
    directly comparable.

    Every fresh entry bumps the [dict.entries] counter.  [intern]
    serializes on a mutex (columnar builds run inside [Par.map]
    domains); [value] reads an atomically published immutable snapshot
    and never blocks. *)

val intern : Value.t -> int
(** The code of [v], allocating a fresh one on first sight.
    [Value.Null] interns like any other value. *)

val value : int -> Value.t
(** The value behind a code previously returned by {!intern}. *)

val size : unit -> int
(** Number of distinct values interned so far. *)
