(** A ground database fact: a relation name together with a row of values.

    Instances are sets of facts under set semantics; repairs compare
    instances through their fact sets (symmetric difference, Example 3.1),
    independently of the tids used to address tuples. *)

type t = { rel : string; row : Value.t array }

val make : string -> Value.t list -> t
val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_pp : Format.formatter -> Set.t -> unit

val symmetric_difference : Set.t -> Set.t -> Set.t
(** [symmetric_difference a b] is [(a \ b) ∪ (b \ a)], the distance notion
    underlying S- and C-repairs. *)
