type t = { rel : string; row : Value.t array }

let make rel values = { rel; row = Array.of_list values }
let arity f = Array.length f.row

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.row = Array.length b.row
  && Array.for_all2 Value.equal a.row b.row

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> (
      match Int.compare (Array.length a.row) (Array.length b.row) with
      | 0 ->
          let n = Array.length a.row in
          let rec go i =
            if i >= n then 0
            else
              match Value.compare a.row.(i) b.row.(i) with
              | 0 -> go (i + 1)
              | c -> c
          in
          go 0
      | c -> c)
  | c -> c

let hash f =
  Array.fold_left
    (fun acc v -> (acc * 31) + Value.hash v)
    (Hashtbl.hash f.rel) f.row

let pp ppf f =
  Format.fprintf ppf "%s(%a)" f.rel
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    f.row

let to_string f = Format.asprintf "%a" pp f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

let set_pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp)
    (Set.to_seq s)

let symmetric_difference a b = Set.union (Set.diff a b) (Set.diff b a)
