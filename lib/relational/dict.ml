(* Process-wide dictionary coding of values.

   Columnar tables store their non-primitive columns as dense [int]
   codes into this dictionary.  Interning is idempotent — values equal
   under [Value.equal] share a code, and codes are never reused — so
   code equality decides value equality in one machine-word compare,
   which is what the fused join/distinct kernels run on their inner
   loops.  A single global table (rather than one per column) makes
   codes comparable across columns and across tables, so a hash join
   between any two dictionary-coded columns needs no re-encoding.

   [intern] takes a mutex: columnar views are built inside [Par.map]
   worker domains during parallel repair checking.  [value] is
   lock-free — decoding reads an immutable snapshot array published
   with [Atomic.set], and a reader can only hold a code that some
   intern already published. *)

let c_entries = Obs.Counter.make "dict.entries"

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let lock = Mutex.create ()
let codes : int Vtbl.t = Vtbl.create 1024
let decode : Value.t array Atomic.t = Atomic.make [||]
let used = ref 0

let intern v =
  Mutex.lock lock;
  let code =
    match Vtbl.find_opt codes v with
    | Some c -> c
    | None ->
        let c = !used in
        used := c + 1;
        Vtbl.replace codes v c;
        let arr = Atomic.get decode in
        let arr =
          if c < Array.length arr then arr
          else begin
            let grown = Array.make (max 64 (2 * (c + 1))) Value.Null in
            Array.blit arr 0 grown 0 (Array.length arr);
            grown
          end
        in
        arr.(c) <- v;
        Atomic.set decode arr;
        Obs.Counter.incr c_entries;
        c
  in
  Mutex.unlock lock;
  code

let value c = (Atomic.get decode).(c)

let size () =
  Mutex.lock lock;
  let n = !used in
  Mutex.unlock lock;
  n
