type relation = { name : string; attributes : string array }

module Smap = Map.Make (String)

type t = { by_name : relation Smap.t; order : string list (* reversed *) }

let empty = { by_name = Smap.empty; order = [] }

let add_relation t ~name ~attributes =
  if Smap.mem name t.by_name then
    invalid_arg (Printf.sprintf "Schema.add_relation: duplicate relation %s" name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then
        invalid_arg
          (Printf.sprintf "Schema.add_relation: duplicate attribute %s in %s" a
             name);
      Hashtbl.add seen a ())
    attributes;
  let rel = { name; attributes = Array.of_list attributes } in
  { by_name = Smap.add name rel t.by_name; order = name :: t.order }

let relation t name = Smap.find name t.by_name
let mem t name = Smap.mem name t.by_name
let arity t name = Array.length (relation t name).attributes

let attribute_index t ~rel ~attr =
  let r = relation t rel in
  let n = Array.length r.attributes in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal r.attributes.(i) attr then i
    else go (i + 1)
  in
  go 0

let relations t = List.rev_map (fun n -> Smap.find n t.by_name) t.order

let of_list l =
  List.fold_left
    (fun acc (name, attributes) -> add_relation acc ~name ~attributes)
    empty l

let pp ppf t =
  let pp_rel ppf r =
    Format.fprintf ppf "%s(%a)" r.name
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_string)
      r.attributes
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_rel ppf (relations t)
