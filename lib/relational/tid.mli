(** Global tuple identifiers.

    The paper (Example 3.5) attaches global tids to tuples so that repairs,
    annotations and causes can refer to individual tuples; attribute-level
    notions refer to cells as [tid[i]] with positions starting at 1 (position
    0 being the tid itself). *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** A cell position [tid[pos]], 1-based as in the paper (Example 4.4). *)
module Cell : sig
  type tid := t

  type t = { tid : tid; pos : int }

  val make : tid -> int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Stdlib.Set.S with type elt = t
end
