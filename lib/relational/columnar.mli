(** A columnar table: named {!Column}s of equal length, the storage
    half of the compiled evaluation path (the kernels live in {!Plan}).

    [length] is explicit so zero-column tables — boolean query results —
    still carry a cardinality. *)

type t = { cols : string array; columns : Column.t array; length : int }

val make : string array -> Column.t array -> int -> t
val empty : string array -> t
val of_rows : string array -> Value.t array list -> t

val cols : t -> string array
val columns : t -> Column.t array
val length : t -> int

val col_index : t -> string -> int
(** Raises [Invalid_argument] naming the missing column and the
    available ones. *)

val column : t -> string -> Column.t

val get_row : t -> int -> Value.t array
val rows : t -> Value.t array list

val select : t -> int array -> t
(** [select t idx] keeps the rows listed in [idx], in that order. *)

val unknown_column : op:string -> string -> string array -> 'a
(** Raise the uniform descriptive unknown-column error: ["<op>: unknown
    column \"c\" (available: a, b)"]. *)

val pp : Format.formatter -> t -> unit

(** {1 Compiled-path switch}

    Process-wide toggle consulted by the columnar fast paths in
    [Logic.Cq], [Logic.Formula] and [Constraints.Violation]; mirrors
    {!Instance.set_indexing}.  Default: enabled. *)

val set_enabled : bool -> unit
val enabled : unit -> bool
