(** Database values, including the SQL-style [Null].

    [Null] has the semantics the paper relies on in Sections 4.2 and 4.3: it
    never satisfies a join or a comparison, and two nulls are never equal to
    each other under query evaluation (see {!Tvl} for the three-valued
    comparison logic).  Structural equality [equal] treats [Null] as equal to
    [Null] — that is the right notion for set-based instance manipulation
    (diffs, repairs) — whereas {!sql_eq} implements the query-time
    three-valued comparison. *)

type t =
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Null

val equal : t -> t -> bool
(** Structural equality; [equal Null Null = true]. *)

val compare : t -> t -> int
(** Total structural order, usable for [Set]/[Map] functors. *)

val sql_eq : t -> t -> Tvl.t
(** SQL three-valued equality: [Unknown] if either side is [Null]. *)

val sql_cmp : (int -> bool) -> t -> t -> Tvl.t
(** [sql_cmp test a b] applies [test] to [compare a b] under three-valued
    logic, e.g. [sql_cmp (fun c -> c < 0)] is SQL [<].  Comparing values of
    different runtime types yields [Unknown], as does any [Null]. *)

val is_null : t -> bool

val int : int -> t
val str : string -> t
val real : float -> t
val bool : bool -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val hash : t -> int
