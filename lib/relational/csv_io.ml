let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_value = function
  | Value.Null -> ""
  | Value.Int i -> string_of_int i
  | Value.Real r -> Printf.sprintf "%g" r
  | Value.Bool b -> string_of_bool b
  | Value.Str s ->
      if needs_quoting s || s = "" then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
      else s

let to_csv ?(header = true) inst ~rel =
  let r = Schema.relation (Instance.schema inst) rel in
  let buf = Buffer.create 256 in
  if header then begin
    Buffer.add_string buf (String.concat "," (Array.to_list r.Schema.attributes));
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map render_value (Array.to_list row)));
      Buffer.add_char buf '\n')
    (Instance.rows inst ~rel);
  Buffer.contents buf

(* Split one CSV record, honouring quotes; input excludes the newline. *)
let split_record line_no line =
  let n = String.length line in
  let fields = ref [] and buf = Buffer.create 16 in
  let push_field quoted =
    fields := (Buffer.contents buf, quoted) :: !fields;
    Buffer.clear buf
  in
  let rec go i quoted was_quoted =
    if i >= n then begin
      if quoted then
        invalid_arg (Printf.sprintf "Csv_io: unterminated quote on line %d" line_no);
      push_field was_quoted
    end
    else
      let c = line.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true was_quoted
          end
          else go (i + 1) false true
        else begin
          Buffer.add_char buf c;
          go (i + 1) true was_quoted
        end
      else if c = '"' && Buffer.length buf = 0 then go (i + 1) true true
      else if c = ',' then begin
        push_field was_quoted;
        go (i + 1) false false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false was_quoted
      end
  in
  go 0 false false;
  List.rev !fields

let is_int s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
  && (match int_of_string_opt s with Some _ -> true | None -> false)

let typed_value (text, quoted) =
  if quoted then Value.Str text
  else if text = "" then Value.Null
  else if is_int text then Value.Int (int_of_string text)
  else
    match float_of_string_opt text with
    | Some r when String.contains text '.' -> Value.Real r
    | _ -> Value.Str text

(* Split the text into records at newlines that are outside quotes, so
   quoted fields may span lines.  Carriage returns outside quotes are
   dropped (CRLF input). *)
let split_records text =
  let n = String.length text in
  let records = ref [] and buf = Buffer.create 64 in
  let line = ref 1 and record_start = ref 1 and in_quote = ref false in
  let flush () =
    records := (!record_start, Buffer.contents buf) :: !records;
    Buffer.clear buf;
    record_start := !line
  in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if c = '"' then begin
      in_quote := not !in_quote;
      Buffer.add_char buf c
    end
    else if c = '\n' then begin
      incr line;
      if !in_quote then Buffer.add_char buf c
      else flush ()
    end
    else if c = '\r' && not !in_quote then ()
    else Buffer.add_char buf c
  done;
  if Buffer.length buf > 0 then flush ();
  List.rev !records

let load_csv ?(header = true) inst ~rel text =
  let arity = Schema.arity (Instance.schema inst) rel in
  let records = split_records text in
  let records = if header && records <> [] then List.tl records else records in
  List.fold_left
    (fun acc (line_no, record) ->
      if String.trim record = "" then acc
      else begin
        let fields = split_record line_no record in
        if List.length fields <> arity then
          invalid_arg
            (Printf.sprintf "Csv_io: line %d has %d fields, %s expects %d"
               line_no (List.length fields) rel arity);
        Instance.add acc (Fact.make rel (List.map typed_value fields))
      end)
    inst records
